(* afs_lint — determinism & protocol-safety lint for the AFS tree.

   Usage: afs_lint [--json] [--sarif FILE] [--effects] [--allowlist FILE]
                   [--root DIR] [DIR ...]

   Scans the given directories (default: lib bin bench examples) for the
   per-file rule families D1 (determinism), P1 (partiality), E1 (effect
   safety), M1 (interface coverage), and the interprocedural families Y1
   (yield atomicity), C1 (commit-phase effects), X1 (Moved exhaustiveness).
   [--sarif FILE] additionally writes the findings as SARIF 2.1.0 for CI
   annotation; [--effects] dumps the fixpoint effect classification
   instead of linting. Exit status: 0 clean (warnings allowed), 1 on
   errors, 2 on usage or internal failure. *)

open Lint_types

let usage =
  "afs_lint [--json] [--sarif FILE] [--effects] [--allowlist FILE] [--root DIR] [DIR ...]"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_json f =
  Printf.sprintf
    {|{"rule":"%s","severity":"%s","file":"%s","line":%d,"col":%d,"symbol":"%s","message":"%s"}|}
    (rule_id f.rule) (severity_id f.severity) (json_escape f.file) f.line f.col
    (json_escape f.symbol) (json_escape f.message)

let print_json (r : Lint_engine.result) =
  print_string "[";
  List.iteri
    (fun i f ->
      if i > 0 then print_string ",";
      print_string ("\n  " ^ finding_json f))
    r.findings;
  print_string (if r.findings = [] then "]\n" else "\n]\n")

let print_human (r : Lint_engine.result) =
  List.iter
    (fun f ->
      Printf.printf "%s:%d:%d: [%s/%s] %s %s\n" f.file f.line f.col (rule_id f.rule)
        (severity_id f.severity) f.symbol f.message)
    r.findings;
  let errors = List.length (List.filter (fun f -> f.severity = Error) r.findings) in
  let warnings = List.length r.findings - errors in
  Printf.printf "afs_lint: %d file%s scanned, %d error%s, %d warning%s%s\n" r.files_scanned
    (if r.files_scanned = 1 then "" else "s")
    errors
    (if errors = 1 then "" else "s")
    warnings
    (if warnings = 1 then "" else "s")
    (if r.suppressed = [] then ""
     else Printf.sprintf " (%d allowlisted)" (List.length r.suppressed))

let () =
  let json = ref false in
  let sarif_file = ref None in
  let effects = ref false in
  let allow_file = ref None in
  let root = ref "." in
  let dirs = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit findings as a JSON array");
      ( "--sarif",
        Arg.String (fun f -> sarif_file := Some f),
        "FILE also write findings as SARIF 2.1.0" );
      ("--effects", Arg.Set effects, " dump the fixpoint effect classification and exit");
      ("--allowlist", Arg.String (fun f -> allow_file := Some f), "FILE allowlist of exceptions");
      ("--root", Arg.Set_string root, "DIR scan root (paths are reported relative to it)");
    ]
  in
  Arg.parse (Arg.align spec) (fun d -> dirs := d :: !dirs) usage;
  let dirs =
    match List.rev !dirs with [] -> [ "lib"; "bin"; "bench"; "examples" ] | ds -> ds
  in
  if !effects then begin
    List.iter
      (fun (key, tags) -> Printf.printf "%-40s %s\n" key (String.concat " " tags))
      (Lint_engine.effects ~root:!root dirs);
    exit 0
  end;
  let allowlist =
    match !allow_file with
    | None -> []
    | Some f -> (
        try Lint_allow.load f
        with Lint_allow.Parse_error msg | Sys_error msg ->
          Printf.eprintf "afs_lint: bad allowlist %s: %s\n" f msg;
          exit 2)
  in
  let result = Lint_engine.run ~allowlist ~root:!root dirs in
  List.iter
    (fun d -> Printf.eprintf "afs_lint: no such directory under %s: %s\n" !root d)
    result.missing_dirs;
  List.iter
    (fun (file, reason) -> Printf.eprintf "afs_lint: cannot parse %s: %s\n" file reason)
    result.broken;
  Option.iter (fun path -> Lint_sarif.write ~path result.findings) !sarif_file;
  if !json then print_json result else print_human result;
  if result.broken <> [] || result.missing_dirs <> [] then exit 2
  else if List.exists (fun f -> f.severity = Error) result.findings then exit 1
  else exit 0
