(* The interprocedural rule families: Y1, C1, X1.

   All three run over the [Lint_callgraph] fixpoint. The frame of
   reference is one top-level binding: Y1 replays that binding's event
   stream; a call contributes only its *summary* effects (does control
   pass through the scheduler? does the callee revalidate against the
   store?), never its internal reads/writes — the callee's own
   interleaving is reported once, at the callee. That keeps one real race
   from echoing as a finding in every transitive caller.

   {2 Y1 — yield-atomicity}

   Within one binding, events in AST order. A write of shared field [k]
   at position [w] fires when

     exists a yield [j] and a read of [k] at [r] with  r < j < w

   and no validation event lies in [(j, w)] — i.e. the value observed
   before parking the coroutine flows into a shared-state write without
   passing back through the serialisability machinery. Writes inside a
   [Moved] match case are treated as validated: the Moved reply is itself
   a versioned statement about current residency.

   {2 C1 — commit-phase atomicity}

   Configured critical sections must be transitively yield-free and
   ambient-free. Reported with the shortest call chain down to the
   offending primitive, because the yield is usually several frames away.

   {2 X1 — Moved exhaustiveness}

   A discarded result ([ignore e], [e |> ignore], [let _ = e]) whose
   callee is a Moved source — or is Moved-capable per the fixpoint —
   silently drops a relocation notice; the client keeps hammering the old
   shard. Handle it or return it. *)

open Lint_types

let mk = Lint_rules.mk

(* {2 Y1} *)

type replay = R of string | W of string * Location.t * bool | Y of string * Location.t | V

(* Flatten a def's events into the replay alphabet, expanding calls
   through their summaries. *)
let replay_stream (graph : Lint_callgraph.t) (d : Lint_callgraph.def) =
  List.concat_map
    (fun (ev : Lint_callgraph.event) ->
      match ev with
      | Lint_callgraph.Read (f, _) -> [ R f ]
      | Write (f, loc, moved) -> [ W (f, loc, moved) ]
      | Yield (name, loc) -> [ Y (name, loc) ]
      | Validate _ -> [ V ]
      | Call (key, loc, _) -> (
          match Lint_callgraph.summary graph key with
          | None -> []
          | Some s ->
              (if s.Lint_callgraph.yields then [ Y (key, loc) ] else [])
              @ if s.Lint_callgraph.validates then [ V ] else [])
      | Discard _ | Ambient _ -> [])
    d.Lint_callgraph.events

let check_y1 (config : config) graph (d : Lint_callgraph.def) =
  if not (in_scope config.y1_dirs d.Lint_callgraph.file) then []
  else begin
    let stream = Array.of_list (replay_stream graph d) in
    let findings = ref [] in
    Array.iteri
      (fun w ev ->
        match ev with
        | W (field, wloc, validated) when not validated ->
            (* Last yield before [w] with no validation after it. *)
            let rec last_clean_yield j acc =
              if j >= w then acc
              else
                last_clean_yield (j + 1)
                  (match stream.(j) with Y (n, l) -> Some (j, n, l) | V -> None | _ -> acc)
            in
            (match last_clean_yield 0 None with
            | Some (j, yname, _) ->
                let read_before =
                  Array.exists Fun.id (Array.init j (fun r -> stream.(r) = R field))
                in
                if read_before then
                  findings :=
                    mk ~rule:Y1 ~severity:Error ~file:d.Lint_callgraph.file ~loc:wloc
                      ~symbol:(d.Lint_callgraph.key ^ "/" ^ field)
                      (Printf.sprintf
                         "yield-atomicity race: %s reads shared field '%s', parks in %s, then \
                          writes '%s' from the stale frame — revalidate (write-set/version \
                          check) or handle Moved before the write"
                         d.Lint_callgraph.key field yname field)
                    :: !findings
            | None -> ())
        | _ -> ())
      stream;
    List.rev !findings
  end

(* {2 C1} *)

let check_c1 (config : config) (graph : Lint_callgraph.t) =
  List.concat_map
    (fun section ->
      match Hashtbl.find_opt graph.Lint_callgraph.by_key section with
      | None | Some [] ->
          [
            {
              rule = C1;
              severity = Warning;
              file = "<config>";
              line = 0;
              col = 0;
              symbol = section;
              message =
                Printf.sprintf
                  "configured critical section %s not found in the scanned sources — update \
                   critical_sections"
                  section;
            };
          ]
      | Some defs ->
          List.concat_map
            (fun (d : Lint_callgraph.def) ->
              let s = Hashtbl.find graph.Lint_callgraph.summaries section in
              let chain has =
                match Lint_callgraph.witness_chain graph ~key:section ~has with
                | Some path -> String.concat " -> " path
                | None -> section ^ " -> ?"
              in
              (if s.Lint_callgraph.yields then
                 [
                   mk ~rule:C1 ~severity:Error ~file:d.Lint_callgraph.file
                     ~loc:d.Lint_callgraph.loc ~symbol:section
                     (Printf.sprintf
                        "critical section %s can yield (%s) — the serialisability test and the \
                         test-and-set must run in one simulated event"
                        section
                        (chain (fun d -> d.Lint_callgraph.direct_yield)));
                 ]
               else [])
              @
              if s.Lint_callgraph.ambient then
                [
                  mk ~rule:C1 ~severity:Error ~file:d.Lint_callgraph.file
                    ~loc:d.Lint_callgraph.loc ~symbol:section
                    (Printf.sprintf
                       "critical section %s reaches an ambient source (%s) — commit decisions \
                        must be replayable"
                       section
                       (chain (fun d -> d.Lint_callgraph.direct_ambient)));
                ]
              else [])
            defs)
    config.critical_sections

(* {2 X1} *)

let check_x1 (config : config) graph (d : Lint_callgraph.def) =
  if not (in_scope config.x1_dirs d.Lint_callgraph.file) then []
  else
    List.filter_map
      (fun (ev : Lint_callgraph.event) ->
        match ev with
        | Lint_callgraph.Discard (callee, loc) ->
            let moved_capable =
              List.mem callee config.moved_sources
              ||
              match Lint_callgraph.summary graph callee with
              | Some s -> s.Lint_callgraph.moved
              | None -> false
            in
            if moved_capable then
              Some
                (mk ~rule:X1 ~severity:Error ~file:d.Lint_callgraph.file ~loc ~symbol:callee
                   (Printf.sprintf
                      "result of %s may carry Errors.Moved and is silently dropped — match on \
                       Moved (chase the forward) or propagate the error"
                      callee))
            else None
        | _ -> None)
      d.Lint_callgraph.events

(* {2 Entry point} *)

(* Run all interprocedural families over pre-parsed files. The graph is
   built over every parsed file so fixtures can model multi-module
   programs; per-def findings are scoped by the config's dir lists. *)
let analyse (config : config) files =
  let graph = Lint_callgraph.build config files in
  let per_def =
    List.concat_map
      (fun d -> check_y1 config graph d @ check_x1 config graph d)
      graph.Lint_callgraph.defs
  in
  List.sort compare_findings (per_def @ check_c1 config graph)

(* {2 Effect report}

   Human-readable classification dump ([afs_lint --effects]) — the
   lattice the rules consume, for debugging configs and reviewing what a
   new subsystem does to the commit path. *)

let effects_report (config : config) files =
  let graph = Lint_callgraph.build config files in
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) graph.Lint_callgraph.summaries []
    |> List.sort compare
  in
  List.filter_map
    (fun key ->
      match Hashtbl.find_opt graph.Lint_callgraph.summaries key with
      | None -> None
      | Some s ->
          let tags =
            (if s.Lint_callgraph.yields then [ "yields" ] else [])
            @ (if s.Lint_callgraph.ambient then [ "ambient" ] else [])
            @ (if s.Lint_callgraph.validates then [ "validates" ] else [])
            @ (if s.Lint_callgraph.moved then [ "moved" ] else [])
            @ (if not (Lint_callgraph.SS.is_empty s.Lint_callgraph.writes) then
                 [ "mutates:" ^ String.concat "," (Lint_callgraph.SS.elements s.Lint_callgraph.writes) ]
               else [])
            @
            if not (Lint_callgraph.SS.is_empty s.Lint_callgraph.reads) then
              [ "reads:" ^ String.concat "," (Lint_callgraph.SS.elements s.Lint_callgraph.reads) ]
            else []
          in
          if tags = [] then None else Some (key, tags))
    keys
