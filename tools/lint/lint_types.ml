(* Shared vocabulary of the afs_lint static-analysis pass. *)

type rule = D1 | P1 | E1 | M1 | Y1 | C1 | X1

let rule_id = function
  | D1 -> "D1"
  | P1 -> "P1"
  | E1 -> "E1"
  | M1 -> "M1"
  | Y1 -> "Y1"
  | C1 -> "C1"
  | X1 -> "X1"

let rule_of_string = function
  | "D1" -> Some D1
  | "P1" -> Some P1
  | "E1" -> Some E1
  | "M1" -> Some M1
  | "Y1" -> Some Y1
  | "C1" -> Some C1
  | "X1" -> Some X1
  | _ -> None

let all_rules = [ D1; P1; E1; M1; Y1; C1; X1 ]

let rule_description = function
  | D1 -> "determinism: no ambient time/randomness, no unordered hashtable traversal"
  | P1 -> "partiality: no List.hd/Option.get/failwith/assert false in protocol paths"
  | E1 -> "effect safety: no engine re-entry or blocking calls in callbacks"
  | M1 -> "interface coverage: every lib module ships an .mli"
  | Y1 ->
      "yield atomicity: no shared-state read, yield, then dependent write without \
       revalidation"
  | C1 -> "commit phase: designated critical sections are transitively yield- and ambient-free"
  | X1 -> "Moved exhaustiveness: results of Moved-capable operations are never silently dropped"

type severity = Error | Warning

let severity_id = function Error -> "error" | Warning -> "warning"

type finding = {
  rule : rule;
  severity : severity;
  file : string;  (** path relative to the scan root, '/'-separated *)
  line : int;
  col : int;
  symbol : string;  (** offending identifier, or a rule-specific tag *)
  message : string;
}

(* Order findings for stable output: by file, then position, then rule. *)
let compare_findings a b =
  match compare a.file b.file with
  | 0 -> (
      match compare (a.line, a.col) (b.line, b.col) with
      | 0 -> compare (rule_id a.rule, a.symbol) (rule_id b.rule, b.symbol)
      | c -> c)
  | c -> c

(** Per-run configuration. Directory scopes are '/'-separated paths relative
    to the scan root; a scope of [""] matches every file. *)
type config = {
  rng_exempt : string list;
      (** Files allowed to implement or touch ambient randomness / clocks
          (the seeded RNG itself). *)
  protocol_dirs : string list;  (** P1 scope: where partial idioms are banned. *)
  hashtbl_dirs : string list;
      (** D1 unordered-iteration scope (always further gated on the unit
          referencing Wire/Serialise/Engine). *)
  hashtbl_strict_units : string list;
      (** Files (or directory prefixes) where the D1 unordered-iteration
          check applies unconditionally — their traversal order leaks into
          replicated or exported state even though they never mention a
          wire-like module (e.g. the LRU index, the write-set
          representation, and the trace library, whose event streams must
          be byte-stable across same-seed runs). *)
  e1_dirs : string list;  (** E1 scope. *)
  e1_exempt : string list;
      (** Subtrees exempt from E1 (the sim engine implements the
          primitives it would otherwise be flagged for). *)
  mli_dirs : string list;  (** M1 scope: every .ml here needs a sibling .mli. *)
  (* {3 Interprocedural analysis (Y1 / C1 / X1)}

     These fields parameterise the call-graph pass in [Lint_callgraph] /
     [Lint_proto]. Names are matched on the last two dotted components of
     an identifier ("Module.fn"), so [module R = Afs_rpc.Remote] aliases
     resolve the same as direct references. *)
  yield_primitives : string list;
      (** Calls that park the current coroutine (the seeds of the [Yields]
          effect; everything else is derived transitively). *)
  yielding_fields : string list;
      (** Record fields holding function values that may yield (dynamic
          calls the lexical call graph cannot resolve, e.g. the naming
          layer's [access] record). Applying such a field counts as a
          yield. *)
  validators : string list;
      (** Calls that re-validate shared state against the store: the
          serialisability test, the write-set pre-test, a commit (whose
          success IS the test-and-set), or a cache revalidation. A write
          that follows one of these (after the last yield) is considered
          funnelled through version validation. *)
  shared_state_fields : string list;
      (** Mutable record fields that constitute shared server / shard /
          cluster / connection state. Reads and writes of these fields are
          the events Y1 tracks. *)
  critical_sections : string list;
      (** "Module.fn" names whose bodies must be transitively yield-free
          and ambient-free (C1): the serialisability-test/test-and-set
          region and everything that must be indivisible with it. *)
  moved_sources : string list;
      (** Operations that may return [Errors.Moved] (X1 seeds; functions
          that neither handle nor discard Moved propagate the
          capability). *)
  y1_dirs : string list;  (** Y1 scope. *)
  x1_dirs : string list;  (** X1 scope. *)
}

let default_config =
  {
    rng_exempt = [ "lib/util/xrng.ml" ];
    protocol_dirs = [ "lib" ];
    hashtbl_dirs = [ "lib"; "bin"; "bench"; "examples" ];
    hashtbl_strict_units =
      [ "lib/util/lru.ml"; "lib/util/stats.ml"; "lib/core/writeset.ml";
        "lib/core/pagestore.ml"; "lib/trace"; "lib/cluster"; "lib/replica"; "lib/txn" ];
    e1_dirs = [ "lib" ];
    e1_exempt = [ "lib/sim" ];
    mli_dirs = [ "lib" ];
    yield_primitives =
      [ "Proc.delay"; "Proc.suspend"; "Ivar.read"; "Channel.send"; "Channel.recv"; "Rpc.call" ];
    yielding_fields =
      [ "a_update"; "a_read_current"; "a_read_cached"; "a_create_file"; "t_read"; "t_write";
        "t_insert" ];
    validators =
      [
        "Serialise.test_and_merge";
        "Writeset.conflict";
        "Server.commit";
        "Remote.commit";
        "Cluster_client.commit";
        "Remote.validate_cache";
        "Cache.revalidate";
        "Cache.server_validate";
      ];
    shared_state_fields =
      [
        (* lib/rpc *)
        "preferred";
        (* lib/cluster *)
        "forwards";
        "next_placement";
        "loads";
        (* lib/core server administration *)
        "files";
        "versions";
        "destroyed";
        "uncommitted";
        "current_hint";
        "oldest_hint";
        "vblocks";
        "wset";
      ];
    critical_sections =
      [
        "Server.commit";
        "Server.validate";
        "Server.merge";
        "Server.publish";
        "Server.commit_batch";
        "Serialise.test_and_merge";
        "Remote.handle";
        "Shard.location_check";
        (* The replication plane's additions to the commit critical
           section: the publish gate (fence test + batch cut + feed) runs
           inside validate/publish, and promotion's register test-and-set
           plus drain must be indivisible for the fencing argument. *)
        "Source.gate";
        "Replica.promote";
        (* The cross-shard decision logic: classifying the coordinator
           record and mapping a marker to roll-forward/roll-back must not
           interleave with the optimistic commits that act on them. *)
        "Txn.decide";
        "Txn.resolve";
      ];
    moved_sources =
      [ "Remote.create_version"; "Remote.current_version"; "Remote.txn_mark";
        "Remote.txn_open"; "Remote.txn_cas" ];
    y1_dirs =
      [
        "lib/core"; "lib/cluster"; "lib/rpc"; "lib/naming"; "lib/stable"; "lib/block";
        "lib/disk"; "lib/files";
      ];
    x1_dirs = [ "lib" ];
  }

(* [in_scope dirs file] holds when [file] lives under one of [dirs]. *)
let in_scope dirs file =
  List.exists
    (fun d -> d = "" || file = d || String.starts_with ~prefix:(d ^ "/") file)
    dirs
