(* Shared vocabulary of the afs_lint static-analysis pass. *)

type rule = D1 | P1 | E1 | M1

let rule_id = function D1 -> "D1" | P1 -> "P1" | E1 -> "E1" | M1 -> "M1"

let rule_of_string = function
  | "D1" -> Some D1
  | "P1" -> Some P1
  | "E1" -> Some E1
  | "M1" -> Some M1
  | _ -> None

type severity = Error | Warning

let severity_id = function Error -> "error" | Warning -> "warning"

type finding = {
  rule : rule;
  severity : severity;
  file : string;  (** path relative to the scan root, '/'-separated *)
  line : int;
  col : int;
  symbol : string;  (** offending identifier, or a rule-specific tag *)
  message : string;
}

(* Order findings for stable output: by file, then position, then rule. *)
let compare_findings a b =
  match compare a.file b.file with
  | 0 -> (
      match compare (a.line, a.col) (b.line, b.col) with
      | 0 -> compare (rule_id a.rule, a.symbol) (rule_id b.rule, b.symbol)
      | c -> c)
  | c -> c

(** Per-run configuration. Directory scopes are '/'-separated paths relative
    to the scan root; a scope of [""] matches every file. *)
type config = {
  rng_exempt : string list;
      (** Files allowed to implement or touch ambient randomness / clocks
          (the seeded RNG itself). *)
  protocol_dirs : string list;  (** P1 scope: where partial idioms are banned. *)
  hashtbl_dirs : string list;
      (** D1 unordered-iteration scope (always further gated on the unit
          referencing Wire/Serialise/Engine). *)
  hashtbl_strict_units : string list;
      (** Files (or directory prefixes) where the D1 unordered-iteration
          check applies unconditionally — their traversal order leaks into
          replicated or exported state even though they never mention a
          wire-like module (e.g. the LRU index, the write-set
          representation, and the trace library, whose event streams must
          be byte-stable across same-seed runs). *)
  e1_dirs : string list;  (** E1 scope. *)
  e1_exempt : string list;
      (** Subtrees exempt from E1 (the sim engine implements the
          primitives it would otherwise be flagged for). *)
  mli_dirs : string list;  (** M1 scope: every .ml here needs a sibling .mli. *)
}

let default_config =
  {
    rng_exempt = [ "lib/util/xrng.ml" ];
    protocol_dirs = [ "lib" ];
    hashtbl_dirs = [ "lib"; "bin"; "bench"; "examples" ];
    hashtbl_strict_units =
      [ "lib/util/lru.ml"; "lib/core/writeset.ml"; "lib/trace"; "lib/cluster" ];
    e1_dirs = [ "lib" ];
    e1_exempt = [ "lib/sim" ];
    mli_dirs = [ "lib" ];
  }

(* [in_scope dirs file] holds when [file] lives under one of [dirs]. *)
let in_scope dirs file =
  List.exists
    (fun d -> d = "" || file = d || String.starts_with ~prefix:(d ^ "/") file)
    dirs
