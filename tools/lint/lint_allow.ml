(* Allowlist: deliberate, reviewed exceptions to lint rules.

   Format, one entry per line:

     RULE  path/to/file.ml  symbol   # mandatory justification

   [symbol] is the identifier the finding reports (e.g. [Hashtbl.fold],
   [failwith], [missing-mli]); [*] matches any symbol. Blank lines and
   lines starting with [#] are ignored. Every entry MUST carry a
   non-empty justification after [#]: a suppression whose reason nobody
   wrote down is a suppression nobody can review or retire. *)

open Lint_types

type entry = {
  rule : rule;
  file : string;
  symbol : string;
  justification : string;
  lineno : int;
  mutable used : bool;
}

type t = entry list

exception Parse_error of string

let parse_line lineno line =
  let body, comment =
    match String.index_opt line '#' with
    | Some i ->
        ( String.sub line 0 i,
          String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
    | None -> (line, "")
  in
  let body = String.trim body in
  if body = "" then None
  else
    match String.split_on_char ' ' body |> List.filter (fun s -> s <> "") with
    | [ rule; file; symbol ] -> (
        match rule_of_string rule with
        | Some rule ->
            if comment = "" then
              raise
                (Parse_error
                   (Printf.sprintf
                      "line %d: entry has no justification — append '# why this exception is \
                       sound'"
                      lineno))
            else Some { rule; file; symbol; justification = comment; lineno; used = false }
        | None ->
            raise
              (Parse_error
                 (Printf.sprintf "line %d: unknown rule %S (want D1|P1|E1|M1|Y1|C1|X1)" lineno
                    rule)))
    | _ ->
        raise
          (Parse_error
             (Printf.sprintf "line %d: want 'RULE file symbol  # justification', got %S" lineno
                line))

let of_string s : t =
  String.split_on_char '\n' s
  |> List.mapi (fun i line -> parse_line (i + 1) line)
  |> List.filter_map Fun.id

let load path : t =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let suppresses (t : t) (f : finding) =
  List.exists
    (fun e ->
      let hit = e.rule = f.rule && e.file = f.file && (e.symbol = "*" || e.symbol = f.symbol) in
      if hit then e.used <- true;
      hit)
    t

(** Partition findings into (kept, suppressed). *)
let apply (t : t) findings = List.partition (fun f -> not (suppresses t f)) findings

(** Entries that never matched a finding — stale exceptions worth pruning. *)
let unused (t : t) = List.filter (fun e -> not e.used) t

let entry_to_string (e : entry) =
  Printf.sprintf "line %d: %s %s %s" e.lineno (rule_id e.rule) e.file e.symbol

(** A stale entry surfaced as a Warning finding, so dead suppressions show
    up in the report (and in SARIF) instead of silently accumulating. *)
let stale_finding (e : entry) =
  {
    rule = e.rule;
    severity = Warning;
    file = e.file;
    line = 1;
    col = 0;
    symbol = "stale-allow:" ^ e.symbol;
    message =
      Printf.sprintf
        "stale allowlist entry (%s) matches no current finding — delete it"
        (entry_to_string e);
  }
