(* Allowlist: deliberate, reviewed exceptions to lint rules.

   Format, one entry per line:

     RULE  path/to/file.ml  symbol   # optional comment

   [symbol] is the identifier the finding reports (e.g. [Hashtbl.fold],
   [failwith], [missing-mli]); [*] matches any symbol. Blank lines and
   lines starting with [#] are ignored. *)

open Lint_types

type entry = { rule : rule; file : string; symbol : string; lineno : int; mutable used : bool }

type t = entry list

exception Parse_error of string

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then None
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ rule; file; symbol ] -> (
        match rule_of_string rule with
        | Some rule -> Some { rule; file; symbol; lineno; used = false }
        | None ->
            raise
              (Parse_error
                 (Printf.sprintf "line %d: unknown rule %S (want D1|P1|E1|M1)" lineno rule)))
    | _ ->
        raise
          (Parse_error
             (Printf.sprintf "line %d: want 'RULE file symbol', got %S" lineno line))

let of_string s : t =
  String.split_on_char '\n' s
  |> List.mapi (fun i line -> parse_line (i + 1) line)
  |> List.filter_map Fun.id

let load path : t =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let suppresses (t : t) (f : finding) =
  List.exists
    (fun e ->
      let hit = e.rule = f.rule && e.file = f.file && (e.symbol = "*" || e.symbol = f.symbol) in
      if hit then e.used <- true;
      hit)
    t

(** Partition findings into (kept, suppressed). *)
let apply (t : t) findings = List.partition (fun f -> not (suppresses t f)) findings

(** Entries that never matched a finding — stale exceptions worth pruning. *)
let unused (t : t) = List.filter (fun e -> not e.used) t

let entry_to_string (e : entry) =
  Printf.sprintf "line %d: %s %s %s" e.lineno (rule_id e.rule) e.file e.symbol
