(* Parsetree analysis for the D1 / P1 / E1 rule families.

   The pass is purely lexical (no typing): identifiers are matched by their
   dotted path, so [module E = Engine] aliases are caught at the binding and
   at direct [Engine.*] uses, but a rebound alias used exclusively through
   the new name can escape a heuristic. That trade keeps the tool dependency
   -free, instant, and runnable on any parseable source. *)

open Lint_types

let mk ~rule ~severity ~file ~loc ~symbol message =
  let pos = loc.Location.loc_start in
  {
    rule;
    severity;
    file;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    symbol;
    message;
  }

let components lid = try Longident.flatten lid with _ -> []

let dotted lid = String.concat "." (components lid)

(* Last two components, e.g. ["Afs_sim"; "Engine"; "run"] -> ("Engine", "run"). *)
let tail2 comps =
  match List.rev comps with
  | last :: parent :: _ -> Some (parent, last)
  | _ -> None

(* {2 D1: determinism} *)

(* Ambient time / randomness sources. Each entry pairs a predicate on the
   identifier path with the replacement to suggest. *)
let banned_ambient comps =
  let has m = List.mem m comps in
  match List.rev comps with
  | _ when has "Random" -> Some "seed an Afs_util.Xrng and thread it explicitly"
  | last :: _ when has "Unix" && List.mem last [ "gettimeofday"; "time"; "sleep"; "sleepf" ] ->
      Some "virtual time only: use Engine.now / Proc.delay"
  | "time" :: "Sys" :: _ -> Some "virtual time only: use Engine.now"
  | _ -> None

let unordered_hashtbl comps =
  match tail2 comps with
  | Some ("Hashtbl", op)
    when List.mem op [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ] ->
      Some op
  | _ -> None

let is_sort comps =
  match tail2 comps with
  | Some ("List", op) -> List.mem op [ "sort"; "stable_sort"; "sort_uniq"; "fast_sort" ]
  | _ -> false

(* Modules whose mention marks a unit as feeding the wire format or the
   event queue; unordered iteration there is a determinism hazard. *)
let wire_like = [ "Wire"; "Serialise"; "Engine" ]

(* {2 E1: effect safety} *)

type e1_context = Process_body | Engine_callback

let spawner comps =
  match tail2 comps with
  | Some ("Proc", "spawn") -> Some Process_body
  | Some ("Engine", "at") -> Some Engine_callback
  | _ -> None

let is_engine_reentry comps =
  match tail2 comps with
  | Some ("Engine", op) -> if List.mem op [ "run"; "step" ] then Some op else None
  | _ -> None

let blocking_call comps =
  match tail2 comps with
  | Some ("Ivar", "read") -> Some "Ivar.read"
  | Some (("Proc" as p), (("delay" | "suspend") as op))
  | Some (("Channel" as p), (("send" | "recv") as op)) ->
      Some (p ^ "." ^ op)
  | _ -> None

(* {2 The pass} *)

type unit_facts = {
  mutable mentions_wire : bool;  (** unit references Wire / Serialise / Engine *)
  mutable has_fulfiller : bool;  (** unit contains Ivar.fill / Ivar.try_fill *)
  mutable ivar_reads : (Location.t * string) list;
}

(* First pass: whole-unit facts that gate per-site rules. *)
let collect_facts (str : Parsetree.structure) =
  let facts = { mentions_wire = false; has_fulfiller = false; ivar_reads = [] } in
  let note comps =
    if List.exists (fun c -> List.mem c wire_like) comps then facts.mentions_wire <- true;
    match tail2 comps with
    | Some ("Ivar", ("fill" | "try_fill")) -> facts.has_fulfiller <- true
    | _ -> ()
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ } -> note (components txt)
          | Parsetree.Pexp_new { txt; _ } -> note (components txt)
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
      module_expr =
        (fun self m ->
          (match m.Parsetree.pmod_desc with
          | Parsetree.Pmod_ident { txt; _ } -> note (components txt)
          | _ -> ());
          Ast_iterator.default_iterator.module_expr self m);
    }
  in
  iter.structure iter str;
  facts

let analyse (config : config) ~file (str : Parsetree.structure) =
  let facts = collect_facts str in
  let findings = ref [] in
  let emit ~rule ~severity ~loc ~symbol message =
    findings := mk ~rule ~severity ~file ~loc ~symbol message :: !findings
  in
  let p1_scope = in_scope config.protocol_dirs file in
  let hashtbl_strict = in_scope config.hashtbl_strict_units file in
  let hashtbl_scope =
    hashtbl_strict || (in_scope config.hashtbl_dirs file && facts.mentions_wire)
  in
  let e1_scope = in_scope config.e1_dirs file && not (in_scope config.e1_exempt file) in
  let rng_exempt = List.mem file config.rng_exempt in
  (* Lexical context, innermost first. *)
  let sorted_depth = ref 0 in
  let e1_stack = ref [] in
  let check_ident loc lid =
    let comps = components lid in
    let name = dotted lid in
    if not rng_exempt then
      Option.iter
        (fun fix ->
          emit ~rule:D1 ~severity:Error ~loc ~symbol:name
            (Printf.sprintf "ambient nondeterminism: %s — %s" name fix))
        (banned_ambient comps);
    (match unordered_hashtbl comps with
    | Some _ when hashtbl_scope && !sorted_depth = 0 ->
        let why =
          if hashtbl_strict then "a determinism-critical unit"
          else "a unit that feeds Wire/Serialise/Engine"
        in
        emit ~rule:D1 ~severity:Error ~loc ~symbol:name
          (Printf.sprintf
             "unordered %s in %s — iterate in sorted key order (Afs_util.Det) or sort the result"
             name why)
    | _ -> ());
    if p1_scope then begin
      match name with
      | "List.hd" | "List.tl" | "Option.get" | "failwith" | "Stdlib.failwith" ->
          emit ~rule:P1 ~severity:Error ~loc ~symbol:name
            (Printf.sprintf
               "partial operation %s in a protocol path — errors must flow through Errors.t" name)
      | _ -> ()
    end;
    if e1_scope then begin
      (match (is_engine_reentry comps, !e1_stack) with
      | Some op, ctx :: _ ->
          let where =
            match ctx with
            | Process_body -> "inside a Proc coroutine"
            | Engine_callback -> "inside an Engine.at callback"
          in
          emit ~rule:E1 ~severity:Error ~loc ~symbol:("Engine." ^ op)
            (Printf.sprintf "re-entrant Engine.%s %s — the engine is already running" op where)
      | _ -> ());
      match (blocking_call comps, !e1_stack) with
      | Some sym, Engine_callback :: _ ->
          emit ~rule:E1 ~severity:Error ~loc ~symbol:sym
            (Printf.sprintf
               "blocking %s inside an Engine.at callback — callbacks are not processes; spawn a \
                Proc or use Ivar.try_fill" sym)
      | Some "Ivar.read", _ -> facts.ivar_reads <- (loc, "Ivar.read") :: facts.ivar_reads
      | _ -> ()
    end
  in
  (* Head identifier of a possibly-curried application: [List.sort cmp]
     applied via [|>] or [@@] still counts as a sort. *)
  let rec head_components e =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; _ } -> components txt
    | Parsetree.Pexp_apply (f, _) -> head_components f
    | _ -> []
  in
  let iter_base = Ast_iterator.default_iterator in
  let rec expr self (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident loc txt
    | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
      when p1_scope ->
        emit ~rule:P1 ~severity:Error ~loc:e.pexp_loc ~symbol:"assert false"
          "assert false in a protocol path — make the match total or return an Errors.t"
    | Pexp_apply (fn, args) ->
        let head = head_components fn in
        let visit_args ctx =
          Option.iter (fun c -> e1_stack := c :: !e1_stack) ctx;
          List.iter (fun (_, a) -> expr self a) args;
          Option.iter (fun _ -> e1_stack := List.tl !e1_stack) ctx
        in
        if is_sort head then begin
          expr self fn;
          incr sorted_depth;
          visit_args None;
          decr sorted_depth
        end
        else begin
          match (head, args) with
          (* e |> List.sort cmp — the left operand ends up sorted. *)
          | [ "|>" ], [ (_, lhs); (_, rhs) ] when is_sort (head_components rhs) ->
              incr sorted_depth;
              expr self lhs;
              decr sorted_depth;
              expr self rhs
          (* List.sort cmp @@ e *)
          | [ "@@" ], [ (_, lhs); (_, rhs) ] when is_sort (head_components lhs) ->
              expr self lhs;
              incr sorted_depth;
              expr self rhs;
              decr sorted_depth
          | _ ->
              expr self fn;
              visit_args (spawner head)
        end
    | _ -> iter_base.expr self e
  in
  let iter = { iter_base with expr } in
  iter.structure iter str;
  (* Unit-level heuristic: ivars read but never filled anywhere in the unit
     are either dead waits or filled far away — worth a human look. *)
  if not facts.has_fulfiller then
    List.iter
      (fun (loc, sym) ->
        emit ~rule:E1 ~severity:Warning ~loc ~symbol:sym
          "Ivar.read with no Ivar.fill/try_fill anywhere in this unit — no reachable fulfiller?")
      facts.ivar_reads;
  List.sort compare_findings !findings
