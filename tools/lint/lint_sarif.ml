(* SARIF 2.1.0 output — the static-analysis interchange format GitHub and
   most CI viewers ingest for inline annotations. Hand-rolled like the
   JSON printer in [afs_lint]: the schema subset we emit (driver, rules,
   results with one physical location each) is small enough that a JSON
   library would be the heavier dependency. *)

open Lint_types

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rule_json rule =
  Printf.sprintf
    {|{"id":"%s","shortDescription":{"text":"%s"}}|}
    (rule_id rule)
    (escape (rule_description rule))

let result_json (f : finding) =
  (* SARIF columns are 1-based; findings carry 0-based columns. *)
  Printf.sprintf
    {|{"ruleId":"%s","level":"%s","message":{"text":"%s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s"},"region":{"startLine":%d,"startColumn":%d}}}]}|}
    (rule_id f.rule) (severity_id f.severity)
    (escape (f.symbol ^ ": " ^ f.message))
    (escape f.file) (max 1 f.line) (f.col + 1)

let to_string (findings : finding list) =
  let rules = String.concat "," (List.map rule_json all_rules) in
  let results = String.concat ",\n        " (List.map result_json findings) in
  Printf.sprintf
    {|{
  "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "afs_lint",
          "informationUri": "https://example.invalid/afs",
          "rules": [%s]
        }
      },
      "results": [%s]
    }
  ]
}
|}
    rules
    (if findings = [] then "" else "\n        " ^ results ^ "\n      ")

let write ~path findings =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string findings))
