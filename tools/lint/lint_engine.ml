(* Directory walking, parsing, and rule orchestration.

   The engine owns everything that is not expression-level analysis: finding
   the sources, parsing them with the compiler's own parser (parse only — the
   pass needs no typing, so fixtures and generated code lint fine), and the
   file-level M1 interface-coverage rule. *)

open Lint_types

type result = {
  findings : finding list;  (** after allowlist filtering, sorted *)
  suppressed : finding list;  (** removed by the allowlist *)
  broken : (string * string) list;  (** unparseable files: (path, reason) *)
  missing_dirs : string list;  (** requested scan roots that don't exist *)
  files_scanned : int;
}

let ( / ) a b = if a = "" || a = "." then b else a ^ "/" ^ b

(* Recursively collect files under [dir] (relative to [root]) matching
   [keep], sorted so the linter's own output is deterministic. *)
let rec collect_files ~root ~keep dir acc =
  let abs = Filename.concat root dir in
  if not (Sys.file_exists abs && Sys.is_directory abs) then acc
  else
    Array.fold_left
      (fun acc entry ->
        let rel = dir / entry in
        let abs = Filename.concat root rel in
        if Sys.is_directory abs then
          if String.length entry > 0 && (entry.[0] = '.' || entry.[0] = '_') then acc
          else collect_files ~root ~keep rel acc
        else if keep entry then rel :: acc
        else acc)
      acc
      (Sys.readdir abs)

let ml_files ~root dirs =
  List.concat_map
    (fun d -> collect_files ~root ~keep:(fun f -> Filename.check_suffix f ".ml") d [])
    dirs
  |> List.sort_uniq compare

let parse_impl path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Parse.implementation lexbuf)

(* M1: every implementation in scope ships an interface. *)
let check_mli (config : config) ~root file =
  if
    in_scope config.mli_dirs file
    && not (Sys.file_exists (Filename.concat root (Filename.remove_extension file ^ ".mli")))
  then
    [
      {
        rule = M1;
        severity = Error;
        file;
        line = 1;
        col = 0;
        symbol = "missing-mli";
        message =
          "module has no .mli — library modules must declare their interface \
           (interface coverage keeps the protocol surface reviewable)";
      };
    ]
  else []

let describe_exn = function
  | Syntaxerr.Error _ -> "syntax error"
  | e -> Printexc.to_string e

(* Parse every file once; per-file rules and the interprocedural pass
   share the Parsetrees. Returns (parsed, broken). *)
let parse_all ~root files =
  let broken = ref [] in
  let parsed =
    List.filter_map
      (fun file ->
        match parse_impl (Filename.concat root file) with
        | str -> Some (file, str)
        | exception e ->
            broken := (file, describe_exn e) :: !broken;
            None)
      files
  in
  (parsed, List.rev !broken)

let run ?(config = default_config) ?(allowlist = []) ~root dirs =
  (* A mistyped directory must not read as a clean scan. *)
  let missing_dirs =
    List.filter
      (fun d ->
        let abs = Filename.concat root d in
        not (Sys.file_exists abs && Sys.is_directory abs))
      dirs
  in
  let files = ml_files ~root dirs in
  let parsed, broken = parse_all ~root files in
  let per_file =
    List.concat_map (fun (file, str) -> Lint_rules.analyse config ~file str) parsed
    @ List.concat_map (fun file -> check_mli config ~root file) files
  in
  (* Interprocedural families: the call graph spans every parsed file of
     this run, so cross-module yields and Moved-capability resolve. *)
  let inter = Lint_proto.analyse config parsed in
  let kept, suppressed = Lint_allow.apply allowlist (per_file @ inter) in
  (* Surface stale suppressions as findings of their own rule family. *)
  let stale = List.map Lint_allow.stale_finding (Lint_allow.unused allowlist) in
  {
    findings = List.sort compare_findings (kept @ stale);
    suppressed = List.sort compare_findings suppressed;
    broken;
    missing_dirs;
    files_scanned = List.length files;
  }

(* Effect classification over the same file set, for [--effects]. *)
let effects ?(config = default_config) ~root dirs =
  let parsed, _ = parse_all ~root (ml_files ~root dirs) in
  Lint_proto.effects_report config parsed
