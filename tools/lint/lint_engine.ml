(* Directory walking, parsing, and rule orchestration.

   The engine owns everything that is not expression-level analysis: finding
   the sources, parsing them with the compiler's own parser (parse only — the
   pass needs no typing, so fixtures and generated code lint fine), and the
   file-level M1 interface-coverage rule. *)

open Lint_types

type result = {
  findings : finding list;  (** after allowlist filtering, sorted *)
  suppressed : finding list;  (** removed by the allowlist *)
  broken : (string * string) list;  (** unparseable files: (path, reason) *)
  missing_dirs : string list;  (** requested scan roots that don't exist *)
  files_scanned : int;
}

let ( / ) a b = if a = "" || a = "." then b else a ^ "/" ^ b

(* Recursively collect files under [dir] (relative to [root]) matching
   [keep], sorted so the linter's own output is deterministic. *)
let rec collect_files ~root ~keep dir acc =
  let abs = Filename.concat root dir in
  if not (Sys.file_exists abs && Sys.is_directory abs) then acc
  else
    Array.fold_left
      (fun acc entry ->
        let rel = dir / entry in
        let abs = Filename.concat root rel in
        if Sys.is_directory abs then
          if String.length entry > 0 && (entry.[0] = '.' || entry.[0] = '_') then acc
          else collect_files ~root ~keep rel acc
        else if keep entry then rel :: acc
        else acc)
      acc
      (Sys.readdir abs)

let ml_files ~root dirs =
  List.concat_map
    (fun d -> collect_files ~root ~keep:(fun f -> Filename.check_suffix f ".ml") d [])
    dirs
  |> List.sort_uniq compare

let parse_impl path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Parse.implementation lexbuf)

(* M1: every implementation in scope ships an interface. *)
let check_mli (config : config) ~root file =
  if
    in_scope config.mli_dirs file
    && not (Sys.file_exists (Filename.concat root (Filename.remove_extension file ^ ".mli")))
  then
    [
      {
        rule = M1;
        severity = Error;
        file;
        line = 1;
        col = 0;
        symbol = "missing-mli";
        message =
          "module has no .mli — library modules must declare their interface \
           (interface coverage keeps the protocol surface reviewable)";
      };
    ]
  else []

let describe_exn = function
  | Syntaxerr.Error _ -> "syntax error"
  | e -> Printexc.to_string e

let run ?(config = default_config) ?(allowlist = []) ~root dirs =
  (* A mistyped directory must not read as a clean scan. *)
  let missing_dirs =
    List.filter
      (fun d ->
        let abs = Filename.concat root d in
        not (Sys.file_exists abs && Sys.is_directory abs))
      dirs
  in
  let files = ml_files ~root dirs in
  let broken = ref [] in
  let findings =
    List.concat_map
      (fun file ->
        let structural =
          match parse_impl (Filename.concat root file) with
          | str -> Lint_rules.analyse config ~file str
          | exception e ->
              broken := (file, describe_exn e) :: !broken;
              []
        in
        structural @ check_mli config ~root file)
      files
  in
  let kept, suppressed = Lint_allow.apply allowlist findings in
  {
    findings = List.sort compare_findings kept;
    suppressed = List.sort compare_findings suppressed;
    broken = List.rev !broken;
    missing_dirs;
    files_scanned = List.length files;
  }
