(* Module-qualified call graph and fixpoint effect classification.

   Each scanned .ml file defines one graph module (capitalised basename);
   one level of nested [module N = struct .. end] is registered under [N]
   as well, because call sites name functions by their last two dotted
   components. [module R = Afs_rpc.Remote] aliases are resolved per file,
   so aliased and direct references meet in the same node.

   Per top-level binding the walk records, in AST order, the event stream
   the Y1 rule replays (shared-field reads/writes, yields, validations,
   calls, discarded results), plus the seeds of the effect lattice:

     Yields   — transitively reaches a parked-coroutine primitive
                (Proc.delay, Ivar.read, Channel.*, Rpc.call) or applies a
                configured function-valued field (dynamic call assumed to
                yield);
     Ambient  — transitively reaches an ambient time/randomness source
                (the D1 seeds);
     Mutates  — transitively writes a configured shared-state field;
     Reads    — transitively reads one;
     Validates— transitively passes through a configured validator;
     Moved    — may surface Errors.Moved to its caller (calls a Moved
                source or a Moved-capable function and has no [Moved]
                match case of its own).

   The classification is a least fixpoint over the call graph: summaries
   start empty and grow monotonically until stable, so mutual recursion
   and cycles terminate. The analysis is lexical (no typing): lambdas are
   attributed to their enclosing binding, and dynamic calls through
   record fields are invisible unless listed in [yielding_fields] — both
   trades are conservative for C1 (attribution can only add effects) and
   documented for Y1. *)

open Lint_types
module SS = Set.Make (String)

type event =
  | Read of string * Location.t  (** shared field read *)
  | Write of string * Location.t * bool  (** bool: inside a [Moved] match case *)
  | Yield of string * Location.t
  | Ambient of string * Location.t
  | Validate of string * Location.t
  | Call of string * Location.t * bool  (** callee key; bool as in [Write] *)
  | Discard of string * Location.t  (** result of this callee dropped via ignore / let _ *)

type def = {
  key : string;  (** "Module.fn" *)
  file : string;
  loc : Location.t;
  events : event list;
  calls : SS.t;  (** resolved callee keys *)
  handles_moved : bool;  (** body has a match case whose pattern mentions [Moved] *)
  direct_yield : (string * Location.t) option;
  direct_ambient : (string * Location.t) option;
  direct_moved : bool;  (** calls a configured Moved source *)
}

type summary = {
  mutable yields : bool;
  mutable ambient : bool;
  mutable validates : bool;
  mutable moved : bool;
  mutable reads : SS.t;
  mutable writes : SS.t;
}

type t = {
  defs : def list;  (** sorted by key then file, for deterministic iteration *)
  by_key : (string, def list) Hashtbl.t;
  summaries : (string, summary) Hashtbl.t;
}

let module_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let components lid = try Longident.flatten lid with _ -> []

(* Last two components of a dotted path, aliases resolved on the module
   part: ["Afs_rpc"; "Remote"; "commit"] -> Some ("Remote", "commit"). *)
let tail2 ~aliases comps =
  match List.rev comps with
  | last :: parent :: _ ->
      let parent =
        match Hashtbl.find_opt aliases parent with Some real -> real | None -> parent
      in
      Some (parent, last)
  | _ -> None

(* Reuse the D1 notion of an ambient source. *)
let ambient_of comps =
  let has m = List.mem m comps in
  match List.rev comps with
  | _ when has "Random" -> Some "Random"
  | last :: _ when has "Unix" && List.mem last [ "gettimeofday"; "time"; "sleep"; "sleepf" ]
    ->
      Some ("Unix." ^ last)
  | "time" :: "Sys" :: _ -> Some "Sys.time"
  | _ -> None

let hashtbl_mutators = [ "replace"; "add"; "remove"; "reset"; "clear"; "filter_map_inplace" ]

(* Shared field mentioned anywhere inside [e] (the Hashtbl-mutation target,
   e.g. [Hashtbl.reset t.loads]). First hit wins; fields are rare enough
   that nesting ambiguity does not arise in practice. *)
let rec shared_field_in ~shared e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_field (inner, { txt; _ }) -> (
      match List.rev (components txt) with
      | f :: _ when List.mem f shared -> Some f
      | _ -> shared_field_in ~shared inner)
  | Parsetree.Pexp_apply (f, args) -> (
      match shared_field_in ~shared f with
      | Some _ as hit -> hit
      | None -> List.find_map (fun (_, a) -> shared_field_in ~shared a) args)
  | _ -> None

(* Head identifier of a possibly-curried application. *)
let rec head_ident e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> Some txt
  | Parsetree.Pexp_apply (f, _) -> head_ident f
  | _ -> None

let pattern_mentions_moved pat =
  let found = ref false in
  let iter =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.Parsetree.ppat_desc with
          | Parsetree.Ppat_construct ({ txt; _ }, _) -> (
              match List.rev (components txt) with
              | "Moved" :: _ -> found := true
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  iter.pat iter pat;
  !found

(* {2 Per-file collection} *)

type collector = {
  config : config;
  module_name : string;
  file : string;
  aliases : (string, string) Hashtbl.t;
  local_fns : (string, unit) Hashtbl.t;  (** top-level binding names of this module *)
  mutable acc : event list;  (** reversed *)
  mutable c_handles_moved : bool;
  mutable c_calls : SS.t;
  mutable c_yield : (string * Location.t) option;
  mutable c_ambient : (string * Location.t) option;
  mutable c_moved : bool;
  mutable moved_depth : int;  (** > 0 inside a [Moved] match case *)
}

let push c ev = c.acc <- ev :: c.acc

let in_moved c = c.moved_depth > 0

(* Events for one identifier mention. [name2] is the alias-resolved
   "Parent.last" (or bare name) the configured name lists match against. *)
let note_ident c loc lid =
  let comps = components lid in
  let cfg = c.config in
  let name2, resolved =
    match tail2 ~aliases:c.aliases comps with
    | Some (p, l) ->
        let dotted = p ^ "." ^ l in
        (dotted, Some dotted)
    | None -> (
        match comps with
        | [ bare ] ->
            ( bare,
              if Hashtbl.mem c.local_fns bare then Some (c.module_name ^ "." ^ bare) else None
            )
        | _ -> (String.concat "." comps, None))
  in
  (match ambient_of comps with
  | Some src -> begin
      push c (Ambient (src, loc));
      if c.c_ambient = None then c.c_ambient <- Some (src, loc)
    end
  | None -> ());
  if List.mem name2 cfg.yield_primitives then begin
    push c (Yield (name2, loc));
    if c.c_yield = None then c.c_yield <- Some (name2, loc)
  end;
  if List.mem name2 cfg.moved_sources then c.c_moved <- true;
  match resolved with
  | Some key ->
      if List.mem key cfg.validators then push c (Validate (key, loc));
      c.c_calls <- SS.add key c.c_calls;
      push c (Call (key, loc, in_moved c))
  | None -> if List.mem name2 cfg.validators then push c (Validate (name2, loc))

let note_discard c e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_apply _ | Parsetree.Pexp_ident _ -> (
      match head_ident e with
      | None -> ()
      | Some lid -> (
          let comps = components lid in
          match tail2 ~aliases:c.aliases comps with
          | Some (p, l) -> push c (Discard (p ^ "." ^ l, e.Parsetree.pexp_loc))
          | None -> (
              match comps with
              | [ bare ] when Hashtbl.mem c.local_fns bare ->
                  push c (Discard (c.module_name ^ "." ^ bare, e.Parsetree.pexp_loc))
              | _ -> ())))
  | _ -> ()

let rec walk_expr c (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; loc } -> note_ident c loc txt
  | Pexp_field (inner, { txt; loc }) -> begin
      walk_expr c inner;
      match List.rev (components txt) with
      | f :: _ when List.mem f c.config.shared_state_fields -> push c (Read (f, loc))
      | _ -> ()
    end
  | Pexp_setfield (inner, { txt; loc }, rhs) -> begin
      walk_expr c inner;
      walk_expr c rhs;
      match List.rev (components txt) with
      | f :: _ when List.mem f c.config.shared_state_fields ->
          push c (Write (f, loc, in_moved c))
      | _ -> ()
    end
  | Pexp_apply (fn, args) -> begin
      (* [ignore e] / [e |> ignore]: the call's result is dropped. *)
      (match (head_ident fn, args) with
      | Some (Longident.Lident "ignore"), [ (_, arg) ] -> note_discard c arg
      | Some (Longident.Ldot (Longident.Lident "Stdlib", "ignore")), [ (_, arg) ] ->
          note_discard c arg
      | Some (Longident.Lident "|>"), [ (_, lhs); (_, rhs) ]
        when head_ident rhs = Some (Longident.Lident "ignore") ->
          note_discard c lhs
      | _ -> ());
      (* A yielding function-valued field applied: dynamic call, assumed
         to park the caller. *)
      (match fn.pexp_desc with
      | Pexp_field (_, { txt; loc }) -> (
          match List.rev (components txt) with
          | f :: _ when List.mem f c.config.yielding_fields -> begin
              push c (Yield ("." ^ f, loc));
              if c.c_yield = None then c.c_yield <- Some ("." ^ f, loc)
            end
          | _ -> ())
      | _ -> ());
      (* Hashtbl mutation of a shared container. *)
      (match (head_ident fn, args) with
      | Some lid, (_, target) :: _ -> (
          match tail2 ~aliases:c.aliases (components lid) with
          | Some ("Hashtbl", op) when List.mem op hashtbl_mutators -> (
              match shared_field_in ~shared:c.config.shared_state_fields target with
              | Some f ->
                  (* The Read for the field access inside [target] is
                     pushed by the normal walk below; the mutation itself
                     lands after it. *)
                  walk_expr c fn;
                  List.iter (fun (_, a) -> walk_expr c a) args;
                  push c (Write (f, e.pexp_loc, in_moved c))
              | None ->
                  walk_expr c fn;
                  List.iter (fun (_, a) -> walk_expr c a) args)
          | _ ->
              walk_expr c fn;
              List.iter (fun (_, a) -> walk_expr c a) args)
      | _ ->
          walk_expr c fn;
          List.iter (fun (_, a) -> walk_expr c a) args)
    end
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) -> begin
      walk_expr c scrut;
      List.iter (walk_case c) cases
    end
  | Pexp_function cases -> List.iter (walk_case c) cases
  | Pexp_let (_, bindings, body) -> begin
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          (match vb.pvb_pat.ppat_desc with
          | Parsetree.Ppat_any -> note_discard c vb.pvb_expr
          | _ -> ());
          walk_expr c vb.pvb_expr)
        bindings;
      walk_expr c body
    end
  | _ ->
      (* Generic fallback: visit children in declaration order (which is
         source order for sequences, conditionals, tuples, ...). *)
      let iter = { Ast_iterator.default_iterator with expr = (fun _ e' -> walk_expr c e') } in
      Ast_iterator.default_iterator.expr iter e

and walk_case c (case : Parsetree.case) =
  let moved = pattern_mentions_moved case.pc_lhs in
  if moved then c.c_handles_moved <- true;
  Option.iter (walk_expr c) case.pc_guard;
  if moved then begin
    c.moved_depth <- c.moved_depth + 1;
    walk_expr c case.pc_rhs;
    c.moved_depth <- c.moved_depth - 1
  end
  else walk_expr c case.pc_rhs

(* Collect the defs of one parsed file. *)
let collect_file (config : config) ~file (str : Parsetree.structure) =
  let module_name = module_of_file file in
  let aliases = Hashtbl.create 8 in
  (* Pass 0: aliases and top-level binding names per module scope. *)
  let names_of items =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, bindings) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt; _ } -> Hashtbl.replace tbl txt ()
                | _ -> ())
              bindings
        | _ -> ())
      items;
    tbl
  in
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
          match pmb_expr.pmod_desc with
          | Pmod_ident { txt; _ } -> (
              match List.rev (components txt) with
              | real :: _ -> Hashtbl.replace aliases name real
              | [] -> ())
          | _ -> ())
      | _ -> ())
    str;
  let defs = ref [] in
  let collect_bindings ~scope_module ~local_fns items =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, bindings) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt = fn; loc } ->
                    let c =
                      {
                        config;
                        module_name = scope_module;
                        file;
                        aliases;
                        local_fns;
                        acc = [];
                        c_handles_moved = false;
                        c_calls = SS.empty;
                        c_yield = None;
                        c_ambient = None;
                        c_moved = false;
                        moved_depth = 0;
                      }
                    in
                    walk_expr c vb.pvb_expr;
                    defs :=
                      {
                        key = scope_module ^ "." ^ fn;
                        file;
                        loc;
                        events = List.rev c.acc;
                        calls = c.c_calls;
                        handles_moved = c.c_handles_moved;
                        direct_yield = c.c_yield;
                        direct_ambient = c.c_ambient;
                        direct_moved = c.c_moved;
                      }
                      :: !defs
                | _ -> ())
              bindings
        | _ -> ())
      items
  in
  collect_bindings ~scope_module:module_name ~local_fns:(names_of str) str;
  (* One level of nested structures: [module Txn = struct .. end] is
     addressable as [Txn.fn] from other files. *)
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_module { pmb_name = { txt = Some sub; _ }; pmb_expr; _ } -> (
          match pmb_expr.pmod_desc with
          | Pmod_structure items ->
              collect_bindings ~scope_module:sub ~local_fns:(names_of items) items
          | _ -> ())
      | _ -> ())
    str;
  List.rev !defs

(* {2 The fixpoint} *)

let empty_summary () =
  { yields = false; ambient = false; validates = false; moved = false;
    reads = SS.empty; writes = SS.empty }

let summary t key = Hashtbl.find_opt t.summaries key

let build (config : config) files =
  let defs =
    List.concat_map (fun (file, str) -> collect_file config ~file str) files
    |> List.sort (fun a b ->
           match compare a.key b.key with 0 -> compare a.file b.file | c -> c)
  in
  let by_key = Hashtbl.create 256 in
  List.iter
    (fun d ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_key d.key) in
      Hashtbl.replace by_key d.key (existing @ [ d ]))
    defs;
  let summaries = Hashtbl.create 256 in
  List.iter (fun d -> if not (Hashtbl.mem summaries d.key) then
      Hashtbl.replace summaries d.key (empty_summary ())) defs;
  (* Direct seeds per def, folded into the key's summary. *)
  let seed d (s : summary) =
    if d.direct_yield <> None then s.yields <- true;
    if d.direct_ambient <> None then s.ambient <- true;
    if List.mem d.key config.validators then s.validates <- true;
    List.iter
      (function
        | Read (f, _) -> s.reads <- SS.add f s.reads
        | Write (f, _, _) -> s.writes <- SS.add f s.writes
        | Validate _ -> s.validates <- true
        | _ -> ())
      d.events
  in
  List.iter (fun d -> seed d (Hashtbl.find summaries d.key)) defs;
  (* Least fixpoint; every field grows monotonically so this terminates. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun d ->
        let s = Hashtbl.find summaries d.key in
        let moved_now =
          (not d.handles_moved)
          && (d.direct_moved
             || SS.exists
                  (fun callee ->
                    match Hashtbl.find_opt summaries callee with
                    | Some cs -> cs.moved
                    | None -> false)
                  d.calls)
        in
        if moved_now && not s.moved then begin
          s.moved <- true;
          changed := true
        end;
        SS.iter
          (fun callee ->
            match Hashtbl.find_opt summaries callee with
            | None -> ()
            | Some cs ->
                if cs.yields && not s.yields then (s.yields <- true; changed := true);
                if cs.ambient && not s.ambient then (s.ambient <- true; changed := true);
                if cs.validates && not s.validates then (s.validates <- true; changed := true);
                let reads' = SS.union s.reads cs.reads in
                if not (SS.equal reads' s.reads) then (s.reads <- reads'; changed := true);
                let writes' = SS.union s.writes cs.writes in
                if not (SS.equal writes' s.writes) then (s.writes <- writes'; changed := true))
          d.calls)
      defs
  done;
  { defs; by_key; summaries }

(* Shortest call chain from [key] to a def with a direct witness, for C1
   reports: ["Server.commit"; "Pagestore.flush"; ...; "Proc.delay"]. *)
let witness_chain t ~key ~(has : def -> (string * Location.t) option) =
  let visited = Hashtbl.create 32 in
  let q = Queue.create () in
  Queue.add (key, [ key ]) q;
  Hashtbl.replace visited key ();
  let rec bfs () =
    match Queue.take_opt q with
    | None -> None
    | Some (k, path) -> (
        let defs = Option.value ~default:[] (Hashtbl.find_opt t.by_key k) in
        match List.find_map has defs with
        | Some (prim, _) -> Some (List.rev (prim :: path))
        | None ->
            List.iter
              (fun d ->
                SS.iter
                  (fun callee ->
                    if not (Hashtbl.mem visited callee) then begin
                      Hashtbl.replace visited callee ();
                      Queue.add (callee, callee :: path) q
                    end)
                  d.calls)
              defs;
            bfs ())
  in
  bfs ()
