open Afs_util

let quick = Helpers.quick

(* {2 Xrng} *)

let test_rng_determinism () =
  let a = Xrng.create 42 and b = Xrng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Xrng.bits64 a) (Xrng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Xrng.create 1 and b = Xrng.create 2 in
  Alcotest.(check bool) "different seeds differ" false (Xrng.bits64 a = Xrng.bits64 b)

let test_rng_int_bounds () =
  let rng = Xrng.create 7 in
  for _ = 1 to 1000 do
    let v = Xrng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Xrng.create 7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Xrng.int: bound must be positive")
    (fun () -> ignore (Xrng.int rng 0))

let test_rng_int_in () =
  let rng = Xrng.create 9 in
  for _ = 1 to 500 do
    let v = Xrng.int_in rng (-3) 4 in
    Alcotest.(check bool) "in closed range" true (v >= -3 && v <= 4)
  done

let test_rng_float_bounds () =
  let rng = Xrng.create 11 in
  for _ = 1 to 1000 do
    let v = Xrng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_split_independent () =
  let parent = Xrng.create 5 in
  let child = Xrng.split parent in
  let a = Xrng.bits64 parent and b = Xrng.bits64 child in
  Alcotest.(check bool) "streams diverge" false (a = b)

let test_rng_exponential_positive () =
  let rng = Xrng.create 13 in
  for _ = 1 to 200 do
    Alcotest.(check bool) "positive" true (Xrng.exponential rng 10.0 >= 0.0)
  done

let test_rng_exponential_mean () =
  let rng = Xrng.create 21 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Xrng.exponential rng 10.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 10" true (mean > 9.0 && mean < 11.0)

let test_rng_shuffle_permutation () =
  let rng = Xrng.create 3 in
  let a = Array.init 50 Fun.id in
  Xrng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted

let test_rng_pick () =
  let rng = Xrng.create 17 in
  let a = [| 1; 2; 3 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "picked member" true (Array.mem (Xrng.pick rng a) a)
  done

(* {2 Zipf} *)

let test_zipf_uniform () =
  let z = Zipf.create ~n:4 ~theta:0.0 in
  for k = 0 to 3 do
    Alcotest.(check bool) "uniform mass" true (abs_float (Zipf.probability z k -. 0.25) < 1e-9)
  done

let test_zipf_skew_orders_mass () =
  let z = Zipf.create ~n:10 ~theta:1.0 in
  for k = 0 to 8 do
    Alcotest.(check bool) "monotone" true (Zipf.probability z k >= Zipf.probability z (k + 1))
  done

let test_zipf_mass_sums_to_one () =
  let z = Zipf.create ~n:100 ~theta:0.7 in
  let total = ref 0.0 in
  for k = 0 to 99 do
    total := !total +. Zipf.probability z k
  done;
  Alcotest.(check bool) "sums to 1" true (abs_float (!total -. 1.0) < 1e-9)

let test_zipf_sample_range () =
  let z = Zipf.create ~n:8 ~theta:0.9 in
  let rng = Xrng.create 23 in
  for _ = 1 to 1000 do
    let k = Zipf.sample z rng in
    Alcotest.(check bool) "rank in range" true (k >= 0 && k < 8)
  done

let test_zipf_sample_distribution () =
  let z = Zipf.create ~n:4 ~theta:1.2 in
  let rng = Xrng.create 29 in
  let counts = Array.make 4 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  for k = 0 to 3 do
    let expected = Zipf.probability z k *. float_of_int n in
    let observed = float_of_int counts.(k) in
    Alcotest.(check bool)
      (Printf.sprintf "rank %d within 10%%" k)
      true
      (abs_float (observed -. expected) < 0.1 *. expected +. 50.0)
  done

let test_zipf_rejects_bad_args () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Zipf.create: n must be positive") (fun () ->
      ignore (Zipf.create ~n:0 ~theta:1.0))

(* {2 Capability} *)

let test_cap_mint_validate () =
  let secret = Capability.secret_of_seed 99 in
  let cap =
    Capability.mint secret ~port:(Capability.port_of_int 7) ~obj:42
      ~rights:Capability.rights_all
  in
  Alcotest.(check bool) "validates" true (Capability.validate secret cap)

let test_cap_forgery_detected () =
  let secret = Capability.secret_of_seed 99 in
  let cap =
    Capability.mint secret ~port:(Capability.port_of_int 7) ~obj:42
      ~rights:Capability.right_read
  in
  let forged = { cap with Capability.obj = 43 } in
  Alcotest.(check bool) "forged obj fails" false (Capability.validate secret forged);
  let amplified = { cap with Capability.rights = Capability.rights_all } in
  Alcotest.(check bool) "amplified rights fail" false (Capability.validate secret amplified)

let test_cap_wrong_secret () =
  let s1 = Capability.secret_of_seed 1 and s2 = Capability.secret_of_seed 2 in
  let cap =
    Capability.mint s1 ~port:(Capability.port_of_int 7) ~obj:1 ~rights:Capability.rights_all
  in
  Alcotest.(check bool) "other secret rejects" false (Capability.validate s2 cap)

let test_cap_restrict () =
  let secret = Capability.secret_of_seed 5 in
  let cap =
    Capability.mint secret ~port:(Capability.port_of_int 9) ~obj:3 ~rights:Capability.rights_all
  in
  match Capability.restrict secret cap Capability.right_read with
  | Error msg -> Alcotest.failf "restrict failed: %s" msg
  | Ok restricted ->
      Alcotest.(check bool) "restricted validates" true (Capability.validate secret restricted);
      (match Capability.restrict secret restricted Capability.rights_all with
      | Ok _ -> Alcotest.fail "amplification allowed"
      | Error _ -> ())

let test_cap_rights_subset () =
  let open Capability in
  Alcotest.(check bool) "r ⊆ all" true (rights_subset right_read rights_all);
  Alcotest.(check bool) "all ⊄ r" false (rights_subset rights_all right_read);
  Alcotest.(check bool) "none ⊆ r" true (rights_subset rights_none right_read)

(* {2 Pagepath} *)

let test_path_roundtrip_string () =
  let cases = [ []; [ 0 ]; [ 1; 2; 3 ]; [ 42; 0; 7 ] ] in
  List.iter
    (fun l ->
      let p = Pagepath.of_list l in
      match Pagepath.of_string (Pagepath.to_string p) with
      | Ok p' -> Alcotest.(check bool) "roundtrip" true (Pagepath.equal p p')
      | Error msg -> Alcotest.fail msg)
    cases

let test_path_parent_child () =
  let p = Pagepath.of_list [ 1; 2 ] in
  let c = Pagepath.child p 3 in
  Alcotest.(check (list int)) "child" [ 1; 2; 3 ] (Pagepath.to_list c);
  (match Pagepath.parent c with
  | Some q -> Alcotest.(check bool) "parent" true (Pagepath.equal p q)
  | None -> Alcotest.fail "no parent");
  Alcotest.(check (option reject)) "root has no parent" None
    (Option.map ignore (Pagepath.parent Pagepath.root))

let test_path_prefix () =
  let a = Pagepath.of_list [ 1 ] and b = Pagepath.of_list [ 1; 2 ] in
  Alcotest.(check bool) "a prefixes b" true (Pagepath.is_prefix a b);
  Alcotest.(check bool) "b does not prefix a" false (Pagepath.is_prefix b a);
  Alcotest.(check bool) "root prefixes all" true (Pagepath.is_prefix Pagepath.root b);
  Alcotest.(check bool) "self-prefix" true (Pagepath.is_prefix b b)

let test_path_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Pagepath.of_list: negative index")
    (fun () -> ignore (Pagepath.of_list [ -1 ]))

let test_path_of_string_errors () =
  (match Pagepath.of_string "no-slash" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage");
  match Pagepath.of_string "/1.x.2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted non-numeric"

let test_path_last_depth () =
  Alcotest.(check (option int)) "last of root" None (Pagepath.last Pagepath.root);
  Alcotest.(check (option int)) "last" (Some 9) (Pagepath.last (Pagepath.of_list [ 1; 9 ]));
  Alcotest.(check int) "depth" 2 (Pagepath.depth (Pagepath.of_list [ 1; 9 ]))

(* {2 Wire} *)

let test_wire_scalar_roundtrip () =
  let w = Wire.Writer.create () in
  Wire.Writer.u8 w 0xAB;
  Wire.Writer.u16 w 0xCDEF;
  Wire.Writer.u32 w 0x12345678;
  Wire.Writer.u64 w 0x1122334455667788L;
  let r = Wire.Reader.of_bytes (Wire.Writer.contents w) in
  Alcotest.(check int) "u8" 0xAB (Wire.Reader.u8 r);
  Alcotest.(check int) "u16" 0xCDEF (Wire.Reader.u16 r);
  Alcotest.(check int) "u32" 0x12345678 (Wire.Reader.u32 r);
  Alcotest.(check int64) "u64" 0x1122334455667788L (Wire.Reader.u64 r);
  Wire.Reader.expect_end r

let test_wire_varint_roundtrip () =
  let values = [ 0; 1; 127; 128; 300; 65535; 1 lsl 28; (1 lsl 56) - 1 ] in
  let w = Wire.Writer.create () in
  List.iter (Wire.Writer.varint w) values;
  let r = Wire.Reader.of_bytes (Wire.Writer.contents w) in
  List.iter (fun v -> Alcotest.(check int) (string_of_int v) v (Wire.Reader.varint r)) values

let test_wire_string_roundtrip () =
  let w = Wire.Writer.create () in
  Wire.Writer.string w "hello";
  Wire.Writer.string w "";
  Wire.Writer.sized_bytes w (Bytes.of_string "raw\x00data");
  let r = Wire.Reader.of_bytes (Wire.Writer.contents w) in
  Alcotest.(check string) "s1" "hello" (Wire.Reader.string r);
  Alcotest.(check string) "s2" "" (Wire.Reader.string r);
  Alcotest.(check string) "bytes" "raw\x00data" (Bytes.to_string (Wire.Reader.sized_bytes r))

let test_wire_truncation_detected () =
  let w = Wire.Writer.create () in
  Wire.Writer.u32 w 7;
  let full = Wire.Writer.contents w in
  let truncated = Bytes.sub full 0 2 in
  let r = Wire.Reader.of_bytes truncated in
  Alcotest.check_raises "truncated"
    (Wire.Decode_error "u32: truncated at 0")
    (fun () -> ignore (Wire.Reader.u32 r))

let test_wire_trailing_garbage_detected () =
  let r = Wire.Reader.of_bytes (Bytes.make 3 'x') in
  ignore (Wire.Reader.u8 r);
  Alcotest.check_raises "trailing"
    (Wire.Decode_error "trailing garbage: 2 bytes")
    (fun () -> Wire.Reader.expect_end r)

let test_wire_negative_varint_rejected () =
  let w = Wire.Writer.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Wire.Writer.varint: negative")
    (fun () -> Wire.Writer.varint w (-1))

let test_crc32_known_value () =
  (* CRC-32 of "123456789" is the classic check value 0xCBF43926. *)
  Alcotest.(check int) "check value" 0xCBF43926 (Wire.crc32 (Bytes.of_string "123456789"))

let test_crc32_detects_flip () =
  let data = Bytes.of_string "some page image" in
  let crc = Wire.crc32 data in
  Bytes.set data 3 'X';
  Alcotest.(check bool) "differs" false (crc = Wire.crc32 data)

(* {2 Stats} *)

let test_summary_moments () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Stats.Summary.count s);
  Alcotest.(check bool) "mean" true (abs_float (Stats.Summary.mean s -. 5.0) < 1e-9);
  Alcotest.(check bool) "min" true (Stats.Summary.min s = 2.0);
  Alcotest.(check bool) "max" true (Stats.Summary.max s = 9.0);
  (* Sample variance of that data is 32/7. *)
  Alcotest.(check bool) "variance" true
    (abs_float (Stats.Summary.variance s -. (32.0 /. 7.0)) < 1e-9)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.(check bool) "mean 0" true (Stats.Summary.mean s = 0.0);
  Alcotest.(check bool) "stddev 0" true (Stats.Summary.stddev s = 0.0)

let test_histogram_percentiles () =
  let h = Stats.Histogram.create () in
  for i = 1 to 1000 do
    Stats.Histogram.add h (float_of_int i)
  done;
  let p50 = Stats.Histogram.percentile h 0.5 in
  let p99 = Stats.Histogram.percentile h 0.99 in
  Alcotest.(check bool) "p50 near 500" true (p50 > 400.0 && p50 < 620.0);
  Alcotest.(check bool) "p99 near 990" true (p99 > 850.0 && p99 < 1200.0);
  Alcotest.(check bool) "p50 <= p99" true (p50 <= p99)

let test_histogram_empty () =
  let h = Stats.Histogram.create () in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "0 on empty at p=%g" p)
        true
        (Stats.Histogram.percentile h p = 0.0))
    [ 0.0; 0.5; 0.99; 1.0 ]

let test_histogram_endpoints_exact () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add h) [ 3.7; 120.0; 0.25; 41.5 ];
  (* p=0/p=1 return the observed extremes, not bucket upper bounds. *)
  Alcotest.(check (float 0.0)) "p0 is the min" 0.25 (Stats.Histogram.percentile h 0.0);
  Alcotest.(check (float 0.0)) "p100 is the max" 120.0 (Stats.Histogram.percentile h 1.0)

let test_histogram_rejects_bad_p () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.add h 1.0;
  List.iter
    (fun p ->
      Alcotest.check_raises
        (Printf.sprintf "p=%g" p)
        (Invalid_argument "Histogram.percentile")
        (fun () -> ignore (Stats.Histogram.percentile h p)))
    [ -0.1; 1.1; Float.nan ]

let test_histogram_merge () =
  let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
  Stats.Histogram.add a 1.0;
  Stats.Histogram.add b 100.0;
  let m = Stats.Histogram.merge a b in
  Alcotest.(check int) "count" 2 (Stats.Histogram.count m);
  Alcotest.(check (float 0.0)) "min crosses inputs" 1.0 (Stats.Histogram.percentile m 0.0);
  Alcotest.(check (float 0.0)) "max crosses inputs" 100.0 (Stats.Histogram.percentile m 1.0);
  Alcotest.(check int) "inputs untouched" 1 (Stats.Histogram.count a)

(* merge ≡ adding both streams: every percentile of the merged histogram
   matches the histogram built from the concatenated samples. *)
let prop_histogram_merge_is_stream_union =
  let sample = QCheck.(list_of_size (Gen.int_range 0 40) (float_range 0.001 50_000.0)) in
  QCheck.Test.make ~name:"histogram merge equals adding both streams" ~count:200
    QCheck.(pair sample sample)
    (fun (xs, ys) ->
      let of_list l =
        let h = Stats.Histogram.create () in
        List.iter (Stats.Histogram.add h) l;
        h
      in
      let merged = Stats.Histogram.merge (of_list xs) (of_list ys) in
      let union = of_list (xs @ ys) in
      Stats.Histogram.count merged = Stats.Histogram.count union
      && List.for_all
           (fun p ->
             Stats.Histogram.percentile merged p = Stats.Histogram.percentile union p)
           [ 0.0; 0.01; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ])

let test_counter_incr_get_missing () =
  let c = Stats.Counter.create () in
  Alcotest.(check int) "missing is 0" 0 (Stats.Counter.get c "never");
  Stats.Counter.incr c "x";
  Stats.Counter.incr ~by:0 c "zero";
  Alcotest.(check int) "by:0 still creates" 0 (Stats.Counter.get c "zero");
  Stats.Counter.incr ~by:(-1) c "x";
  Alcotest.(check int) "negative by decrements" 0 (Stats.Counter.get c "x");
  Alcotest.(check (list (pair string int)))
    "to_list keeps zeroed names" [ ("x", 0); ("zero", 0) ] (Stats.Counter.to_list c)

let test_counter_independent_instances () =
  let a = Stats.Counter.create () and b = Stats.Counter.create () in
  Stats.Counter.incr a "shared";
  Alcotest.(check int) "no cross-talk" 0 (Stats.Counter.get b "shared")

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c "a";
  Stats.Counter.incr c "a";
  Stats.Counter.incr ~by:5 c "b";
  Alcotest.(check int) "a" 2 (Stats.Counter.get c "a");
  Alcotest.(check int) "b" 5 (Stats.Counter.get c "b");
  Alcotest.(check int) "missing" 0 (Stats.Counter.get c "zzz");
  Alcotest.(check (list (pair string int))) "sorted" [ ("a", 2); ("b", 5) ]
    (Stats.Counter.to_list c)

let test_ratio () =
  Alcotest.(check bool) "half" true (Stats.ratio 1 2 = 0.5);
  Alcotest.(check bool) "zero denominator" true (Stats.ratio 1 0 = 0.0)

(* [fill_printable] computes splitmix64 draws directly from the draw
   index; it must produce exactly the bytes (and final RNG state) of the
   one-[int]-per-byte loop it replaced, or every workload trace shifts. *)
let test_rng_fill_printable_identity () =
  List.iter
    (fun (seed, len) ->
      let a = Xrng.create seed and b = Xrng.create seed in
      let fast = Bytes.create len in
      Xrng.fill_printable a fast;
      let slow = Bytes.init len (fun _ -> Char.chr (32 + Xrng.int b 95)) in
      Alcotest.(check string)
        (Printf.sprintf "bytes identical (seed %d, len %d)" seed len)
        (Bytes.to_string slow) (Bytes.to_string fast);
      Alcotest.(check int64) "RNG state advanced identically" (Xrng.bits64 b) (Xrng.bits64 a))
    [ (1, 0); (7, 1); (42, 13); (1234, 1024) ]

let () =
  Alcotest.run "util"
    [
      ( "xrng",
        [
          quick "determinism" test_rng_determinism;
          quick "seed sensitivity" test_rng_seed_sensitivity;
          quick "int bounds" test_rng_int_bounds;
          quick "int rejects non-positive" test_rng_int_rejects_nonpositive;
          quick "fill_printable stream identity" test_rng_fill_printable_identity;
          quick "int_in bounds" test_rng_int_in;
          quick "float bounds" test_rng_float_bounds;
          quick "split independence" test_rng_split_independent;
          quick "exponential positive" test_rng_exponential_positive;
          quick "exponential mean" test_rng_exponential_mean;
          quick "shuffle is a permutation" test_rng_shuffle_permutation;
          quick "pick member" test_rng_pick;
        ] );
      ( "zipf",
        [
          quick "theta 0 is uniform" test_zipf_uniform;
          quick "mass is monotone" test_zipf_skew_orders_mass;
          quick "mass sums to 1" test_zipf_mass_sums_to_one;
          quick "sample range" test_zipf_sample_range;
          quick "sample matches mass" test_zipf_sample_distribution;
          quick "rejects bad args" test_zipf_rejects_bad_args;
        ] );
      ( "capability",
        [
          quick "mint/validate" test_cap_mint_validate;
          quick "forgery detected" test_cap_forgery_detected;
          quick "wrong secret rejected" test_cap_wrong_secret;
          quick "restrict" test_cap_restrict;
          quick "rights subset" test_cap_rights_subset;
        ] );
      ( "pagepath",
        [
          quick "string roundtrip" test_path_roundtrip_string;
          quick "parent/child" test_path_parent_child;
          quick "prefix" test_path_prefix;
          quick "rejects negative" test_path_rejects_negative;
          quick "of_string errors" test_path_of_string_errors;
          quick "last/depth" test_path_last_depth;
        ] );
      ( "wire",
        [
          quick "scalar roundtrip" test_wire_scalar_roundtrip;
          quick "varint roundtrip" test_wire_varint_roundtrip;
          quick "string roundtrip" test_wire_string_roundtrip;
          quick "truncation detected" test_wire_truncation_detected;
          quick "trailing garbage detected" test_wire_trailing_garbage_detected;
          quick "negative varint rejected" test_wire_negative_varint_rejected;
          quick "crc32 known value" test_crc32_known_value;
          quick "crc32 detects corruption" test_crc32_detects_flip;
        ] );
      ( "stats",
        [
          quick "summary moments" test_summary_moments;
          quick "summary empty" test_summary_empty;
          quick "histogram percentiles" test_histogram_percentiles;
          quick "histogram empty" test_histogram_empty;
          quick "histogram endpoints exact" test_histogram_endpoints_exact;
          quick "histogram rejects bad p" test_histogram_rejects_bad_p;
          quick "histogram merge" test_histogram_merge;
          QCheck_alcotest.to_alcotest prop_histogram_merge_is_stream_union;
          quick "counter" test_counter;
          quick "counter incr/get/missing" test_counter_incr_get_missing;
          quick "counter instances independent" test_counter_independent_instances;
          quick "ratio" test_ratio;
        ] );
    ]
