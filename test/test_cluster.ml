(* The cluster layer: routing, single-shard equivalence, shard fault
   isolation and recovery, and — the property everything hinges on — that
   online migration racing live committers never loses a committed
   update. *)

open Afs_cluster
module Engine = Afs_sim.Engine
module Proc = Afs_sim.Proc
module Capability = Afs_util.Capability
module Xrng = Afs_util.Xrng
module Stats = Afs_util.Stats
module P = Afs_util.Pagepath
module Server = Afs_core.Server
module Errors = Afs_core.Errors
module Remote = Afs_rpc.Remote

let quick = Helpers.quick
let bytes = Helpers.bytes
let ok = Helpers.ok

(* Run [body] as a simulated process and return its result. *)
let in_sim body =
  let engine = Engine.create () in
  let result = ref None in
  let _ = Proc.spawn engine (fun () -> result := Some (body engine)) in
  Engine.run engine;
  match !result with Some r -> r | None -> Alcotest.fail "process never finished"

(* A cluster plus a process-scoped client, for tests that live entirely
   inside one simulation. *)
let in_cluster ?(latency_ms = 1.0) ~shards body =
  in_sim (fun engine ->
      let cluster = Cluster.create ~latency_ms engine ~shards in
      body cluster (Cluster_client.connect cluster))

(* {2 Forward-marker codec} *)

let gen_cap =
  QCheck2.Gen.(
    let* port = int_bound 0xFFFFFF in
    let* obj = int_bound 100_000 in
    let* rights = int_bound 255 in
    let* check = int_bound 0x3FFFFFFF in
    return
      {
        Capability.port = Capability.port_of_int port;
        obj;
        rights = Capability.rights_of_int rights;
        check;
      })

let prop_forward_roundtrip =
  QCheck2.Test.make ~name:"forward marker: decode . encode = Some" ~count:200
    ~print:(Fmt.str "%a" Capability.pp) gen_cap (fun cap ->
      match Forward.decode (Forward.encode cap) with
      | Some cap' -> Capability.equal cap cap'
      | None -> false)

let test_forward_rejects_data () =
  Alcotest.(check bool) "plain data" false (Forward.is_marker (bytes "hello world"));
  Alcotest.(check bool) "empty" false (Forward.is_marker Bytes.empty);
  Alcotest.(check bool)
    "prefix but garbage" false
    (Forward.is_marker (bytes (Forward.prefix ^ "not:numbers")))

(* {2 Routing} *)

(* Routing is total over cluster-minted capabilities and deterministic:
   the same capability always routes, twice, to the same shard — and that
   shard's port is the capability's port. *)
let prop_routing_total =
  QCheck2.Test.make ~name:"routing: total and stable over minted files" ~count:40
    ~print:QCheck2.Print.(pair int int)
    QCheck2.Gen.(pair (int_range 1 6) (int_range 1 12))
    (fun (nshards, nfiles) ->
      let engine = Engine.create () in
      let cluster = Cluster.create engine ~shards:nshards in
      let files =
        List.init nfiles (fun _ -> ok (Cluster.create_file_direct cluster ()))
      in
      List.for_all
        (fun cap ->
          match
            (Cluster.shard_of_cap cluster cap, Cluster.shard_of_cap cluster cap)
          with
          | Ok (c1, s1), Ok (c2, s2) ->
              Capability.equal c1 c2
              && Shard.id s1 = Shard.id s2
              && Capability.port_to_int cap.Capability.port
                 = Capability.port_to_int (Shard.port s1)
          | _ -> false)
        files)

let test_routing_foreign_port () =
  let engine = Engine.create () in
  let cluster = Cluster.create engine ~shards:2 in
  let foreign =
    {
      Capability.port = Capability.port_of_int 0xDEAD;
      obj = 1;
      rights = Capability.rights_all;
      check = 0;
    }
  in
  match Cluster.shard_of_cap cluster foreign with
  | Error Errors.Invalid_capability -> ()
  | Ok _ -> Alcotest.fail "foreign capability routed"
  | Error e -> Alcotest.failf "unexpected error: %s" (Errors.to_string e)

let test_router_forward_cycle_safe () =
  (* A forward cycle can only arise from a corrupted cache, but resolve
     must still terminate on one. *)
  let router =
    Router.create ~ports:[ Capability.port_of_int 1; Capability.port_of_int 2 ]
  in
  let cap port obj =
    {
      Capability.port = Capability.port_of_int port;
      obj;
      rights = Capability.rights_all;
      check = 0;
    }
  in
  Router.note_forward router ~old:(cap 1 7) (cap 2 7);
  Router.note_forward router ~old:(cap 2 7) (cap 1 7);
  let resolved = Router.resolve router (cap 1 7) in
  Alcotest.(check bool)
    "terminates on a cycle member" true
    (Capability.equal resolved (cap 1 7) || Capability.equal resolved (cap 2 7))

let test_round_robin_placement () =
  let engine = Engine.create () in
  let cluster = Cluster.create engine ~shards:3 in
  let homes =
    List.init 6 (fun _ ->
        let cap = ok (Cluster.create_file_direct cluster ()) in
        match Cluster.shard_of_cap cluster cap with
        | Ok (_, s) -> Shard.id s
        | Error e -> Alcotest.failf "routing failed: %s" (Errors.to_string e))
  in
  Alcotest.(check (list int)) "round robin" [ 0; 1; 2; 0; 1; 2 ] homes

(* {2 Single-shard equivalence} *)

(* A one-shard cluster must produce a driver report bit-identical to the
   bare remote server: shard 0 keeps the default seed (same capabilities),
   the location check adds no RPCs and no simulated time, and the SUT
   adapter issues the same request sequence. *)
let test_single_shard_identical () =
  let open Afs_workload in
  let shape = { Workload.small_updates with nfiles = 16; pages_per_file = 8 } in
  let config =
    { Driver.default_config with clients = 8; duration_ms = 1_500.0; think_ms = 10.0 }
  in
  let gen = Workload.make shape in
  let bare =
    let engine = Engine.create () in
    let server = Server.create (Afs_core.Store.memory ()) in
    let files = ok (Workload.setup_pages server shape ~initial:(bytes "0")) in
    let host = Remote.host ~latency_ms:2.0 engine ~name:"afs" server in
    Driver.run engine config
      (Sut.afs_remote (Remote.connect [ host ]) ~fallback:server ~files)
      ~gen
  in
  let clustered =
    let engine = Engine.create () in
    let cluster = Cluster.create ~latency_ms:2.0 engine ~shards:1 in
    let files = ok (Workload.setup_cluster cluster shape ~initial:(bytes "0")) in
    Driver.run engine config
      (Sut.afs_cluster (Cluster_client.connect cluster) ~files)
      ~gen
  in
  Alcotest.(check int) "committed" bare.Driver.committed clustered.Driver.committed;
  Alcotest.(check int) "given up" bare.Driver.given_up clustered.Driver.given_up;
  Alcotest.(check int) "attempts" bare.Driver.attempts clustered.Driver.attempts;
  Alcotest.(check (float 0.0))
    "mean" bare.Driver.mean_latency_ms clustered.Driver.mean_latency_ms;
  Alcotest.(check (float 0.0)) "p50" bare.Driver.p50_ms clustered.Driver.p50_ms;
  Alcotest.(check (float 0.0)) "p95" bare.Driver.p95_ms clustered.Driver.p95_ms;
  Alcotest.(check (float 0.0)) "p99" bare.Driver.p99_ms clustered.Driver.p99_ms;
  Alcotest.(check (list (pair int int)))
    "retry histogram" bare.Driver.retry_histogram clustered.Driver.retry_histogram

(* {2 Fault isolation and recovery} *)

let test_crash_isolated_and_recoverable () =
  in_cluster ~shards:2 (fun cluster client ->
      let f0 = ok (Cluster_client.create_file ~data:(bytes "on shard 0") client) in
      let f1 = ok (Cluster_client.create_file ~data:(bytes "on shard 1") client) in
      List.iter
        (fun f ->
          ok
            (Cluster_client.update client f (fun txn ->
                 let open Errors in
                 let* _ =
                   Cluster_client.Txn.insert txn ~parent:P.root ~index:0
                     ~data:(bytes "committed") ()
                 in
                 Ok ())))
        [ f0; f1 ];
      Shard.crash (Cluster.shard cluster 0);
      (* Shard 1 is untouched: its file still reads. *)
      Helpers.check_bytes "shard 1 unaffected" "committed"
        (ok (Cluster_client.read_current client f1 (P.of_list [ 0 ])));
      (* Shard 0 is gone: the RPC layer reports failure, not a hang. *)
      (match Cluster_client.read_current client f0 (P.of_list [ 0 ]) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "crashed shard served a read");
      let recovered = ok (Shard.recover (Cluster.shard cluster 0)) in
      Alcotest.(check bool) "files recovered on shard 0" true (recovered >= 1);
      Helpers.check_bytes "committed data back after recovery" "committed"
        (ok (Cluster_client.read_current client f0 (P.of_list [ 0 ]))))

(* {2 Migration} *)

let test_migrate_moves_data_and_leaves_tombstone () =
  in_cluster ~shards:2 (fun cluster client ->
      let f = ok (Cluster_client.create_file ~data:(bytes "rootdata") client) in
      ok
        (Cluster_client.update client f (fun txn ->
             let open Errors in
             let* _ =
               Cluster_client.Txn.insert txn ~parent:P.root ~index:0 ~data:(bytes "a") ()
             in
             let* _ =
               Cluster_client.Txn.insert txn ~parent:P.root ~index:1 ~data:(bytes "b") ()
             in
             Ok ()));
      let moved = ok (Migration.migrate cluster ~file:f ~dst:1) in
      Alcotest.(check int)
        "new home is shard 1"
        (Capability.port_to_int (Shard.port (Cluster.shard cluster 1)))
        (Capability.port_to_int moved.Capability.port);
      (* Data identical at the new home. *)
      Helpers.check_bytes "root data" "rootdata"
        (ok (Cluster_client.read_current client moved P.root));
      Helpers.check_bytes "child 0" "a"
        (ok (Cluster_client.read_current client moved (P.of_list [ 0 ])));
      Helpers.check_bytes "child 1" "b"
        (ok (Cluster_client.read_current client moved (P.of_list [ 1 ])));
      (* The old home answers Moved with the new capability — exercised
         directly on the source conn, because the shared router means a
         cluster client normally resolves before ever hitting the
         tombstone. *)
      (match Remote.create_version (Cluster.conn cluster 0) f with
      | Error (Errors.Moved target) ->
          Alcotest.(check bool)
            "tombstone names the copy" true
            (Capability.equal target moved)
      | Ok _ -> Alcotest.fail "tombstone still serves versions"
      | Error e -> Alcotest.failf "expected Moved, got %s" (Errors.to_string e));
      (* The old capability keeps working through the client. *)
      Helpers.check_bytes "old cap still reads" "a"
        (ok (Cluster_client.read_current client f (P.of_list [ 0 ])));
      (* The tombstone no longer counts as resident. *)
      Alcotest.(check int)
        "shard 0 resident files" 0
        (List.length (Shard.resident_files (Cluster.shard cluster 0)));
      Alcotest.(check int)
        "shard 1 resident files" 1
        (List.length (Shard.resident_files (Cluster.shard cluster 1))))

(* A version opened before the flip must lose its commit afterwards: the
   location check put R on its root, the flip's commit wrote W there.
   The file has no children, so this also covers the flip's dummy
   insert+remove path (its only source of an M flag on the root). *)
let test_migration_fences_prior_versions () =
  in_cluster ~shards:2 (fun cluster client ->
      let f = ok (Cluster_client.create_file ~data:(bytes "v0") client) in
      let h = ok (Cluster_client.begin_txn client f) in
      let moved = ok (Migration.migrate cluster ~file:f ~dst:1) in
      ok (Cluster_client.Txn.write h.Cluster_client.txn P.root (bytes "stale"));
      (match Cluster_client.commit client h with
      | Error Errors.Conflict -> ()
      | Ok () -> Alcotest.fail "pre-flip version committed over the tombstone"
      | Error e -> Alcotest.failf "expected Conflict, got %s" (Errors.to_string e));
      (* The migrated copy is untouched and the tombstone intact. *)
      Helpers.check_bytes "copy unaffected" "v0"
        (ok (Cluster_client.read_current client moved P.root));
      match Remote.create_version (Cluster.conn cluster 0) f with
      | Error (Errors.Moved _) -> ()
      | _ -> Alcotest.fail "tombstone damaged")

(* The headline safety property, attacked with concurrency: writers
   increment a counter page while the file is migrated back and forth.
   Whatever interleaving the seed produces, the final counter value must
   equal the number of successfully committed increments — a lost update
   would leave it short. *)
let migration_race_one_seed seed =
  let engine = Engine.create () in
  let cluster = Cluster.create ~latency_ms:1.0 engine ~shards:2 in
  let commits = ref 0 in
  let gave_up = ref 0 in
  let migrations = ref 0 in
  let file = ref None in
  let _ =
    Proc.spawn engine (fun () ->
        let client = Cluster_client.connect cluster in
        let f = ok (Cluster_client.create_file ~data:(bytes "counter") client) in
        ok
          (Cluster_client.update client f (fun txn ->
               let open Errors in
               let* _ =
                 Cluster_client.Txn.insert txn ~parent:P.root ~index:0 ~data:(bytes "0")
                   ()
               in
               Ok ()));
        file := Some f;
        let rng = Xrng.create seed in
        let writer () =
          let wrng = Xrng.split rng in
          fun () ->
            for _ = 1 to 12 do
              Proc.delay (Xrng.float wrng 4.0);
              match
                Cluster_client.update ~retries:24 client f (fun txn ->
                    let open Errors in
                    let* v = Cluster_client.Txn.read txn (P.of_list [ 0 ]) in
                    match int_of_string_opt (Bytes.to_string v) with
                    | None -> Error (Errors.Store_failure "corrupt counter")
                    | Some n ->
                        let* () =
                          Cluster_client.Txn.write txn (P.of_list [ 0 ])
                            (bytes (string_of_int (n + 1)))
                        in
                        Ok ())
              with
              | Ok () -> incr commits
              | Error Errors.Conflict -> incr gave_up
              | Error e -> Alcotest.failf "writer failed: %s" (Errors.to_string e)
            done
        in
        let spawn_joined, join_all = Proc.joinable engine in
        for _ = 1 to 4 do
          ignore (spawn_joined (writer ()))
        done;
        ignore
          (spawn_joined (fun () ->
               for round = 1 to 6 do
                 Proc.delay 7.0;
                 match
                   Migration.migrate ~retries:3 cluster ~file:f ~dst:(round mod 2)
                 with
                 | Ok _ -> incr migrations
                 | Error Errors.Conflict -> () (* writers won every race: fine *)
                 | Error e -> Alcotest.failf "migrate failed: %s" (Errors.to_string e)
               done));
        join_all ())
  in
  Engine.run engine;
  let f = match !file with Some f -> f | None -> Alcotest.fail "setup never ran" in
  (* Read the final value at the file's true home, chasing tombstones
     directly on the servers (no router state involved). *)
  let rec final_value cap hops =
    if hops > 8 then Alcotest.fail "tombstone chain too long"
    else
      match Cluster.shard_of_cap cluster cap with
      | Error e -> Alcotest.failf "routing failed: %s" (Errors.to_string e)
      | Ok (cap, shard) -> (
          let server = Shard.server shard in
          match Shard.moved_target server cap with
          | Some target -> final_value target (hops + 1)
          | None ->
              let v = ok (Server.current_version server cap) in
              Bytes.to_string (ok (Server.read_page server v (P.of_list [ 0 ]))))
  in
  let final = final_value f 0 in
  Alcotest.(check string)
    (Printf.sprintf "seed %d: final counter = %d commits (%d given up, %d migrations)"
       seed !commits !gave_up !migrations)
    (string_of_int !commits) final

let test_migration_race_never_loses_commits () =
  List.iter migration_race_one_seed [ 1; 7; 42; 1234; 9999 ]

(* {2 Rebalancer} *)

let test_rebalancer_moves_hot_files () =
  in_cluster ~shards:2 (fun cluster client ->
      (* Six files; round-robin puts 0,2,4 on shard 0 and 1,3,5 on
         shard 1. Hammer the shard-0 residents so the load skews. *)
      let files =
        List.init 6 (fun i ->
            ok (Cluster_client.create_file ~data:(bytes (Printf.sprintf "f%d" i)) client))
      in
      List.iteri
        (fun i f ->
          let hits = if i mod 2 = 0 then 8 else 1 in
          for _ = 1 to hits do
            ok
              (Cluster_client.update client f (fun txn ->
                   Cluster_client.Txn.write txn P.root (bytes "hit")))
          done)
        files;
      let reb = Rebalancer.create ~threshold:1.5 ~max_moves:2 cluster in
      let moved = Rebalancer.step reb in
      Alcotest.(check bool) "rebalancer moved at least one file" true (moved >= 1);
      Alcotest.(check int)
        "counter agrees" moved
        (Stats.Counter.get (Cluster.counters cluster) "rebalancer.moves");
      let r0 = List.length (Shard.resident_files (Cluster.shard cluster 0)) in
      let r1 = List.length (Shard.resident_files (Cluster.shard cluster 1)) in
      Alcotest.(check int) "no file lost" 6 (r0 + r1);
      Alcotest.(check bool) "shard 0 shed files" true (r0 < 3))

(* Regression: the drained load window routinely spans a migration, so
   entries recorded under a file's old capability must be attributed to
   its *current* shard. Before the fix, the hot file's traffic kept
   counting against its old shard and the stale capability became an
   "already home" migration candidate — step reported moves that moved
   nothing, while the real hot shard kept its load. *)
let test_rebalancer_resolves_stale_loads () =
  in_cluster ~shards:2 (fun cluster client ->
      (* Round-robin: f0,f2 on shard 0; f1,f3 on shard 1. *)
      let files =
        List.init 4 (fun i ->
            ok (Cluster_client.create_file ~data:(bytes (Printf.sprintf "f%d" i)) client))
      in
      let f0 = List.nth files 0 in
      (* Hammer f0 while it still lives on shard 0; light traffic elsewhere. *)
      List.iteri
        (fun i f ->
          let hits = if i = 0 then 9 else 1 in
          for _ = 1 to hits do
            ok
              (Cluster_client.update client f (fun txn ->
                   Cluster_client.Txn.write txn P.root (bytes "hit")))
          done)
        files;
      (* A migration lands inside the load window: f0 moves to shard 1,
         but its 9 loads are recorded under the old capability. *)
      let f0' = ok (Migration.migrate cluster ~file:f0 ~dst:1) in
      let migrations_before = Cluster.migrations cluster in
      let reb = Rebalancer.create ~threshold:1.5 ~max_moves:2 cluster in
      let moved = Rebalancer.step reb in
      let migrations_delta = Cluster.migrations cluster - migrations_before in
      (* Stale-cap loads follow the file: shard 1 is the hot one now, so
         the step migrates f0 back — a real migration, not a phantom. *)
      Alcotest.(check int) "every counted move is a real migration" moved migrations_delta;
      Alcotest.(check int) "counter agrees" moved
        (Stats.Counter.get (Cluster.counters cluster) "rebalancer.moves");
      Alcotest.(check bool) "the hot file actually moved" true (moved >= 1);
      let home cap =
        match Cluster.shard_of_cap cluster cap with
        | Ok (_, s) -> Shard.id s
        | Error e -> Alcotest.failf "routing failed: %s" (Errors.to_string e)
      in
      Alcotest.(check int) "hot file followed its traffic home" 0 (home f0');
      Alcotest.(check int) "old capability resolves to the same place" 0 (home f0))

let () =
  Alcotest.run "cluster"
    [
      ( "forward",
        [
          QCheck_alcotest.to_alcotest prop_forward_roundtrip;
          quick "markers reject ordinary data" test_forward_rejects_data;
        ] );
      ( "routing",
        [
          QCheck_alcotest.to_alcotest prop_routing_total;
          quick "foreign ports rejected" test_routing_foreign_port;
          quick "forward cycles terminate" test_router_forward_cycle_safe;
          quick "round-robin placement" test_round_robin_placement;
        ] );
      ( "equivalence",
        [ quick "one-shard cluster == bare server" test_single_shard_identical ] );
      ( "faults",
        [ quick "crash isolated; recovery restores" test_crash_isolated_and_recoverable ]
      );
      ( "migration",
        [
          quick "moves data, leaves tombstone" test_migrate_moves_data_and_leaves_tombstone;
          quick "fences versions opened pre-flip" test_migration_fences_prior_versions;
          quick "racing commits never lost" test_migration_race_never_loses_commits;
        ] );
      ( "rebalancer",
        [
          quick "moves hot files off the hot shard" test_rebalancer_moves_hot_files;
          quick "stale loads follow the file" test_rebalancer_resolves_stale_loads;
        ] );
    ]
