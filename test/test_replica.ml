(* The replication plane: commit-stream shipping, asynchronous apply,
   byte-identity of replica stores, the epoch register as fencing token,
   and — the property failover hinges on — that killing a primary
   mid-load never loses a committed transaction. *)

open Afs_cluster
module Engine = Afs_sim.Engine
module Proc = Afs_sim.Proc
module Xrng = Afs_util.Xrng
module Stats = Afs_util.Stats
module P = Afs_util.Pagepath
module Store = Afs_core.Store
module Server = Afs_core.Server
module Errors = Afs_core.Errors
module Remote = Afs_rpc.Remote
module Rpc = Afs_rpc.Rpc
module Replica = Afs_replica.Replica
module Faults = Afs_replica.Faults

let quick = Helpers.quick
let bytes = Helpers.bytes
let ok = Helpers.ok

(* Run [body] as a simulated process and return its result. *)
let in_sim body =
  let engine = Engine.create () in
  let result = ref None in
  let _ = Proc.spawn engine (fun () -> result := Some (body engine)) in
  Engine.run engine;
  match !result with Some r -> r | None -> Alcotest.fail "process never finished"

let digest store =
  match Replica.store_digest store with
  | Ok d -> d
  | Error e -> Alcotest.failf "digest failed: %s" (Errors.to_string e)

(* {2 Shipping and watermarks} *)

(* The smallest full pipeline: a server over a capture store, one replica
   on the stream. Feeding is synchronous with the commit; application
   happens one interval later; after a flush + drain the two stores are
   byte-identical. *)
let test_ship_apply_watermarks () =
  in_sim (fun engine ->
      let source = Replica.Source.create engine (Store.memory ()) in
      let reg = Replica.Source.register source in
      let r = Replica.create engine ~shard:0 ~reg () in
      Replica.Source.attach source r;
      let server =
        Server.create ~publish_tap:(Replica.Source.tap source)
          (Replica.Source.capture_store source)
      in
      let f = ok (Server.create_file server ~data:(bytes "root") ()) in
      let v = ok (Server.create_version server f) in
      ignore
        (ok (Server.insert_page server v ~parent:P.root ~index:0 ~data:(bytes "a") ()));
      ok (Server.commit server v);
      Alcotest.(check int) "one batch cut" 1 (Replica.Source.shipped_seq source);
      Alcotest.(check int) "fed synchronously" 1 (Replica.shipped_seq r);
      (* Application is asynchronous: a replica is *behind* until its
         apply event fires, one interval after the feed. *)
      Proc.delay 20.0;
      Alcotest.(check int) "applied" 1 (Replica.applied_seq r);
      Alcotest.(check int) "queue drained" 0 (Replica.queued r);
      Alcotest.(check bool)
        "lag recorded" true
        (Stats.Histogram.count (Replica.lag_histogram r) > 0);
      Replica.Source.flush source;
      Replica.drain r;
      Alcotest.(check bool)
        "byte-identical stores" true
        (digest (Replica.Source.inner_store source) = digest (Replica.store r)))

(* A replica whose store is a stable pair: shipped batches coalesce their
   writes through [write_batch], so the companion hop is paid per run of
   writes, and the result is still byte-identical to the primary. The
   pair's allocator is seeded (blocks come out in a shuffled order), so
   frontier alignment means primary and replica run same-seed pairs. *)
let test_replica_on_stable_pair () =
  in_sim (fun engine ->
      let pair_store () =
        Store.of_stable_pair
          (Afs_stable.Stable_pair.create ~seed:11 ~media:Afs_disk.Media.electronic
             ~blocks:512 ~block_size:32768 ())
      in
      let source = Replica.Source.create engine (pair_store ()) in
      let reg = Replica.Source.register source in
      let r = Replica.create ~store:(pair_store ()) engine ~shard:0 ~reg () in
      Replica.Source.attach source r;
      let server =
        Server.create ~publish_tap:(Replica.Source.tap source)
          (Replica.Source.capture_store source)
      in
      let f = ok (Server.create_file server ~data:(bytes "root") ()) in
      for i = 0 to 3 do
        let v = ok (Server.create_version server f) in
        ignore
          (ok
             (Server.insert_page server v ~parent:P.root ~index:i
                ~data:(bytes (Printf.sprintf "page %d" i))
                ()));
        ok (Server.commit server v)
      done;
      Replica.Source.flush source;
      Replica.drain r;
      Alcotest.(check (option string)) "replica store healthy" None (Replica.failure r);
      Alcotest.(check bool)
        "stable replica byte-identical" true
        (digest (Replica.Source.inner_store source) = digest (Replica.store r)))

(* {2 Byte-identity under load (property)} *)

(* Whatever the workload mix, client count or shard count, every replica
   store equals its primary's store byte for byte once the stream is
   flushed and drained. *)
let prop_replica_byte_identity =
  QCheck2.Test.make ~name:"replicas byte-identical to primaries after drain" ~count:8
    ~print:
      QCheck2.Print.(
        quad int (pair int int) (pair int float) (pair float float) |> fun p x -> p x)
    QCheck2.Gen.(
      quad (int_bound 9999)
        (pair (int_range 1 3) (int_range 1 2))
        (pair (int_range 2 6) (float_range 0.0 0.9))
        (pair (float_range 300.0 900.0) (float_range 5.0 15.0)))
    (fun (seed, (shards, replicas), (clients, theta), (duration_ms, think_ms)) ->
      let open Afs_workload in
      let shape =
        {
          Workload.small_updates with
          nfiles = 8;
          pages_per_file = 6;
          file_theta = theta;
          page_theta = theta;
        }
      in
      let engine = Engine.create () in
      let cluster = Cluster.create ~latency_ms:1.0 ~replicas engine ~shards in
      let files = ok (Workload.setup_cluster cluster shape ~initial:(bytes "0")) in
      let config =
        { Driver.default_config with clients; duration_ms; think_ms; seed }
      in
      ignore
        (Driver.run engine config
           (Sut.afs_cluster (Cluster_client.connect cluster) ~files)
           ~gen:(Workload.make shape));
      Cluster.flush_replication cluster;
      List.for_all
        (fun i ->
          match Cluster.replication_source cluster i with
          | None -> false
          | Some src ->
              let primary = digest (Replica.Source.inner_store src) in
              List.for_all
                (fun r ->
                  Replica.failure r = None && digest (Replica.store r) = primary)
                (Cluster.replicas_of cluster i))
        (List.init shards Fun.id))

(* {2 Fencing} *)

(* The regression the design note promises: a deposed primary's delayed
   publish must lose the test-and-set — the transaction is reported
   aborted (Conflict), never silently lost, and never committed over the
   promoted state. *)
let test_fencing_deposed_primary_aborts () =
  in_sim (fun engine ->
      let cluster = Cluster.create ~latency_ms:1.0 ~replicas:1 engine ~shards:1 in
      let client = Cluster_client.connect cluster in
      let f = ok (Cluster_client.create_file ~data:(bytes "v0") client) in
      ok
        (Cluster_client.update client f (fun txn ->
             Cluster_client.Txn.write txn P.root (bytes "before")));
      let old_server = Shard.server (Cluster.shard cluster 0) in
      (* The delayed publish: a version opened and written on the primary
         that is about to be deposed, its commit still in flight. *)
      let v = ok (Server.create_version old_server f) in
      ok (Server.write_page old_server v P.root (bytes "stale"));
      let p = ok (Cluster.promote cluster 0) in
      Alcotest.(check int) "epoch advanced" 1 p.Cluster.epoch;
      Alcotest.(check int) "generation bumped" 1 (Cluster.generation cluster);
      (match Server.commit old_server v with
      | Error Errors.Conflict -> ()
      | Ok () -> Alcotest.fail "deposed primary committed past the fence"
      | Error e -> Alcotest.failf "expected Conflict, got %s" (Errors.to_string e));
      Alcotest.(check bool)
        "fence counted" true
        (Stats.Counter.get (Cluster.counters cluster) "replica.fenced" >= 1);
      (* Aborted, not lost, not applied: the promoted primary serves the
         last committed state, through the client's rebuilt connection. *)
      Helpers.check_bytes "promoted state intact" "before"
        (ok (Cluster_client.read_current client f P.root));
      (* A second promotion attempt against the old epoch loses the
         test-and-set the same way. *)
      match Cluster.promote cluster 0 with
      | Error (Errors.Store_failure _) -> () (* no replica left: fine *)
      | Ok _ -> Alcotest.fail "promoted with no replica"
      | Error e -> Alcotest.failf "unexpected: %s" (Errors.to_string e))

(* The register itself: a test-and-set with a stale expected epoch loses
   with Conflict and moves nothing. *)
let test_stale_promotion_loses () =
  in_sim (fun engine ->
      let source = Replica.Source.create engine (Store.memory ()) in
      let reg = Replica.Source.register source in
      let r1 = Replica.create engine ~shard:0 ~reg () in
      let r2 = Replica.create engine ~shard:0 ~reg () in
      Replica.Source.attach source r1;
      Replica.Source.attach source r2;
      ok (Replica.promote r1 ~expected_epoch:0);
      Alcotest.(check int) "winner's epoch" 1 (Replica.epoch r1);
      (match Replica.promote r2 ~expected_epoch:0 with
      | Error Errors.Conflict -> ()
      | Ok () -> Alcotest.fail "two primaries promoted from the same epoch"
      | Error e -> Alcotest.failf "expected Conflict, got %s" (Errors.to_string e));
      Alcotest.(check int) "register unmoved by the loser" 1
        (Replica.register_epoch reg);
      Alcotest.(check bool) "old source fenced" true (Replica.Source.fenced source))

(* {2 Replicas = 0 is exactly the old cluster} *)

let test_replicas_zero_identical () =
  let open Afs_workload in
  let shape = { Workload.small_updates with nfiles = 16; pages_per_file = 8 } in
  let config =
    { Driver.default_config with clients = 8; duration_ms = 1_200.0; think_ms = 10.0 }
  in
  let gen = Workload.make shape in
  let run ~replicas =
    let engine = Engine.create () in
    let cluster = Cluster.create ~latency_ms:2.0 ~replicas engine ~shards:2 in
    let files = ok (Workload.setup_cluster cluster shape ~initial:(bytes "0")) in
    Driver.run engine config (Sut.afs_cluster (Cluster_client.connect cluster) ~files) ~gen
  in
  let plain = run ~replicas:0 in
  let engine = Engine.create () in
  let cluster = Cluster.create ~latency_ms:2.0 engine ~shards:2 in
  let files = ok (Workload.setup_cluster cluster shape ~initial:(bytes "0")) in
  let default =
    Driver.run engine config (Sut.afs_cluster (Cluster_client.connect cluster) ~files) ~gen
  in
  Alcotest.(check int) "committed" default.Driver.committed plain.Driver.committed;
  Alcotest.(check int) "given up" default.Driver.given_up plain.Driver.given_up;
  Alcotest.(check int) "attempts" default.Driver.attempts plain.Driver.attempts;
  Alcotest.(check (float 0.0))
    "mean" default.Driver.mean_latency_ms plain.Driver.mean_latency_ms;
  Alcotest.(check (float 0.0)) "p50" default.Driver.p50_ms plain.Driver.p50_ms;
  Alcotest.(check (float 0.0)) "p95" default.Driver.p95_ms plain.Driver.p95_ms;
  Alcotest.(check (float 0.0)) "p99" default.Driver.p99_ms plain.Driver.p99_ms;
  Alcotest.(check (list (pair int int)))
    "retry histogram" default.Driver.retry_histogram plain.Driver.retry_histogram

(* {2 The crash schedule: no committed transaction lost} *)

(* Writers increment counter pages while a Faults schedule kills shard
   0's primary mid-load and promotes its replica. Every increment whose
   commit was acknowledged must be readable after failover: the final
   counter of each file equals the number of acknowledged commits. *)
let crash_schedule_one_seed seed =
  let engine = Engine.create () in
  let cluster = Cluster.create ~latency_ms:1.0 ~replicas:1 engine ~shards:2 in
  let faults = Faults.create ~seed ~jitter_ms:3.0 engine in
  let nfiles = 4 in
  let commits = Array.make nfiles 0 in
  let files = ref [||] in
  let promoted = ref None in
  let _ =
    Proc.spawn engine (fun () ->
        let client = Cluster_client.connect cluster in
        let fs =
          Array.init nfiles (fun _ ->
              ok (Cluster_client.create_file ~data:(bytes "counter") client))
        in
        Array.iter
          (fun f ->
            ok
              (Cluster_client.update client f (fun txn ->
                   let open Errors in
                   let* _ =
                     Cluster_client.Txn.insert txn ~parent:P.root ~index:0
                       ~data:(bytes "0") ()
                   in
                   Ok ())))
          fs;
        files := fs;
        let rng = Xrng.create seed in
        let spawn_joined, join_all = Proc.joinable engine in
        for w = 0 to 3 do
          let wrng = Xrng.split rng in
          ignore
            (spawn_joined (fun () ->
                 for n = 1 to 10 do
                   Proc.delay (Xrng.float wrng 30.0);
                   let fi = (w + n) mod nfiles in
                   let rec attempt tries =
                     if tries > 40 then () (* writer gave up: not acknowledged *)
                     else
                       match
                         Cluster_client.update ~retries:24 client fs.(fi) (fun txn ->
                             let open Errors in
                             let* v = Cluster_client.Txn.read txn (P.of_list [ 0 ]) in
                             match int_of_string_opt (Bytes.to_string v) with
                             | None -> Error (Errors.Store_failure "corrupt counter")
                             | Some c ->
                                 Cluster_client.Txn.write txn (P.of_list [ 0 ])
                                   (bytes (string_of_int (c + 1))))
                       with
                       | Ok () -> commits.(fi) <- commits.(fi) + 1
                       | Error Errors.Conflict -> () (* retries exhausted: no ack *)
                       | Error _ ->
                           (* Dead or deposed primary: back off and redo
                              against whoever owns the shard by then. *)
                           Proc.delay 25.0;
                           attempt (tries + 1)
                   in
                   attempt 0
                 done))
        done;
        join_all ())
  in
  Faults.at faults ~ms:150.0 ~label:"kill-primary:0" (fun () ->
      Remote.crash_host (Shard.host (Cluster.shard cluster 0));
      Proc.delay 20.0;
      promoted := Some (Cluster.promote cluster 0));
  Engine.run engine;
  (match !promoted with
  | Some (Ok _) -> ()
  | Some (Error e) -> Alcotest.failf "promotion failed: %s" (Errors.to_string e)
  | None -> Alcotest.fail "the fault never fired");
  Alcotest.(check int) "one fault fired" 1 (Faults.fired faults);
  Alcotest.(check (list string))
    "labelled in firing order" [ "kill-primary:0" ] (Faults.fired_labels faults);
  let fs = !files in
  Alcotest.(check bool) "setup ran" true (Array.length fs = nfiles);
  Array.iteri
    (fun i f ->
      let _, shard = ok (Cluster.shard_of_cap cluster f) in
      let server = Shard.server shard in
      let v = ok (Server.current_version server f) in
      let final = Bytes.to_string (ok (Server.read_page server v (P.of_list [ 0 ]))) in
      Alcotest.(check string)
        (Printf.sprintf "seed %d file %d: acknowledged commits survive failover" seed i)
        (string_of_int commits.(i))
        final)
    fs

let test_crash_schedule_never_loses_commits () =
  List.iter crash_schedule_one_seed [ 1; 7; 42; 1234 ]

(* {2 Faults: determinism} *)

let test_faults_deterministic () =
  let run () =
    let engine = Engine.create () in
    let faults = Faults.create ~seed:42 ~jitter_ms:7.0 engine in
    let fires = ref [] in
    List.iter
      (fun (ms, label) ->
        Faults.at faults ~ms ~label (fun () ->
            fires := (label, Engine.now engine) :: !fires))
      [ (10.0, "a"); (5.0, "b"); (20.0, "c") ];
    Engine.run engine;
    (Faults.fired_labels faults, List.rev !fires)
  in
  let l1, f1 = run () in
  let l2, f2 = run () in
  Alcotest.(check (list string)) "labels deterministic" l1 l2;
  Alcotest.(check bool) "firing times deterministic" true (f1 = f2);
  Alcotest.(check int) "all fired" 3 (List.length f1);
  (* Without a seed there is no jitter: the action fires exactly on time. *)
  let engine = Engine.create () in
  let faults = Faults.create engine in
  let t = ref (-1.0) in
  Faults.at faults ~ms:12.5 ~label:"exact" (fun () -> t := Engine.now engine);
  Engine.run engine;
  Alcotest.(check (float 0.0)) "no seed: exact time" 12.5 !t;
  Alcotest.(check int) "armed counted" 1 (Faults.armed faults)

(* {2 The replica as a remote service} *)

let test_rpc_ship_promote_watermark () =
  in_sim (fun engine ->
      let source = Replica.Source.create engine (Store.memory ()) in
      let reg = Replica.Source.register source in
      let r = Replica.create engine ~shard:0 ~reg () in
      let rhost = Replica.host ~latency_ms:1.0 engine ~name:"r0" r in
      (* Ship at the current epoch: accepted and (asynchronously) applied.
         The batch replays against a fresh store, so it must open with the
         allocation its writes assume. *)
      (match
         Rpc.call rhost
           (Remote.Ship
              { epoch = 0; seq = 1; ops = [ Store.Alloc 0; Store.Write (0, bytes "hi") ] })
       with
      | Ok (Ok Remote.Unit) -> ()
      | _ -> Alcotest.fail "well-formed ship refused");
      (* Ship at a wrong epoch: refused with Conflict, nothing queued. *)
      (match Rpc.call rhost (Remote.Ship { epoch = 7; seq = 2; ops = [] }) with
      | Ok (Error Errors.Conflict) -> ()
      | _ -> Alcotest.fail "stale-epoch ship accepted");
      Proc.delay 20.0;
      (match Rpc.call rhost Remote.Replica_watermark with
      | Ok (Ok (Remote.Watermark { epoch = 0; shipped = 1; applied = 1 })) -> ()
      | Ok (Ok (Remote.Watermark { epoch; shipped; applied })) ->
          Alcotest.failf "watermark epoch=%d shipped=%d applied=%d" epoch shipped applied
      | _ -> Alcotest.fail "watermark unreadable");
      Alcotest.(check bool)
        "shipped write applied" true
        (digest (Replica.store r) = [ (0, Some (bytes "hi")) ]);
      (* File-service requests are refused outright. *)
      (match Rpc.call rhost (Remote.Create_file (bytes "x")) with
      | Ok (Error (Errors.Store_failure _)) -> ()
      | _ -> Alcotest.fail "replica served a file request");
      (* Promotion over RPC answers the watermark and moves the epoch. *)
      (match Rpc.call rhost (Remote.Promote { expected_epoch = 0 }) with
      | Ok (Ok (Remote.Watermark { epoch = 1; applied = 1; _ })) -> ()
      | _ -> Alcotest.fail "promotion refused");
      match Rpc.call rhost (Remote.Promote { expected_epoch = 0 }) with
      | Ok (Error Errors.Conflict) -> ()
      | _ -> Alcotest.fail "stale promotion won")

let () =
  Alcotest.run "replica"
    [
      ( "shipping",
        [
          quick "ship, apply, watermarks, byte identity" test_ship_apply_watermarks;
          quick "stable-pair replica store" test_replica_on_stable_pair;
          QCheck_alcotest.to_alcotest prop_replica_byte_identity;
        ] );
      ( "fencing",
        [
          quick "deposed primary's publish aborts, not lost"
            test_fencing_deposed_primary_aborts;
          quick "stale promotion loses the test-and-set" test_stale_promotion_loses;
        ] );
      ( "equivalence",
        [ quick "replicas=0 == unreplicated cluster" test_replicas_zero_identical ] );
      ( "failover",
        [ quick "crash schedule loses no committed txn" test_crash_schedule_never_loses_commits ]
      );
      ( "faults", [ quick "schedules are deterministic" test_faults_deterministic ] );
      ( "rpc", [ quick "ship / promote / watermark" test_rpc_ship_promote_watermark ] );
    ]
