(* Group commit: the batched validate → merge → publish pipeline must be
   observationally identical to committing one at a time — same per-member
   outcomes, same counters of record, byte-identical final store — while a
   crash inside the amortised publish leg must still leave every member
   atomically committed or not. Plus the commit-lock backoff satellite and
   the naming layer's deferred-update queue. *)

open Afs_core
open Afs_naming
module P = Afs_util.Pagepath
module Capability = Afs_util.Capability
module Stats = Afs_util.Stats
module Xrng = Afs_util.Xrng
module Trace = Afs_trace.Trace

let ok = Helpers.ok
let ok_str = Helpers.ok_str
let bytes = Helpers.bytes
let quick = Helpers.quick

let counter srv name = Stats.Counter.get (Server.counters srv) name

(* {2 Equivalence: batch ≡ sequential} *)

let npages = 4

type txn = { file : int; reads : int list; writes : (int * string) list }

(* A deterministic scenario: a few files, 4..12 transactions each reading
   and writing a couple of pages of one file. The reads matter: a blind
   overwrite merges under the §5.2 conditions, so only read/write overlap
   produces real conflicts. *)
let gen_scenario seed =
  let rng = Xrng.create seed in
  let nfiles = 1 + Xrng.int rng 3 in
  let ntxns = 4 + Xrng.int rng 9 in
  let txns =
    List.init ntxns (fun i ->
        let file = Xrng.int rng nfiles in
        let reads = List.init (Xrng.int rng 3) (fun _ -> Xrng.int rng npages) in
        let nw = 1 + Xrng.int rng 2 in
        let writes =
          List.init nw (fun j -> (Xrng.int rng npages, Printf.sprintf "t%d.%d" i j))
        in
        { file; reads; writes })
  in
  (nfiles, txns)

(* Build the scenario on a fresh server: all versions are prepared before
   any commit, so the two runs allocate identically and only the commit
   discipline differs. *)
let build (nfiles, txns) =
  let store = Store.memory () in
  let srv = Server.create ~seed:7 store in
  let files = Array.init nfiles (fun _ -> Helpers.file_with_pages srv npages) in
  let caps =
    List.map
      (fun txn ->
        let v = ok (Server.create_version srv files.(txn.file)) in
        List.iter (fun p -> ignore (ok (Server.read_page srv v (P.of_list [ p ])))) txn.reads;
        List.iter
          (fun (p, value) -> ok (Server.write_page srv v (P.of_list [ p ]) (bytes value)))
          txn.writes;
        v)
      txns
  in
  (store, srv, caps)

let dump store =
  let blocks = List.sort compare (ok_str (store.Store.list_blocks ())) in
  List.map (fun b -> (b, ok_str (store.Store.read b))) blocks

let rec take n l =
  if n = 0 then ([], l)
  else
    match l with
    | [] -> ([], [])
    | x :: tl ->
        let batch, rest = take (n - 1) tl in
        (x :: batch, rest)

let rec windows w l =
  match l with
  | [] -> []
  | _ ->
      let batch, rest = take w l in
      batch :: windows w rest

let prop_batch_equals_sequential =
  QCheck2.Test.make
    ~name:"group commit ≡ sequential: outcomes, counters, store image (windows 1/2/4/8)"
    ~count:40
    ~print:(fun (seed, w) -> Printf.sprintf "seed=%d window=%d" seed w)
    QCheck2.Gen.(pair (int_range 1 100_000) (oneofl [ 1; 2; 4; 8 ]))
    (fun (seed, w) ->
      let scenario = gen_scenario seed in
      let store_a, srv_a, caps_a = build scenario in
      let store_b, srv_b, caps_b = build scenario in
      let res_a = List.map (Server.commit srv_a) caps_a in
      let res_b = List.concat_map (Server.commit_batch srv_b) (windows w caps_b) in
      let same name = counter srv_a name = counter srv_b name in
      res_a = res_b
      && dump store_a = dump store_b
      && same "commits.ok" && same "commits.conflict")

(* {2 Direct batch shapes} *)

let trace_batches trace =
  List.filter_map
    (function
      | Trace.Point { payload = Trace.Commit_batch { size; winners; aborts }; _ } ->
          Some (size, winners, aborts)
      | _ -> None)
    (Trace.events trace)

let test_batch_disjoint_members () =
  let trace = Trace.ring ~now:(fun () -> 0.0) () in
  let store = Store.memory () in
  let srv = Server.create ~seed:7 ~trace store in
  let f = Helpers.file_with_pages srv npages in
  let v1 = ok (Server.create_version srv f) in
  ok (Server.write_page srv v1 (P.of_list [ 0 ]) (bytes "a"));
  let v2 = ok (Server.create_version srv f) in
  ok (Server.write_page srv v2 (P.of_list [ 1 ]) (bytes "b"));
  (match Server.commit_batch srv [ v1; v2 ] with
  | [ Ok (); Ok () ] -> ()
  | l -> Alcotest.failf "expected two Ok results, got %d results" (List.length l));
  (* The first member wins its test-and-set outright; the second finds the
     first's reference in the batch overlay and merges past it. *)
  Alcotest.(check int) "merged" 1 (counter srv "commits.merged");
  Alcotest.(check int) "ok (setup + both members)" 3 (counter srv "commits.ok");
  Alcotest.(check int) "chain spine" 4 (List.length (ok (Server.committed_chain srv f)));
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "first member's write" "a" (ok (Server.read_page srv cur (P.of_list [ 0 ])));
  Helpers.check_bytes "second member's write" "b" (ok (Server.read_page srv cur (P.of_list [ 1 ])));
  match trace_batches trace with
  | [ b ] ->
      Alcotest.(check (triple int int int)) "batch point: size/winners/aborts" (2, 2, 0) b
  | l -> Alcotest.failf "expected one Commit_batch point, got %d" (List.length l)

let test_batch_conflicting_member_doomed_alone () =
  let trace = Trace.ring ~now:(fun () -> 0.0) () in
  let store = Store.memory () in
  let srv = Server.create ~seed:7 ~trace store in
  let f = Helpers.file_with_pages srv npages in
  let v1 = ok (Server.create_version srv f) in
  ok (Server.write_page srv v1 (P.of_list [ 0 ]) (bytes "a"));
  (* The second member reads what the first wrote — the one §5.2 overlap
     that cannot serialise — then derives a write from it. *)
  let v2 = ok (Server.create_version srv f) in
  ignore (ok (Server.read_page srv v2 (P.of_list [ 0 ])));
  ok (Server.write_page srv v2 (P.of_list [ 1 ]) (bytes "b"));
  let v3 = ok (Server.create_version srv f) in
  ok (Server.write_page srv v3 (P.of_list [ 2 ]) (bytes "c"));
  (match Server.commit_batch srv [ v1; v2; v3 ] with
  | [ Ok (); Error Errors.Conflict; Ok () ] -> ()
  | _ -> Alcotest.fail "expected [Ok; Conflict; Ok]");
  (* The middle member is doomed by the one-pass pre-test against the
     union of the admitted winners' write sets — without a tree walk and
     without dooming the member behind it. *)
  Alcotest.(check int) "shortcircuit" 1 (counter srv "commits.shortcircuit");
  Alcotest.(check int) "conflict" 1 (counter srv "commits.conflict");
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "winner's write survives" "a"
    (ok (Server.read_page srv cur (P.of_list [ 0 ])));
  Helpers.check_bytes "doomed member's write vanished" "p1"
    (ok (Server.read_page srv cur (P.of_list [ 1 ])));
  Helpers.check_bytes "post-conflict member's write survives" "c"
    (ok (Server.read_page srv cur (P.of_list [ 2 ])));
  match trace_batches trace with
  | [ b ] ->
      Alcotest.(check (triple int int int)) "batch point: size/winners/aborts" (3, 2, 1) b
  | l -> Alcotest.failf "expected one Commit_batch point, got %d" (List.length l)

(* {2 Crash inside the publish leg} *)

(* A store that serves [allow] writes and then fails every later one —
   [write_batch] must be overridden too (the record update would otherwise
   keep the inner store's batch path, bypassing the injection). *)
let failing_store ~allow () =
  let inner = Store.memory () in
  let remaining = ref allow in
  let write b data =
    if !remaining <= 0 then Error "injected: disk gone"
    else begin
      decr remaining;
      inner.Store.write b data
    end
  in
  let rec write_batch = function
    | [] -> Ok ()
    | (b, data) :: rest -> (
        match write b data with Ok () -> write_batch rest | Error _ as e -> e)
  in
  { inner with Store.write; write_batch }

(* Two files, one updating member each: both win validation, so the batch
   publishes two commit references in one leg. *)
let crash_scenario store =
  let srv = Server.create ~seed:7 store in
  let f1 = Helpers.file_with_pages srv 2 in
  let f2 = Helpers.file_with_pages srv 2 in
  let v1 = ok (Server.create_version srv f1) in
  ok (Server.write_page srv v1 (P.of_list [ 0 ]) (bytes "one"));
  let v2 = ok (Server.create_version srv f2) in
  ok (Server.write_page srv v2 (P.of_list [ 0 ]) (bytes "two"));
  (srv, [ v1; v2 ])

let test_crash_mid_batch_atomic_per_member () =
  (* Dry run on a counting store to learn the total write count; the last
     two writes of the run are the two publish references. *)
  let counted, stats = Store.counting (Store.memory ()) in
  let srv0, caps0 = crash_scenario counted in
  List.iter (fun r -> ok r) (Server.commit_batch srv0 caps0);
  let _, total_writes = stats () in
  (* Real run: allow everything but the final write, so the first member's
     reference lands and the second member's does not. *)
  let store = failing_store ~allow:(total_writes - 1) () in
  let srv, caps = crash_scenario store in
  (match Server.commit_batch srv caps with
  | [ Error (Errors.Store_failure m1); Error (Errors.Store_failure m2) ] ->
      Alcotest.(check (list string)) "both members surface the store failure"
        [ "injected: disk gone"; "injected: disk gone" ] [ m1; m2 ]
  | _ -> Alcotest.fail "expected both members to report the store failure");
  (* Recovery reads the truth back: the durable prefix is exactly the
     first member, completely committed; the second vanished whole. *)
  Server.crash srv;
  let srv2 = Server.create ~seed:7 store in
  let recovered = ok (Server.recover_from_blocks srv2 (ok_str (store.Store.list_blocks ()))) in
  Alcotest.(check int) "both files recovered" 2 recovered;
  let classify fc =
    let cur = ok (Server.current_version srv2 fc) in
    let page0 = Helpers.str (ok (Server.read_page srv2 cur (P.of_list [ 0 ]))) in
    (List.length (ok (Server.committed_chain srv2 fc)), page0)
  in
  let states = List.sort compare (List.map classify (Server.list_files srv2)) in
  Alcotest.(check (list (pair int string)))
    "first member committed whole, second not at all"
    [ (2, "p0"); (3, "one") ]
    states

(* {2 Commit-lock contention} *)

let contended_commit ~lock_backoff () =
  let store = Store.memory () in
  let held = ref (-1) in
  let srv = Server.create ~seed:7 ~lock_backoff:(lock_backoff store held) store in
  let f = Helpers.file_with_pages srv 2 in
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (P.of_list [ 0 ]) (bytes "x"));
  held := ok (Server.current_block_of_file srv f);
  Alcotest.(check bool) "contender takes the base lock" true (store.Store.lock !held);
  (srv, f, v)

let test_lock_backoff_retries_to_success () =
  (* Before the backoff hook, a held base lock failed the commit outright.
     Now the hook runs between bounded retries; releasing the lock on the
     fourth attempt lets the commit go through. *)
  let srv, f, v =
    contended_commit
      ~lock_backoff:(fun store held attempt -> if attempt = 3 then store.Store.unlock !held)
      ()
  in
  ok (Server.commit srv v);
  Alcotest.(check int) "retries counted" 4 (counter srv "commits.lock_retries");
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "committed after contention" "x"
    (ok (Server.read_page srv cur (P.of_list [ 0 ])))

let test_lock_contention_stays_bounded () =
  let srv, _, v = contended_commit ~lock_backoff:(fun _ _ _ -> ()) () in
  (match Server.commit srv v with
  | Error (Errors.Store_failure msg) ->
      Alcotest.(check string) "bounded failure" "commit lock contention" msg
  | _ -> Alcotest.fail "expected bounded lock-contention failure");
  Alcotest.(check int) "spun to the bound" 1024 (counter srv "commits.lock_retries")

(* {2 Naming layer: deferred directory updates} *)

let dir_setup () =
  let _, srv = Helpers.fresh_server () in
  let cl = Client.connect srv in
  let dir = ok (Directory.create cl ~buckets:4 ()) in
  (srv, cl, dir)

let some_cap srv n =
  ok (Server.create_file srv ~data:(bytes (Printf.sprintf "file-%d" n)) ())

let check_cap msg expected = function
  | Some got -> Alcotest.(check bool) msg true (Capability.equal expected got)
  | None -> Alcotest.failf "%s: name missing" msg

let reopen cl dir = ok (Directory.of_capability cl (Directory.capability dir))

let test_deferred_enter_queues_without_io () =
  let srv, cl, dir = dir_setup () in
  let cap = some_cap srv 1 in
  Directory.enter_deferred dir "queued" cap;
  Alcotest.(check int) "queued" 1 (Directory.pending_count dir);
  check_cap "visible to this handle" cap (ok (Directory.lookup dir "queued"));
  Alcotest.(check (list string)) "listed by this handle" [ "queued" ]
    (ok (Directory.list_names dir));
  Alcotest.(check (option reject)) "invisible to others before flush" None
    (Option.map ignore (ok (Directory.lookup (reopen cl dir) "queued")));
  ok (Directory.flush dir);
  Alcotest.(check int) "drained" 0 (Directory.pending_count dir);
  check_cap "visible to others after flush" cap
    (ok (Directory.lookup (reopen cl dir) "queued"))

let test_deferred_rides_next_enter () =
  let srv, cl, dir = dir_setup () in
  let cx = some_cap srv 1 and cy = some_cap srv 2 in
  Directory.enter_deferred dir "x" cx;
  ok (Directory.enter dir "y" cy);
  Alcotest.(check int) "queue drained by the carrying commit" 0 (Directory.pending_count dir);
  let other = reopen cl dir in
  check_cap "deferred binding flushed" cx (ok (Directory.lookup other "x"));
  check_cap "carrying binding present" cy (ok (Directory.lookup other "y"))

let test_deferred_remove () =
  let srv, cl, dir = dir_setup () in
  ok (Directory.enter dir "z" (some_cap srv 1));
  Directory.remove_deferred dir "z";
  Alcotest.(check (option reject)) "removal visible to this handle" None
    (Option.map ignore (ok (Directory.lookup dir "z")));
  Alcotest.(check (list string)) "not listed" [] (ok (Directory.list_names dir));
  ok (Directory.flush dir);
  Alcotest.(check (option reject)) "removal flushed" None
    (Option.map ignore (ok (Directory.lookup (reopen cl dir) "z")))

let test_remove_applies_pending_first () =
  let srv, _, dir = dir_setup () in
  let cap = some_cap srv 1 in
  Directory.enter_deferred dir "w" cap;
  Alcotest.(check bool) "deferred binding counts as existing" true
    (ok (Directory.remove dir "w"));
  Alcotest.(check int) "queue drained" 0 (Directory.pending_count dir);
  Alcotest.(check (option reject)) "net effect: gone" None
    (Option.map ignore (ok (Directory.lookup dir "w")))

let () =
  Alcotest.run "group-commit"
    [
      ("equivalence", [ QCheck_alcotest.to_alcotest prop_batch_equals_sequential ]);
      ( "batch pipeline",
        [
          quick "disjoint members all win one batch" test_batch_disjoint_members;
          quick "conflicting member doomed alone" test_batch_conflicting_member_doomed_alone;
          quick "crash mid-publish is atomic per member" test_crash_mid_batch_atomic_per_member;
        ] );
      ( "commit lock",
        [
          quick "backoff turns contention into success" test_lock_backoff_retries_to_success;
          quick "no backoff stays bounded" test_lock_contention_stays_bounded;
        ] );
      ( "deferred naming",
        [
          quick "deferred enter queues without I/O" test_deferred_enter_queues_without_io;
          quick "queue rides the next enter" test_deferred_rides_next_enter;
          quick "deferred remove" test_deferred_remove;
          quick "remove applies the queue first" test_remove_applies_pending_first;
        ] );
    ]
