(* Crash-injection properties: "the file system is always in a consistent
   state" (§3.1), whatever the crash point.

   A random workload runs with a crash injected at a random operation
   boundary (losing all volatile state); a fresh server is then built from
   the raw blocks and must see exactly the committed prefix — never a torn
   update, never a lost commit. A second property subjects the stable-
   storage pair to random crash/wipe/restart sequences interleaved with
   writes and checks the surviving copy is always the newest. *)

open Afs_core
module P = Afs_util.Pagepath
module Xrng = Afs_util.Xrng
module Stable = Afs_stable.Stable_pair

let ok = Helpers.ok
let ok_str = Helpers.ok_str
let bytes = Helpers.bytes

(* {2 File-service crash points} *)

let npages = 4

let run_with_crash ?capacity ~seed ~crash_after_updates ~flush_before_crash () =
  let store = Store.memory () in
  let srv = Server.create ~seed:7 ?cache_capacity:capacity store in
  let f = Helpers.file_with_pages srv npages in
  let rng = Xrng.create seed in
  (* The model tracks only committed state. *)
  let model = Array.init npages (fun i -> Printf.sprintf "p%d" i) in
  let updates = crash_after_updates + 3 in
  (try
     for u = 1 to updates do
       if u > crash_after_updates then raise Exit;
       let v = ok (Server.create_version srv f) in
       let p = Xrng.int rng npages in
       let value = Printf.sprintf "u%d" u in
       ok (Server.write_page srv v (P.of_list [ p ]) (bytes value));
       (* Half the updates commit; half are left in flight or aborted. *)
       match Xrng.int rng 4 with
       | 0 -> ok (Server.abort_version srv v)
       | 1 -> () (* left uncommitted: must vanish in the crash *)
       | _ ->
           ok (Server.commit srv v);
           model.(p) <- value
     done
   with Exit -> ());
  if flush_before_crash then ok (Pagestore.flush (Server.pagestore srv));
  Server.crash srv;
  (* Rebuild from raw blocks. *)
  let srv2 = Server.create ~seed:7 store in
  let recovered = ok (Server.recover_from_blocks srv2 (ok_str (store.Store.list_blocks ()))) in
  if recovered <> 1 then Alcotest.failf "expected to recover 1 file, got %d" recovered;
  match Server.list_files srv2 with
  | [ fc ] ->
      let cur = ok (Server.current_version srv2 fc) in
      let state =
        Array.init npages (fun p ->
            Helpers.str (ok (Server.read_page srv2 cur (P.of_list [ p ]))))
      in
      (model, state)
  | l -> Alcotest.failf "expected 1 file, got %d" (List.length l)

(* Each property also runs at tiny page-cache capacities: eviction
   write-back must never change what a crash preserves. *)
let cache_configs = [ (None, "default cache"); (Some 2, "cap 2"); (Some 4, "cap 4"); (Some 8, "cap 8") ]

let prop_committed_prefix_survives (capacity, label) =
  QCheck2.Test.make
    ~name:(Printf.sprintf "crash preserves exactly the committed prefix (%s)" label)
    ~count:(if capacity = None then 150 else 60)
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d crash_after=%d" seed n)
    QCheck2.Gen.(pair (int_range 1 100000) (int_range 0 20))
    (fun (seed, crash_after_updates) ->
      let model, state =
        run_with_crash ?capacity ~seed ~crash_after_updates ~flush_before_crash:true ()
      in
      Array.for_all2 ( = ) model state)

(* Commits flush before the test-and-set, so even without an explicit
   flush the committed state must survive a crash. *)
let prop_commit_implies_durability (capacity, label) =
  QCheck2.Test.make
    ~name:(Printf.sprintf "commit implies durability, no flush needed (%s)" label)
    ~count:(if capacity = None then 150 else 60)
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d crash_after=%d" seed n)
    QCheck2.Gen.(pair (int_range 1 100000) (int_range 0 20))
    (fun (seed, crash_after_updates) ->
      let model, state =
        run_with_crash ?capacity ~seed ~crash_after_updates ~flush_before_crash:false ()
      in
      Array.for_all2 ( = ) model state)

(* {2 Stable-pair crash storms} *)

let prop_stable_survives_crash_storm =
  QCheck2.Test.make ~name:"stable pair survives random crash storms" ~count:100
    ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
    QCheck2.Gen.(int_range 1 100000)
    (fun seed ->
      let rng = Xrng.create seed in
      let pair = Stable.create ~seed ~blocks:64 ~block_size:256 () in
      (* Model: latest acknowledged value per block. *)
      let model : (int, string) Hashtbl.t = Hashtbl.create 16 in
      let blocks = ref [] in
      let pick_online () = Stable.some_online pair in
      for step = 1 to 60 do
        match Xrng.int rng 10 with
        | 0 ->
            (* Crash one server (if both are up, to keep service alive). *)
            let up0 = Stable.online pair 0 and up1 = Stable.online pair 1 in
            if up0 && up1 then Stable.crash pair (Xrng.int rng 2)
        | 1 -> (
            (* Restart whichever is down. *)
            let target = if Stable.online pair 0 then 1 else 0 in
            if not (Stable.online pair target) then
              match (Stable.restart pair target).Stable.result with
              | Ok _ -> ()
              | Error e -> Alcotest.failf "restart: %s" (Fmt.str "%a" Stable.pp_error e))
        | 2 ->
            (* Head crash: wipe a disk (only when the other is serving). *)
            let up0 = Stable.online pair 0 and up1 = Stable.online pair 1 in
            if up0 && up1 then Stable.wipe_and_crash pair (Xrng.int rng 2)
        | _ -> (
            (* A write (new block or update) via any online server. *)
            match pick_online () with
            | None -> ()
            | Some i -> (
                let value = Printf.sprintf "s%d" step in
                if !blocks <> [] && Xrng.bool rng then begin
                  let b = List.nth !blocks (Xrng.int rng (List.length !blocks)) in
                  match (Stable.write pair i b (bytes value)).Stable.result with
                  | Ok () -> Hashtbl.replace model b value
                  | Error _ -> ()
                end
                else
                  match (Stable.allocate_write pair i (bytes value)).Stable.result with
                  | Ok b ->
                      blocks := b :: !blocks;
                      Hashtbl.replace model b value
                  | Error _ -> ()))
      done;
      (* Bring everything back and verify every acknowledged write. *)
      (if not (Stable.online pair 0) then ignore (Stable.restart pair 0));
      (if not (Stable.online pair 1) then ignore (Stable.restart pair 1));
      (match Stable.verify_companion_invariant pair with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      Hashtbl.fold
        (fun b expected acc ->
          acc
          &&
          match (Stable.read pair 0 b).Stable.result with
          | Ok data -> Helpers.str data = expected
          | Error _ -> false)
        model true)

let () =
  Alcotest.run "crash-properties"
    [
      ( "file service",
        List.concat_map
          (fun config ->
            [
              QCheck_alcotest.to_alcotest (prop_committed_prefix_survives config);
              QCheck_alcotest.to_alcotest (prop_commit_implies_durability config);
            ])
          cache_configs );
      ( "stable storage",
        [ QCheck_alcotest.to_alcotest prop_stable_survives_crash_storm ] );
    ]
