(* Property-based validation of the optimistic concurrency control against
   a brute-force oracle.

   With transactions that only read and write whole pages (no structural
   modification), the Kung & Robinson condition is exact, so the system's
   behaviour is fully predictable:

   - a transaction must abort iff some transaction that committed after
     its base version wrote a page it read;
   - the final state must equal the committed transactions' writes applied
     in commit order (later writers of a page win).

   The generator draws random batches of concurrent transactions over one
   file and the property replays the oracle next to the real system. *)

open Afs_core
module P = Afs_util.Pagepath

let ok = Helpers.ok
let bytes = Helpers.bytes

type txn = { reads : int list; writes : int list }

let gen_txn npages =
  let open QCheck2.Gen in
  let page = int_range 0 (npages - 1) in
  let* reads = list_size (int_range 0 3) page in
  let* writes = list_size (int_range 0 3) page in
  return { reads = List.sort_uniq compare reads; writes = List.sort_uniq compare writes }

let gen_scenario =
  let open QCheck2.Gen in
  let* npages = int_range 2 6 in
  let* txns = list_size (int_range 2 6) (gen_txn npages) in
  return (npages, txns)

let print_scenario (npages, txns) =
  let show_txn t =
    Printf.sprintf "{r=[%s] w=[%s]}"
      (String.concat ";" (List.map string_of_int t.reads))
      (String.concat ";" (List.map string_of_int t.writes))
  in
  Printf.sprintf "pages=%d txns=[%s]" npages (String.concat " " (List.map show_txn txns))

(* The oracle: walk the transactions in commit order, tracking which pages
   have been written by committed predecessors. *)
let oracle npages txns =
  let committed_writer = Array.make npages None in
  let outcomes =
    List.mapi
      (fun i t ->
        let dirty_read = List.exists (fun p -> committed_writer.(p) <> None) t.reads in
        if dirty_read then `Abort
        else begin
          List.iter (fun p -> committed_writer.(p) <- Some i) t.writes;
          `Commit
        end)
      txns
  in
  (outcomes, Array.map (function Some i -> Printf.sprintf "txn%d" i | None -> "init") committed_writer)

let run_system ?capacity npages txns =
  let _, srv = Helpers.fresh_server ?capacity () in
  let f = ok (Server.create_file srv ()) in
  let setup = ok (Server.create_version srv f) in
  for i = 0 to npages - 1 do
    ignore (ok (Server.insert_page srv setup ~parent:P.root ~index:i ~data:(bytes "init") ()))
  done;
  ok (Server.commit srv setup);
  (* All versions are created first — fully concurrent transactions. *)
  let versions = List.map (fun _ -> ok (Server.create_version srv f)) txns in
  List.iter2
    (fun t v ->
      List.iter (fun p -> ignore (ok (Server.read_page srv v (P.of_list [ p ])))) t.reads;
      List.iteri
        (fun _ p -> ok (Server.write_page srv v (P.of_list [ p ]) (bytes "")))
        t.writes)
    txns versions;
  let outcomes =
    List.mapi
      (fun i (t, v) ->
        (* Tag each write with the transaction index so the final state
           identifies the writer. Writes happened above with placeholder
           content; rewrite with the tag before committing. *)
        List.iter
          (fun p ->
            ok (Server.write_page srv v (P.of_list [ p ]) (bytes (Printf.sprintf "txn%d" i))))
          t.writes;
        match Server.commit srv v with
        | Ok () -> `Commit
        | Error Errors.Conflict -> `Abort
        | Error e -> Alcotest.failf "unexpected commit error: %s" (Errors.to_string e))
      (List.combine txns versions)
  in
  let cur = ok (Server.current_version srv f) in
  let final =
    Array.init npages (fun p -> Helpers.str (ok (Server.read_page srv cur (P.of_list [ p ]))))
  in
  (outcomes, final)

let same_outcomes a b =
  List.length a = List.length b && List.for_all2 (fun x y -> x = y) a b

(* Also run at tiny page-cache capacities: eviction and write-back in the
   middle of an update must not change any commit verdict. *)
let prop_matches_oracle (capacity, label) =
  QCheck2.Test.make
    ~name:(Printf.sprintf "OCC matches the serial oracle (%s)" label)
    ~count:(if capacity = None then 300 else 100)
    ~print:print_scenario gen_scenario (fun (npages, txns) ->
      let expected_outcomes, expected_final = oracle npages txns in
      let outcomes, final = run_system ?capacity npages txns in
      let final_expected =
        Array.map (fun s -> if s = "init" then "init" else s) expected_final
      in
      same_outcomes expected_outcomes outcomes
      && Array.for_all2 ( = ) final_expected final)

(* A sequential-only property: without concurrency nothing ever aborts and
   the last write wins — the degenerate case of the oracle. *)
let prop_sequential_never_aborts =
  QCheck2.Test.make ~name:"sequential updates never abort" ~count:100 ~print:print_scenario
    gen_scenario (fun (npages, txns) ->
      let _, srv = Helpers.fresh_server () in
      let f = ok (Server.create_file srv ()) in
      let setup = ok (Server.create_version srv f) in
      for i = 0 to npages - 1 do
        ignore
          (ok (Server.insert_page srv setup ~parent:P.root ~index:i ~data:(bytes "init") ()))
      done;
      ok (Server.commit srv setup);
      List.for_all
        (fun t ->
          let v = ok (Server.create_version srv f) in
          List.iter (fun p -> ignore (ok (Server.read_page srv v (P.of_list [ p ])))) t.reads;
          List.iter
            (fun p -> ok (Server.write_page srv v (P.of_list [ p ]) (bytes "seq")))
            t.writes;
          Server.commit srv v = Ok ())
        txns)

(* Read-only transactions commit regardless of concurrency as long as the
   pages they read were not overwritten. *)
let prop_disjoint_readers_commute =
  let open QCheck2.Gen in
  let gen =
    let* npages = int_range 4 8 in
    let* boundary = int_range 1 (npages - 1) in
    return (npages, boundary)
  in
  QCheck2.Test.make ~name:"reader and writer of disjoint pages both commit" ~count:100 gen
    (fun (npages, boundary) ->
      let _, srv = Helpers.fresh_server () in
      let f = Helpers.file_with_pages srv npages in
      let reader = ok (Server.create_version srv f) in
      let writer = ok (Server.create_version srv f) in
      for p = 0 to boundary - 1 do
        ignore (ok (Server.read_page srv reader (P.of_list [ p ])))
      done;
      for p = boundary to npages - 1 do
        ok (Server.write_page srv writer (P.of_list [ p ]) (Helpers.bytes "w"))
      done;
      ok (Server.commit srv writer);
      Server.commit srv reader = Ok ())

let () =
  Alcotest.run "serialise-properties"
    [
      ( "oracle",
        List.map
          (fun config -> QCheck_alcotest.to_alcotest (prop_matches_oracle config))
          [ (None, "default cache"); (Some 2, "cap 2"); (Some 4, "cap 4"); (Some 8, "cap 8") ]
        @ [
            QCheck_alcotest.to_alcotest prop_sequential_never_aborts;
            QCheck_alcotest.to_alcotest prop_disjoint_readers_commute;
          ] );
    ]
