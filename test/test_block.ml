open Afs_block
module Disk = Afs_disk.Disk
module Media = Afs_disk.Media
module B = Block_server

let quick = Helpers.quick
let bytes = Helpers.bytes

let fresh ?policy ?(blocks = 64) () =
  let disk = Disk.create ~media:Media.electronic ~blocks ~block_size:1024 () in
  B.create ?policy ~disk ()

let ok (o : 'a B.outcome) =
  match o.B.result with
  | Ok v -> v
  | Error e -> Alcotest.failf "block server error: %s" (Fmt.str "%a" B.pp_error e)

let expect name pred (o : 'a B.outcome) =
  match o.B.result with
  | Ok _ -> Alcotest.failf "%s: expected error" name
  | Error e -> Alcotest.(check bool) name true (pred e)

let alice = 1
let bob = 2

let test_allocate_write_read () =
  let s = fresh () in
  let b = ok (B.allocate s alice) in
  ignore (ok (B.write s alice b (bytes "data")));
  Helpers.check_bytes "read back" "data" (ok (B.read s alice b))

let test_allocation_is_unique () =
  let s = fresh () in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 32 do
    let b = ok (B.allocate s alice) in
    Alcotest.(check bool) "unique" false (Hashtbl.mem seen b);
    Hashtbl.replace seen b ()
  done

let test_exhaustion () =
  let s = fresh ~blocks:4 () in
  for _ = 1 to 4 do
    ignore (ok (B.allocate s alice))
  done;
  expect "exhausted" (function B.No_free_blocks -> true | _ -> false) (B.allocate s alice)

let test_deallocate_recycles () =
  let s = fresh ~blocks:2 () in
  let b0 = ok (B.allocate s alice) in
  let _b1 = ok (B.allocate s alice) in
  ignore (ok (B.deallocate s alice b0));
  let b2 = ok (B.allocate s alice) in
  Alcotest.(check int) "recycled" b0 b2

let test_protection () =
  let s = fresh () in
  let b = ok (B.allocate s alice) in
  ignore (ok (B.write s alice b (bytes "secret")));
  expect "read denied" (function B.Not_owner _ -> true | _ -> false) (B.read s bob b);
  expect "write denied" (function B.Not_owner _ -> true | _ -> false)
    (B.write s bob b (bytes "overwrite"));
  expect "free denied" (function B.Not_owner _ -> true | _ -> false) (B.deallocate s bob b)

let test_unallocated_access () =
  let s = fresh () in
  expect "read unallocated" (function B.Not_allocated 7 -> true | _ -> false)
    (B.read s alice 7)

let test_allocate_at () =
  let s = fresh () in
  ignore (ok (B.allocate_at s alice 9));
  Alcotest.(check (option int)) "owner" (Some alice) (B.owner_of s 9);
  expect "collision" (function B.Not_allocated 9 -> true | _ -> false)
    (B.allocate_at s bob 9)

let test_locking () =
  let s = fresh () in
  let b = ok (B.allocate s alice) in
  ignore (ok (B.lock s alice b));
  Alcotest.(check (option int)) "holder" (Some alice) (B.locked_by s b);
  (* Re-entrant for the same account. *)
  ignore (ok (B.lock s alice b));
  (* Lock excludes writes by others: the block is alice's anyway, but a
     second file server under the same account must be excluded. *)
  ignore (ok (B.unlock s alice b));
  Alcotest.(check (option int)) "released" None (B.locked_by s b)

let test_lock_blocks_other_account_unlock () =
  let s = fresh () in
  let b = ok (B.allocate s alice) in
  ignore (ok (B.lock s alice b));
  expect "foreign unlock" (function B.Locked _ -> true | _ -> false) (B.unlock s bob b);
  expect "unlock not locked" (function B.Not_locked _ -> true | _ -> false)
    (B.unlock s bob (ok (B.allocate s bob)))

let test_deallocate_clears_lock_state () =
  let s = fresh () in
  let b = ok (B.allocate s alice) in
  ignore (ok (B.lock s alice b));
  ignore (ok (B.deallocate s alice b));
  Alcotest.(check (option int)) "lock gone" None (B.locked_by s b)

let test_recovery_listing () =
  let s = fresh () in
  let a1 = ok (B.allocate s alice) in
  let _b1 = ok (B.allocate s bob) in
  let a2 = ok (B.allocate s alice) in
  Alcotest.(check (list int)) "alice's blocks" (List.sort compare [ a1; a2 ])
    (B.owned_blocks s alice);
  Alcotest.(check int) "total" 3 (B.allocated_blocks s)

let test_clear_locks () =
  let s = fresh () in
  let b = ok (B.allocate s alice) in
  ignore (ok (B.lock s alice b));
  B.clear_locks s;
  Alcotest.(check (option int)) "volatile locks gone" None (B.locked_by s b);
  Alcotest.(check (option int)) "ownership survives" (Some alice) (B.owner_of s b)

let test_randomised_policy_allocates_all () =
  let rng = Afs_util.Xrng.create 77 in
  let s = fresh ~policy:(B.Randomised rng) ~blocks:16 () in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 16 do
    let b = ok (B.allocate s alice) in
    Alcotest.(check bool) "unique" false (Hashtbl.mem seen b);
    Hashtbl.replace seen b ()
  done;
  expect "then exhausted" (function B.No_free_blocks -> true | _ -> false)
    (B.allocate s alice)

let test_disk_error_surfaces () =
  let s = fresh () in
  let b = ok (B.allocate s alice) in
  ignore (ok (B.write s alice b (bytes "x")));
  Disk.set_offline (B.disk s) true;
  expect "disk offline" (function B.Disk_error Disk.Offline -> true | _ -> false)
    (B.read s alice b)

let test_cost_includes_disk_time () =
  let disk = Disk.create ~media:Media.magnetic ~blocks:8 ~block_size:1024 () in
  let s = B.create ~disk () in
  let b = ok (B.allocate s alice) in
  let w = B.write s alice b (bytes "payload") in
  Alcotest.(check bool) "write cost > seek" true (w.B.cost_ms > 28.0)

let () =
  Alcotest.run "block_server"
    [
      ( "allocation",
        [
          quick "allocate/write/read" test_allocate_write_read;
          quick "unique allocation" test_allocation_is_unique;
          quick "exhaustion" test_exhaustion;
          quick "deallocate recycles" test_deallocate_recycles;
          quick "allocate_at" test_allocate_at;
          quick "randomised policy covers disk" test_randomised_policy_allocates_all;
        ] );
      ( "protection",
        [
          quick "cross-account denied" test_protection;
          quick "unallocated access" test_unallocated_access;
        ] );
      ( "locking",
        [
          quick "lock/unlock" test_locking;
          quick "foreign unlock denied" test_lock_blocks_other_account_unlock;
          quick "deallocate clears lock" test_deallocate_clears_lock_state;
          quick "clear_locks volatile" test_clear_locks;
        ] );
      ( "recovery",
        [
          quick "owned_blocks listing" test_recovery_listing;
          quick "disk errors surface" test_disk_error_surfaces;
          quick "cost includes disk" test_cost_includes_disk_time;
        ] );
    ]
