(* lib/txn: cross-shard atomic transactions built from ordinary
   optimistic commits, plus the Server prepare/decide 2PC baseline.

   The properties under attack: the coordinator record's commit is the
   transaction-wide atomic point (money is conserved across shards in
   every crash interleaving), in-doubt participants are resolvable by
   any client from the marker and record alone, and the trace of a
   conflict-free commit is deterministic per seed. *)

open Afs_cluster
module Engine = Afs_sim.Engine
module Proc = Afs_sim.Proc
module Capability = Afs_util.Capability
module Xrng = Afs_util.Xrng
module P = Afs_util.Pagepath
module Server = Afs_core.Server
module Errors = Afs_core.Errors
module Trace = Afs_trace.Trace
module Query = Afs_trace.Query
module Catapult = Afs_trace.Catapult
module CC = Cluster_client
module Txn = Afs_txn.Txn

let quick = Helpers.quick
let bytes = Helpers.bytes
let ok = Helpers.ok

let ok_txn = function
  | Ok v -> v
  | Error (Txn.Local e) -> Alcotest.failf "local abort: %s" (Errors.to_string e)
  | Error (Txn.Cross e) -> Alcotest.failf "cross abort: %s" (Errors.to_string e)
  | Error (Txn.Failed e) -> Alcotest.failf "txn failed: %s" (Errors.to_string e)

(* Run [body] as a simulated process and return its result. *)
let in_sim body =
  let engine = Engine.create () in
  let result = ref None in
  let _ = Proc.spawn engine (fun () -> result := Some (body engine)) in
  Engine.run engine;
  match !result with Some r -> r | None -> Alcotest.fail "process never finished"

let in_cluster ?(latency_ms = 1.0) ~shards body =
  in_sim (fun engine ->
      let cluster = Cluster.create ~latency_ms engine ~shards in
      body cluster (CC.connect cluster))

(* One-page balance accounts, placed round-robin by [CC.create_file]. *)
let setup_accounts client n init =
  Array.init n (fun i ->
      let f = ok (CC.create_file ~data:(bytes (Printf.sprintf "acct%d" i)) client) in
      ok
        (CC.update client f (fun txn ->
             let open Errors in
             let* _ =
               CC.Txn.insert txn ~parent:P.root ~index:0
                 ~data:(bytes (string_of_int init)) ()
             in
             Ok ()));
      f)

let read_balance client f =
  int_of_string (Bytes.to_string (ok (CC.read_current client f (P.of_list [ 0 ]))))

let money amt old = bytes (string_of_int (int_of_string (Bytes.to_string old) + amt))
let debit amt = Txn.Rmw (P.of_list [ 0 ], money (-amt))
let credit amt = Txn.Rmw (P.of_list [ 0 ], money amt)
let transfer accts a b amt =
  [ { Txn.file = accts.(a); ops = [ debit amt ] };
    { Txn.file = accts.(b); ops = [ credit amt ] } ]

(* {2 Marker codec} *)

let gen_cap =
  QCheck2.Gen.(
    let* port = int_bound 0xFFFFFF in
    let* obj = int_bound 100_000 in
    let* rights = int_bound 255 in
    let* check = int_bound 0x3FFFFFFF in
    return
      {
        Capability.port = Capability.port_of_int port;
        obj;
        rights = Capability.rights_of_int rights;
        check;
      })

let gen_marker =
  QCheck2.Gen.(
    let* record = gen_cap in
    let* seq = int_bound 100_000 in
    let* old_root = map Bytes.of_string (string_size ~gen:printable (int_bound 40)) in
    let* writes =
      list_size (int_bound 4)
        (pair
           (map P.of_list (list_size (int_range 1 3) (int_bound 7)))
           (map Bytes.of_string (string_size ~gen:printable (int_bound 40))))
    in
    return { Txnmark.record; seq; old_root; writes })

let prop_marker_roundtrip =
  QCheck2.Test.make ~name:"txn marker: decode . encode = Some" ~count:200 gen_marker
    (fun m ->
      match Txnmark.decode (Txnmark.encode m) with
      | None -> false
      | Some m' ->
          Capability.equal m.Txnmark.record m'.Txnmark.record
          && m.Txnmark.seq = m'.Txnmark.seq
          && Bytes.equal m.Txnmark.old_root m'.Txnmark.old_root
          && List.length m.Txnmark.writes = List.length m'.Txnmark.writes
          && List.for_all2
               (fun (p, d) (p', d') -> P.compare p p' = 0 && Bytes.equal d d')
               m.Txnmark.writes m'.Txnmark.writes)

let test_marker_rejects_garbage () =
  Alcotest.(check bool) "plain data" false (Txnmark.is_marker (bytes "hello"));
  Alcotest.(check bool) "empty" false (Txnmark.is_marker Bytes.empty);
  Alcotest.(check bool)
    "prefix, garbage body" true
    (Txnmark.decode (bytes (Txnmark.prefix ^ "junk")) = None);
  let m =
    {
      Txnmark.record =
        {
          Capability.port = Capability.port_of_int 7;
          obj = 3;
          rights = Capability.rights_all;
          check = 99;
        };
      seq = 4;
      old_root = bytes "old";
      writes = [ (P.of_list [ 0 ], bytes "w") ];
    }
  in
  Alcotest.(check bool)
    "trailing garbage" true
    (Txnmark.decode (Bytes.cat (Txnmark.encode m) (bytes "x")) = None);
  Alcotest.(check bool)
    "truncation" true
    (let e = Txnmark.encode m in
     Txnmark.decode (Bytes.sub e 0 (Bytes.length e - 3)) = None)

(* {2 The pure decision logic (C1 critical sections)} *)

let test_decision_table () =
  let d s = Txn.decide ~record_data:(bytes s) in
  Alcotest.(check bool) "pending" true (d "txn:pending" = Txn.Pending);
  Alcotest.(check bool) "committed" true (d "txn:committed" = Txn.Committed);
  Alcotest.(check bool) "aborted" true (d "txn:aborted" = Txn.Aborted);
  Alcotest.(check bool) "garbage" true (d "whatever" = Txn.Unknown_record);
  let m =
    {
      Txnmark.record =
        {
          Capability.port = Capability.port_of_int 1;
          obj = 1;
          rights = Capability.rights_all;
          check = 0;
        };
      seq = 1;
      old_root = Bytes.empty;
      writes = [];
    }
  in
  Alcotest.(check bool) "committed -> forward" true
    (Txn.resolve m Txn.Committed = Txn.Forward m);
  Alcotest.(check bool) "aborted -> back" true (Txn.resolve m Txn.Aborted = Txn.Back m);
  Alcotest.(check bool) "unknown -> back" true
    (Txn.resolve m Txn.Unknown_record = Txn.Back m);
  Alcotest.(check bool) "pending -> wait" true (Txn.resolve m Txn.Pending = Txn.Wait m)

(* {2 The happy path} *)

let test_cross_shard_commit () =
  in_cluster ~shards:2 (fun _cluster client ->
      let accts = setup_accounts client 2 100 in
      let txn = Txn.create client in
      ok_txn (Txn.exec txn (transfer accts 0 1 30));
      Alcotest.(check int) "debited" 70 (read_balance client accts.(0));
      Alcotest.(check int) "credited" 130 (read_balance client accts.(1));
      (* No marker survives a completed transaction: ordinary reads pass
         the trap and the root carries its original data. *)
      Array.iteri
        (fun i f ->
          Helpers.check_bytes "root restored"
            (Printf.sprintf "acct%d" i)
            (ok (CC.read_current client f P.root)))
        accts)

let test_single_part_fast_path () =
  in_cluster ~shards:2 (fun _cluster client ->
      let accts = setup_accounts client 1 100 in
      let txn = Txn.create client in
      ok_txn (Txn.exec txn [ { Txn.file = accts.(0); ops = [ credit 5 ] } ]);
      Alcotest.(check int) "applied" 105 (read_balance client accts.(0));
      let get = Afs_util.Stats.Counter.get (Txn.counters txn) in
      Alcotest.(check int) "took the fast path" 1 (get "txn.fastpath");
      Alcotest.(check int) "no coordinator" 0 (get "txn.coordinated"))

(* A fully staged transaction and a plain optimistic update colliding:
   whoever commits second must lose, in this order the plain update —
   which finds the file in doubt, waits out the (already decided)
   record, resolves it forward and then succeeds on the result. *)
let test_reader_resolves_in_doubt () =
  in_cluster ~shards:2 (fun _cluster client ->
      let accts = setup_accounts client 2 100 in
      let record = ref None in
      let txn = Txn.create client in
      (match
         Txn.exec ~crash_at:Txn.After_decide
           ~on_record:(fun c -> record := Some c)
           txn (transfer accts 0 1 30)
       with
      | exception Txn.Crashed -> ()
      | _ -> Alcotest.fail "crash point never fired");
      (* Both participants are staged and trapped. *)
      (match CC.read_current client accts.(0) (P.of_list [ 0 ]) with
      | Error (Errors.Txn_in_doubt r) ->
          Alcotest.(check bool)
            "trap names the record" true
            (match !record with Some c -> Capability.equal c r | None -> false)
      | Ok _ -> Alcotest.fail "staged file served an ordinary read"
      | Error e -> Alcotest.failf "expected Txn_in_doubt, got %s" (Errors.to_string e));
      (* A second, independent client resolves by simply using the file:
         the record says committed, so the resolver rolls forward and the
         transfer lands before its own update. *)
      let other = Txn.create ~pending_patience:0 client in
      ok_txn (Txn.exec other [ { Txn.file = accts.(0); ops = [ credit 1 ] } ]);
      Alcotest.(check int) "transfer rolled forward, then +1" 71
        (read_balance client accts.(0));
      Alcotest.(check int) "other participant swept separately" 1
        (ok (Txn.sweep other (Array.to_list accts)));
      Alcotest.(check int) "credited" 130 (read_balance client accts.(1)))

(* A coordinator dying before the decide leaves a pending record; the
   sweep presumes it dead, force-aborts it, and rolls every participant
   back — the transfer never happened. *)
let test_sweep_discards_undecided () =
  in_cluster ~shards:2 (fun _cluster client ->
      let accts = setup_accounts client 2 100 in
      let record = ref None in
      let txn = Txn.create client in
      (match
         Txn.exec ~crash_at:Txn.Before_decide
           ~on_record:(fun c -> record := Some c)
           txn (transfer accts 0 1 30)
       with
      | exception Txn.Crashed -> ()
      | _ -> Alcotest.fail "crash point never fired");
      let sweeper = Txn.create client in
      Alcotest.(check int) "both participants resolved" 2
        (ok (Txn.sweep sweeper (Array.to_list accts)));
      Alcotest.(check int) "rolled back" 100 (read_balance client accts.(0));
      Alcotest.(check int) "rolled back" 100 (read_balance client accts.(1));
      (* The force-abort is durable: the record can never commit now. *)
      match !record with
      | None -> Alcotest.fail "no record observed"
      | Some r ->
          Alcotest.(check bool)
            "record force-aborted" true
            (ok (Txn.record_decision sweeper r) = Txn.Aborted))

(* Crashing mid-flip: the decision stands, the remaining participant is
   rolled forward by recovery. *)
let test_sweep_completes_decided () =
  in_cluster ~shards:2 (fun _cluster client ->
      let accts = setup_accounts client 2 100 in
      let txn = Txn.create client in
      (match Txn.exec ~crash_at:(Txn.Mid_flip 1) txn (transfer accts 0 1 30) with
      | exception Txn.Crashed -> ()
      | _ -> Alcotest.fail "crash point never fired");
      let sweeper = Txn.create client in
      Alcotest.(check int) "one participant left in doubt" 1
        (ok (Txn.sweep sweeper (Array.to_list accts)));
      Alcotest.(check int) "debited" 70 (read_balance client accts.(0));
      Alcotest.(check int) "credited" 130 (read_balance client accts.(1)))

(* The R-on-root fence, in the commit order the trap cannot catch: a
   plain update opened BEFORE the stage commits afterwards — and must
   conflict, because the stage wrote the root that update's version
   recorded R on. *)
let test_stage_fences_prior_versions () =
  in_cluster ~shards:2 (fun _cluster client ->
      let accts = setup_accounts client 2 100 in
      let h = ok (CC.begin_txn client accts.(0)) in
      ok (CC.Txn.write h.CC.txn (P.of_list [ 0 ]) (bytes "777"));
      let txn = Txn.create client in
      (match
         Txn.exec ~crash_at:Txn.Before_decide txn (transfer accts 0 1 30)
       with
      | exception Txn.Crashed -> ()
      | _ -> Alcotest.fail "crash point never fired");
      (match CC.commit client h with
      | Error Errors.Conflict -> ()
      | Ok () -> Alcotest.fail "pre-stage version committed over a marker"
      | Error e -> Alcotest.failf "expected Conflict, got %s" (Errors.to_string e));
      let sweeper = Txn.create client in
      ignore (ok (Txn.sweep sweeper (Array.to_list accts)) : int);
      Alcotest.(check int) "staged txn discarded" 100 (read_balance client accts.(0)))

(* {2 Trace oracle}

   A conflict-free cross-shard commit has a fixed protocol shape: one
   decide span, one stage span per participant — and the whole rendered
   event stream is a pure function of the seed. *)

let trace_one_run seed =
  let engine = Engine.create () in
  let tr = Trace.ring ~now:(fun () -> Engine.now engine) () in
  let cluster = Cluster.create ~latency_ms:1.0 ~trace:tr engine ~shards:2 in
  let _ =
    Proc.spawn engine (fun () ->
        let client = CC.connect cluster in
        let accts = setup_accounts client 3 100 in
        let rng = Xrng.create seed in
        let amt = 1 + Xrng.int rng 20 in
        let txn = Txn.create ~trace:tr client in
        ok_txn
          (Txn.exec txn
             [
               { Txn.file = accts.(0); ops = [ debit amt ] };
               { Txn.file = accts.(1); ops = [ credit (amt - 1) ] };
               { Txn.file = accts.(2); ops = [ credit 1 ] };
             ]))
  in
  Engine.run engine;
  Trace.events tr

let render events =
  let b = Buffer.create 4096 in
  let w = Catapult.writer (Buffer.add_string b) in
  List.iter (Catapult.emit w) events;
  Catapult.finish w;
  Buffer.contents b

let test_trace_oracle () =
  let events = trace_one_run 7 in
  Alcotest.(check int) "one decide span" 1
    (List.length (Query.spans_of_kind events "txn.decide"));
  Alcotest.(check int) "one stage span per participant" 3
    (List.length (Query.spans_of_kind events "txn.stage"));
  Alcotest.(check int) "one coordinator span" 1
    (List.length (Query.spans_of_kind events "txn.coord"));
  Alcotest.(check int) "decide point" 1 (Query.count events "txn.decide");
  Alcotest.(check int) "flip per participant" 3 (Query.count events "txn.flip");
  (* Byte-identical per seed, and seeds actually differ. *)
  Alcotest.(check string) "seed 7 deterministic" (render events) (render (trace_one_run 7));
  Alcotest.(check string) "seed 11 deterministic"
    (render (trace_one_run 11))
    (render (trace_one_run 11))

(* {2 The 2PC baseline: Server.prepare / Server.decide} *)

let twopc_file () =
  let srv = Server.create (Afs_core.Store.memory ()) in
  let f = ok (Server.create_file srv ()) in
  let v0 = ok (Server.create_version srv f) in
  for i = 0 to 1 do
    ignore (ok (Server.insert_page srv v0 ~parent:P.root ~index:i ~data:(bytes "init") ()))
  done;
  ok (Server.commit srv v0);
  (srv, f)

let test_twopc_prepare_then_commit () =
  let srv, f = twopc_file () in
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (P.of_list [ 0 ]) (bytes "voted"));
  ok (Server.prepare srv v);
  (* The prepare window blocks competitors on the base's commit lock. *)
  let w = ok (Server.create_version srv f) in
  ok (Server.write_page srv w (P.of_list [ 1 ]) (bytes "blocked"));
  (match Server.commit srv w with
  | Error (Errors.Store_failure _) -> ()
  | Ok () -> Alcotest.fail "competitor committed through a prepare window"
  | Error e -> Alcotest.failf "expected lock contention, got %s" (Errors.to_string e));
  ok (Server.decide srv v ~commit:true);
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "published" "voted" (ok (Server.read_page srv cur (P.of_list [ 0 ])));
  (* Lock released: the competitor's redo goes through (disjoint pages
     merge). *)
  let w2 = ok (Server.create_version srv f) in
  ok (Server.write_page srv w2 (P.of_list [ 1 ]) (bytes "after"));
  ok (Server.commit srv w2)

let test_twopc_decide_abort_discards () =
  let srv, f = twopc_file () in
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (P.of_list [ 0 ]) (bytes "doomed"));
  ok (Server.prepare srv v);
  ok (Server.decide srv v ~commit:false);
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "unchanged" "init" (ok (Server.read_page srv cur (P.of_list [ 0 ])));
  (* Lock released and the version abandoned: ordinary commits work. *)
  let w = ok (Server.create_version srv f) in
  ok (Server.write_page srv w (P.of_list [ 0 ]) (bytes "next"));
  ok (Server.commit srv w)

let test_twopc_presumed_abort () =
  let srv, f = twopc_file () in
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (P.of_list [ 0 ]) (bytes "never prepared"));
  (* Abort of an unknown transaction is presumed already aborted; commit
     of one is a protocol violation. *)
  ok (Server.decide srv v ~commit:false);
  (match Server.decide srv v ~commit:true with
  | Error (Errors.Store_failure _) -> ()
  | Ok () -> Alcotest.fail "committed an unprepared version"
  | Error e -> Alcotest.failf "unexpected error: %s" (Errors.to_string e))

let test_twopc_crash_forgets_prepared () =
  let srv, f = twopc_file () in
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (P.of_list [ 0 ]) (bytes "in flight"));
  ok (Server.prepare srv v);
  Server.crash srv;
  (* The in-doubt participant is simply gone (volatile prepare state):
     decide-commit now fails, and the file is unlocked and serves. *)
  (match Server.decide srv v ~commit:true with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "prepared state survived a crash");
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "old value intact" "init"
    (ok (Server.read_page srv cur (P.of_list [ 0 ])));
  let w = ok (Server.create_version srv f) in
  ok (Server.write_page srv w (P.of_list [ 0 ]) (bytes "post-crash"));
  ok (Server.commit srv w)

(* The 2PC SUT end to end, same transfer mix as the OCC coordinator. *)
let test_twopc_sut_conserves () =
  let open Afs_workload in
  let engine = Engine.create () in
  let cluster = Cluster.create ~latency_ms:1.0 engine ~shards:2 in
  let tshape =
    { Workload.bank_transfers with accounts = 8; objects = 0; shards = 2;
      move_ratio = 0.0; cross_ratio = 0.5 }
  in
  let files = ok (Workload.setup_accounts cluster tshape ~initial_balance:100) in
  let sut = Sut.afs_twopc (CC.connect cluster) ~files in
  let config =
    { Driver.default_config with clients = 6; duration_ms = 800.0; think_ms = 5.0 }
  in
  let report = Driver.run engine config sut ~gen:(Workload.transfer tshape) in
  Alcotest.(check bool) "committed some transfers" true (report.Driver.committed > 0);
  Alcotest.(check int) "conserved" (100 * 8) (Workload.total_balance sut tshape)

(* {2 Conservation under crashes (the QCheck property)}

   Random cross-shard transfers with a deterministic crash schedule:
   coordinator kills at every protocol step (crash_at) and participant
   shard kills mid-run (Faults). After recovery and a sweep, the sum of
   balances is invariant, every definite outcome is reflected exactly
   once, and no in-doubt participant survives. *)

let crash_points =
  [|
    None;
    Some (Txn.Before_stage 0);
    Some (Txn.Before_stage 1);
    Some Txn.Before_decide;
    Some Txn.After_decide;
    Some (Txn.Mid_flip 0);
    Some (Txn.Mid_flip 1);
  |]

let conservation_one_run ~seed ~kills =
  let shards = 3 in
  let naccts = 6 in
  let init = 100 in
  let engine = Engine.create () in
  let cluster = Cluster.create ~latency_ms:1.0 engine ~shards in
  let failure = ref None in
  let fail fmt = Printf.ksprintf (fun m -> if !failure = None then failure := Some m) fmt in
  let _ =
    Proc.spawn engine (fun () ->
        let client = CC.connect cluster in
        let accts = setup_accounts client naccts init in
        let faults = Afs_replica.Faults.create engine in
        List.iter
          (fun (ms, k) ->
            Afs_replica.Faults.at faults ~ms ~label:(Printf.sprintf "kill:%d" k)
              (fun () ->
                Shard.crash (Cluster.shard cluster k);
                Proc.delay 10.0;
                match Shard.recover (Cluster.shard cluster k) with
                | Ok _ -> ()
                | Error e -> fail "recovery failed: %s" (Errors.to_string e)))
          kills;
        let rng = Xrng.create seed in
        let txn = Txn.create client in
        let deltas = Array.make naccts 0 in
        (* Transactions whose coordinator crashed: classified post hoc by
           the record, exactly as a recovering client would. *)
        let uncertain = ref [] in
        for _ = 1 to 30 do
          Proc.delay (Xrng.float rng 4.0);
          let a = Xrng.int rng naccts in
          let b = (a + 1 + Xrng.int rng (naccts - 1)) mod naccts in
          let amt = 1 + Xrng.int rng 9 in
          let crash_at = crash_points.(Xrng.int rng (Array.length crash_points)) in
          let record = ref None in
          match
            Txn.exec ?crash_at
              ~on_record:(fun c -> record := Some c)
              txn (transfer accts a b amt)
          with
          | exception Txn.Crashed -> (
              match !record with
              | Some r -> uncertain := (r, a, b, amt) :: !uncertain
              | None -> () (* Died before the record existed: nothing staged. *))
          | Ok () ->
              deltas.(a) <- deltas.(a) - amt;
              deltas.(b) <- deltas.(b) + amt
          | Error (Txn.Local _ | Txn.Cross _) -> ()
          | Error (Txn.Failed _) -> (
              (* Transport trouble mid-protocol: same stance as a crash —
                 the record (if any) holds the definite outcome. *)
              match !record with
              | Some r -> uncertain := (r, a, b, amt) :: !uncertain
              | None -> ())
        done;
        (* Quiesce: let any in-flight kill/recovery finish. *)
        Proc.delay 200.0;
        (* Crash recovery: any client sweeps from markers + records. *)
        let sweeper = Txn.create client in
        (match Txn.sweep sweeper (Array.to_list accts) with
        | Ok _ -> ()
        | Error e -> fail "sweep failed: %s" (Errors.to_string e));
        List.iter
          (fun (r, a, b, amt) ->
            match Txn.record_decision sweeper r with
            | Ok Txn.Committed ->
                deltas.(a) <- deltas.(a) - amt;
                deltas.(b) <- deltas.(b) + amt
            | Ok _ -> ()
            | Error e -> fail "record audit failed: %s" (Errors.to_string e))
          (!uncertain);
        (* No in-doubt participant survives: every root reads ordinarily
           and carries no marker; every balance matches the definite
           outcomes exactly. *)
        Array.iteri
          (fun i f ->
            (match CC.read_current client f P.root with
            | Ok root ->
                if Txnmark.is_marker root then fail "account %d still staged" i
            | Error e ->
                fail "account %d unreadable: %s" i (Errors.to_string e));
            let expect = init + deltas.(i) in
            let got = read_balance client f in
            if got <> expect then fail "account %d: %d, expected %d" i got expect)
          accts)
  in
  Engine.run engine;
  match !failure with
  | None -> true
  | Some m ->
      QCheck2.Test.fail_reportf "seed %d kills %s: %s" seed
        (String.concat ","
           (List.map (fun (ms, k) -> Printf.sprintf "%d@%.0f" k ms) kills))
        m

let prop_conservation =
  QCheck2.Test.make ~name:"cross-shard transfers conserve under crash schedules"
    ~count:10
    ~print:QCheck2.Print.(pair int (list (pair float int)))
    QCheck2.Gen.(
      pair (int_bound 1_000_000)
        (list_size (int_bound 2) (pair (float_bound_exclusive 80.0) (int_bound 2))))
    (fun (seed, kills) -> conservation_one_run ~seed ~kills)

let () =
  Alcotest.run "txn"
    [
      ( "marker",
        [
          QCheck_alcotest.to_alcotest prop_marker_roundtrip;
          quick "rejects garbage" test_marker_rejects_garbage;
        ] );
      ("decision", [ quick "pure decide/resolve table" test_decision_table ]);
      ( "protocol",
        [
          quick "cross-shard commit is atomic and clean" test_cross_shard_commit;
          quick "single part takes the fast path" test_single_part_fast_path;
          quick "reader resolves an in-doubt file" test_reader_resolves_in_doubt;
          quick "sweep discards an undecided txn" test_sweep_discards_undecided;
          quick "sweep completes a decided txn" test_sweep_completes_decided;
          quick "stage fences versions opened before it" test_stage_fences_prior_versions;
        ] );
      ("trace", [ quick "decide/stage span oracle, deterministic" test_trace_oracle ]);
      ( "twopc",
        [
          quick "prepare parks, decide publishes" test_twopc_prepare_then_commit;
          quick "decide-abort discards" test_twopc_decide_abort_discards;
          quick "presumed abort" test_twopc_presumed_abort;
          quick "crash forgets prepared state" test_twopc_crash_forgets_prepared;
          quick "2pc SUT conserves money" test_twopc_sut_conserves;
        ] );
      ("conservation", [ QCheck_alcotest.to_alcotest prop_conservation ]);
    ]
