open Afs_sim
open Afs_rpc
module Server = Afs_core.Server
module Store = Afs_core.Store
module Errors = Afs_core.Errors
module P = Afs_util.Pagepath

let quick = Helpers.quick
let bytes = Helpers.bytes
let ok = Helpers.ok

(* Run [body] as a simulated process and return its result. *)
let in_sim body =
  let engine = Engine.create () in
  let result = ref None in
  let _ = Proc.spawn engine (fun () -> result := Some (body engine)) in
  Engine.run engine;
  match !result with Some r -> r | None -> Alcotest.fail "process never finished"

(* {2 Generic RPC} *)

let test_call_round_trip () =
  in_sim (fun engine ->
      let server = Rpc.serve engine ~name:"echo" ~handler:(fun x -> x * 2) in
      match Rpc.call server 21 with
      | Ok v -> Alcotest.(check int) "doubled" 42 v
      | Error e -> Alcotest.failf "call failed: %s" (Fmt.str "%a" Rpc.pp_call_error e))

let test_latency_charged () =
  in_sim (fun engine ->
      let server = Rpc.serve ~latency_ms:5.0 ~proc_ms:1.0 engine ~name:"slow" ~handler:Fun.id in
      let t0 = Engine.now engine in
      (match Rpc.call server () with Ok () -> () | Error _ -> Alcotest.fail "failed");
      let dt = Engine.now engine -. t0 in
      (* Two network hops plus processing. *)
      Alcotest.(check bool) (Printf.sprintf "%.1fms = 11ms" dt) true (abs_float (dt -. 11.0) < 1e-6))

let test_requests_serialised () =
  in_sim (fun engine ->
      let active = ref 0 in
      let max_active = ref 0 in
      let server =
        Rpc.serve ~proc_ms:2.0 engine ~name:"srv"
          ~handler:(fun () ->
            incr active;
            if !active > !max_active then max_active := !active;
            decr active)
      in
      let spawn_joined, join_all = Proc.joinable engine in
      for _ = 1 to 5 do
        ignore (spawn_joined (fun () -> ignore (Rpc.call server ())))
      done;
      join_all ();
      Alcotest.(check int) "one at a time" 1 !max_active;
      Alcotest.(check int) "all served" 5 (Rpc.requests_served server))

let test_queueing_delays_later_requests () =
  in_sim (fun engine ->
      let server = Rpc.serve ~latency_ms:1.0 ~proc_ms:10.0 engine ~name:"srv" ~handler:Fun.id in
      let finish_times = ref [] in
      let spawn_joined, join_all = Proc.joinable engine in
      for _ = 1 to 3 do
        ignore
          (spawn_joined (fun () ->
               ignore (Rpc.call server ());
               finish_times := Engine.now engine :: !finish_times))
      done;
      join_all ();
      match List.sort compare !finish_times with
      | [ a; b; c ] ->
          Alcotest.(check bool) "spaced by service time" true (b -. a >= 9.9 && c -. b >= 9.9)
      | _ -> Alcotest.fail "expected three finishes")

let test_crash_fails_pending_and_future () =
  in_sim (fun engine ->
      let server = Rpc.serve ~proc_ms:50.0 engine ~name:"doomed" ~handler:Fun.id in
      let outcome1 = ref None in
      let _ =
        Proc.spawn engine (fun () -> outcome1 := Some (Rpc.call server ()))
      in
      (* Crash while the first request is still queued. *)
      Engine.at engine 1.0 (fun () -> Rpc.crash server);
      let outcome2 = ref None in
      let _ =
        Proc.spawn engine (fun () ->
            Proc.delay 5.0;
            outcome2 := Some (Rpc.call server ()))
      in
      Engine.run engine;
      (match !outcome1 with
      | Some (Error (Rpc.Server_crashed | Rpc.Timeout)) -> ()
      | Some (Ok _) -> Alcotest.fail "pending request answered by dead server"
      | _ -> Alcotest.fail "no outcome");
      match !outcome2 with
      | Some (Error Rpc.Timeout) -> ()
      | Some (Ok _) -> Alcotest.fail "dead server answered"
      | _ -> Alcotest.fail "no outcome 2")

let test_restart_resumes_service () =
  in_sim (fun engine ->
      let server = Rpc.serve engine ~name:"phoenix" ~handler:(fun x -> x + 1) in
      Rpc.crash server;
      Rpc.restart server;
      match Rpc.call server 1 with
      | Ok 2 -> ()
      | _ -> Alcotest.fail "restarted server must serve")

(* {2 Remote file service} *)

let remote_setup engine =
  let store = Store.memory () in
  let srv = Server.create store in
  let host = Remote.host engine ~name:"afs-1" srv in
  (store, srv, host)

let test_remote_end_to_end () =
  in_sim (fun engine ->
      let _, srv, host = remote_setup engine in
      let conn = Remote.connect [ host ] in
      let f = ok (Remote.create_file conn (bytes "hello")) in
      let v = ok (Remote.create_version conn f) in
      let p = ok (Remote.insert_page conn v ~parent:P.root ~index:0 ~data:(bytes "page")) in
      ok (Remote.write_page conn v p (bytes "rewritten"));
      ok (Remote.commit conn v);
      let cur = ok (Remote.current_version conn f) in
      Helpers.check_bytes "read back over rpc" "rewritten" (ok (Remote.read_page conn cur p));
      (* The server behind the wire agrees. *)
      let cur_local = ok (Server.current_version srv f) in
      Helpers.check_bytes "server state" "rewritten"
        (ok (Server.read_page srv cur_local (P.of_list [ 0 ]))))

let test_remote_conflict_propagates () =
  in_sim (fun engine ->
      let _, _, host = remote_setup engine in
      let conn = Remote.connect [ host ] in
      let f = ok (Remote.create_file conn (bytes "base")) in
      let va = ok (Remote.create_version conn f) in
      let vb = ok (Remote.create_version conn f) in
      let _ = ok (Remote.read_page conn va P.root) in
      ok (Remote.write_page conn va P.root (bytes "a"));
      ok (Remote.write_page conn vb P.root (bytes "b"));
      ok (Remote.commit conn vb);
      match Remote.commit conn va with
      | Error Errors.Conflict -> ()
      | Ok () -> Alcotest.fail "conflict not detected over rpc"
      | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e))

let test_remote_validate_cache () =
  in_sim (fun engine ->
      let _, srv, host = remote_setup engine in
      let conn = Remote.connect [ host ] in
      let f = ok (Remote.create_file conn (bytes "v1")) in
      let basis = ok (Server.current_block_of_file srv f) in
      let v = ok (Remote.create_version conn f) in
      ok (Remote.write_page conn v P.root (bytes "v2"));
      ok (Remote.commit conn v);
      let validation = ok (Remote.validate_cache conn ~file:f ~basis_block:basis) in
      Alcotest.(check int) "one version behind" 1 validation.Afs_core.Cache.versions_walked;
      Alcotest.(check (list string)) "root invalid" [ "/" ]
        (List.map P.to_string validation.Afs_core.Cache.invalid))

let test_failover_to_second_host () =
  in_sim (fun engine ->
      let store = Store.memory () in
      let ports = Afs_core.Ports.create () in
      let srv1 = Server.create ~seed:7 ~ports store in
      let srv2 = Server.create ~seed:7 ~ports store in
      let host1 = Remote.host engine ~name:"afs-1" srv1 in
      let host2 = Remote.host engine ~name:"afs-2" srv2 in
      let conn = Remote.connect [ host1; host2 ] in
      let f = ok (Remote.create_file conn (bytes "replicated service")) in
      (* Primary dies; the client's next request must succeed via host 2
         without any client-visible recovery step. *)
      Remote.crash_host host1;
      Alcotest.(check bool) "host1 down" false (Remote.host_up host1);
      let v = ok (Remote.create_version conn f) in
      ok (Remote.write_page conn v P.root (bytes "served by standby"));
      ok (Remote.commit conn v);
      let cur = ok (Remote.current_version conn f) in
      Helpers.check_bytes "standby serves" "served by standby"
        (ok (Remote.read_page conn cur P.root)))

let test_crash_loses_uncommitted_but_not_committed () =
  in_sim (fun engine ->
      let store = Store.memory () in
      let ports = Afs_core.Ports.create () in
      let srv1 = Server.create ~seed:7 ~ports store in
      let srv2 = Server.create ~seed:7 ~ports store in
      let host1 = Remote.host engine ~name:"afs-1" srv1 in
      let host2 = Remote.host engine ~name:"afs-2" srv2 in
      let conn = Remote.connect [ host1; host2 ] in
      let f = ok (Remote.create_file conn (bytes "committed state")) in
      let v = ok (Remote.create_version conn f) in
      ok (Remote.write_page conn v P.root (bytes "in flight"));
      Remote.crash_host host1;
      (* The client redoes the whole update on the standby — the paper's
         contract — and the committed state was never at risk. *)
      (match Remote.read_page conn v P.root with
      | Error _ -> () (* Uncommitted version died with the server. *)
      | Ok data ->
          (* Or, if flushed before the crash, it is still consistent. *)
          Helpers.check_bytes "flushed copy consistent" "in flight" data);
      let v2 = ok (Remote.create_version conn f) in
      ok (Remote.write_page conn v2 P.root (bytes "redone"));
      ok (Remote.commit conn v2);
      let cur = ok (Remote.current_version conn f) in
      Helpers.check_bytes "redo landed" "redone" (ok (Remote.read_page conn cur P.root)))

let test_balanced_conn_spreads_and_stays_correct () =
  in_sim (fun engine ->
      let store = Store.memory () in
      let ports = Afs_core.Ports.create () in
      let srv1 = Server.create ~seed:7 ~ports store in
      let srv2 = Server.create ~seed:7 ~ports store in
      let host1 = Remote.host engine ~name:"afs-1" srv1 in
      let host2 = Remote.host engine ~name:"afs-2" srv2 in
      let conn = Remote.connect ~balance:true [ host1; host2 ] in
      let f = ok (Remote.create_file conn (bytes "0")) in
      (* A chain of read-modify-write transactions: correctness requires
         every version's operations to reach its own managing server (the
         write-back cache lives there), while create_version calls rotate. *)
      for _ = 1 to 20 do
        let v = ok (Remote.create_version conn f) in
        let n = int_of_string (Helpers.str (ok (Remote.read_page conn v P.root))) in
        ok (Remote.write_page conn v P.root (bytes (string_of_int (n + 1))));
        ok (Remote.commit conn v)
      done;
      let cur = ok (Remote.current_version conn f) in
      Helpers.check_bytes "all increments through both servers" "20"
        (ok (Remote.read_page conn cur P.root));
      (* Both servers actually served transactions. *)
      let served h = Afs_util.Stats.Counter.get (Server.counters (Remote.host_server h)) "versions.created" in
      Alcotest.(check bool) "host1 served" true (served host1 > 0);
      Alcotest.(check bool) "host2 served" true (served host2 > 0))

(* Regression for the Y1-allowlisted site in Remote.call (lint.allow):
   [conn.preferred] is written after the RPC yield, from a frame that read
   it before yielding — formally a yield-atomicity race. This test pins
   down why the site is safe: the hint is purely advisory. Two processes
   racing on one connection scribble it concurrently for the whole run,
   yet every request lands on a live host and every update commits,
   because each call re-walks the host ring from whatever the hint says —
   and a hint parked on a dead host only costs one failover hop. *)
let test_preferred_hint_is_advisory () =
  in_sim (fun engine ->
      let store = Store.memory () in
      let ports = Afs_core.Ports.create () in
      let srv1 = Server.create ~seed:7 ~ports store in
      let srv2 = Server.create ~seed:7 ~ports store in
      let host1 = Remote.host engine ~name:"afs-1" srv1 in
      let host2 = Remote.host engine ~name:"afs-2" srv2 in
      let conn = Remote.connect [ host1; host2 ] in
      let fa = ok (Remote.create_file conn (bytes "0")) in
      let fb = ok (Remote.create_file conn (bytes "0")) in
      let rmw file =
        let v = ok (Remote.create_version conn file) in
        let n = int_of_string (Helpers.str (ok (Remote.read_page conn v P.root))) in
        ok (Remote.write_page conn v P.root (bytes (string_of_int (n + 1))));
        ok (Remote.commit conn v)
      in
      let done1 = ref false and done2 = ref false in
      let _ =
        Proc.spawn engine (fun () ->
            for _ = 1 to 10 do rmw fa done;
            done1 := true)
      in
      let _ =
        Proc.spawn engine (fun () ->
            for _ = 1 to 10 do rmw fb done;
            done2 := true)
      in
      while not (!done1 && !done2) do
        Proc.delay 1.0
      done;
      let read_counter f =
        let cur = ok (Remote.current_version conn f) in
        Helpers.str (ok (Remote.read_page conn cur P.root))
      in
      Alcotest.(check string) "all of A's updates landed" "10" (read_counter fa);
      Alcotest.(check string) "all of B's updates landed" "10" (read_counter fb);
      (* Whatever the races left in the hint, a crash of either host only
         costs a failover hop — a stale hint can never fail a request. *)
      Remote.crash_host host1;
      Alcotest.(check string) "served with host1 down" "10" (read_counter fa);
      Remote.restart_host host1;
      Remote.crash_host host2;
      Alcotest.(check string) "served with host2 down" "10" (read_counter fb))

let test_no_hosts_rejected () =
  Alcotest.check_raises "empty host list" (Invalid_argument "Remote.connect: no hosts")
    (fun () -> ignore (Remote.connect []))

let () =
  Alcotest.run "rpc"
    [
      ( "transport",
        [
          quick "round trip" test_call_round_trip;
          quick "latency charged" test_latency_charged;
          quick "requests serialised" test_requests_serialised;
          quick "queueing delays" test_queueing_delays_later_requests;
          quick "crash fails requests" test_crash_fails_pending_and_future;
          quick "restart resumes" test_restart_resumes_service;
        ] );
      ( "remote file service",
        [
          quick "end to end" test_remote_end_to_end;
          quick "conflict propagates" test_remote_conflict_propagates;
          quick "cache validation" test_remote_validate_cache;
          quick "failover" test_failover_to_second_host;
          quick "crash semantics" test_crash_loses_uncommitted_but_not_committed;
          quick "balanced connection" test_balanced_conn_spreads_and_stays_correct;
          quick "preferred hint is advisory" test_preferred_hint_is_advisory;
          quick "no hosts rejected" test_no_hosts_rejected;
        ] );
    ]
