(* The lint engine against known-violation fixtures: each rule family must
   fire exactly where expected, stay silent on the blessed shapes, and be
   suppressible through the allowlist. The proto/ fixtures exercise the
   interprocedural families (Y1/C1/X1) and the call-graph fixpoint. *)

let fixture_config =
  {
    Lint_types.rng_exempt = [ "lint_fixtures/d1_exempt.ml" ];
    protocol_dirs = [ "lint_fixtures" ];
    hashtbl_dirs = [ "lint_fixtures" ];
    hashtbl_strict_units =
      [
        "lint_fixtures/d1_strict_lru.ml";
        "lint_fixtures/d1_strict_trace";
        "lint_fixtures/d1_strict_cluster";
        "lint_fixtures/d1_strict_replica";
      ];
    e1_dirs = [ "lint_fixtures" ];
    e1_exempt = [];
    mli_dirs = [];
    yield_primitives =
      [ "Proc.delay"; "Proc.suspend"; "Ivar.read"; "Channel.send"; "Channel.recv"; "Rpc.call" ];
    yielding_fields = [ "o_sync" ];
    validators = [ "Store.validate" ];
    shared_state_fields = [ "counter" ];
    critical_sections =
      [
        "C1_commit.commit";
        "C1_memo.commit";
        "C1_ambient.commit_stamped";
        "C1_ok.commit";
        "C1_pipeline.validate";
        "C1_pipeline.merge";
        "C1_pipeline.publish";
        "C1_txn.decide";
        "C1_txn.resolve";
        "C1_txn.decide_blocking";
      ];
    moved_sources = [ "Store.fetch_remote" ];
    y1_dirs = [ "lint_fixtures" ];
    x1_dirs = [ "lint_fixtures" ];
  }

let run ?(config = fixture_config) ?(allowlist = []) dirs =
  Lint_engine.run ~config ~allowlist ~root:"." dirs

let key (f : Lint_types.finding) = (Lint_types.rule_id f.rule, f.file, f.symbol)

let keys (r : Lint_engine.result) = List.map key r.findings

let in_file file (r : Lint_engine.result) =
  List.filter (fun (_, f, _) -> f = file) (keys r)

let check_keys = Alcotest.(check (list (triple string string string)))

let scan = lazy (run [ "lint_fixtures" ])

let test_parses_everything () =
  let r = Lazy.force scan in
  Alcotest.(check (list (pair string string))) "no unparseable fixtures" [] r.broken;
  Alcotest.(check int) "all fixtures scanned" 27 r.files_scanned

let test_d1_ambient () =
  check_keys "one finding per ambient source, none in the exempt file"
    [
      ("D1", "lint_fixtures/d1_random.ml", "Unix.gettimeofday");
      ("D1", "lint_fixtures/d1_random.ml", "Random.int");
      ("D1", "lint_fixtures/d1_random.ml", "Sys.time");
    ]
    (in_file "lint_fixtures/d1_random.ml" (Lazy.force scan)
    @ in_file "lint_fixtures/d1_exempt.ml" (Lazy.force scan))

let test_d1_hashtbl () =
  check_keys "bare iter fires; sorted folds and wire-free units do not"
    [ ("D1", "lint_fixtures/d1_hashtbl.ml", "Hashtbl.iter") ]
    (in_file "lint_fixtures/d1_hashtbl.ml" (Lazy.force scan)
    @ in_file "lint_fixtures/d1_hashtbl_pure.ml" (Lazy.force scan))

let test_d1_strict_unit () =
  (* The strict-unit list applies D1 without the wire-mention gate; dropping
     the file from the list restores the default (silent) behaviour. *)
  check_keys "unordered iter fires in a strict unit with no wire mention"
    [ ("D1", "lint_fixtures/d1_strict_lru.ml", "Hashtbl.iter") ]
    (in_file "lint_fixtures/d1_strict_lru.ml" (Lazy.force scan));
  let config = { fixture_config with Lint_types.hashtbl_strict_units = [] } in
  check_keys "silent once delisted"
    []
    (in_file "lint_fixtures/d1_strict_lru.ml" (run ~config [ "lint_fixtures" ]))

let test_d1_strict_directory () =
  (* A directory prefix in the strict-unit list (the lib/trace shape)
     covers every file beneath it; sorted traversals stay silent. *)
  check_keys "unordered fold fires under a strict directory"
    [ ("D1", "lint_fixtures/d1_strict_trace/exporter.ml", "Hashtbl.fold") ]
    (in_file "lint_fixtures/d1_strict_trace/exporter.ml" (Lazy.force scan));
  check_keys "the cluster registry fixture is covered the same way"
    [ ("D1", "lint_fixtures/d1_strict_cluster/registry.ml", "Hashtbl.iter") ]
    (in_file "lint_fixtures/d1_strict_cluster/registry.ml" (Lazy.force scan));
  check_keys "the replica queue fixture is covered the same way"
    [ ("D1", "lint_fixtures/d1_strict_replica/queue.ml", "Hashtbl.iter") ]
    (in_file "lint_fixtures/d1_strict_replica/queue.ml" (Lazy.force scan));
  let config = { fixture_config with Lint_types.hashtbl_strict_units = [] } in
  check_keys "silent once the directory is delisted"
    []
    (in_file "lint_fixtures/d1_strict_trace/exporter.ml" (run ~config [ "lint_fixtures" ])
    @ in_file "lint_fixtures/d1_strict_cluster/registry.ml" (run ~config [ "lint_fixtures" ])
    @ in_file "lint_fixtures/d1_strict_replica/queue.ml" (run ~config [ "lint_fixtures" ]))

let test_p1 () =
  check_keys "each partial idiom fires once"
    [
      ("P1", "lint_fixtures/p1_partial.ml", "List.hd");
      ("P1", "lint_fixtures/p1_partial.ml", "Option.get");
      ("P1", "lint_fixtures/p1_partial.ml", "failwith");
      ("P1", "lint_fixtures/p1_partial.ml", "assert false");
    ]
    (in_file "lint_fixtures/p1_partial.ml" (Lazy.force scan))

let test_e1 () =
  check_keys "re-entry, callback blocking, orphan read; blessed shapes silent"
    [
      ("E1", "lint_fixtures/e1_nested.ml", "Engine.run");
      ("E1", "lint_fixtures/e1_nested.ml", "Proc.delay");
      ("E1", "lint_fixtures/e1_nested.ml", "Ivar.read");
    ]
    (in_file "lint_fixtures/e1_nested.ml" (Lazy.force scan)
    @ in_file "lint_fixtures/e1_ok.ml" (Lazy.force scan))

let test_e1_severity () =
  let r = Lazy.force scan in
  let sev symbol =
    match
      List.find_opt
        (fun (f : Lint_types.finding) ->
          f.file = "lint_fixtures/e1_nested.ml" && f.symbol = symbol)
        r.findings
    with
    | Some f -> Lint_types.severity_id f.severity
    | None -> "missing"
  in
  Alcotest.(check string) "re-entry is an error" "error" (sev "Engine.run");
  Alcotest.(check string) "orphan read is only a warning" "warning" (sev "Ivar.read")

let test_m1 () =
  let config =
    {
      fixture_config with
      Lint_types.mli_dirs = [ "lint_fixtures/m1" ];
      (* This run scans only m1/, so the proto critical sections are out
         of scope — clear them or they report as missing. *)
      critical_sections = [];
    }
  in
  let r = run ~config [ "lint_fixtures/m1" ] in
  check_keys "only the uncovered module fires"
    [ ("M1", "lint_fixtures/m1/orphan.ml", "missing-mli") ]
    (keys r)

(* {2 Interprocedural families} *)

let test_y1 () =
  check_keys "direct, summary-propagated, and dynamic-field yields all fire"
    [
      ("Y1", "lint_fixtures/proto/y1_race.ml", "Y1_race.bump/counter");
      ("Y1", "lint_fixtures/proto/y1_race.ml", "Y1_race.bump_via_helper/counter");
      ("Y1", "lint_fixtures/proto/y1_race.ml", "Y1_race.bump_dyn/counter");
    ]
    (in_file "lint_fixtures/proto/y1_race.ml" (Lazy.force scan));
  check_keys "revalidation, write-before-yield and Moved-branch writes are silent" []
    (in_file "lint_fixtures/proto/y1_ok.ml" (Lazy.force scan))

let test_c1 () =
  check_keys "transitive yield in a critical section fires at the section"
    [ ("C1", "lint_fixtures/proto/c1_commit.ml", "C1_commit.commit") ]
    (in_file "lint_fixtures/proto/c1_commit.ml" (Lazy.force scan));
  check_keys "ambient source fires C1 (and D1 at the call site)"
    [
      ("C1", "lint_fixtures/proto/c1_ambient.ml", "C1_ambient.commit_stamped");
      ("D1", "lint_fixtures/proto/c1_ambient.ml", "Unix.gettimeofday");
    ]
    (in_file "lint_fixtures/proto/c1_ambient.ml" (Lazy.force scan));
  check_keys "a clean section is silent" []
    (in_file "lint_fixtures/proto/c1_ok.ml" (Lazy.force scan));
  check_keys "memo fields are silent: no C1 in the section, no Y1 after the yield" []
    (in_file "lint_fixtures/proto/c1_memo.ml" (Lazy.force scan));
  check_keys "the clean validate/merge/publish pipeline stages are silent" []
    (in_file "lint_fixtures/proto/c1_pipeline.ml" (Lazy.force scan));
  check_keys "pure txn decide/resolve are silent; the parking variant fires"
    [ ("C1", "lint_fixtures/proto/c1_txn.ml", "C1_txn.decide_blocking") ]
    (in_file "lint_fixtures/proto/c1_txn.ml" (Lazy.force scan));
  (* The C1 yield report carries the shortest call chain to the primitive. *)
  let witness =
    List.find_opt
      (fun (f : Lint_types.finding) -> f.file = "lint_fixtures/proto/c1_commit.ml")
      (Lazy.force scan).findings
  in
  match witness with
  | Some f ->
      Alcotest.(check bool) "witness chain names the hop and the primitive" true
        (let contains sub =
           let n = String.length sub and m = String.length f.message in
           let rec at i = i + n <= m && (String.sub f.message i n = sub || at (i + 1)) in
           at 0
         in
         contains "Pause.brief" && contains "Proc.delay")
  | None -> Alcotest.fail "no C1 finding for c1_commit.ml"

let test_c1_missing_section () =
  let config = { fixture_config with Lint_types.critical_sections = [ "Nowhere.commit" ] } in
  let r = run ~config [ "lint_fixtures" ] in
  Alcotest.(check bool) "unknown critical section reported against <config>" true
    (List.mem ("C1", "<config>", "Nowhere.commit") (keys r));
  match
    List.find_opt (fun (f : Lint_types.finding) -> f.file = "<config>") r.findings
  with
  | Some f -> Alcotest.(check string) "as a warning" "warning" (Lint_types.severity_id f.severity)
  | None -> Alcotest.fail "missing-section finding not found"

let test_x1 () =
  check_keys "direct drop, fixpoint-propagated drop, and let _ drop all fire"
    [
      ("X1", "lint_fixtures/proto/x1_drop.ml", "Store.fetch_remote");
      ("X1", "lint_fixtures/proto/x1_drop.ml", "X1_drop.relay");
      ("X1", "lint_fixtures/proto/x1_drop.ml", "Store.fetch_remote");
    ]
    (in_file "lint_fixtures/proto/x1_drop.ml" (Lazy.force scan));
  check_keys "handling, propagating, and non-Moved drops are silent" []
    (in_file "lint_fixtures/proto/x1_ok.ml" (Lazy.force scan))

(* {2 Call graph} *)

let proto_parsed =
  lazy
    (let files = Lint_engine.ml_files ~root:"." [ "lint_fixtures" ] in
     let parsed, broken = Lint_engine.parse_all ~root:"." files in
     Alcotest.(check (list (pair string string))) "fixtures parse" [] broken;
     parsed)

let test_callgraph () =
  let g = Lint_callgraph.build fixture_config (Lazy.force proto_parsed) in
  let flag key f =
    match Lint_callgraph.summary g key with
    | Some s -> f s
    | None -> Alcotest.failf "no summary for %s" key
  in
  Alcotest.(check bool) "module alias resolves to the real module" true
    (flag "Graph_alias.nap" (fun s -> s.Lint_callgraph.yields));
  Alcotest.(check bool) "direct arm of the mutual recursion yields" true
    (flag "Graph_mutual.ping" (fun s -> s.Lint_callgraph.yields));
  Alcotest.(check bool) "mutual recursion reaches the fixpoint" true
    (flag "Graph_mutual.pong" (fun s -> s.Lint_callgraph.yields));
  Alcotest.(check bool) "Moved-capability propagates through relay" true
    (flag "X1_drop.relay" (fun s -> s.Lint_callgraph.moved));
  Alcotest.(check bool) "a Moved handler stops propagation" false
    (flag "X1_ok.handled" (fun s -> s.Lint_callgraph.moved));
  Alcotest.(check bool) "returning the result keeps the capability" true
    (flag "X1_ok.propagated" (fun s -> s.Lint_callgraph.moved));
  Alcotest.(check bool) "validator calls classify as validating" true
    (flag "C1_ok.commit" (fun s -> s.Lint_callgraph.validates));
  Alcotest.(check bool) "the clean section does not yield" false
    (flag "C1_ok.commit" (fun s -> s.Lint_callgraph.yields));
  match
    Lint_callgraph.witness_chain g ~key:"C1_commit.commit"
      ~has:(fun d -> d.Lint_callgraph.direct_yield)
  with
  | Some chain ->
      Alcotest.(check (list string))
        "shortest chain from section to primitive"
        [ "C1_commit.commit"; "Pause.brief"; "Proc.delay" ]
        chain
  | None -> Alcotest.fail "no witness chain for C1_commit.commit"

(* Finding order must be a pure function of the file *set*: permuting the
   parse order must not reorder or change the interprocedural report. *)
let prop_shuffle_stable =
  let shuffle seed xs =
    let arr = Array.of_list xs in
    let state = ref (1 + (seed land 0x3FFFFFFF)) in
    let next m =
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      !state mod m
    in
    for i = Array.length arr - 1 downto 1 do
      let j = next (i + 1) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done;
    Array.to_list arr
  in
  QCheck2.Test.make ~name:"interprocedural findings stable under file shuffle" ~count:50
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let parsed = Lazy.force proto_parsed in
      let baseline = Lint_proto.analyse fixture_config parsed in
      Lint_proto.analyse fixture_config (shuffle seed parsed) = baseline)

(* {2 Allowlist} *)

let test_allowlist_suppresses () =
  let allowlist =
    Lint_allow.of_string
      "# comment lines and blanks are ignored\n\n\
       P1 lint_fixtures/p1_partial.ml failwith  # fixture exercises the partial idiom\n\
       D1 lint_fixtures/d1_hashtbl.ml *   # wildcard symbol\n"
  in
  let r = run ~allowlist [ "lint_fixtures" ] in
  Alcotest.(check bool) "failwith suppressed" false
    (List.mem ("P1", "lint_fixtures/p1_partial.ml", "failwith") (keys r));
  Alcotest.(check bool) "List.hd still reported" true
    (List.mem ("P1", "lint_fixtures/p1_partial.ml", "List.hd") (keys r));
  check_keys "wildcard clears the whole file" []
    (in_file "lint_fixtures/d1_hashtbl.ml" r);
  Alcotest.(check int) "both entries recorded as suppressions" 2
    (List.length r.suppressed);
  Alcotest.(check int) "no unused entries" 0 (List.length (Lint_allow.unused allowlist))

let test_allowlist_y1 () =
  let allowlist =
    Lint_allow.of_string
      "Y1 lint_fixtures/proto/y1_race.ml Y1_race.bump/counter  # seeded fixture\n"
  in
  let r = run ~allowlist [ "lint_fixtures" ] in
  check_keys "only the allowlisted Y1 site is suppressed"
    [
      ("Y1", "lint_fixtures/proto/y1_race.ml", "Y1_race.bump_via_helper/counter");
      ("Y1", "lint_fixtures/proto/y1_race.ml", "Y1_race.bump_dyn/counter");
    ]
    (in_file "lint_fixtures/proto/y1_race.ml" r)

let test_allowlist_unused_and_errors () =
  let allowlist = Lint_allow.of_string "E1 lint_fixtures/never.ml Ivar.read  # obsolete\n" in
  let r = run ~allowlist [ "lint_fixtures" ] in
  Alcotest.(check int) "entry that matches nothing is unused" 1
    (List.length (Lint_allow.unused allowlist));
  Alcotest.(check bool) "stale entry surfaces as a finding" true
    (List.mem ("E1", "lint_fixtures/never.ml", "stale-allow:Ivar.read") (keys r));
  Alcotest.check_raises "malformed line rejected"
    (Lint_allow.Parse_error
       "line 1: want 'RULE file symbol  # justification', got \"only-two fields\"")
    (fun () -> ignore (Lint_allow.of_string "only-two fields\n"));
  Alcotest.check_raises "unknown rule rejected"
    (Lint_allow.Parse_error "line 1: unknown rule \"Z9\" (want D1|P1|E1|M1|Y1|C1|X1)") (fun () ->
      ignore (Lint_allow.of_string "Z9 some/file.ml sym\n"));
  Alcotest.check_raises "entry without justification rejected"
    (Lint_allow.Parse_error
       "line 1: entry has no justification — append '# why this exception is sound'")
    (fun () -> ignore (Lint_allow.of_string "P1 some/file.ml failwith\n"))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "fixtures parse" `Quick test_parses_everything;
          Alcotest.test_case "D1 ambient sources" `Quick test_d1_ambient;
          Alcotest.test_case "D1 unordered hashtbl" `Quick test_d1_hashtbl;
          Alcotest.test_case "D1 strict units" `Quick test_d1_strict_unit;
          Alcotest.test_case "D1 strict directories" `Quick test_d1_strict_directory;
          Alcotest.test_case "P1 partial idioms" `Quick test_p1;
          Alcotest.test_case "E1 effect safety" `Quick test_e1;
          Alcotest.test_case "E1 severities" `Quick test_e1_severity;
          Alcotest.test_case "M1 interface coverage" `Quick test_m1;
        ] );
      ( "interprocedural",
        [
          Alcotest.test_case "Y1 yield atomicity" `Quick test_y1;
          Alcotest.test_case "C1 commit phase" `Quick test_c1;
          Alcotest.test_case "C1 missing section" `Quick test_c1_missing_section;
          Alcotest.test_case "X1 Moved exhaustiveness" `Quick test_x1;
          Alcotest.test_case "call graph fixpoint" `Quick test_callgraph;
          QCheck_alcotest.to_alcotest prop_shuffle_stable;
        ] );
      ( "allowlist",
        [
          Alcotest.test_case "suppression" `Quick test_allowlist_suppresses;
          Alcotest.test_case "Y1 suppression is per-symbol" `Quick test_allowlist_y1;
          Alcotest.test_case "unused & malformed" `Quick test_allowlist_unused_and_errors;
        ] );
    ]
