(* The lint engine against known-violation fixtures: each rule family must
   fire exactly where expected, stay silent on the blessed shapes, and be
   suppressible through the allowlist. *)

let fixture_config =
  {
    Lint_types.rng_exempt = [ "lint_fixtures/d1_exempt.ml" ];
    protocol_dirs = [ "lint_fixtures" ];
    hashtbl_dirs = [ "lint_fixtures" ];
    hashtbl_strict_units =
      [
        "lint_fixtures/d1_strict_lru.ml";
        "lint_fixtures/d1_strict_trace";
        "lint_fixtures/d1_strict_cluster";
      ];
    e1_dirs = [ "lint_fixtures" ];
    e1_exempt = [];
    mli_dirs = [];
  }

let run ?(config = fixture_config) ?(allowlist = []) dirs =
  Lint_engine.run ~config ~allowlist ~root:"." dirs

let key (f : Lint_types.finding) = (Lint_types.rule_id f.rule, f.file, f.symbol)

let keys (r : Lint_engine.result) = List.map key r.findings

let in_file file (r : Lint_engine.result) =
  List.filter (fun (_, f, _) -> f = file) (keys r)

let check_keys = Alcotest.(check (list (triple string string string)))

let scan = lazy (run [ "lint_fixtures" ])

let test_parses_everything () =
  let r = Lazy.force scan in
  Alcotest.(check (list (pair string string))) "no unparseable fixtures" [] r.broken;
  Alcotest.(check int) "all fixtures scanned" 12 r.files_scanned

let test_d1_ambient () =
  check_keys "one finding per ambient source, none in the exempt file"
    [
      ("D1", "lint_fixtures/d1_random.ml", "Unix.gettimeofday");
      ("D1", "lint_fixtures/d1_random.ml", "Random.int");
      ("D1", "lint_fixtures/d1_random.ml", "Sys.time");
    ]
    (in_file "lint_fixtures/d1_random.ml" (Lazy.force scan)
    @ in_file "lint_fixtures/d1_exempt.ml" (Lazy.force scan))

let test_d1_hashtbl () =
  check_keys "bare iter fires; sorted folds and wire-free units do not"
    [ ("D1", "lint_fixtures/d1_hashtbl.ml", "Hashtbl.iter") ]
    (in_file "lint_fixtures/d1_hashtbl.ml" (Lazy.force scan)
    @ in_file "lint_fixtures/d1_hashtbl_pure.ml" (Lazy.force scan))

let test_d1_strict_unit () =
  (* The strict-unit list applies D1 without the wire-mention gate; dropping
     the file from the list restores the default (silent) behaviour. *)
  check_keys "unordered iter fires in a strict unit with no wire mention"
    [ ("D1", "lint_fixtures/d1_strict_lru.ml", "Hashtbl.iter") ]
    (in_file "lint_fixtures/d1_strict_lru.ml" (Lazy.force scan));
  let config = { fixture_config with Lint_types.hashtbl_strict_units = [] } in
  check_keys "silent once delisted"
    []
    (in_file "lint_fixtures/d1_strict_lru.ml" (run ~config [ "lint_fixtures" ]))

let test_d1_strict_directory () =
  (* A directory prefix in the strict-unit list (the lib/trace shape)
     covers every file beneath it; sorted traversals stay silent. *)
  check_keys "unordered fold fires under a strict directory"
    [ ("D1", "lint_fixtures/d1_strict_trace/exporter.ml", "Hashtbl.fold") ]
    (in_file "lint_fixtures/d1_strict_trace/exporter.ml" (Lazy.force scan));
  check_keys "the cluster registry fixture is covered the same way"
    [ ("D1", "lint_fixtures/d1_strict_cluster/registry.ml", "Hashtbl.iter") ]
    (in_file "lint_fixtures/d1_strict_cluster/registry.ml" (Lazy.force scan));
  let config = { fixture_config with Lint_types.hashtbl_strict_units = [] } in
  check_keys "silent once the directory is delisted"
    []
    (in_file "lint_fixtures/d1_strict_trace/exporter.ml" (run ~config [ "lint_fixtures" ])
    @ in_file "lint_fixtures/d1_strict_cluster/registry.ml" (run ~config [ "lint_fixtures" ]))

let test_p1 () =
  check_keys "each partial idiom fires once"
    [
      ("P1", "lint_fixtures/p1_partial.ml", "List.hd");
      ("P1", "lint_fixtures/p1_partial.ml", "Option.get");
      ("P1", "lint_fixtures/p1_partial.ml", "failwith");
      ("P1", "lint_fixtures/p1_partial.ml", "assert false");
    ]
    (in_file "lint_fixtures/p1_partial.ml" (Lazy.force scan))

let test_e1 () =
  check_keys "re-entry, callback blocking, orphan read; blessed shapes silent"
    [
      ("E1", "lint_fixtures/e1_nested.ml", "Engine.run");
      ("E1", "lint_fixtures/e1_nested.ml", "Proc.delay");
      ("E1", "lint_fixtures/e1_nested.ml", "Ivar.read");
    ]
    (in_file "lint_fixtures/e1_nested.ml" (Lazy.force scan)
    @ in_file "lint_fixtures/e1_ok.ml" (Lazy.force scan))

let test_e1_severity () =
  let r = Lazy.force scan in
  let sev symbol =
    match
      List.find_opt
        (fun (f : Lint_types.finding) ->
          f.file = "lint_fixtures/e1_nested.ml" && f.symbol = symbol)
        r.findings
    with
    | Some f -> Lint_types.severity_id f.severity
    | None -> "missing"
  in
  Alcotest.(check string) "re-entry is an error" "error" (sev "Engine.run");
  Alcotest.(check string) "orphan read is only a warning" "warning" (sev "Ivar.read")

let test_m1 () =
  let config = { fixture_config with Lint_types.mli_dirs = [ "lint_fixtures/m1" ] } in
  let r = run ~config [ "lint_fixtures/m1" ] in
  check_keys "only the uncovered module fires"
    [ ("M1", "lint_fixtures/m1/orphan.ml", "missing-mli") ]
    (keys r)

let test_allowlist_suppresses () =
  let allowlist =
    Lint_allow.of_string
      "# comment lines and blanks are ignored\n\n\
       P1 lint_fixtures/p1_partial.ml failwith\n\
       D1 lint_fixtures/d1_hashtbl.ml *   # wildcard symbol\n"
  in
  let r = run ~allowlist [ "lint_fixtures" ] in
  Alcotest.(check bool) "failwith suppressed" false
    (List.mem ("P1", "lint_fixtures/p1_partial.ml", "failwith") (keys r));
  Alcotest.(check bool) "List.hd still reported" true
    (List.mem ("P1", "lint_fixtures/p1_partial.ml", "List.hd") (keys r));
  check_keys "wildcard clears the whole file" []
    (in_file "lint_fixtures/d1_hashtbl.ml" r);
  Alcotest.(check int) "both entries recorded as suppressions" 2
    (List.length r.suppressed);
  Alcotest.(check int) "no unused entries" 0 (List.length (Lint_allow.unused allowlist))

let test_allowlist_unused_and_errors () =
  let allowlist = Lint_allow.of_string "E1 lint_fixtures/never.ml Ivar.read\n" in
  let (_ : Lint_engine.result) = run ~allowlist [ "lint_fixtures" ] in
  Alcotest.(check int) "entry that matches nothing is unused" 1
    (List.length (Lint_allow.unused allowlist));
  Alcotest.check_raises "malformed line rejected"
    (Lint_allow.Parse_error "line 1: want 'RULE file symbol', got \"only-two fields\"")
    (fun () -> ignore (Lint_allow.of_string "only-two fields\n"));
  Alcotest.check_raises "unknown rule rejected"
    (Lint_allow.Parse_error "line 1: unknown rule \"Z9\" (want D1|P1|E1|M1)") (fun () ->
      ignore (Lint_allow.of_string "Z9 some/file.ml sym\n"))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "fixtures parse" `Quick test_parses_everything;
          Alcotest.test_case "D1 ambient sources" `Quick test_d1_ambient;
          Alcotest.test_case "D1 unordered hashtbl" `Quick test_d1_hashtbl;
          Alcotest.test_case "D1 strict units" `Quick test_d1_strict_unit;
          Alcotest.test_case "D1 strict directories" `Quick test_d1_strict_directory;
          Alcotest.test_case "P1 partial idioms" `Quick test_p1;
          Alcotest.test_case "E1 effect safety" `Quick test_e1;
          Alcotest.test_case "E1 severities" `Quick test_e1_severity;
          Alcotest.test_case "M1 interface coverage" `Quick test_m1;
        ] );
      ( "allowlist",
        [
          Alcotest.test_case "suppression" `Quick test_allowlist_suppresses;
          Alcotest.test_case "unused & malformed" `Quick test_allowlist_unused_and_errors;
        ] );
    ]
