(* Fixture: the three E1 effect-safety hazards.
   - re-entering the engine from inside a coroutine body;
   - blocking inside an [Engine.at] callback (callbacks are not processes);
   - an ivar read in a unit with no fulfiller anywhere. *)

let reenter engine = ignore (Proc.spawn engine (fun () -> Engine.run engine))

let block_in_callback engine = Engine.at engine 1.0 (fun () -> Proc.delay 5.0)

let orphan_wait iv = Ivar.read iv
