(* Fixture: a determinism-critical unit (listed in hashtbl_strict_units).
   Unordered traversal fires even though nothing here mentions
   Wire/Serialise/Engine; sorted traversals stay silent as usual. *)

let bad t = Hashtbl.iter (fun _ _ -> ()) t

let good t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])
