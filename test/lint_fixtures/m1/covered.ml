(* Fixture: covered by covered.mli — rule M1 stays silent. *)

let covered = 1
