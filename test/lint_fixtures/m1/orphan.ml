(* Fixture: an implementation with no sibling .mli — rule M1 fires. *)

let uncovered = 1
