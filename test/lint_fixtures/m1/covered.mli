val covered : int
