(* Fixture: the lib/replica shape — a replica's applied state must be a
   pure function of the shipped batch order, so any unordered Hashtbl
   traversal near the apply path is a determinism hazard and the whole
   directory sits in hashtbl_strict_units. *)

let watermarks t = Hashtbl.iter (fun _ seq -> ignore seq) t

let fine t = Hashtbl.find_opt t 0
