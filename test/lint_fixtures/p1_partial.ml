(* Fixture: one of each partial idiom rule P1 bans in protocol paths. *)

let first l = List.hd l

let forced o = Option.get o

let boom () = failwith "protocol error as a string"

let total = function Some x -> x | None -> assert false
