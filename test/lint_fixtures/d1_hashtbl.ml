(* Fixture: unordered hashtable traversal in a unit that mentions the wire
   format. Only the bare [Hashtbl.iter] is a violation; traversals whose
   result is immediately sorted are deterministic and must not fire. *)

module W = Wire

let bad t = Hashtbl.iter (fun _ _ -> ()) t

let good_direct t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let good_piped t = Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort compare

let good_applied t = List.sort compare @@ Hashtbl.fold (fun k _ acc -> k :: acc) t []
