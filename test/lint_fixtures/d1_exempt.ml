(* Fixture: same banned calls as d1_random.ml, but this file is listed in
   [config.rng_exempt], so D1 must stay silent. *)

let seed () = Random.bits ()
