(* Fixture: a whole directory listed in hashtbl_strict_units (the shape
   used for lib/trace, whose event streams must be byte-stable). The
   directory-prefix scope puts every file under it in strict mode. *)

let bad_order t = Hashtbl.fold (fun k _ acc -> k :: acc) t []

let fine t = List.sort compare (bad_order t)
