(* Fixture: unordered traversal is fine in a unit that never touches
   Wire/Serialise/Engine — nothing here can reach the wire format. *)

let count t =
  let n = ref 0 in
  Hashtbl.iter (fun _ _ -> incr n) t;
  !n
