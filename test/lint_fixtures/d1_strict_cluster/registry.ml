(* Fixture: the lib/cluster shape — routing and load tables are Hashtbls,
   and the rebalancer's migration plan must not depend on their iteration
   order, so the whole directory sits in hashtbl_strict_units. *)

let plan t = Hashtbl.iter (fun _ cap -> ignore cap) t

let fine t = Hashtbl.find_opt t 42
