(* Call-graph fixture: a module alias must resolve to the real module, so
   [P.brief] meets [Pause.brief] in the same graph node and [nap] is
   classified as yielding. *)
module P = Pause

let nap () = P.brief ()
