(* C1 over the cross-shard decision logic: the pure record classifier and
   marker resolver are silent; a variant that parks while holding the
   decision (decide_blocking -> Pause.brief -> Proc.delay) fires. *)

type decision = Pending | Committed | Aborted

let decide record_data =
  match record_data with
  | "txn:committed" -> Committed
  | "txn:aborted" -> Aborted
  | _ -> Pending

let resolve marker = function
  | Committed -> `Forward marker
  | Aborted -> `Back marker
  | Pending -> `Wait

let decide_blocking record_data =
  Pause.brief ();
  decide record_data
