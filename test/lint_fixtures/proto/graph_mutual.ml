(* Call-graph fixture: mutual recursion. [ping] yields directly; [pong]
   only through the cycle — the fixpoint must converge and classify both
   as yielding. *)
let rec ping n =
  if n > 0 then begin
    Proc.delay 1;
    pong (n - 1)
  end

and pong n = if n > 0 then ping (n - 1)
