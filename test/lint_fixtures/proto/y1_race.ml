(* Y1 positives: shared-state read, park in the scheduler, write from the
   stale frame. One direct yield, one through a callee summary. *)
type t = { mutable counter : int }

let bump t =
  let seen = t.counter in
  Proc.delay 1;
  t.counter <- seen + 1

let bump_via_helper t =
  let seen = t.counter in
  Pause.brief ();
  t.counter <- seen + 1

(* Applying a configured function-valued field is a dynamic call the
   lexical graph cannot resolve; it is assumed to yield. *)
let bump_dyn t ops =
  let seen = t.counter in
  ops.o_sync ();
  t.counter <- seen + 1
