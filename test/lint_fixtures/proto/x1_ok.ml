(* X1 negatives: handling, propagating, and dropping a non-Moved result. *)

let handled c =
  match Store.fetch_remote c with
  | Ok v -> v
  | Error (Errors.Moved _target) -> 0
  | Error _ -> -1

(* Returning the result to the caller is propagation, not a drop. *)
let propagated c = X1_drop.relay c

(* [fetch_local] is not a Moved source; dropping it is fine. *)
let drop_harmless c = ignore (Store.fetch_local c)
