(* Encode-once memo fields are private caches, not shared protocol
   state: filling one is a pure function of the immutable value it hangs
   off, so it must trip neither C1 (the fill inside a critical section is
   no yield and no ambient source) nor Y1 (a post-yield fill needs no
   revalidation — there is no stale frame to act on). *)
type page = { data : int; mutable enc : int option }

let encode p =
  match p.enc with
  | Some img -> img
  | None ->
      let img = p.data * 2 in
      p.enc <- Some img;
      img

(* Listed as a critical section in the fixture config: memoizing inside
   the commit region is allowed. *)
let commit st p = match Store.validate (encode p) with true -> st := p.data | false -> ()

(* Yield, then fill the memo: not a tracked shared-state write. *)
let encode_after_pause p =
  Proc.delay 1;
  encode p
