(* C1 positive: the critical section reads the wall clock. *)
let commit_stamped st v = st := (v, Unix.gettimeofday ())
