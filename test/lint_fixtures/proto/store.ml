(* The remote surface the proto fixtures talk to. [Store.validate] is a
   configured validator and [Store.fetch_remote] a configured Moved source
   in the fixture config; [fetch_local] is neither. *)
let validate _v = true

let fetch_remote _c = Ok 0

let fetch_local _c = Ok 1
