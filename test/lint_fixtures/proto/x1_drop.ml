(* X1 positives: Moved-capable results silently dropped. *)

(* No [Moved] handler here, so the capability propagates to callers. *)
let relay c = Store.fetch_remote c

let drop_direct c = ignore (Store.fetch_remote c)

(* The fixpoint carries Moved-capability through [relay]. *)
let drop_wrapped c = ignore (relay c)

let drop_binding c =
  let _ = Store.fetch_remote c in
  ()
