(* C1 positive: the configured critical section reaches a yield two call
   hops away (commit -> Pause.brief -> Proc.delay). *)
let publish st v = st := v

let commit st v =
  match Store.validate v with
  | true ->
      Pause.brief ();
      publish st v
  | false -> ()
