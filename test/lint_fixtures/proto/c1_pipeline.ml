(* C1 negative: the three commit-pipeline stages, each a configured
   critical section, with no yield and no ambient source transitively. *)
let validate st v = match Store.lock st v with true -> Some v | false -> None

let merge st v =
  match Store.test_and_merge st v with true -> Ok v | false -> Error "conflict"

let publish st vs = List.iter (fun v -> st := v :: !st) vs
