(* Y1 negatives: every blessed shape around a shared-state write. *)
type t = { mutable counter : int }

(* Revalidated between the yield and the write. *)
let validated t =
  let seen = t.counter in
  Proc.delay 1;
  match Store.validate seen with
  | true -> t.counter <- seen + 1
  | false -> ()

(* The write precedes the yield: nothing stale flows into it. *)
let write_then_yield t =
  t.counter <- t.counter + 1;
  Proc.delay 1

(* A write inside a [Moved] match case is acting on a versioned statement
   about current residency, not on the pre-yield frame. *)
let moved_branch t r =
  let seen = t.counter in
  Proc.delay 1;
  match r with
  | Error (Errors.Moved target) -> t.counter <- seen + target
  | Ok _ -> ()
  | Error _ -> ()
