(* C1 negative: validate and publish with no yield and no ambient source
   anywhere in the transitive closure. *)
let commit st v = match Store.validate v with true -> st := v | false -> ()
