(* Yield helper: one hop between a caller and the scheduler primitive, so
   transitive yield detection has something to chain through. *)
let brief () = Proc.delay 1
