(* Fixture: the blessed shapes E1 must accept — blocking reads inside a
   process with a fulfiller in the same unit, engine run at top level,
   and non-blocking [Ivar.try_fill] from an [Engine.at] callback. *)

let request engine rpc =
  let reply = Ivar.create () in
  Engine.at engine 1.0 (fun () -> ignore (Ivar.try_fill reply rpc));
  Ivar.read reply

let drive engine =
  ignore (Proc.spawn engine (fun () -> Proc.delay 1.0));
  Engine.run engine

let fulfil iv v = Ivar.fill iv v
