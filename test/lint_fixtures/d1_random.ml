(* Fixture: every ambient time/randomness source rule D1 must catch.
   Parse-only — never compiled. *)

let wall_clock () = Unix.gettimeofday ()

let ambient_random () = Random.int 10

let cpu_clock () = Sys.time ()
