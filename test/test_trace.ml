(* afs_trace: sinks, structural queries, catapult export/import, and the
   trace-derived oracles — F5's "uncontended commit is one test-and-set"
   and C2's "AFS recovery does no rollback/replay work" — that aggregate
   counters cannot express. *)

open Afs_core
module Trace = Afs_trace.Trace
module Query = Afs_trace.Query
module Catapult = Afs_trace.Catapult

let quick = Helpers.quick
let bytes = Helpers.bytes
let ok = Helpers.ok
let path = Helpers.path

let clock_ring ?capacity () =
  let now = ref 0.0 in
  (now, Trace.ring ?capacity ~now:(fun () -> !now) ())

(* {2 Sinks} *)

let test_null_sink () =
  Alcotest.(check bool) "disabled" false (Trace.enabled Trace.null);
  Trace.point Trace.null (Trace.Rollback { txns = 3 });
  let id = Trace.open_span Trace.null ~kind:"x" () in
  Alcotest.(check int) "disabled span id is 0" 0 id;
  Trace.close_span Trace.null id;
  Alcotest.(check int) "ran the thunk" 41 (Trace.span Trace.null ~kind:"x" (fun () -> 41));
  Alcotest.(check int) "no events" 0 (List.length (Trace.events Trace.null));
  Alcotest.(check int) "nothing emitted" 0 (Trace.events_emitted Trace.null)

let test_ring_sink_records_in_order () =
  let now, tr = clock_ring () in
  Alcotest.(check bool) "enabled" true (Trace.enabled tr);
  let s = Trace.open_span tr ~kind:"commit" ~label:"v1" () in
  now := 5.0;
  Trace.point tr (Trace.Test_and_set { block = 7; won = true });
  now := 9.0;
  Trace.close_span tr s;
  match Trace.events tr with
  | [ Trace.Span_open o; Trace.Point p; Trace.Span_close c ] ->
      Alcotest.(check bool) "seqs increase" true (o.seq < p.seq && p.seq < c.seq);
      Alcotest.(check (float 0.0)) "open at 0" 0.0 o.at_ms;
      Alcotest.(check (float 0.0)) "point at 5" 5.0 p.at_ms;
      Alcotest.(check (float 0.0)) "close at 9" 9.0 c.at_ms;
      Alcotest.(check string) "point kind" "commit.test_and_set"
        (Trace.kind_of_payload p.payload)
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

let test_ring_sink_keeps_newest_window () =
  let _, tr = clock_ring ~capacity:4 () in
  for i = 1 to 10 do
    Trace.point tr (Trace.Rollback { txns = i })
  done;
  let evs = Trace.events tr in
  Alcotest.(check int) "bounded" 4 (List.length evs);
  Alcotest.(check int) "dropped" 6 (Trace.dropped tr);
  Alcotest.(check int) "emitted counts everything" 10 (Trace.events_emitted tr);
  match evs with
  | Trace.Point { payload = Trace.Rollback { txns }; _ } :: _ ->
      Alcotest.(check int) "oldest survivor is event 7" 7 txns
  | _ -> Alcotest.fail "expected rollback points"

let test_stream_sink_delivers_each_event () =
  let got = ref [] in
  let tr = Trace.stream ~now:(fun () -> 1.0) (fun e -> got := e :: !got) in
  Trace.span tr ~kind:"outer" (fun () -> Trace.point tr (Trace.Gc_phase { phase = "mark"; count = 3 }));
  Alcotest.(check int) "three callbacks" 3 (List.length !got);
  Alcotest.(check int) "stream buffers nothing" 0 (List.length (Trace.events tr))

(* {2 Queries} *)

let test_query_span_nesting_and_self_time () =
  let now, tr = clock_ring () in
  Trace.span tr ~kind:"outer" (fun () ->
      now := 2.0;
      Trace.span tr ~kind:"inner" (fun () -> now := 6.0);
      now := 10.0);
  let evs = Trace.events tr in
  let outer = List.hd (Query.spans_of_kind evs "outer") in
  let inner = List.hd (Query.spans_of_kind evs "inner") in
  Alcotest.(check int) "outer is a root" 0 outer.Query.parent;
  Alcotest.(check int) "inner nests under outer" outer.Query.id inner.Query.parent;
  Alcotest.(check (float 1e-9)) "inner duration" 4.0 (Query.duration inner);
  Alcotest.(check (float 1e-9)) "outer duration" 10.0 (Query.duration outer);
  Alcotest.(check (float 1e-9)) "outer self time" 6.0 (Query.self_ms evs outer);
  Alcotest.(check (float 1e-9)) "critical path" 10.0 (Query.critical_path_ms evs outer)

let test_query_unclosed_and_orphan_spans () =
  let _, tr = clock_ring () in
  let a = Trace.open_span tr ~kind:"a" () in
  Trace.close_span tr (a + 99) (* Orphan close: no matching open. *);
  let spans = Query.spans (Trace.events tr) in
  match spans with
  | [ s ] ->
      Alcotest.(check int) "only the real span" a s.Query.id;
      Alcotest.(check bool) "never closed" true (s.Query.stop_ms = None);
      Alcotest.(check (float 0.0)) "unclosed duration is 0" 0.0 (Query.duration s)
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_query_counts_and_slowest () =
  let now, tr = clock_ring () in
  let s1 = Trace.open_span tr ~kind:"txn" ~label:"t1" () in
  now := 3.0;
  Trace.close_span tr s1;
  let s2 = Trace.open_span tr ~kind:"txn" ~label:"t2" () in
  Trace.point tr (Trace.Block_lock { block = 1; won = true });
  Trace.point tr (Trace.Block_lock { block = 1; won = false });
  now := 12.0;
  Trace.close_span tr s2;
  let evs = Trace.events tr in
  Alcotest.(check int) "point count" 2 (Query.count evs "block.lock");
  Alcotest.(check (list (pair string int)))
    "per-kind totals" [ ("block.lock", 2); ("txn", 2) ] (Query.kind_counts evs);
  match Query.slowest evs 1 with
  | [ s ] -> Alcotest.(check string) "slowest is t2" "t2" s.Query.label
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

(* {2 Catapult export/import} *)

let sample_trace () =
  let now, tr = clock_ring () in
  let s = Trace.open_span tr ~kind:"commit" ~label:"file \"a\"" () in
  now := 1.5;
  Trace.point tr (Trace.Disk_read { media = "magnetic"; block = 9; bytes = 512; cost_ms = 22.5 });
  Trace.point tr (Trace.Cache_drop { file_obj = 3; path = "/0/1" });
  Trace.point tr (Trace.Block_lock { block = 9; won = false });
  now := 4.25;
  Trace.close_span tr s;
  Trace.point tr (Trace.Gc_phase { phase = "sweep"; count = 17 });
  Trace.events tr

let span_repr s =
  ( (s.Query.id, s.Query.parent),
    (s.Query.kind, s.Query.label),
    (s.Query.start_ms, s.Query.stop_ms) )

let test_catapult_roundtrip () =
  let evs = sample_trace () in
  let doc = Catapult.to_string evs in
  match Catapult.parse doc with
  | Error msg -> Alcotest.fail msg
  | Ok evs' ->
      Alcotest.(check int) "event count" (List.length evs) (List.length evs');
      Alcotest.(check (list (pair string int)))
        "kinds survive" (Query.kind_counts evs) (Query.kind_counts evs');
      Alcotest.(check bool) "spans round-trip exactly" true
        (List.map span_repr (Query.spans evs) = List.map span_repr (Query.spans evs'));
      (* Re-rendering the import reproduces the document byte for byte:
         the exporter/importer pair is a fixpoint. *)
      Alcotest.(check string) "render . parse fixpoint" doc (Catapult.to_string evs')

let test_catapult_writer_matches_to_string () =
  let evs = sample_trace () in
  let buf = Buffer.create 256 in
  let w = Catapult.writer (Buffer.add_string buf) in
  List.iter (Catapult.emit w) evs;
  Catapult.finish w;
  Alcotest.(check string) "incremental = batch" (Catapult.to_string evs) (Buffer.contents buf)

let test_catapult_rejects_garbage () =
  (match Catapult.parse "{\"not\": \"an array\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error on non-array");
  match Catapult.parse "[{\"ph\":\"B\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error on truncated document"

(* {2 F5 oracle: the uncontended fast path} *)

let test_f5_fastpath_is_one_test_and_set () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 3 in
  let _, tr = clock_ring () in
  Server.set_trace srv tr;
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (path [ 0 ]) (bytes "x"));
  ok (Server.commit srv v);
  let evs = Trace.events tr in
  Alcotest.(check int) "exactly one test-and-set" 1 (Query.count evs "commit.test_and_set");
  (match Query.points_of_kind evs "commit.test_and_set" with
  | [ Trace.Test_and_set { won; _ } ] -> Alcotest.(check bool) "and it won" true won
  | _ -> Alcotest.fail "unexpected test-and-set payloads");
  (match Query.points_of_kind evs "commit.outcome" with
  | [ Trace.Commit_outcome { outcome; _ } ] ->
      Alcotest.(check string) "fast path outcome" "fastpath" outcome
  | _ -> Alcotest.fail "expected one outcome");
  Alcotest.(check int) "no serialisation phases ran" 0 (Query.count evs "commit.phase");
  Alcotest.(check int) "one commit span" 1 (List.length (Query.spans_of_kind evs "commit"))

let test_retry_chain_visits_increasing_versions () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  let va = ok (Server.create_version srv f) in
  ok (Server.write_page srv va (path [ 0 ]) (bytes "A"));
  (* Two disjoint commits slip in under va, so its commit must chase the
     chain: base (lost), successor (lost), successor's successor (won). *)
  let vb = ok (Server.create_version srv f) in
  ok (Server.write_page srv vb (path [ 1 ]) (bytes "B"));
  ok (Server.commit srv vb);
  let vc = ok (Server.create_version srv f) in
  ok (Server.write_page srv vc (path [ 2 ]) (bytes "C"));
  ok (Server.commit srv vc);
  let _, tr = clock_ring () in
  Server.set_trace srv tr;
  ok (Server.commit srv va);
  let evs = Trace.events tr in
  let tas =
    List.filter_map
      (function Trace.Test_and_set { block; won } -> Some (block, won) | _ -> None)
      (Query.points_of_kind evs "commit.test_and_set")
  in
  Alcotest.(check int) "three attempts" 3 (List.length tas);
  Alcotest.(check (list bool)) "only the last wins" [ false; false; true ] (List.map snd tas);
  let blocks = List.map fst tas in
  Alcotest.(check bool) "version blocks strictly increase" true
    (List.for_all2 ( < ) [ List.nth blocks 0; List.nth blocks 1 ] (List.tl blocks));
  match Query.points_of_kind evs "commit.outcome" with
  | [ Trace.Commit_outcome { outcome; _ } ] -> Alcotest.(check string) "merged" "merged" outcome
  | _ -> Alcotest.fail "expected one outcome"

(* {2 C2 oracle: recovery work in the event stream} *)

let test_c2_afs_recovery_emits_no_rollback_or_replay () =
  let now = ref 0.0 in
  let tr = Trace.ring ~now:(fun () -> !now) () in
  let store = Store.memory () in
  let srv = Server.create ~seed:7 ~trace:tr store in
  let f = Helpers.file_with_pages srv 4 in
  (* Plenty of in-flight work at crash time. *)
  let versions = List.init 6 (fun _ -> ok (Server.create_version srv f)) in
  List.iteri (fun i v -> ok (Server.write_page srv v (path [ i mod 4 ]) (bytes "wip"))) versions;
  Server.crash srv;
  let srv2 = Server.create ~seed:7 ~trace:tr store in
  let recovered =
    ok (Server.recover_from_blocks srv2 (Helpers.ok_str (store.Store.list_blocks ())))
  in
  Alcotest.(check bool) "recovery found the file" true (recovered > 0);
  let evs = Trace.events tr in
  Alcotest.(check bool) "the crash is on record" true (Query.count evs "crash" > 0);
  Alcotest.(check bool) "so is the rebuild" true (Query.count evs "recovery.files" > 0);
  (* The paper's claim, as an absence in the event stream. *)
  Alcotest.(check int) "no rollback" 0 (Query.count evs "recovery.rollback");
  Alcotest.(check int) "no intentions replay" 0 (Query.count evs "recovery.replay")

let test_c2_twopl_recovery_emits_rollback_and_replay () =
  let clock = ref 0.0 in
  let tr = Trace.ring ~now:(fun () -> !clock) () in
  let t = Afs_baseline.Twopl.create ~trace:tr ~clock:(fun () -> !clock) () in
  let txns = List.init 6 (fun i -> (i, Afs_baseline.Twopl.begin_ t)) in
  List.iter
    (fun (i, txn) ->
      ignore (Afs_baseline.Twopl.read t txn ~obj:i);
      ignore (Afs_baseline.Twopl.write t txn ~obj:(i + 10) (bytes "wip")))
    txns;
  let victim = Afs_baseline.Twopl.begin_ t in
  ignore (Afs_baseline.Twopl.write t victim ~obj:100 (bytes "half"));
  ignore (Afs_baseline.Twopl.write t victim ~obj:101 (bytes "applied"));
  (match Afs_baseline.Twopl.crash_mid_commit t victim with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "mid-commit crash should start cleanly");
  ignore (Afs_baseline.Twopl.recover t);
  let evs = Trace.events tr in
  (match Query.points_of_kind evs "recovery.rollback" with
  | [ Trace.Rollback { txns } ] -> Alcotest.(check bool) "rolled back work" true (txns > 0)
  | _ -> Alcotest.fail "expected one rollback event");
  match Query.points_of_kind evs "recovery.replay" with
  | [ Trace.Intentions_replay { count } ] ->
      Alcotest.(check int) "replayed the interrupted intentions" 2 count
  | _ -> Alcotest.fail "expected one replay event"

(* {2 Determinism: same seed, byte-identical trace document} *)

let render_run ~seed ~clients ~pages ~theta =
  let open Afs_workload in
  let buf = Buffer.create 4096 in
  let engine = Afs_sim.Engine.create () in
  let w = Catapult.writer (Buffer.add_string buf) in
  let tr = Trace.stream ~now:(fun () -> Afs_sim.Engine.now engine) (Catapult.emit w) in
  Afs_sim.Engine.set_trace engine tr;
  let shape =
    { Workload.small_updates with nfiles = 4; pages_per_file = pages; file_theta = theta; page_theta = theta }
  in
  let store = Store.memory () in
  let srv = Server.create ~seed:7 ~trace:tr store in
  let files = ok (Workload.setup_pages srv shape ~initial:(bytes "0")) in
  let host = Afs_rpc.Remote.host ~latency_ms:2.0 engine ~name:"afs" srv in
  let sut = Sut.afs_remote (Afs_rpc.Remote.connect [ host ]) ~fallback:srv ~files in
  let config =
    { Driver.default_config with clients; duration_ms = 250.0; think_ms = 5.0; seed }
  in
  ignore (Driver.run engine config sut ~gen:(Workload.make shape));
  Catapult.finish w;
  Buffer.contents buf

let prop_trace_deterministic =
  QCheck.Test.make ~name:"same seed and mix give a byte-identical trace" ~count:6
    QCheck.(pair (int_range 1 1000) (int_range 0 2))
    (fun (seed, mix) ->
      let clients = [| 1; 3; 4 |].(mix) in
      let pages = [| 4; 8; 6 |].(mix) in
      let theta = [| 0.0; 0.5; 0.9 |].(mix) in
      let a = render_run ~seed ~clients ~pages ~theta in
      let b = render_run ~seed ~clients ~pages ~theta in
      (* A trivial document would make the equality vacuous. *)
      String.length a > 200 && String.equal a b)

let () =
  Alcotest.run "trace"
    [
      ( "sinks",
        [
          quick "null sink is inert" test_null_sink;
          quick "ring records in order" test_ring_sink_records_in_order;
          quick "ring keeps the newest window" test_ring_sink_keeps_newest_window;
          quick "stream delivers each event" test_stream_sink_delivers_each_event;
        ] );
      ( "query",
        [
          quick "span nesting and self time" test_query_span_nesting_and_self_time;
          quick "unclosed and orphan spans" test_query_unclosed_and_orphan_spans;
          quick "counts and slowest" test_query_counts_and_slowest;
        ] );
      ( "catapult",
        [
          quick "round-trip" test_catapult_roundtrip;
          quick "incremental writer" test_catapult_writer_matches_to_string;
          quick "rejects garbage" test_catapult_rejects_garbage;
        ] );
      ( "oracles",
        [
          quick "F5: fast path is one test-and-set" test_f5_fastpath_is_one_test_and_set;
          quick "retry chain visits increasing versions"
            test_retry_chain_visits_increasing_versions;
          quick "C2: afs recovery emits no rollback/replay"
            test_c2_afs_recovery_emits_no_rollback_or_replay;
          quick "C2: 2pl recovery emits both" test_c2_twopl_recovery_emits_rollback_and_replay;
        ] );
      ("determinism", [ QCheck_alcotest.to_alcotest prop_trace_deterministic ]);
    ]
