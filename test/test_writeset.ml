(* The incremental concurrency-control administration (Writeset) against
   its definition: the flags actually reachable in a version's page tree.

   The unit tests pin the structural-edit transforms; the properties run
   random operation sequences — page writes, reads, inserts, removes,
   moves, splits — through a server and check (1) the tracked map equals
   the tree's flags exactly, (2) the derived write set equals the
   Serialise flag walk, and (3) the map-only conflict pre-test agrees
   with the tree-walking serialisability test on every pair of updates. *)

open Afs_core
module P = Afs_util.Pagepath
module Xrng = Afs_util.Xrng
module Writeset = Afs_core.Writeset

let ok = Helpers.ok
let bytes = Helpers.bytes
let path = Helpers.path

(* {2 Unit tests for the transforms} *)

let record_all ws l = List.fold_left (fun ws (p, a) -> Writeset.record ws (path p) a) ws l

let paths_of ws = List.map P.to_list (Writeset.paths ws)

let test_record_and_written () =
  let ws =
    record_all Writeset.empty
      [ ([ 0 ], Flags.Read); ([ 1 ], Flags.Write); ([], Flags.Modify); ([ 1 ], Flags.Read) ]
  in
  Alcotest.(check (list (list int))) "all paths sorted" [ []; [ 0 ]; [ 1 ] ] (paths_of ws);
  Alcotest.(check (list (list int)))
    "written = W or M" [ []; [ 1 ] ]
    (List.map P.to_list (Writeset.written_paths ws));
  let f1 = Writeset.flags_at ws (path [ 1 ]) in
  Alcotest.(check bool) "W and R accumulate" true (f1.Flags.w && f1.Flags.r)

let test_open_close_gap () =
  let ws = record_all Writeset.empty [ ([ 0 ], Flags.Read); ([ 2 ], Flags.Write); ([ 2; 1 ], Flags.Read) ] in
  let ws' = Writeset.open_gap ws ~parent:P.root ~index:1 in
  Alcotest.(check (list (list int))) "shifted up" [ [ 0 ]; [ 3 ]; [ 3; 1 ] ] (paths_of ws');
  let ws'' = Writeset.close_gap ws' ~parent:P.root ~index:1 in
  Alcotest.(check (list (list int))) "shifted back" [ [ 0 ]; [ 2 ]; [ 2; 1 ] ] (paths_of ws'')

let test_close_gap_drops_subtree () =
  let ws =
    record_all Writeset.empty
      [ ([ 0 ], Flags.Write); ([ 0; 3 ], Flags.Read); ([ 1 ], Flags.Read) ]
  in
  let ws' = Writeset.remove_at ws ~parent:P.root ~index:0 in
  Alcotest.(check (list (list int))) "subtree dropped, sibling shifted" [ [ 0 ] ] (paths_of ws')

let test_extract_graft_roundtrip () =
  let ws =
    record_all Writeset.empty
      [ ([ 1 ], Flags.Write); ([ 1; 0 ], Flags.Read); ([ 2 ], Flags.Read) ]
  in
  let sub, rest = Writeset.extract ws (path [ 1 ]) in
  Alcotest.(check (list (list int))) "sub re-rooted" [ []; [ 0 ] ] (paths_of sub);
  Alcotest.(check (list (list int))) "rest" [ [ 2 ] ] (paths_of rest);
  let back = Writeset.graft rest ~at:(path [ 1 ]) sub in
  Alcotest.(check bool) "graft restores" true (Writeset.equal ws back)

let test_extract_children_from () =
  let ws =
    record_all Writeset.empty
      [ ([ 0; 1 ], Flags.Read); ([ 0; 2 ], Flags.Write); ([ 0; 2; 5 ], Flags.Read); ([ 0 ], Flags.Modify) ]
  in
  let sub, rest = Writeset.extract_children_from ws ~parent:(path [ 0 ]) ~from:2 in
  Alcotest.(check (list (list int))) "renumbered from 0" [ [ 0 ]; [ 0; 5 ] ] (paths_of sub);
  Alcotest.(check (list (list int))) "kept" [ [ 0 ]; [ 0; 1 ] ] (paths_of rest)

let test_conflict_conditions () =
  let committed = record_all Writeset.empty [ ([ 1 ], Flags.Write); ([ 2 ], Flags.Modify) ] in
  let reader = record_all Writeset.empty [ ([ 1 ], Flags.Read) ] in
  let searcher = record_all Writeset.empty [ ([ 2 ], Flags.Search) ] in
  let disjoint = record_all Writeset.empty [ ([ 0 ], Flags.Write) ] in
  Alcotest.(check bool) "W/R conflict" true
    (Writeset.conflict ~candidate:reader ~committed <> None);
  Alcotest.(check bool) "M/S conflict" true
    (Writeset.conflict ~candidate:searcher ~committed <> None);
  Alcotest.(check bool) "disjoint is clean" true
    (Writeset.conflict ~candidate:disjoint ~committed = None);
  (* Candidate restructured over pages the committed update reached below. *)
  let restructurer = record_all Writeset.empty [ ([ 1 ], Flags.Modify) ] in
  let below = record_all Writeset.empty [ ([ 1; 0 ], Flags.Read) ] in
  Alcotest.(check bool) "M over accessed-below conflict" true
    (Writeset.conflict ~candidate:restructurer ~committed:below <> None)

(* {2 Random-operation properties against the server} *)

(* A random existing path, by unrecorded traversal (page_info does not
   touch flags). *)
let random_path rng srv v =
  let rec go p =
    let info = ok (Server.page_info srv v p) in
    if info.Server.nrefs = 0 || Xrng.int rng 3 = 0 then p
    else go (P.child p (Xrng.int rng info.Server.nrefs))
  in
  go P.root

let random_op rng srv v =
  let ignore_result = function Ok _ -> () | Error (_ : Errors.t) -> () in
  match Xrng.int rng 10 with
  | 0 | 1 | 2 ->
      let p = random_path rng srv v in
      ignore_result (Server.write_page srv v p (bytes "w"))
  | 3 | 4 ->
      let p = random_path rng srv v in
      ignore_result (Result.map ignore (Server.read_page srv v p))
  | 5 | 6 ->
      let parent = random_path rng srv v in
      let n = (ok (Server.page_info srv v parent)).Server.nrefs in
      ignore_result
        (Result.map ignore (Server.insert_page srv v ~parent ~index:(Xrng.int rng (n + 1)) ()))
  | 7 ->
      let parent = random_path rng srv v in
      let n = (ok (Server.page_info srv v parent)).Server.nrefs in
      if n > 0 then ignore_result (Server.remove_page srv v ~parent ~index:(Xrng.int rng n))
  | 8 ->
      (* Move: picked against the pre-removal shape, so the call may fail
         (destination inside the moved subtree, or gone after removal);
         a partial move still has to keep the administration exact. *)
      let src_parent = random_path rng srv v in
      let n = (ok (Server.page_info srv v src_parent)).Server.nrefs in
      if n > 0 then begin
        let src_index = Xrng.int rng n in
        let dst_parent = random_path rng srv v in
        let m = (ok (Server.page_info srv v dst_parent)).Server.nrefs in
        ignore_result
          (Server.move_page srv v ~src_parent ~src_index ~dst_parent
             ~dst_index:(Xrng.int rng (m + 1)))
      end
  | _ ->
      let p = random_path rng srv v in
      let n = (ok (Server.page_info srv v p)).Server.nrefs in
      ignore_result (Result.map ignore (Server.split_page srv v ~path:p ~at:(Xrng.int rng (n + 1))))

(* Every non-clear flag reachable in the version's tree, with its path. *)
let tree_flags srv vblock =
  let acc = ref [] in
  let page = ok (Server.read_version_page srv vblock) in
  let root_flags = page.Page.header.Page.root_flags in
  if not (Flags.equal root_flags Flags.clear) then acc := (P.root, root_flags) :: !acc;
  let rec walk p (page : Page.t) =
    Array.iteri
      (fun i (e : Page.ref_entry) ->
        if not (Flags.equal e.Page.flags Flags.clear) then begin
          let cp = P.child p i in
          acc := (cp, e.Page.flags) :: !acc;
          if e.Page.flags.Flags.c then walk cp (ok (Server.read_version_page srv e.Page.block))
        end)
      page.Page.refs
  in
  walk P.root page;
  List.sort (fun (a, _) (b, _) -> P.compare a b) !acc

let same_flag_list a b =
  List.length a = List.length b
  && List.for_all2 (fun (p, f) (q, g) -> P.equal p q && Flags.equal f g) a b

let build_version rng srv f nops =
  let v = ok (Server.create_version srv f) in
  for _ = 1 to nops do
    random_op rng srv v
  done;
  v

let prop_map_equals_tree_flags =
  QCheck2.Test.make ~name:"incremental map = reachable tree flags" ~count:200
    ~print:(fun (seed, nops) -> Printf.sprintf "seed=%d nops=%d" seed nops)
    QCheck2.Gen.(pair (int_range 1 100000) (int_range 0 40))
    (fun (seed, nops) ->
      let _, srv = Helpers.fresh_server () in
      let f = Helpers.file_with_pages srv 3 in
      let rng = Xrng.create seed in
      let v = build_version rng srv f nops in
      let vblock = ok (Server.version_block srv v) in
      match Server.tracked_writeset srv vblock with
      | None -> false
      | Some ws ->
          let from_map =
            List.map (fun p -> (p, Writeset.flags_at ws p)) (Writeset.paths ws)
          in
          same_flag_list from_map (tree_flags srv vblock))

let prop_written_matches_flag_walk =
  QCheck2.Test.make ~name:"incremental write set = Serialise.written_paths" ~count:200
    ~print:(fun (seed, nops) -> Printf.sprintf "seed=%d nops=%d" seed nops)
    QCheck2.Gen.(pair (int_range 1 100000) (int_range 0 40))
    (fun (seed, nops) ->
      let _, srv = Helpers.fresh_server () in
      let f = Helpers.file_with_pages srv 3 in
      let rng = Xrng.create seed in
      let v = build_version rng srv f nops in
      let vblock = ok (Server.version_block srv v) in
      let incremental = ok (Server.written_set srv vblock) in
      let walked = ok (Serialise.written_paths (Server.pagestore srv) ~version:vblock) in
      List.length incremental = List.length walked
      && List.for_all2 P.equal incremental walked)

(* The commit fast path never runs the walk, so check the pre-test against
   Serialise.test_only directly on concurrent version pairs. *)
let prop_pretest_agrees_with_walk =
  QCheck2.Test.make ~name:"map conflict pre-test = tree-walk verdict" ~count:200
    ~print:(fun (seed, n1, n2) -> Printf.sprintf "seed=%d nops=%d/%d" seed n1 n2)
    QCheck2.Gen.(triple (int_range 1 100000) (int_range 0 25) (int_range 0 25))
    (fun (seed, n1, n2) ->
      let _, srv = Helpers.fresh_server () in
      let f = Helpers.file_with_pages srv 3 in
      let rng = Xrng.create seed in
      let vb = build_version rng srv f n1 in
      let vc = build_version rng srv f n2 in
      let b_block = ok (Server.version_block srv vb) in
      let c_block = ok (Server.version_block srv vc) in
      ok (Server.commit srv vc);
      match (Server.tracked_writeset srv b_block, Server.tracked_writeset srv c_block) with
      | Some candidate, Some committed ->
          let pre = Writeset.conflict ~candidate ~committed in
          let walk =
            ok (Serialise.test_only (Server.pagestore srv) ~candidate:b_block ~committed:c_block)
          in
          (match (pre, walk) with
          | None, Serialise.Serialisable _ -> true
          | Some _, Serialise.Conflict _ -> true
          | None, Serialise.Conflict _ | Some _, Serialise.Serialisable _ -> false)
      | _ -> false)

let () =
  Alcotest.run "writeset"
    [
      ( "transforms",
        [
          Helpers.quick "record and written_paths" test_record_and_written;
          Helpers.quick "open/close gap" test_open_close_gap;
          Helpers.quick "close_gap drops subtree" test_close_gap_drops_subtree;
          Helpers.quick "extract/graft roundtrip" test_extract_graft_roundtrip;
          Helpers.quick "extract_children_from" test_extract_children_from;
          Helpers.quick "conflict conditions" test_conflict_conditions;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_map_equals_tree_flags;
          QCheck_alcotest.to_alcotest prop_written_matches_flag_walk;
          QCheck_alcotest.to_alcotest prop_pretest_agrees_with_walk;
        ] );
    ]
