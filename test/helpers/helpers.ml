(** Shared plumbing for the alcotest suites. *)

module Errors = Afs_core.Errors

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Errors.to_string e)

let ok_str = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let expect_error what = function
  | Ok _ -> Alcotest.failf "expected %s error, got Ok" what
  | Error (_ : Errors.t) -> ()

let expect_conflict = function
  | Error Errors.Conflict -> ()
  | Ok _ -> Alcotest.fail "expected Conflict, got Ok"
  | Error e -> Alcotest.failf "expected Conflict, got %s" (Errors.to_string e)

let bytes = Bytes.of_string
let str = Bytes.to_string

let check_bytes msg expected actual = Alcotest.(check string) msg expected (str actual)

let quick name f = Alcotest.test_case name `Quick f

(** Fresh in-memory server. [capacity] bounds its page cache. *)
let fresh_server ?(seed = 7) ?capacity () =
  let store = Afs_core.Store.memory () in
  (store, Afs_core.Server.create ~seed ?cache_capacity:capacity store)

(** A file with [n] pages "p0".."p(n-1)" under the root. *)
let file_with_pages server n =
  let open Afs_core in
  let cap = ok (Server.create_file server ~data:(bytes "root") ()) in
  let v = ok (Server.create_version server cap) in
  for i = 0 to n - 1 do
    ignore
      (ok
         (Server.insert_page server v ~parent:Afs_util.Pagepath.root ~index:i
            ~data:(bytes (Printf.sprintf "p%d" i)) ()))
  done;
  ok (Server.commit server v);
  cap

let path l = Afs_util.Pagepath.of_list l
