open Afs_workload
module Engine = Afs_sim.Engine
module Server = Afs_core.Server
module Store = Afs_core.Store
module Remote = Afs_rpc.Remote
module Xrng = Afs_util.Xrng

let quick = Helpers.quick
let ok = Helpers.ok

(* {2 Generators} *)

let test_generator_shapes_txns () =
  let shape = { Workload.small_updates with nfiles = 4; pages_per_file = 8 } in
  let gen = Workload.make shape in
  let rng = Xrng.create 1 in
  for _ = 1 to 100 do
    let spec = gen rng in
    Alcotest.(check bool) "file in range" true (spec.Sut.file >= 0 && spec.Sut.file < 4);
    Alcotest.(check int) "op count" (shape.Workload.read_pages + shape.Workload.rmw_pages)
      (List.length spec.Sut.ops);
    let pages =
      List.map
        (function Sut.Read p -> p | Sut.Write (p, _) -> p | Sut.Rmw (p, _) -> p)
        spec.Sut.ops
    in
    Alcotest.(check int) "pages distinct" (List.length pages)
      (List.length (List.sort_uniq compare pages));
    List.iter
      (fun p -> Alcotest.(check bool) "page in range" true (p >= 0 && p < 8))
      pages
  done

let test_generator_rejects_oversized_txn () =
  Alcotest.check_raises "too many pages"
    (Invalid_argument "Workload.make: transaction larger than a file") (fun () ->
      let _gen : Workload.generator =
        Workload.make
          { Workload.small_updates with pages_per_file = 2; read_pages = 2; rmw_pages = 1 }
      in
      ())

let test_setup_pages_layout () =
  let _, srv = Helpers.fresh_server () in
  let shape = { Workload.small_updates with nfiles = 3; pages_per_file = 5 } in
  let files = ok (Workload.setup_pages srv shape ~initial:(Helpers.bytes "init")) in
  Alcotest.(check int) "three files" 3 (Array.length files);
  Array.iter
    (fun f ->
      let cur = ok (Server.current_version srv f) in
      let info = ok (Server.page_info srv cur Afs_util.Pagepath.root) in
      Alcotest.(check int) "five pages" 5 info.Server.nrefs;
      Helpers.check_bytes "initial content" "init"
        (ok (Server.read_page srv cur (Helpers.path [ 4 ]))))
    files

(* {2 SUT adapters execute transactions correctly} *)

let afs_local_sut shape =
  let _, srv = Helpers.fresh_server () in
  let files = ok (Workload.setup_pages srv shape ~initial:(Helpers.bytes "0")) in
  Sut.afs_local srv ~files

let test_afs_local_sut_rmw () =
  let shape = { Workload.small_updates with nfiles = 1; pages_per_file = 2 } in
  let sut = afs_local_sut shape in
  let incr_op old = Helpers.bytes (string_of_int (int_of_string (Helpers.str old) + 1)) in
  for _ = 1 to 10 do
    let r =
      sut.Sut.exec { Sut.file = 0; ops = [ Sut.Rmw (0, incr_op) ]; parts = [] } ~max_retries:4
    in
    Alcotest.(check bool) "committed" true r.Sut.committed
  done;
  Helpers.check_bytes "ten increments" "10" (sut.Sut.read_page 0 0);
  Helpers.check_bytes "other page untouched" "0" (sut.Sut.read_page 0 1)

let test_twopl_sut_exec () =
  let engine = Engine.create () in
  let backend = Afs_baseline.Twopl.create ~clock:(fun () -> Engine.now engine) () in
  let sut = Sut.twopl backend ~pages_per_file:4 ~retry_wait_ms:1.0 in
  let result = ref None in
  let _ =
    Afs_sim.Proc.spawn engine (fun () ->
        result :=
          Some
            (sut.Sut.exec
               { Sut.file = 0; ops = [ Sut.Write (1, Helpers.bytes "locked in") ]; parts = [] }
               ~max_retries:4))
  in
  Engine.run engine;
  (match !result with
  | Some r -> Alcotest.(check bool) "committed" true r.Sut.committed
  | None -> Alcotest.fail "never ran");
  Helpers.check_bytes "value stored" "locked in" (sut.Sut.read_page 0 1)

let test_tsorder_sut_exec () =
  let backend = Afs_baseline.Tsorder.create () in
  let sut = Sut.tsorder backend ~pages_per_file:4 in
  let r =
    sut.Sut.exec { Sut.file = 2; ops = [ Sut.Write (3, Helpers.bytes "stamped") ]; parts = [] }
      ~max_retries:4
  in
  Alcotest.(check bool) "committed" true r.Sut.committed;
  Helpers.check_bytes "value stored" "stamped" (sut.Sut.read_page 2 3)

(* {2 The driver under contention: serialisability invariants} *)

let bank_invariant_holds sut_of_engine name =
  let params = { Bank.default with branches = 2; accounts = 8 } in
  let engine = Engine.create () in
  let sut = sut_of_engine engine params in
  let config =
    { Driver.default_config with clients = 8; duration_ms = 2_000.0; think_ms = 5.0 }
  in
  let report = Driver.run engine config sut ~gen:(Bank.generator params) in
  Alcotest.(check bool) (name ^ ": work done") true (report.Driver.committed > 50);
  Alcotest.(check int)
    (name ^ ": money conserved")
    (Bank.expected_total params)
    (Bank.total_money sut params)

let test_bank_invariant_afs () =
  bank_invariant_holds
    (fun engine params ->
      let store = Store.memory () in
      let srv = Server.create store in
      let shape =
        { Workload.small_updates with nfiles = params.Bank.branches;
          pages_per_file = params.Bank.accounts }
      in
      let files = ok (Workload.setup_pages srv shape ~initial:(Bank.initial_page params)) in
      let host = Remote.host engine ~name:"afs" srv in
      Sut.afs_remote (Remote.connect [ host ]) ~fallback:srv ~files)
    "afs-occ"

let test_bank_invariant_twopl () =
  bank_invariant_holds
    (fun engine params ->
      let backend = Afs_baseline.Twopl.create ~clock:(fun () -> Engine.now engine) () in
      let sut = Sut.twopl backend ~pages_per_file:params.Bank.accounts ~retry_wait_ms:2.0 in
      (* Pre-load balances. *)
      for b = 0 to params.Bank.branches - 1 do
        for a = 0 to params.Bank.accounts - 1 do
          let txn = Afs_baseline.Twopl.begin_ backend in
          (match
             Afs_baseline.Twopl.write backend txn ~obj:((b * 65536) + a)
               (Bank.initial_page params)
           with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "preload denied");
          match Afs_baseline.Twopl.commit backend txn with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "preload commit denied"
        done
      done;
      sut)
    "xdfs-2pl"

let test_bank_invariant_tsorder () =
  bank_invariant_holds
    (fun _engine params ->
      let backend = Afs_baseline.Tsorder.create () in
      let sut = Sut.tsorder backend ~pages_per_file:params.Bank.accounts in
      for b = 0 to params.Bank.branches - 1 do
        for a = 0 to params.Bank.accounts - 1 do
          let txn = Afs_baseline.Tsorder.begin_ backend in
          (match
             Afs_baseline.Tsorder.write backend txn ~obj:((b * 65536) + a)
               (Bank.initial_page params)
           with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "preload late");
          match Afs_baseline.Tsorder.commit backend txn with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "preload commit late"
        done
      done;
      sut)
    "swallow-ts"

let test_bank_invariant_two_balanced_servers () =
  (* The §5.2 configuration: two servers over one store, transactions
     rotated across them. Money conservation proves the cross-server
     commit protocol (store-level test-and-set + cache refresh) is safe. *)
  bank_invariant_holds
    (fun engine params ->
      let store = Store.memory () in
      let ports = Afs_core.Ports.create () in
      let srv1 = Server.create ~seed:7 ~ports store in
      let srv2 = Server.create ~seed:7 ~ports store in
      let shape =
        { Workload.small_updates with nfiles = params.Bank.branches;
          pages_per_file = params.Bank.accounts }
      in
      let files = ok (Workload.setup_pages srv1 shape ~initial:(Bank.initial_page params)) in
      let host1 = Remote.host engine ~name:"afs-1" srv1 in
      let host2 = Remote.host engine ~name:"afs-2" srv2 in
      let conn = Remote.connect ~balance:true [ host1; host2 ] in
      Sut.afs_remote ~name:"afs-2srv" conn ~fallback:srv1 ~files)
    "afs-2srv"

let test_airline_seats_conserved () =
  let params =
    { Airline.default with flights = 4; classes = 2; seats_per_class = 10_000 }
  in
  let engine = Engine.create () in
  let store = Store.memory () in
  let srv = Server.create store in
  let shape =
    { Workload.small_updates with nfiles = params.Airline.flights;
      pages_per_file = params.Airline.classes }
  in
  let files = ok (Workload.setup_pages srv shape ~initial:(Airline.initial_page params)) in
  let host = Remote.host engine ~name:"afs" srv in
  let sut = Sut.afs_remote (Remote.connect [ host ]) ~fallback:srv ~files in
  let config =
    { Driver.default_config with clients = 6; duration_ms = 2_000.0; think_ms = 5.0 }
  in
  let report = Driver.run engine config sut ~gen:(Airline.generator params) in
  let initial_total =
    params.Airline.flights * params.Airline.classes * params.Airline.seats_per_class
  in
  let remaining = Airline.total_seats sut params in
  let booked = initial_total - remaining in
  Alcotest.(check bool) "some bookings" true (booked > 0);
  (* Every committed booking removed exactly one seat: bookings committed
     cannot exceed total commits, and no seats can be lost otherwise. *)
  Alcotest.(check bool)
    (Printf.sprintf "booked %d <= committed %d" booked report.Driver.committed)
    true
    (booked <= report.Driver.committed)

let test_driver_reports_sane_numbers () =
  let shape = { Workload.small_updates with nfiles = 8; pages_per_file = 4 } in
  let engine = Engine.create () in
  let store = Store.memory () in
  let srv = Server.create store in
  let files = ok (Workload.setup_pages srv shape ~initial:(Helpers.bytes "x")) in
  let host = Remote.host engine ~name:"afs" srv in
  let sut = Sut.afs_remote (Remote.connect [ host ]) ~fallback:srv ~files in
  let config =
    { Driver.default_config with clients = 4; duration_ms = 1_000.0; think_ms = 10.0 }
  in
  let report = Driver.run engine config sut ~gen:(Workload.make shape) in
  Alcotest.(check bool) "committed > 0" true (report.Driver.committed > 0);
  Alcotest.(check bool) "attempts >= committed" true
    (report.Driver.attempts >= report.Driver.committed);
  Alcotest.(check bool) "throughput positive" true (report.Driver.throughput_per_s > 0.0);
  Alcotest.(check bool) "latency positive" true (report.Driver.mean_latency_ms > 0.0);
  Alcotest.(check bool) "p50 <= p99" true (report.Driver.p50_ms <= report.Driver.p99_ms);
  Alcotest.(check bool) "elapsed covers duration" true (report.Driver.elapsed_ms >= 1_000.0)

let test_driver_deterministic () =
  let run_once () =
    let shape = { Workload.small_updates with nfiles = 4 } in
    let engine = Engine.create () in
    let store = Store.memory () in
    let srv = Server.create store in
    let files = ok (Workload.setup_pages srv shape ~initial:(Helpers.bytes "x")) in
    let host = Remote.host engine ~name:"afs" srv in
    let sut = Sut.afs_remote (Remote.connect [ host ]) ~fallback:srv ~files in
    let config =
      { Driver.default_config with clients = 3; duration_ms = 500.0; seed = 7 }
    in
    let r = Driver.run engine config sut ~gen:(Workload.make shape) in
    (r.Driver.committed, r.Driver.attempts)
  in
  let a = run_once () and b = run_once () in
  Alcotest.(check (pair int int)) "identical runs" a b

let () =
  Alcotest.run "workload"
    [
      ( "generators",
        [
          quick "txn shapes" test_generator_shapes_txns;
          quick "oversized rejected" test_generator_rejects_oversized_txn;
          quick "setup layout" test_setup_pages_layout;
        ] );
      ( "suts",
        [
          quick "afs local rmw" test_afs_local_sut_rmw;
          quick "twopl exec" test_twopl_sut_exec;
          quick "tsorder exec" test_tsorder_sut_exec;
        ] );
      ( "invariants",
        [
          quick "bank money conserved (afs)" test_bank_invariant_afs;
          quick "bank money conserved (2 balanced servers)"
            test_bank_invariant_two_balanced_servers;
          quick "bank money conserved (2pl)" test_bank_invariant_twopl;
          quick "bank money conserved (ts)" test_bank_invariant_tsorder;
          quick "airline seats conserved" test_airline_seats_conserved;
        ] );
      ( "driver",
        [
          quick "sane numbers" test_driver_reports_sane_numbers;
          quick "deterministic" test_driver_deterministic;
        ] );
    ]
