open Afs_core
module Capability = Afs_util.Capability

let quick = Helpers.quick
let bytes = Helpers.bytes

let secret = Capability.secret_of_seed 31
let port = Capability.port_of_int 0xBEEF

let cap obj = Capability.mint secret ~port ~obj ~rights:Capability.rights_all

let entry ?(flags = Flags.clear) block = { Page.block; flags }

let sample_version_page () =
  Page.make_version_page ~file_cap:(cap 2) ~version_cap:(cap 5) ~base_ref:(Some 17)
    ~parent_ref:None
    ~refs:[| entry 3; entry ~flags:(Flags.record Flags.clear Flags.Write) 9 |]
    ~data:(bytes "version page data")

let decode_ok ?memo image =
  match Page.decode ?memo image with
  | Ok p -> p
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_empty_page () =
  Alcotest.(check int) "no refs" 0 (Page.nrefs Page.empty);
  Alcotest.(check int) "no data" 0 (Page.dsize Page.empty);
  Alcotest.(check bool) "not a version page" false (Page.is_version_page Page.empty)

let test_version_page_fields () =
  let p = sample_version_page () in
  Alcotest.(check bool) "is version page" true (Page.is_version_page p);
  Alcotest.(check int) "nrefs" 2 (Page.nrefs p);
  Alcotest.(check int) "dsize" 17 (Page.dsize p)

let test_codec_roundtrip_plain () =
  let p = Page.with_data Page.empty (bytes "plain data") in
  let p' = decode_ok (Page.encode p) in
  Helpers.check_bytes "data" "plain data" p'.Page.data;
  Alcotest.(check bool) "still plain" false (Page.is_version_page p')

let test_codec_roundtrip_version () =
  let p = sample_version_page () in
  let p' = decode_ok (Page.encode p) in
  let h = p'.Page.header in
  Alcotest.(check bool) "file cap" true
    (match h.Page.file_cap with Some fc -> Capability.equal fc (cap 2) | None -> false);
  Alcotest.(check bool) "version cap" true
    (match h.Page.version_cap with Some vc -> Capability.equal vc (cap 5) | None -> false);
  Alcotest.(check (option int)) "base ref" (Some 17) h.Page.base_ref;
  Alcotest.(check (option int)) "commit ref nil" None h.Page.commit_ref;
  Alcotest.(check int) "ref 0 block" 3 p'.Page.refs.(0).Page.block;
  Alcotest.(check bool) "ref 1 W flag" true p'.Page.refs.(1).Page.flags.Flags.w;
  Helpers.check_bytes "data" "version page data" p'.Page.data

let test_codec_roundtrip_locks () =
  let p = sample_version_page () in
  let h = { p.Page.header with Page.top_lock = 123; Page.inner_lock = 456;
            Page.commit_ref = Some 99; Page.parent_ref = Some 7 } in
  let p = Page.with_header p h in
  let p' = decode_ok (Page.encode p) in
  Alcotest.(check int) "top lock" 123 p'.Page.header.Page.top_lock;
  Alcotest.(check int) "inner lock" 456 p'.Page.header.Page.inner_lock;
  Alcotest.(check (option int)) "commit ref" (Some 99) p'.Page.header.Page.commit_ref;
  Alcotest.(check (option int)) "parent ref" (Some 7) p'.Page.header.Page.parent_ref

let test_decode_rejects_garbage () =
  (match Page.decode (bytes "not a page") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage");
  match Page.decode Bytes.empty with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted empty"

let test_decode_rejects_truncation () =
  let image = Page.encode (sample_version_page ()) in
  let truncated = Bytes.sub image 0 (Bytes.length image - 4) in
  match Page.decode truncated with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated image"

let test_decode_rejects_trailing () =
  let image = Page.encode (sample_version_page ()) in
  let padded = Bytes.cat image (bytes "junk") in
  match Page.decode padded with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing bytes"

let test_block_number_28_bits () =
  let p = Page.with_data Page.empty Bytes.empty in
  match Page.insert_ref p 0 (entry Page.max_block_number) with
  | Error msg -> Alcotest.fail msg
  | Ok p ->
      let p' = decode_ok (Page.encode p) in
      Alcotest.(check int) "max block survives" Page.max_block_number
        p'.Page.refs.(0).Page.block;
      Alcotest.check_raises "overflow rejected"
        (Invalid_argument
           (Printf.sprintf "Page: block number %d out of 28-bit range"
              (Page.max_block_number + 2)))
        (fun () ->
          match Page.with_ref p 0 (entry (Page.max_block_number + 2)) with
          | Ok bad -> ignore (Page.encode bad)
          | Error msg -> Alcotest.fail msg)

let test_ref_ops () =
  let p = Page.empty in
  let p = Helpers.ok_str (Page.insert_ref p 0 (entry 10)) in
  let p = Helpers.ok_str (Page.insert_ref p 1 (entry 20)) in
  let p = Helpers.ok_str (Page.insert_ref p 1 (entry 15)) in
  Alcotest.(check (list int)) "insert order" [ 10; 15; 20 ]
    (Array.to_list (Array.map (fun e -> e.Page.block) p.Page.refs));
  let p = Helpers.ok_str (Page.remove_ref p 1) in
  Alcotest.(check (list int)) "after remove" [ 10; 20 ]
    (Array.to_list (Array.map (fun e -> e.Page.block) p.Page.refs));
  let p = Helpers.ok_str (Page.with_ref p 0 (entry 11)) in
  Alcotest.(check int) "with_ref" 11 p.Page.refs.(0).Page.block

let test_ref_ops_bounds () =
  (match Page.insert_ref Page.empty 1 (entry 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "insert past end accepted");
  (match Page.remove_ref Page.empty 0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "remove on empty accepted");
  match Page.get_ref Page.empty 0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "get on empty accepted"

let test_record_access_on_ref () =
  let p = Helpers.ok_str (Page.insert_ref Page.empty 0 (entry 10)) in
  let p = Helpers.ok_str (Page.record_access p 0 Flags.Read) in
  Alcotest.(check bool) "r recorded" true p.Page.refs.(0).Page.flags.Flags.r;
  Alcotest.(check bool) "c implied" true p.Page.refs.(0).Page.flags.Flags.c

let test_clear_child_flags () =
  let flags = Flags.record (Flags.record Flags.clear Flags.Read) Flags.Write in
  let p = Helpers.ok_str (Page.insert_ref Page.empty 0 (entry ~flags 10)) in
  let p = Page.clear_child_flags p in
  Alcotest.(check bool) "cleared" true (Flags.equal Flags.clear p.Page.refs.(0).Page.flags);
  Alcotest.(check int) "block kept" 10 p.Page.refs.(0).Page.block

let test_functional_updates_do_not_alias () =
  let p = Helpers.ok_str (Page.insert_ref Page.empty 0 (entry 10)) in
  let q = Helpers.ok_str (Page.with_ref p 0 (entry 99)) in
  Alcotest.(check int) "original untouched" 10 p.Page.refs.(0).Page.block;
  Alcotest.(check int) "copy updated" 99 q.Page.refs.(0).Page.block

let test_data_capacity_sane () =
  let cap_plain = Page.data_capacity ~block_size:32768 ~nrefs:0 ~is_version:0 in
  let cap_vers = Page.data_capacity ~block_size:32768 ~nrefs:100 ~is_version:1 in
  Alcotest.(check bool) "plain close to block size" true
    (cap_plain > 32000 && cap_plain < 32768);
  Alcotest.(check bool) "version page smaller" true (cap_vers < cap_plain);
  (* The advertised capacity must actually fit. *)
  let data = Bytes.make cap_vers 'd' in
  let refs = Array.init 100 (fun i -> entry (i + 1)) in
  let p =
    Page.make_version_page ~file_cap:(cap 2) ~version_cap:(cap 5) ~base_ref:(Some 1)
      ~parent_ref:(Some 1) ~refs ~data
  in
  Alcotest.(check bool) "fits" true (Page.encoded_size p <= 32768)

(* Property: arbitrary pages roundtrip through the codec. *)
let gen_flags =
  QCheck2.Gen.map
    (fun n -> match Flags.of_nibble (abs n mod 13) with Some f -> f | None -> Flags.clear)
    QCheck2.Gen.int

let gen_entry =
  QCheck2.Gen.map2
    (fun block flags -> { Page.block = abs block mod 100000; flags })
    QCheck2.Gen.int gen_flags

let gen_page =
  let open QCheck2.Gen in
  let* refs = array_size (int_range 0 20) gen_entry in
  let* data = string_size (int_range 0 200) in
  let* version = bool in
  if version then
    let* base = opt (int_range 0 1000) in
    let* commit = opt (int_range 0 1000) in
    let* top_lock = int_range 0 5 in
    let p =
      Page.make_version_page ~file_cap:(cap 2) ~version_cap:(cap 5) ~base_ref:base
        ~parent_ref:None ~refs ~data:(Bytes.of_string data)
    in
    return
      (Page.with_header p { p.Page.header with Page.commit_ref = commit; Page.top_lock = top_lock })
  else return (Page.with_contents (Page.with_data Page.empty (Bytes.of_string data)) ~refs ~data:(Bytes.of_string data))

let page_equal a b =
  a.Page.header = b.Page.header
  && Array.length a.Page.refs = Array.length b.Page.refs
  && Array.for_all2 (fun x y -> x = y) a.Page.refs b.Page.refs
  && Bytes.equal a.Page.data b.Page.data

let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"page codec roundtrip" ~count:300 gen_page (fun p ->
      match Page.decode (Page.encode p) with Ok p' -> page_equal p p' | Error _ -> false)

let prop_encoded_size_consistent =
  QCheck2.Test.make ~name:"encoded_size equals encode length" ~count:100 gen_page (fun p ->
      Page.encoded_size p = Bytes.length (Page.encode p))

(* Fuzz: decoding a corrupted valid image must fail cleanly or produce a
   structurally valid page — never raise. *)
let prop_decode_total_on_mutations =
  let open QCheck2.Gen in
  let gen =
    let* page = gen_page in
    let* pos = int_range 0 10000 in
    let* xor = int_range 1 255 in
    return (page, pos, xor)
  in
  QCheck2.Test.make ~name:"decode is total on corrupted images" ~count:500 gen
    (fun (page, pos, xor) ->
      let image = Page.encode page in
      let pos = pos mod max 1 (Bytes.length image) in
      Bytes.set image pos (Char.chr (Char.code (Bytes.get image pos) lxor xor));
      match Page.decode image with
      | Ok p -> Array.for_all (fun (e : Page.ref_entry) -> Flags.is_legal e.Page.flags) p.Page.refs
      | Error _ -> true
      | exception Invalid_argument _ -> false
      | exception _ -> false)

(* Fuzz: decoding arbitrary byte strings never raises. *)
let prop_decode_total_on_garbage =
  QCheck2.Test.make ~name:"decode is total on garbage" ~count:500
    QCheck2.Gen.(string_size (int_range 0 300))
    (fun s ->
      match Page.decode (Bytes.of_string s) with
      | Ok _ | Error _ -> true
      | exception _ -> false)

(* {2 Encode-once: the memo is invisible and always canonical} *)

let test_encode_counts_once () =
  let p = sample_version_page () in
  let e0 = Page.fresh_encodes () in
  let img1 = Page.encode p in
  let img2 = Page.encode p in
  Alcotest.(check int) "second encode is a memo hit" 1 (Page.fresh_encodes () - e0);
  Alcotest.(check bool) "memo hit returns the same image" true (img1 == img2);
  let e1 = Page.fresh_encodes () in
  let q = decode_ok ~memo:true img1 in
  ignore (Page.encode q);
  Alcotest.(check int) "decode ~memo seeds the memo" 0 (Page.fresh_encodes () - e1)

(* Random pages and random updater chains: after any sequence of
   functional updates, the memoized image must be byte-identical to a
   from-scratch serialisation of the same value (decode the image with no
   memo, re-encode fresh). An updater that changes the page must also have
   dropped the parent's memo rather than carried it across. *)
let prop_memo_canonical_after_updates =
  let open QCheck2 in
  let entry_gen =
    Gen.(
      map2
        (fun block w -> { Page.block; flags = (if w then Flags.record Flags.clear Flags.Write else Flags.clear) })
        (int_bound 100_000) bool)
  in
  let base_gen =
    Gen.(
      let* refs = array_size (int_bound 6) entry_gen in
      let* data = small_string ~gen:printable in
      let* version = bool in
      return
        (if version then
           Page.make_version_page ~file_cap:(cap 2) ~version_cap:(cap 5) ~base_ref:(Some 17)
             ~parent_ref:None ~refs ~data:(Bytes.of_string data)
         else Page.with_contents Page.empty ~refs ~data:(Bytes.of_string data)))
  in
  let access_gen = Gen.oneofl [ Flags.Read; Flags.Write; Flags.Search; Flags.Modify ] in
  let update_gen =
    Gen.(
      oneof
        [
          map (fun s p -> Page.with_data p (Bytes.of_string s)) (small_string ~gen:printable);
          map2 (fun i e p -> match Page.with_ref p i e with Ok p -> p | Error _ -> p)
            (int_bound 8) entry_gen;
          map2 (fun i e p -> match Page.insert_ref p i e with Ok p -> p | Error _ -> p)
            (int_bound 8) entry_gen;
          map (fun i p -> match Page.remove_ref p i with Ok p -> p | Error _ -> p) (int_bound 8);
          map2 (fun i a p -> match Page.record_access p i a with Ok p -> p | Error _ -> p)
            (int_bound 8) access_gen;
          return Page.clear_child_flags;
        ])
  in
  Test.make ~name:"memoized encode is canonical after every updater" ~count:300
    Gen.(pair base_gen (list_size (int_range 1 8) update_gen))
    (fun (base, updates) ->
      let p =
        List.fold_left
          (fun p update ->
            ignore (Page.encode p) (* memoize, so updaters must shed it *);
            let p' = update p in
            if p' != p && Page.memoized_image p' <> None then
              Test.fail_reportf "updater carried a stale memo across";
            p')
          base updates
      in
      let img = Page.encode p in
      (match Page.memoized_image p with
      | Some m when m == img -> ()
      | _ -> Test.fail_reportf "encode did not memoize its image");
      let fresh =
        match Page.decode img with
        | Ok q -> Page.encode q
        | Error msg -> Test.fail_reportf "memoized image does not decode: %s" msg
      in
      if not (Bytes.equal img fresh) then
        Test.fail_reportf "memoized image differs from a fresh serialisation";
      true)

let () =
  Alcotest.run "page"
    [
      ( "structure",
        [
          quick "empty page" test_empty_page;
          quick "version page fields" test_version_page_fields;
          quick "ref ops" test_ref_ops;
          quick "ref bounds" test_ref_ops_bounds;
          quick "record access" test_record_access_on_ref;
          quick "clear child flags" test_clear_child_flags;
          quick "no aliasing" test_functional_updates_do_not_alias;
          quick "data capacity" test_data_capacity_sane;
        ] );
      ( "codec",
        [
          quick "plain roundtrip" test_codec_roundtrip_plain;
          quick "version roundtrip" test_codec_roundtrip_version;
          quick "locks roundtrip" test_codec_roundtrip_locks;
          quick "rejects garbage" test_decode_rejects_garbage;
          quick "rejects truncation" test_decode_rejects_truncation;
          quick "rejects trailing bytes" test_decode_rejects_trailing;
          quick "28-bit block numbers" test_block_number_28_bits;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
          QCheck_alcotest.to_alcotest prop_encoded_size_consistent;
          QCheck_alcotest.to_alcotest prop_decode_total_on_mutations;
          QCheck_alcotest.to_alcotest prop_decode_total_on_garbage;
        ] );
      ( "encode-once",
        [
          quick "fresh encode counted once" test_encode_counts_once;
          QCheck_alcotest.to_alcotest prop_memo_canonical_after_updates;
        ] );
    ]
