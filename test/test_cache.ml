open Afs_core
module P = Afs_util.Pagepath

let quick = Helpers.quick
let bytes = Helpers.bytes
let ok = Helpers.ok
let path = Helpers.path

let commit_write srv f p s =
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (path p) (bytes s));
  ok (Server.commit srv v)

let commit_insert srv f ~index s =
  let v = ok (Server.create_version srv f) in
  ignore (ok (Server.insert_page srv v ~parent:P.root ~index ~data:(bytes s) ()));
  ok (Server.commit srv v)

(* {2 Server-side validation} *)

let test_validation_null_op_when_current () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  let basis = ok (Server.current_block_of_file srv f) in
  let v = ok (Cache.server_validate srv ~file:f ~basis_block:basis) in
  Alcotest.(check int) "walked nothing" 0 v.Cache.versions_walked;
  Alcotest.(check int) "examined nothing" 0 v.Cache.pages_examined;
  Alcotest.(check (list string)) "nothing invalid" []
    (List.map P.to_string v.Cache.invalid)

let test_validation_reports_written_paths () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  let basis = ok (Server.current_block_of_file srv f) in
  commit_write srv f [ 2 ] "new p2";
  let v = ok (Cache.server_validate srv ~file:f ~basis_block:basis) in
  Alcotest.(check int) "one version walked" 1 v.Cache.versions_walked;
  Alcotest.(check (list string)) "page 2 invalid" [ "/2" ]
    (List.map P.to_string v.Cache.invalid)

let test_validation_accumulates_chain () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  let basis = ok (Server.current_block_of_file srv f) in
  commit_write srv f [ 0 ] "a";
  commit_write srv f [ 1 ] "b";
  commit_write srv f [ 0 ] "c";
  let v = ok (Cache.server_validate srv ~file:f ~basis_block:basis) in
  Alcotest.(check int) "three versions walked" 3 v.Cache.versions_walked;
  Alcotest.(check (list string)) "both pages, deduplicated" [ "/0"; "/1" ]
    (List.map P.to_string v.Cache.invalid)

let test_validation_unknown_basis_discards_all () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let v = ok (Cache.server_validate srv ~file:f ~basis_block:424242) in
  Alcotest.(check (list string)) "everything invalid" [ "/" ]
    (List.map P.to_string v.Cache.invalid)

let test_validation_cost_proportional_to_changes () =
  (* §5.4: cost is proportional to what changed, not to file size. *)
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 64 in
  let basis = ok (Server.current_block_of_file srv f) in
  commit_write srv f [ 5 ] "small change";
  let v = ok (Cache.server_validate srv ~file:f ~basis_block:basis) in
  Alcotest.(check bool)
    (Printf.sprintf "examined %d pages, far fewer than 64" v.Cache.pages_examined)
    true (v.Cache.pages_examined <= 4)

let test_validation_cost_independent_of_depth () =
  (* With the incremental administration, validating a fixed write set
     costs the same however deep the tree it lives in. *)
  let examined_at depth =
    let _, srv = Helpers.fresh_server () in
    let f = ok (Server.create_file srv ~data:(bytes "root") ()) in
    let v = ok (Server.create_version srv f) in
    let rec build parent level =
      for i = 0 to 2 do
        let child = ok (Server.insert_page srv v ~parent ~index:i ~data:(bytes "n") ()) in
        if level + 1 < depth then build child (level + 1)
      done
    in
    build P.root 0;
    ok (Server.commit srv v);
    let basis = ok (Server.current_block_of_file srv f) in
    let leaf = path (List.init depth (fun _ -> 1)) in
    let u = ok (Server.create_version srv f) in
    ok (Server.write_page srv u leaf (bytes "deep change"));
    ok (Server.commit srv u);
    (ok (Cache.server_validate srv ~file:f ~basis_block:basis)).Cache.pages_examined
  in
  let shallow = examined_at 2 and deep = examined_at 5 in
  Alcotest.(check int) "same cost at depth 5 as at depth 2" shallow deep;
  Alcotest.(check int) "exactly the one written page" 1 deep

(* {2 Flag cache (§5.4 last paragraph)} *)

let test_flag_cache_memoises () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  let basis = ok (Server.current_block_of_file srv f) in
  commit_write srv f [ 1 ] "x";
  let fc = Cache.Flag_cache.create () in
  let v1 = ok (Cache.server_validate ~flag_cache:fc srv ~file:f ~basis_block:basis) in
  Alcotest.(check int) "entry cached" 1 (Cache.Flag_cache.entries fc);
  let v2 = ok (Cache.server_validate ~flag_cache:fc srv ~file:f ~basis_block:basis) in
  Alcotest.(check (list string)) "same answer"
    (List.map P.to_string v1.Cache.invalid)
    (List.map P.to_string v2.Cache.invalid)

let test_flag_cache_write_set () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  commit_write srv f [ 3 ] "w";
  let current = ok (Server.current_block_of_file srv f) in
  let fc = Cache.Flag_cache.create () in
  let ws = ok (Cache.Flag_cache.write_set fc srv ~version_block:current) in
  Alcotest.(check (list string)) "write set" [ "/3" ] (List.map P.to_string ws)

(* {2 Client cache} *)

let test_client_cache_hit_after_fill () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 3 in
  let c = Cache.create srv in
  let basis = ok (Server.current_block_of_file srv f) in
  Cache.put c ~file:f ~basis_block:basis ~path:(path [ 0 ]) ~data:(bytes "p0");
  Alcotest.(check (option string)) "hit" (Some "p0")
    (Option.map Helpers.str (Cache.get c ~file:f ~path:(path [ 0 ])));
  Alcotest.(check (option string)) "miss other path" None
    (Option.map Helpers.str (Cache.get c ~file:f ~path:(path [ 1 ])))

let test_client_revalidate_keeps_valid_pages () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 3 in
  let c = Cache.create srv in
  let basis = ok (Server.current_block_of_file srv f) in
  Cache.put c ~file:f ~basis_block:basis ~path:(path [ 0 ]) ~data:(bytes "p0");
  Cache.put c ~file:f ~basis_block:basis ~path:(path [ 1 ]) ~data:(bytes "p1");
  commit_write srv f [ 1 ] "p1 changed";
  let v = ok (Cache.revalidate c ~file:f) in
  Alcotest.(check (list string)) "page 1 discarded" [ "/1" ]
    (List.map P.to_string v.Cache.invalid);
  Alcotest.(check (option string)) "page 0 kept" (Some "p0")
    (Option.map Helpers.str (Cache.get c ~file:f ~path:(path [ 0 ])));
  Alcotest.(check (option string)) "page 1 gone" None
    (Option.map Helpers.str (Cache.get c ~file:f ~path:(path [ 1 ])));
  Alcotest.(check (option int)) "basis advanced"
    (Some (ok (Server.current_block_of_file srv f)))
    (Cache.basis c ~file:f)

let test_client_revalidate_structure_change_discards_subtree () =
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let c = Cache.create srv in
  let basis = ok (Server.current_block_of_file srv f) in
  Cache.put c ~file:f ~basis_block:basis ~path:(path [ 0 ]) ~data:(bytes "p0");
  Cache.put c ~file:f ~basis_block:basis ~path:(path [ 1 ]) ~data:(bytes "p1");
  (* Root restructure: the root's M covers every cached page under it. *)
  commit_insert srv f ~index:0 "new page";
  let _ = ok (Cache.revalidate c ~file:f) in
  Alcotest.(check int) "all pages discarded" 0 (Cache.pages_cached c ~file:f)

let test_unshared_file_cache_never_invalidated () =
  (* The §5.4 claim: for unshared files the cache entry is always the most
     recent version and validation is a null operation, forever. *)
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let c = Cache.create srv in
  let basis = ok (Server.current_block_of_file srv f) in
  Cache.put c ~file:f ~basis_block:basis ~path:(path [ 0 ]) ~data:(bytes "p0");
  for _ = 1 to 10 do
    let v = ok (Cache.revalidate c ~file:f) in
    Alcotest.(check int) "null op" 0 v.Cache.versions_walked;
    Alcotest.(check int) "nothing examined" 0 v.Cache.pages_examined
  done;
  Alcotest.(check int) "page still cached" 1 (Cache.pages_cached c ~file:f)

let test_own_commit_advances_basis_cheaply () =
  (* A client that itself commits and re-puts pages keeps a warm cache. *)
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let c = Cache.create srv in
  commit_write srv f [ 0 ] "mine";
  let v = ok (Cache.revalidate c ~file:f) in
  let basis = v.Cache.current_block in
  Cache.put c ~file:f ~basis_block:basis ~path:(path [ 0 ]) ~data:(bytes "mine");
  let v2 = ok (Cache.revalidate c ~file:f) in
  Alcotest.(check int) "still current" 0 v2.Cache.versions_walked;
  Alcotest.(check (option string)) "cache warm" (Some "mine")
    (Option.map Helpers.str (Cache.get c ~file:f ~path:(path [ 0 ])))

let test_no_unsolicited_invalidations_needed () =
  (* Two clients; one writes, the other's next validation round trip (an
     operation the READER initiates) catches up — nothing is pushed. *)
  let _, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  let reader_cache = Cache.create srv in
  let basis = ok (Server.current_block_of_file srv f) in
  Cache.put reader_cache ~file:f ~basis_block:basis ~path:(path [ 0 ]) ~data:(bytes "p0");
  commit_write srv f [ 0 ] "fresh";
  (* Reader still serves stale data locally until it validates — that is
     the contract: consistency on transaction boundaries. *)
  Alcotest.(check (option string)) "stale before validate" (Some "p0")
    (Option.map Helpers.str (Cache.get reader_cache ~file:f ~path:(path [ 0 ])));
  let _ = ok (Cache.revalidate reader_cache ~file:f) in
  Alcotest.(check (option string)) "discarded after validate" None
    (Option.map Helpers.str (Cache.get reader_cache ~file:f ~path:(path [ 0 ])))

let () =
  Alcotest.run "cache"
    [
      ( "server validation",
        [
          quick "null op when current" test_validation_null_op_when_current;
          quick "reports written paths" test_validation_reports_written_paths;
          quick "accumulates chain" test_validation_accumulates_chain;
          quick "unknown basis discards all" test_validation_unknown_basis_discards_all;
          quick "cost tracks changes" test_validation_cost_proportional_to_changes;
          quick "cost independent of depth" test_validation_cost_independent_of_depth;
        ] );
      ( "flag cache",
        [
          quick "memoises" test_flag_cache_memoises;
          quick "write set" test_flag_cache_write_set;
        ] );
      ( "client cache",
        [
          quick "hit after fill" test_client_cache_hit_after_fill;
          quick "revalidate keeps valid" test_client_revalidate_keeps_valid_pages;
          quick "structure change discards subtree"
            test_client_revalidate_structure_change_discards_subtree;
          quick "unshared file: eternal null op" test_unshared_file_cache_never_invalidated;
          quick "own commits keep cache warm" test_own_commit_advances_basis_cheaply;
          quick "no unsolicited messages" test_no_unsolicited_invalidations_needed;
        ] );
    ]
