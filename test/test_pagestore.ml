open Afs_core

let quick = Helpers.quick
let bytes = Helpers.bytes
let ok = Helpers.ok

let fresh ?cache ?capacity () =
  let store = Store.memory ~block_size:1024 () in
  (store, Pagestore.create ?cache ?capacity store)

let counter ps name = Afs_util.Stats.Counter.get (Pagestore.counters ps) name

let page_with_data s = Page.with_data Page.empty (bytes s)

let read_data ps b = Helpers.str (ok (Pagestore.read ps b)).Page.data

let test_write_read_cached () =
  let _, ps = fresh () in
  let b = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write ps b (page_with_data "cached")));
  Alcotest.(check string) "read hits cache" "cached" (read_data ps b)

let test_write_is_deferred () =
  let store, ps = fresh () in
  let b = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write ps b (page_with_data "dirty")));
  Alcotest.(check int) "dirty count" 1 (Pagestore.dirty_count ps);
  (match store.Store.read b with
  | Error _ -> () (* Not durable yet: exactly the §5.4 point. *)
  | Ok _ -> Alcotest.fail "write reached the store before flush");
  ignore (ok (Pagestore.flush ps));
  Alcotest.(check int) "clean after flush" 0 (Pagestore.dirty_count ps);
  match store.Store.read b with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "not durable after flush: %s" msg

let test_write_through_immediate () =
  let store, ps = fresh () in
  let b = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write_through ps b (page_with_data "now")));
  Alcotest.(check int) "not dirty" 0 (Pagestore.dirty_count ps);
  match store.Store.read b with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "not durable: %s" msg

let test_flush_block_single () =
  let _, ps = fresh () in
  let b1 = ok (Pagestore.allocate ps) in
  let b2 = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write ps b1 (page_with_data "one")));
  ignore (ok (Pagestore.write ps b2 (page_with_data "two")));
  ignore (ok (Pagestore.flush_block ps b1));
  Alcotest.(check int) "one still dirty" 1 (Pagestore.dirty_count ps)

let test_crash_loses_unflushed () =
  let _, ps = fresh () in
  let b = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write ps b (page_with_data "will vanish")));
  Pagestore.drop_volatile ps;
  Alcotest.(check int) "dirty gone" 0 (Pagestore.dirty_count ps);
  match Pagestore.read ps b with
  | Error (Errors.Store_failure _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "unflushed write survived the crash"

let test_crash_keeps_flushed () =
  let _, ps = fresh () in
  let b = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write ps b (page_with_data "durable")));
  ignore (ok (Pagestore.flush ps));
  Pagestore.drop_volatile ps;
  Alcotest.(check string) "reloaded from store" "durable" (read_data ps b)

let test_page_too_large () =
  let _, ps = fresh () in
  let b = ok (Pagestore.allocate ps) in
  match Pagestore.write ps b (page_with_data (String.make 2000 'x')) with
  | Error (Errors.Page_too_large { limit = 1024; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok () -> Alcotest.fail "oversized page accepted"

let test_overwrite_dirty_keeps_one_dirty_count () =
  let _, ps = fresh () in
  let b = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write ps b (page_with_data "a")));
  ignore (ok (Pagestore.write ps b (page_with_data "b")));
  Alcotest.(check int) "counted once" 1 (Pagestore.dirty_count ps);
  Alcotest.(check string) "latest wins" "b" (read_data ps b)

let test_invalidate () =
  let store, ps = fresh () in
  let b = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write_through ps b (page_with_data "v1")));
  (* Another server writes the block behind our back. *)
  (match store.Store.write b (Page.encode (page_with_data "v2")) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check string) "stale cache serves v1" "v1" (read_data ps b);
  Pagestore.invalidate ps b;
  Alcotest.(check string) "fresh after invalidate" "v2" (read_data ps b)

let test_invalidate_dirty_discards () =
  let _, ps = fresh () in
  let b = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write ps b (page_with_data "doomed")));
  Pagestore.invalidate ps b;
  Alcotest.(check int) "dirty count adjusted" 0 (Pagestore.dirty_count ps)

let test_free_drops_cache () =
  let _, ps = fresh () in
  let b = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write ps b (page_with_data "x")));
  Pagestore.free ps b;
  match Pagestore.read ps b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "freed block still readable"

let test_uncached_mode () =
  let store, ps = fresh ~cache:false () in
  let b = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write ps b (page_with_data "direct")));
  Alcotest.(check int) "never dirty" 0 (Pagestore.dirty_count ps);
  (match store.Store.read b with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "write-through failed: %s" msg);
  Alcotest.(check string) "reads via store" "direct" (read_data ps b)

let test_decode_error_surfaces () =
  let store, ps = fresh () in
  let b = ok (Pagestore.allocate ps) in
  (match store.Store.write b (bytes "garbage block") with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  match Pagestore.read ps b with
  | Error (Errors.Store_failure _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "decoded garbage"

let test_locks_pass_through () =
  let _, ps = fresh () in
  let b = ok (Pagestore.allocate ps) in
  Alcotest.(check bool) "first lock" true (Pagestore.lock ps b);
  Alcotest.(check bool) "second denied" false (Pagestore.lock ps b);
  Pagestore.unlock ps b;
  Alcotest.(check bool) "relock after unlock" true (Pagestore.lock ps b)

(* {2 Bounded capacity: eviction, write-back, pinning} *)

let test_eviction_writes_back_dirty () =
  let store, ps = fresh ~capacity:2 () in
  let blocks = List.init 4 (fun i -> (i, ok (Pagestore.allocate ps))) in
  List.iter
    (fun (i, b) -> ignore (ok (Pagestore.write ps b (page_with_data (Printf.sprintf "d%d" i)))))
    blocks;
  (* Capacity 2, four dirty inserts: two evictions, each written back. *)
  Alcotest.(check int) "evictions" 2 (counter ps "cache.evictions");
  Alcotest.(check int) "writebacks" 2 (counter ps "cache.writebacks");
  Alcotest.(check int) "dirty entries left" 2 (Pagestore.dirty_count ps);
  (* The evicted writes reached the store without any flush. *)
  let b0 = List.assoc 0 blocks in
  (match store.Store.read b0 with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "evicted dirty block not written back: %s" msg);
  (* Re-reading the evictee is a miss but sees the written-back data. *)
  Alcotest.(check string) "write-back preserved data" "d0" (read_data ps b0)

let test_eviction_order_is_lru () =
  let _, ps = fresh ~capacity:2 () in
  let b0 = ok (Pagestore.allocate ps) in
  let b1 = ok (Pagestore.allocate ps) in
  let b2 = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write ps b0 (page_with_data "a")));
  ignore (ok (Pagestore.write ps b1 (page_with_data "b")));
  ignore (read_data ps b0) (* touch b0: b1 becomes the LRU *);
  let m0 = counter ps "cache.misses" in
  ignore (ok (Pagestore.write ps b2 (page_with_data "c")));
  ignore (read_data ps b0);
  Alcotest.(check int) "b0 still cached after b2 insert" m0 (counter ps "cache.misses");
  ignore (read_data ps b1);
  Alcotest.(check int) "b1 was the evictee" (m0 + 1) (counter ps "cache.misses")

let test_locked_block_never_evicted () =
  let _, ps = fresh ~capacity:1 () in
  let b0 = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write ps b0 (page_with_data "pinned")));
  Alcotest.(check bool) "lock" true (Pagestore.lock ps b0);
  (* Push many other blocks through the one-slot cache. *)
  for i = 1 to 5 do
    let b = ok (Pagestore.allocate ps) in
    ignore (ok (Pagestore.write ps b (page_with_data (string_of_int i))))
  done;
  let h0 = counter ps "cache.hits" in
  Alcotest.(check string) "pinned entry survived" "pinned" (read_data ps b0);
  Alcotest.(check int) "served from cache" (h0 + 1) (counter ps "cache.hits");
  Pagestore.unlock ps b0;
  (* Unpinned now: the next insert evicts it (write-back keeps the data). *)
  let b = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write ps b (page_with_data "x")));
  let m0 = counter ps "cache.misses" in
  Alcotest.(check string) "data survives via write-back" "pinned" (read_data ps b0);
  Alcotest.(check int) "read after unlock misses" (m0 + 1) (counter ps "cache.misses")

let test_hit_miss_counters () =
  let _, ps = fresh () in
  let b = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write_through ps b (page_with_data "x")));
  Pagestore.invalidate ps b;
  ignore (read_data ps b);
  ignore (read_data ps b);
  Alcotest.(check int) "one miss" 1 (counter ps "cache.misses");
  Alcotest.(check int) "one hit" 1 (counter ps "cache.hits")

let test_flush_then_evict_no_second_write () =
  let _, ps = fresh ~capacity:1 () in
  let b0 = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write ps b0 (page_with_data "v")));
  ignore (ok (Pagestore.flush ps));
  (* Clean after flush: evicting it must not write back again. *)
  let b1 = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write ps b1 (page_with_data "w")));
  Alcotest.(check int) "no write-back of clean evictee" 0 (counter ps "cache.writebacks");
  Alcotest.(check int) "evicted" 1 (counter ps "cache.evictions")

(* {2 Encode-once: each page value is serialised at most once} *)

let encodes_during f =
  let before = Page.fresh_encodes () in
  f ();
  Page.fresh_encodes () - before

let test_one_encode_per_write () =
  let _, ps = fresh () in
  let blocks = List.init 3 (fun _ -> ok (Pagestore.allocate ps)) in
  let n =
    encodes_during (fun () ->
        List.iteri
          (fun i b -> ignore (ok (Pagestore.write ps b (page_with_data (string_of_int i)))))
          blocks;
        ignore (ok (Pagestore.flush ps)))
  in
  Alcotest.(check int) "one encode per written page" 3 n;
  Alcotest.(check int) "second flush encodes nothing" 0
    (encodes_during (fun () -> ignore (ok (Pagestore.flush ps))))

let test_one_encode_write_through () =
  let _, ps = fresh () in
  let b = ok (Pagestore.allocate ps) in
  let n =
    encodes_during (fun () -> ignore (ok (Pagestore.write_through ps b (page_with_data "x"))))
  in
  (* The historical bug this guards against: [write_through] used to pay
     one encode for the size check and a second for the store write. *)
  Alcotest.(check int) "write_through encodes exactly once" 1 n

let test_batch_encodes_k () =
  let _, ps = fresh () in
  let entries =
    List.init 4 (fun i -> (ok (Pagestore.allocate ps), page_with_data (string_of_int i)))
  in
  let n = encodes_during (fun () -> ignore (ok (Pagestore.write_through_batch ps entries))) in
  Alcotest.(check int) "batch of k encodes k" 4 n

let test_faulted_page_rewrites_free () =
  let _, ps = fresh () in
  let b = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write_through ps b (page_with_data "v")));
  Pagestore.drop_volatile ps;
  (* Fault the page in (decode seeds the memo), write the same value back
     and flush: the round trip must not serialise at all. *)
  let n =
    encodes_during (fun () ->
        let p = ok (Pagestore.read ps b) in
        ignore (ok (Pagestore.write ps b p));
        ignore (ok (Pagestore.flush ps)))
  in
  Alcotest.(check int) "fault-in/flush-out costs zero encodes" 0 n

let test_refresh_revalidates_in_place () =
  let _, ps = fresh () in
  let b = ok (Pagestore.allocate ps) in
  ignore (ok (Pagestore.write_through ps b (page_with_data "same")));
  let p0 = ok (Pagestore.read ps b) in
  Pagestore.refresh ps b;
  let m0 = counter ps "cache.misses" in
  let p1 = ok (Pagestore.read ps b) in
  (* The store image is unchanged, so revalidation must reuse the decoded
     page (physically: the memo comparison short-circuits the decode) while
     still accounting the store round trip as a miss. *)
  Alcotest.(check bool) "same decoded page reused" true (p0 == p1);
  Alcotest.(check int) "revalidation counts as a miss" (m0 + 1) (counter ps "cache.misses");
  let h0 = counter ps "cache.hits" in
  ignore (ok (Pagestore.read ps b));
  Alcotest.(check int) "entry is fresh again" (h0 + 1) (counter ps "cache.hits")

(* {2 Property: cached reads ≡ decode-from-image, under random eviction} *)

(* Drive a tiny (capacity 2) pagestore with random writes, reads, flushes
   and stale-markings over 6 blocks, mirroring every write in a plain
   model map. Whatever the eviction/revalidation sequence did, a read must
   return a page structurally equal to the model's last write, and after a
   final flush the store image must decode to the same value. *)
let prop_cache_reads_equal_model =
  let open QCheck2 in
  let nblocks = 6 in
  let op_gen =
    Gen.(
      oneof
        [
          map2 (fun b s -> `Write (b, s)) (int_bound (nblocks - 1)) (small_string ~gen:printable);
          map (fun b -> `Read b) (int_bound (nblocks - 1));
          return `Flush;
          map (fun b -> `Refresh b) (int_bound (nblocks - 1));
          map (fun b -> `Invalidate b) (int_bound (nblocks - 1));
        ])
  in
  Test.make ~name:"cached reads = decode-from-image under random eviction" ~count:200
    Gen.(list_size (int_range 1 60) op_gen)
    (fun ops ->
      let store = Store.memory ~block_size:1024 () in
      let ps = Pagestore.create ~capacity:2 store in
      let blocks = Array.init nblocks (fun _ -> ok (Pagestore.allocate ps)) in
      let model = Array.make nblocks None in
      (* Seed every block so reads are always defined. *)
      Array.iteri
        (fun i b ->
          let p = page_with_data (Printf.sprintf "init%d" i) in
          ignore (ok (Pagestore.write_through ps b p));
          model.(i) <- Some p)
        blocks;
      List.iter
        (function
          | `Write (i, s) ->
              let p = page_with_data s in
              ignore (ok (Pagestore.write ps blocks.(i) p));
              model.(i) <- Some p
          | `Read i -> (
              let p = ok (Pagestore.read ps blocks.(i)) in
              match model.(i) with
              | Some m when Page.equal p m -> ()
              | _ -> Test.fail_reportf "read of block %d diverged from model" i)
          | `Flush -> ignore (ok (Pagestore.flush ps))
          | `Refresh i -> Pagestore.refresh ps blocks.(i)
          | `Invalidate i ->
              Pagestore.invalidate ps blocks.(i);
              (* Invalidate discards a pending dirty write (§3.1: the commit
                 path trusts nothing unread) — the durable image wins. *)
              model.(i) <-
                (match Page.decode (Helpers.ok_str (store.Store.read blocks.(i))) with
                | Ok p -> Some p
                | Error _ -> model.(i)))
        ops;
      ignore (ok (Pagestore.flush ps));
      Array.iteri
        (fun i b ->
          let cached = ok (Pagestore.read ps b) in
          let durable =
            match Page.decode (Helpers.ok_str (store.Store.read b)) with
            | Ok p -> p
            | Error msg -> Test.fail_reportf "store image undecodable: %s" msg
          in
          match model.(i) with
          | Some m ->
              if not (Page.equal cached m) then
                Test.fail_reportf "final cached read of block %d diverged" i;
              if not (Page.equal durable m) then
                Test.fail_reportf "final store image of block %d diverged" i
          | None -> ())
        blocks;
      true)

let () =
  Alcotest.run "pagestore"
    [
      ( "write-back cache",
        [
          quick "write/read cached" test_write_read_cached;
          quick "writes deferred until flush" test_write_is_deferred;
          quick "write_through immediate" test_write_through_immediate;
          quick "flush single block" test_flush_block_single;
          quick "crash loses unflushed" test_crash_loses_unflushed;
          quick "crash keeps flushed" test_crash_keeps_flushed;
          quick "overwrite dirty counted once" test_overwrite_dirty_keeps_one_dirty_count;
          quick "uncached mode" test_uncached_mode;
        ] );
      ( "coherence",
        [
          quick "invalidate" test_invalidate;
          quick "invalidate dirty" test_invalidate_dirty_discards;
          quick "free drops cache" test_free_drops_cache;
        ] );
      ( "bounded capacity",
        [
          quick "dirty eviction writes back" test_eviction_writes_back_dirty;
          quick "eviction order is LRU" test_eviction_order_is_lru;
          quick "locked block never evicted" test_locked_block_never_evicted;
          quick "hit/miss counters" test_hit_miss_counters;
          quick "clean evictee not rewritten" test_flush_then_evict_no_second_write;
        ] );
      ( "errors",
        [
          quick "page too large" test_page_too_large;
          quick "decode error surfaces" test_decode_error_surfaces;
          quick "locks pass through" test_locks_pass_through;
        ] );
      ( "encode-once",
        [
          quick "one encode per write" test_one_encode_per_write;
          quick "write_through encodes once" test_one_encode_write_through;
          quick "batch of k encodes k" test_batch_encodes_k;
          quick "fault-in/flush-out is encode-free" test_faulted_page_rewrites_free;
          quick "refresh revalidates in place" test_refresh_revalidates_in_place;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_cache_reads_equal_model ] );
    ]
