(* The bounded LRU index under Pagestore's write-back cache: recency
   order, pinning, and the owner-driven eviction protocol. *)

module Lru = Afs_util.Lru

let candidate l =
  match Lru.lru_unpinned l with Some (k, _) -> Some k | None -> None

let test_set_find_promotes () =
  let l = Lru.create ~capacity:8 in
  Lru.set l 1 "a";
  Lru.set l 2 "b";
  Lru.set l 3 "c";
  Alcotest.(check (option string)) "find" (Some "a") (Lru.find l 1);
  (* 1 was just used: the eviction candidate is now 2. *)
  Alcotest.(check (option int)) "lru after find" (Some 2) (candidate l)

let test_peek_does_not_promote () =
  let l = Lru.create ~capacity:8 in
  Lru.set l 1 "a";
  Lru.set l 2 "b";
  Alcotest.(check (option string)) "peek" (Some "a") (Lru.peek l 1);
  Alcotest.(check (option int)) "lru unchanged" (Some 1) (candidate l)

let test_replace_promotes () =
  let l = Lru.create ~capacity:8 in
  Lru.set l 1 "a";
  Lru.set l 2 "b";
  Lru.set l 1 "a2";
  Alcotest.(check int) "length" 2 (Lru.length l);
  Alcotest.(check (option string)) "replaced" (Some "a2") (Lru.find l 1);
  Alcotest.(check (option int)) "2 became lru" (Some 2) (candidate l)

let test_never_self_evicts () =
  let l = Lru.create ~capacity:2 in
  Lru.set l 1 "a";
  Lru.set l 2 "b";
  Lru.set l 3 "c";
  Alcotest.(check int) "over capacity until drained" 3 (Lru.length l);
  Alcotest.(check bool) "needs eviction" true (Lru.needs_eviction l);
  (* The owner drains. *)
  (match candidate l with
  | Some k -> Lru.remove l k
  | None -> Alcotest.fail "expected a candidate");
  Alcotest.(check int) "drained" 2 (Lru.length l);
  Alcotest.(check bool) "within capacity" false (Lru.needs_eviction l)

let test_pin_skips_candidate () =
  let l = Lru.create ~capacity:2 in
  Lru.set l 1 "a";
  Lru.set l 2 "b";
  Lru.set l 3 "c";
  Alcotest.(check bool) "pin oldest" true (Lru.pin l 1);
  Alcotest.(check (option int)) "candidate skips pinned" (Some 2) (candidate l);
  Lru.unpin l 1;
  Alcotest.(check (option int)) "unpinned is candidate again" (Some 1) (candidate l)

let test_all_pinned () =
  let l = Lru.create ~capacity:1 in
  Lru.set l 1 "a";
  Lru.set l 2 "b";
  ignore (Lru.pin l 1);
  ignore (Lru.pin l 2);
  Alcotest.(check (option int)) "no candidate when all pinned" None (candidate l);
  Lru.unpin l 2;
  Alcotest.(check (option int)) "candidate reappears" (Some 2) (candidate l)

let test_pin_absent () =
  let l = Lru.create ~capacity:2 in
  Alcotest.(check bool) "pin of absent key" false (Lru.pin l 42)

let test_remove_and_clear () =
  let l = Lru.create ~capacity:4 in
  Lru.set l 1 "a";
  Lru.set l 2 "b";
  Lru.remove l 1;
  Alcotest.(check bool) "removed" false (Lru.mem l 1);
  Alcotest.(check int) "length" 1 (Lru.length l);
  Lru.clear l;
  Alcotest.(check int) "cleared" 0 (Lru.length l);
  Alcotest.(check (option int)) "no candidate" None (candidate l)

let test_fold_recency_order () =
  let l = Lru.create ~capacity:8 in
  Lru.set l 1 "a";
  Lru.set l 2 "b";
  Lru.set l 3 "c";
  ignore (Lru.find l 1);
  let order = List.rev (Lru.fold (fun k _ acc -> k :: acc) l []) in
  Alcotest.(check (list int)) "MRU first" [ 1; 3; 2 ] order

let test_eviction_sequence () =
  (* Fill far past capacity, draining after each insert like Pagestore
     does: exactly the oldest unpinned entries disappear. *)
  let l = Lru.create ~capacity:3 in
  for k = 1 to 10 do
    Lru.set l k (string_of_int k);
    while Lru.needs_eviction l do
      match candidate l with
      | Some victim -> Lru.remove l victim
      | None -> Alcotest.fail "unpinned candidate expected"
    done
  done;
  let keys = List.sort compare (Lru.fold (fun k _ acc -> k :: acc) l []) in
  Alcotest.(check (list int)) "newest 3 survive" [ 8; 9; 10 ] keys

let test_invalid_capacity () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Lru.create: capacity must be positive")
    (fun () -> ignore (Lru.create ~capacity:0))

let () =
  Alcotest.run "lru"
    [
      ( "basics",
        [
          Helpers.quick "set/find promotes" test_set_find_promotes;
          Helpers.quick "peek does not promote" test_peek_does_not_promote;
          Helpers.quick "replace promotes" test_replace_promotes;
          Helpers.quick "remove and clear" test_remove_and_clear;
          Helpers.quick "fold is recency order" test_fold_recency_order;
          Helpers.quick "invalid capacity" test_invalid_capacity;
        ] );
      ( "eviction protocol",
        [
          Helpers.quick "never self-evicts" test_never_self_evicts;
          Helpers.quick "pin skips candidate" test_pin_skips_candidate;
          Helpers.quick "all pinned" test_all_pinned;
          Helpers.quick "pin of absent key" test_pin_absent;
          Helpers.quick "eviction sequence" test_eviction_sequence;
        ] );
    ]
