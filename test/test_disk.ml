open Afs_disk

let quick = Helpers.quick
let bytes = Helpers.bytes

let fresh ?(media = Media.magnetic) ?(blocks = 64) ?(block_size = 1024) () =
  Disk.create ~media ~blocks ~block_size ()

let ok_outcome (o : 'a Disk.outcome) =
  match o.Disk.result with
  | Ok v -> v
  | Error e -> Alcotest.failf "disk error: %s" (Fmt.str "%a" Disk.pp_error e)

let expect_err name pred (o : 'a Disk.outcome) =
  match o.Disk.result with
  | Ok _ -> Alcotest.failf "%s: expected error" name
  | Error e -> Alcotest.(check bool) name true (pred e)

(* {2 Media} *)

let test_media_ordering () =
  let b = 4096 in
  let e = Media.read_cost Media.electronic ~bytes:b in
  let m = Media.read_cost Media.magnetic ~bytes:b in
  let o = Media.read_cost Media.optical ~bytes:b in
  Alcotest.(check bool) "electronic < magnetic" true (e < m);
  Alcotest.(check bool) "magnetic < optical" true (m < o)

let test_media_write_once_flag () =
  Alcotest.(check bool) "optical write-once" true Media.optical.Media.write_once;
  Alcotest.(check bool) "magnetic rewritable" false Media.magnetic.Media.write_once

let test_media_cost_grows_with_bytes () =
  let small = Media.write_cost Media.magnetic ~bytes:512 in
  let large = Media.write_cost Media.magnetic ~bytes:32768 in
  Alcotest.(check bool) "linear growth" true (large > small)

(* {2 Basic I/O} *)

let test_write_read_roundtrip () =
  let d = fresh () in
  ignore (ok_outcome (Disk.write d 3 (bytes "hello")));
  let data = ok_outcome (Disk.read d 3) in
  Helpers.check_bytes "roundtrip" "hello" data

let test_read_never_written () =
  let d = fresh () in
  expect_err "never written" (function Disk.Never_written 5 -> true | _ -> false)
    (Disk.read d 5)

let test_out_of_range () =
  let d = fresh ~blocks:8 () in
  expect_err "read oob" (function Disk.Out_of_range _ -> true | _ -> false) (Disk.read d 8);
  expect_err "write oob" (function Disk.Out_of_range _ -> true | _ -> false)
    (Disk.write d (-1) (bytes "x"))

let test_write_too_large () =
  let d = fresh ~block_size:16 () in
  expect_err "too large" (function Disk.Too_large _ -> true | _ -> false)
    (Disk.write d 0 (Bytes.make 17 'x'))

let test_overwrite_magnetic () =
  let d = fresh () in
  ignore (ok_outcome (Disk.write d 0 (bytes "one")));
  ignore (ok_outcome (Disk.write d 0 (bytes "two")));
  Helpers.check_bytes "overwritten" "two" (ok_outcome (Disk.read d 0))

let test_write_once_enforced () =
  let d = fresh ~media:Media.optical () in
  ignore (ok_outcome (Disk.write d 0 (bytes "etched")));
  expect_err "overwrite refused" (function Disk.Write_once_violation 0 -> true | _ -> false)
    (Disk.write d 0 (bytes "nope"));
  expect_err "erase refused" (function Disk.Write_once_violation 0 -> true | _ -> false)
    (Disk.erase d 0);
  Helpers.check_bytes "original intact" "etched" (ok_outcome (Disk.read d 0))

let test_erase () =
  let d = fresh () in
  ignore (ok_outcome (Disk.write d 2 (bytes "x")));
  Alcotest.(check bool) "written" true (Disk.is_written d 2);
  ignore (ok_outcome (Disk.erase d 2));
  Alcotest.(check bool) "erased" false (Disk.is_written d 2)

let test_stored_image_isolated () =
  let d = fresh () in
  let buf = bytes "mutate-me" in
  ignore (ok_outcome (Disk.write d 0 buf));
  Bytes.set buf 0 'X';
  Helpers.check_bytes "store unaffected" "mutate-me" (ok_outcome (Disk.read d 0));
  let out = ok_outcome (Disk.read d 0) in
  Bytes.set out 0 'Y';
  Helpers.check_bytes "reader copy isolated" "mutate-me" (ok_outcome (Disk.read d 0))

(* {2 Fault injection} *)

let test_offline () =
  let d = fresh () in
  ignore (ok_outcome (Disk.write d 1 (bytes "x")));
  Disk.set_offline d true;
  expect_err "read offline" (function Disk.Offline -> true | _ -> false) (Disk.read d 1);
  expect_err "write offline" (function Disk.Offline -> true | _ -> false)
    (Disk.write d 1 (bytes "y"));
  Disk.set_offline d false;
  Helpers.check_bytes "back online, data intact" "x" (ok_outcome (Disk.read d 1))

let test_corrupt () =
  let d = fresh () in
  ignore (ok_outcome (Disk.write d 4 (bytes "abcdef")));
  Alcotest.(check bool) "corrupted" true (Disk.corrupt d 4 ~xor_byte:'\x01');
  let data = ok_outcome (Disk.read d 4) in
  Alcotest.(check bool) "silently differs" false (Bytes.equal data (bytes "abcdef"))

let test_corrupt_unwritten () =
  let d = fresh () in
  Alcotest.(check bool) "nothing to corrupt" false (Disk.corrupt d 0 ~xor_byte:'\x01')

let test_wipe () =
  let d = fresh () in
  ignore (ok_outcome (Disk.write d 0 (bytes "a")));
  ignore (ok_outcome (Disk.write d 1 (bytes "b")));
  Disk.wipe d;
  Alcotest.(check bool) "gone" false (Disk.is_written d 0);
  Alcotest.(check int) "in_use reset" 0 (Disk.stats d).Disk.blocks_in_use

(* {2 Accounting} *)

let test_stats_accumulate () =
  let d = fresh () in
  ignore (ok_outcome (Disk.write d 0 (bytes "0123456789")));
  ignore (ok_outcome (Disk.read d 0));
  ignore (ok_outcome (Disk.read d 0));
  let s = Disk.stats d in
  Alcotest.(check int) "writes" 1 s.Disk.writes;
  Alcotest.(check int) "reads" 2 s.Disk.reads;
  Alcotest.(check int) "bytes written" 10 s.Disk.bytes_written;
  Alcotest.(check int) "bytes read" 20 s.Disk.bytes_read;
  Alcotest.(check bool) "busy time" true (s.Disk.busy_ms > 0.0);
  Alcotest.(check int) "in use" 1 s.Disk.blocks_in_use;
  Disk.reset_stats d;
  Alcotest.(check int) "reset" 0 (Disk.stats d).Disk.reads

let test_cost_reported_per_op () =
  let d = fresh () in
  let w = Disk.write d 0 (bytes "x") in
  Alcotest.(check bool) "write cost positive" true (w.Disk.cost_ms > 0.0);
  let r = Disk.read d 0 in
  Alcotest.(check bool) "read cost positive" true (r.Disk.cost_ms > 0.0)

let test_create_rejects_bad_sizes () =
  Alcotest.check_raises "blocks" (Invalid_argument "Disk.create: blocks must be positive")
    (fun () -> ignore (Disk.create ~media:Media.magnetic ~blocks:0 ~block_size:1 ()));
  Alcotest.check_raises "size" (Invalid_argument "Disk.create: block_size must be positive")
    (fun () -> ignore (Disk.create ~media:Media.magnetic ~blocks:1 ~block_size:0 ()))

let () =
  Alcotest.run "disk"
    [
      ( "media",
        [
          quick "latency ordering" test_media_ordering;
          quick "write-once flag" test_media_write_once_flag;
          quick "cost grows with bytes" test_media_cost_grows_with_bytes;
        ] );
      ( "io",
        [
          quick "write/read roundtrip" test_write_read_roundtrip;
          quick "read never written" test_read_never_written;
          quick "out of range" test_out_of_range;
          quick "write too large" test_write_too_large;
          quick "overwrite on magnetic" test_overwrite_magnetic;
          quick "write-once enforced" test_write_once_enforced;
          quick "erase" test_erase;
          quick "stored images isolated" test_stored_image_isolated;
        ] );
      ( "faults",
        [
          quick "offline" test_offline;
          quick "corrupt" test_corrupt;
          quick "corrupt unwritten" test_corrupt_unwritten;
          quick "wipe" test_wipe;
        ] );
      ( "accounting",
        [
          quick "stats accumulate" test_stats_accumulate;
          quick "per-op cost" test_cost_reported_per_op;
          quick "create rejects bad sizes" test_create_rejects_bad_sizes;
        ] );
    ]
