open Afs_sim

let quick = Helpers.quick

(* {2 Engine} *)

let test_event_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.at e 5.0 (fun () -> log := 5 :: !log);
  Engine.at e 1.0 (fun () -> log := 1 :: !log);
  Engine.at e 3.0 (fun () -> log := 3 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 3; 5 ] (List.rev !log)

let test_fifo_at_equal_times () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 10 do
    Engine.at e 1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "schedule order" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !log)

let test_clock_advances () =
  let e = Engine.create () in
  let seen = ref 0.0 in
  Engine.at e 7.5 (fun () -> seen := Engine.now e);
  Engine.run e;
  Alcotest.(check bool) "clock at event time" true (!seen = 7.5);
  Alcotest.(check bool) "clock stays" true (Engine.now e = 7.5)

let test_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.at e 1.0 (fun () ->
      log := "a" :: !log;
      Engine.at e 1.0 (fun () -> log := "b" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "a"; "b" ] (List.rev !log);
  Alcotest.(check bool) "time 2.0" true (Engine.now e = 2.0)

let test_run_until () =
  let e = Engine.create () in
  let fired = ref [] in
  Engine.at e 1.0 (fun () -> fired := 1 :: !fired);
  Engine.at e 10.0 (fun () -> fired := 10 :: !fired);
  Engine.run ~until:5.0 e;
  Alcotest.(check (list int)) "only early event" [ 1 ] !fired;
  Alcotest.(check bool) "clock at limit" true (Engine.now e = 5.0);
  Alcotest.(check int) "one pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check (list int)) "rest fired" [ 10; 1 ] !fired

let test_negative_delay_rejected () =
  let e = Engine.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Engine.at: negative delay") (fun () ->
      Engine.at e (-1.0) ignore)

let test_step () =
  let e = Engine.create () in
  Engine.at e 1.0 ignore;
  Alcotest.(check bool) "step true" true (Engine.step e);
  Alcotest.(check bool) "step false on empty" false (Engine.step e);
  Alcotest.(check int) "executed" 1 (Engine.events_executed e)

let test_many_events_heap () =
  let e = Engine.create () in
  let rng = Afs_util.Xrng.create 1 in
  let last = ref (-1.0) in
  let monotone = ref true in
  for _ = 1 to 2000 do
    Engine.at e (Afs_util.Xrng.float rng 1000.0) (fun () ->
        if Engine.now e < !last then monotone := false;
        last := Engine.now e)
  done;
  Engine.run e;
  Alcotest.(check bool) "heap keeps time order" true !monotone;
  Alcotest.(check int) "all executed" 2000 (Engine.events_executed e)

(* {2 Proc} *)

let test_delay_advances_time () =
  let e = Engine.create () in
  let finished_at = ref 0.0 in
  let _ =
    Proc.spawn e (fun () ->
        Proc.delay 3.0;
        Proc.delay 4.0;
        finished_at := Engine.now e)
  in
  Engine.run e;
  Alcotest.(check bool) "7.0" true (!finished_at = 7.0)

let test_two_procs_interleave () =
  let e = Engine.create () in
  let log = ref [] in
  let mk name d =
    ignore
      (Proc.spawn ~name e (fun () ->
           for i = 1 to 3 do
             Proc.delay d;
             log := (name, i, Engine.now e) :: !log
           done))
  in
  mk "fast" 1.0;
  mk "slow" 2.5;
  Engine.run e;
  let order = List.rev_map (fun (n, i, _) -> (n, i)) !log in
  Alcotest.(check (list (pair string int)))
    "interleaving"
    [ ("fast", 1); ("fast", 2); ("slow", 1); ("fast", 3); ("slow", 2); ("slow", 3) ]
    order

let test_blocking_outside_process_rejected () =
  Alcotest.check_raises "outside"
    (Invalid_argument "Proc: blocking operation outside a process")
    (fun () -> Proc.delay 1.0)

let test_kill_before_start () =
  let e = Engine.create () in
  let ran = ref false in
  let h = Proc.spawn e (fun () -> ran := true) in
  Proc.kill h;
  Engine.run e;
  Alcotest.(check bool) "never ran" false !ran

let test_kill_while_parked () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  let reached = ref false in
  let h =
    Proc.spawn e (fun () ->
        ignore (Ivar.read iv);
        reached := true)
  in
  Engine.at e 1.0 (fun () -> Proc.kill h);
  Engine.at e 2.0 (fun () -> Ivar.fill iv ());
  Engine.run e;
  Alcotest.(check bool) "continuation discarded" false !reached;
  Alcotest.(check bool) "not alive" false (Proc.alive h)

let test_joinable () =
  let e = Engine.create () in
  let done_count = ref 0 in
  let spawn_joined, join_all = Proc.joinable e in
  for i = 1 to 5 do
    ignore
      (spawn_joined (fun () ->
           Proc.delay (float_of_int i);
           incr done_count))
  done;
  let joined_at = ref (-1.0) in
  let _ =
    Proc.spawn e (fun () ->
        join_all ();
        joined_at := Engine.now e)
  in
  Engine.run e;
  Alcotest.(check int) "all done" 5 !done_count;
  Alcotest.(check bool) "join waited for slowest" true (!joined_at = 5.0)

(* {2 Ivar} *)

let test_ivar_fill_then_read () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  Ivar.fill iv 42;
  let got = ref 0 in
  let _ = Proc.spawn e (fun () -> got := Ivar.read iv) in
  Engine.run e;
  Alcotest.(check int) "immediate" 42 !got

let test_ivar_read_blocks () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  let got_at = ref (-1.0) in
  let _ =
    Proc.spawn e (fun () ->
        let v = Ivar.read iv in
        got_at := Engine.now e;
        Alcotest.(check int) "value" 7 v)
  in
  Engine.at e 3.0 (fun () -> Ivar.fill iv 7);
  Engine.run e;
  Alcotest.(check bool) "woke at fill" true (!got_at = 3.0)

let test_ivar_multiple_readers () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  let sum = ref 0 in
  for _ = 1 to 3 do
    ignore (Proc.spawn e (fun () -> sum := !sum + Ivar.read iv))
  done;
  Engine.at e 1.0 (fun () -> Ivar.fill iv 5);
  Engine.run e;
  Alcotest.(check int) "all woken" 15 !sum

let test_ivar_double_fill () =
  let iv = Ivar.create () in
  Ivar.fill iv 1;
  Alcotest.(check bool) "try_fill false" false (Ivar.try_fill iv 2);
  Alcotest.check_raises "fill raises" (Invalid_argument "Ivar.fill: already filled") (fun () ->
      Ivar.fill iv 3);
  Alcotest.(check (option int)) "first value kept" (Some 1) (Ivar.peek iv)

(* {2 Channel} *)

let test_channel_buffered () =
  let e = Engine.create () in
  let ch = Channel.create () in
  Channel.send ch 1;
  Channel.send ch 2;
  Alcotest.(check int) "queued" 2 (Channel.length ch);
  let got = ref [] in
  let _ =
    Proc.spawn e (fun () ->
        let first = Channel.recv ch in
        let second = Channel.recv ch in
        got := [ first; second ])
  in
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2 ] !got

let test_channel_blocking_recv () =
  let e = Engine.create () in
  let ch = Channel.create () in
  let got_at = ref (-1.0) in
  let _ =
    Proc.spawn e (fun () ->
        let v = Channel.recv ch in
        got_at := Engine.now e;
        Alcotest.(check int) "value" 9 v)
  in
  Engine.at e 2.0 (fun () -> Channel.send ch 9);
  Engine.run e;
  Alcotest.(check bool) "woken at send" true (!got_at = 2.0)

let test_channel_try_recv () =
  let ch = Channel.create () in
  Alcotest.(check (option int)) "empty" None (Channel.try_recv ch);
  Channel.send ch 4;
  Alcotest.(check (option int)) "value" (Some 4) (Channel.try_recv ch)

let test_channel_clear () =
  let ch = Channel.create () in
  Channel.send ch 1;
  Channel.send ch 2;
  Alcotest.(check (list int)) "drained" [ 1; 2 ] (Channel.clear ch);
  Alcotest.(check int) "empty" 0 (Channel.length ch)

let test_producer_consumer_pipeline () =
  let e = Engine.create () in
  let ch = Channel.create () in
  let consumed = ref [] in
  let _ =
    Proc.spawn ~name:"producer" e (fun () ->
        for i = 1 to 20 do
          Proc.delay 1.0;
          Channel.send ch i
        done)
  in
  let _ =
    Proc.spawn ~name:"consumer" e (fun () ->
        for _ = 1 to 20 do
          let v = Channel.recv ch in
          Proc.delay 0.5;
          consumed := v :: !consumed
        done)
  in
  Engine.run e;
  Alcotest.(check int) "all consumed" 20 (List.length !consumed);
  Alcotest.(check (list int)) "in order" (List.init 20 (fun i -> 20 - i)) !consumed

(* The drain loop must not allocate per event beyond a small constant:
   [Engine.run] used to build a [Some]/tuple per pop, which at millions
   of events per bench run was measurable GC traffic. Thunks are
   pre-scheduled (their allocation happens before the measurement), and
   the shared callback closes over nothing fresh. *)
let test_drain_allocation_bounded () =
  let engine = Engine.create () in
  let n = 50_000 in
  let hits = ref 0 in
  let tick () = incr hits in
  for i = 0 to n - 1 do
    Engine.at engine (float_of_int (i mod 97)) tick
  done;
  let before = Gc.minor_words () in
  Engine.run engine;
  let words = Gc.minor_words () -. before in
  Alcotest.(check int) "all events ran" n !hits;
  let per_event = words /. float_of_int n in
  if per_event > 4.0 then
    Alcotest.failf "drain loop allocates %.1f words/event (want O(1), < 4)" per_event

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          quick "event ordering" test_event_ordering;
          quick "fifo at equal times" test_fifo_at_equal_times;
          quick "clock advances" test_clock_advances;
          quick "nested scheduling" test_nested_scheduling;
          quick "run until" test_run_until;
          quick "negative delay rejected" test_negative_delay_rejected;
          quick "step" test_step;
          quick "heap stress" test_many_events_heap;
          quick "drain loop allocates O(1) per event" test_drain_allocation_bounded;
        ] );
      ( "proc",
        [
          quick "delay advances time" test_delay_advances_time;
          quick "interleaving" test_two_procs_interleave;
          quick "blocking outside process" test_blocking_outside_process_rejected;
          quick "kill before start" test_kill_before_start;
          quick "kill while parked" test_kill_while_parked;
          quick "joinable" test_joinable;
        ] );
      ( "ivar",
        [
          quick "fill then read" test_ivar_fill_then_read;
          quick "read blocks" test_ivar_read_blocks;
          quick "multiple readers" test_ivar_multiple_readers;
          quick "double fill" test_ivar_double_fill;
        ] );
      ( "channel",
        [
          quick "buffered" test_channel_buffered;
          quick "blocking recv" test_channel_blocking_recv;
          quick "try_recv" test_channel_try_recv;
          quick "clear" test_channel_clear;
          quick "producer/consumer" test_producer_consumer_pipeline;
        ] );
    ]
