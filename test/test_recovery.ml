(* End-to-end crash recovery: the paper's headline operational claim.

   "With optimistic concurrency control, the file system is always in a
   consistent state. After a crash, there is no necessity for recovery: no
   rollback is required, no locks have to be cleared, no intentions lists
   have to be carried out." (§6)

   These tests crash servers at adversarial points and verify that the
   committed state is always intact, that a fresh server rebuilds its file
   table from raw blocks alone, and that clients only ever need to redo
   their unfinished update. *)

open Afs_core
module Block_server = Afs_block.Block_server
module Stable_pair = Afs_stable.Stable_pair
module Disk = Afs_disk.Disk
module Media = Afs_disk.Media
module P = Afs_util.Pagepath

let quick = Helpers.quick
let bytes = Helpers.bytes
let ok = Helpers.ok
let path = Helpers.path

let commit_write srv f p s =
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (path p) (bytes s));
  ok (Server.commit srv v)

(* {2 Crash points around commit} *)

let test_crash_before_commit_loses_only_the_update () =
  let store, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 3 in
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v (path [ 0 ]) (bytes "unfinished"));
  Server.crash srv;
  (* Same store, fresh server process. *)
  let srv2 = Server.create ~seed:7 store in
  ignore (ok (Server.recover_from_blocks srv2 (Helpers.ok_str (store.Store.list_blocks ()))));
  (match Server.list_files srv2 with
  | [ fc ] ->
      let cur = ok (Server.current_version srv2 fc) in
      Helpers.check_bytes "committed state intact" "p0"
        (ok (Server.read_page srv2 cur (path [ 0 ])));
      (* The client redoes; no rollback was ever run. *)
      commit_write srv2 fc [ 0 ] "redone";
      let cur = ok (Server.current_version srv2 fc) in
      Helpers.check_bytes "redo lands" "redone" (ok (Server.read_page srv2 cur (path [ 0 ])))
  | l -> Alcotest.failf "expected 1 file, got %d" (List.length l))

let test_crash_after_commit_preserves_update () =
  let store, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 3 in
  commit_write srv f [ 1 ] "durable";
  Server.crash srv;
  let srv2 = Server.create ~seed:7 store in
  ignore (ok (Server.recover_from_blocks srv2 (Helpers.ok_str (store.Store.list_blocks ()))));
  match Server.list_files srv2 with
  | [ fc ] ->
      let cur = ok (Server.current_version srv2 fc) in
      Helpers.check_bytes "committed update survived" "durable"
        (ok (Server.read_page srv2 cur (path [ 1 ])))
  | l -> Alcotest.failf "expected 1 file, got %d" (List.length l)

let test_recovery_finds_many_files_and_chains () =
  let store, srv = Helpers.fresh_server () in
  let files = Array.init 5 (fun i -> ok (Server.create_file srv ~data:(bytes (Printf.sprintf "f%d" i)) ())) in
  Array.iteri (fun i f -> for r = 1 to i + 1 do commit_write srv f [] (Printf.sprintf "f%d-r%d" i r) done) files;
  Server.crash srv;
  let srv2 = Server.create ~seed:7 store in
  Alcotest.(check int) "five files" 5
    (ok (Server.recover_from_blocks srv2 (Helpers.ok_str (store.Store.list_blocks ()))));
  Array.iteri
    (fun i f ->
      let chain = ok (Server.committed_chain srv2 f) in
      Alcotest.(check int) (Printf.sprintf "file %d chain" i) (i + 2) (List.length chain);
      let cur = ok (Server.current_version srv2 f) in
      Helpers.check_bytes "current content" (Printf.sprintf "f%d-r%d" i (i + 1))
        (ok (Server.read_page srv2 cur P.root)))
    files

let test_no_recovery_needed_for_reads () =
  (* A second server can serve reads over the same store immediately,
     without any recovery pass at all — capabilities name everything. *)
  let store, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 2 in
  Server.crash srv;
  let srv2 = Server.create ~seed:7 store in
  let cur = ok (Server.current_version srv2 f) in
  Helpers.check_bytes "instant service" "p1" (ok (Server.read_page srv2 cur (path [ 1 ])))

(* {2 Over a real block server} *)

let test_recovery_via_block_server_account_listing () =
  let disk = Disk.create ~media:Media.electronic ~blocks:256 ~block_size:32768 () in
  let bs = Block_server.create ~disk () in
  let account = 42 in
  let store = Store.of_block_server bs ~account in
  let srv = Server.create store in
  let f = Helpers.file_with_pages srv 3 in
  commit_write srv f [ 2 ] "on real blocks";
  ok (Pagestore.flush (Server.pagestore srv));
  Server.crash srv;
  Block_server.clear_locks bs;
  (* §4: the block server's recovery operation lists the account's blocks;
     the file server rebuilds from them. *)
  let srv2 = Server.create ~seed:7 store in
  let owned = Block_server.owned_blocks bs account in
  Alcotest.(check int) "one file" 1 (ok (Server.recover_from_blocks srv2 owned));
  match Server.list_files srv2 with
  | [ fc ] ->
      let cur = ok (Server.current_version srv2 fc) in
      Helpers.check_bytes "content back" "on real blocks"
        (ok (Server.read_page srv2 cur (path [ 2 ])))
  | l -> Alcotest.failf "expected 1 file, got %d" (List.length l)

(* {2 Over stable storage} *)

let test_file_service_survives_stable_disk_loss () =
  let pair = Stable_pair.create ~media:Media.electronic ~blocks:512 ~block_size:32768 () in
  let store = Store.of_stable_pair pair in
  let srv = Server.create store in
  let f = Helpers.file_with_pages srv 3 in
  commit_write srv f [ 0 ] "replicated";
  ok (Pagestore.flush (Server.pagestore srv));
  (* Lose one entire disk. *)
  Stable_pair.wipe_and_crash pair 0;
  Pagestore.drop_volatile (Server.pagestore srv);
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "served from companion" "replicated"
    (ok (Server.read_page srv cur (path [ 0 ])));
  (* Repair the lost disk and lose the OTHER one: data still there. *)
  (match (Stable_pair.restart pair 0).Stable_pair.result with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "restart: %s" (Fmt.str "%a" Stable_pair.pp_error e));
  Stable_pair.crash pair 1;
  Pagestore.drop_volatile (Server.pagestore srv);
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "served from repaired disk" "replicated"
    (ok (Server.read_page srv cur (path [ 0 ])))

let test_update_through_single_surviving_server () =
  let pair = Stable_pair.create ~media:Media.electronic ~blocks:512 ~block_size:32768 () in
  let store = Store.of_stable_pair pair in
  let srv = Server.create store in
  let f = Helpers.file_with_pages srv 2 in
  Stable_pair.crash pair 1;
  (* Updates continue against the surviving server, intentions pending. *)
  commit_write srv f [ 1 ] "written during outage";
  ok (Pagestore.flush (Server.pagestore srv));
  (match (Stable_pair.restart pair 1).Stable_pair.result with
  | Ok repaired -> Alcotest.(check bool) "catch-up repairs" true (repaired > 0)
  | Error e -> Alcotest.failf "restart: %s" (Fmt.str "%a" Stable_pair.pp_error e));
  (* Now serve everything from the previously-dead server. *)
  Stable_pair.crash pair 0;
  Pagestore.drop_volatile (Server.pagestore srv);
  let cur = ok (Server.current_version srv f) in
  Helpers.check_bytes "outage write present on companion" "written during outage"
    (ok (Server.read_page srv cur (path [ 1 ])))

(* {2 The C2 contrast: recovery work is zero} *)

let test_afs_recovery_work_is_zero () =
  let store, srv = Helpers.fresh_server () in
  let f = Helpers.file_with_pages srv 4 in
  (* Plenty of in-flight work at crash time. *)
  let versions = List.init 6 (fun _ -> ok (Server.create_version srv f)) in
  List.iteri (fun i v -> ok (Server.write_page srv v (path [ i mod 4 ]) (bytes "wip"))) versions;
  Server.crash srv;
  (* A fresh server serves the committed state with NO recovery actions:
     no locks cleared, no rollback, no intentions lists. Count the work. *)
  let srv2 = Server.create ~seed:7 store in
  let cur = ok (Server.current_version srv2 f) in
  Helpers.check_bytes "immediate consistent read" "p0"
    (ok (Server.read_page srv2 cur (path [ 0 ])));
  (* The only optional work is the table rebuild, and even that is lazy. *)
  Alcotest.(check int) "no rollback counter exists" 0
    (Afs_util.Stats.Counter.get (Server.counters srv2) "rollbacks")

let test_2pl_recovery_work_is_nonzero () =
  (* The same scenario against the locking baseline requires real work. *)
  let clock = ref 0.0 in
  let t = Afs_baseline.Twopl.create ~clock:(fun () -> !clock) () in
  let txns = List.init 6 (fun i -> (i, Afs_baseline.Twopl.begin_ t)) in
  List.iter
    (fun (i, txn) ->
      (match Afs_baseline.Twopl.read t txn ~obj:i with Ok _ -> () | Error _ -> ());
      match Afs_baseline.Twopl.write t txn ~obj:(i + 10) (bytes "wip") with
      | Ok () -> ()
      | Error _ -> ())
    txns;
  Afs_baseline.Twopl.crash t;
  let stats = Afs_baseline.Twopl.recover t in
  Alcotest.(check bool) "locks to clear" true (stats.Afs_baseline.Twopl.locks_cleared > 0);
  Alcotest.(check int) "transactions to roll back" 6 stats.Afs_baseline.Twopl.txns_rolled_back

let () =
  Alcotest.run "recovery"
    [
      ( "crash points",
        [
          quick "before commit: only update lost" test_crash_before_commit_loses_only_the_update;
          quick "after commit: update preserved" test_crash_after_commit_preserves_update;
          quick "many files and chains" test_recovery_finds_many_files_and_chains;
          quick "reads need no recovery" test_no_recovery_needed_for_reads;
        ] );
      ( "block server",
        [ quick "account listing rebuild" test_recovery_via_block_server_account_listing ] );
      ( "stable storage",
        [
          quick "survives disk loss" test_file_service_survives_stable_disk_loss;
          quick "update through survivor" test_update_through_single_surviving_server;
        ] );
      ( "recovery work",
        [
          quick "afs: zero" test_afs_recovery_work_is_zero;
          quick "2pl: nonzero" test_2pl_recovery_work_is_nonzero;
        ] );
    ]
