(* Reproductions of the paper's six figures as executable mechanisms.
   The figures are architectural, so each experiment demonstrates the
   pictured structure working and measures its characteristic costs. *)

open Exp_util
module Server = Afs_core.Server
module Store = Afs_core.Store
module Page = Afs_core.Page
module Pagestore = Afs_core.Pagestore
module Gc = Afs_core.Gc
module Client = Afs_core.Client
module Superfile = Afs_core.Superfile
module Directory = Afs_naming.Directory
module P = Afs_util.Pagepath

(* F1 — Figure 1: the storage-services hierarchy. A directory server runs
   on the file server, which runs on a block server on a simulated disk;
   one name lookup/update exercises every layer. We count the I/O each
   layer induces below it. *)
let f1 () =
  banner "f1-hierarchy" "Storage services hierarchy: directory / file / block server"
    "Figure 1, §2.1";
  let disk = Afs_disk.Disk.create ~media:Afs_disk.Media.electronic ~blocks:8192 ~block_size:32768 () in
  let block_server = Afs_block.Block_server.create ~disk () in
  let store, io = Store.counting (Store.of_block_server block_server ~account:1) in
  let srv = Server.create store in
  let client = Client.connect srv in
  let dir = ok (Directory.create client ~buckets:16 ()) in
  let n = 1000 in
  let measure label f =
    let r0, w0 = io () in
    f ();
    let r1, w1 = io () in
    (label, r1 - r0, w1 - w0)
  in
  let enter_row =
    measure (Printf.sprintf "enter %d names" n) (fun () ->
        for i = 1 to n do
          let fcap = ok (Client.create_file client ~data:(bytes "contents") ()) in
          ok (Directory.enter dir (Printf.sprintf "file-%04d" i) fcap)
        done)
  in
  let lookup_cold =
    measure "lookup 1000 (cold cache)" (fun () ->
        for i = 1 to n do
          ignore (ok (Directory.lookup dir (Printf.sprintf "file-%04d" i)))
        done)
  in
  let lookup_warm =
    measure "lookup 1000 (warm cache)" (fun () ->
        for i = 1 to n do
          ignore (ok (Directory.lookup dir (Printf.sprintf "file-%04d" i)))
        done)
  in
  let rows =
    List.map
      (fun (label, r, w) ->
        [ label; string_of_int r; string_of_int w; f2 (float_of_int (r + w) /. float_of_int n) ])
      [ enter_row; lookup_cold; lookup_warm ]
  in
  table [ "operation"; "block reads"; "block writes"; "block ops/op" ] rows;
  note "every layer of Figure 1 is real: names resolve through AFS pages on block storage";
  note "warm lookups cost ~1 read/op: the §5.4 cache validation (re-reading the version page)"

(* F2 — Figure 2: the file system is a tree of page trees. Build the
   nested structure and show a super-file update spanning sub-files while
   an untouched sub-file keeps taking small updates. *)
let f2 () =
  banner "f2-tree-of-trees" "Nested files: system tree of page trees" "Figure 2, §5/§5.3";
  let _, srv = (fun () -> let s = Store.memory () in (s, Server.create s)) () in
  let fanout = 8 in
  let subfiles =
    List.init fanout (fun i ->
        let f = file_with_pages srv 4 in
        ignore i;
        f)
  in
  let super = ok (Superfile.make srv ~subfiles ~data:(bytes "super") ()) in
  let rows = ref [] in
  let add label value = rows := [ label; value ] :: !rows in
  add "sub-files under super-file" (string_of_int (List.length (ok (Superfile.subfiles srv super))));
  add "pages per sub-file tree" "4 (+1 version page)";
  (* A spanning update touches 3 sub-files. *)
  let u = ok (Superfile.begin_update srv super) in
  List.iter
    (fun i ->
      let sv = ok (Superfile.touch_subfile u ~index:i) in
      ok (Server.write_page srv sv (P.of_list [ 0 ]) (bytes "super-update")))
    [ 0; 1; 2 ];
  add "sub-files locked by spanning update" "3 (inner locks) + 1 top lock";
  (* Untouched sub-file stays fully updatable. *)
  let free_sub = List.nth subfiles 5 in
  let ok_update =
    match Server.create_version srv free_sub with
    | Ok v ->
        ok (Server.write_page srv v (P.of_list [ 1 ]) (bytes "independent"));
        ok (Server.commit srv v);
        "yes (committed during the super update)"
    | Error _ -> "no"
  in
  add "untouched sub-file updatable concurrently" ok_update;
  let locked_sub = List.nth subfiles 0 in
  let blocked =
    match Server.create_version srv locked_sub with
    | Error (Afs_core.Errors.Locked_out _) -> "blocked by inner lock (correct)"
    | Ok _ -> "NOT BLOCKED (wrong)"
    | Error _ -> "error"
  in
  add "touched sub-file during super update" blocked;
  ok (Superfile.commit u);
  add "after super commit, all locks" "clear; all sub-commits applied atomically";
  table [ "property"; "value" ] (List.rev !rows)

(* F3 — Figure 3: the page layout. Encoded sizes for representative pages
   plus the 28+4-bit reference packing. *)
let f3 () =
  banner "f3-page-codec" "Page layout: header, 28-bit+4-flag references, data"
    "Figure 3, §5.1";
  let secret = Afs_util.Capability.secret_of_seed 1 in
  let cap obj =
    Afs_util.Capability.mint secret ~port:(Afs_util.Capability.port_of_int 1) ~obj
      ~rights:Afs_util.Capability.rights_all
  in
  let page ~nrefs ~data_bytes ~version =
    let refs =
      Array.init nrefs (fun i ->
          { Page.block = i + 1; flags = Afs_core.Flags.record Afs_core.Flags.clear Afs_core.Flags.Read })
    in
    let data = Bytes.make data_bytes 'd' in
    if version then
      Page.make_version_page ~file_cap:(cap 2) ~version_cap:(cap 3) ~base_ref:(Some 9)
        ~parent_ref:None ~refs ~data
    else Page.with_contents (Page.with_data Page.empty data) ~refs ~data
  in
  let rows =
    List.map
      (fun (label, nrefs, data_bytes, version) ->
        let p = page ~nrefs ~data_bytes ~version in
        let encoded = Page.encoded_size p in
        [ label; string_of_int nrefs; string_of_int data_bytes; string_of_int encoded;
          Printf.sprintf "%.1f%%" (100.0 *. float_of_int (encoded - data_bytes) /. float_of_int (max 1 encoded)) ])
      [
        ("empty plain page", 0, 0, false);
        ("one-page file (32K fast path)", 0, 32000, true);
        ("index page, 512 refs", 512, 0, false);
        ("version page, 64 refs + 4K data", 64, 4096, true);
        ("leaf, 16K data", 0, 16384, false);
      ]
  in
  table [ "page"; "nrefs"; "data bytes"; "encoded bytes"; "overhead" ] rows;
  note "references pack into 32 bits: 28-bit block number + 4-bit C/R/W/S/M nibble (13 states)";
  note "run with --bechamel for codec throughput (encode/decode ns per page)"

let ok_str = function Ok v -> v | Error msg -> failwith msg
let ok_blocks store = ok_str (store.Store.list_blocks ())

(* F4 — Figure 4: the family tree of a file. Mixed commits and aborts;
   verify the doubly-linked committed list plus uncommitted attachments. *)
let f4 () =
  banner "f4-version-chain" "The family tree: committed chain + uncommitted versions"
    "Figure 4, §5.1";
  let store, srv, _ = counting_server () in
  let f = file_with_pages srv 4 in
  let rng = Afs_util.Xrng.create 11 in
  let committed = ref 0 and aborted = ref 0 and conflicted = ref 0 in
  let in_flight = ref [] in
  for round = 1 to 64 do
    let v = ok (Server.create_version srv f) in
    let p = Afs_util.Xrng.int rng 4 in
    (match Server.read_page srv v (P.of_list [ p ]) with Ok _ -> () | Error _ -> ());
    ok (Server.write_page srv v (P.of_list [ p ]) (bytes (Printf.sprintf "r%d" round)));
    match Afs_util.Xrng.int rng 10 with
    | 0 | 1 ->
        (* Keep it open: an uncommitted possible future. *)
        in_flight := v :: !in_flight
    | 2 ->
        ok (Server.abort_version srv v);
        incr aborted
    | _ -> (
        match Server.commit srv v with
        | Ok () -> incr committed
        | Error Afs_core.Errors.Conflict -> incr conflicted
        | Error e -> failwith (Afs_core.Errors.to_string e))
  done;
  let chain = ok (Server.committed_chain srv f) in
  let uncommitted = ok (Server.uncommitted_versions srv f) in
  let blocks = List.length (ok_blocks store) in
  table [ "quantity"; "value" ]
    [
      [ "updates attempted"; "64" ];
      [ "committed (chain spine)"; string_of_int !committed ];
      [ "conflicted (removed)"; string_of_int !conflicted ];
      [ "aborted by client"; string_of_int !aborted ];
      [ "left uncommitted (attached to chain)"; string_of_int (List.length uncommitted) ];
      [ "committed chain length (incl. initial)"; string_of_int (List.length chain) ];
      [ "blocks allocated"; string_of_int blocks ];
    ];
  (* Integrity of the doubly-linked list. *)
  let ps = Server.pagestore srv in
  let link_ok = ref true in
  let rec walk = function
    | a :: (b :: _ as rest) ->
        (match Pagestore.read ps b with
        | Ok page -> if page.Page.header.Page.base_ref <> Some a then link_ok := false
        | Error _ -> link_ok := false);
        (match Pagestore.read ps a with
        | Ok page -> if page.Page.header.Page.commit_ref <> Some b then link_ok := false
        | Error _ -> link_ok := false);
        walk rest
    | _ -> ()
  in
  walk chain;
  note "doubly-linked committed list verified: %s"
    (if !link_ok then "every base/commit reference pair consistent" else "BROKEN");
  let stats = ok (Gc.collect ~policy:{ Gc.retain_committed = 4; reshare = true } srv) in
  note "after GC (retain 4): %s" (Fmt.str "%a" Gc.pp_stats stats)

(* F5 — Figure 5: the uncontended commit is a test-and-set of one commit
   reference; its cost must not grow with file size. *)
let f5 () =
  banner "f5-commit-fastpath" "Uncontended commit: test-and-set, independent of file size"
    "Figure 5, §5.2";
  let rows =
    List.map
      (fun npages ->
        let _store, srv, io = counting_server () in
        let f = file_with_pages srv npages in
        (* A 4-page update. *)
        let v = ok (Server.create_version srv f) in
        for i = 0 to 3 do
          ok (Server.write_page srv v (P.of_list [ i * (npages / 4) ]) (bytes "w"))
        done;
        ok (Afs_core.Pagestore.flush (Server.pagestore srv));
        let r0, w0 = io () in
        ok (Server.commit srv v);
        let r1, w1 = io () in
        [ string_of_int npages; string_of_int (r1 - r0); string_of_int (w1 - w0) ])
      [ 16; 64; 256; 1024; 4096 ]
  in
  table [ "file pages"; "store reads at commit"; "store writes at commit" ] rows;
  note "flat columns: commit touches the base version page (test-and-set) plus the dirty";
  note "pages of the update itself — never the rest of the file"

(* F6 — Figure 6: a commit that is no longer based on the current version:
   serialisability test + merge, sweeping concurrency and overlap. *)
let f6 () =
  banner "f6-concurrent-commit" "Intercepted commits: serialisability test and merge"
    "Figure 6, §5.2";
  let npages = 160 in
  let run ~writers ~overlap_pct =
    let _store, srv, _ = counting_server () in
    let f = file_with_pages srv npages in
    let versions = List.init writers (fun _ -> ok (Server.create_version srv f)) in
    (* Writer i writes a window of pages; overlap controls how much the
       windows share. *)
    let window = 4 in
    List.iteri
      (fun i v ->
        let base =
          if overlap_pct = 100 then 0
          else if overlap_pct = 0 then (i * window) mod (npages - window)
          else (i * window * (100 - overlap_pct) / 100) mod (npages - window)
        in
        for off = 0 to window - 1 do
          let p = base + off in
          (match Server.read_page srv v (P.of_list [ p ]) with Ok _ -> () | Error _ -> ());
          ok (Server.write_page srv v (P.of_list [ p ]) (bytes (Printf.sprintf "w%d" i)))
        done)
      versions;
    let committed = ref 0 and conflicted = ref 0 in
    List.iter
      (fun v ->
        match Server.commit srv v with
        | Ok () -> incr committed
        | Error Afs_core.Errors.Conflict -> incr conflicted
        | Error e -> failwith (Afs_core.Errors.to_string e))
      versions;
    [ string_of_int writers; string_of_int overlap_pct; string_of_int !committed;
      string_of_int !conflicted;
      string_of_int (counter srv "commits.intercepted");
      string_of_int (counter srv "serialise.pages_visited") ]
  in
  let rows =
    List.concat_map
      (fun writers -> List.map (fun ov -> run ~writers ~overlap_pct:ov) [ 0; 50; 100 ])
      [ 2; 8; 32 ]
  in
  table
    [ "concurrent"; "overlap %"; "committed"; "conflicted"; "interceptions"; "pages visited" ]
    rows;
  note "0%% overlap: everything merges (only the first commit is uninterrupted);";
  note "100%% overlap: first committer wins, read-write intersections kill the rest"
