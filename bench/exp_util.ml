(* Shared plumbing for the experiment harness: table rendering and
   commonly-used setup helpers. Every experiment prints a self-contained
   table; EXPERIMENTS.md interprets them against the paper's claims. *)

module Server = Afs_core.Server
module Store = Afs_core.Store
module Errors = Afs_core.Errors
module P = Afs_util.Pagepath

let ok = function Ok v -> v | Error e -> failwith (Errors.to_string e)
let bytes = Bytes.of_string

(* {2 Tables} *)

let banner id title paper_ref =
  Printf.printf "\n%s\n" (String.make 78 '=');
  Printf.printf "[%s] %s\n" id title;
  Printf.printf "    paper: %s\n" paper_ref;
  Printf.printf "%s\n" (String.make 78 '-')

let table headers rows =
  let ncols = List.length headers in
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let print_row cells =
    List.iteri
      (fun i cell ->
        if i < ncols then Printf.printf "%-*s  " widths.(i) cell)
      cells;
    print_newline ()
  in
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') (Array.to_list widths));
  List.iter print_row rows

let note fmt = Printf.ksprintf (fun s -> Printf.printf "note: %s\n" s) fmt

(* {2 Metrics}

   Experiments publish their headline numbers here under
   "<experiment>.<metric>"; the harness serialises them to the bench
   trajectory file (BENCH_afs.json) and CI compares runs against the
   committed baseline. Everything published must be deterministic —
   simulated or counted cost, never wall-clock. *)

let metrics : (string * float) list ref = ref []

let metric exp name v = metrics := (exp ^ "." ^ name, v) :: !metrics
let metric_i exp name v = metric exp name (float_of_int v)
let all_metrics () = List.sort compare !metrics

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let pct num den = if den = 0 then "0.0%" else Printf.sprintf "%.1f%%" (100.0 *. float_of_int num /. float_of_int den)

(* {2 Setup helpers} *)

(* A server over a counting in-memory store: experiments that report I/O
   cost count store reads/writes, a machine-independent cost metric. *)
let counting_server ?(seed = 7) () =
  let store, io = Store.counting (Store.memory ()) in
  (store, Server.create ~seed store, io)

let file_with_pages srv n =
  let cap = ok (Server.create_file srv ~data:(bytes "root") ()) in
  let v = ok (Server.create_version srv cap) in
  for i = 0 to n - 1 do
    ignore
      (ok
         (Server.insert_page srv v ~parent:P.root ~index:i
            ~data:(bytes (Printf.sprintf "p%d" i)) ()))
  done;
  ok (Server.commit srv v);
  cap

(* A complete [fanout]^[depth]-leaf page tree. Returns the file and the
   list of all leaf paths. *)
let deep_file srv ~fanout ~depth =
  let cap = ok (Server.create_file srv ~data:(bytes "root") ()) in
  let v = ok (Server.create_version srv cap) in
  let leaves = ref [] in
  let rec build parent level =
    for i = 0 to fanout - 1 do
      let child = ok (Server.insert_page srv v ~parent ~index:i ~data:(bytes "n") ()) in
      if level + 1 = depth then leaves := child :: !leaves else build child (level + 1)
    done
  in
  if depth > 0 then build P.root 0 else ();
  ok (Server.commit srv v);
  (cap, List.rev !leaves)

let commit_write srv f path data =
  let v = ok (Server.create_version srv f) in
  ok (Server.write_page srv v path (bytes data));
  ok (Server.commit srv v)

let counter srv name = Afs_util.Stats.Counter.get (Server.counters srv) name
