(* Cross-shard transaction experiments for lib/txn. *)

open Exp_util
module Engine = Afs_sim.Engine
module Proc = Afs_sim.Proc
module Xrng = Afs_util.Xrng
module Cluster = Afs_cluster.Cluster
module Shard = Afs_cluster.Shard
module CC = Afs_cluster.Cluster_client
module Txnmark = Afs_cluster.Txnmark
module Txn = Afs_txn.Txn
module Faults = Afs_replica.Faults

(* S2 — the banking mix over four shards: the OCC coordinator against the
   2PC prepare/decide baseline at identical load, anchored by the same
   transfers folded into single-file transactions on one shard (what the
   distribution itself costs). Conservation is audited after every leg,
   and a crash leg replays transfers under coordinator kill points and
   shard crashes, proving no committed transfer is lost and no in-doubt
   participant survives the sweep. *)

let s2 () =
  banner "s2-cross-shard" "Banking transfers: OCC coordinator vs 2PC vs single-shard"
    "§6: multi-file atomic update via ordinary optimistic commits";
  let open Afs_workload in
  let tshape = Workload.bank_transfers in
  let initial_balance = 1_000 in
  let expected_total = initial_balance * tshape.Workload.accounts in
  let config =
    { Driver.default_config with clients = 16; duration_ms = 4_000.0; think_ms = 5.0 }
  in
  (* A transactional leg: drive the SUT, then sweep any in-doubt files and
     audit the conserved sum out of band. *)
  let run_leg make_sut =
    let engine = Engine.create () in
    let cluster =
      Cluster.create ~latency_ms:2.0 engine ~shards:tshape.Workload.shards
    in
    let files = ok (Workload.setup_accounts cluster tshape ~initial_balance) in
    let client = CC.connect cluster in
    let sut = make_sut client files in
    let report = Driver.run engine config sut ~gen:(Workload.transfer tshape) in
    let swept = ref 0 in
    let _ =
      Proc.spawn engine (fun () ->
          swept := ok (Txn.sweep (Txn.create client) (Array.to_list files)))
    in
    Engine.run engine;
    let total = Workload.total_balance sut tshape in
    if total <> expected_total then
      failwith
        (Printf.sprintf "%s: conservation violated: %d, expected %d"
           (Driver.(report.sut_name)) total expected_total);
    (report, sut.Sut.stats (), !swept)
  in
  let occ, occ_stats, occ_swept =
    run_leg (fun client files -> Sut.afs_txn client ~files)
  in
  let twopc, _, _ = run_leg (fun client files -> Sut.afs_twopc client ~files) in
  (* The anchor: the same debit/credit pair as two read-modify-writes
     inside one file — one ordinary optimistic commit, no coordination. *)
  let single =
    let bshape =
      {
        Workload.small_updates with
        nfiles = tshape.Workload.accounts;
        pages_per_file = 2;
        read_pages = 0;
        rmw_pages = 2;
        file_theta = tshape.Workload.account_theta;
        page_theta = 0.0;
      }
    in
    let engine = Engine.create () in
    let cluster = Cluster.create ~latency_ms:2.0 engine ~shards:1 in
    let files = ok (Workload.setup_cluster cluster bshape ~initial:(bytes "0")) in
    let sut = Sut.afs_cluster (CC.connect cluster) ~files in
    Driver.run engine config sut ~gen:(Workload.make bshape)
  in
  let row label (r : Driver.report) =
    [
      label;
      string_of_int r.Driver.committed;
      string_of_int r.Driver.attempts;
      f1 r.Driver.throughput_per_s;
      f2 r.Driver.p95_ms;
      string_of_int r.Driver.local_aborts;
      string_of_int r.Driver.cross_aborts;
    ]
  in
  table
    [ "backend"; "committed"; "attempts"; "thru/s"; "p95-ms"; "local-ab"; "cross-ab" ]
    [
      row "single-shard (one file, plain OCC)" single;
      row "OCC coordinator" occ;
      row "2PC prepare/decide" twopc;
    ];
  let stat name = match List.assoc_opt name occ_stats with Some v -> v | None -> 0 in
  let trips_per_commit =
    Afs_util.Stats.ratio (stat "txn.round_trips") (max 1 occ.Driver.committed)
  in
  Printf.printf "coordinator round trips per committed txn: %s\n" (f2 trips_per_commit);
  List.iter
    (fun (label, (r : Driver.report)) ->
      metric_i "s2-cross-shard" (label ^ ".committed") r.Driver.committed;
      metric_i "s2-cross-shard" (label ^ ".attempts") r.Driver.attempts;
      metric_i "s2-cross-shard" (label ^ ".local_aborts") r.Driver.local_aborts;
      metric_i "s2-cross-shard" (label ^ ".cross_aborts") r.Driver.cross_aborts)
    [ ("single", single); ("occ", occ); ("twopc", twopc) ];
  metric "s2-cross-shard" "occ.round_trips_per_commit" trips_per_commit;
  metric_i "s2-cross-shard" "occ.swept_after_run" occ_swept;
  metric "s2-cross-shard" "occ_vs_2pc"
    (Afs_util.Stats.ratio occ.Driver.committed twopc.Driver.committed);
  metric_i "s2-cross-shard" "occ_ge_2pc"
    (if occ.Driver.committed >= twopc.Driver.committed then 1 else 0);
  metric_i "s2-cross-shard" "conservation_violations" 0;

  (* The crash leg: transfers with coordinator kills at every protocol
     step and shard crashes mid-run. Outcomes are classified exactly as a
     recovering client would — committed record means the transfer
     happened — and the audit demands the balances match those outcomes
     to the unit: nothing lost, nothing duplicated, nothing in doubt. *)
  let crash_points =
    [|
      None;
      Some (Txn.Before_stage 0);
      Some (Txn.Before_stage 1);
      Some Txn.Before_decide;
      Some Txn.After_decide;
      Some (Txn.Mid_flip 0);
      Some (Txn.Mid_flip 1);
    |]
  in
  let shards = 3 and naccts = 6 and init = 100 in
  let engine = Engine.create () in
  let cluster = Cluster.create ~latency_ms:2.0 engine ~shards in
  let committed_txns = ref 0 in
  let rolled_forward = ref 0 in
  let crashes_injected = ref 0 in
  let swept = ref 0 in
  let violations = ref 0 in
  let _ =
    Proc.spawn engine (fun () ->
        let client = CC.connect cluster in
        let accts =
          Array.init naccts (fun i ->
              let f = ok (CC.create_file ~data:(bytes (Printf.sprintf "a%d" i)) client) in
              ok
                (CC.update client f (fun txn ->
                     let open Afs_core.Errors in
                     let* _ =
                       CC.Txn.insert txn ~parent:Afs_util.Pagepath.root ~index:0
                         ~data:(bytes (string_of_int init)) ()
                     in
                     Ok ()));
              f)
        in
        let faults = Faults.create engine in
        List.iter
          (fun (ms, k) ->
            Faults.at faults ~ms ~label:(Printf.sprintf "kill:%d" k) (fun () ->
                Shard.crash (Cluster.shard cluster k);
                Proc.delay 10.0;
                ignore (ok (Shard.recover (Cluster.shard cluster k)) : int)))
          [ (40.0, 0); (110.0, 1); (180.0, 2) ];
        let rng = Xrng.create 11 in
        let txn = Txn.create client in
        let deltas = Array.make naccts 0 in
        let uncertain = ref [] in
        for _ = 1 to 60 do
          Proc.delay (Xrng.float rng 4.0);
          let a = Xrng.int rng naccts in
          let b = (a + 1 + Xrng.int rng (naccts - 1)) mod naccts in
          let amt = 1 + Xrng.int rng 9 in
          let crash_at = crash_points.(Xrng.int rng (Array.length crash_points)) in
          let record = ref None in
          let parts =
            [
              { Txn.file = accts.(a);
                ops = [ Txn.Rmw (Afs_util.Pagepath.of_list [ 0 ],
                                 fun old ->
                                   bytes (string_of_int
                                            (int_of_string (Bytes.to_string old) - amt))) ] };
              { Txn.file = accts.(b);
                ops = [ Txn.Rmw (Afs_util.Pagepath.of_list [ 0 ],
                                 fun old ->
                                   bytes (string_of_int
                                            (int_of_string (Bytes.to_string old) + amt))) ] };
            ]
          in
          match
            Txn.exec ?crash_at ~on_record:(fun c -> record := Some c) txn parts
          with
          | exception Txn.Crashed -> begin
              incr crashes_injected;
              match !record with
              | Some r -> uncertain := (r, a, b, amt) :: !uncertain
              | None -> ()
            end
          | Ok () ->
              incr committed_txns;
              deltas.(a) <- deltas.(a) - amt;
              deltas.(b) <- deltas.(b) + amt
          | Error (Txn.Local _ | Txn.Cross _) -> ()
          | Error (Txn.Failed _) -> (
              match !record with
              | Some r -> uncertain := (r, a, b, amt) :: !uncertain
              | None -> ())
        done;
        Proc.delay 200.0;
        let sweeper = Txn.create client in
        swept := ok (Txn.sweep sweeper (Array.to_list accts));
        List.iter
          (fun (r, a, b, amt) ->
            match ok (Txn.record_decision sweeper r) with
            | Txn.Committed ->
                incr rolled_forward;
                deltas.(a) <- deltas.(a) - amt;
                deltas.(b) <- deltas.(b) + amt
            | _ -> ())
          !uncertain;
        Array.iteri
          (fun i f ->
            let root = ok (CC.read_current client f Afs_util.Pagepath.root) in
            if Txnmark.is_marker root then incr violations;
            let got =
              int_of_string
                (Bytes.to_string
                   (ok (CC.read_current client f (Afs_util.Pagepath.of_list [ 0 ]))))
            in
            if got <> init + deltas.(i) then incr violations)
          accts)
  in
  Engine.run engine;
  if !violations > 0 then
    failwith (Printf.sprintf "crash leg: %d conservation violations" !violations);
  table
    [ "crash leg"; "value" ]
    [
      [ "transfers committed"; string_of_int !committed_txns ];
      [ "coordinator crashes injected"; string_of_int !crashes_injected ];
      [ "committed-at-crash rolled forward"; string_of_int !rolled_forward ];
      [ "in-doubt participants swept"; string_of_int !swept ];
      [ "conservation violations"; string_of_int !violations ];
    ];
  metric_i "s2-cross-shard" "crash.committed" !committed_txns;
  metric_i "s2-cross-shard" "crash.injected" !crashes_injected;
  metric_i "s2-cross-shard" "crash.rolled_forward" !rolled_forward;
  metric_i "s2-cross-shard" "crash.swept" !swept;
  metric_i "s2-cross-shard" "crash.lost_committed" 0;
  metric_i "s2-cross-shard" "crash.violations" !violations;
  note "the coordinator record's pending->committed flip is the atomic point: every";
  note "crash schedule resolves from the record alone, conserving the balance sum"
