(* Raw engine speed: wall-clock throughput of the simulated stack.

   Unlike every other experiment, the headline numbers here are
   wall-clock (events and commits per host second) and therefore
   machine-dependent: they are published under the ".reported" suffix
   the baseline checker ignores. The outcome metrics (committed,
   attempts, events executed) are deterministic and baseline-checked
   like everything else, which pins the *workload* while the wall-clock
   tracks the implementation.

   M2 — a sustained OCC workload through the full remote stack, sized so
   the page codec and allocator dominate: the bench that justifies the
   encode-once / decoded-cache hot path work (EXPERIMENTS.md M2).

   A6 — the million-transaction scenario: 1M transactions offered by
   10k Zipf clients against a 4-shard cluster, with the collector run
   synchronously every few tens of thousands of commits so the store
   stays bounded. Outcomes must be bit-identical with tracing off and
   on (the a4 observer argument at three orders of magnitude more
   events), and the host GC's allocation totals are published as
   reported-only metrics. *)

open Exp_util
module Engine = Afs_sim.Engine
module Server = Afs_core.Server
module Store = Afs_core.Store
module Page = Afs_core.Page
module Core_gc = Afs_core.Gc
module Remote = Afs_rpc.Remote
module Cluster = Afs_cluster.Cluster
module Trace = Afs_trace.Trace
open Afs_workload

let wall_ms f =
  let t0 = Monotonic_clock.now () in
  let r = f () in
  let t1 = Monotonic_clock.now () in
  (r, Int64.to_float (Int64.sub t1 t0) /. 1_000_000.0)

let per_second count ms = if ms <= 0.0 then 0.0 else float_of_int count /. (ms /. 1000.0)

(* M2 — fixed-duration closed loop over one remote server. The payload is
   large enough (1 KiB) that page encode/decode is the dominant per-event
   cost, which is exactly the path this bench exists to watch. *)
let m2 () =
  banner "m2-engine-speed" "Wall-clock events/s and commits/s of the hot path"
    "ROADMAP: raw engine speed — the simulator must be limited by the protocol";
  let shape =
    {
      Workload.nfiles = 48;
      pages_per_file = 16;
      read_pages = 2;
      rmw_pages = 2;
      payload_bytes = 1024;
      file_theta = 0.6;
      page_theta = 0.6;
    }
  in
  let config =
    {
      Driver.default_config with
      clients = 32;
      duration_ms = 60_000.0;
      think_ms = 2.0;
    }
  in
  (* Low latency and a long run: the serialised server stays saturated for
     60 simulated seconds, so the host-time sample is large enough for the
     before/after comparison to be meaningful. *)
  let run () =
    let engine = Engine.create () in
    let store = Store.memory () in
    let srv = Server.create store in
    let files = ok (Workload.setup_pages srv shape ~initial:(Bytes.make 1024 '0')) in
    let host = Remote.host ~latency_ms:0.5 engine ~name:"afs" srv in
    let sut = Sut.afs_remote (Remote.connect [ host ]) ~fallback:srv ~files in
    let encodes0 = Page.fresh_encodes () in
    let report, ms = wall_ms (fun () -> Driver.run engine config sut ~gen:(Workload.make shape)) in
    (report, ms, Engine.events_executed engine, Page.fresh_encodes () - encodes0)
  in
  (* Three independent repeats. The deterministic outcomes must agree
     exactly — each repeat re-checks that the run is a pure function of
     the seed — and the fastest wall time is the one reported: min-of-N
     is the standard way to strip scheduler and GC noise from a
     wall-clock figure. *)
  let report, ms1, events, encodes = run () in
  let r2, ms2, ev2, enc2 = run () in
  let r3, ms3, ev3, enc3 = run () in
  let repeats_identical =
    report.Driver.committed = r2.Driver.committed
    && report.Driver.committed = r3.Driver.committed
    && report.Driver.attempts = r2.Driver.attempts
    && report.Driver.attempts = r3.Driver.attempts
    && events = ev2 && events = ev3 && encodes = enc2 && encodes = enc3
  in
  let ms = Float.min ms1 (Float.min ms2 ms3) in
  table
    [ "metric"; "value" ]
    [
      [ "committed (deterministic)"; string_of_int report.Driver.committed ];
      [ "attempts (deterministic)"; string_of_int report.Driver.attempts ];
      [ "events executed (deterministic)"; string_of_int events ];
      [ "fresh page encodes (deterministic)"; string_of_int encodes ];
      [ "repeats identical (deterministic)"; (if repeats_identical then "yes" else "NO (bug!)") ];
      [ "wall ms (reported, min of 3)"; f1 ms ];
      [ "events/s wall (reported)"; f1 (per_second events ms) ];
      [ "commits/s wall (reported)"; f1 (per_second report.Driver.committed ms) ];
    ];
  metric_i "m2-engine-speed" "committed" report.Driver.committed;
  metric_i "m2-engine-speed" "attempts" report.Driver.attempts;
  metric_i "m2-engine-speed" "given_up" report.Driver.given_up;
  metric_i "m2-engine-speed" "events" events;
  metric_i "m2-engine-speed" "page_encodes" encodes;
  metric_i "m2-engine-speed" "repeats_identical" (if repeats_identical then 1 else 0);
  metric "m2-engine-speed" "wall_ms.reported" ms;
  metric "m2-engine-speed" "events_per_s.reported" (per_second events ms);
  metric "m2-engine-speed" "commits_per_s.reported" (per_second report.Driver.committed ms);
  note "wall-clock numbers are machine-dependent (reported, never baseline-checked);";
  note "the deterministic outcome metrics pin the workload they were measured on"

(* A6 — the million-transaction run. Count-driven (the driver stops the
   clients after [max_txns] completed transactions), so the figure "1M
   transactions" is exact and seed-stable rather than a duration
   artefact. The collector runs synchronously on every shard each
   [gc_stride] transactions; retention is generous so no in-flight
   transaction can lose its base version.

   The cluster must be *stable* for this to finish in CI-tolerable time:
   a serialised shard is occupied for proc + storage + reply latency per
   request, so WAN-class latency (2 ms) caps four shards at ~450 txn/s
   against ~100k offered — congestion collapse, sim queues growing
   without bound and every OCC window stretching until almost every
   commit conflicts. LAN-class numbers (0.25 ms latency, 0.05 ms proc)
   and an 8 s mean think time hold utilisation near 50%, where windows
   stay at a few milliseconds and retries are rare (~0.1%).

   A6_TXNS / A6_CLIENTS environment overrides shrink the run for local
   bisection; baseline metrics are only valid at the defaults. *)
let a6 () =
  banner "a6-million" "1M transactions, 10k Zipf clients, 4 shards, GC interleaved"
    "ROADMAP: million-transaction runs as the standard bench size";
  let shards = 4 in
  let max_txns =
    match Sys.getenv_opt "A6_TXNS" with Some v -> int_of_string v | None -> 1_000_000
  in
  let gc_stride = 100_000 in
  let shape =
    {
      Workload.nfiles = 4096;
      pages_per_file = 8;
      read_pages = 1;
      rmw_pages = 1;
      payload_bytes = 48;
      file_theta = 0.6;
      page_theta = 0.0;
    }
  in
  let config =
    {
      Driver.default_config with
      clients =
        (match Sys.getenv_opt "A6_CLIENTS" with Some v -> int_of_string v | None -> 10_000);
      duration_ms = Float.max_float;
      think_ms = 8_000.0;
      max_txns;
    }
  in
  (* Retention is sized to the in-flight window: a transaction holds its
     basis for a handful of milliseconds while commits arrive at ~1.2/ms,
     so retaining 16 committed versions per file guarantees no attempt
     ever loses its basis to the collector while keeping the store (and
     the collector's walks) small. *)
  let gc_policy = { Core_gc.retain_committed = 16; reshare = false } in
  let run tracing =
    let engine = Engine.create () in
    let tr = if tracing then Trace.ring ~now:(fun () -> Engine.now engine) () else Trace.null in
    Engine.set_trace engine tr;
    let cluster = Cluster.create ~trace:tr ~latency_ms:0.25 ~proc_ms:0.05 engine ~shards in
    let files = ok (Workload.setup_cluster cluster shape ~initial:(Bytes.make 48 '0')) in
    let sut = Sut.afs_cluster (Afs_cluster.Cluster_client.connect cluster) ~files in
    let servers =
      List.map Afs_cluster.Shard.server (Cluster.shards cluster)
    in
    let collected = ref 0 in
    let on_progress done_txns =
      if done_txns mod gc_stride = 0 then begin
        List.iter
          (fun srv ->
            match Core_gc.collect ~policy:gc_policy srv with
            | Ok stats -> collected := !collected + stats.Core_gc.blocks_freed
            | Error _ -> ())
          servers
      end
    in
    let report, ms =
      wall_ms (fun () ->
          Driver.run engine config sut ~gen:(Workload.make shape) ~on_progress)
    in
    (report, ms, Engine.events_executed engine, !collected)
  in
  let report, ms, events, freed = run false in
  let traced_report, traced_ms, traced_events, _ = run true in
  let identical =
    report.Driver.committed = traced_report.Driver.committed
    && report.Driver.given_up = traced_report.Driver.given_up
    && report.Driver.attempts = traced_report.Driver.attempts
    && report.Driver.mean_latency_ms = traced_report.Driver.mean_latency_ms
    && report.Driver.p50_ms = traced_report.Driver.p50_ms
    && report.Driver.p95_ms = traced_report.Driver.p95_ms
    && report.Driver.p99_ms = traced_report.Driver.p99_ms
    && report.Driver.retry_histogram = traced_report.Driver.retry_histogram
    && events = traced_events
  in
  let gc = Stdlib.Gc.stat () in
  table
    [ "metric"; "traces off"; "traces on" ]
    [
      [ "committed"; string_of_int report.Driver.committed;
        string_of_int traced_report.Driver.committed ];
      [ "given up"; string_of_int report.Driver.given_up;
        string_of_int traced_report.Driver.given_up ];
      [ "attempts"; string_of_int report.Driver.attempts;
        string_of_int traced_report.Driver.attempts ];
      [ "events executed"; string_of_int events; string_of_int traced_events ];
      [ "elapsed sim ms"; f1 report.Driver.elapsed_ms; f1 traced_report.Driver.elapsed_ms ];
      [ "wall ms (reported)"; f1 ms; f1 traced_ms ];
      [ "commits/s wall (reported)"; f1 (per_second report.Driver.committed ms);
        f1 (per_second traced_report.Driver.committed traced_ms) ];
    ];
  metric_i "a6-million" "committed" report.Driver.committed;
  metric_i "a6-million" "given_up" report.Driver.given_up;
  metric_i "a6-million" "attempts" report.Driver.attempts;
  metric_i "a6-million" "events" events;
  metric_i "a6-million" "gc_blocks_freed" freed;
  metric_i "a6-million" "outcomes_identical" (if identical then 1 else 0);
  metric "a6-million" "wall_ms.reported" ms;
  metric "a6-million" "commits_per_s.reported" (per_second report.Driver.committed ms);
  metric "a6-million" "events_per_s.reported" (per_second events ms);
  metric "a6-million" "minor_words.reported" gc.Stdlib.Gc.minor_words;
  metric "a6-million" "major_words.reported" gc.Stdlib.Gc.major_words;
  note "traces-off and traces-on outcomes are %s; the host GC totals are reported"
    (if identical then "bit-identical" else "DIFFERENT (bug!)");
  note "only to watch allocation discipline, never baseline-checked"
