(* Ablations of design choices DESIGN.md calls out. *)

open Exp_util
module Server = Afs_core.Server
module Store = Afs_core.Store
module Cache = Afs_core.Cache
module Gc = Afs_core.Gc
module Pagestore = Afs_core.Pagestore
module P = Afs_util.Pagepath
module Xrng = Afs_util.Xrng

let ok_str = function Ok v -> v | Error msg -> failwith msg

(* A1 — the §5.4 concurrency-control administration, in three stages: a
   server that must walk page trees for every write set, one that memoises
   the walks (the flag cache), and the committing server itself, whose
   incrementally maintained write sets never need a tree read at all. The
   first two are exercised through a second server sharing the store: it
   learns the committed versions lazily, so it has no incremental
   administration for them. *)
let a1 () =
  banner "a1-flag-cache" "Cache validation: flag walk vs memoised walk vs incremental sets"
    "§5.4 (last paragraph): servers can cache the concurrency-control administration";
  let npages = 128 in
  let intervening = 32 in
  let setup () =
    let store, srv, io = counting_server () in
    let other = Server.create ~seed:7 store in
    let f = file_with_pages srv npages in
    let basis = ok (Server.current_block_of_file srv f) in
    let rng = Xrng.create 3 in
    for _ = 1 to intervening do
      let v = ok (Server.create_version srv f) in
      ok (Server.write_page srv v (P.of_list [ Xrng.int rng npages ]) (bytes "x"));
      ok (Server.commit srv v)
    done;
    ok (Pagestore.flush (Server.pagestore srv));
    Pagestore.drop_volatile (Server.pagestore srv);
    (srv, other, f, basis, io)
  in
  let row key label pick_server flag_cache =
    let srv, other, f, basis, io = setup () in
    let vsrv = pick_server srv other in
    let validate () =
      Pagestore.drop_volatile (Server.pagestore srv);
      Pagestore.drop_volatile (Server.pagestore other);
      let r0, _ = io () in
      ignore (ok (Cache.server_validate ?flag_cache vsrv ~file:f ~basis_block:basis));
      let r1, _ = io () in
      r1 - r0
    in
    let first = validate () in
    let later = validate () in
    metric "a1-flag-cache" (key ^ "_first_reads") (float_of_int first);
    metric "a1-flag-cache" (key ^ "_later_reads") (float_of_int later);
    [ label; string_of_int first; string_of_int later ]
  in
  table
    [ "configuration"; "first validation reads"; "repeat validation reads" ]
    [
      row "walk" "learned versions, no flag cache (walk trees each time)"
        (fun _ other -> other)
        None;
      row "memo" "learned versions + flag cache (walk once, memoise)"
        (fun _ other -> other)
        (Some (Cache.Flag_cache.create ()));
      row "incremental" "committing server (incremental write sets)" (fun srv _ -> srv) None;
    ];
  note "the committing server derives every write set from its incremental administration:";
  note "even its FIRST validation reads only the %d chain version pages, no page trees" intervening

(* A2 — garbage collection on/off: space growth and the cost of the
   collector itself. *)
let a2 () =
  banner "a2-gc" "Space growth with and without the garbage collector" "abstract, §5.1";
  let rounds = 400 in
  let run ~gc_every =
    let store = Store.memory () in
    let srv = Server.create store in
    let f = file_with_pages srv 16 in
    let rng = Xrng.create 17 in
    let peak = ref 0 in
    let gc_freed = ref 0 in
    for i = 1 to rounds do
      let v = ok (Server.create_version srv f) in
      (* Reads create shadow copies the GC later re-shares. *)
      (match Server.read_page srv v (P.of_list [ Xrng.int rng 16 ]) with
      | Ok _ -> ()
      | Error _ -> ());
      ok (Server.write_page srv v (P.of_list [ Xrng.int rng 16 ]) (bytes (string_of_int i)));
      ok (Server.commit srv v);
      if gc_every > 0 && i mod gc_every = 0 then begin
        let stats = ok (Gc.collect ~policy:{ Gc.retain_committed = 4; reshare = true } srv) in
        gc_freed := !gc_freed + stats.Gc.blocks_freed
      end;
      let used = List.length (ok_str (store.Store.list_blocks ())) in
      if used > !peak then peak := used
    done;
    let final = List.length (ok_str (store.Store.list_blocks ())) in
    [
      (if gc_every = 0 then "no GC" else Printf.sprintf "GC every %d commits" gc_every);
      string_of_int !peak;
      string_of_int final;
      string_of_int !gc_freed;
    ]
  in
  table [ "configuration"; "peak blocks"; "final blocks"; "blocks reclaimed" ]
    [ run ~gc_every:0; run ~gc_every:64; run ~gc_every:8 ];
  note "%d commits on a 16-page file: without collection the store grows without bound" rounds;
  note "(every update shadows its path); frequent collection keeps it near the live set"

(* A3 — the bounded write-back page cache (§5.4 'need not be
   write-through'): store traffic as a function of cache capacity, from
   the degenerate write-through configuration up to a cache larger than
   the working set. Evictions of dirty pages cost an early write-back;
   re-reads of evicted pages cost a miss. *)
let a3 () =
  banner "a3-write-back" "Write-back cache capacity sweep: store traffic vs cache size" "§5.4";
  let npages = 16 in
  let updates = 50 in
  let workload srv f =
    for i = 1 to updates do
      let v = ok (Server.create_version srv f) in
      (* Each update rewrites four spread pages, one of them twice. *)
      for j = 0 to 3 do
        ok
          (Server.write_page srv v
             (P.of_list [ (i + (j * 5)) mod npages ])
             (bytes (string_of_int i)))
      done;
      ok (Server.write_page srv v (P.of_list [ i mod npages ]) (bytes "again"));
      ok (Server.commit srv v)
    done
  in
  let run key label ~cache capacity =
    let store, io = Store.counting (Store.memory ()) in
    let srv = Server.create ~page_cache:cache ?cache_capacity:capacity store in
    let f = file_with_pages srv npages in
    let snap name = counter srv name in
    let h0 = snap "cache.hits" and m0 = snap "cache.misses" in
    let e0 = snap "cache.evictions" in
    let r0, w0 = io () in
    workload srv f;
    let r1, w1 = io () in
    let hits = snap "cache.hits" - h0 and misses = snap "cache.misses" - m0 in
    let evictions = snap "cache.evictions" - e0 in
    metric "a3-write-back" (key ^ "_store_reads") (float_of_int (r1 - r0));
    metric "a3-write-back" (key ^ "_store_writes") (float_of_int (w1 - w0));
    metric "a3-write-back" (key ^ "_evictions") (float_of_int evictions);
    [
      label;
      string_of_int (r1 - r0);
      string_of_int (w1 - w0);
      string_of_int hits;
      string_of_int misses;
      string_of_int evictions;
      pct hits (hits + misses);
    ]
  in
  table
    [ "configuration"; "store reads"; "store writes"; "hits"; "misses"; "evictions"; "hit rate" ]
    [
      run "wt" "write-through (no cache)" ~cache:false None;
      run "cap2" "write-back, capacity 2" ~cache:true (Some 2);
      run "cap4" "write-back, capacity 4" ~cache:true (Some 4);
      run "cap8" "write-back, capacity 8" ~cache:true (Some 8);
      run "cap16" "write-back, capacity 16" ~cache:true (Some 16);
      run "cap64" "write-back, capacity 64" ~cache:true (Some 64);
      run "cap4096" "write-back, default capacity" ~cache:true None;
    ];
  note "tiny caches thrash (evictions force early write-backs and re-reads); once the";
  note "working set fits, the pre-commit flush coalesces rewrites exactly as §5.4.1 argues"

(* M1 — the incremental write-set micro-benchmark: validation work after N
   intervening commits depends on how much they wrote, never on the size
   or depth of the page tree they wrote it in. *)
let m1 () =
  banner "m1-validate-after-n"
    "Validation cost: O(pages written per intervening commit), not O(tree)"
    "§5.4 + the incremental concurrency-control administration";
  let writes_per_commit = 2 in
  let run ~fanout ~depth ~commits =
    let _store, srv, io = counting_server () in
    let f, leaves = deep_file srv ~fanout ~depth in
    let leaves = Array.of_list leaves in
    let nleaves = Array.length leaves in
    let basis = ok (Server.current_block_of_file srv f) in
    for i = 1 to commits do
      let v = ok (Server.create_version srv f) in
      for j = 0 to writes_per_commit - 1 do
        ok (Server.write_page srv v leaves.(((i * 3) + j) mod nleaves) (bytes "m"))
      done;
      ok (Server.commit srv v)
    done;
    ok (Pagestore.flush (Server.pagestore srv));
    Pagestore.drop_volatile (Server.pagestore srv);
    let r0, _ = io () in
    let v = ok (Cache.server_validate srv ~file:f ~basis_block:basis) in
    let r1, _ = io () in
    (nleaves, v.Cache.pages_examined, r1 - r0)
  in
  let depth_row depth =
    let nleaves, examined, reads = run ~fanout:4 ~depth ~commits:8 in
    metric "m1-validate-after-n"
      (Printf.sprintf "examined_depth%d" depth)
      (float_of_int examined);
    metric "m1-validate-after-n" (Printf.sprintf "reads_depth%d" depth) (float_of_int reads);
    [
      Printf.sprintf "4^%d (%d leaves)" depth nleaves;
      "8";
      string_of_int examined;
      string_of_int reads;
    ]
  in
  let commits_row commits =
    let _, examined, reads = run ~fanout:4 ~depth:3 ~commits in
    metric "m1-validate-after-n"
      (Printf.sprintf "examined_n%d" commits)
      (float_of_int examined);
    [ "4^3 (64 leaves)"; string_of_int commits; string_of_int examined; string_of_int reads ]
  in
  table
    [ "tree"; "intervening commits"; "pages examined"; "store reads" ]
    (List.map depth_row [ 2; 3; 4; 5 ] @ List.map commits_row [ 1; 4; 16; 64 ]);
  note "fixed write set (%d leaf pages per commit): pages examined stay constant as the"
    writes_per_commit;
  note "tree grows 4^2 -> 4^5, and scale only with the number of intervening commits"

(* A4 — tracing as an observer: the same seeded workload with the null
   sink, a ring sink and a streaming sink. Tracing charges no simulated
   time, so every outcome metric must be bit-identical across sinks; the
   event count is the (deterministic) volume a traced run produces. *)
let a4 () =
  banner "a4-trace-overhead" "Tracing is an observer: identical outcomes, counted events"
    "DESIGN.md Observability: virtual-time traces cannot perturb the run";
  let module Trace = Afs_trace.Trace in
  let module Engine = Afs_sim.Engine in
  let open Afs_workload in
  let shape = { Workload.small_updates with nfiles = 16; pages_per_file = 8 } in
  let config =
    { Driver.default_config with clients = 8; duration_ms = 2_000.0; think_ms = 10.0 }
  in
  let run make_trace =
    let engine = Engine.create () in
    let tr = make_trace engine in
    Engine.set_trace engine tr;
    let store = Store.memory () in
    let srv = Server.create ~trace:tr store in
    let files = ok (Workload.setup_pages srv shape ~initial:(bytes "00000000")) in
    let host = Afs_rpc.Remote.host ~latency_ms:2.0 engine ~name:"afs" srv in
    let sut = Sut.afs_remote (Afs_rpc.Remote.connect [ host ]) ~fallback:srv ~files in
    let report = Driver.run engine config sut ~gen:(Workload.make shape) in
    (report, Trace.events_emitted tr)
  in
  let null_report, _ = run (fun _ -> Trace.null) in
  let ring_report, ring_events =
    run (fun engine -> Trace.ring ~now:(fun () -> Engine.now engine) ())
  in
  let stream_report, stream_events =
    run (fun engine -> Trace.stream ~now:(fun () -> Engine.now engine) (fun _ -> ()))
  in
  let row label (r : Driver.report) events =
    [
      label;
      string_of_int r.Driver.committed;
      string_of_int r.Driver.attempts;
      f2 r.Driver.mean_latency_ms;
      (match events with Some n -> string_of_int n | None -> "-");
    ]
  in
  table
    [ "sink"; "committed"; "attempts"; "mean-ms"; "events" ]
    [
      row "null (tracing off)" null_report None;
      row "ring" ring_report (Some ring_events);
      row "stream" stream_report (Some stream_events);
    ];
  let same =
    null_report.Driver.committed = ring_report.Driver.committed
    && ring_report.Driver.committed = stream_report.Driver.committed
    && null_report.Driver.attempts = ring_report.Driver.attempts
    && null_report.Driver.mean_latency_ms = ring_report.Driver.mean_latency_ms
  in
  metric_i "a4-trace-overhead" "trace.events" ring_events;
  metric_i "a4-trace-overhead" "outcomes_identical" (if same then 1 else 0);
  metric_i "a4-trace-overhead" "committed" null_report.Driver.committed;
  note "all sinks see the same virtual execution: committed/attempts/latency match exactly;";
  note "a traced run of this workload produces %d events" ring_events
