(* l1: the static-analysis gate as a bench metric.

   Running the analyzer inside the harness publishes the finding and
   suppression counts into the bench trajectory, so the committed
   BENCH_afs.json regression-checks them: a new non-allowlisted finding
   or a creeping allowlist moves a deterministic metric and fails the
   baseline comparison — the suppression count can only be ratcheted
   down deliberately, with a baseline update in the same change. *)

let l1 () =
  Exp_util.banner "l1-lint-gate" "Static analysis: findings and suppressions"
    "tooling gate (no paper section)";
  let allowlist = Lint_allow.load "lint.allow" in
  let r = Lint_engine.run ~allowlist ~root:"." [ "lib"; "bin"; "bench"; "examples" ] in
  List.iter (fun d -> Exp_util.note "missing scan dir: %s" d) r.Lint_engine.missing_dirs;
  List.iter
    (fun (file, reason) -> Exp_util.note "unparseable: %s (%s)" file reason)
    r.Lint_engine.broken;
  let findings = List.length r.Lint_engine.findings in
  let errors =
    List.length
      (List.filter
         (fun (f : Lint_types.finding) -> f.severity = Lint_types.Error)
         r.Lint_engine.findings)
  in
  let allowlisted = List.length r.Lint_engine.suppressed in
  Exp_util.table
    [ "metric"; "count" ]
    [
      [ "files scanned"; string_of_int r.Lint_engine.files_scanned ];
      [ "findings"; string_of_int findings ];
      [ "errors"; string_of_int errors ];
      [ "allowlisted"; string_of_int allowlisted ];
    ];
  Exp_util.metric_i "lint" "findings" findings;
  Exp_util.metric_i "lint" "allowlisted" allowlisted
