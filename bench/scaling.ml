(* Shard-scaling experiments for the cluster layer. *)

open Exp_util
module Engine = Afs_sim.Engine
module Server = Afs_core.Server
module Store = Afs_core.Store
module Remote = Afs_rpc.Remote
module Cluster = Afs_cluster.Cluster

(* S1 — throughput vs shard count at fixed offered load, plus the
   equivalence anchor: a one-shard cluster must report bit-identically to
   the bare remote server, because the cluster layer adds only a local
   routing lookup and a zero-cost location check in front of the same RPC
   sequence. Each server serialises its requests (one simulated CPU), so
   with enough concurrent clients the single server is the bottleneck and
   committed throughput must rise with the shard count. *)
let s1 () =
  banner "s1-shard-scaling" "Committed throughput vs shard count, fixed 32 clients"
    "§2: growth of the system's capacity by adding servers";
  let open Afs_workload in
  let shape = { Workload.small_updates with nfiles = 64; pages_per_file = 8 } in
  let config =
    { Driver.default_config with clients = 32; duration_ms = 4_000.0; think_ms = 5.0 }
  in
  let gen = Workload.make shape in
  let run_cluster shards =
    let engine = Engine.create () in
    let cluster = Cluster.create ~latency_ms:2.0 engine ~shards in
    let files = ok (Workload.setup_cluster cluster shape ~initial:(bytes "0")) in
    let sut = Sut.afs_cluster (Afs_cluster.Cluster_client.connect cluster) ~files in
    Driver.run engine config sut ~gen
  in
  let run_bare () =
    let engine = Engine.create () in
    let store = Store.memory () in
    let srv = Server.create store in
    let files = ok (Workload.setup_pages srv shape ~initial:(bytes "0")) in
    let host = Remote.host ~latency_ms:2.0 engine ~name:"afs" srv in
    let sut = Sut.afs_remote (Remote.connect [ host ]) ~fallback:srv ~files in
    Driver.run engine config sut ~gen
  in
  let bare = run_bare () in
  let shard_counts = [ 1; 2; 4 ] in
  let reports = List.map (fun n -> (n, run_cluster n)) shard_counts in
  let row label (r : Driver.report) =
    [
      label;
      string_of_int r.Driver.committed;
      string_of_int r.Driver.attempts;
      f1 r.Driver.throughput_per_s;
      f2 r.Driver.mean_latency_ms;
      f2 r.Driver.p95_ms;
    ]
  in
  table
    [ "configuration"; "committed"; "attempts"; "thru/s"; "mean-ms"; "p95-ms" ]
    (row "bare server (no cluster layer)" bare
    :: List.map (fun (n, r) -> row (Printf.sprintf "%d shard(s)" n) r) reports);
  let committed n = (List.assoc n reports).Driver.committed in
  let one = List.assoc 1 reports in
  let identical =
    one.Driver.committed = bare.Driver.committed
    && one.Driver.given_up = bare.Driver.given_up
    && one.Driver.attempts = bare.Driver.attempts
    && one.Driver.mean_latency_ms = bare.Driver.mean_latency_ms
    && one.Driver.p50_ms = bare.Driver.p50_ms
    && one.Driver.p95_ms = bare.Driver.p95_ms
    && one.Driver.p99_ms = bare.Driver.p99_ms
    && one.Driver.retry_histogram = bare.Driver.retry_histogram
  in
  let monotonic = committed 1 < committed 2 && committed 2 < committed 4 in
  List.iter
    (fun (n, (r : Driver.report)) ->
      metric_i "s1-shard-scaling" (Printf.sprintf "shards%d.committed" n) r.Driver.committed;
      metric_i "s1-shard-scaling" (Printf.sprintf "shards%d.attempts" n) r.Driver.attempts)
    reports;
  metric "s1-shard-scaling" "speedup_4shards"
    (Afs_util.Stats.ratio (committed 4) (committed 1));
  metric_i "s1-shard-scaling" "monotonic" (if monotonic then 1 else 0);
  metric_i "s1-shard-scaling" "oneshard_identical_to_bare" (if identical then 1 else 0);
  note "one shard == bare server field for field: the cluster layer is free until sharded;";
  note "throughput then scales with shards because each server serialises its requests"
