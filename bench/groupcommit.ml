(* Group-commit experiments: the amortised commit pipeline. *)

open Exp_util
module Engine = Afs_sim.Engine
module Server = Afs_core.Server
module Cluster = Afs_cluster.Cluster
module Shard = Afs_cluster.Shard
module Stats = Afs_util.Stats

(* A5 — committed throughput vs commit batch window at a fixed 4-shard
   cluster under the s1 mix. Each shard's RPC host drains up to [window]
   queued commit requests into one validate → merge → publish run: the
   members share one serialisability pre-test over the union of the
   winners' write sets and one amortised stable-storage publish leg, so
   the per-commit cost of the critical section falls as the window grows.
   Window 1 must be bit-identical to a run with no batching configured at
   all — the pipeline refactor is free until a window is asked for. *)
let a5 () =
  banner "a5-group-commit" "Committed throughput vs commit batch window, 4 shards"
    "§5.2 commit amortised: batched validation, one stable-storage leg per batch";
  let open Afs_workload in
  let shape = { Workload.small_updates with nfiles = 64; pages_per_file = 8 } in
  let config =
    { Driver.default_config with clients = 32; duration_ms = 4_000.0; think_ms = 5.0 }
  in
  let gen = Workload.make shape in
  let run ?group_commit () =
    let engine = Engine.create () in
    let cluster = Cluster.create ~latency_ms:2.0 ?group_commit engine ~shards:4 in
    let files = ok (Workload.setup_cluster cluster shape ~initial:(bytes "0")) in
    let sut = Sut.afs_cluster (Afs_cluster.Cluster_client.connect cluster) ~files in
    let report = Driver.run engine config sut ~gen in
    let sum name =
      List.fold_left
        (fun acc s -> acc + Stats.Counter.get (Server.counters (Shard.server s)) name)
        0 (Cluster.shards cluster)
    in
    let batches = sum "commits.batches" and members = sum "commits.batch_members" in
    (report, if batches = 0 then 1.0 else Stats.ratio members batches)
  in
  let unbatched, _ = run () in
  let windows = [ 1; 2; 4; 8; 16 ] in
  let runs = List.map (fun w -> (w, run ~group_commit:w ())) windows in
  let row label (r : Driver.report) mean_batch =
    [
      label;
      string_of_int r.Driver.committed;
      string_of_int r.Driver.attempts;
      f1 r.Driver.throughput_per_s;
      f2 r.Driver.mean_latency_ms;
      f2 r.Driver.p95_ms;
      f2 mean_batch;
    ]
  in
  table
    [ "configuration"; "committed"; "attempts"; "thru/s"; "mean-ms"; "p95-ms"; "batch" ]
    (row "no batching configured" unbatched 1.0
    :: List.map (fun (w, (r, mb)) -> row (Printf.sprintf "window %2d" w) r mb) runs);
  let committed w = (fst (List.assoc w runs)).Driver.committed in
  let one = fst (List.assoc 1 runs) in
  let identical =
    one.Driver.committed = unbatched.Driver.committed
    && one.Driver.given_up = unbatched.Driver.given_up
    && one.Driver.attempts = unbatched.Driver.attempts
    && one.Driver.mean_latency_ms = unbatched.Driver.mean_latency_ms
    && one.Driver.p50_ms = unbatched.Driver.p50_ms
    && one.Driver.p95_ms = unbatched.Driver.p95_ms
    && one.Driver.p99_ms = unbatched.Driver.p99_ms
    && one.Driver.retry_histogram = unbatched.Driver.retry_histogram
  in
  (* The step change the batching buys: strictly more commits from window
     1 to the best window. *)
  let best = List.fold_left (fun acc w -> max acc (committed w)) 0 windows in
  List.iter
    (fun (w, ((r : Driver.report), mean_batch)) ->
      metric_i "a5-group-commit" (Printf.sprintf "window%d.committed" w) r.Driver.committed;
      metric "a5-group-commit" (Printf.sprintf "window%d.mean_batch" w) mean_batch)
    runs;
  let rec strictly_rising = function
    | a :: (b :: _ as rest) -> committed a < committed b && strictly_rising rest
    | _ -> true
  in
  metric "a5-group-commit" "best_speedup" (Stats.ratio best (committed 1));
  metric_i "a5-group-commit" "window1_identical_to_unbatched" (if identical then 1 else 0);
  metric_i "a5-group-commit" "step_change" (if best > committed 1 then 1 else 0);
  metric_i "a5-group-commit" "monotonic" (if strictly_rising windows then 1 else 0);
  note "window 1 == no batching field for field: the pipeline is free until a window is set;";
  note "wider windows amortise the validation pass and the stable-storage leg per batch"
