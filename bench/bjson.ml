(* Minimal JSON for the bench trajectory file: a flat object of numeric
   metrics, written one pair per line so baselines diff cleanly, plus a
   scanner for exactly that shape. No external JSON dependency. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

(* Serialise a metrics document: sorted keys, one per line. *)
let document ~schema metrics =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"schema\": \"%s\",\n" (escape schema));
  Buffer.add_string buf "  \"metrics\": {\n";
  let metrics = List.sort compare metrics in
  let n = List.length metrics in
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": %s%s\n" (escape k) (number v)
           (if i = n - 1 then "" else ",")))
    metrics;
  Buffer.add_string buf "  }\n}\n";
  Buffer.contents buf

(* Extract ["name": number] pairs from a document written by {!document}
   (one pair per line). Lines that do not look like a metric — the schema
   line, braces — are skipped. *)
let parse_metrics text =
  let parse_line line =
    let line = String.trim line in
    let line =
      if String.length line > 0 && line.[String.length line - 1] = ',' then
        String.sub line 0 (String.length line - 1)
      else line
    in
    match String.index_opt line ':' with
    | None -> None
    | Some i ->
        let key = String.trim (String.sub line 0 i) in
        let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
        if String.length key < 2 || key.[0] <> '"' || key.[String.length key - 1] <> '"' then
          None
        else
          let key = String.sub key 1 (String.length key - 2) in
          (match float_of_string_opt value with Some v -> Some (key, v) | None -> None)
  in
  String.split_on_char '\n' text |> List.filter_map parse_line
