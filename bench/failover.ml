(* Failover experiments for the replication plane. *)

open Exp_util
module Engine = Afs_sim.Engine
module Proc = Afs_sim.Proc
module Trace = Afs_trace.Trace
module Cluster = Afs_cluster.Cluster
module Shard = Afs_cluster.Shard
module Replica = Afs_replica.Replica
module Faults = Afs_replica.Faults
module Remote = Afs_rpc.Remote
module Page = Afs_core.Page
module Store = Afs_core.Store
module Stats = Afs_util.Stats

(* R1 — availability, replication lag and zero loss across a primary
   kill. A deterministic Faults schedule crashes one shard's primary
   mid-load and promotes its replica; the full event trace doubles as the
   safety oracle: every commit-time test-and-set the killed shard won
   before the kill must name a block that is still readable — with its
   commit reference set — on the promoted store. Availability is read
   off the same trace as committed transactions per 100 ms window. *)
let r1 () =
  banner "r1-failover" "Availability, lag and zero loss across a primary kill"
    "§3.1: clients do not wait for a restore — they use another server";
  let open Afs_workload in
  let shards = 4 and replicas = 1 in
  let kill_shard = 2 and kill_ms = 3_000.0 and failover_ms = 25.0 in
  let duration_ms = 8_000.0 in
  let window_ms = 100.0 in
  let shape = { Workload.small_updates with nfiles = 32; pages_per_file = 8 } in
  let engine = Engine.create () in
  let events = ref [] in
  let trace =
    Trace.stream ~now:(fun () -> Engine.now engine) (fun e -> events := e :: !events)
  in
  let cluster = Cluster.create ~latency_ms:2.0 ~replicas ~trace engine ~shards in
  let faults = Faults.create engine in
  Faults.set_trace faults trace;
  let promoted = ref None in
  Faults.at faults ~ms:kill_ms
    ~label:(Printf.sprintf "kill-primary:%d" kill_shard)
    (fun () ->
      Remote.crash_host (Shard.host (Cluster.shard cluster kill_shard));
      Proc.delay failover_ms;
      promoted := Some (Cluster.promote cluster kill_shard));
  let files = ok (Workload.setup_cluster cluster shape ~initial:(bytes "0")) in
  let config =
    { Driver.default_config with clients = 16; duration_ms; think_ms = 10.0 }
  in
  let report =
    Driver.run engine config
      (Sut.afs_cluster (Afs_cluster.Cluster_client.connect cluster) ~files)
      ~gen:(Workload.make shape)
  in
  (match !promoted with
  | Some (Ok _) -> ()
  | Some (Error e) ->
      failwith (Printf.sprintf "promotion failed: %s" (Afs_core.Errors.to_string e))
  | None -> failwith "the kill never fired");
  let events = List.rev !events in

  (* Span parentage, for attributing points to the shard whose commit
     span encloses them. *)
  let spans = Hashtbl.create 4096 in
  List.iter
    (function
      | Trace.Span_open { id; parent; kind; label; _ } ->
          Hashtbl.replace spans id (parent, kind, label)
      | _ -> ())
    events;
  let rec commit_label span =
    match Hashtbl.find_opt spans span with
    | None -> None
    | Some (parent, kind, label) ->
        if kind = "commit" || kind = "commit_batch" then Some label
        else commit_label parent
  in

  (* The zero-loss oracle: every test-and-set the killed shard won before
     the kill names a base version block; after promotion that block must
     still read — from the promoted store — as a page with its commit
     reference set. *)
  let promoted_store =
    match Cluster.replication_source cluster kill_shard with
    | Some src -> Replica.Source.inner_store src
    | None -> failwith "promoted shard has no source"
  in
  let killed_name = Printf.sprintf "shard-%d" kill_shard in
  let won_before_kill = ref 0 and lost = ref 0 in
  List.iter
    (function
      | Trace.Point
          { at_ms; span; payload = Trace.Test_and_set { block; won = true }; _ }
        when at_ms < kill_ms && commit_label span = Some killed_name -> (
          incr won_before_kill;
          match promoted_store.Store.read block with
          | Error _ -> incr lost
          | Ok data -> (
              match Page.decode data with
              | Error _ -> incr lost
              | Ok page ->
                  if page.Page.header.Page.commit_ref = None then incr lost))
      | _ -> ())
    events;

  (* Availability: committed transactions per window, cluster-wide, read
     off the commit-outcome points. *)
  let nwindows = int_of_float (duration_ms /. window_ms) in
  let per_window = Array.make nwindows 0 in
  List.iter
    (function
      | Trace.Point { at_ms; payload = Trace.Commit_outcome { outcome; _ }; _ }
        when outcome = "fastpath" || outcome = "merged" ->
          let w = int_of_float (at_ms /. window_ms) in
          if w >= 0 && w < nwindows then per_window.(w) <- per_window.(w) + 1
      | _ -> ())
    events;
  let idle = Array.fold_left (fun n c -> if c = 0 then n + 1 else n) 0 per_window in
  let availability = 100.0 *. float_of_int (nwindows - idle) /. float_of_int nwindows in
  let kill_w = int_of_float (kill_ms /. window_ms) in
  let around lo hi =
    let t = ref 0 and n = ref 0 in
    for w = max 0 lo to min (nwindows - 1) hi do
      t := !t + per_window.(w);
      incr n
    done;
    float_of_int !t /. float_of_int (max 1 !n)
  in
  let before = around (kill_w - 10) (kill_w - 1) in
  let blackout = around kill_w (kill_w + 9) in
  let after = around (kill_w + 10) (kill_w + 19) in

  (* Replication lag, pooled over every surviving replica. *)
  let lag =
    List.fold_left
      (fun acc i ->
        List.fold_left
          (fun acc r -> Stats.Histogram.merge acc (Replica.lag_histogram r))
          acc
          (Cluster.replicas_of cluster i))
      (Stats.Histogram.create ())
      (List.init shards Fun.id)
  in
  let counters = Cluster.counters cluster in
  let get = Stats.Counter.get counters in

  table
    [ "phase"; "commits/100ms" ]
    [
      [ "steady (1s before kill)"; f2 before ];
      [ "kill + failover (1s)"; f2 blackout ];
      [ "recovered (next 1s)"; f2 after ];
    ];
  table
    [ "metric"; "value" ]
    [
      [ "committed"; string_of_int report.Driver.committed ];
      [ "given up"; string_of_int report.Driver.given_up ];
      [ "availability (% windows with a commit)"; f1 availability ];
      [ "test-and-sets won on killed shard pre-kill"; string_of_int !won_before_kill ];
      [ "of those lost after promotion"; string_of_int !lost ];
      [ "batches shipped"; string_of_int (get "replica.shipped") ];
      [ "batches applied"; string_of_int (get "replica.applied") ];
      [ "fenced publishes"; string_of_int (get "replica.fenced") ];
      [ "replication lag p50 (ms)"; f2 (Stats.Histogram.percentile lag 0.5) ];
      [ "replication lag p95 (ms)"; f2 (Stats.Histogram.percentile lag 0.95) ];
      [ "replication lag max (ms)"; f2 (Stats.Histogram.percentile lag 1.0) ];
    ];
  note "the commit stream is fed synchronously at publish, applied one interval later;";
  note "surviving shards ride out the kill (%d of %d windows idle) and all %d \
        transactions the killed shard committed pre-kill survive promotion."
    idle nwindows !won_before_kill;
  if !lost > 0 then failwith "r1-failover: committed transactions lost across failover";
  if !won_before_kill = 0 then failwith "r1-failover: oracle vacuous (no pre-kill commits)";

  metric_i "r1-failover" "committed" report.Driver.committed;
  metric_i "r1-failover" "given_up" report.Driver.given_up;
  metric "r1-failover" "availability_pct" availability;
  metric_i "r1-failover" "idle_windows" idle;
  metric_i "r1-failover" "won_before_kill" !won_before_kill;
  metric_i "r1-failover" "lost_after_promotion" !lost;
  metric_i "r1-failover" "promotions" (get "promotions");
  metric_i "r1-failover" "shipped" (get "replica.shipped");
  metric "r1-failover" "lag_p50_ms" (Stats.Histogram.percentile lag 0.5);
  metric "r1-failover" "lag_p95_ms" (Stats.Histogram.percentile lag 0.95)
