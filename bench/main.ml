(* The experiment harness: regenerates every figure- and claim-level
   result catalogued in DESIGN.md / EXPERIMENTS.md.

   Run everything:        dune exec bench/main.exe
   One experiment:        dune exec bench/main.exe -- --only c1-occ-vs-locking
   Bench trajectory:      dune exec bench/main.exe -- --json BENCH_afs.json
   CI regression check:   dune exec bench/main.exe -- --json bench.json \
                            --check-baseline BENCH_afs.json
   Add Bechamel micros:   dune exec bench/main.exe -- --bechamel
   List experiments:      dune exec bench/main.exe -- --list *)

let experiments =
  [
    ("f1-hierarchy", Figures.f1);
    ("f2-tree-of-trees", Figures.f2);
    ("f3-page-codec", Figures.f3);
    ("f4-version-chain", Figures.f4);
    ("f5-commit-fastpath", Figures.f5);
    ("f6-concurrent-commit", Figures.f6);
    ("c1-occ-vs-locking", Claims.c1);
    ("c2-crash-recovery", Claims.c2);
    ("c3-cache-validation", Claims.c3);
    ("c4-serialise-cost", Claims.c4);
    ("c5-stable-storage", Claims.c5);
    ("c6-superfile-locking", Claims.c6);
    ("c7-write-once", Claims.c7);
    ("c8-starvation", Claims.c8);
    ("c9-one-page-files", Claims.c9);
    ("a1-flag-cache", Ablations.a1);
    ("a2-gc", Ablations.a2);
    ("a3-write-back", Ablations.a3);
    ("a4-trace-overhead", Ablations.a4);
    ("m1-validate-after-n", Ablations.m1);
    ("s1-shard-scaling", Scaling.s1);
    ("a5-group-commit", Groupcommit.a5);
    ("r1-failover", Failover.r1);
    ("l1-lint-gate", Lintgate.l1);
    ("m2-engine-speed", Enginespeed.m2);
    ("a6-million", Enginespeed.a6);
    ("s2-cross-shard", Crossshard.s2);
  ]

(* Wall-clock is machine-dependent: recorded only under --timed, published
   under a ".wall_us" suffix the baseline checker ignores. Experiments
   that publish their own machine-dependent numbers (wall throughput,
   host-GC words) use the ".reported" suffix, treated the same way. *)
let wall_us = "wall_us"
let reported = "reported"

let run_one ~timed (id, f) =
  if timed then begin
    let t0 = Monotonic_clock.now () in
    f ();
    let t1 = Monotonic_clock.now () in
    Exp_util.metric id wall_us (Int64.to_float (Int64.sub t1 t0) /. 1_000.0)
  end
  else f ()

let has_suffix name tag =
  let suffix = "." ^ tag in
  let nl = String.length name and sl = String.length suffix in
  nl >= sl && String.sub name (nl - sl) sl = suffix

let is_wall_clock name = has_suffix name wall_us || has_suffix name reported

(* Compare this run's metrics against a committed baseline: any
   deterministic metric drifting more than [tolerance] (relative) fails.
   Only keys present in both are compared, so a smoke run of a few
   experiments checks against the full committed trajectory. *)
let check_baseline ~tolerance path current =
  let text = In_channel.with_open_text path In_channel.input_all in
  let baseline = Bjson.parse_metrics text in
  let failures = ref 0 and compared = ref 0 in
  List.iter
    (fun (name, base) ->
      match List.assoc_opt name current with
      | None -> ()
      | Some now when is_wall_clock name ->
          Printf.printf "baseline (informational) %s: %.1f -> %.1f\n" name base now
      | Some now ->
          incr compared;
          let drift = Float.abs (now -. base) /. Float.max (Float.abs base) 1.0 in
          if drift > tolerance then begin
            incr failures;
            Printf.printf "baseline REGRESSION %s: %.2f -> %.2f (%.0f%% > %.0f%%)\n" name
              base now (100.0 *. drift) (100.0 *. tolerance)
          end)
    baseline;
  Printf.printf "baseline check vs %s: %d metrics compared, %d regressions\n" path !compared
    !failures;
  if !failures > 0 then exit 1

let () =
  let only = ref [] in
  let list_only = ref false in
  let bechamel = ref false in
  let bechamel_smoke = ref false in
  let timed = ref false in
  let json_out = ref "" in
  let baseline = ref "" in
  let speclist =
    [
      ( "--only",
        Arg.String (fun s -> only := s :: !only),
        "ID  run only the experiment with this id (repeatable)" );
      ("--list", Arg.Set list_only, "  list experiment ids and exit");
      ("--bechamel", Arg.Set bechamel, "  also run the Bechamel micro-benchmarks");
      ( "--bechamel-smoke",
        Arg.Set bechamel_smoke,
        "  run the micro-benchmarks with a short quota (CI smoke); without --only,\n\
         \     skips the experiment suite" );
      ("--timed", Arg.Set timed, "  record wall-clock per experiment (informational)");
      ( "--json",
        Arg.Set_string json_out,
        "FILE  write the run's metrics to FILE as JSON (the bench trajectory)" );
      ( "--check-baseline",
        Arg.Set_string baseline,
        "FILE  fail if any deterministic metric drifts >10% from FILE" );
    ]
  in
  Arg.parse speclist
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "main.exe [--list] [--only ID]... [--json FILE] [--check-baseline FILE] [--timed] [--bechamel]";
  if !list_only then List.iter (fun (id, _) -> print_endline id) experiments
  else begin
    let selected =
      (* Smoke mode exists so CI can time just the micros: with no
         explicit selection it runs no experiments. *)
      if !only = [] then (if !bechamel_smoke then [] else experiments)
      else
        List.filter_map
          (fun id ->
            match List.assoc_opt id experiments with
            | Some f -> Some (id, f)
            | None ->
                Printf.eprintf "unknown experiment %S (use --list)\n" id;
                exit 1)
          (List.rev !only)
    in
    Printf.printf
      "Amoeba File Service reproduction — experiment harness (%d experiments)\n"
      (List.length selected);
    Printf.printf "All times are SIMULATED unless marked as Bechamel wall-clock.\n";
    List.iter (run_one ~timed:!timed) selected;
    if !bechamel then Micro.run ();
    if !bechamel_smoke then Micro.run ~smoke:true ();
    let metrics = Exp_util.all_metrics () in
    if !json_out <> "" then begin
      Out_channel.with_open_text !json_out (fun oc ->
          Out_channel.output_string oc (Bjson.document ~schema:"afs-bench/1" metrics));
      Printf.printf "\nwrote %d metrics to %s\n" (List.length metrics) !json_out
    end;
    if !baseline <> "" then check_baseline ~tolerance:0.10 !baseline metrics;
    Printf.printf "\n%s\ndone.\n" (String.make 78 '=')
  end
