(* The paper's quantitative prose claims, each turned into a measured
   experiment with the baselines the paper itself names. *)

open Exp_util
module Engine = Afs_sim.Engine
module Proc = Afs_sim.Proc
module Server = Afs_core.Server
module Store = Afs_core.Store
module Cache = Afs_core.Cache
module Gc = Afs_core.Gc
module Pagestore = Afs_core.Pagestore
module Serialise = Afs_core.Serialise
module Errors = Afs_core.Errors
module Remote = Afs_rpc.Remote
module Twopl = Afs_baseline.Twopl
module Tsorder = Afs_baseline.Tsorder
module Stable = Afs_stable.Stable_pair
module Disk = Afs_disk.Disk
module Media = Afs_disk.Media
module P = Afs_util.Pagepath
module Xrng = Afs_util.Xrng
open Afs_workload

let ok_str = function Ok v -> v | Error msg -> failwith msg

(* {2 C1 — OCC vs locking vs timestamps} *)

let c1_run_afs engine shape config =
  let store = Store.memory () in
  let srv = Server.create store in
  let files = ok (Workload.setup_pages srv shape ~initial:(bytes "00000000")) in
  let host = Remote.host ~latency_ms:2.0 engine ~name:"afs" srv in
  let sut = Sut.afs_remote (Remote.connect [ host ]) ~fallback:srv ~files in
  Driver.run engine config sut ~gen:(Workload.make shape)

(* Two servers over one store, transactions balanced across them: the
   §5.2 "any server can be allowed to carry out a commit" configuration. *)
let c1_run_afs_pair engine shape config =
  let store = Store.memory () in
  let ports = Afs_core.Ports.create () in
  let srv1 = Server.create ~seed:7 ~ports store in
  let srv2 = Server.create ~seed:7 ~ports store in
  let files = ok (Workload.setup_pages srv1 shape ~initial:(bytes "00000000")) in
  let host1 = Remote.host ~latency_ms:2.0 engine ~name:"afs-1" srv1 in
  let host2 = Remote.host ~latency_ms:2.0 engine ~name:"afs-2" srv2 in
  let conn = Remote.connect ~balance:true [ host1; host2 ] in
  let sut = Sut.afs_remote ~name:"afs-occ-2srv" conn ~fallback:srv1 ~files in
  Driver.run engine config sut ~gen:(Workload.make shape)

let c1_run_twopl engine shape config =
  (* The vulnerability threshold must exceed a healthy transaction's
     duration or prodding turns into mutual slaughter; XDFS prods only
     apparently-stuck holders. *)
  let backend =
    Twopl.create ~vulnerable_after_ms:2_000.0 ~clock:(fun () -> Engine.now engine) ()
  in
  (* [remote]: each lock/read/write/commit is one request to a serialised
     endpoint with the same cost model as the AFS host. *)
  let sut =
    Sut.twopl ~remote:engine backend ~pages_per_file:shape.Workload.pages_per_file
      ~retry_wait_ms:8.0
  in
  Driver.run engine config sut ~gen:(Workload.make shape)

let c1_run_tso engine shape config =
  let backend = Tsorder.create () in
  let sut = Sut.tsorder ~remote:engine backend ~pages_per_file:shape.Workload.pages_per_file in
  Driver.run engine config sut ~gen:(Workload.make shape)

let c1 () =
  banner "c1-occ-vs-locking"
    "Throughput and aborts: optimistic vs XDFS-2PL vs SWALLOW timestamps"
    "§3.1/§6: OCC maximises concurrency for small updates; locking suits large contended ones";
  let config =
    { Driver.default_config with clients = 16; duration_ms = 20_000.0; think_ms = 20.0 }
  in
  let scenarios =
    [
      ( "small updates, low contention",
        { Workload.small_updates with nfiles = 64; pages_per_file = 16 } );
      ( "small updates, hot files (zipf .9)",
        { Workload.small_updates with nfiles = 8; pages_per_file = 16; file_theta = 0.9;
          page_theta = 0.9 } );
      ( "medium updates (8 pages), hot",
        { Workload.small_updates with nfiles = 4; pages_per_file = 32; read_pages = 4;
          rmw_pages = 4; file_theta = 0.9; page_theta = 0.6 } );
      ( "large updates (24 pages), 2 hot files",
        { Workload.small_updates with nfiles = 2; pages_per_file = 48; read_pages = 12;
          rmw_pages = 12; file_theta = 0.9; page_theta = 0.4 } );
    ]
  in
  List.iter
    (fun (label, shape) ->
      Printf.printf "\n-- %s --\n" label;
      let rows =
        List.map
          (fun run ->
            let report = run (Engine.create ()) shape config in
            let redo = report.Driver.attempts - report.Driver.committed - report.Driver.given_up in
            [
              report.Driver.sut_name;
              string_of_int report.Driver.committed;
              f1 report.Driver.throughput_per_s;
              pct redo report.Driver.attempts;
              string_of_int report.Driver.given_up;
              f2 report.Driver.mean_latency_ms;
              f2 report.Driver.p99_ms;
            ])
          [ c1_run_afs; c1_run_afs_pair; c1_run_twopl; c1_run_tso ]
      in
      table
        [ "system"; "committed"; "txn/s"; "redo rate"; "starved"; "mean ms"; "p99 ms" ]
        rows)
    scenarios;
  note "shape: OCC ties the best at low contention (locking pays lock round trips) and";
  note "leads clearly on small hot updates (redos are cheap). As update size grows the";
  note "redo bill erodes the lead towards parity with 2PL — the §3.1 crossover region —";
  note "which is why §5.3 switches large multi-file updates to locking (see c6/c8).";
  note "Timestamps starve old transactions outright on hot data (the 'starved' column)."

(* {2 C2 — crash recovery: no rollback, no lock clearing} *)

let c2 () =
  banner "c2-crash-recovery" "Service resumption after a server crash"
    "§3.1/§6: no rollback, no lock clearing, no intentions lists; clients just redo";
  (* AFS: two servers on one store; crash the primary mid-update and
     measure client-visible downtime in simulated ms. *)
  let afs_row =
    let engine = Engine.create () in
    let store = Store.memory () in
    let ports = Afs_core.Ports.create () in
    let srv1 = Server.create ~seed:3 ~ports store in
    let srv2 = Server.create ~seed:3 ~ports store in
    let host1 = Remote.host ~latency_ms:2.0 engine ~name:"afs-1" srv1 in
    let host2 = Remote.host ~latency_ms:2.0 engine ~name:"afs-2" srv2 in
    let conn = Remote.connect [ host1; host2 ] in
    let downtime = ref 0.0 in
    let lost_work = ref 0 in
    let _ =
      Proc.spawn engine (fun () ->
          let f = ok (Remote.create_file conn (bytes "state")) in
          (* Update in flight at crash time. *)
          let v = ok (Remote.create_version conn f) in
          ok (Remote.write_page conn v P.root (bytes "halfway"));
          let crash_at = Engine.now engine in
          Remote.crash_host host1;
          (* Client redoes on the surviving server. *)
          (match Remote.commit conn v with
          | Ok () -> ()
          | Error _ ->
              incr lost_work;
              let v = ok (Remote.create_version conn f) in
              ok (Remote.write_page conn v P.root (bytes "redone"));
              ok (Remote.commit conn v));
          downtime := Engine.now engine -. crash_at)
    in
    Engine.run engine;
    [ "afs-occ (failover)"; "0"; "0"; "0"; string_of_int !lost_work; f1 !downtime ]
  in
  (* 2PL: price the recovery actions with storage-scale constants — one
     disk write per intention replayed (28.8ms), 1ms per lock cleared,
     5ms per transaction rolled back — then add the restart itself. *)
  let twopl_row in_flight =
    let clock = ref 0.0 in
    let t = Twopl.create ~clock:(fun () -> !clock) () in
    let txns =
      List.init in_flight (fun i ->
          let txn = Twopl.begin_ t in
          for o = 0 to 3 do
            (match Twopl.read t txn ~obj:((i * 16) + o) with Ok _ -> () | Error _ -> ())
          done;
          (match Twopl.write t txn ~obj:((i * 16) + 8) (bytes "wip") with
          | Ok () -> ()
          | Error _ -> ());
          txn)
    in
    (* One of them crashes mid-commit with a six-entry intentions list. *)
    let committer = Twopl.begin_ t in
    for o = 100 to 105 do
      match Twopl.write t committer ~obj:o (bytes "commit me") with Ok () -> () | Error _ -> ()
    done;
    (match Twopl.crash_mid_commit t committer with Ok () -> () | Error _ -> ());
    ignore txns;
    let stats = Twopl.recover t in
    let ms =
      (1.0 *. float_of_int stats.Twopl.locks_cleared)
      +. (5.0 *. float_of_int stats.Twopl.txns_rolled_back)
      +. (28.8 *. float_of_int stats.Twopl.intentions_replayed)
    in
    [
      Printf.sprintf "xdfs-2pl (%d txns in flight)" in_flight;
      string_of_int stats.Twopl.locks_cleared;
      string_of_int stats.Twopl.txns_rolled_back;
      string_of_int stats.Twopl.intentions_replayed;
      string_of_int (in_flight + 1);
      f1 ms;
    ]
  in
  table
    [ "system"; "locks cleared"; "rollbacks"; "intentions replayed"; "updates redone";
      "downtime ms" ]
    [ afs_row; twopl_row 4; twopl_row 16; twopl_row 64 ];
  note "AFS downtime is one failed round trip plus the redo — constant; 2PL recovery work";
  note "grows linearly with in-flight transactions, and the service is down meanwhile"

(* {2 C3 — cache validation cost} *)

let c3 () =
  banner "c3-cache-validation" "Cache validation cost vs what actually changed"
    "§5.4: cost ~ |intersection|; unshared file => null operation; no unsolicited messages";
  let npages = 256 in
  let run ~intervening ~pages_per_commit =
    let store, srv, io = counting_server () in
    ignore store;
    let f = file_with_pages srv npages in
    let basis = ok (Server.current_block_of_file srv f) in
    let rng = Xrng.create 5 in
    for _ = 1 to intervening do
      let v = ok (Server.create_version srv f) in
      for _ = 1 to pages_per_commit do
        ok
          (Server.write_page srv v (P.of_list [ Xrng.int rng npages ]) (bytes "change"))
      done;
      ok (Server.commit srv v)
    done;
    ok (Pagestore.flush (Server.pagestore srv));
    Pagestore.drop_volatile (Server.pagestore srv);
    let r0, _ = io () in
    let v = ok (Cache.server_validate srv ~file:f ~basis_block:basis) in
    let r1, _ = io () in
    let key = Printf.sprintf "n%d_p%d" intervening pages_per_commit in
    metric "c3-cache-validation" (key ^ "_invalid")
      (float_of_int (List.length v.Cache.invalid));
    metric "c3-cache-validation" (key ^ "_reads") (float_of_int (r1 - r0));
    [
      string_of_int intervening;
      string_of_int pages_per_commit;
      string_of_int (List.length v.Cache.invalid);
      string_of_int (r1 - r0);
    ]
  in
  let rows =
    [ run ~intervening:0 ~pages_per_commit:0 ]
    @ List.map (fun n -> run ~intervening:n ~pages_per_commit:1) [ 1; 4; 16; 64 ]
    @ [ run ~intervening:4 ~pages_per_commit:16 ]
  in
  table
    [ "intervening commits"; "pages/commit"; "paths invalidated"; "store reads (cost)" ]
    rows;
  note "row 1 is the unshared-file case: zero reads beyond the currency check — the";
  note "validation is a null operation. Cost scales with changes, not with the %d-page file" npages

(* {2 C4 — serialisability test cost} *)

let c4 () =
  banner "c4-serialise-cost" "Serialisability test cost vs the two update sizes"
    "§5.2: one pass, skipping unvisited branches; fast when either update is small";
  let fanout = 8 and depth = 4 in
  let sizes = [ 1; 8; 64; 512 ] in
  let rows =
    List.concat_map
      (fun size_b ->
        List.map
          (fun size_c ->
            let _store, srv, _ = counting_server () in
            let f, leaves = deep_file srv ~fanout ~depth in
            let leaves = Array.of_list leaves in
            let vb = ok (Server.create_version srv f) in
            let vc = ok (Server.create_version srv f) in
            (* Interleaved disjoint leaves (candidate even, committed odd
               slots): no conflict, but the two access patterns share as
               much interior path as their sizes allow — the worst case
               for the walk. *)
            let nleaves = Array.length leaves in
            for i = 0 to size_b - 1 do
              ok (Server.write_page srv vb leaves.(2 * i mod nleaves) (bytes "b"))
            done;
            for i = 0 to size_c - 1 do
              ok (Server.write_page srv vc leaves.(((2 * i) + 1) mod nleaves) (bytes "c"))
            done;
            ok (Server.commit srv vc);
            let before = counter srv "serialise.pages_visited" in
            ok (Server.commit srv vb);
            let visited = counter srv "serialise.pages_visited" - before in
            metric "c4-serialise-cost"
              (Printf.sprintf "visited_b%d_c%d" size_b size_c)
              (float_of_int visited);
            [ string_of_int size_b; string_of_int size_c; string_of_int visited;
              f2 (float_of_int visited /. float_of_int (min size_b size_c + 1)) ])
          sizes)
      sizes
  in
  table
    [ "candidate pages"; "committed pages"; "pages visited"; "visited/min(sizes)" ]
    rows;
  note "tree has %d pages; the walk only descends branches BOTH updates copied, so cost"
    (int_of_float (float_of_int (Array.fold_left ( * ) 1 [| fanout; fanout; fanout; fanout |])));
  note "tracks the smaller update, exactly as §5.2 argues"

(* {2 C5 — stable storage} *)

let ok_stable (o : 'a Stable.outcome) =
  match o.Stable.result with
  | Ok v -> v
  | Error e -> failwith (Fmt.str "%a" Stable.pp_error e)

let c5 () =
  banner "c5-stable-storage" "Dual-server stable storage: overhead, collisions, recovery"
    "§4: write companion-first; collisions detected before damage; compare-notes recovery";
  (* Write overhead vs a plain single-disk block server. *)
  let plain_ms =
    let disk = Disk.create ~media:Media.magnetic ~blocks:1024 ~block_size:32768 () in
    let bs = Afs_block.Block_server.create ~disk () in
    let total = ref 0.0 in
    for _ = 1 to 100 do
      match Afs_block.Block_server.allocate bs 1 with
      | { Afs_block.Block_server.result = Ok b; _ } ->
          let o = Afs_block.Block_server.write bs 1 b (Bytes.make 4096 'x') in
          total := !total +. o.Afs_block.Block_server.cost_ms
      | _ -> ()
    done;
    !total /. 100.0
  in
  let stable_ms =
    let pair = Stable.create ~media:Media.magnetic ~blocks:1024 ~block_size:32768 () in
    let total = ref 0.0 in
    for _ = 1 to 100 do
      let o = Stable.allocate_write pair 0 (Bytes.make 4096 'x') in
      total := !total +. o.Stable.cost_ms
    done;
    !total /. 100.0
  in
  table [ "write path"; "ms per 4K allocate+write" ]
    [
      [ "plain block server (1 copy)"; f2 plain_ms ];
      [ "stable pair (2 copies + 1 hop)"; f2 stable_ms ];
      [ "overhead factor"; f2 (stable_ms /. plain_ms) ];
    ];
  (* Collision rate: interleaved allocations from both servers over a
     small address space, driving the protocol steps directly. *)
  Printf.printf "\nallocate collisions (two servers, interleaved tentative choices):\n";
  let collision_rows =
    List.map
      (fun blocks ->
        let pair = Stable.create ~seed:77 ~blocks ~block_size:256 () in
        let collisions = ref 0 and attempts = ref 0 in
        (let quota = blocks * 2 / 5 in
         for _ = 1 to quota do
           (* Both servers choose tentatively before either shadow-writes:
              the §4 race, forced. *)
           incr attempts;
           let a = Stable.tentative_allocate pair 0 in
           let b = Stable.tentative_allocate pair 1 in
           match (a.Stable.result, b.Stable.result) with
           | Ok ba, Ok bb ->
               (match Stable.shadow_write pair ~primary:0 ~fresh:true ba (bytes "a") with
               | { Stable.result = Error (Stable.Collision _); _ } ->
                   incr collisions;
                   Stable.abort_tentative pair 0 ba
               | { Stable.result = Ok seq; _ } ->
                   ignore (Stable.local_write_seq pair 0 ba (bytes "a") seq)
               | _ -> ());
               (match Stable.shadow_write pair ~primary:1 ~fresh:true bb (bytes "b") with
               | { Stable.result = Error (Stable.Collision _); _ } ->
                   incr collisions;
                   Stable.abort_tentative pair 1 bb
               | { Stable.result = Ok seq; _ } ->
                   ignore (Stable.local_write_seq pair 1 bb (bytes "b") seq)
               | _ -> ())
           | _ -> ()
         done);
        let invariant =
          match Stable.verify_companion_invariant pair with Ok () -> "holds" | Error _ -> "BROKEN"
        in
        [ string_of_int blocks; string_of_int !attempts; string_of_int !collisions;
          pct !collisions (2 * !attempts); invariant ])
      [ 16; 64; 256; 1024 ]
  in
  table [ "address space"; "paired attempts"; "collisions"; "collision rate"; "invariant" ]
    collision_rows;
  (* Recovery after an outage. *)
  Printf.printf "\nrecovery after outage (writes continue on the survivor):\n";
  let recovery_rows =
    List.map
      (fun writes_during_outage ->
        let pair = Stable.create ~blocks:4096 ~block_size:1024 () in
        let blocks_written =
          List.init 64 (fun i -> ok_stable (Stable.allocate_write pair 0 (bytes (string_of_int i))))
        in
        Stable.crash pair 1;
        for i = 0 to writes_during_outage - 1 do
          ignore
            (ok_stable
               (Stable.write pair 0 (List.nth blocks_written (i mod 64)) (bytes "updated")))
        done;
        let o = Stable.restart pair 1 in
        match o.Stable.result with
        | Ok repaired ->
            [ string_of_int writes_during_outage; string_of_int repaired; f1 o.Stable.cost_ms ]
        | Error e -> failwith (Fmt.str "%a" Stable.pp_error e))
      [ 0; 16; 64; 256 ]
  in
  table [ "writes during outage"; "blocks repaired"; "recovery cost ms" ] recovery_rows;
  note "overhead ~2x + a network hop buys: reads survive one disk loss, writes survive";
  note "one server loss, and collisions are caught at the companion before any damage"

(* {2 C6 — super-file locking keeps unrelated work flowing} *)

let c6 () =
  banner "c6-superfile-locking" "Small-file updates during a super-file update"
    "§5.3: unaccessed sub-files stay updatable; locks warn where conflicts are certain";
  let subfiles = 8 in
  let rows =
    List.map
      (fun touched ->
        let store = Store.memory () in
        let srv = Server.create store in
        let subs = List.init subfiles (fun _ -> file_with_pages srv 4) in
        let super = ok (Afs_core.Superfile.make srv ~subfiles:subs ()) in
        let u = ok (Afs_core.Superfile.begin_update srv super) in
        for i = 0 to touched - 1 do
          let sv = ok (Afs_core.Superfile.touch_subfile u ~index:i) in
          ok (Server.write_page srv sv (P.of_list [ 0 ]) (bytes "super"))
        done;
        (* Now 100 small updates across all sub-files. *)
        let committed = ref 0 and blocked = ref 0 in
        let rng = Xrng.create 9 in
        for _ = 1 to 100 do
          let target = List.nth subs (Xrng.int rng subfiles) in
          match Server.create_version srv target with
          | Ok v ->
              ok (Server.write_page srv v (P.of_list [ Xrng.int rng 4 ]) (bytes "small"));
              (match Server.commit srv v with Ok () -> incr committed | Error _ -> ())
          | Error (Errors.Locked_out _) -> incr blocked
          | Error e -> failwith (Errors.to_string e)
        done;
        ok (Afs_core.Superfile.commit u);
        [ string_of_int touched; string_of_int !committed; string_of_int !blocked;
          pct !blocked 100 ]
      )
      [ 0; 2; 4; 8 ]
  in
  table
    [ "sub-files locked by super update"; "small updates committed"; "blocked"; "blocked rate" ]
    rows;
  note "blocking tracks exactly the touched fraction (k/8): locking is surgical, not global"

(* {2 C7 — write-once media} *)

let c7 () =
  banner "c7-write-once" "A versioned store on write-once (optical) media"
    "§6: the version mechanism + a pre-commit cache is an ideal file store for optical disks";
  let updates = 300 in
  let run_hybrid ~cache =
    let store, worm_stats = Store.worm_hybrid ~blocks:200_000 ~block_size:33000 () in
    let srv = Server.create ~page_cache:cache store in
    let f = file_with_pages srv 16 in
    let rng = Xrng.create 4 in
    for i = 1 to updates do
      let v = ok (Server.create_version srv f) in
      ok (Server.write_page srv v (P.of_list [ Xrng.int rng 16 ]) (bytes (string_of_int i)));
      ok (Server.commit srv v)
    done;
    ok (Pagestore.flush (Server.pagestore srv));
    let s = worm_stats () in
    let readable =
      let cur = ok (Server.current_version srv f) in
      match Server.read_page srv cur (P.of_list [ 0 ]) with Ok _ -> "yes" | Error _ -> "no"
    in
    [ (if cache then "optical bulk + magnetic index, cache" else "same, write-through");
      string_of_int s.Store.bulk_writes; string_of_int s.Store.bulk_blocks;
      string_of_int s.Store.index_writes; string_of_int s.Store.index_blocks; readable ]
  in
  let run_magnetic () =
    let disk = Disk.create ~media:Media.magnetic ~blocks:200_000 ~block_size:33000 () in
    let bs = Afs_block.Block_server.create ~disk () in
    let store = Store.of_block_server bs ~account:1 in
    let srv = Server.create store in
    let f = file_with_pages srv 16 in
    let rng = Xrng.create 4 in
    for i = 1 to updates do
      let v = ok (Server.create_version srv f) in
      ok (Server.write_page srv v (P.of_list [ Xrng.int rng 16 ]) (bytes (string_of_int i)));
      ok (Server.commit srv v)
    done;
    let stats = ok (Gc.collect ~policy:{ Gc.retain_committed = 4; reshare = true } srv) in
    ok (Pagestore.flush (Server.pagestore srv));
    let s = Disk.stats disk in
    [ Printf.sprintf "all-magnetic + GC (reclaimed %d)" stats.Gc.blocks_freed;
      string_of_int s.Disk.writes; string_of_int s.Disk.blocks_in_use; "-"; "-"; "yes" ]
  in
  table
    [ "configuration"; "bulk writes"; "bulk blocks"; "index writes"; "index blocks";
      "readable" ]
    [ run_hybrid ~cache:true; run_hybrid ~cache:false; run_magnetic () ];
  note "%d one-page updates on a 16-page file. Only version pages ever need rewriting" updates;
  note "(commit references and flags), and they migrate to the small magnetic index —";
  note "Figure 2's 'top of the tree on magnetic media'. Every data page is etched exactly";
  note "once; history accumulates naturally on the WORM platter, unreclaimed by design"

(* {2 C8 — starvation of large updates and the soft-lock cure} *)

let c8 () =
  banner "c8-starvation" "A large update racing a stream of small ones"
    "§6: starvation can occur; the (soft) locking mechanism wards it off";
  let npages = 64 in
  let big_pages = 32 in
  let run ~seed ~small_every ~use_hint =
    let store = Store.memory () in
    let srv = Server.create store in
    let f = file_with_pages srv npages in
    let rng = Xrng.create seed in
    let ports = Server.ports srv in
    let small_round i =
      (* [small_every] small updates arrive between each big attempt. *)
      for _ = 1 to small_every do
        match Server.create_version ~respect_hints:use_hint srv f with
        | Ok v ->
            let p = Xrng.int rng npages in
            (match Server.read_page srv v (P.of_list [ p ]) with Ok _ -> () | Error _ -> ());
            ok (Server.write_page srv v (P.of_list [ p ]) (bytes (string_of_int i)));
            (match Server.commit srv v with Ok () -> () | Error _ -> ())
        | Error (Errors.Locked_out _) -> () (* Honouring the hint. *)
        | Error e -> failwith (Errors.to_string e)
      done
    in
    let rec big_attempt n =
      if n > 200 then None
      else begin
        let port = if use_hint then Afs_core.Ports.fresh ports else 0 in
        match Server.create_version ~updater_port:port srv f with
        | Error _ -> None
        | Ok v ->
            (* The big update reads and rewrites half the file. *)
            for p = 0 to big_pages - 1 do
              (match Server.read_page srv v (P.of_list [ p ]) with Ok _ -> () | Error _ -> ());
              ok (Server.write_page srv v (P.of_list [ p ]) (bytes "big"))
            done;
            small_round n;
            (match Server.commit srv v with
            | Ok () ->
                if use_hint then Afs_core.Ports.kill ports port;
                Some n
            | Error Errors.Conflict ->
                if use_hint then Afs_core.Ports.kill ports port;
                big_attempt (n + 1)
            | Error e -> failwith (Errors.to_string e))
      end
    in
    big_attempt 1
  in
  let trials = 30 in
  let summarise ~small_every ~use_hint =
    let total = ref 0 and starved = ref 0 in
    for seed = 1 to trials do
      match run ~seed ~small_every ~use_hint with
      | Some attempts -> total := !total + attempts
      | None ->
          incr starved;
          total := !total + 200
    done;
    Printf.sprintf "%.1f%s"
      (float_of_int !total /. float_of_int trials)
      (if !starved > 0 then Printf.sprintf " (%d starved)" !starved else "")
  in
  let rows =
    List.map
      (fun small_every ->
        [
          string_of_int small_every;
          summarise ~small_every ~use_hint:false;
          summarise ~small_every ~use_hint:true;
        ])
      [ 0; 1; 2; 4; 8 ]
  in
  table
    [ "small updates per big attempt"; "mean attempts (plain OCC)";
      "mean attempts (soft lock)" ]
    rows;
  note "with the top-lock hint honoured, small updates pause while the big one holds the";
  note "hint, so it lands on attempt 1; plain OCC retries grow with the interference rate"

(* {2 C9 — one-page files pay nothing} *)

let c9 () =
  banner "c9-one-page-files" "Whole-file writes: the one-page fast path"
    "§6: a 32K page often holds a whole file; writing such files has no CC overhead";
  let engine = Engine.create () in
  let store = Store.memory () in
  let srv = Server.create store in
  let host = Remote.host ~latency_ms:2.0 engine ~name:"afs" srv in
  let conn = Remote.connect [ host ] in
  let results = ref [] in
  let _ =
    Proc.spawn engine (fun () ->
        List.iter
          (fun npages ->
            (* A file of [npages] pages rewritten completely. *)
            let f = ok (Remote.create_file conn (bytes "seed")) in
            let v0 = ok (Remote.create_version conn f) in
            for i = 0 to npages - 2 do
              ignore
                (ok (Remote.insert_page conn v0 ~parent:P.root ~index:i ~data:(bytes "x")))
            done;
            ok (Remote.commit conn v0);
            let t0 = Engine.now engine in
            let rounds = 10 in
            for _ = 1 to rounds do
              let v = ok (Remote.create_version conn f) in
              ok (Remote.write_page conn v P.root (bytes "rewrite"));
              for i = 0 to npages - 2 do
                ok (Remote.write_page conn v (P.of_list [ i ]) (bytes "rewrite"))
              done;
              ok (Remote.commit conn v)
            done;
            let ms = (Engine.now engine -. t0) /. float_of_int rounds in
            results := (npages, ms) :: !results)
          [ 1; 2; 4; 16; 64 ])
  in
  Engine.run engine;
  let rows =
    List.rev_map
      (fun (npages, ms) ->
        [ string_of_int npages; f1 ms; f2 (ms /. float_of_int npages) ])
      !results
  in
  table [ "file size (pages)"; "ms per whole-file write"; "ms per page" ] rows;
  note "a one-page file costs 3 round trips (create version, write, commit) and the commit";
  note "is a bare test-and-set: no locks were taken, no validation work was done"
