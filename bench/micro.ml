(* Bechamel micro-benchmarks: wall-clock throughput of the hot paths.
   One Test.make per mechanism; run with --bechamel (they take ~20s). *)

open Bechamel
open Toolkit
module Server = Afs_core.Server
module Store = Afs_core.Store
module Page = Afs_core.Page
module Flags = Afs_core.Flags
module P = Afs_util.Pagepath

let ok = function Ok v -> v | Error e -> failwith (Afs_core.Errors.to_string e)
let bytes = Bytes.of_string

let sample_page ~nrefs ~data_bytes =
  let secret = Afs_util.Capability.secret_of_seed 1 in
  let cap obj =
    Afs_util.Capability.mint secret ~port:(Afs_util.Capability.port_of_int 1) ~obj
      ~rights:Afs_util.Capability.rights_all
  in
  let refs = Array.init nrefs (fun i -> { Page.block = i + 1; flags = Flags.clear }) in
  Page.make_version_page ~file_cap:(cap 2) ~version_cap:(cap 3) ~base_ref:(Some 7)
    ~parent_ref:None ~refs ~data:(Bytes.make data_bytes 'd')

(* F3 support: codec throughput. [with_data] sheds the encode memo, so
   each iteration pays a real serialisation (plus one record copy); the
   memo-hit and arithmetic-size benches pin the costs the hot path
   actually sees after the encode-once work. *)
let test_encode_fresh =
  let page = sample_page ~nrefs:64 ~data_bytes:4096 in
  Test.make ~name:"page-encode-fresh-4K+64refs"
    (Staged.stage (fun () -> ignore (Page.encode (Page.with_data page page.Page.data))))

let test_encode_memo_hit =
  let page = sample_page ~nrefs:64 ~data_bytes:4096 in
  ignore (Page.encode page);
  Test.make ~name:"page-encode-memo-hit" (Staged.stage (fun () -> ignore (Page.encode page)))

let test_encoded_size =
  let page = sample_page ~nrefs:64 ~data_bytes:4096 in
  Test.make ~name:"page-encoded-size-arith"
    (Staged.stage (fun () -> ignore (Page.encoded_size page)))

let test_decode =
  let image = Page.encode (sample_page ~nrefs:64 ~data_bytes:4096) in
  Test.make ~name:"page-decode-4K+64refs"
    (Staged.stage (fun () -> match Page.decode image with Ok _ -> () | Error _ -> assert false))

let test_flags_nibble =
  let all = Array.of_list Flags.all in
  Test.make ~name:"flags-nibble-roundtrip"
    (Staged.stage (fun () ->
         Array.iter (fun f -> ignore (Flags.of_nibble (Flags.to_nibble f))) all))

(* F5 support: the uncontended one-page update cycle. *)
let test_commit_fastpath =
  let store = Store.memory () in
  let srv = Server.create store in
  let f = ok (Server.create_file srv ~data:(bytes "seed") ()) in
  Test.make ~name:"update-cycle-one-page"
    (Staged.stage (fun () ->
         let v = ok (Server.create_version srv f) in
         ok (Server.write_page srv v P.root (bytes "payload"));
         ok (Server.commit srv v)))

(* F6/C4 support: serialisability test + merge of two 4-page updates on a
   64-page file. *)
let test_serialise_merge =
  let store = Store.memory () in
  let srv = Server.create store in
  let f = Exp_util.file_with_pages srv 64 in
  Test.make ~name:"intercepted-commit-merge"
    (Staged.stage (fun () ->
         let va = ok (Server.create_version srv f) in
         let vb = ok (Server.create_version srv f) in
         for i = 0 to 3 do
           ok (Server.write_page srv va (P.of_list [ i ]) (bytes "a"));
           ok (Server.write_page srv vb (P.of_list [ 32 + i ]) (bytes "b"))
         done;
         ok (Server.commit srv va);
         ok (Server.commit srv vb)))

(* C3 support: validation of a warm, unshared file. *)
let test_validation_null_op =
  let store = Store.memory () in
  let srv = Server.create store in
  let f = Exp_util.file_with_pages srv 16 in
  let basis = ok (Server.current_block_of_file srv f) in
  Test.make ~name:"cache-validate-null-op"
    (Staged.stage (fun () ->
         ignore (ok (Afs_core.Cache.server_validate srv ~file:f ~basis_block:basis))))

let all_tests =
  [ test_encode_fresh; test_encode_memo_hit; test_encoded_size; test_decode;
    test_flags_nibble; test_commit_fastpath; test_serialise_merge; test_validation_null_op ]

(* [smoke] trades precision for speed (CI runs it on shared runners just
   to catch order-of-magnitude regressions and keep the artifact fresh). *)
let run ?(smoke = false) () =
  Printf.printf "\n%s\n" (String.make 78 '=');
  Printf.printf "[micro] Bechamel wall-clock benchmarks of the hot paths%s\n"
    (if smoke then " (smoke mode)" else "");
  Printf.printf "%s\n" (String.make 78 '-');
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if smoke then Benchmark.cfg ~limit:500 ~quota:(Time.second 0.05) ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = analyze raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-32s %12.1f ns/op\n" name est
          | _ -> Printf.printf "  %-32s (no estimate)\n" name)
        results)
    all_tests
