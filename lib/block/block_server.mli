(** The block server (paper §4).

    Manages fixed-size blocks on one disk: allocate, deallocate, read,
    write. Writing a block is atomic and acknowledged only once durable.
    Protection: every block is owned by the account that allocated it and
    is inaccessible to other accounts. A simple locking facility supports
    the file service's commit critical section ("lock and read a block,
    examine and modify it, then write and unlock"). A recovery operation
    lists the blocks owned by an account so a file server can rebuild its
    state from block-level redundancy after a severe crash.

    Every operation reports its simulated cost so callers under the event
    engine can charge virtual time. *)

type t

type account = int

type error =
  | No_free_blocks
  | Not_allocated of int
  | Not_owner of { block : int; owner : account; caller : account }
  | Locked of { block : int; holder : account }
  | Not_locked of int
  | Disk_error of Afs_disk.Disk.error

val pp_error : error Fmt.t

type 'a outcome = { result : ('a, error) result; cost_ms : float }

type allocation_policy =
  | Sequential  (** Lowest free block first: deterministic, collision-free. *)
  | Randomised of Afs_util.Xrng.t
      (** Uniform over free blocks: models independent servers choosing
          addresses, so stable-storage allocate collisions (§4) can occur. *)

val create :
  ?policy:allocation_policy -> ?trace:Afs_trace.Trace.t -> disk:Afs_disk.Disk.t -> unit -> t

val set_trace : t -> Afs_trace.Trace.t -> unit
(** Install a trace handle on the server and its disk. {!lock} emits a
    [block.lock] event with the contention outcome. *)

val disk : t -> Afs_disk.Disk.t
val block_size : t -> int
val free_blocks : t -> int
val allocated_blocks : t -> int

val allocate : t -> account -> int outcome
(** Reserve a block for the account; no disk traffic until first write. *)

val allocate_at : t -> account -> int -> unit outcome
(** Reserve a specific block (used by the stable-storage companion
    protocol, which must mirror its peer's address choice). Fails with
    [Not_allocated] if the block is already taken — the caller treats that
    as an allocate collision. *)

val deallocate : t -> account -> int -> unit outcome
(** Free the block and erase its contents (no-op erase on write-once
    media: the space is simply unlinked). *)

val read : t -> account -> int -> bytes outcome

val write : t -> account -> int -> bytes -> unit outcome
(** Atomic: the acknowledgement implies durability. Respects locks held by
    other accounts. *)

val lock : t -> account -> int -> unit outcome
(** Grab the block's lock; fails with [Locked] when another account holds
    it (no queueing here — the file service layers its own waiting). *)

val unlock : t -> account -> int -> unit outcome

val locked_by : t -> int -> account option

val owned_blocks : t -> account -> int list
(** The §4 recovery operation: all blocks owned by the account, sorted. *)

val owner_of : t -> int -> account option

val clear_locks : t -> unit
(** Drop every lock; used when simulating a block-server restart (locks
    are volatile state, ownership is not). *)
