module Disk = Afs_disk.Disk

type account = int

type error =
  | No_free_blocks
  | Not_allocated of int
  | Not_owner of { block : int; owner : account; caller : account }
  | Locked of { block : int; holder : account }
  | Not_locked of int
  | Disk_error of Disk.error

let pp_error ppf = function
  | No_free_blocks -> Fmt.string ppf "no free blocks"
  | Not_allocated b -> Fmt.pf ppf "block %d not allocated" b
  | Not_owner { block; owner; caller } ->
      Fmt.pf ppf "block %d owned by account %d, not %d" block owner caller
  | Locked { block; holder } -> Fmt.pf ppf "block %d locked by account %d" block holder
  | Not_locked b -> Fmt.pf ppf "block %d not locked" b
  | Disk_error e -> Disk.pp_error ppf e

type 'a outcome = { result : ('a, error) result; cost_ms : float }

type allocation_policy = Sequential | Randomised of Afs_util.Xrng.t

(* The server's own CPU/queueing cost per request, on top of disk time. *)
let request_overhead_ms = 0.1

module Trace = Afs_trace.Trace

type t = {
  disk : Disk.t;
  policy : allocation_policy;
  owners : (int, account) Hashtbl.t;
  locks : (int, account) Hashtbl.t;
  mutable free_count : int;
  mutable next_hint : int;
  mutable trace : Trace.t;
}

let create ?(policy = Sequential) ?(trace = Trace.null) ~disk () =
  {
    disk;
    policy;
    owners = Hashtbl.create 1024;
    locks = Hashtbl.create 64;
    free_count = Disk.block_count disk;
    next_hint = 0;
    trace;
  }

let set_trace t tr =
  t.trace <- tr;
  Disk.set_trace t.disk tr

let disk t = t.disk
let block_size t = Disk.block_size t.disk
let free_blocks t = t.free_count
let allocated_blocks t = Hashtbl.length t.owners

let ok ?(cost = request_overhead_ms) v = { result = Ok v; cost_ms = cost }
let fail ?(cost = request_overhead_ms) e = { result = Error e; cost_ms = cost }

let is_free t b = not (Hashtbl.mem t.owners b)

let find_free_sequential t =
  let n = Disk.block_count t.disk in
  let rec scan tried b =
    if tried >= n then None
    else if is_free t b then Some b
    else scan (tried + 1) ((b + 1) mod n)
  in
  scan 0 t.next_hint

let find_free_random t rng =
  let n = Disk.block_count t.disk in
  (* A few random probes, then fall back to a scan: keeps allocation O(1)
     while the disk is mostly empty, which is when collisions matter. *)
  let rec probe attempts =
    if attempts = 0 then find_free_sequential t
    else
      let b = Afs_util.Xrng.int rng n in
      if is_free t b then Some b else probe (attempts - 1)
  in
  probe 8

let allocate t account =
  if t.free_count = 0 then fail No_free_blocks
  else
    let candidate =
      match t.policy with
      | Sequential -> find_free_sequential t
      | Randomised rng -> find_free_random t rng
    in
    match candidate with
    | None -> fail No_free_blocks
    | Some b ->
        Hashtbl.replace t.owners b account;
        t.free_count <- t.free_count - 1;
        t.next_hint <- (b + 1) mod Disk.block_count t.disk;
        ok b

let allocate_at t account b =
  if b < 0 || b >= Disk.block_count t.disk then fail (Not_allocated b)
  else if not (is_free t b) then fail (Not_allocated b)
  else begin
    Hashtbl.replace t.owners b account;
    t.free_count <- t.free_count - 1;
    ok ()
  end

let check_owner t account b =
  match Hashtbl.find_opt t.owners b with
  | None -> Error (Not_allocated b)
  | Some owner when owner <> account -> Error (Not_owner { block = b; owner; caller = account })
  | Some _ -> Ok ()

let check_lock t account b =
  match Hashtbl.find_opt t.locks b with
  | Some holder when holder <> account -> Error (Locked { block = b; holder })
  | _ -> Ok ()

let deallocate t account b =
  match check_owner t account b with
  | Error e -> fail e
  | Ok () -> (
      match check_lock t account b with
      | Error e -> fail e
      | Ok () ->
          Hashtbl.remove t.owners b;
          Hashtbl.remove t.locks b;
          t.free_count <- t.free_count + 1;
          (* Erase is refused on write-once media; the block simply stays
             unreferenced there, as §6 expects for optical stores. *)
          let _ = Disk.erase t.disk b in
          ok ())

let read t account b =
  match check_owner t account b with
  | Error e -> fail e
  | Ok () ->
      let { Disk.result; cost_ms } = Disk.read t.disk b in
      let cost = request_overhead_ms +. cost_ms in
      (match result with
      | Ok data -> ok ~cost data
      | Error e -> fail ~cost (Disk_error e))

let write t account b data =
  match check_owner t account b with
  | Error e -> fail e
  | Ok () -> (
      match check_lock t account b with
      | Error e -> fail e
      | Ok () ->
          let { Disk.result; cost_ms } = Disk.write t.disk b data in
          let cost = request_overhead_ms +. cost_ms in
          (match result with
          | Ok () -> ok ~cost ()
          | Error e -> fail ~cost (Disk_error e)))

let lock t account b =
  let note won =
    if Trace.enabled t.trace then Trace.point t.trace (Trace.Block_lock { block = b; won })
  in
  match check_owner t account b with
  | Error e -> fail e
  | Ok () -> (
      match Hashtbl.find_opt t.locks b with
      | Some holder when holder <> account ->
          note false;
          fail (Locked { block = b; holder })
      | Some _ ->
          note true;
          ok () (* Re-entrant for the same account. *)
      | None ->
          Hashtbl.replace t.locks b account;
          note true;
          ok ())

let unlock t account b =
  match Hashtbl.find_opt t.locks b with
  | None -> fail (Not_locked b)
  | Some holder when holder <> account -> fail (Locked { block = b; holder })
  | Some _ ->
      Hashtbl.remove t.locks b;
      ok ()

let locked_by t b = Hashtbl.find_opt t.locks b

let owned_blocks t account =
  Hashtbl.fold (fun b owner acc -> if owner = account then b :: acc else acc) t.owners []
  |> List.sort compare

let owner_of t b = Hashtbl.find_opt t.owners b

let clear_locks t = Hashtbl.reset t.locks
