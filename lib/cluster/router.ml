module Capability = Afs_util.Capability

type t = {
  nshards : int;
  by_port : (int, int) Hashtbl.t;
  forwards : (int * int, Capability.t) Hashtbl.t;
  mutable next_placement : int;
}

let create ~ports =
  let by_port = Hashtbl.create 16 in
  List.iteri (fun i p -> Hashtbl.replace by_port (Capability.port_to_int p) i) ports;
  {
    nshards = List.length ports;
    by_port;
    forwards = Hashtbl.create 64;
    next_placement = 0;
  }

let nshards t = t.nshards

let shard_of_port t port = Hashtbl.find_opt t.by_port (Capability.port_to_int port)

let key (cap : Capability.t) = (Capability.port_to_int cap.Capability.port, cap.Capability.obj)

let note_forward t ~old target =
  if not (Capability.equal old target) then Hashtbl.replace t.forwards (key old) target

let max_hops = 16

let resolve t cap =
  let rec follow cap fuel =
    if fuel = 0 then cap
    else
      match Hashtbl.find_opt t.forwards (key cap) with
      | None -> cap
      | Some target -> follow target (fuel - 1)
  in
  follow cap max_hops

let place t =
  let s = t.next_placement in
  t.next_placement <- (s + 1) mod t.nshards;
  s

let forwards_count t = Hashtbl.length t.forwards
