module Capability = Afs_util.Capability
module Stats = Afs_util.Stats

type t = { cluster : Cluster.t; threshold : float; max_moves : int }

let create ?(threshold = 2.0) ?(max_moves = 2) cluster = { cluster; threshold; max_moves }

let hottest_coldest per_shard =
  let hot = ref 0 and cold = ref 0 in
  Array.iteri
    (fun i load ->
      if load > per_shard.(!hot) then hot := i;
      if load < per_shard.(!cold) then cold := i)
    per_shard;
  (!hot, !cold)

let step t =
  let n = Cluster.nshards t.cluster in
  let loads = Cluster.drain_loads t.cluster in
  let per_shard = Array.make n 0 in
  let by_shard = Array.make n [] in
  List.iter
    (fun ((cap : Capability.t), count) ->
      match Router.shard_of_port (Cluster.router t.cluster) cap.Capability.port with
      | Some i ->
          per_shard.(i) <- per_shard.(i) + count;
          by_shard.(i) <- (cap, count) :: by_shard.(i)
      | None -> ())
    loads;
  let hot, cold = hottest_coldest per_shard in
  let skewed =
    n >= 2
    && float_of_int per_shard.(hot)
       > t.threshold *. float_of_int (max 1 per_shard.(cold))
  in
  if not skewed then 0
  else begin
    (* Hottest files first; capability order breaks count ties, so the
       plan is a pure function of the drained window. *)
    let candidates =
      List.sort
        (fun (a, ca) (b, cb) ->
          if ca <> cb then compare cb ca else Capability.compare a b)
        by_shard.(hot)
    in
    let gap = per_shard.(hot) - per_shard.(cold) in
    let rec move moved shifted = function
      | [] -> moved
      | _ when moved >= t.max_moves -> moved
      | _ when 2 * shifted >= gap -> moved (* enough to level the pair *)
      | (cap, count) :: rest -> (
          match Migration.migrate t.cluster ~file:cap ~dst:cold with
          | Ok _ ->
              Stats.Counter.incr (Cluster.counters t.cluster) "rebalancer.moves";
              move (moved + 1) (shifted + count) rest
          | Error _ -> move moved shifted rest)
    in
    move 0 0 candidates
  end
