module Capability = Afs_util.Capability
module Stats = Afs_util.Stats
module Det = Afs_util.Det

type t = { cluster : Cluster.t; threshold : float; max_moves : int }

let create ?(threshold = 2.0) ?(max_moves = 2) cluster = { cluster; threshold; max_moves }

let hottest_coldest per_shard =
  let hot = ref 0 and cold = ref 0 in
  Array.iteri
    (fun i load ->
      if load > per_shard.(!hot) then hot := i;
      if load < per_shard.(!cold) then cold := i)
    per_shard;
  (!hot, !cold)

(* Attribute each drained entry to the file's *current* residency.
   Clients learn a move only when a stale capability bounces with Moved,
   so the drained window routinely carries old-cap entries for files that
   already migrated; without resolving, their traffic keeps counting
   against the old shard (inflating its apparent heat) and the stale caps
   themselves become "already home" migration candidates that count as
   moves without moving anything. Old- and new-cap entries for the same
   file merge into one candidate under the resolved capability. *)
let resolve_loads router loads =
  let merged = Hashtbl.create 32 in
  List.iter
    (fun ((cap : Capability.t), count) ->
      let cap = Router.resolve router cap in
      let key = (Capability.port_to_int cap.Capability.port, cap.Capability.obj) in
      match Hashtbl.find_opt merged key with
      | Some (c, n) -> Hashtbl.replace merged key (c, n + count)
      | None -> Hashtbl.replace merged key (cap, count))
    loads;
  Det.fold_sorted (fun _ entry acc -> entry :: acc) merged [] |> List.rev

let step t =
  let n = Cluster.nshards t.cluster in
  let router = Cluster.router t.cluster in
  let loads = resolve_loads router (Cluster.drain_loads t.cluster) in
  let per_shard = Array.make n 0 in
  let by_shard = Array.make n [] in
  List.iter
    (fun ((cap : Capability.t), count) ->
      match Router.shard_of_port router cap.Capability.port with
      | Some i ->
          per_shard.(i) <- per_shard.(i) + count;
          by_shard.(i) <- (cap, count) :: by_shard.(i)
      | None -> ())
    loads;
  let hot, cold = hottest_coldest per_shard in
  let skewed =
    n >= 2
    && float_of_int per_shard.(hot)
       > t.threshold *. float_of_int (max 1 per_shard.(cold))
  in
  if not skewed then 0
  else begin
    (* Hottest files first; capability order breaks count ties, so the
       plan is a pure function of the drained window. *)
    let candidates =
      List.sort
        (fun (a, ca) (b, cb) ->
          if ca <> cb then compare cb ca else Capability.compare a b)
        by_shard.(hot)
    in
    let gap = per_shard.(hot) - per_shard.(cold) in
    let rec move moved shifted = function
      | [] -> moved
      | _ when moved >= t.max_moves -> moved
      | _ when 2 * shifted >= gap -> moved (* enough to level the pair *)
      | (cap, count) :: rest -> (
          (* Re-check residency at migration time: migrate yields into
             RPC, so a concurrent migration may have moved the file since
             the drain; migrate would report the no-op as Ok and we must
             not count it as a move. *)
          match Cluster.shard_of_cap t.cluster cap with
          | Error _ -> move moved shifted rest
          | Ok (_, s) when Shard.id s = cold -> move moved shifted rest
          | Ok (cap, _) -> (
              match Migration.migrate t.cluster ~file:cap ~dst:cold with
              | Ok _ ->
                  Stats.Counter.incr (Cluster.counters t.cluster) "rebalancer.moves";
                  move (moved + 1) (shifted + count) rest
              | Error _ -> move moved shifted rest))
    in
    move 0 0 candidates
  end
