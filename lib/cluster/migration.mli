(** Online shard migration as a pure application of the paper's
    optimistic-commit machinery — no locks, no downtime, no new protocol.

    [migrate] moves one file between shards in three steps, all ordinary
    file-service operations:

    + {b Snapshot}: open a version on the source and read the whole page
      tree through it (recording R/S flags — the reads join the version's
      read set).
    + {b Copy}: create a fresh file on the destination holding the
      snapshot and commit it there (conflict-free: the file is unknown to
      everyone else).
    + {b Flip}: in the {e same} source version, remove the root's children
      and overwrite the root with a {!Forward} marker naming the copy,
      then commit. This is the linearisation point, and it is just an
      optimistic commit: if any client committed an update since the
      snapshot, the serialisability test fails, the destination copy is
      destroyed, and the migration redoes from a fresh snapshot.

    Safety (no committed version can be lost) needs the flip to conflict
    with concurrent updates in {e both} commit orders; the flag choreography
    that guarantees this is documented at {!Shard} (the R-on-root location
    check) and in the implementation. Liveness under heavy write traffic
    is the usual optimistic story: the migration retries and may give up
    ([Conflict] after [retries] attempts); giving up is harmless — the
    file simply stays where it was.

    The old home keeps the file as a tombstone whose root is the marker,
    answering [Moved] forever after (clients' old capabilities keep
    working, one extra hop until their router learns the forward). *)

val migrate :
  ?retries:int ->
  Cluster.t ->
  file:Afs_util.Capability.t ->
  dst:int ->
  Afs_util.Capability.t Afs_core.Errors.r
(** Move [file] to shard [dst]; returns its new capability (or the
    current one unchanged if it already lives on [dst]). Must run inside
    a simulation process. [Conflict] means the retry budget (default 8)
    was exhausted racing live writers. *)
