module Capability = Afs_util.Capability
module Stats = Afs_util.Stats
module Errors = Afs_core.Errors
module Remote = Afs_rpc.Remote
open Errors

type t = {
  cluster : Cluster.t;
  mutable conns : Remote.conn array;
  mutable generation : int;
}

let fresh_conns cluster =
  Array.init (Cluster.nshards cluster) (fun i ->
      Remote.connect [ Shard.host (Cluster.shard cluster i) ])

let connect cluster =
  { cluster; conns = fresh_conns cluster; generation = Cluster.generation cluster }

let cluster t = t.cluster

(* Lazily learn promoted shards, the way forwards are learned: each
   connection lookup compares the cluster's promotion generation with the
   one this client connected under and rebuilds its connections when it
   moved. A client mid-request against a deposed or dead primary still
   finishes that request against it (and fails or retries as usual); the
   next routed request lands on the promoted server. *)
let conn_of t shard =
  let g = Cluster.generation t.cluster in
  if g <> t.generation then begin
    t.conns <- fresh_conns t.cluster;
    t.generation <- g
  end;
  t.conns.(Shard.id shard)

module Txn = struct
  type t = { conn : Remote.conn; version : Capability.t; attempt : int }

  let version t = t.version
  let attempt t = t.attempt
  let conn t = t.conn
  let read t path = Remote.read_page t.conn t.version path
  let write t path data = Remote.write_page t.conn t.version path data

  let insert t ~parent ~index ?(data = Bytes.empty) () =
    Remote.insert_page t.conn t.version ~parent ~index ~data

  let remove t ~parent ~index = Remote.remove_page t.conn t.version ~parent ~index
end

type handle = { file : Capability.t; shard : Shard.t; txn : Txn.t }

let max_hops = 8
let chain_too_long = Error (Errors.Store_failure "cluster: forward chain too long")

let learn t ~old target =
  Router.note_forward (Cluster.router t.cluster) ~old target;
  Stats.Counter.incr (Cluster.counters t.cluster) "client.forwarded"

let begin_txn ?(respect_hints = false) ?(updater_port = 0) ?(attempt = 1) t file =
  let rec go file hops =
    if hops > max_hops then chain_too_long
    else
      let* file, shard = Cluster.shard_of_cap t.cluster file in
      match
        Remote.create_version ~respect_hints ~updater_port (conn_of t shard) file
      with
      | Ok version ->
          Ok { file; shard; txn = { Txn.conn = conn_of t shard; version; attempt } }
      | Error (Errors.Moved target) ->
          learn t ~old:file target;
          go target (hops + 1)
      | Error e -> Error e
  in
  go file 0

let commit t h =
  let* () = Remote.commit h.txn.Txn.conn h.txn.Txn.version in
  Cluster.note_load t.cluster ~shard:h.shard h.file;
  Ok ()

let abort h = Remote.abort_version h.txn.Txn.conn h.txn.Txn.version

exception Give_up of Errors.t

let update ?(retries = 16) ?respect_hints ?updater_port t file body =
  let rec attempt n =
    match begin_txn ?respect_hints ?updater_port ~attempt:n t file with
    | Error e -> Error e
    | Ok h -> (
        let result = try body h.txn with Give_up e -> Error e in
        match result with
        | Error Errors.Conflict when n <= retries ->
            ignore (abort h);
            attempt (n + 1)
        | Error e ->
            ignore (abort h);
            Error e
        | Ok result -> (
            match commit t h with
            | Ok () -> Ok result
            | Error Errors.Conflict when n <= retries -> attempt (n + 1)
            | Error e -> Error e))
  in
  attempt 1

let current_version t file =
  let rec go file hops =
    if hops > max_hops then chain_too_long
    else
      let* file, shard = Cluster.shard_of_cap t.cluster file in
      match Remote.current_version (conn_of t shard) file with
      | Ok version -> Ok (file, shard, version)
      | Error (Errors.Moved target) ->
          learn t ~old:file target;
          go target (hops + 1)
      | Error e -> Error e
  in
  go file 0

let read_current t file path =
  let* _, shard, version = current_version t file in
  Remote.read_page (conn_of t shard) version path

let create_file ?(data = Bytes.empty) t =
  Remote.create_file (conn_of t (Cluster.place t.cluster)) data

(* {2 Raw routing, for the transaction layer (lib/txn)}

   The coordinator drives the staging/resolution protocol with bare
   {!Remote} requests; these expose just enough of the routing machinery
   for it to land them on the owning shard and keep the forward cache
   warm. *)

let conn_for t file =
  let* file, shard = Cluster.shard_of_cap t.cluster file in
  Ok (file, shard, conn_of t shard)

let note_forward t ~old target = learn t ~old target

let create_file_on t shard ~data = Remote.create_file (conn_of t shard) data

let note_commit t ~shard file = Cluster.note_load t.cluster ~shard file
