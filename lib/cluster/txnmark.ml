module Capability = Afs_util.Capability
module Pagepath = Afs_util.Pagepath

type t = {
  record : Capability.t;
  seq : int;
  old_root : bytes;
  writes : (Pagepath.t * bytes) list;
}

let prefix = "afs-txn!"

(* Record-state strings: the whole coordinator record is its root data,
   and the decision is an ordinary optimistic commit replacing one of
   these with another (pending -> committed | aborted, never back). *)
let state_pending = "txn:pending"
let state_committed = "txn:committed"
let state_aborted = "txn:aborted"

(* Follows Forward's printable codec idiom, but the payloads (old root
   data, staged writes) are arbitrary bytes, so every byte field is
   length-prefixed instead of delimiter-split. Layout after the prefix:

     port:obj:rights:check:seq:|old|:old<nwrites>:{path:|w|:w}*

   where |x| is a decimal byte count followed by ':' and exactly that
   many raw bytes. *)
let encode m =
  let buf = Buffer.create 128 in
  Buffer.add_string buf prefix;
  Buffer.add_string buf
    (Printf.sprintf "%d:%d:%d:%d:%d:"
       (Capability.port_to_int m.record.Capability.port)
       m.record.Capability.obj
       (Capability.rights_to_int m.record.Capability.rights)
       m.record.Capability.check m.seq);
  Buffer.add_string buf (Printf.sprintf "%d:" (Bytes.length m.old_root));
  Buffer.add_bytes buf m.old_root;
  Buffer.add_string buf (Printf.sprintf "%d:" (List.length m.writes));
  List.iter
    (fun (path, data) ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d:" (Pagepath.to_string path) (Bytes.length data));
      Buffer.add_bytes buf data)
    m.writes;
  Buffer.to_bytes buf

exception Bad

let decode data =
  let s = Bytes.to_string data in
  let n = String.length s in
  let plen = String.length prefix in
  if n <= plen || not (String.equal (String.sub s 0 plen) prefix) then None
  else
    let pos = ref plen in
    let field () =
      match String.index_from_opt s !pos ':' with
      | None -> raise Bad
      | Some i ->
          let f = String.sub s !pos (i - !pos) in
          pos := i + 1;
          f
    in
    let num () =
      match int_of_string_opt (field ()) with
      | Some v when v >= 0 -> v
      | Some _ | None -> raise Bad
    in
    let taken k =
      if !pos + k > n then raise Bad
      else begin
        let b = Bytes.of_string (String.sub s !pos k) in
        pos := !pos + k;
        b
      end
    in
    try
      let port = num () in
      let obj = num () in
      let rights = num () in
      let check = match int_of_string_opt (field ()) with Some v -> v | None -> raise Bad in
      let seq = num () in
      let old_root = taken (num ()) in
      let nwrites = num () in
      let rec read_writes i acc =
        if i = nwrites then List.rev acc
        else
          let path =
            match Pagepath.of_string (field ()) with Ok p -> p | Error _ -> raise Bad
          in
          let data = taken (num ()) in
          read_writes (i + 1) ((path, data) :: acc)
      in
      let writes = read_writes 0 [] in
      if !pos <> n then None
      else
        Some
          {
            record =
              {
                Capability.port = Capability.port_of_int port;
                obj;
                rights = Capability.rights_of_int rights;
                check;
              };
            seq;
            old_root;
            writes;
          }
    with Bad -> None

let is_marker data = Option.is_some (decode data)
let record_of data = Option.map (fun m -> m.record) (decode data)
