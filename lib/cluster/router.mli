(** Client-side request routing.

    A capability's 48-bit port identifies the server that minted it, so
    the port {e is} the location: routing is a pure local lookup from port
    to shard, with no directory service on the hot path. On top of that
    sits a forward cache, learned lazily from [Moved] errors, mapping a
    migrated file's old [(port, obj)] to its current capability. Both
    structures are caches of immutable facts (a port never changes owner;
    a tombstone never un-moves), so staleness is only ever one extra hop,
    never a wrong answer. *)

type t

val create : ports:Afs_util.Capability.port list -> t
(** One entry per shard, in shard order. *)

val nshards : t -> int

val shard_of_port : t -> Afs_util.Capability.port -> int option
(** Total over the cluster's own ports; [None] means a foreign
    capability. *)

val resolve : t -> Afs_util.Capability.t -> Afs_util.Capability.t
(** Chase cached forwards (bounded hops, cycle-proof); the result's port
    names the shard believed to hold the file now. *)

val note_forward : t -> old:Afs_util.Capability.t -> Afs_util.Capability.t -> unit
(** Learn [old → target] from a [Moved target] answer. Self-forwards are
    ignored. *)

val place : t -> int
(** Round-robin placement: the shard id for the next new file. *)

val forwards_count : t -> int
