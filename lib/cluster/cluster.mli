(** A sharded file service: N independent {!Shard}s (each its own server,
    store and RPC host) plus the client-side {!Router} and the shared
    bookkeeping the {!Rebalancer} feeds on.

    There is no coordinator and no cross-shard protocol: every file lives
    entirely on one shard, capabilities route by port, and the only
    cross-shard operation — {!Migration.migrate} — is built from ordinary
    single-shard optimistic commits. *)

type t

val default_base_seed : int
(** Equal to the bare {!Afs_core.Server} default seed, so shard 0 of any
    cluster mints the same capabilities a bare server would. *)

val create :
  ?latency_ms:float ->
  ?proc_ms:float ->
  ?cache_capacity:int ->
  ?group_commit:int ->
  ?base_seed:int ->
  ?trace:Afs_trace.Trace.t ->
  Afs_sim.Engine.t ->
  shards:int ->
  t
(** [shards] ≥ 1 servers with well-separated seeds (shard [i] gets
    [base_seed + i·2^32]), all sharing [trace] — their spans stay
    separable through each server's ["shard-<i>"] name label.
    [group_commit] gives every shard the same commit batch window: each
    shard's RPC host keeps its own queue, so batches form per shard
    (default 1 — no batching). *)

val engine : t -> Afs_sim.Engine.t
val nshards : t -> int
val shard : t -> int -> Shard.t
val shards : t -> Shard.t list

val conn : t -> int -> Afs_rpc.Remote.conn
(** The cluster's own administrative connection to shard [i] (used by
    migration and the rebalancer; clients hold their own). *)

val router : t -> Router.t
val counters : t -> Afs_util.Stats.Counter.t

val resolve : t -> Afs_util.Capability.t -> Afs_util.Capability.t

val shard_of_cap :
  t -> Afs_util.Capability.t -> (Afs_util.Capability.t * Shard.t) Afs_core.Errors.r
(** Resolve forwards, then route by port: the capability as currently
    believed plus its owning shard. [Invalid_capability] for a port no
    shard owns. *)

val place : t -> Shard.t
(** Round-robin placement for a new file. *)

val create_file_direct : t -> ?data:bytes -> unit -> Afs_util.Capability.t Afs_core.Errors.r
(** Direct (non-RPC) file creation on the next placement shard — for
    workload setup outside the simulation, mirroring how bare-server
    harnesses call {!Afs_core.Server.create_file} directly. *)

(** {2 Load accounting}

    Committed-update counts, kept cluster-side because commits from every
    client must aggregate somewhere the {!Rebalancer} can see. Per-shard
    totals live in {!counters} under ["shard<i>.commits"]; per-file counts
    accumulate in a window drained by each rebalancer step. *)

val note_load : t -> shard:Shard.t -> Afs_util.Capability.t -> unit
(** Record one committed update of [file] on [shard]. *)

val drain_loads : t -> (Afs_util.Capability.t * int) list
(** Per-file committed-update counts since the last drain, in a
    deterministic (port, obj) order; resets the window. *)

val shard_commits : t -> int -> int
val migrations : t -> int
