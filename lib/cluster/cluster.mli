(** A sharded file service: N independent {!Shard}s (each its own server,
    store and RPC host) plus the client-side {!Router} and the shared
    bookkeeping the {!Rebalancer} feeds on.

    There is no coordinator and no cross-shard protocol: every file lives
    entirely on one shard, capabilities route by port, and the only
    cross-shard operation — {!Migration.migrate} — is built from ordinary
    single-shard optimistic commits. *)

type t

val default_base_seed : int
(** Equal to the bare {!Afs_core.Server} default seed, so shard 0 of any
    cluster mints the same capabilities a bare server would. *)

val create :
  ?latency_ms:float ->
  ?proc_ms:float ->
  ?cache_capacity:int ->
  ?group_commit:int ->
  ?base_seed:int ->
  ?replicas:int ->
  ?apply_interval_ms:float ->
  ?trace:Afs_trace.Trace.t ->
  Afs_sim.Engine.t ->
  shards:int ->
  t
(** [shards] ≥ 1 servers with well-separated seeds (shard [i] gets
    [base_seed + i·2^32]), all sharing [trace] — their spans stay
    separable through each server's ["shard-<i>"] name label.
    [group_commit] gives every shard the same commit batch window: each
    shard's RPC host keeps its own queue, so batches form per shard
    (default 1 — no batching).

    [replicas] (default 0) gives every shard that many log-shipping
    replicas: the shard's server runs over a capture store whose commit
    stream is gated through {!Afs_replica.Replica.Source}, and each
    replica applies it asynchronously ([apply_interval_ms] behind, see
    {!Afs_replica.Replica.create}). With [replicas = 0] the cluster is
    bit-identical to an unreplicated one — no capture store, no gate,
    no epoch register. *)

val engine : t -> Afs_sim.Engine.t
val nshards : t -> int
val shard : t -> int -> Shard.t
val shards : t -> Shard.t list

val conn : t -> int -> Afs_rpc.Remote.conn
(** The cluster's own administrative connection to shard [i] (used by
    migration and the rebalancer; clients hold their own). *)

val router : t -> Router.t
val counters : t -> Afs_util.Stats.Counter.t

val resolve : t -> Afs_util.Capability.t -> Afs_util.Capability.t

val shard_of_cap :
  t -> Afs_util.Capability.t -> (Afs_util.Capability.t * Shard.t) Afs_core.Errors.r
(** Resolve forwards, then route by port: the capability as currently
    believed plus its owning shard. [Invalid_capability] for a port no
    shard owns. *)

val place : t -> Shard.t
(** Round-robin placement for a new file. *)

val create_file_direct : t -> ?data:bytes -> unit -> Afs_util.Capability.t Afs_core.Errors.r
(** Direct (non-RPC) file creation on the next placement shard — for
    workload setup outside the simulation, mirroring how bare-server
    harnesses call {!Afs_core.Server.create_file} directly. *)

(** {2 Load accounting}

    Committed-update counts, kept cluster-side because commits from every
    client must aggregate somewhere the {!Rebalancer} can see. Per-shard
    totals live in {!counters} under ["shard<i>.commits"]; per-file counts
    accumulate in a window drained by each rebalancer step. *)

val note_load : t -> shard:Shard.t -> Afs_util.Capability.t -> unit
(** Record one committed update of [file] on [shard]. *)

val drain_loads : t -> (Afs_util.Capability.t * int) list
(** Per-file committed-update counts since the last drain, in a
    deterministic (port, obj) order; resets the window. *)

val shard_commits : t -> int -> int
val migrations : t -> int

(** {2 Replication and failover} *)

val generation : t -> int
(** Bumped on every promotion. Clients compare it against the generation
    they connected under and rebuild their per-shard connections when it
    moved — the connection-level analogue of chasing [Moved]. *)

val replicas_of : t -> int -> Afs_replica.Replica.t list
(** Shard [i]'s replicas in promotion order ([[]] when unreplicated). *)

val replication_source : t -> int -> Afs_replica.Replica.Source.source option
(** Shard [i]'s primary-side commit-stream source. *)

val flush_replication : t -> unit
(** Cut every source's captured-but-unshipped operations and drain every
    replica synchronously — the deterministic quiesce tests compare
    store digests after. *)

type promotion = { epoch : int; watermark : int; recovered_files : int }

val promote : t -> int -> promotion Afs_core.Errors.r
(** Fail shard [i] over to its first replica; must run inside a
    simulation process. Test-and-sets the shared epoch register via the
    replica's RPC endpoint (losing with [Conflict] if the epoch already
    moved), drains the replica, re-homes the sibling replicas, rebuilds
    the shard's server over the promoted store with the {e same} seed —
    same secret and port, so outstanding capabilities and the router's
    port table stay valid — and bumps {!generation}. The deposed
    primary, if still running, can never publish again: its gate loses
    every subsequent test-and-set. *)
