(** Forward-marker codec.

    When a shard migration commits, the old home keeps the file as a
    {e tombstone}: a final committed version whose root data is a marker
    encoding the file's new capability. Any later attempt to open the file
    there decodes the marker and answers {!Afs_core.Errors.Moved}, so
    clients chase the forward pointer with no central directory on the hot
    path. The marker is ordinary page data — committing it is an ordinary
    optimistic commit, which is what makes the flip safe (see
    {!Migration}). *)

val prefix : string
(** Printable sentinel the marker starts with; ordinary file data that
    happens to start with it would shadow the file (the same caveat as any
    in-band signalling), so the prefix is chosen to be improbable. *)

val encode : Afs_util.Capability.t -> bytes
(** Root-page data naming the file's new home. *)

val decode : bytes -> Afs_util.Capability.t option
(** [Some cap] iff the bytes are a well-formed marker. *)

val is_marker : bytes -> bool
