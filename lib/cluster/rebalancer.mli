(** Load-driven placement: watch the per-file committed-update counters
    the cluster accumulates ({!Cluster.note_load}) and migrate hot files
    off overloaded shards.

    Policy, deliberately simple and deterministic: each {!step} drains the
    load window; if the busiest shard's committed-update count exceeds
    [threshold] × the idlest's, it moves that shard's hottest files (count
    descending, capability order breaking ties) to the idlest shard —
    stopping after [max_moves], or sooner once the shifted load is enough
    to level the pair. Files that refuse to move (live writers winning
    every flip race) are skipped; they stay correct where they are and
    remain candidates for the next step. *)

type t

val create : ?threshold:float -> ?max_moves:int -> Cluster.t -> t
(** Defaults: [threshold] 2.0, [max_moves] 2 per step. *)

val step : t -> int
(** One rebalancing pass; returns the number of files migrated. Must run
    inside a simulation process (migrations are RPC conversations). *)
