module Pagepath = Afs_util.Pagepath
module Stats = Afs_util.Stats
module Errors = Afs_core.Errors
module Remote = Afs_rpc.Remote
open Errors

type node = { data : bytes; children : node list }

(* Read the whole tree through the migration's own private version. The
   snapshot is internally consistent because the version is a
   copy-on-write view; it is kept *fresh* by the flip commit below — every
   page read here lands in the version's read set, so any update that
   commits between this walk and the flip makes the flip's commit fail the
   serialisability test and the migration redo from scratch. *)
let rec snapshot conn version path =
  let* data = Remote.read_page conn version path in
  let* nrefs, _ = Remote.page_info conn version path in
  let rec kids i acc =
    if i >= nrefs then Ok (List.rev acc)
    else
      let* k = snapshot conn version (Pagepath.child path i) in
      kids (i + 1) (k :: acc)
  in
  let* children = kids 0 [] in
  Ok { data; children }

let rec plant conn version ~parent ~index node =
  let* path = Remote.insert_page conn version ~parent ~index ~data:node.data in
  plant_all conn version path 0 node.children

and plant_all conn version parent i = function
  | [] -> Ok ()
  | n :: rest ->
      let* () = plant conn version ~parent ~index:i n in
      plant_all conn version parent (i + 1) rest

(* Build the copy on the destination as a fresh file and commit it there
   (a purely local, conflict-free commit: nobody else knows the file). *)
let copy_to conn tree =
  let* nf = Remote.create_file conn tree.data in
  let* nv = Remote.create_version conn nf in
  let* () = plant_all conn nv Pagepath.root 0 tree.children in
  let* () = Remote.commit conn nv in
  Ok nf

let rec remove_children conn v i =
  if i < 0 then Ok ()
  else
    let* () = Remote.remove_page conn v ~parent:Pagepath.root ~index:i in
    remove_children conn v (i - 1)

(* The flip: turn the source copy into a tombstone, in the same version
   the snapshot was read through, and commit it optimistically.

   The flip's flag map is chosen so that it conflicts with *every*
   concurrent update, in both commit orders:
   - it read every page (R, and S on interiors), so an update that commits
     first — necessarily having written or restructured something — fails
     the flip's serialisability test (rule: committed wrote what the
     candidate read);
   - it removes all the root's children (M on the root; a dummy
     insert+remove forces the M when there are none) and writes the marker
     (W on the root), so an update that commits *after* the flip fails its
     own test: its version carries R on the root (recorded by the shard's
     location check at create_version) against the flip's W, and C entries
     at the root against the flip's M.
   Losing either race only costs a redo; committed data can never end up
   stranded behind a committed marker. *)
let flip conn v tree target =
  let* () =
    match List.length tree.children with
    | 0 ->
        let* _ =
          Remote.insert_page conn v ~parent:Pagepath.root ~index:0 ~data:Bytes.empty
        in
        Remote.remove_page conn v ~parent:Pagepath.root ~index:0
    | n -> remove_children conn v (n - 1)
  in
  let* () = Remote.write_page conn v Pagepath.root (Forward.encode target) in
  Remote.commit conn v

let migrate ?(retries = 8) cluster ~file ~dst =
  let counters = Cluster.counters cluster in
  if dst < 0 || dst >= Cluster.nshards cluster then
    Error (Errors.Store_failure "migrate: no such shard")
  else
    let rec attempt n file =
      let* file, src_shard = Cluster.shard_of_cap cluster file in
      if Shard.id src_shard = dst then Ok file (* already home *)
      else
        let src = Cluster.conn cluster (Shard.id src_shard) in
        let dstc = Cluster.conn cluster dst in
        let retry n file fallback =
          if n < retries then attempt (n + 1) file else fallback
        in
        match Remote.create_version src file with
        | Error (Errors.Moved target) ->
            Router.note_forward (Cluster.router cluster) ~old:file target;
            retry n target (Error Errors.Conflict)
        | Error e -> Error e
        | Ok v -> (
            match snapshot src v Pagepath.root with
            | Error e ->
                ignore (Remote.abort_version src v);
                Error e
            | Ok tree -> (
                match copy_to dstc tree with
                | Error e ->
                    ignore (Remote.abort_version src v);
                    Error e
                | Ok nf -> (
                    match flip src v tree nf with
                    | Ok () ->
                        Router.note_forward (Cluster.router cluster) ~old:file nf;
                        Stats.Counter.incr counters "migrations";
                        Stats.Counter.incr counters
                          (Printf.sprintf "shard%d.migrations_out" (Shard.id src_shard));
                        Stats.Counter.incr counters
                          (Printf.sprintf "shard%d.migrations_in" dst);
                        Ok nf
                    | Error Errors.Conflict ->
                        (* A concurrent update won the race; drop the stale
                           copy and redo against the fresh state. *)
                        ignore (Remote.destroy_file dstc nf);
                        Stats.Counter.incr counters "migrations.conflict";
                        retry n file (Error Errors.Conflict)
                    | Error e ->
                        ignore (Remote.destroy_file dstc nf);
                        ignore (Remote.abort_version src v);
                        Error e)))
    in
    attempt 0 file
