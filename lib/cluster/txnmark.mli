(** The cross-shard transaction marker (lib/txn's staging record).

    A participant's {e stage} commit replaces its root data with an
    encoded marker: the staged writes ride the marker instead of touching
    any page, so the stage is an ordinary optimistic commit whose flag
    map is [R] on every page the transaction read plus [R]+[W] on the
    root — conflicting with every concurrently opened version in both
    commit orders (each cluster version carries [R] on its root via the
    location check, exactly the invariant {!Migration}'s flip relies on).

    The marker names the coordinator record whose root data decides the
    transaction's fate ({!state_pending} / {!state_committed} /
    {!state_aborted}), carries the pre-transaction root data to restore,
    and the absolute page writes to apply on roll-forward. Applying
    writes from the marker (rather than flipping to a private copy)
    preserves any concurrent {e non-conflicting} committed update that
    merged underneath the stage. *)

type t = {
  record : Afs_util.Capability.t;  (** The coordinator record file. *)
  seq : int;  (** Coordinator-unique transaction number. *)
  old_root : bytes;  (** Root data a discard restores. *)
  writes : (Afs_util.Pagepath.t * bytes) list;
      (** Absolute page writes a roll-forward applies. *)
}

val prefix : string

val state_pending : string
val state_committed : string
val state_aborted : string
(** The record file's entire root data; the decision is an optimistic
    commit replacing pending with exactly one of the other two. *)

val encode : t -> bytes

val decode : bytes -> t option
(** [None] on anything that is not a complete well-formed marker. *)

val is_marker : bytes -> bool

val record_of : bytes -> Afs_util.Capability.t option
(** The coordinator record named by a marker, if [data] is one. *)
