module Capability = Afs_util.Capability

let prefix = "afs-moved!"

let encode (cap : Capability.t) =
  Bytes.of_string
    (Printf.sprintf "%s%d:%d:%d:%d" prefix
       (Capability.port_to_int cap.Capability.port)
       cap.Capability.obj
       (Capability.rights_to_int cap.Capability.rights)
       cap.Capability.check)

let decode data =
  let s = Bytes.to_string data in
  let plen = String.length prefix in
  if String.length s <= plen || not (String.equal (String.sub s 0 plen) prefix) then None
  else
    match String.split_on_char ':' (String.sub s plen (String.length s - plen)) with
    | [ p; o; r; c ] -> (
        match
          ( int_of_string_opt p,
            int_of_string_opt o,
            int_of_string_opt r,
            int_of_string_opt c )
        with
        | Some p, Some o, Some r, Some c when p >= 0 && o >= 0 && r >= 0 ->
            Some
              {
                Capability.port = Capability.port_of_int p;
                obj = o;
                rights = Capability.rights_of_int r;
                check = c;
              }
        | _ -> None)
    | _ -> None

let is_marker data = Option.is_some (decode data)
