(** Location-transparent client over a {!Cluster}: the {!Afs_core.Client}
    surface, but every operation first routes by port, chases cached
    forwards, and learns new ones from [Moved] answers — so callers keep
    using a migrated file's old capability indefinitely.

    Must run inside a simulation process (all operations are RPCs). *)

type t

val connect : Cluster.t -> t
(** A client with its own connection to every shard (so per-client RPC
    failover state stays per-client, as with bare {!Afs_rpc.Remote}). *)

val cluster : t -> Cluster.t

module Txn : sig
  (** Operations bound to one uncommitted version on its owning shard. *)

  type t

  val version : t -> Afs_util.Capability.t

  val attempt : t -> int
  (** 1 on the first try, incremented per conflict redo (via {!update}). *)

  val conn : t -> Afs_rpc.Remote.conn
  (** The owning shard's connection — what a coordinator needs to speak
      [Prepare]/[Decide] about this version (lib/workload's 2PC baseline). *)

  val read : t -> Afs_util.Pagepath.t -> bytes Afs_core.Errors.r
  val write : t -> Afs_util.Pagepath.t -> bytes -> unit Afs_core.Errors.r

  val insert :
    t -> parent:Afs_util.Pagepath.t -> index:int -> ?data:bytes -> unit ->
    Afs_util.Pagepath.t Afs_core.Errors.r

  val remove : t -> parent:Afs_util.Pagepath.t -> index:int -> unit Afs_core.Errors.r
end

type handle = { file : Afs_util.Capability.t; shard : Shard.t; txn : Txn.t }
(** An open transaction: the capability as resolved (post-forwarding) and
    the shard it landed on. *)

val begin_txn :
  ?respect_hints:bool -> ?updater_port:int -> ?attempt:int -> t ->
  Afs_util.Capability.t -> handle Afs_core.Errors.r
(** Route, chase forwards (learning each hop), and open a version on the
    owning shard. Errors other than [Moved] propagate ([Locked_out]
    back-off policy is the caller's, as in the bare-server harnesses). *)

val commit : t -> handle -> unit Afs_core.Errors.r
(** Commit on the owning shard; on success records the file's load for
    the {!Rebalancer}. *)

val abort : handle -> unit Afs_core.Errors.r

exception Give_up of Afs_core.Errors.t
(** Raise inside an {!update} body to abort without retrying. *)

val update :
  ?retries:int -> ?respect_hints:bool -> ?updater_port:int -> t ->
  Afs_util.Capability.t -> (Txn.t -> 'a Afs_core.Errors.r) -> 'a Afs_core.Errors.r
(** {!Afs_core.Client.update}'s redo loop, cluster-wide: on [Conflict]
    (from the body or from commit) the whole body re-runs against a fresh
    version — which may land on a {e different} shard if the file migrated
    between attempts. Other errors abort the version and propagate. *)

val current_version :
  t -> Afs_util.Capability.t ->
  (Afs_util.Capability.t * Shard.t * Afs_util.Capability.t) Afs_core.Errors.r
(** [(resolved_file, owning_shard, version_cap)] after forward-chasing. *)

val read_current :
  t -> Afs_util.Capability.t -> Afs_util.Pagepath.t -> bytes Afs_core.Errors.r

val create_file : ?data:bytes -> t -> Afs_util.Capability.t Afs_core.Errors.r
(** New file on the round-robin placement shard. *)

(** {2 Raw routing, for the transaction layer}

    The cross-shard coordinator (lib/txn) speaks bare {!Afs_rpc.Remote}
    requests; these expose the routing machinery it needs without the
    policy the higher-level operations bundle in. *)

val conn_for :
  t -> Afs_util.Capability.t ->
  (Afs_util.Capability.t * Shard.t * Afs_rpc.Remote.conn) Afs_core.Errors.r
(** [(resolved_cap, owning_shard, connection)] after applying the
    client's cached forwards — the request itself may still answer
    [Moved]; feed that back via {!note_forward} and re-route. *)

val note_forward : t -> old:Afs_util.Capability.t -> Afs_util.Capability.t -> unit
(** Learn a forward from a [Moved] answer (shared router cache). *)

val create_file_on :
  t -> Shard.t -> data:bytes -> Afs_util.Capability.t Afs_core.Errors.r
(** New file on a {e specific} shard, leaving the round-robin placement
    cursor untouched (coordinator records live with their first
    participant). *)

val note_commit : t -> shard:Shard.t -> Afs_util.Capability.t -> unit
(** Record a committed update against the file for the {!Rebalancer}'s
    load statistics, as {!commit} does. *)
