module Capability = Afs_util.Capability
module Pagepath = Afs_util.Pagepath
module Store = Afs_core.Store
module Server = Afs_core.Server
module Errors = Afs_core.Errors
module Remote = Afs_rpc.Remote

type t = { id : int; store : Store.t; server : Server.t; host : Remote.host }

let moved_target server file =
  match Server.current_version server file with
  | Error _ -> None
  | Ok version -> (
      match Server.read_page server version Pagepath.root with
      | Ok data -> Forward.decode data
      | Error _ -> None)

(* [Some record] iff the file's current committed root is a cross-shard
   transaction marker: a staged update whose outcome lives in the
   coordinator record. *)
let txn_record server file =
  match Server.current_version server file with
  | Error _ -> None
  | Ok version -> (
      match Server.read_page server version Pagepath.root with
      | Ok data -> Txnmark.record_of data
      | Error _ -> None)

(* Record R on the fresh version's root: the location check becomes part
   of every cluster transaction's read set, so a committed root write —
   a migration flip or a transaction stage, both of which replace the
   root — conflicts with every version opened before it, in both commit
   orders. *)
let with_root_read server (resp : Remote.response) =
  match resp with
  | Ok (Remote.Cap version) as ok ->
      ignore (Server.read_page server version Pagepath.root);
      ok
  | other -> other

(* The wrapper runs atomically inside the host's single simulated event,
   so the marker checks, the version creation and the root touch are
   indivisible: no commit (in particular no migration flip and no
   transaction stage) can slip between them. *)
let location_check server base (req : Remote.request) : Remote.response =
  match req with
  | Remote.Current_version file -> (
      match moved_target server file with
      | Some target -> Error (Errors.Moved target)
      | None -> (
          match txn_record server file with
          | Some record -> Error (Errors.Txn_in_doubt record)
          | None -> base req))
  | Remote.Create_version { file; _ } -> (
      match moved_target server file with
      | Some target -> Error (Errors.Moved target)
      | None -> (
          match txn_record server file with
          | Some record -> Error (Errors.Txn_in_doubt record)
          | None -> with_root_read server (base req)))
  | Remote.Txn_mark file -> (
      (* Resolution reads pass the in-doubt trap — they are the
         resolution — but still honour migration tombstones. *)
      match moved_target server file with
      | Some target -> Error (Errors.Moved target)
      | None -> base req)
  | Remote.Txn_open { file; _ } | Remote.Txn_cas { file; _ } -> (
      (* Resolution writes, like resolution reads, pass the in-doubt trap;
         the handler itself reads the root inside the fresh version, so
         the R-on-root fence needs no extra touch here. *)
      match moved_target server file with
      | Some target -> Error (Errors.Moved target)
      | None -> base req)
  | _ -> base req

let create ?latency_ms ?proc_ms ?cache_capacity ?group_commit ?store ?publish_tap ?trace
    engine ~id ~seed =
  let store = match store with Some s -> s | None -> Store.memory () in
  let name = Printf.sprintf "shard-%d" id in
  let server =
    Server.create ?cache_capacity ?group_commit ~seed ~name ?publish_tap ?trace store
  in
  let host =
    Remote.host ?latency_ms ?proc_ms ~wrap:(location_check server) engine ~name server
  in
  { id; store; server; host }

(* Rebuild a shard slot around an existing server — the promotion path:
   the server was created over the promoted replica's store (plus
   recovery); this gives it the standard wrapped RPC host. *)
let of_server ?latency_ms ?proc_ms engine ~id ~store server =
  let host =
    Remote.host ?latency_ms ?proc_ms ~wrap:(location_check server) engine
      ~name:(Server.name server) server
  in
  { id; store; server; host }

let id t = t.id
let store t = t.store
let server t = t.server
let host t = t.host
let name t = Server.name t.server
let port t = Server.port t.server
let up t = Remote.host_up t.host
let crash t = Remote.crash_host t.host

let recover t =
  Remote.restart_host t.host;
  match (t.store.Store.list_blocks) () with
  | Error e -> Error (Errors.Store_failure e)
  | Ok blocks -> Server.recover_from_blocks t.server blocks

let resident_files t =
  List.filter
    (fun f -> Option.is_none (moved_target t.server f))
    (List.sort Capability.compare (Server.list_files t.server))
