module Capability = Afs_util.Capability
module Stats = Afs_util.Stats
module Det = Afs_util.Det
module Engine = Afs_sim.Engine
module Store = Afs_core.Store
module Server = Afs_core.Server
module Errors = Afs_core.Errors
module Rpc = Afs_rpc.Rpc
module Remote = Afs_rpc.Remote
module Replica = Afs_replica.Replica
module Trace = Afs_trace.Trace

let default_base_seed = 0xA40EBA

(* Seeds a full 2^32 apart keep the derived 48-bit ports distinct for any
   realistic shard count while shard 0 keeps the default seed — so a
   one-shard cluster mints bit-identical capabilities to a bare server. *)
let seed_stride = 0x1_0000_0000

type load = { cap : Capability.t; mutable count : int }

(* The replication plane of one shard: the primary-side source feeding
   [members], each hosted behind its own RPC endpoint (the ship/promote
   wire surface; local feeding bypasses it, promotion uses it). *)
type replication = {
  mutable source : Replica.Source.source;
  mutable members : (Replica.t * (Remote.request, Remote.response) Rpc.t) list;
}

type config = {
  latency_ms : float option;
  proc_ms : float option;
  cache_capacity : int option;
  group_commit : int option;
  trace : Trace.t option;
}

type t = {
  engine : Engine.t;
  shards : Shard.t array;
  conns : Remote.conn array;
  router : Router.t;
  counters : Stats.Counter.t;
  loads : (int * int, load) Hashtbl.t;
  seeds : int array;
  config : config;
  replication : replication option array;
  (* Bumped on every promotion; clients watch it to rebuild their
     connections — the connection-level analogue of chasing [Moved]. *)
  mutable generation : int;
}

let create ?latency_ms ?proc_ms ?cache_capacity ?group_commit
    ?(base_seed = default_base_seed) ?(replicas = 0) ?apply_interval_ms ?trace engine
    ~shards:n =
  if n <= 0 then invalid_arg "Cluster.create: need at least one shard";
  if replicas < 0 then invalid_arg "Cluster.create: replicas must be >= 0";
  let counters = Stats.Counter.create () in
  let seeds = Array.init n (fun i -> base_seed + (i * seed_stride)) in
  let replication = Array.make n None in
  let shards =
    Array.init n (fun i ->
        if replicas = 0 then
          (* No replication: exactly the pre-replica shard, byte for
             byte — no capture store, no gate, no epoch register. *)
          Shard.create ?latency_ms ?proc_ms ?cache_capacity ?group_commit ?trace engine
            ~id:i ~seed:seeds.(i)
        else begin
          let source = Replica.Source.create ~counters ?trace engine (Store.memory ()) in
          let reg = Replica.Source.register source in
          let members =
            List.init replicas (fun j ->
                let r =
                  Replica.create ?apply_interval_ms ~counters ?trace engine ~shard:i ~reg
                    ()
                in
                Replica.Source.attach source r;
                let rhost =
                  Replica.host ?latency_ms ?proc_ms engine
                    ~name:(Printf.sprintf "shard-%d.r%d" i j)
                    r
                in
                (r, rhost))
          in
          replication.(i) <- Some { source; members };
          Shard.create ?latency_ms ?proc_ms ?cache_capacity ?group_commit
            ~store:(Replica.Source.capture_store source)
            ~publish_tap:(Replica.Source.tap source) ?trace engine ~id:i ~seed:seeds.(i)
        end)
  in
  let router = Router.create ~ports:(Array.to_list (Array.map Shard.port shards)) in
  {
    engine;
    shards;
    conns = Array.map (fun s -> Remote.connect [ Shard.host s ]) shards;
    router;
    counters;
    loads = Hashtbl.create 64;
    seeds;
    config = { latency_ms; proc_ms; cache_capacity; group_commit; trace };
    replication;
    generation = 0;
  }

let engine t = t.engine
let nshards t = Array.length t.shards
let shard t i = t.shards.(i)
let shards t = Array.to_list t.shards
let conn t i = t.conns.(i)
let router t = t.router
let counters t = t.counters
let generation t = t.generation

let resolve t cap = Router.resolve t.router cap

let shard_of_cap t cap =
  let cap = Router.resolve t.router cap in
  match Router.shard_of_port t.router cap.Capability.port with
  | Some i -> Ok (cap, t.shards.(i))
  | None -> Error Errors.Invalid_capability

let place t = t.shards.(Router.place t.router)

let create_file_direct t ?(data = Bytes.empty) () =
  Server.create_file (Shard.server (place t)) ~data ()

let note_load t ~shard file =
  Stats.Counter.incr t.counters (Printf.sprintf "shard%d.commits" (Shard.id shard));
  let key = (Capability.port_to_int file.Capability.port, file.Capability.obj) in
  match Hashtbl.find_opt t.loads key with
  | Some l -> l.count <- l.count + 1
  | None -> Hashtbl.replace t.loads key { cap = file; count = 1 }

let drain_loads t =
  let entries = Det.fold_sorted (fun _ l acc -> (l.cap, l.count) :: acc) t.loads [] in
  Hashtbl.reset t.loads;
  List.rev entries

let shard_commits t i = Stats.Counter.get t.counters (Printf.sprintf "shard%d.commits" i)
let migrations t = Stats.Counter.get t.counters "migrations"

(* {2 Replication} *)

let replicas_of t i =
  match t.replication.(i) with None -> [] | Some { members; _ } -> List.map fst members

let replication_source t i =
  Option.map (fun r -> r.source) t.replication.(i)

let flush_replication t =
  Array.iter
    (function
      | None -> ()
      | Some { source; members } ->
          Replica.Source.flush source;
          List.iter (fun (r, _) -> Replica.drain r) members)
    t.replication

type promotion = { epoch : int; watermark : int; recovered_files : int }

(* Fail over shard [i] to its first replica. Must run inside a simulation
   process (the promotion itself is an RPC to the replica's endpoint).

   The sequence is the paper's commit discipline applied to the shard:
   the [Promote] request test-and-sets the shared epoch register and
   drains the replica's queue; sibling replicas catch up and re-home onto
   the promoted store's new source; a server is rebuilt over that store
   with the shard's original seed — same secret, same port — so every
   outstanding capability stays valid and the router's port table needs
   no change. The deposed primary, if still running, keeps its old
   source, whose every publish now loses the test-and-set: it can answer
   reads and open versions, but it can never commit again. *)
let promote t i =
  match t.replication.(i) with
  | None | Some { members = []; _ } ->
      Error (Errors.Store_failure "promote: shard has no replica")
  | Some ({ members = (r, rhost) :: siblings; _ } as repl) -> (
      let expected_epoch = Replica.epoch r in
      match Rpc.call rhost (Remote.Promote { expected_epoch }) with
      | Error e ->
          Error (Errors.Store_failure (Fmt.str "promote rpc: %a" Rpc.pp_call_error e))
      | Ok (Error e) -> Error e
      | Ok (Ok (Remote.Watermark { epoch; applied; _ })) -> (
          List.iter (fun (s, _) -> Replica.adopt s ~epoch) siblings;
          let source =
            Replica.Source.create
              ~reg:(Replica.Source.register repl.source)
              ~seq:(Replica.shipped_seq r) ~counters:t.counters ?trace:t.config.trace
              t.engine (Replica.store r)
          in
          List.iter (fun (s, _) -> Replica.Source.attach source s) siblings;
          let store = Replica.Source.capture_store source in
          let server =
            Server.create ?cache_capacity:t.config.cache_capacity
              ?group_commit:t.config.group_commit ~seed:t.seeds.(i)
              ~name:(Printf.sprintf "shard-%d" i)
              ~publish_tap:(Replica.Source.tap source) ?trace:t.config.trace store
          in
          let recovered =
            match store.Store.list_blocks () with
            | Error msg -> Error (Errors.Store_failure msg)
            | Ok blocks -> Server.recover_from_blocks server blocks
          in
          match recovered with
          | Error e -> Error e
          | Ok recovered_files ->
              let shard =
                Shard.of_server ?latency_ms:t.config.latency_ms
                  ?proc_ms:t.config.proc_ms t.engine ~id:i ~store server
              in
              t.shards.(i) <- shard;
              t.conns.(i) <- Remote.connect [ Shard.host shard ];
              repl.source <- source;
              repl.members <- siblings;
              t.generation <- t.generation + 1;
              Stats.Counter.incr t.counters "promotions";
              Ok { epoch; watermark = applied; recovered_files })
      | Ok (Ok _) -> Error (Errors.Store_failure "promote: unexpected response"))
