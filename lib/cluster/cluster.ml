module Capability = Afs_util.Capability
module Stats = Afs_util.Stats
module Det = Afs_util.Det
module Engine = Afs_sim.Engine
module Server = Afs_core.Server
module Errors = Afs_core.Errors
module Remote = Afs_rpc.Remote

let default_base_seed = 0xA40EBA

(* Seeds a full 2^32 apart keep the derived 48-bit ports distinct for any
   realistic shard count while shard 0 keeps the default seed — so a
   one-shard cluster mints bit-identical capabilities to a bare server. *)
let seed_stride = 0x1_0000_0000

type load = { cap : Capability.t; mutable count : int }

type t = {
  engine : Engine.t;
  shards : Shard.t array;
  conns : Remote.conn array;
  router : Router.t;
  counters : Stats.Counter.t;
  loads : (int * int, load) Hashtbl.t;
}

let create ?latency_ms ?proc_ms ?cache_capacity ?group_commit
    ?(base_seed = default_base_seed) ?trace engine ~shards:n =
  if n <= 0 then invalid_arg "Cluster.create: need at least one shard";
  let shards =
    Array.init n (fun i ->
        Shard.create ?latency_ms ?proc_ms ?cache_capacity ?group_commit ?trace engine ~id:i
          ~seed:(base_seed + (i * seed_stride)))
  in
  let router = Router.create ~ports:(Array.to_list (Array.map Shard.port shards)) in
  {
    engine;
    shards;
    conns = Array.map (fun s -> Remote.connect [ Shard.host s ]) shards;
    router;
    counters = Stats.Counter.create ();
    loads = Hashtbl.create 64;
  }

let engine t = t.engine
let nshards t = Array.length t.shards
let shard t i = t.shards.(i)
let shards t = Array.to_list t.shards
let conn t i = t.conns.(i)
let router t = t.router
let counters t = t.counters

let resolve t cap = Router.resolve t.router cap

let shard_of_cap t cap =
  let cap = Router.resolve t.router cap in
  match Router.shard_of_port t.router cap.Capability.port with
  | Some i -> Ok (cap, t.shards.(i))
  | None -> Error Errors.Invalid_capability

let place t = t.shards.(Router.place t.router)

let create_file_direct t ?(data = Bytes.empty) () =
  Server.create_file (Shard.server (place t)) ~data ()

let note_load t ~shard file =
  Stats.Counter.incr t.counters (Printf.sprintf "shard%d.commits" (Shard.id shard));
  let key = (Capability.port_to_int file.Capability.port, file.Capability.obj) in
  match Hashtbl.find_opt t.loads key with
  | Some l -> l.count <- l.count + 1
  | None -> Hashtbl.replace t.loads key { cap = file; count = 1 }

let drain_loads t =
  let entries = Det.fold_sorted (fun _ l acc -> (l.cap, l.count) :: acc) t.loads [] in
  Hashtbl.reset t.loads;
  List.rev entries

let shard_commits t i = Stats.Counter.get t.counters (Printf.sprintf "shard%d.commits" i)
let migrations t = Stats.Counter.get t.counters "migrations"
