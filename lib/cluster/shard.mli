(** One cluster member: a {!Afs_core.Server} over its own private store,
    exposed through an {!Afs_rpc.Remote} host whose handler is wrapped
    with the cluster's location check.

    The wrap does two things, both inside the host's single simulated
    event (so they are indivisible from the request they decorate):

    - [Current_version] / [Create_version] on a file whose current root
      is a forward marker answer [Moved target] instead of serving the
      tombstone, and on a transaction marker ({!Txnmark}) answer
      [Txn_in_doubt record] instead of exposing staged state (the
      resolution requests [Txn_mark] / [Txn_open] pass this trap — they
      {e are} the resolution — but still honour tombstones);
    - after a successful [Create_version] (or [Txn_open]) it reads the
      new version's root, recording [R] there. That makes the location
      check part of every cluster transaction's read set: a migration
      flip and a transaction stage both write the root, so their commits
      conflict with every version opened before them — the invariant
      {!Migration} and lib/txn rely on.

    Every other request passes through untouched, which is why a
    single-shard cluster is outcome-identical to a bare server for
    child-page workloads (the extra [R] on the root only matters when
    somebody writes the root, and only migrations do). *)

type t

val create :
  ?latency_ms:float ->
  ?proc_ms:float ->
  ?cache_capacity:int ->
  ?group_commit:int ->
  ?store:Afs_core.Store.t ->
  ?publish_tap:
    ((int * Afs_core.Page.t) list -> (unit, Afs_core.Errors.t) result) ->
  ?trace:Afs_trace.Trace.t ->
  Afs_sim.Engine.t ->
  id:int ->
  seed:int ->
  t
(** A shard named ["shard-<id>"] with its own memory store and capability
    [seed] (distinct seeds give distinct ports — the routing key).
    [group_commit] sets the shard server's commit batch window; its RPC
    host then drains up to that many queued commits into one pipeline
    run (default 1 — no batching). [store] overrides the private memory
    store and [publish_tap] installs a replication gate — how a
    replicated cluster routes the shard's writes through a capture
    store and its commit stream through the gate. *)

val of_server :
  ?latency_ms:float ->
  ?proc_ms:float ->
  Afs_sim.Engine.t ->
  id:int ->
  store:Afs_core.Store.t ->
  Afs_core.Server.t ->
  t
(** Rebuild shard slot [id] around an existing (recovered) server — the
    promotion path: wraps it with the standard location-checked host. *)

val id : t -> int
val store : t -> Afs_core.Store.t
val server : t -> Afs_core.Server.t
val host : t -> Afs_rpc.Remote.host
val name : t -> string
val port : t -> Afs_util.Capability.port
val up : t -> bool

val crash : t -> unit
(** Kill the RPC endpoint and lose the server's volatile state. *)

val recover : t -> int Afs_core.Errors.r
(** Restart the endpoint and rebuild the file table from the store's
    blocks (paper §4 recovery); returns the number of files recovered. *)

val moved_target : Afs_core.Server.t -> Afs_util.Capability.t -> Afs_util.Capability.t option
(** [Some cap] iff the file's current committed root is a forward marker
    — i.e. the file has migrated away and [cap] is its new home. *)

val txn_record : Afs_core.Server.t -> Afs_util.Capability.t -> Afs_util.Capability.t option
(** [Some record] iff the file's current committed root is a cross-shard
    transaction marker ({!Txnmark}): the file is staged by an in-doubt
    transaction whose outcome lives in [record]. Ordinary opens of such a
    file answer [Txn_in_doubt] until a resolver rolls it forward or
    back. *)

val resident_files : t -> Afs_util.Capability.t list
(** Files whose current version actually lives here (tombstones of
    migrated-away files excluded), in capability order. *)
