(** A directory service built {e on top of} the file service — the layered
    storage hierarchy of Figure 1 (directory server above file server
    above block server).

    A directory is an ordinary small file: a fixed set of hash-bucket
    pages under the root, each holding (name, capability) entries. Every
    directory mutation is an atomic optimistic update of one bucket page,
    so concurrent [enter]s of names in different buckets never conflict,
    and lookups ride the client page cache (§5.4). This module contains
    no concurrency control of its own — demonstrating that the file
    service's mechanism is sufficient substrate for higher services. *)

type t

(** {2 Storage access}

    The directory logic is written against a small access record rather
    than {!Afs_core.Client} directly, so the same code serves a file on a
    single server or on a shard cluster (where the directory file itself
    can migrate under live [enter]s — atomicity per bucket update is the
    file service's, not this module's). *)

type txn_ops = {
  t_read : Afs_util.Pagepath.t -> bytes Afs_core.Errors.r;
  t_write : Afs_util.Pagepath.t -> bytes -> unit Afs_core.Errors.r;
  t_insert :
    parent:Afs_util.Pagepath.t -> index:int -> Afs_util.Pagepath.t Afs_core.Errors.r;
}

type access = {
  a_create_file : bytes -> Afs_util.Capability.t Afs_core.Errors.r;
  a_update :
    'a.
    Afs_util.Capability.t -> (txn_ops -> 'a Afs_core.Errors.r) -> 'a Afs_core.Errors.r;
      (** Must provide the {!Afs_core.Client.update} contract: run the
          body in a fresh version, commit, redo the whole body on
          [Conflict]. *)
  a_read_current : Afs_util.Capability.t -> Afs_util.Pagepath.t -> bytes Afs_core.Errors.r;
  a_read_cached : Afs_util.Capability.t -> Afs_util.Pagepath.t -> bytes Afs_core.Errors.r;
}

val client_access : Afs_core.Client.t -> access

val cluster_access : Afs_cluster.Cluster_client.t -> access
(** Location-transparent directory storage; must run inside a simulation
    process. Cached reads degrade to current reads (the cluster client
    carries no page cache yet). *)

val create_with : access -> ?buckets:int -> unit -> t Afs_core.Errors.r
val of_capability_with : access -> Afs_util.Capability.t -> t Afs_core.Errors.r

val create : Afs_core.Client.t -> ?buckets:int -> unit -> t Afs_core.Errors.r
(** A fresh directory file with the given bucket count (default 16). *)

val of_capability : Afs_core.Client.t -> Afs_util.Capability.t -> t Afs_core.Errors.r
(** Re-open an existing directory (bucket count is read from the file). *)

val capability : t -> Afs_util.Capability.t
val buckets : t -> int

val enter : t -> string -> Afs_util.Capability.t -> unit Afs_core.Errors.r
(** Bind (or rebind) a name. Any deferred updates ride the same commit. *)

val lookup : t -> string -> Afs_util.Capability.t option Afs_core.Errors.r
(** Served through the client cache: repeated lookups of a quiet
    directory cost one validation round trip and no page transfer.
    Deferred updates are visible (the newest queued op for a name wins
    over the stored bucket). *)

val remove : t -> string -> bool Afs_core.Errors.r
(** True when the name existed (after the deferred updates, which ride
    the same commit, are applied). *)

val list_names : t -> string list Afs_core.Errors.r
(** All bound names, sorted, deferred updates included. *)

(** {2 Deferred updates}

    The naming-layer face of group commit: a deferred [enter]/[remove]
    costs no I/O when queued and is folded into the next update
    transaction that touches the directory — [enter], [remove] or an
    explicit {!flush} — so directory metadata joins an existing commit
    (one read/write per touched bucket) instead of forcing its own.
    Queued updates are immediately visible to this handle's [lookup] and
    [list_names]; other clients see them once flushed. The queue empties
    only when the carrying commit succeeds. *)

val enter_deferred : t -> string -> Afs_util.Capability.t -> unit

val remove_deferred : t -> string -> unit

val pending_count : t -> int
(** Queued deferred updates not yet flushed. *)

val flush : t -> unit Afs_core.Errors.r
(** Commit all queued deferred updates now, in one transaction grouped by
    bucket. No-op when the queue is empty. *)
