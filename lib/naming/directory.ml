module Capability = Afs_util.Capability
module Pagepath = Afs_util.Pagepath
module Wire = Afs_util.Wire
module Client = Afs_core.Client
module Cluster_client = Afs_cluster.Cluster_client
module Errors = Afs_core.Errors

open Errors

(* {2 The storage access a directory needs}

   A first-class record rather than a functor: the polymorphic [a_update]
   field is the whole interface burden, and a record value can be built
   from anything — a bare client, a cluster client, a test double. *)

type txn_ops = {
  t_read : Pagepath.t -> bytes Errors.r;
  t_write : Pagepath.t -> bytes -> unit Errors.r;
  t_insert : parent:Pagepath.t -> index:int -> Pagepath.t Errors.r;
}

type access = {
  a_create_file : bytes -> Capability.t Errors.r;
  a_update : 'a. Capability.t -> (txn_ops -> 'a Errors.r) -> 'a Errors.r;
  a_read_current : Capability.t -> Pagepath.t -> bytes Errors.r;
  a_read_cached : Capability.t -> Pagepath.t -> bytes Errors.r;
}

let client_access client =
  {
    a_create_file = (fun data -> Client.create_file client ~data ());
    a_update =
      (fun dir body ->
        Client.update client dir (fun txn ->
            body
              {
                t_read = Client.Txn.read txn;
                t_write = Client.Txn.write txn;
                t_insert = (fun ~parent ~index -> Client.Txn.insert txn ~parent ~index ());
              }));
    a_read_current = Client.read_current client;
    a_read_cached = Client.read_cached client;
  }

(* No per-client page cache on the cluster path (yet): cached reads are
   current reads. Correct, just one validation round trip dearer. *)
let cluster_access client =
  {
    a_create_file = (fun data -> Cluster_client.create_file ~data client);
    a_update =
      (fun dir body ->
        Cluster_client.update client dir (fun txn ->
            body
              {
                t_read = Cluster_client.Txn.read txn;
                t_write = Cluster_client.Txn.write txn;
                t_insert =
                  (fun ~parent ~index -> Cluster_client.Txn.insert txn ~parent ~index ());
              }));
    a_read_current = Cluster_client.read_current client;
    a_read_cached = Cluster_client.read_current client;
  }

type t = {
  access : access;
  dir : Capability.t;
  buckets : int;
  (* Deferred updates, newest first: [Some cap] binds, [None] removes.
     They cost no I/O when queued and ride the next update transaction
     that touches the directory — the naming-layer analogue of group
     commit: directory metadata joins an existing commit instead of
     forcing its own. *)
  mutable pending : (string * Capability.t option) list;
}

(* {2 Entry encoding} *)

let encode_entries entries =
  let w = Wire.Writer.create () in
  Wire.Writer.varint w (List.length entries);
  List.iter
    (fun (name, cap) ->
      Wire.Writer.string w name;
      Wire.Writer.u64 w (Int64.of_int (Capability.port_to_int cap.Capability.port));
      Wire.Writer.varint w cap.Capability.obj;
      Wire.Writer.u8 w (Capability.rights_to_int cap.Capability.rights);
      Wire.Writer.u32 w cap.Capability.check)
    entries;
  Wire.Writer.contents w

let decode_entries data =
  if Bytes.length data = 0 then Ok []
  else
    match
      let r = Wire.Reader.of_bytes data in
      let count = Wire.Reader.varint r in
      let rec go n acc =
        if n = 0 then List.rev acc
        else begin
          let name = Wire.Reader.string r in
          let port = Capability.port_of_int (Int64.to_int (Wire.Reader.u64 r)) in
          let obj = Wire.Reader.varint r in
          let rights = Capability.rights_of_int (Wire.Reader.u8 r) in
          let check = Wire.Reader.u32 r in
          go (n - 1) ((name, { Capability.port; obj; rights; check }) :: acc)
        end
      in
      go count []
    with
    | entries -> Ok entries
    | exception Wire.Decode_error msg -> Error (Store_failure ("directory bucket: " ^ msg))

let encode_meta buckets = Bytes.of_string (Printf.sprintf "afs-directory:%d" buckets)

let decode_meta data =
  match String.split_on_char ':' (Bytes.to_string data) with
  | [ "afs-directory"; n ] -> (
      match int_of_string_opt n with
      | Some buckets when buckets > 0 -> Ok buckets
      | _ -> Error (Store_failure "directory: bad bucket count"))
  | _ -> Error (Store_failure "directory: not a directory file")

(* {2 Hashing} *)

let bucket_of t name =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3FFFFFFF) name;
  !h mod t.buckets

let bucket_path t name = Pagepath.of_list [ bucket_of t name ]

(* {2 Operations} *)

let create_with access ?(buckets = 16) () =
  let* dir = access.a_create_file (encode_meta buckets) in
  let* () =
    access.a_update dir (fun txn ->
        let rec add i =
          if i >= buckets then Ok ()
          else
            let* _ = txn.t_insert ~parent:Pagepath.root ~index:i in
            add (i + 1)
        in
        add 0)
  in
  Ok { access; dir; buckets; pending = [] }

let of_capability_with access dir =
  let* meta = access.a_read_current dir Pagepath.root in
  let* buckets = decode_meta meta in
  Ok { access; dir; buckets; pending = [] }

let create client ?buckets () = create_with (client_access client) ?buckets ()
let of_capability client dir = of_capability_with (client_access client) dir

let capability t = t.dir
let buckets t = t.buckets

let apply_op entries (name, op) =
  match op with
  | Some cap -> (name, cap) :: List.remove_assoc name entries
  | None -> List.remove_assoc name entries

(* Apply [ops] (oldest first) inside one update transaction: each touched
   bucket is read, edited through the whole op list and written exactly
   once, however many deferred updates ride along. *)
let apply_ops t txn ops =
  let rec per_bucket = function
    | [] -> Ok ()
    | bi :: rest ->
        let path = Pagepath.of_list [ bi ] in
        let* data = txn.t_read path in
        let* entries = decode_entries data in
        let entries' =
          List.fold_left
            (fun es (name, op) -> if bucket_of t name = bi then apply_op es (name, op) else es)
            entries ops
        in
        let* () = txn.t_write path (encode_entries entries') in
        per_bucket rest
  in
  per_bucket (List.sort_uniq compare (List.map (fun (name, _) -> bucket_of t name) ops))

(* One commit carries the queued ops plus [extra]; the queue empties only
   on success ([a_update] retries conflicts internally, so a failure here
   is final for this attempt and the queue survives for the next one). *)
let run_with_pending t extra =
  let ops = List.rev_append t.pending extra in
  let* () = t.access.a_update t.dir (fun txn -> apply_ops t txn ops) in
  t.pending <- [];
  Ok ()

let enter t name cap = run_with_pending t [ (name, Some cap) ]

let enter_deferred t name cap = t.pending <- (name, Some cap) :: t.pending

let remove_deferred t name = t.pending <- (name, None) :: t.pending

let pending_count t = List.length t.pending

let flush t = if t.pending = [] then Ok () else run_with_pending t []

let lookup t name =
  (* The deferred queue is this client's authoritative overlay: the
     newest queued op for a name wins over the stored bucket. *)
  match List.assoc_opt name t.pending with
  | Some op -> Ok op
  | None ->
      let* data = t.access.a_read_cached t.dir (bucket_path t name) in
      let* entries = decode_entries data in
      Ok (List.assoc_opt name entries)

let remove t name =
  let ops = List.rev t.pending in
  let* existed =
    t.access.a_update t.dir (fun txn ->
        let* () = apply_ops t txn ops in
        let path = bucket_path t name in
        let* data = txn.t_read path in
        let* entries = decode_entries data in
        if List.mem_assoc name entries then
          let* () = txn.t_write path (encode_entries (List.remove_assoc name entries)) in
          Ok true
        else Ok false)
  in
  t.pending <- [];
  Ok existed

let list_names t =
  let rec go i acc =
    if i >= t.buckets then
      let visible = List.fold_left apply_op acc (List.rev t.pending) in
      Ok (List.sort String.compare (List.map fst visible))
    else
      let* data = t.access.a_read_cached t.dir (Pagepath.of_list [ i ]) in
      let* entries = decode_entries data in
      go (i + 1) (List.rev_append entries acc)
  in
  go 0 []
