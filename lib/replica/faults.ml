(* Deterministic fault schedules.

   The crash tests used ad-hoc [Engine.at ... crash] hooks; this module
   generalises them into a small schedule: labeled actions triggered at
   virtual times, with optional seeded jitter, each run inside a fresh
   process so an action may use blocking operations (RPC calls — the
   promotion path does). Same seed, same schedule, same run. *)

module Engine = Afs_sim.Engine
module Proc = Afs_sim.Proc
module Xrng = Afs_util.Xrng
module Trace = Afs_trace.Trace

type t = {
  engine : Engine.t;
  jitter : (Xrng.t * float) option;  (** Generator and jitter bound (ms). *)
  mutable armed : int;
  mutable fired : int;
  mutable labels : string list;  (** Fired labels, newest first. *)
  mutable trace : Trace.t;
}

let create ?seed ?(jitter_ms = 0.0) engine =
  let jitter =
    match seed with
    | Some s when jitter_ms > 0.0 -> Some (Xrng.create s, jitter_ms)
    | Some _ | None -> None
  in
  { engine; jitter; armed = 0; fired = 0; labels = []; trace = Trace.null }

let set_trace t tr = t.trace <- tr
let armed t = t.armed
let fired t = t.fired
let fired_labels t = List.rev t.labels

(* Jitter is drawn at scheduling time (in schedule order), not at fire
   time, so the draw sequence — and therefore the whole schedule — is a
   pure function of the seed and the [at] call order. *)
let at t ~ms ~label fn =
  if ms < 0.0 then invalid_arg "Faults.at: negative trigger time";
  let delay =
    match t.jitter with Some (rng, bound) -> ms +. Xrng.float rng bound | None -> ms
  in
  t.armed <- t.armed + 1;
  Engine.at t.engine delay (fun () ->
      t.fired <- t.fired + 1;
      t.labels <- label :: t.labels;
      (if Trace.enabled t.trace then
         Trace.point t.trace
           (Trace.Generic
              {
                kind = "fault.fire";
                fields = [ ("label", Trace.Str label); ("at_ms", Trace.Float delay) ];
              }));
      ignore (Proc.spawn ~name:("fault:" ^ label) t.engine fn))
