(** Shard replication by commit-stream log shipping, with fenced failover.

    A {!Source} wraps a primary's store, capturing every successful
    mutation as a {!Afs_core.Store.op}; installed as the server's
    [publish_tap], it cuts the captured operations plus the commit
    references of each publish into sequenced batches and feeds them to
    the attached replicas. Feeding is synchronous with the commit (the
    reliable log append); application is asynchronous — a replica drains
    its queue one [apply_interval_ms] later, so per-shard replication lag
    is real and lands in a histogram.

    Failover reuses the paper's commit mechanism as the fencing token.
    Every source owns an epoch {!register} (a block of the primary store,
    allocated but never written). {!promote} is a test-and-set on that
    register; a deposed primary's next publish finds the epoch moved,
    loses its own test-and-set at the gate and aborts the commit — the
    transaction is reported aborted, never silently lost. *)

type register = { block : int; mutable epoch : int }
(** The fencing token: promotion test-and-sets [epoch]; [block] is the
    store block that identifies the register in traces. *)

val register_block : register -> int
val register_epoch : register -> int

type batch = { seq : int; epoch : int; ship_at : float; ops : Afs_core.Store.op list }
(** One cut of the commit stream: shard-total-ordered by [seq], tagged
    with the primary epoch it was gated under. *)

type t
(** A replica: a store, a queue of shipped batches, and watermarks. *)

val create :
  ?apply_interval_ms:float ->
  ?store:Afs_core.Store.t ->
  ?counters:Afs_util.Stats.Counter.t ->
  ?trace:Afs_trace.Trace.t ->
  Afs_sim.Engine.t ->
  shard:int ->
  reg:register ->
  unit ->
  t
(** A fresh replica following [reg]'s current epoch. [store] defaults to
    a new in-memory store — it must start with the same allocation
    frontier as the primary had when its source was created (normally:
    both fresh), because shipped allocations replay by absolute block
    number. [apply_interval_ms] (default 5.0) is the virtual-time delay
    between a feed and the drain that applies it. *)

val store : t -> Afs_core.Store.t
val epoch : t -> int
val shard : t -> int

val applied_seq : t -> int
(** The applied watermark: every batch with seq <= this is in the store. *)

val shipped_seq : t -> int
(** The last batch seq fed to this replica. Replication lag in batches is
    [shipped_seq - applied_seq]. *)

val queued : t -> int
val lag_histogram : t -> Afs_util.Stats.Histogram.t
val counters : t -> Afs_util.Stats.Counter.t

val failure : t -> string option
(** The first apply error, if any; a failed replica stops applying. *)

val set_trace : t -> Afs_trace.Trace.t -> unit

val feed : t -> batch -> unit
(** Enqueue a batch and (if none is pending) schedule the asynchronous
    drain. Normally called by the source's gate; exposed for the RPC
    ship path and tests. *)

val drain : t -> unit
(** Apply everything queued, synchronously, recording lag as of now. *)

val promote : t -> expected_epoch:int -> unit Afs_core.Errors.r
(** Test-and-set on the epoch register: wins iff the register still holds
    [expected_epoch], bumping it to [expected_epoch + 1] and draining the
    queue so the store holds every batch the old primary ever gated.
    Loses with [Conflict] (emitting a fence trace point) if the epoch
    already moved — someone else promoted first. *)

val adopt : t -> epoch:int -> unit
(** Drain, then follow [epoch]: how sibling replicas re-home onto a
    freshly promoted primary's stream. *)

val store_digest : Afs_core.Store.t -> (int * bytes option) list Afs_core.Errors.r
(** Every allocated block with its readable contents (allocated-never-
    written blocks digest as [None]), sorted by block — byte-identity of
    two stores is equality of their digests. *)

(** {2 The primary side} *)

module Source : sig
  type source

  val create :
    ?reg:register ->
    ?seq:int ->
    ?counters:Afs_util.Stats.Counter.t ->
    ?trace:Afs_trace.Trace.t ->
    Afs_sim.Engine.t ->
    Afs_core.Store.t ->
    source
  (** Wrap [store]. Without [reg] a fresh register is made, its identity
      block allocated through the capture wrapper (so the allocation
      ships and frontiers stay aligned); pass the old register at
      promotion so the new primary continues the same token, and [seq]
      (the promoted replica's shipped watermark) so batch numbering
      stays monotone across the epoch change. The server must be created
      over {!capture_store}, with {!tap} as its [publish_tap]. *)

  val capture_store : source -> Afs_core.Store.t
  (** The wrapped store the primary server must run on: reads pass
      through; successful mutations are recorded for the next cut. *)

  val inner_store : source -> Afs_core.Store.t
  val register : source -> register
  val born_epoch : source -> int
  val shipped_seq : source -> int
  val replicas : source -> t list
  val set_trace : source -> Afs_trace.Trace.t -> unit

  val fenced : source -> bool
  (** True once the register's epoch moved past this source's: a
      promotion deposed it and every gate now loses. *)

  val attach : source -> t -> unit
  (** Attach a replica to the stream. Must happen before the first cut
      for the replica to receive the full history. *)

  val tap : source -> (int * Afs_core.Page.t) list -> unit Afs_core.Errors.r
  (** The publish gate, shaped for [Server.create ?publish_tap]: fails
      with [Conflict] when {!fenced} (the commit aborts, the references
      are never written), otherwise cuts captured ops + references into
      one batch and feeds every attached replica. *)

  val flush : source -> unit
  (** Cut any captured-but-unshipped operations (e.g. file creations
      between commits) without a publish; no-op when fenced or empty. *)
end

(** {2 The replica as a remote service} *)

val handle : t -> Afs_rpc.Remote.request -> Afs_rpc.Remote.response
(** Replication-plane dispatch: [Ship] feeds (rejecting a stale epoch
    with [Conflict]), [Promote] runs {!promote} and answers the
    watermark, [Replica_watermark] reads it; every file-service request
    is refused. *)

val host :
  ?latency_ms:float ->
  ?proc_ms:float ->
  Afs_sim.Engine.t ->
  name:string ->
  t ->
  (Afs_rpc.Remote.request, Afs_rpc.Remote.response) Afs_rpc.Rpc.t
(** Serve {!handle} behind an RPC endpoint. *)
