(** Deterministic fault schedules: labeled actions triggered at virtual
    times, generalising the ad-hoc crash hooks of the crash tests so the
    same schedule drives tests, the failover smoke and the [r1] bench.

    Every action runs inside a fresh simulated process, so it may block
    (RPC calls — a kill-and-promote action does). With a [seed] and a
    positive [jitter_ms], each trigger time gets a uniform jitter in
    [0, jitter_ms) drawn at scheduling time in call order — the whole
    schedule is a pure function of the seed and the [at] call sequence. *)

type t

val create : ?seed:int -> ?jitter_ms:float -> Afs_sim.Engine.t -> t

val set_trace : t -> Afs_trace.Trace.t -> unit
(** Fired actions emit a [fault.fire] point (label + actual time). *)

val at : t -> ms:float -> label:string -> (unit -> unit) -> unit
(** Schedule [fn] at [ms] from now (plus jitter). *)

val armed : t -> int
(** Actions scheduled so far. *)

val fired : t -> int
(** Actions that have triggered. *)

val fired_labels : t -> string list
(** Labels of fired actions, in firing order. *)
