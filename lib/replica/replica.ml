(* Shard replication by commit-stream log shipping.

   The primary's publish stage already produces the exact unit worth
   replicating: the batched set of committed references. A [Source] wraps
   the primary's store so every successful mutation (page flushes,
   allocations, frees) is captured as a [Store.op]; the server's
   [publish_tap] then acts as the gate — when a publish is about to make
   a batch of commit references durable, the captured operations plus the
   references themselves are cut into one sequenced batch and fed to the
   attached replicas. Feeding is synchronous (it models the reliable
   append to a replication log on the commit path and costs no simulated
   time); application is asynchronous — each replica drains its queue a
   fixed virtual-time interval later, so replication lag is real and
   observable per shard.

   Fencing reuses the paper's own commit mechanism. Each source owns an
   epoch register, identified by a block allocated on the primary store
   (allocated, never written — recovery skips it). Promotion is a
   test-and-set on that register: it succeeds only against the expected
   epoch and bumps it, so a deposed primary's next publish finds the
   epoch moved, loses its test-and-set and aborts the commit cleanly —
   the transaction is reported aborted, never silently lost. *)

module Engine = Afs_sim.Engine
module Store = Afs_core.Store
module Page = Afs_core.Page
module Errors = Afs_core.Errors
module Stats = Afs_util.Stats
module Trace = Afs_trace.Trace
module Rpc = Afs_rpc.Rpc
module Remote = Afs_rpc.Remote

type register = { block : int; mutable epoch : int }

let register_block r = r.block
let register_epoch r = r.epoch

type batch = { seq : int; epoch : int; ship_at : float; ops : Store.op list }

type t = {
  engine : Engine.t;
  shard : int;
  store : Store.t;
  reg : register;
  mutable epoch : int;  (** Epoch of the stream this replica follows. *)
  queue : batch Queue.t;
  mutable shipped_seq : int;
  mutable applied_seq : int;
  mutable armed : bool;  (** An apply event is already scheduled. *)
  apply_interval_ms : float;
  lag : Stats.Histogram.t;
  counters : Stats.Counter.t;
  mutable failed : string option;  (** First apply error, sticky. *)
  mutable trace : Trace.t;
}

let create ?(apply_interval_ms = 5.0) ?store ?(counters = Stats.Counter.create ())
    ?(trace = Trace.null) engine ~shard ~reg () =
  if apply_interval_ms < 0.0 then
    invalid_arg "Replica.create: apply_interval_ms must be >= 0";
  let store = match store with Some s -> s | None -> Store.memory () in
  {
    engine;
    shard;
    store;
    reg;
    epoch = reg.epoch;
    queue = Queue.create ();
    shipped_seq = 0;
    applied_seq = 0;
    armed = false;
    apply_interval_ms;
    lag = Stats.Histogram.create ();
    counters;
    failed = None;
    trace;
  }

let store r = r.store
let epoch r = r.epoch
let shard r = r.shard
let applied_seq r = r.applied_seq
let shipped_seq r = r.shipped_seq
let queued r = Queue.length r.queue
let lag_histogram r = r.lag
let counters r = r.counters
let failure r = r.failed
let set_trace r tr = r.trace <- tr

let tpoint r payload = if Trace.enabled r.trace then Trace.point r.trace payload

let apply_batch r b =
  match r.failed with
  | Some _ -> ()
  | None -> (
      match Store.apply_ops r.store b.ops with
      | Ok () ->
          r.applied_seq <- b.seq;
          let lag_ms = Engine.now r.engine -. b.ship_at in
          Stats.Histogram.add r.lag lag_ms;
          Stats.Counter.incr r.counters "replica.applied";
          tpoint r (Trace.Ship_apply { seq = b.seq; ops = List.length b.ops; lag_ms })
      | Error msg ->
          (* Divergence is terminal for this replica: applying further
             batches onto a hole could only corrupt it. The failure is
             sticky and visible to the report/tests. *)
          r.failed <- Some msg;
          Stats.Counter.incr r.counters "replica.apply_failures")

let drain r =
  while not (Queue.is_empty r.queue) do
    apply_batch r (Queue.pop r.queue)
  done

(* Arm one apply event per quiet period: the first feed after an empty
   queue schedules a drain [apply_interval_ms] later; batches fed in the
   meantime ride the same event. No standing process — the engine must
   quiesce when the workload does. *)
let arm r =
  if not r.armed then begin
    r.armed <- true;
    Engine.at r.engine r.apply_interval_ms (fun () ->
        r.armed <- false;
        drain r)
  end

let feed r b =
  Queue.add b r.queue;
  r.shipped_seq <- b.seq;
  arm r

let promote r ~expected_epoch =
  if r.reg.epoch <> expected_epoch then begin
    Stats.Counter.incr r.counters "replica.promote_lost";
    tpoint r (Trace.Fence { epoch = r.reg.epoch; stale = expected_epoch });
    tpoint r (Trace.Test_and_set { block = r.reg.block; won = false });
    Error Errors.Conflict
  end
  else begin
    (* Win the register first, then catch up: any batch already fed was
       gated under the old epoch, before the deposed primary could have
       acked anything newer. *)
    r.reg.epoch <- expected_epoch + 1;
    drain r;
    r.epoch <- r.reg.epoch;
    Stats.Counter.incr r.counters "replica.promotions";
    tpoint r (Trace.Test_and_set { block = r.reg.block; won = true });
    tpoint r
      (Trace.Promote { shard = r.shard; epoch = r.reg.epoch; watermark = r.applied_seq });
    match r.failed with
    | None -> Ok ()
    | Some msg -> Error (Errors.Store_failure ("replica diverged: " ^ msg))
  end

(* A sibling replica re-homing onto the freshly promoted primary's
   stream: catch up on everything the old primary fed (the streams are
   identical — feeding was synchronous to all replicas), then follow the
   new epoch. *)
let adopt r ~epoch =
  drain r;
  r.epoch <- epoch

(* {2 The primary-side source} *)

module Source = struct
  type source = {
    engine : Engine.t;
    inner : Store.t;
    capture : Store.t;
    reg : register;
    born_epoch : int;  (** The register epoch when this source was primary. *)
    buffer : Store.op list ref;  (** Captured ops since the last cut, newest first. *)
    mutable seq : int;
    mutable replicas : t list;
    counters : Stats.Counter.t;
    mutable trace : Trace.t;
  }

  let create ?reg ?(seq = 0) ?(counters = Stats.Counter.create ()) ?(trace = Trace.null)
      engine store =
    let buffer = ref [] in
    let record op = buffer := op :: !buffer in
    let capture =
      {
        store with
        Store.allocate =
          (fun () ->
            match store.Store.allocate () with
            | Ok b ->
                record (Store.Alloc b);
                Ok b
            | Error _ as e -> e);
        free =
          (fun b ->
            match store.Store.free b with
            | Ok () ->
                record (Store.Free b);
                Ok ()
            | Error _ as e -> e);
        write =
          (fun b data ->
            match store.Store.write b data with
            | Ok () ->
                record (Store.Write (b, Bytes.copy data));
                Ok ()
            | Error _ as e -> e);
        write_batch =
          (fun entries ->
            match store.Store.write_batch entries with
            | Ok () ->
                List.iter (fun (b, d) -> record (Store.Write (b, Bytes.copy d))) entries;
                Ok ()
            | Error _ as e -> e);
      }
    in
    let reg =
      match reg with
      | Some r -> r
      | None -> (
          (* The register's identity is a block of the primary store:
             allocated through the capture wrapper so the allocation
             ships, never written so recovery skips it. *)
          match capture.Store.allocate () with
          | Ok block -> { block; epoch = 0 }
          | Error msg -> invalid_arg ("Replica.Source.create: " ^ msg))
    in
    {
      engine;
      inner = store;
      capture;
      reg;
      born_epoch = reg.epoch;
      buffer;
      seq;
      replicas = [];
      counters;
      trace;
    }

  let capture_store s = s.capture
  let inner_store s = s.inner
  let register s = s.reg
  let born_epoch s = s.born_epoch
  let shipped_seq s = s.seq
  let replicas s = s.replicas
  let set_trace s tr = s.trace <- tr
  let fenced s = s.reg.epoch <> s.born_epoch

  let attach s r = s.replicas <- s.replicas @ [ r ]

  (* Cut the captured buffer, plus the commit references a publish is
     carrying, into one sequenced batch and feed it to every replica.
     The references are encoded exactly as the primary's page store is
     about to write them, so replica bytes match primary bytes. *)
  let cut s refs =
    let ops =
      List.rev_append !(s.buffer)
        (List.map (fun (b, p) -> Store.Write (b, Page.encode p)) refs)
    in
    s.buffer := [];
    if ops <> [] then begin
      s.seq <- s.seq + 1;
      let batch =
        { seq = s.seq; epoch = s.born_epoch; ship_at = Engine.now s.engine; ops }
      in
      Stats.Counter.incr s.counters "replica.shipped";
      (if Trace.enabled s.trace then
         Trace.point s.trace
           (Trace.Ship { seq = batch.seq; ops = List.length ops; epoch = batch.epoch }));
      List.iter (fun r -> feed r batch) s.replicas
    end

  let gate s refs =
    if fenced s then begin
      (* The register moved since this source was primary: a promotion
         happened. Lose the test-and-set; the commit aborts before any
         reference reaches the store. *)
      Stats.Counter.incr s.counters "replica.fenced";
      (if Trace.enabled s.trace then begin
         Trace.point s.trace (Trace.Fence { epoch = s.reg.epoch; stale = s.born_epoch });
         Trace.point s.trace (Trace.Test_and_set { block = s.reg.block; won = false })
       end);
      Error Errors.Conflict
    end
    else begin
      cut s refs;
      Ok ()
    end

  let tap s refs = gate s refs
  let flush s = if not (fenced s) then cut s []
end

(* {2 Byte-identity}

   The property the whole scheme is judged by: after the ship queue is
   drained, a replica's store is byte-identical to the primary's. The
   digest is every allocated block with its readable contents (the epoch
   register is allocated-never-written on both sides and digests as
   [None]). *)

let store_digest (store : Store.t) =
  match store.Store.list_blocks () with
  | Error msg -> Error (Errors.Store_failure msg)
  | Ok blocks ->
      Ok
        (List.map
           (fun b ->
             ( b,
               match store.Store.read b with
               | Ok data -> Some data
               | Error _ -> None ))
           blocks)

(* {2 The replica as a remote service}

   A replica answers only the replication-plane requests; everything else
   is refused — it has no server, no capabilities, no files until
   promotion builds a server over its store. *)

let handle r : Remote.request -> Remote.response = function
  | Remote.Ship { epoch; seq; ops } ->
      if epoch <> r.epoch then Error Errors.Conflict
      else begin
        feed r { seq; epoch; ship_at = Engine.now r.engine; ops };
        Ok Remote.Unit
      end
  | Remote.Promote { expected_epoch } -> (
      match promote r ~expected_epoch with
      | Ok () ->
          Ok
            (Remote.Watermark
               { epoch = r.epoch; shipped = r.shipped_seq; applied = r.applied_seq })
      | Error _ as e -> e)
  | Remote.Replica_watermark ->
      Ok
        (Remote.Watermark
           { epoch = r.epoch; shipped = r.shipped_seq; applied = r.applied_seq })
  | _ -> Error (Errors.Store_failure "rpc: replica serves only replication requests")

let host ?latency_ms ?proc_ms engine ~name r =
  Rpc.serve ?latency_ms ?proc_ms ~describe:Remote.request_kind engine ~name
    ~handler:(handle r)
