module Disk = Afs_disk.Disk
module Media = Afs_disk.Media
module Wire = Afs_util.Wire
module Xrng = Afs_util.Xrng
module Det = Afs_util.Det

type id = int

type error =
  | Unavailable of id
  | No_free_blocks
  | Collision of int
  | Not_allocated of int
  | Corrupt_both of int
  | Recovering of id
  | Disk_error of Disk.error

let pp_error ppf = function
  | Unavailable i -> Fmt.pf ppf "server %d unavailable" i
  | No_free_blocks -> Fmt.string ppf "no free blocks"
  | Collision b -> Fmt.pf ppf "allocate/write collision on block %d" b
  | Not_allocated b -> Fmt.pf ppf "block %d not allocated" b
  | Corrupt_both b -> Fmt.pf ppf "both copies of block %d corrupt" b
  | Recovering i -> Fmt.pf ppf "server %d still recovering" i
  | Disk_error e -> Disk.pp_error ppf e

type 'a outcome = { result : ('a, error) result; cost_ms : float }

(* One network hop between companions, in simulated milliseconds. *)
let hop_ms = 2.0

type server = {
  disk : Disk.t;
  (* This server's view of the allocation state. Views can diverge while a
     companion is down and are reconciled by [restart]. *)
  allocated : (int, unit) Hashtbl.t;
  tentative : (int, unit) Hashtbl.t;
  (* Blocks written while the companion was down, to replay at recovery. *)
  intentions : (int, unit) Hashtbl.t;
  mutable up : bool;
  mutable recovered : bool;
  mutable seq : int64;
}

module Trace = Afs_trace.Trace

type t = {
  servers : server array;
  rng : Xrng.t;
  block_size : int;
  blocks : int;
  mutable trace : Trace.t;
}

let make_server ~trace ~media ~blocks ~block_size =
  {
    disk = Disk.create ~trace ~media ~blocks ~block_size ();
    allocated = Hashtbl.create 256;
    tentative = Hashtbl.create 16;
    intentions = Hashtbl.create 16;
    up = true;
    recovered = true;
    seq = 0L;
  }

let envelope_overhead = 32 (* magic + seq + crc + varints, rounded up *)

let create ?(seed = 0x57AB1E) ?(media = Media.magnetic) ?(trace = Trace.null) ~blocks
    ~block_size () =
  if blocks <= 0 || block_size <= 0 then invalid_arg "Stable_pair.create: sizes";
  let disk_block_size = block_size + envelope_overhead in
  let server () = make_server ~trace ~media ~blocks ~block_size:disk_block_size in
  { servers = [| server (); server () |]; rng = Xrng.create seed; block_size; blocks; trace }

let set_trace t tr =
  t.trace <- tr;
  Array.iter (fun s -> Disk.set_trace s.disk tr) t.servers

let leg t ~leg ~server ~block ~cost_ms =
  if Trace.enabled t.trace then
    Trace.point t.trace (Trace.Stable_leg { leg; server; block; cost_ms })

let block_size t = t.block_size
let address_space t = t.blocks
let disk t i = t.servers.(i).disk
let companion i = 1 - i
let online t i = t.servers.(i).up && t.servers.(i).recovered

let some_online t = if online t 0 then Some 0 else if online t 1 then Some 1 else None

let ok ?(cost = 0.0) v = { result = Ok v; cost_ms = cost }
let fail ?(cost = 0.0) e = { result = Error e; cost_ms = cost }

(* {2 Envelopes: seq + crc around the payload} *)

let magic = 0x5AB1

(* One scratch writer for every [seal] call: sealing happens twice per
   stable write (companion and local leg), so a fresh buffer per call is
   measurable on the group-commit path. [contents] copies, so reuse
   never aliases a previously sealed envelope. *)
let seal_scratch = Wire.Writer.create ~capacity:4096 ()

let seal seq payload =
  let w = seal_scratch in
  Wire.Writer.reset w;
  Wire.Writer.u16 w magic;
  Wire.Writer.u64 w seq;
  Wire.Writer.u32 w (Wire.crc32 payload);
  Wire.Writer.sized_bytes w payload;
  Wire.Writer.contents w

let unseal image =
  match
    let r = Wire.Reader.of_bytes image in
    let m = Wire.Reader.u16 r in
    let seq = Wire.Reader.u64 r in
    let crc = Wire.Reader.u32 r in
    let payload = Wire.Reader.sized_bytes r in
    if m <> magic then Error "bad magic"
    else if Wire.crc32 payload <> crc then Error "bad crc"
    else Ok (seq, payload)
  with
  | result -> result
  | exception Wire.Decode_error msg -> Error msg

let next_seq t i =
  let s = t.servers.(i) in
  s.seq <- Int64.add s.seq 1L;
  s.seq

let note_seq t i seq = if seq > t.servers.(i).seq then t.servers.(i).seq <- seq

(* {2 Protocol steps} *)

let check_serving t i =
  let s = t.servers.(i) in
  if not s.up then Error (Unavailable i)
  else if not s.recovered then Error (Recovering i)
  else Ok s

let is_taken s b = Hashtbl.mem s.allocated b || Hashtbl.mem s.tentative b

let tentative_allocate t i =
  match check_serving t i with
  | Error e -> fail e
  | Ok s ->
      let total = t.blocks in
      let rec probe attempts =
        if attempts = 0 then
          (* Linear fallback keeps allocation total. *)
          let rec scan b = if b >= total then None else if is_taken s b then scan (b + 1) else Some b in
          scan 0
        else
          let b = Xrng.int t.rng total in
          if is_taken s b then probe (attempts - 1) else Some b
      in
      (match probe 16 with
      | None -> fail No_free_blocks
      | Some b ->
          Hashtbl.replace s.tentative b ();
          ok b)

let abort_tentative t i b = Hashtbl.remove t.servers.(i).tentative b

let shadow_write t ~primary ~fresh b payload =
  let q = companion primary in
  match check_serving t q with
  | Error e -> fail e
  | Ok s ->
      (* Collision check: the companion knows its own allocations and
         tentative choices. A shadow write for a block the companion has
         itself handed out (to a different allocation) is a collision,
         caught before either primary copy is written. *)
      if Hashtbl.mem s.tentative b || (fresh && Hashtbl.mem s.allocated b) then
        fail ~cost:hop_ms (Collision b)
      else begin
        let seq = next_seq t q in
        let image = seal seq payload in
        let { Disk.result; cost_ms } = Disk.write s.disk b image in
        let cost = hop_ms +. cost_ms in
        match result with
        | Error e -> fail ~cost (Disk_error e)
        | Ok () ->
            Hashtbl.replace s.allocated b ();
            leg t ~leg:"shadow" ~server:q ~block:b ~cost_ms:cost;
            ok ~cost seq
      end

(* The disk write itself, without the serving check: recovery uses this
   while the server is still marked unrecovered. *)
let raw_local_write t i b payload seq =
  let s = t.servers.(i) in
  note_seq t i seq;
  let image = seal seq payload in
  let { Disk.result; cost_ms } = Disk.write s.disk b image in
  match result with
  | Error e -> fail ~cost:cost_ms (Disk_error e)
  | Ok () ->
      Hashtbl.remove s.tentative b;
      Hashtbl.replace s.allocated b ();
      leg t ~leg:"local" ~server:i ~block:b ~cost_ms;
      ok ~cost:cost_ms ()

let local_write_seq t i b payload seq =
  match check_serving t i with
  | Error e -> fail e
  | Ok _ -> raw_local_write t i b payload seq

let local_write t i b payload =
  let seq = next_seq t i in
  local_write_seq t i b payload seq

(* {2 Composite operations} *)

let write_via t i b payload ~require_allocated =
  match check_serving t i with
  | Error e -> fail e
  | Ok s ->
      if require_allocated && not (Hashtbl.mem s.allocated b) then fail (Not_allocated b)
      else begin
        let q = companion i in
        if online t q then
          match shadow_write t ~primary:i ~fresh:(not require_allocated) b payload with
          | { result = Error e; cost_ms } -> fail ~cost:cost_ms e
          | { result = Ok seq; cost_ms = shadow_cost } -> (
              match local_write_seq t i b payload seq with
              | { result = Ok (); cost_ms } -> ok ~cost:(shadow_cost +. cost_ms) ()
              | { result = Error e; cost_ms } -> fail ~cost:(shadow_cost +. cost_ms) e)
        else begin
          (* Companion down: write locally, leave an intention so the
             companion restores this block when it comes back. *)
          Hashtbl.replace s.intentions b ();
          match local_write t i b payload with
          | { result = Ok (); cost_ms } -> ok ~cost:cost_ms ()
          | { result = Error e; cost_ms } -> fail ~cost:cost_ms e
        end
      end

let write t i b payload = write_via t i b payload ~require_allocated:true

(* Amortised §4 write for a group-commit batch: every block rides one
   A→B→A round trip, so the companion hop is paid once for the whole
   batch instead of once per block. All blocks must already be allocated
   (commit references always are). The companion copy of every block is
   written before any local copy, and the writes stop at the first
   failure, so a crash mid-batch leaves each block either fully stable,
   companion-only (repaired forward at restart, exactly as for a single
   write interrupted between legs) or untouched — never torn. *)
let write_batch t i entries =
  match entries with
  | [] -> ok ()
  | _ -> (
      match check_serving t i with
      | Error e -> fail e
      | Ok s -> (
          match List.find_opt (fun (b, _) -> not (Hashtbl.mem s.allocated b)) entries with
          | Some (b, _) -> fail (Not_allocated b)
          | None ->
              let q = companion i in
              if not (online t q) then begin
                (* Companion down: local writes plus intentions, exactly as
                   [write_via] — there is no hop to amortise. *)
                let rec go cost = function
                  | [] -> ok ~cost ()
                  | (b, payload) :: rest -> (
                      Hashtbl.replace s.intentions b ();
                      match local_write t i b payload with
                      | { result = Ok (); cost_ms } -> go (cost +. cost_ms) rest
                      | { result = Error e; cost_ms } -> fail ~cost:(cost +. cost_ms) e)
                in
                go 0.0 entries
              end
              else begin
                let sq = t.servers.(q) in
                let cost = ref hop_ms in
                (* Leg 1 (A→B): the companion seals and writes every block. *)
                let rec shadows acc = function
                  | [] -> Ok (List.rev acc)
                  | (b, payload) :: rest ->
                      if Hashtbl.mem sq.tentative b then Error (Collision b)
                      else begin
                        let seq = next_seq t q in
                        let { Disk.result; cost_ms } = Disk.write sq.disk b (seal seq payload) in
                        cost := !cost +. cost_ms;
                        match result with
                        | Error e -> Error (Disk_error e)
                        | Ok () ->
                            Hashtbl.replace sq.allocated b ();
                            leg t ~leg:"shadow" ~server:q ~block:b ~cost_ms;
                            shadows ((b, payload, seq) :: acc) rest
                      end
                in
                (* Leg 2 (B→A): the local copies, under the companion's seqs. *)
                let rec locals = function
                  | [] -> Ok ()
                  | (b, payload, seq) :: rest -> (
                      match raw_local_write t i b payload seq with
                      | { result = Ok (); cost_ms } ->
                          cost := !cost +. cost_ms;
                          locals rest
                      | { result = Error e; cost_ms } ->
                          cost := !cost +. cost_ms;
                          Error e)
                in
                match shadows [] entries with
                | Error e -> fail ~cost:!cost e
                | Ok sealed -> (
                    match locals sealed with
                    | Ok () -> ok ~cost:!cost ()
                    | Error e -> fail ~cost:!cost e)
              end))

let max_allocate_retries = 16

let allocate_write t i payload =
  let rec attempt n cost_acc =
    if n = 0 then fail ~cost:cost_acc No_free_blocks
    else
      match tentative_allocate t i with
      | { result = Error e; cost_ms } -> fail ~cost:(cost_acc +. cost_ms) e
      | { result = Ok b; cost_ms = alloc_cost } -> (
          match write_via t i b payload ~require_allocated:false with
          | { result = Ok (); cost_ms } -> ok ~cost:(cost_acc +. alloc_cost +. cost_ms) b
          | { result = Error (Collision _); cost_ms } ->
              abort_tentative t i b;
              (* "Redo the operation after a random wait interval." *)
              let backoff = Xrng.float t.rng 5.0 in
              attempt (n - 1) (cost_acc +. alloc_cost +. cost_ms +. backoff)
          | { result = Error e; cost_ms } ->
              abort_tentative t i b;
              fail ~cost:(cost_acc +. alloc_cost +. cost_ms) e)
  in
  attempt max_allocate_retries 0.0

let read_raw s b =
  let { Disk.result; cost_ms } = Disk.read s.disk b in
  match result with
  | Error e -> (Error (`Disk e), cost_ms)
  | Ok image -> (
      match unseal image with
      | Error m -> (Error (`Corrupt m), cost_ms)
      | Ok (seq, payload) -> (Ok (seq, payload), cost_ms))

let read t i b =
  match check_serving t i with
  | Error e -> fail e
  | Ok s ->
      if not (Hashtbl.mem s.allocated b) then fail (Not_allocated b)
      else begin
        match read_raw s b with
        | Ok (_, payload), cost -> ok ~cost payload
        | (Error _ as _local_failure), local_cost ->
            (* Fall back to the companion, repairing the local copy. *)
            let q = companion i in
            if not (online t q) then fail ~cost:local_cost (Corrupt_both b)
            else begin
              match read_raw t.servers.(q) b with
              | Ok (seq, payload), remote_cost ->
                  leg t ~leg:"companion_read" ~server:q ~block:b
                    ~cost_ms:(hop_ms +. remote_cost);
                  let repair = local_write_seq t i b payload seq in
                  leg t ~leg:"repair" ~server:i ~block:b ~cost_ms:repair.cost_ms;
                  let cost = local_cost +. hop_ms +. remote_cost +. repair.cost_ms in
                  ok ~cost payload
              | Error _, remote_cost ->
                  fail ~cost:(local_cost +. hop_ms +. remote_cost) (Corrupt_both b)
            end
      end

let free t i b =
  match check_serving t i with
  | Error e -> fail e
  | Ok s ->
      if not (Hashtbl.mem s.allocated b) then fail (Not_allocated b)
      else begin
        Hashtbl.remove s.allocated b;
        let _ = Disk.erase s.disk b in
        let q = companion i in
        if online t q then begin
          Hashtbl.remove t.servers.(q).allocated b;
          let _ = Disk.erase t.servers.(q).disk b in
          ok ~cost:hop_ms ()
        end
        else begin
          Hashtbl.replace s.intentions b ();
          ok ()
        end
      end

(* {2 Crashes and recovery} *)

let component_name i = Printf.sprintf "stable:%d" i

let crash t i =
  let s = t.servers.(i) in
  s.up <- false;
  s.recovered <- false;
  if Trace.enabled t.trace then
    Trace.point t.trace (Trace.Crash { component = component_name i; what = "crash" });
  Hashtbl.reset s.tentative

let wipe_and_crash t i =
  crash t i;
  Disk.wipe t.servers.(i).disk;
  Hashtbl.reset t.servers.(i).allocated;
  Hashtbl.reset t.servers.(i).intentions

let restart t i =
  let s = t.servers.(i) in
  s.up <- true;
  if Trace.enabled t.trace then
    Trace.point t.trace (Trace.Crash { component = component_name i; what = "restart" });
  let q_id = companion i in
  let q = t.servers.(q_id) in
  if not (q.up && q.recovered) then begin
    (* Companion also down: come up alone on our own disk. *)
    s.recovered <- true;
    ok 0
  end
  else begin
    (* Compare notes: the union of both allocation views, resolved block by
       block in favour of the copy with the higher sequence number. The
       companion's intentions list is a cheap summary, but after a wipe the
       full union is what restores the disk, so we always walk the union. *)
    let candidates = Hashtbl.create 256 in
    Det.iter_sorted (fun b () -> Hashtbl.replace candidates b ()) s.allocated;
    Det.iter_sorted (fun b () -> Hashtbl.replace candidates b ()) q.allocated;
    Det.iter_sorted (fun b () -> Hashtbl.replace candidates b ()) q.intentions;
    let repaired = ref 0 in
    let cost = ref hop_ms in
    let repair_one b () =
      let mine, my_cost = read_raw s b in
      let theirs, their_cost = read_raw q b in
      cost := !cost +. my_cost +. their_cost;
      match (mine, theirs) with
      | Ok (my_seq, _), Ok (their_seq, payload) when their_seq > my_seq ->
          let r = raw_local_write t i b payload their_seq in
          cost := !cost +. r.cost_ms;
          incr repaired
      | Ok (my_seq, payload), Ok (their_seq, _) when my_seq > their_seq ->
          (* Our copy is newer (their disk lost a write): push it back. *)
          let seq = my_seq in
          let image = seal seq payload in
          let w = Disk.write q.disk b image in
          note_seq t q_id seq;
          cost := !cost +. w.Disk.cost_ms;
          incr repaired
      | Ok _, Ok _ -> Hashtbl.replace s.allocated b ()
      | Error _, Ok (their_seq, payload) ->
          let r = raw_local_write t i b payload their_seq in
          cost := !cost +. r.cost_ms;
          Hashtbl.replace s.allocated b ();
          incr repaired
      | Ok (my_seq, payload), Error _ ->
          let image = seal my_seq payload in
          let w = Disk.write q.disk b image in
          Hashtbl.replace q.allocated b ();
          cost := !cost +. w.Disk.cost_ms;
          incr repaired
      | Error _, Error _ ->
          (* Block lost on both sides (e.g. freed concurrently): drop it. *)
          Hashtbl.remove s.allocated b;
          Hashtbl.remove q.allocated b
    in
    Det.iter_sorted repair_one candidates;
    (* Both views now agree; intentions are discharged. *)
    Det.iter_sorted (fun b () -> Hashtbl.replace s.allocated b ()) q.allocated;
    Det.iter_sorted (fun b () -> Hashtbl.replace q.allocated b ()) s.allocated;
    Hashtbl.reset q.intentions;
    Hashtbl.reset s.intentions;
    s.recovered <- true;
    if Trace.enabled t.trace then
      Trace.point t.trace (Trace.Crash { component = component_name i; what = "recover" });
    ok ~cost:!cost !repaired
  end

let verify_companion_invariant t =
  let a = t.servers.(0) and b = t.servers.(1) in
  let union = Hashtbl.create 256 in
  Det.iter_sorted (fun blk () -> Hashtbl.replace union blk ()) a.allocated;
  Det.iter_sorted (fun blk () -> Hashtbl.replace union blk ()) b.allocated;
  let violation = ref None in
  let check blk () =
    if !violation = None then begin
      let ra, _ = read_raw a blk and rb, _ = read_raw b blk in
      match (ra, rb) with
      | Ok (sa, pa), Ok (sb, pb) when sa = sb && not (Bytes.equal pa pb) ->
          violation := Some (Printf.sprintf "block %d: equal seq %Ld, different payloads" blk sa)
      | _ -> ()
    end
  in
  Det.iter_sorted check union;
  match !violation with None -> Ok () | Some msg -> Error msg
