(** Stable storage on a pair of companion block servers (paper §4).

    The paper modifies Lampson & Sturgis: each block is stored by {e two
    servers} on two disks sharing one address space. A write received by
    server [P] is first performed on the companion [Q]'s disk, then on
    [P]'s own — so the companion copy is never older, and a crash between
    the two writes loses nothing. Reads are served locally and fall back
    to the companion on corruption (detected by checksum), repairing the
    local copy. Allocate/write collisions — both servers concurrently
    choosing the same block — are detected at the companion {e before any
    damage is done}; the loser retries. While a companion is down, writes
    are recorded on an intentions list; a restarting server first compares
    notes with its companion and restores its disk before accepting
    requests.

    The protocol steps ({!tentative_allocate}, {!shadow_write},
    {!local_write}) are exposed individually so the RPC layer can
    interleave them between concurrent clients under the event engine; the
    composite operations run all steps back-to-back for synchronous use.
    Every result carries the simulated cost of the disk and message work
    it performed. *)

type t

type id = int
(** Server identity: 0 or 1. [companion id = 1 - id]. *)

type error =
  | Unavailable of id  (** That server is crashed; try the other one. *)
  | No_free_blocks
  | Collision of int  (** Concurrent allocate/write of the same block. *)
  | Not_allocated of int
  | Corrupt_both of int  (** Both copies failed the checksum. *)
  | Recovering of id  (** Server is up but has not finished compare-notes. *)
  | Disk_error of Afs_disk.Disk.error

val pp_error : error Fmt.t

type 'a outcome = { result : ('a, error) result; cost_ms : float }

val create :
  ?seed:int ->
  ?media:Afs_disk.Media.t ->
  ?trace:Afs_trace.Trace.t ->
  blocks:int ->
  block_size:int ->
  unit ->
  t
(** Two fresh online servers over two fresh disks. [seed] drives the
    randomised block choice (which is what makes collisions possible).
    With a trace, each write leg emits a [stable.leg] event — ["shadow"]
    (A→B), ["local"] (back to A), ["companion_read"] and ["repair"] on
    fallback reads — making the A→B→A pattern of §4 visible. *)

val set_trace : t -> Afs_trace.Trace.t -> unit
(** Install a trace handle on the pair and both underlying disks. *)

val block_size : t -> int
val address_space : t -> int
val disk : t -> id -> Afs_disk.Disk.t
val online : t -> id -> bool
val some_online : t -> id option
(** An arbitrary serving (online, recovered) server, if any. *)

(** {2 Composite operations (synchronous client view)} *)

val allocate_write : t -> id -> bytes -> int outcome
(** Full §4 sequence via the given server: choose block, shadow-write at
    the companion, write locally, return the block number. Retries
    internally on collision (bounded), as the paper's "redo the operation
    after a random wait interval". *)

val write : t -> id -> int -> bytes -> unit outcome
(** Update an allocated block: companion first, then local. Works with the
    companion down (intention recorded). *)

val write_batch : t -> id -> (int * bytes) list -> unit outcome
(** Update several allocated blocks in one A→B→A round trip: the
    companion hop is charged once for the whole batch, then every block
    pays only its two disk writes (all companion copies before any local
    copy). Stops at the first failing block, so each block ends fully
    stable, companion-only (repaired at restart) or untouched — never
    torn. The group-commit publish stage uses this to make all winners'
    commit references stable for one hop. *)

val read : t -> id -> int -> bytes outcome
(** Local read with checksum verification; falls back to the companion and
    repairs the local copy on corruption. *)

val free : t -> id -> int -> unit outcome

(** {2 Protocol steps (for interleaved / RPC use)} *)

val tentative_allocate : t -> id -> int outcome
(** Choose and reserve a block number in this server's local view only. *)

val abort_tentative : t -> id -> int -> unit

val shadow_write : t -> primary:id -> fresh:bool -> int -> bytes -> int64 outcome
(** Executed {e at the companion} of [primary]: detects collisions against
    the companion's own allocations ([fresh] marks a new allocation, for
    which an already-allocated block at the companion is a collision),
    then writes the companion copy. Returns the sequence number the
    primary must reuse in {!local_write_seq}. *)

val local_write_seq : t -> id -> int -> bytes -> int64 -> unit outcome
(** The primary's own disk write, performed after a successful shadow,
    with the sequence number the shadow returned. *)

val local_write : t -> id -> int -> bytes -> unit outcome
(** Unshadowed local write with a fresh sequence number (recovery and
    intention replay use this). *)

(** {2 Crashes and recovery} *)

val crash : t -> id -> unit
(** Server process dies; its disk stays intact but unreachable. *)

val wipe_and_crash : t -> id -> unit
(** Disk head crash: contents lost, server down. *)

val restart : t -> id -> int outcome
(** Compare notes with the companion and restore this disk before
    accepting requests (returns the number of blocks repaired). If the
    companion is down too, the server comes up alone, trusting its own
    disk (checksums still guard reads). *)

val verify_companion_invariant : t -> (unit, string) result
(** Test hook: checks that for every allocated block the surviving copies
    agree or the companion-written copy is the newer one. *)
