module Engine = Afs_sim.Engine
module Proc = Afs_sim.Proc
module Xrng = Afs_util.Xrng
module Stats = Afs_util.Stats
module Trace = Afs_trace.Trace

type config = {
  clients : int;
  duration_ms : float;
  think_ms : float;
  max_retries : int;
  seed : int;
  max_txns : int;
}

let default_config =
  {
    clients = 8;
    duration_ms = 10_000.0;
    think_ms = 20.0;
    max_retries = 16;
    seed = 42;
    max_txns = 0;
  }

type report = {
  sut_name : string;
  committed : int;
  given_up : int;
  attempts : int;
  elapsed_ms : float;
  throughput_per_s : float;
  mean_latency_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  retry_histogram : (int * int) list;
  local_aborts : int;
  cross_aborts : int;
}

let pp_report ppf r =
  Fmt.pf ppf "%s: %d committed (%.1f/s), %d given up, %d attempts, lat mean %.2fms p99 %.2fms"
    r.sut_name r.committed r.throughput_per_s r.given_up r.attempts r.mean_latency_ms r.p99_ms

let header_row =
  Printf.sprintf "%-14s %10s %9s %9s %10s %10s %10s %10s %10s" "system" "committed"
    "given-up" "attempts" "thru/s" "mean-ms" "p50-ms" "p95-ms" "p99-ms"

let report_row r =
  Printf.sprintf "%-14s %10d %9d %9d %10.1f %10.2f %10.2f %10.2f %10.2f" r.sut_name
    r.committed r.given_up r.attempts r.throughput_per_s r.mean_latency_ms r.p50_ms r.p95_ms
    r.p99_ms

let retry_histogram_row r =
  let cell (attempts, count) = Printf.sprintf "%dx:%d" attempts count in
  String.concat " " (List.map cell r.retry_histogram)

let abort_split_row r =
  Printf.sprintf "aborts: %d local, %d cross-shard" r.local_aborts r.cross_aborts

let run ?(on_progress = ignore) engine config sut ~gen =
  let committed = ref 0 in
  let given_up = ref 0 in
  let attempts = ref 0 in
  let local_aborts = ref 0 in
  let cross_aborts = ref 0 in
  (* Count-driven runs: [started] gates transaction admission so exactly
     [max_txns] transactions run to completion (0 = duration-driven). *)
  let started = ref 0 in
  let admit () =
    config.max_txns = 0
    ||
    if !started < config.max_txns then begin
      incr started;
      true
    end
    else false
  in
  (* Per-transaction attempt counts; slot [max_retries + 1] absorbs any
     overshoot so the array is total (an array, not a Hashtbl: the report
     must not depend on hash order). *)
  let retry_counts = Array.make (config.max_retries + 2) 0 in
  let latency = Stats.Histogram.create () in
  let latency_sum = Stats.Summary.create () in
  let master_rng = Xrng.create config.seed in
  let tr = Engine.trace engine in
  let client id =
    let rng = Xrng.split master_rng in
    let label = Printf.sprintf "client-%d" id in
    fun () ->
      (* Desynchronise client start-up. *)
      Proc.delay (Xrng.float rng config.think_ms);
      let rec loop () =
        if Engine.now engine < config.duration_ms then begin
          Proc.delay (Xrng.exponential rng config.think_ms);
          if Engine.now engine < config.duration_ms && admit () then begin
            let spec = gen rng in
            let t0 = Engine.now engine in
            (* Explicit open/close (not [Trace.span]): the transaction
               suspends inside [exec], so the ambient stack would leak
               across client interleavings. *)
            let span = Trace.open_span tr ~kind:"txn" ~label () in
            let result = sut.Sut.exec spec ~max_retries:config.max_retries in
            Trace.close_span tr span;
            let dt = Engine.now engine -. t0 in
            attempts := !attempts + result.Sut.attempts;
            local_aborts := !local_aborts + result.Sut.local_aborts;
            cross_aborts := !cross_aborts + result.Sut.cross_aborts;
            let slot = min result.Sut.attempts (config.max_retries + 1) in
            retry_counts.(slot) <- retry_counts.(slot) + 1;
            if result.Sut.committed then begin
              incr committed;
              Stats.Histogram.add latency dt;
              Stats.Summary.add latency_sum dt
            end
            else incr given_up;
            on_progress (!committed + !given_up);
            loop ()
          end
        end
      in
      loop ()
  in
  for id = 1 to config.clients do
    ignore (Proc.spawn ~name:(Printf.sprintf "client-%d" id) engine (client id))
  done;
  Engine.run engine;
  let elapsed_ms =
    (* A count-driven run ends when the last transaction does; clamping to
       [duration_ms] would divide throughput by the (huge) sentinel. *)
    if config.max_txns > 0 then Engine.now engine
    else Float.max (Engine.now engine) config.duration_ms
  in
  {
    sut_name = sut.Sut.name;
    committed = !committed;
    given_up = !given_up;
    attempts = !attempts;
    elapsed_ms;
    throughput_per_s = float_of_int !committed /. (elapsed_ms /. 1000.0);
    mean_latency_ms = Stats.Summary.mean latency_sum;
    p50_ms = Stats.Histogram.percentile latency 0.50;
    p95_ms = Stats.Histogram.percentile latency 0.95;
    p99_ms = Stats.Histogram.percentile latency 0.99;
    retry_histogram =
      List.filter
        (fun (_, count) -> count > 0)
        (List.mapi (fun i count -> (i, count)) (Array.to_list retry_counts));
    local_aborts = !local_aborts;
    cross_aborts = !cross_aborts;
  }
