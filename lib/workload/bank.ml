module Xrng = Afs_util.Xrng
module Zipf = Afs_util.Zipf

type params = {
  branches : int;
  accounts : int;
  initial_balance : int;
  audit_fraction : float;
  account_theta : float;
}

let default =
  { branches = 8; accounts = 32; initial_balance = 1000; audit_fraction = 0.05;
    account_theta = 0.4 }

let encode n = Bytes.of_string (string_of_int n)

let decode_balance b =
  match int_of_string_opt (String.trim (Bytes.to_string b)) with
  | Some n -> n
  | None -> 0

let initial_page p = encode p.initial_balance

let generator p =
  let account_zipf = Zipf.create ~n:p.accounts ~theta:p.account_theta in
  fun rng ->
    let branch = Xrng.int rng p.branches in
    if Xrng.float rng 1.0 < p.audit_fraction then
      { Sut.file = branch; ops = List.init p.accounts (fun a -> Sut.Read a); parts = [] }
    else begin
      let from_acct = Zipf.sample account_zipf rng in
      let to_acct =
        let rec pick () =
          let a = Zipf.sample account_zipf rng in
          if a = from_acct then pick () else a
        in
        pick ()
      in
      let amount = 1 + Xrng.int rng 10 in
      {
        Sut.file = branch;
        ops =
          [
            Sut.Rmw (from_acct, fun old -> encode (decode_balance old - amount));
            Sut.Rmw (to_acct, fun old -> encode (decode_balance old + amount));
          ];
        parts = [];
      }
    end

let total_money sut p =
  let total = ref 0 in
  for branch = 0 to p.branches - 1 do
    for account = 0 to p.accounts - 1 do
      total := !total + decode_balance (sut.Sut.read_page branch account)
    done
  done;
  !total

let expected_total p = p.branches * p.accounts * p.initial_balance
