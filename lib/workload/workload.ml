module Xrng = Afs_util.Xrng
module Zipf = Afs_util.Zipf
module Pagepath = Afs_util.Pagepath
module Server = Afs_core.Server

type shape = {
  nfiles : int;
  pages_per_file : int;
  read_pages : int;
  rmw_pages : int;
  payload_bytes : int;
  file_theta : float;
  page_theta : float;
}

let small_updates =
  {
    nfiles = 64;
    pages_per_file = 16;
    read_pages = 1;
    rmw_pages = 1;
    payload_bytes = 64;
    file_theta = 0.0;
    page_theta = 0.0;
  }

let large_updates =
  {
    nfiles = 4;
    pages_per_file = 64;
    read_pages = 16;
    rmw_pages = 16;
    payload_bytes = 64;
    file_theta = 0.8;
    page_theta = 0.8;
  }

type generator = Xrng.t -> Sut.txn_spec

let payload rng size =
  let b = Bytes.create size in
  Xrng.fill_printable rng b;
  b

(* Sample [count] distinct pages through the Zipf sampler (rejection on
   duplicates; count is required to be at most the page population). *)
let distinct_pages rng zipf count taken =
  let rec draw acc remaining =
    if remaining = 0 then acc
    else
      let p = Zipf.sample zipf rng in
      if Hashtbl.mem taken p then draw acc remaining
      else begin
        Hashtbl.replace taken p ();
        draw (p :: acc) (remaining - 1)
      end
  in
  draw [] count

let make shape =
  if shape.read_pages + shape.rmw_pages > shape.pages_per_file then
    invalid_arg "Workload.make: transaction larger than a file";
  let file_zipf = Zipf.create ~n:shape.nfiles ~theta:shape.file_theta in
  let page_zipf = Zipf.create ~n:shape.pages_per_file ~theta:shape.page_theta in
  (* One distinctness table per generator, reset per transaction: the
     per-call [Hashtbl.create] showed up in million-transaction runs.
     Only membership is ever queried, so traversal order cannot leak. *)
  let taken = Hashtbl.create 16 in
  fun rng ->
    let file = Zipf.sample file_zipf rng in
    Hashtbl.reset taken;
    let reads = distinct_pages rng page_zipf shape.read_pages taken in
    let writes = distinct_pages rng page_zipf shape.rmw_pages taken in
    let data = payload rng shape.payload_bytes in
    let ops =
      List.map (fun p -> Sut.Read p) reads
      @ List.map (fun p -> Sut.Rmw (p, fun _old -> data)) writes
    in
    { Sut.file; ops }

let setup_file server shape ~initial =
  let open Afs_core.Errors in
  let* cap = Server.create_file server () in
  let* version = Server.create_version server cap in
  let rec add_pages p =
    if p >= shape.pages_per_file then Ok ()
    else
      let* _ =
        Server.insert_page server version ~parent:Pagepath.root ~index:p ~data:initial ()
      in
      add_pages (p + 1)
  in
  let* () = add_pages 0 in
  let* () = Server.commit server version in
  Ok cap

let setup_pages server shape ~initial =
  let open Afs_core.Errors in
  let rec make_files i acc =
    if i >= shape.nfiles then Ok (Array.of_list (List.rev acc))
    else
      let* cap = setup_file server shape ~initial in
      make_files (i + 1) (cap :: acc)
  in
  make_files 0 []

let setup_cluster cluster shape ~initial =
  let open Afs_core.Errors in
  let rec make_files i acc =
    if i >= shape.nfiles then Ok (Array.of_list (List.rev acc))
    else
      let shard = Afs_cluster.Cluster.place cluster in
      let* cap = setup_file (Afs_cluster.Shard.server shard) shape ~initial in
      make_files (i + 1) (cap :: acc)
  in
  make_files 0 []
