module Xrng = Afs_util.Xrng
module Zipf = Afs_util.Zipf
module Pagepath = Afs_util.Pagepath
module Server = Afs_core.Server

type shape = {
  nfiles : int;
  pages_per_file : int;
  read_pages : int;
  rmw_pages : int;
  payload_bytes : int;
  file_theta : float;
  page_theta : float;
}

let small_updates =
  {
    nfiles = 64;
    pages_per_file = 16;
    read_pages = 1;
    rmw_pages = 1;
    payload_bytes = 64;
    file_theta = 0.0;
    page_theta = 0.0;
  }

let large_updates =
  {
    nfiles = 4;
    pages_per_file = 64;
    read_pages = 16;
    rmw_pages = 16;
    payload_bytes = 64;
    file_theta = 0.8;
    page_theta = 0.8;
  }

type generator = Xrng.t -> Sut.txn_spec

let payload rng size =
  let b = Bytes.create size in
  Xrng.fill_printable rng b;
  b

(* Sample [count] distinct pages through the Zipf sampler (rejection on
   duplicates; count is required to be at most the page population). *)
let distinct_pages rng zipf count taken =
  let rec draw acc remaining =
    if remaining = 0 then acc
    else
      let p = Zipf.sample zipf rng in
      if Hashtbl.mem taken p then draw acc remaining
      else begin
        Hashtbl.replace taken p ();
        draw (p :: acc) (remaining - 1)
      end
  in
  draw [] count

let make shape =
  if shape.read_pages + shape.rmw_pages > shape.pages_per_file then
    invalid_arg "Workload.make: transaction larger than a file";
  let file_zipf = Zipf.create ~n:shape.nfiles ~theta:shape.file_theta in
  let page_zipf = Zipf.create ~n:shape.pages_per_file ~theta:shape.page_theta in
  (* One distinctness table per generator, reset per transaction: the
     per-call [Hashtbl.create] showed up in million-transaction runs.
     Only membership is ever queried, so traversal order cannot leak. *)
  let taken = Hashtbl.create 16 in
  fun rng ->
    let file = Zipf.sample file_zipf rng in
    Hashtbl.reset taken;
    let reads = distinct_pages rng page_zipf shape.read_pages taken in
    let writes = distinct_pages rng page_zipf shape.rmw_pages taken in
    let data = payload rng shape.payload_bytes in
    let ops =
      List.map (fun p -> Sut.Read p) reads
      @ List.map (fun p -> Sut.Rmw (p, fun _old -> data)) writes
    in
    { Sut.file; ops; parts = [] }

let setup_file server shape ~initial =
  let open Afs_core.Errors in
  let* cap = Server.create_file server () in
  let* version = Server.create_version server cap in
  let rec add_pages p =
    if p >= shape.pages_per_file then Ok ()
    else
      let* _ =
        Server.insert_page server version ~parent:Pagepath.root ~index:p ~data:initial ()
      in
      add_pages (p + 1)
  in
  let* () = add_pages 0 in
  let* () = Server.commit server version in
  Ok cap

let setup_pages server shape ~initial =
  let open Afs_core.Errors in
  let rec make_files i acc =
    if i >= shape.nfiles then Ok (Array.of_list (List.rev acc))
    else
      let* cap = setup_file server shape ~initial in
      make_files (i + 1) (cap :: acc)
  in
  make_files 0 []

let setup_cluster cluster shape ~initial =
  let open Afs_core.Errors in
  let rec make_files i acc =
    if i >= shape.nfiles then Ok (Array.of_list (List.rev acc))
    else
      let shard = Afs_cluster.Cluster.place cluster in
      let* cap = setup_file (Afs_cluster.Shard.server shard) shape ~initial in
      make_files (i + 1) (cap :: acc)
  in
  make_files 0 []

(* {2 The cross-shard banking mix (scenario S2)}

   Accounts are one-page files whose page 0 holds a decimal balance;
   moves shuffle opaque object files that live outside the conservation
   sum. Placement is the round-robin of [setup_cluster] on a fresh
   cluster, so file [i] lives on shard [i mod shards] — the fact the
   generator uses to steer a partner on or off the debited shard. *)

type transfer_shape = {
  accounts : int;
  objects : int;
  shards : int;
  cross_ratio : float;
  move_ratio : float;
  account_theta : float;
  amount : int;
}

let bank_transfers =
  {
    accounts = 64;
    objects = 16;
    shards = 4;
    cross_ratio = 0.5;
    move_ratio = 0.1;
    account_theta = 0.6;
    amount = 5;
  }

let balance data =
  (* Anything unparsable counts as zero: a corrupted balance then shows
     up as a conservation violation instead of a harness crash. *)
  match int_of_string_opt (String.trim (Bytes.to_string data)) with
  | Some n -> n
  | None -> 0

let encode_balance n = Bytes.of_string (string_of_int n)

let transfer shape =
  if shape.shards < 1 then invalid_arg "Workload.transfer: no shards";
  if shape.accounts < 2 * shape.shards then
    invalid_arg "Workload.transfer: need two accounts per shard";
  if shape.move_ratio > 0.0 && shape.objects > 0 && shape.objects < 2 * shape.shards
  then invalid_arg "Workload.transfer: need two objects per shard for moves";
  let account_zipf = Zipf.create ~n:shape.accounts ~theta:shape.account_theta in
  let shard_of i = i mod shape.shards in
  (* Uniform partner with the shard-crossing constraint, by rejection;
     the population checks above make both branches feasible. *)
  let partner rng ~base ~count ~avoid ~cross =
    let rec pick () =
      let p = base + Xrng.int rng count in
      if p = avoid then pick ()
      else if cross <> (shard_of p <> shard_of avoid) then pick ()
      else p
    in
    pick ()
  in
  fun rng ->
    let cross = shape.shards > 1 && Xrng.float rng 1.0 < shape.cross_ratio in
    if shape.objects >= 2 && Xrng.float rng 1.0 < shape.move_ratio then begin
      (* A rename/move: blind writes — tombstone at the source object,
         payload at the destination. Objects stay outside the
         conservation sum, so the blind pair cannot disturb it. *)
      let src = shape.accounts + Xrng.int rng shape.objects in
      let dst =
        partner rng ~base:shape.accounts ~count:shape.objects ~avoid:src ~cross
      in
      let data = payload rng 32 in
      {
        Sut.file = src;
        ops = [];
        parts =
          [
            (src, [ Sut.Write (0, Bytes.of_string "moved") ]);
            (dst, [ Sut.Write (0, data) ]);
          ];
      }
    end
    else begin
      let from_acct = Zipf.sample account_zipf rng in
      let to_acct =
        partner rng ~base:0 ~count:shape.accounts ~avoid:from_acct ~cross
      in
      let debit = Sut.Rmw (0, fun old -> encode_balance (balance old - shape.amount)) in
      let credit = Sut.Rmw (0, fun old -> encode_balance (balance old + shape.amount)) in
      {
        Sut.file = from_acct;
        ops = [];
        parts = [ (from_acct, [ debit ]); (to_acct, [ credit ]) ];
      }
    end

let setup_accounts cluster shape ~initial_balance =
  let file_shape =
    { small_updates with nfiles = shape.accounts + shape.objects; pages_per_file = 1 }
  in
  setup_cluster cluster file_shape ~initial:(encode_balance initial_balance)

let total_balance sut shape =
  let total = ref 0 in
  for i = 0 to shape.accounts - 1 do
    total := !total + balance (sut.Sut.read_page i 0)
  done;
  !total
