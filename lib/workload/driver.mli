(** The closed-loop multi-client experiment driver.

    Spawns [clients] simulated processes, each alternating exponential
    think time with one generated transaction run through the SUT, until
    the virtual clock passes [duration_ms]. Reports throughput, abort
    rate and latency percentiles in simulated time — the same numbers for
    every backend, which is what makes the C1-style comparisons fair. *)

type config = {
  clients : int;
  duration_ms : float;
  think_ms : float;  (** Mean of the exponential think time. *)
  max_retries : int;
  seed : int;
  max_txns : int;
      (** When positive, the run is count-driven: exactly this many
          transactions are admitted across all clients and the run ends
          when the last one completes (set [duration_ms] high enough not
          to interfere). 0 means duration-driven, the default. *)
}

val default_config : config

type report = {
  sut_name : string;
  committed : int;
  given_up : int;  (** Transactions that exhausted their retry budget. *)
  attempts : int;  (** Total executions including redos. *)
  elapsed_ms : float;
  throughput_per_s : float;  (** Committed transactions per simulated second. *)
  mean_latency_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  retry_histogram : (int * int) list;
      (** [(attempts, transactions)] pairs, ascending, zero counts
          omitted: how many transactions finished (either way) after
          exactly that many executions. The final slot
          [max_retries + 1] absorbs any overshoot. *)
  local_aborts : int;
      (** Redos forced by ordinary one-shard OCC races, summed over all
          transactions (see {!Sut.exec_result}). *)
  cross_aborts : int;
      (** Redos forced cross-shard: fully staged (or prepared)
          transactions aborted at their coordinator. 0 on single-file
          backends. *)
}

val pp_report : report Fmt.t

val report_row : report -> string
(** Fixed-width table row (see {!header_row}). *)

val header_row : string

val retry_histogram_row : report -> string
(** The retry histogram as ["1x:412 2x:31 3x:2"]-style cells. *)

val abort_split_row : report -> string
(** The abort split as ["aborts: 12 local, 3 cross-shard"]. *)

val run :
  ?on_progress:(int -> unit) ->
  Afs_sim.Engine.t -> config -> Sut.t -> gen:Workload.generator -> report
(** Must be called with a quiescent engine; returns once the engine has
    drained. [on_progress] is called after every completed transaction
    with the completed count (committed + given up) — the hook the
    million-transaction scenario uses to run the collector at a
    deterministic cadence. It runs synchronously inside a client process
    and must not yield. *)
