module Xrng = Afs_util.Xrng
module Zipf = Afs_util.Zipf

type params = {
  flights : int;
  classes : int;
  seats_per_class : int;
  booking_fraction : float;
  flight_theta : float;
}

let default =
  { flights = 32; classes = 4; seats_per_class = 1_000_000; booking_fraction = 0.9;
    flight_theta = 0.6 }

let encode_seats n = Bytes.of_string (string_of_int n)

let decode_seats b =
  match int_of_string_opt (String.trim (Bytes.to_string b)) with
  | Some n -> n
  | None -> 0

let initial_page p = encode_seats p.seats_per_class

let book old =
  let seats = decode_seats old in
  encode_seats (max 0 (seats - 1))

let generator p =
  let flight_zipf = Zipf.create ~n:p.flights ~theta:p.flight_theta in
  fun rng ->
    let flight = Zipf.sample flight_zipf rng in
    if Xrng.float rng 1.0 < p.booking_fraction then
      (* Book one seat in one fare class. *)
      let cls = Xrng.int rng p.classes in
      { Sut.file = flight; ops = [ Sut.Rmw (cls, book) ]; parts = [] }
    else
      (* Availability query across every class of the flight. *)
      { Sut.file = flight; ops = List.init p.classes (fun cls -> Sut.Read cls); parts = [] }

let total_seats sut p =
  let total = ref 0 in
  for flight = 0 to p.flights - 1 do
    for cls = 0 to p.classes - 1 do
      total := !total + decode_seats (sut.Sut.read_page flight cls)
    done
  done;
  !total
