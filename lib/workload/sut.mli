(** The system-under-test abstraction the workload driver runs against.

    A transaction is a file plus a list of page operations; [Rmw] makes
    the written value depend on the read one, which is what lets the
    test-suite check serialisability by invariant (conserved totals) on
    every backend. Adapters exist for the Amoeba file service (local and
    over simulated RPC), the XDFS-style locking baseline and the
    SWALLOW-style timestamp baseline, each encoding its own redo/wait
    policy. *)

exception Fatal of { where : string; error : Afs_core.Errors.t }
(** A reply the workload can never legitimately see: a harness bug or
    corrupted protocol state, never an outcome a backend may report.
    Raised so it escapes the engine loop and fails the run loudly
    instead of miscounting; carries the protocol {!Afs_core.Errors.t}
    (lint rule P1: no stringly [failwith] in protocol paths). *)

type op =
  | Read of int
  | Write of int * bytes
  | Rmw of int * (bytes -> bytes)  (** Read page, write the transform. *)

type txn_spec = {
  file : int;
  ops : op list;
  parts : (int * op list) list;
      (** Non-empty makes this a multi-file transaction — one
          [(file, ops)] participant per entry, honoured only by the
          cross-shard backends ({!afs_txn}, {!afs_twopc}); [file]/[ops]
          are ignored then. Single-file backends refuse multi-part specs
          with {!Fatal}. *)
}

type exec_result = {
  committed : bool;
  attempts : int;  (** 1 = first try succeeded. *)
  local_aborts : int;
      (** Retries forced by an ordinary one-shard OCC race. *)
  cross_aborts : int;
      (** Retries forced cross-shard: a fully staged (or fully prepared)
          transaction aborted at its coordinator. Always 0 on
          single-file backends. *)
}

type t = {
  name : string;
  exec : txn_spec -> max_retries:int -> exec_result;
      (** Runs one transaction to completion, including the backend's own
          waiting/redo policy. Inside a simulation process this advances
          virtual time. *)
  stats : unit -> (string * int) list;
  read_page : int -> int -> bytes;
      (** [read_page file page] outside any transaction, for invariant
          checks. *)
}

val afs_local : Afs_core.Server.t -> files:Afs_util.Capability.t array -> t
(** Direct calls, no simulated time: for logic tests and CPU benchmarks.
    Pages are the children [0..n-1] of each file's root. *)

val afs_remote :
  ?name:string ->
  ?respect_hints:bool ->
  Afs_rpc.Remote.conn ->
  fallback:Afs_core.Server.t ->
  files:Afs_util.Capability.t array ->
  t
(** Over simulated RPC; conflicts redo immediately (optimistic policy).
    [fallback] is only used for out-of-band invariant reads.
    [respect_hints] enables the §5.3 soft-lock scheme on version
    creation. *)

val afs_cluster :
  ?name:string ->
  ?respect_hints:bool ->
  Afs_cluster.Cluster_client.t ->
  files:Afs_util.Capability.t array ->
  t
(** Over a shard cluster, location-transparently: the exec loop is
    [afs_remote]'s step for step, with a local port-routing lookup in
    front of each version creation — so a one-shard cluster reports
    bit-identically to {!afs_remote} on the same engine and seed.
    Tolerates concurrent migrations: [Moved] answers are chased inside
    version creation, and invariant reads follow tombstones. *)

val afs_txn :
  ?name:string ->
  ?trace:Afs_trace.Trace.t ->
  Afs_cluster.Cluster_client.t ->
  files:Afs_util.Capability.t array ->
  t
(** {!afs_cluster} plus multi-part transactions via lib/txn's optimistic
    coordinator (stage/decide/flip). Single-part specs take the fast
    path — the same RPC sequence as {!afs_cluster}. [local_aborts]
    counts participant stages losing ordinary one-shard races;
    [cross_aborts] counts staged transactions force-aborted at the
    coordinator record. *)

val afs_twopc :
  ?name:string ->
  Afs_cluster.Cluster_client.t ->
  files:Afs_util.Capability.t array ->
  t
(** The blocking two-phase-commit baseline over the same cluster:
    participant versions are prepared in canonical file order (each
    parking the server's commit pipeline, base lock held), then decided.
    Competitors colliding with a prepare window back off on
    [Store_failure] — the lock-holding cost {!afs_txn} avoids. *)

val twopl :
  ?remote:Afs_sim.Engine.t ->
  Afs_baseline.Twopl.t -> pages_per_file:int -> retry_wait_ms:float -> t
(** Lock denials wait [retry_wait_ms] of simulated time and retry,
    prodding vulnerable holders; a bounded number of waits, then abort
    and redo. Must run inside a simulation process. With [remote], every
    operation is one request to a serialised RPC endpoint with the same
    cost model as {!afs_remote} — the fair-comparison configuration,
    under which lock state genuinely interleaves between clients. *)

val tsorder : ?remote:Afs_sim.Engine.t -> Afs_baseline.Tsorder.t -> pages_per_file:int -> t
(** Late writes abort immediately and redo with a fresh timestamp.
    [remote] as in {!twopl}. *)
