(** Parameterised transaction generators.

    The shape mirrors the knobs the paper's claims turn on: how much a
    transaction touches (update size), how skewed access is (conflict
    probability) and how much of the work is read-only. *)

type shape = {
  nfiles : int;
  pages_per_file : int;
  read_pages : int;  (** Read-only pages per transaction. *)
  rmw_pages : int;  (** Read-modify-write pages per transaction. *)
  payload_bytes : int;  (** Size of written values. *)
  file_theta : float;  (** Zipf skew over files (0 = uniform). *)
  page_theta : float;  (** Zipf skew over pages within a file. *)
}

val small_updates : shape
(** The paper's favourable regime: one-page read-modify-writes over many
    files. *)

val large_updates : shape
(** The unfavourable regime: transactions touching a large fraction of a
    hot file. *)

type generator = Afs_util.Xrng.t -> Sut.txn_spec

val make : shape -> generator
(** Distinct pages per transaction; read-only operations precede writes. *)

val setup_pages :
  Afs_core.Server.t -> shape -> initial:bytes ->
  Afs_util.Capability.t array Afs_core.Errors.r
(** Create [nfiles] files, each with [pages_per_file] children of the root
    holding [initial] — the layout every {!Sut} adapter assumes. *)

val setup_cluster :
  Afs_cluster.Cluster.t -> shape -> initial:bytes ->
  Afs_util.Capability.t array Afs_core.Errors.r
(** {!setup_pages} over a cluster: file [i] lands on the round-robin
    placement shard, built by the same direct-call sequence (so a
    one-shard cluster ends up in the same state as a bare server). *)

val payload : Afs_util.Xrng.t -> int -> bytes
(** Random printable payload of the given size. *)
