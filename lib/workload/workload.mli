(** Parameterised transaction generators.

    The shape mirrors the knobs the paper's claims turn on: how much a
    transaction touches (update size), how skewed access is (conflict
    probability) and how much of the work is read-only. *)

type shape = {
  nfiles : int;
  pages_per_file : int;
  read_pages : int;  (** Read-only pages per transaction. *)
  rmw_pages : int;  (** Read-modify-write pages per transaction. *)
  payload_bytes : int;  (** Size of written values. *)
  file_theta : float;  (** Zipf skew over files (0 = uniform). *)
  page_theta : float;  (** Zipf skew over pages within a file. *)
}

val small_updates : shape
(** The paper's favourable regime: one-page read-modify-writes over many
    files. *)

val large_updates : shape
(** The unfavourable regime: transactions touching a large fraction of a
    hot file. *)

type generator = Afs_util.Xrng.t -> Sut.txn_spec

val make : shape -> generator
(** Distinct pages per transaction; read-only operations precede writes. *)

val setup_pages :
  Afs_core.Server.t -> shape -> initial:bytes ->
  Afs_util.Capability.t array Afs_core.Errors.r
(** Create [nfiles] files, each with [pages_per_file] children of the root
    holding [initial] — the layout every {!Sut} adapter assumes. *)

val setup_cluster :
  Afs_cluster.Cluster.t -> shape -> initial:bytes ->
  Afs_util.Capability.t array Afs_core.Errors.r
(** {!setup_pages} over a cluster: file [i] lands on the round-robin
    placement shard, built by the same direct-call sequence (so a
    one-shard cluster ends up in the same state as a bare server). *)

val payload : Afs_util.Xrng.t -> int -> bytes
(** Random printable payload of the given size. *)

(** {2 The cross-shard banking mix (scenario S2)} *)

type transfer_shape = {
  accounts : int;  (** One-page balance files, in the conservation sum. *)
  objects : int;  (** Move-target files, outside the sum (0 = no moves). *)
  shards : int;  (** Must match the cluster; placement is [i mod shards]. *)
  cross_ratio : float;
      (** Fraction of transactions whose partner file lives on a
          different shard (meaningless with one shard). *)
  move_ratio : float;  (** Fraction that are renames/moves over objects. *)
  account_theta : float;  (** Zipf skew over debited accounts. *)
  amount : int;  (** Units moved per transfer. *)
}

val bank_transfers : transfer_shape
(** The S2 default: 64 accounts and 16 objects over 4 shards, half the
    transactions crossing shards. *)

val transfer : transfer_shape -> generator
(** Two-part transactions for the cross-shard backends: a balance
    transfer [(debit a; credit b)] or (with probability [move_ratio]) a
    blind-write move between object files. Requires at least two
    accounts (and, if moves are on, two objects) per shard so both the
    same-shard and cross-shard partner draws are feasible. *)

val setup_accounts :
  Afs_cluster.Cluster.t -> transfer_shape -> initial_balance:int ->
  Afs_util.Capability.t array Afs_core.Errors.r
(** Create the account then object files (one page each) round-robin on
    a {e fresh} cluster, so file [i] lands on shard [i mod shards] as
    {!transfer} assumes. *)

val balance : bytes -> int
(** Decode a balance page; unparsable data counts as zero (surfacing as
    a conservation violation rather than a harness crash). *)

val total_balance : Sut.t -> transfer_shape -> int
(** Sum of all account balances via out-of-band reads — the conserved
    quantity. Callers sweep in-doubt files first. *)
