module Pagepath = Afs_util.Pagepath
module Server = Afs_core.Server
module Errors = Afs_core.Errors
module Remote = Afs_rpc.Remote
module Twopl = Afs_baseline.Twopl
module Tsorder = Afs_baseline.Tsorder
module Proc = Afs_sim.Proc

type op = Read of int | Write of int * bytes | Rmw of int * (bytes -> bytes)

type txn_spec = {
  file : int;
  ops : op list;
  parts : (int * op list) list;
      (* Non-empty makes this a multi-file transaction: one (file, ops)
         participant per entry, honoured only by the cross-shard
         backends; [file]/[ops] are ignored then. *)
}

type exec_result = {
  committed : bool;
  attempts : int;
  local_aborts : int;
  cross_aborts : int;
}

(* Single-file backends: every failed execution is a local abort. *)
let finished ~committed attempts =
  {
    committed;
    attempts;
    local_aborts = (attempts - if committed then 1 else 0);
    cross_aborts = 0;
  }

type t = {
  name : string;
  exec : txn_spec -> max_retries:int -> exec_result;
  stats : unit -> (string * int) list;
  read_page : int -> int -> bytes;
}

exception Fatal of { where : string; error : Errors.t }

let () =
  Printexc.register_printer (function
    | Fatal { where; error } ->
        Some (Printf.sprintf "Sut.Fatal(%s: %s)" where (Errors.to_string error))
    | _ -> None)

let fatal_error where error = raise (Fatal { where; error })

let fatal where = function Ok v -> v | Error e -> fatal_error where e

let page_path i = Pagepath.of_list [ i ]

let single_part_only where spec =
  if spec.parts <> [] then
    fatal_error where (Errors.Store_failure "multi-part transaction on a single-file backend")

(* Checker-side reads go straight to the owning server, chasing any
   tombstones the router has not learned about. Shared by every
   cluster-backed SUT. In-doubt files are read as their pre-transaction
   state — harnesses sweep (Afs_txn.Txn.sweep) before auditing. *)
let cluster_read_page cluster files file page =
  let rec locate cap hops =
    match Afs_cluster.Cluster.shard_of_cap cluster cap with
    | Error e -> fatal_error "cluster locate" e
    | Ok (cap, shard) -> (
        let server = Afs_cluster.Shard.server shard in
        match Afs_cluster.Shard.moved_target server cap with
        | Some target when hops < 16 -> locate target (hops + 1)
        | Some _ | None -> (server, cap))
  in
  let server, cap = locate files.(file) 0 in
  let vcap = fatal "current_version" (Server.current_version server cap) in
  fatal "read_page" (Server.read_page server vcap (page_path page))

let cluster_stats cluster () =
  Afs_util.Stats.Counter.to_list (Afs_cluster.Cluster.counters cluster)
  @ List.concat_map
      (fun s ->
        let prefix = Afs_cluster.Shard.name s ^ "." in
        List.map
          (fun (k, v) -> (prefix ^ k, v))
          (Afs_util.Stats.Counter.to_list (Server.counters (Afs_cluster.Shard.server s))))
      (Afs_cluster.Cluster.shards cluster)

(* {2 Amoeba file service, direct} *)

let afs_local server ~files =
  let run_ops version ops =
    let rec go = function
      | [] -> Ok ()
      | Read i :: rest -> (
          match Server.read_page server version (page_path i) with
          | Ok _ -> go rest
          | Error _ as e -> Result.map (fun _ -> ()) e)
      | Write (i, data) :: rest -> (
          match Server.write_page server version (page_path i) data with
          | Ok () -> go rest
          | Error _ as e -> e)
      | Rmw (i, f) :: rest -> (
          match Server.read_page server version (page_path i) with
          | Error _ as e -> Result.map (fun _ -> ()) e
          | Ok v -> (
              match Server.write_page server version (page_path i) (f v) with
              | Ok () -> go rest
              | Error _ as e -> e))
    in
    go ops
  in
  let exec spec ~max_retries =
    single_part_only "afs_local" spec;
    let file = files.(spec.file) in
    let rec attempt n =
      match Server.create_version server file with
      | Error (Errors.Locked_out _) ->
          if n < max_retries then attempt (n + 1) else finished ~committed:false n
      | Error e -> fatal_error "afs_local create_version" e
      | Ok version -> (
          match run_ops version spec.ops with
          | Error e ->
              ignore (Server.abort_version server version);
              fatal_error "afs_local ops" e
          | Ok () -> (
              match Server.commit server version with
              | Ok () -> finished ~committed:true n
              | Error Errors.Conflict ->
                  if n < max_retries then attempt (n + 1)
                  else finished ~committed:false n
              | Error e -> fatal_error "afs_local commit" e))
    in
    attempt 1
  in
  let read_page file page =
    let cap = fatal "current_version" (Server.current_version server files.(file)) in
    fatal "read_page" (Server.read_page server cap (page_path page))
  in
  {
    name = "afs-occ";
    exec;
    stats = (fun () -> Afs_util.Stats.Counter.to_list (Server.counters server));
    read_page;
  }

(* {2 Amoeba file service over simulated RPC} *)

let afs_remote ?(name = "afs-occ-rpc") ?(respect_hints = false) conn ~fallback ~files =
  let run_ops version ops =
    let rec go = function
      | [] -> Ok ()
      | Read i :: rest -> (
          match Remote.read_page conn version (page_path i) with
          | Ok _ -> go rest
          | Error _ as e -> Result.map (fun _ -> ()) e)
      | Write (i, data) :: rest -> (
          match Remote.write_page conn version (page_path i) data with
          | Ok () -> go rest
          | Error _ as e -> e)
      | Rmw (i, f) :: rest -> (
          match Remote.read_page conn version (page_path i) with
          | Error _ as e -> Result.map (fun _ -> ()) e
          | Ok v -> (
              match Remote.write_page conn version (page_path i) (f v) with
              | Ok () -> go rest
              | Error _ as e -> e))
    in
    go ops
  in
  let exec spec ~max_retries =
    single_part_only "afs_remote" spec;
    let file = files.(spec.file) in
    let rec attempt n =
      match Remote.create_version ~respect_hints conn file with
      | Error (Errors.Locked_out _) ->
          if n < max_retries then begin
            (* Soft lock or super-file lock: wait for the hint to clear. *)
            Proc.delay 5.0;
            attempt (n + 1)
          end
          else finished ~committed:false n
      | Error e -> fatal_error "afs_remote create_version" e
      | Ok version -> (
          match run_ops version spec.ops with
          | Error e ->
              ignore (Remote.abort_version conn version);
              fatal_error "afs_remote ops" e
          | Ok () -> (
              match Remote.commit conn version with
              | Ok () -> finished ~committed:true n
              | Error Errors.Conflict ->
                  if n < max_retries then attempt (n + 1)
                  else finished ~committed:false n
              | Error e -> fatal_error "afs_remote commit" e))
    in
    attempt 1
  in
  let read_page file page =
    let cap = fatal "current_version" (Server.current_version fallback files.(file)) in
    fatal "read_page" (Server.read_page fallback cap (page_path page))
  in
  {
    name;
    exec;
    stats = (fun () -> Afs_util.Stats.Counter.to_list (Server.counters fallback));
    read_page;
  }

(* {2 Amoeba file service over a shard cluster}

   The exec loop mirrors [afs_remote] step for step — same RPC sequence,
   same Locked_out back-off, same attempt accounting — with routing (a
   pure local port lookup, no simulated time) in front of each
   create_version. That structural identity is what makes a one-shard
   cluster's driver report bit-identical to the bare remote SUT's. *)

let cluster_run_ops txn ops =
  let module CC = Afs_cluster.Cluster_client in
  let rec go = function
    | [] -> Ok ()
    | Read i :: rest -> (
        match CC.Txn.read txn (page_path i) with
        | Ok _ -> go rest
        | Error _ as e -> Result.map (fun _ -> ()) e)
    | Write (i, data) :: rest -> (
        match CC.Txn.write txn (page_path i) data with
        | Ok () -> go rest
        | Error _ as e -> e)
    | Rmw (i, f) :: rest -> (
        match CC.Txn.read txn (page_path i) with
        | Error _ as e -> Result.map (fun _ -> ()) e
        | Ok v -> (
            match CC.Txn.write txn (page_path i) (f v) with
            | Ok () -> go rest
            | Error _ as e -> e))
  in
  go ops

let afs_cluster ?(name = "afs-occ-cluster") ?(respect_hints = false) client ~files =
  let module CC = Afs_cluster.Cluster_client in
  let cluster = CC.cluster client in
  let run_ops = cluster_run_ops in
  let exec spec ~max_retries =
    single_part_only "afs_cluster" spec;
    let file = files.(spec.file) in
    (* Unlike the single-server SUTs, a cluster member may simply stop
       answering (crashed, awaiting failover): [Store_failure] here is a
       transport outage, not a protocol violation, so it backs off and
       retries like [Locked_out] — the connection lookup learns the
       promoted server as soon as one exists. A healthy run never takes
       these arms, preserving the one-shard bit-identity to [afs_remote]. *)
    let rec attempt n =
      let back_off_retry () =
        if n < max_retries then begin
          Proc.delay 5.0;
          attempt (n + 1)
        end
        else finished ~committed:false n
      in
      match CC.begin_txn ~respect_hints ~attempt:n client file with
      | Error (Errors.Locked_out _) -> back_off_retry ()
      | Error (Errors.Store_failure _) -> back_off_retry ()
      | Error e -> fatal_error "afs_cluster create_version" e
      | Ok h -> (
          match run_ops h.CC.txn spec.ops with
          | Error (Errors.Store_failure _) ->
              ignore (CC.abort h);
              back_off_retry ()
          | Error e ->
              ignore (CC.abort h);
              fatal_error "afs_cluster ops" e
          | Ok () -> (
              match CC.commit client h with
              | Ok () -> finished ~committed:true n
              | Error Errors.Conflict ->
                  if n < max_retries then attempt (n + 1)
                  else finished ~committed:false n
              | Error (Errors.Store_failure _) ->
                  (* The commit request never reached a live server (a
                     served request's reply still delivers across a
                     crash), so nothing committed; redo from scratch. *)
                  back_off_retry ()
              | Error e -> fatal_error "afs_cluster commit" e))
    in
    attempt 1
  in
  {
    name;
    exec;
    stats = cluster_stats cluster;
    read_page = cluster_read_page cluster files;
  }

(* {2 Remote execution of baseline operations}

   When an engine is supplied, each backend operation becomes one request
   to a serialised RPC endpoint (same latency and CPU cost as the AFS
   host), so baseline transactions interleave between requests exactly
   like AFS transactions do. The request carries a thunk; the reply
   timing carries the cost. *)

type op_call = unit -> unit

let make_op_rpc engine name : (op_call, unit) Afs_rpc.Rpc.t =
  Afs_rpc.Rpc.serve ~latency_ms:2.0 ~proc_ms:0.2 engine ~name ~handler:(fun f -> f ())

let remote_runner = function
  | None -> fun f -> f ()
  | Some rpc ->
      fun f ->
        let result = ref None in
        (match Afs_rpc.Rpc.call rpc (fun () -> result := Some (f ())) with
        | Ok () -> ()
        | Error _ -> fatal_error "baseline op" (Errors.Store_failure "op server crashed"));
        (match !result with Some v -> v | None -> fatal_error "baseline op" (Errors.Store_failure "reply lost"))

(* {2 XDFS-style two-phase locking} *)

let max_lock_waits = 40

(* A competent locking client acquires locks in a canonical order so that
   transactions over the same pages cannot deadlock; the generator's pages
   are distinct, so sorting by page is behaviour-preserving. *)
let sort_ops ops =
  let page = function Read p -> p | Write (p, _) -> p | Rmw (p, _) -> p in
  List.stable_sort (fun a b -> compare (page a) (page b)) ops

let twopl ?remote backend ~pages_per_file ~retry_wait_ms =
  let rpc = Option.map (fun engine -> make_op_rpc engine "xdfs-2pl") remote in
  let run : type a. (unit -> a) -> a = fun f -> remote_runner rpc f in
  let obj file page = (file * 65536) + page in
  assert (pages_per_file <= 65536);
  let exec spec ~max_retries =
    single_part_only "twopl" spec;
    let rec attempt n =
      let txn = run (fun () -> Twopl.begin_ backend) in
      (* Each operation spins on denials: prod vulnerable holders, wait
         otherwise; too many waits aborts the transaction (deadlock
         resolution by timeout, as XDFS's vulnerable locks intend). *)
      let with_lock_wait op_once =
        let rec try_op waits =
          match run op_once with
          | Ok v -> Some v
          | Error (d : Twopl.denial) ->
              if d.Twopl.holder = 0 then None (* We were prodded out: redo. *)
              else if waits >= max_lock_waits then None
              else begin
                if d.Twopl.vulnerable then
                  ignore (run (fun () -> Twopl.prod backend ~victim:d.Twopl.holder));
                Proc.delay retry_wait_ms;
                try_op (waits + 1)
              end
        in
        try_op 0
      in
      let rec run_ops = function
        | [] -> Some ()
        | Read i :: rest -> (
            match with_lock_wait (fun () -> Twopl.read backend txn ~obj:(obj spec.file i)) with
            | Some _ -> run_ops rest
            | None -> None)
        | Write (i, data) :: rest -> (
            match
              with_lock_wait (fun () -> Twopl.write backend txn ~obj:(obj spec.file i) data)
            with
            | Some () -> run_ops rest
            | None -> None)
        | Rmw (i, f) :: rest -> (
            (* Update-lock first: reserve, then read, then write. *)
            match with_lock_wait (fun () -> Twopl.reserve backend txn ~obj:(obj spec.file i)) with
            | None -> None
            | Some () -> (
                match
                  with_lock_wait (fun () -> Twopl.read backend txn ~obj:(obj spec.file i))
                with
                | None -> None
                | Some v -> (
                    match
                      with_lock_wait (fun () ->
                          Twopl.write backend txn ~obj:(obj spec.file i) (f v))
                    with
                    | Some () -> run_ops rest
                    | None -> None)))
      in
      let redo () =
        run (fun () -> Twopl.abort backend txn);
        if n < max_retries then attempt (n + 1) else finished ~committed:false n
      in
      match run_ops (sort_ops spec.ops) with
      | None -> redo ()
      | Some () -> (
          match with_lock_wait (fun () -> Twopl.commit backend txn) with
          | Some () -> finished ~committed:true n
          | None -> redo ())
    in
    attempt 1
  in
  {
    name = "xdfs-2pl";
    exec;
    stats = (fun () -> Twopl.stats backend);
    read_page = (fun file page -> Twopl.value backend ~obj:(obj file page));
  }

(* {2 SWALLOW-style timestamp ordering} *)

let tsorder ?remote backend ~pages_per_file =
  let rpc = Option.map (fun engine -> make_op_rpc engine "swallow-ts") remote in
  let run : type a. (unit -> a) -> a = fun f -> remote_runner rpc f in
  let obj file page = (file * 65536) + page in
  assert (pages_per_file <= 65536);
  let exec spec ~max_retries =
    single_part_only "tsorder" spec;
    let rec attempt n =
      let txn = run (fun () -> Tsorder.begin_ backend) in
      let rec run_ops = function
        | [] -> Some ()
        | Read i :: rest -> (
            match run (fun () -> Tsorder.read backend txn ~obj:(obj spec.file i)) with
            | Ok _ -> run_ops rest
            | Error `Late_read -> None)
        | Write (i, data) :: rest -> (
            match run (fun () -> Tsorder.write backend txn ~obj:(obj spec.file i) data) with
            | Ok () -> run_ops rest
            | Error (`Late_write _) -> None)
        | Rmw (i, f) :: rest -> (
            match run (fun () -> Tsorder.read backend txn ~obj:(obj spec.file i)) with
            | Error `Late_read -> None
            | Ok v -> (
                match run (fun () -> Tsorder.write backend txn ~obj:(obj spec.file i) (f v)) with
                | Ok () -> run_ops rest
                | Error (`Late_write _) -> None))
      in
      let redo () =
        run (fun () -> Tsorder.abort backend txn);
        if n < max_retries then attempt (n + 1) else finished ~committed:false n
      in
      match run_ops spec.ops with
      | None -> redo ()
      | Some () -> (
          match run (fun () -> Tsorder.commit backend txn) with
          | Ok () -> finished ~committed:true n
          | Error (`Late_write _) -> redo ())
    in
    attempt 1
  in
  {
    name = "swallow-ts";
    exec;
    stats = (fun () -> Tsorder.stats backend);
    read_page = (fun file page -> Tsorder.value backend ~obj:(obj file page));
  }

(* {2 Amoeba file service with cross-shard transactions}

   Single-part specs take lib/txn's fast path (the same RPC sequence as
   [afs_cluster]); multi-part specs run the stage/decide/flip protocol.
   The retry loop distinguishes the two abort flavours the S2 report
   separates: a participant stage losing an ordinary one-shard race
   (local) versus a fully-staged transaction force-aborted at the
   coordinator record (cross). *)

let afs_txn ?(name = "afs-occ-txn") ?trace client ~files =
  let module CC = Afs_cluster.Cluster_client in
  let module Txn = Afs_txn.Txn in
  let cluster = CC.cluster client in
  let txn = Txn.create ?trace client in
  let to_ops ops =
    List.map
      (function
        | Read i -> Txn.Read (page_path i)
        | Write (i, data) -> Txn.Write (page_path i, data)
        | Rmw (i, f) -> Txn.Rmw (page_path i, f))
      ops
  in
  let parts_of spec =
    match spec.parts with
    | [] -> [ { Txn.file = files.(spec.file); ops = to_ops spec.ops } ]
    | parts ->
        List.map (fun (file, ops) -> { Txn.file = files.(file); ops = to_ops ops }) parts
  in
  let exec spec ~max_retries =
    let parts = parts_of spec in
    let local = ref 0 and cross = ref 0 in
    let result ~committed n =
      { committed; attempts = n; local_aborts = !local; cross_aborts = !cross }
    in
    let rec attempt n =
      match Txn.exec txn parts with
      | Ok () -> result ~committed:true n
      | Error f ->
          (match f with
          | Txn.Local _ -> incr local
          | Txn.Cross _ -> incr cross
          | Txn.Failed (Errors.Locked_out _ | Errors.Store_failure _) ->
              (* Transport outage or lock hint: wait it out, as the other
                 cluster SUTs do. Not an abort — nothing was staged. *)
              Proc.delay 5.0
          | Txn.Failed e -> fatal_error "afs_txn exec" e);
          if n < max_retries then attempt (n + 1) else result ~committed:false n
    in
    attempt 1
  in
  let stats () =
    Afs_util.Stats.Counter.to_list (Txn.counters txn) @ cluster_stats cluster ()
  in
  { name; exec; stats; read_page = cluster_read_page cluster files }

(* {2 Two-phase-commit baseline over the same cluster}

   The conventional coordinator shape: phase one validates and merges
   each participant version ([Server.prepare]) and parks the pipeline
   holding the base's store lock; phase two publishes or drops it
   ([Server.decide]). Participants are prepared in canonical file order
   (preventing prepare deadlocks exactly as lock ordering does for 2PL),
   and blocking is emergent: any competitor spins on the retained lock
   for the whole prepare window, surfacing as [Store_failure] back-offs.
   Contrast with [afs_txn], which holds nothing across shards. *)

let afs_twopc ?(name = "afs-2pc") client ~files =
  let module CC = Afs_cluster.Cluster_client in
  let cluster = CC.cluster client in
  let prepare_one h =
    Remote.prepare (CC.Txn.conn h.CC.txn) (CC.Txn.version h.CC.txn)
  in
  let decide_one h ~commit =
    Remote.decide (CC.Txn.conn h.CC.txn) (CC.Txn.version h.CC.txn) ~commit
  in
  let parts_of spec =
    match spec.parts with
    | [] -> [ (spec.file, spec.ops) ]
    | parts -> List.sort (fun (a, _) (b, _) -> compare a b) parts
  in
  let exec spec ~max_retries =
    let parts = parts_of spec in
    let local = ref 0 and cross = ref 0 in
    let result ~committed n =
      { committed; attempts = n; local_aborts = !local; cross_aborts = !cross }
    in
    let abort_all hs = List.iter (fun h -> ignore (CC.abort h)) hs in
    let rec attempt n =
      let back_off_retry ~result:r () =
        if n < max_retries then begin
          Proc.delay 5.0;
          attempt (n + 1)
        end
        else r
      in
      (* Phase zero: open a version on every participant and run its ops
         (real page writes, unlike the marker-borne afs_txn stage). *)
      let rec open_all acc = function
        | [] -> `Opened (List.rev acc)
        | (file, ops) :: rest -> (
            match CC.begin_txn ~attempt:n client files.(file) with
            | Error (Errors.Locked_out _ | Errors.Store_failure _) ->
                abort_all acc;
                `Back_off
            | Error e -> fatal_error "afs_twopc create_version" e
            | Ok h -> (
                match cluster_run_ops h.CC.txn ops with
                | Ok () -> open_all (h :: acc) rest
                | Error (Errors.Store_failure _) ->
                    abort_all (h :: acc);
                    `Back_off
                | Error e ->
                    abort_all (h :: acc);
                    fatal_error "afs_twopc ops" e))
      in
      match open_all [] parts with
      | `Back_off -> back_off_retry ~result:(result ~committed:false n) ()
      | `Opened handles -> (
          (* Phase one, in canonical order. On any refusal the prepared
             prefix is decided-abort (releasing its parked pipelines)
             before the unprepared suffix is discarded. *)
          let rec prepare_all prepared idx = function
            | [] -> `Prepared (List.rev prepared)
            | h :: rest -> (
                match prepare_one h with
                | Ok () -> prepare_all (h :: prepared) (idx + 1) rest
                | Error e ->
                    List.iter
                      (fun p -> ignore (decide_one p ~commit:false))
                      (List.rev prepared);
                    ignore (CC.abort h);
                    abort_all rest;
                    `Refused (idx, e))
          in
          match prepare_all [] 0 handles with
          | `Refused (_, Errors.Store_failure _) ->
              (* Lock contention against another coordinator's prepare
                 window — the blocking 2PC is famous for. *)
              back_off_retry ~result:(result ~committed:false n) ()
          | `Refused (idx, Errors.Conflict) ->
              if idx = 0 && List.length parts > 1 then incr local
              else if List.length parts > 1 then incr cross
              else incr local;
              if n < max_retries then attempt (n + 1)
              else result ~committed:false n
          | `Refused (_, e) -> fatal_error "afs_twopc prepare" e
          | `Prepared prepared ->
              (* Phase two: the decision is definite once every vote is
                 in; a participant that cannot publish now is a broken
                 store, not a conflict. *)
              List.iter
                (fun h ->
                  fatal "afs_twopc decide" (decide_one h ~commit:true);
                  CC.note_commit client ~shard:h.CC.shard h.CC.file)
                prepared;
              result ~committed:true n)
    in
    attempt 1
  in
  {
    name;
    exec;
    stats = cluster_stats cluster;
    read_page = cluster_read_page cluster files;
  }
