type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 output function. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Xrng.int: bound must be positive";
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

(* Fill [b] with printable bytes: per byte, exactly the draw
   [Char.chr (32 + int t 95)] makes, so the stream (and every draw after
   it) is bit-identical to the per-byte path. The splitmix chain is
   inlined so the whole loop body is local [Int64] arithmetic the
   compiler keeps unboxed — the generic path allocates three boxed
   [Int64]s per byte, which at a kilobyte per transaction was the
   workload generator's entire cost. State advances by [gamma] per draw,
   so draw [i] mixes [s0 + gamma * (i + 1)] directly. *)
let fill_printable t b =
  let len = Bytes.length b in
  let s0 = t.state in
  for i = 0 to len - 1 do
    let z = Int64.add s0 (Int64.mul golden_gamma (Int64.of_int (i + 1))) in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    let v = Int64.to_int (Int64.rem (Int64.shift_right_logical z 1) 95L) in
    Bytes.unsafe_set b i (Char.unsafe_chr (32 + v))
  done;
  t.state <- Int64.add s0 (Int64.mul golden_gamma (Int64.of_int len))

let int_in t lo hi =
  if hi < lo then invalid_arg "Xrng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (u /. 9007199254740992.0) (* 2^53 *)

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t mean =
  let u = ref (float t 1.0) in
  if !u <= 0.0 then u := epsilon_float;
  -.mean *. log !u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Xrng.pick: empty array";
  a.(int t (Array.length a))
