exception Decode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

module Writer = struct
  type t = { buf : Buffer.t }

  let create ?(capacity = 256) () = { buf = Buffer.create capacity }

  (* Empty the writer for reuse, keeping its internal buffer: callers on
     hot paths keep one scratch writer per call site instead of
     allocating a fresh [Buffer.t] (and its backing bytes) per message.
     [contents] copies, so a reset never aliases handed-out images. *)
  let reset t = Buffer.clear t.buf
  let length t = Buffer.length t.buf
  let u8 t v = Buffer.add_char t.buf (Char.chr (v land 0xFF))

  let u16 t v =
    u8 t v;
    u8 t (v lsr 8)

  let u32 t v =
    u16 t v;
    u16 t (v lsr 16)

  let u64 t v =
    for shift = 0 to 7 do
      u8 t (Int64.to_int (Int64.shift_right_logical v (8 * shift)))
    done

  let rec varint t v =
    if v < 0 then invalid_arg "Wire.Writer.varint: negative"
    else if v < 0x80 then u8 t v
    else begin
      u8 t (0x80 lor (v land 0x7F));
      varint t (v lsr 7)
    end

  let bytes t b = Buffer.add_bytes t.buf b

  let sized_bytes t b =
    varint t (Bytes.length b);
    bytes t b

  let string t s =
    varint t (String.length s);
    Buffer.add_string t.buf s

  let contents t = Buffer.to_bytes t.buf
end

module Reader = struct
  type t = { data : bytes; mutable pos : int }

  let of_bytes data = { data; pos = 0 }
  let remaining t = Bytes.length t.data - t.pos

  let u8 t =
    if remaining t < 1 then fail "u8: truncated at %d" t.pos;
    let v = Char.code (Bytes.get t.data t.pos) in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let lo = u8 t in
    let hi = u8 t in
    lo lor (hi lsl 8)

  (* Word-width fields load in one unaligned access ([get_int32_le] is a
     compiler primitive); the page codec reads tens of these per page on
     the cache-miss path. *)
  let u32 t =
    if remaining t < 4 then fail "u32: truncated at %d" t.pos;
    let v = Int32.to_int (Bytes.get_int32_le t.data t.pos) land 0xFFFFFFFF in
    t.pos <- t.pos + 4;
    v

  let u64 t =
    if remaining t < 8 then fail "u64: truncated at %d" t.pos;
    let v = Bytes.get_int64_le t.data t.pos in
    t.pos <- t.pos + 8;
    v

  let varint t =
    let rec go shift acc =
      if shift > 56 then fail "varint: too long at %d" t.pos;
      let b = u8 t in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let bytes t n =
    if n < 0 || remaining t < n then fail "bytes: truncated (%d wanted at %d)" n t.pos;
    let b = Bytes.sub t.data t.pos n in
    t.pos <- t.pos + n;
    b

  let sized_bytes t =
    let n = varint t in
    bytes t n

  let string t = Bytes.to_string (sized_bytes t)

  let expect_end t = if remaining t <> 0 then fail "trailing garbage: %d bytes" (remaining t)
end

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 b =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = 0 to Bytes.length b - 1 do
    c := table.((!c lxor Char.code (Bytes.get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF
