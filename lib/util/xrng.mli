(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    simulations, workloads and property tests are reproducible from a seed.
    The generator is splitmix64 (Steele, Lea & Flood 2014): tiny state, good
    statistical quality, and cheap [split] for giving independent streams to
    concurrent simulated processes. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from [seed]. Equal seeds give
    equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val fill_printable : t -> bytes -> unit
(** Fill the buffer with printable ASCII (space to [~]), consuming one
    draw per byte — stream-identical to [Char.chr (32 + int t 95)] per
    byte, but without the generic path's three boxed [Int64] allocations
    each. For bulk payload generation on workload hot paths. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential inter-arrival time with the
    given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly chosen element. Raises [Invalid_argument] on empty arrays. *)
