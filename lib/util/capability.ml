type rights = int

let rights_all = 0xFF
let rights_none = 0
let right_read = 0x01
let right_write = 0x02
let right_commit = 0x04
let right_destroy = 0x08
let right_admin = 0x10

let rights_union = ( lor )
let rights_subset a b = a land lnot b = 0
let rights_to_int r = r
let rights_of_int i = i land 0xFF

let pp_rights ppf r =
  let names =
    [ (right_read, "r"); (right_write, "w"); (right_commit, "c");
      (right_destroy, "d"); (right_admin, "a") ]
  in
  let shown =
    List.filter_map (fun (bit, name) -> if r land bit <> 0 then Some name else None) names
  in
  Fmt.pf ppf "%s" (if shown = [] then "-" else String.concat "" shown)

type port = int

let port_of_int i = i land 0xFFFFFFFFFFFF
let port_to_int p = p
let pp_port ppf p = Fmt.pf ppf "port:%06x" p

type t = { port : port; obj : int; rights : rights; check : int }

type secret = int64

let secret_of_seed seed =
  (* One splitmix64 step so that nearby seeds give unrelated secrets. *)
  let rng = Xrng.create seed in
  Xrng.bits64 rng

(* FNV-1a over the fields mixed with the secret; 32-bit truncated. A real
   system would use a cryptographic MAC, but the concurrency-control logic
   only needs unforgeability against honest-but-curious test clients. *)
(* One FNV-1a step per byte of [v], least-significant first, unrolled:
   the loop-and-ref formulation boxed every intermediate [Int64], and
   [validate] runs several times per transaction on the hot path. The
   byte is masked in 64-bit arithmetic rather than round-tripped through
   [int] — same value, no conversion. *)
let feed h v =
  let prime = 0x100000001b3L in
  let h = Int64.mul (Int64.logxor h (Int64.logand v 0xFFL)) prime in
  let h = Int64.mul (Int64.logxor h (Int64.logand (Int64.shift_right_logical v 8) 0xFFL)) prime in
  let h = Int64.mul (Int64.logxor h (Int64.logand (Int64.shift_right_logical v 16) 0xFFL)) prime in
  let h = Int64.mul (Int64.logxor h (Int64.logand (Int64.shift_right_logical v 24) 0xFFL)) prime in
  let h = Int64.mul (Int64.logxor h (Int64.logand (Int64.shift_right_logical v 32) 0xFFL)) prime in
  let h = Int64.mul (Int64.logxor h (Int64.logand (Int64.shift_right_logical v 40) 0xFFL)) prime in
  let h = Int64.mul (Int64.logxor h (Int64.logand (Int64.shift_right_logical v 48) 0xFFL)) prime in
  Int64.mul (Int64.logxor h (Int64.shift_right_logical v 56)) prime

let check_field secret ~port ~obj ~rights =
  let h = feed 0xcbf29ce484222325L secret in
  let h = feed h (Int64.of_int port) in
  let h = feed h (Int64.of_int obj) in
  let h = feed h (Int64.of_int rights) in
  Int64.to_int (Int64.logand h 0x7FFFFFFFL)

let mint secret ~port ~obj ~rights =
  { port; obj; rights; check = check_field secret ~port ~obj ~rights }

let validate secret cap =
  cap.check = check_field secret ~port:cap.port ~obj:cap.obj ~rights:cap.rights

let restrict secret cap subset =
  if not (validate secret cap) then Error "invalid capability"
  else if not (rights_subset subset cap.rights) then Error "rights amplification refused"
  else Ok (mint secret ~port:cap.port ~obj:cap.obj ~rights:subset)

let equal a b =
  a.port = b.port && a.obj = b.obj && a.rights = b.rights && a.check = b.check

let compare = Stdlib.compare

let pp ppf cap =
  Fmt.pf ppf "{%a obj:%d %a}" pp_port cap.port cap.obj pp_rights cap.rights
