(** Little-endian byte readers and writers for on-disk page images and RPC
    message bodies. Decoding failures raise {!Decode_error} rather than
    returning partial garbage: a corrupted block must be detected, because
    the stable-storage layer (§4) falls back to the companion server on
    corruption. *)

exception Decode_error of string

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t

  val reset : t -> unit
  (** Empty the writer for reuse, keeping its backing buffer — the
      arena discipline for per-message scratch writers on hot paths.
      Safe because {!contents} copies. *)

  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int64 -> unit
  val varint : t -> int -> unit
  (** Unsigned LEB128; compact for small reference counts and sizes. *)

  val bytes : t -> bytes -> unit
  (** Raw bytes, no length prefix. *)

  val sized_bytes : t -> bytes -> unit
  (** Varint length prefix followed by the bytes. *)

  val string : t -> string -> unit
  (** Same framing as [sized_bytes]. *)

  val contents : t -> bytes
end

module Reader : sig
  type t

  val of_bytes : bytes -> t
  val remaining : t -> int
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int64
  val varint : t -> int
  val bytes : t -> int -> bytes
  val sized_bytes : t -> bytes
  val string : t -> string
  val expect_end : t -> unit
  (** Raises {!Decode_error} if any input remains. *)
end

val crc32 : bytes -> int
(** CRC-32 (IEEE polynomial) used as the page-image integrity check. *)
