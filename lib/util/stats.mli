(** Online statistics and fixed-resolution histograms for the experiment
    harness: throughput, latency percentiles, abort counters. *)

module Summary : sig
  (** Streaming mean/variance (Welford) plus min/max. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
  val pp : t Fmt.t
end

module Histogram : sig
  (** Log-bucketed histogram over positive values; resolution ~9% per
      bucket, good enough for latency percentiles across nine decades. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val percentile : t -> float -> float
  (** [percentile t 0.99] is an upper bound on the p99 value; 0 when
      empty. [p] must be in [0, 1] (NaN is rejected); the endpoints are
      exact: [percentile t 0.0] and [percentile t 1.0] return the
      smallest and largest value ever added. *)

  val merge : t -> t -> t
  (** [merge a b] equals the histogram of both input streams combined:
      per-bucket counts add, extremes take the min/max. Neither input is
      modified. *)
end

module Counter : sig
  (** Named event counters, e.g. commits/aborts/retries per experiment. *)

  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit

  val handle : t -> string -> int ref
  (** The counter's cell, registering it at 0 if absent: resolve the
      string key once and increment the ref directly on hot paths. Wrap
      in [lazy] to keep never-touched counters out of {!to_list}. *)

  val get : t -> string -> int
  val to_list : t -> (string * int) list
  (** Sorted by name. *)
end

val ratio : int -> int -> float
(** [ratio num den] is [num/den] as a float, 0 when [den] is 0. *)
