let sorted_keys t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let iter_sorted f t =
  List.iter
    (fun k -> match Hashtbl.find_opt t k with Some v -> f k v | None -> ())
    (sorted_keys t)

let fold_sorted f t init =
  List.fold_left
    (fun acc k -> match Hashtbl.find_opt t k with Some v -> f k v acc | None -> acc)
    init (sorted_keys t)
