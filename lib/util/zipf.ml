(* Inverse-CDF sampling over a precomputed cumulative table. The table costs
   O(n) space, which is fine for the workload sizes used here (<= 1e6) and
   makes [sample] an O(log n) binary search with exact probabilities. *)

type t = { n : int; theta : float; cumulative : float array }

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 then invalid_arg "Zipf.create: theta must be >= 0";
  let weights = Array.init n (fun k -> 1.0 /. ((float_of_int (k + 1)) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. (weights.(k) /. total);
    cumulative.(k) <- !acc
  done;
  cumulative.(n - 1) <- 1.0;
  { n; theta; cumulative }

let n t = t.n

let theta t = t.theta

(* Smallest k with cumulative.(k) >= u. Iterative on purpose: the inner
   recursive function this used to be captured [u] and [t] in a closure
   allocated per sample, which the workload generators pay per page draw
   on million-transaction runs. Same comparisons, same result, same rng
   consumption — the draw stream is bit-compatible. *)
let sample t rng =
  let u = Xrng.float rng 1.0 in
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cumulative.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let probability t k =
  if k < 0 || k >= t.n then invalid_arg "Zipf.probability: rank out of range";
  if k = 0 then t.cumulative.(0) else t.cumulative.(k) -. t.cumulative.(k - 1)
