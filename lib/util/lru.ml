(* A bounded LRU index: hashtable for O(1) lookup, intrusive doubly-linked
   recency list for O(1) promotion and eviction-candidate selection. The
   structure itself never evicts — the owner asks for [lru_unpinned] and
   removes the entry once whatever write-back the eviction requires has
   succeeded, so a failed write-back never silently drops data. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable pinned : bool;
  mutable prev : ('k, 'v) node option;  (* towards the MRU end *)
  mutable next : ('k, 'v) node option;  (* towards the LRU end *)
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be positive";
  { capacity; table = Hashtbl.create (min capacity 1024); head = None; tail = None }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

(* {2 Intrusive list plumbing} *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
      unlink t n;
      push_front t n

(* {2 Operations} *)

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
      touch t n;
      Some n.value

let peek t k = Option.map (fun n -> n.value) (Hashtbl.find_opt t.table k)

let mem t k = Hashtbl.mem t.table k

let set t k v =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      n.value <- v;
      touch t n
  | None ->
      let n = { key = k; value = v; pinned = false; prev = None; next = None } in
      Hashtbl.replace t.table k n;
      push_front t n

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some n ->
      Hashtbl.remove t.table k;
      unlink t n

let pin t k =
  match Hashtbl.find_opt t.table k with
  | None -> false
  | Some n ->
      n.pinned <- true;
      true

let unpin t k =
  match Hashtbl.find_opt t.table k with None -> () | Some n -> n.pinned <- false

let pinned t k =
  match Hashtbl.find_opt t.table k with None -> false | Some n -> n.pinned

let needs_eviction t = length t > t.capacity

(* Oldest unpinned entry: a linear scan from the tail, but the scan only
   passes over pinned entries, of which the owner holds a handful (locked
   commit blocks) at any time. *)
let lru_unpinned t =
  let rec scan = function
    | None -> None
    | Some n -> if n.pinned then scan n.prev else Some (n.key, n.value)
  in
  scan t.tail

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

(* Recency order, most recent first — deterministic given a deterministic
   access sequence. *)
let fold f t init =
  let rec go acc = function
    | None -> acc
    | Some n -> go (f n.key n.value acc) n.next
  in
  go init t.head

let iter f t = fold (fun k v () -> f k v) t ()
