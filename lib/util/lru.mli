(** A capacity-bounded LRU index with pinning.

    Hashtable + intrusive doubly-linked recency list: {!find}, {!set} and
    {!remove} are O(1). The structure never evicts on its own — {!set}
    may push {!length} above {!capacity}, and the owner then drains the
    excess via {!lru_unpinned} + {!remove}, performing whatever write-back
    the evicted value needs first. Pinned entries are skipped as eviction
    candidates (used for blocks held under a commit lock). *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup that promotes the entry to most-recently-used. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Lookup without promotion. *)

val mem : ('k, 'v) t -> 'k -> bool

val set : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace, promoting to most-recently-used. Never evicts;
    check {!needs_eviction} afterwards. *)

val remove : ('k, 'v) t -> 'k -> unit

val pin : ('k, 'v) t -> 'k -> bool
(** Exempt the entry from eviction; [false] when the key is absent. *)

val unpin : ('k, 'v) t -> 'k -> unit
val pinned : ('k, 'v) t -> 'k -> bool

val needs_eviction : ('k, 'v) t -> bool
(** [length t > capacity t]. *)

val lru_unpinned : ('k, 'v) t -> ('k * 'v) option
(** The least-recently-used unpinned entry — the eviction candidate.
    [None] when every entry is pinned (the cache may then transiently
    exceed its capacity). *)

val clear : ('k, 'v) t -> unit

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
(** Recency order, most recent first — deterministic given a deterministic
    access sequence. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
