(** Deterministic traversal of hash tables.

    [Hashtbl] iteration order depends on insertion history and internal
    resizing, so any iteration whose effects reach the wire format, the
    event queue, or a report is a reproducibility hazard (lint rule D1).
    These helpers snapshot the key set and walk it in ascending
    polymorphic-compare order; they also tolerate the callback removing
    entries from the table mid-walk (removed keys are skipped). *)

val sorted_keys : ('k, 'v) Hashtbl.t -> 'k list
(** All distinct keys, ascending. *)

val iter_sorted : ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [Hashtbl.iter] in ascending key order over a snapshot of the keys. *)

val fold_sorted : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) Hashtbl.t -> 'acc -> 'acc
(** [Hashtbl.fold] in ascending key order over a snapshot of the keys. *)
