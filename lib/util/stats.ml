module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = if t.count = 0 then 0.0 else t.min
  let max t = if t.count = 0 then 0.0 else t.max
  let total t = t.total

  let pp ppf t =
    Fmt.pf ppf "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.count (mean t) (stddev t)
      (min t) (max t)
end

module Histogram = struct
  (* Buckets at powers of [growth]; bucket of x is floor(log_growth x). *)

  let growth = 1.09
  let log_growth = log growth
  let offset = 512 (* allow values down to growth^-512 *)
  let nbuckets = 1024

  type t = {
    buckets : int array;
    mutable count : int;
    (* Exact extremes, so p=0 and p=1 answer with observed values rather
       than bucket bounds (which overestimate by up to one bucket width). *)
    mutable vmin : float;
    mutable vmax : float;
  }

  let create () =
    { buckets = Array.make nbuckets 0; count = 0; vmin = infinity; vmax = neg_infinity }

  let bucket_of x =
    if x <= 0.0 then 0
    else
      let b = offset + int_of_float (Float.floor (log x /. log_growth)) in
      Stdlib.min (nbuckets - 1) (Stdlib.max 0 b)

  let upper_bound b = growth ** float_of_int (b - offset + 1)

  let add t x =
    let b = bucket_of x in
    t.buckets.(b) <- t.buckets.(b) + 1;
    t.count <- t.count + 1;
    if x < t.vmin then t.vmin <- x;
    if x > t.vmax then t.vmax <- x

  let count t = t.count

  let percentile t p =
    if Float.is_nan p || p < 0.0 || p > 1.0 then invalid_arg "Histogram.percentile";
    if t.count = 0 then 0.0
    else if p = 0.0 then t.vmin
    else if p = 1.0 then t.vmax
    else
      let target = int_of_float (Float.ceil (p *. float_of_int t.count)) in
      let target = Stdlib.max 1 target in
      let rec scan b seen =
        if b >= nbuckets then upper_bound (nbuckets - 1)
        else
          let seen = seen + t.buckets.(b) in
          if seen >= target then upper_bound b else scan (b + 1) seen
      in
      scan 0 0

  let merge a b =
    let merged = create () in
    for i = 0 to nbuckets - 1 do
      merged.buckets.(i) <- a.buckets.(i) + b.buckets.(i)
    done;
    merged.count <- a.count + b.count;
    merged.vmin <- Float.min a.vmin b.vmin;
    merged.vmax <- Float.max a.vmax b.vmax;
    merged
end

module Counter = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let incr ?(by = 1) t name =
    match Hashtbl.find_opt t name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add t name (ref by)

  (* The counter cell itself, for hot paths that bump the same counter
     millions of times: resolve the string key once, then increment the
     ref directly. Force lazily at the first bump so a counter that is
     never touched stays absent from [to_list], exactly as with [incr]. *)
  let handle t name =
    match Hashtbl.find_opt t name with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t name r;
        r

  let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

  let to_list t =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den
