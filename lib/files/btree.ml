module Capability = Afs_util.Capability
module Pagepath = Afs_util.Pagepath
module Wire = Afs_util.Wire
module Client = Afs_core.Client
module Server = Afs_core.Server
module Errors = Afs_core.Errors

open Errors

type t = { client : Client.t; cap : Capability.t; order : int }

(* {2 Node encoding (page data)} *)

type node =
  | Leaf of (string * string) list  (** Sorted by key. *)
  | Interior of string list
      (** m-1 sorted separator keys for m children: child i holds keys in
          [keys.(i-1), keys.(i)) with the open ends at the rims. *)

let magic = 0xB7EE

let encode_node ~order node =
  let w = Wire.Writer.create () in
  Wire.Writer.u16 w magic;
  Wire.Writer.varint w order;
  (match node with
  | Leaf entries ->
      Wire.Writer.u8 w 0;
      Wire.Writer.varint w (List.length entries);
      List.iter
        (fun (k, v) ->
          Wire.Writer.string w k;
          Wire.Writer.string w v)
        entries
  | Interior keys ->
      Wire.Writer.u8 w 1;
      Wire.Writer.varint w (List.length keys);
      List.iter (Wire.Writer.string w) keys);
  Wire.Writer.contents w

let decode_node data =
  match
    let r = Wire.Reader.of_bytes data in
    if Wire.Reader.u16 r <> magic then Error (Store_failure "not a b-tree node")
    else begin
      let order = Wire.Reader.varint r in
      let kind = Wire.Reader.u8 r in
      let count = Wire.Reader.varint r in
      let node =
        if kind = 0 then
          Leaf
            (List.init count (fun _ ->
                 let k = Wire.Reader.string r in
                 let v = Wire.Reader.string r in
                 (k, v)))
        else Interior (List.init count (fun _ -> Wire.Reader.string r))
      in
      Wire.Reader.expect_end r;
      Ok (order, node)
    end
  with
  | result -> result
  | exception Wire.Decode_error msg -> Error (Store_failure ("b-tree node: " ^ msg))

(* {2 Open / create} *)

let create client ?(order = 8) () =
  if order < 3 then invalid_arg "Btree.create: order must be >= 3";
  let* cap = Client.create_file client ~data:(encode_node ~order (Leaf [])) () in
  Ok { client; cap; order }

let of_capability client cap =
  let* data = Client.read_current client cap Pagepath.root in
  let* order, _ = decode_node data in
  Ok { client; cap; order }

let capability t = t.cap
let order t = t.order

(* {2 Transaction-side node access} *)

let read_node txn path =
  let* data = Client.Txn.read txn path in
  let* _, node = decode_node data in
  Ok node

let write_node t txn path node = Client.Txn.write txn path (encode_node ~order:t.order node)

(* Child index for [key]: the number of separators <= key. *)
let child_index keys key =
  List.fold_left (fun acc sep -> if key >= sep then acc + 1 else acc) 0 keys

let split_list l =
  let n = List.length l in
  let h = n / 2 in
  (List.filteri (fun i _ -> i < h) l, List.filteri (fun i _ -> i >= h) l)

let node_weight = function Leaf entries -> List.length entries | Interior keys -> List.length keys + 1

(* {2 Splitting}

   [split_child] splits the full child at [parent_path]/[idx] into two
   siblings at indexes [idx] and [idx+1], hoisting the median separator
   into the parent's key list (returned for the caller to incorporate).
   Leaf splits only rewrite data; interior splits move the upper half of
   the child's subtrees into the fresh sibling with ordinary page moves. *)
let split_child t txn parent_path idx =
  let child_path = Pagepath.child parent_path idx in
  let* child = read_node txn child_path in
  match child with
  | Leaf entries -> (
      let left, right = split_list entries in
      match right with
      | [] -> Error (Errors.Store_failure "btree: split of an empty leaf")
      | (median, _) :: _ ->
          let* () = write_node t txn child_path (Leaf left) in
          let* _ =
            Client.Txn.insert txn ~parent:parent_path ~index:(idx + 1)
              ~data:(encode_node ~order:t.order (Leaf right))
              ()
          in
          Ok median)
  | Interior keys ->
      let server = Client.server t.client in
      let version = Client.Txn.version txn in
      let nchildren = List.length keys + 1 in
      let h = nchildren / 2 in
      (* keys = k_1..k_{m-1}; left keeps children 0..h-1 with keys
         k_1..k_{h-1}; the median k_h is hoisted; right gets the rest. *)
      let left_keys = List.filteri (fun i _ -> i < h - 1) keys in
      let median = List.nth keys (h - 1) in
      let right_keys = List.filteri (fun i _ -> i > h - 1) keys in
      let* _ =
        Client.Txn.insert txn ~parent:parent_path ~index:(idx + 1)
          ~data:(encode_node ~order:t.order (Interior right_keys))
          ()
      in
      let sibling_path = Pagepath.child parent_path (idx + 1) in
      (* Move children h..m-1 across; the source index stays [h] as each
         removal shifts the next one down. *)
      let rec move k =
        if k >= nchildren - h then Ok ()
        else
          let* () =
            Server.move_page server version ~src_parent:child_path ~src_index:h
              ~dst_parent:sibling_path ~dst_index:k
          in
          move (k + 1)
      in
      let* () = move 0 in
      let* () = write_node t txn child_path (Interior left_keys) in
      Ok median

(* Split a full root by pushing its contents one level down: fresh left
   and right children are inserted at indexes 0 and 1, the root's original
   children (now starting at index 2) are moved under them, and the root
   becomes a two-child interior node. *)
let split_root t txn =
  let* root = read_node txn Pagepath.root in
  match root with
  | Leaf entries -> (
      let left, right = split_list entries in
      match right with
      | [] -> Error (Errors.Store_failure "btree: split of an empty root leaf")
      | (median, _) :: _ ->
          let* _ =
            Client.Txn.insert txn ~parent:Pagepath.root ~index:0
              ~data:(encode_node ~order:t.order (Leaf left))
              ()
          in
          let* _ =
            Client.Txn.insert txn ~parent:Pagepath.root ~index:1
              ~data:(encode_node ~order:t.order (Leaf right))
              ()
          in
          write_node t txn Pagepath.root (Interior [ median ]))
  | Interior keys ->
      let server = Client.server t.client in
      let version = Client.Txn.version txn in
      let nchildren = List.length keys + 1 in
      let h = nchildren / 2 in
      let left_keys = List.filteri (fun i _ -> i < h - 1) keys in
      let median = List.nth keys (h - 1) in
      let right_keys = List.filteri (fun i _ -> i > h - 1) keys in
      let* _ =
        Client.Txn.insert txn ~parent:Pagepath.root ~index:0
          ~data:(encode_node ~order:t.order (Interior left_keys))
          ()
      in
      let* _ =
        Client.Txn.insert txn ~parent:Pagepath.root ~index:1
          ~data:(encode_node ~order:t.order (Interior right_keys))
          ()
      in
      (* Originals now sit at indexes 2..; move them under the new pair. *)
      let left_path = Pagepath.of_list [ 0 ] and right_path = Pagepath.of_list [ 1 ] in
      let rec move k =
        if k >= nchildren then Ok ()
        else
          let dst_parent, dst_index = if k < h then (left_path, k) else (right_path, k - h) in
          let* () =
            Server.move_page server version ~src_parent:Pagepath.root ~src_index:2
              ~dst_parent ~dst_index
          in
          move (k + 1)
      in
      let* () = move 0 in
      write_node t txn Pagepath.root (Interior [ median ])

(* {2 Insert: single pass, splitting full nodes on the way down} *)

let insert t ~key ~value =
  Client.update t.client t.cap (fun txn ->
      let* root = read_node txn Pagepath.root in
      let* () = if node_weight root >= t.order then split_root t txn else Ok () in
      let rec descend path =
        let* node = read_node txn path in
        match node with
        | Leaf entries ->
            let entries =
              List.merge
                (fun (a, _) (b, _) -> compare a b)
                [ (key, value) ]
                (List.remove_assoc key entries)
            in
            write_node t txn path (Leaf entries)
        | Interior keys -> (
            let idx = child_index keys key in
            let child_path = Pagepath.child path idx in
            let* child = read_node txn child_path in
            if node_weight child >= t.order then begin
              let* median = split_child t txn path idx in
              let keys =
                List.merge compare [ median ] keys
              in
              let* () = write_node t txn path (Interior keys) in
              let idx = if key >= median then idx + 1 else idx in
              descend_into path idx
            end
            else descend_into path idx)
      and descend_into path idx = descend (Pagepath.child path idx) in
      descend Pagepath.root)

(* {2 Queries: one committed snapshot} *)

let with_snapshot t f =
  let server = Client.server t.client in
  let* version = Server.current_version server t.cap in
  let read path =
    let* data = Server.read_page server version path in
    let* _, node = decode_node data in
    Ok node
  in
  f read

let find t key =
  with_snapshot t (fun read ->
      let rec descend path =
        let* node = read path in
        match node with
        | Leaf entries -> Ok (List.assoc_opt key entries)
        | Interior keys -> descend (Pagepath.child path (child_index keys key))
      in
      descend Pagepath.root)

let bindings t =
  with_snapshot t (fun read ->
      let rec walk path acc =
        let* node = read path in
        match node with
        | Leaf entries -> Ok (List.rev_append entries acc)
        | Interior keys ->
            let rec each i acc =
              if i > List.length keys then Ok acc
              else
                let* acc = walk (Pagepath.child path i) acc in
                each (i + 1) acc
            in
            each 0 acc
      in
      let* all = walk Pagepath.root [] in
      Ok (List.rev all))

let cardinal t =
  let* l = bindings t in
  Ok (List.length l)

let height t =
  with_snapshot t (fun read ->
      let rec depth path acc =
        let* node = read path in
        match node with
        | Leaf _ -> Ok acc
        | Interior _ -> depth (Pagepath.child path 0) (acc + 1)
      in
      depth Pagepath.root 1)

(* {2 Lazy removal} *)

let remove t key =
  Client.update t.client t.cap (fun txn ->
      let rec descend path =
        let* node = read_node txn path in
        match node with
        | Leaf entries ->
            if List.mem_assoc key entries then
              let* () = write_node t txn path (Leaf (List.remove_assoc key entries)) in
              Ok true
            else Ok false
        | Interior keys -> descend (Pagepath.child path (child_index keys key))
      in
      descend Pagepath.root)

(* {2 Invariant checking} *)

let check_invariants t =
  let result =
    with_snapshot t (fun read ->
        let problems = ref [] in
        let complain fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
        let rec sorted = function
          | a :: (b :: _ as rest) -> a < b && sorted rest
          | _ -> true
        in
        let rec walk path lo hi =
          let* node = read path in
          let in_bounds k =
            (match lo with Some l -> k >= l | None -> true)
            && match hi with Some h -> k < h | None -> true
          in
          match node with
          | Leaf entries ->
              if not (sorted (List.map fst entries)) then
                complain "unsorted leaf at %s" (Pagepath.to_string path);
              if List.length entries > t.order then
                complain "overfull leaf at %s" (Pagepath.to_string path);
              List.iter
                (fun (k, _) ->
                  if not (in_bounds k) then
                    complain "key %S out of bounds at %s" k (Pagepath.to_string path))
                entries;
              Ok 1
          | Interior keys ->
              if not (sorted keys) then complain "unsorted keys at %s" (Pagepath.to_string path);
              if List.length keys + 1 > t.order then
                complain "overfull interior at %s" (Pagepath.to_string path);
              List.iter
                (fun k ->
                  if not (in_bounds k) then
                    complain "separator %S out of bounds at %s" k (Pagepath.to_string path))
                keys;
              let bounds = [ lo ] @ List.map (fun k -> Some k) keys @ [ hi ] in
              let rec each i acc =
                if i > List.length keys then Ok acc
                else
                  let clo = List.nth bounds i and chi = List.nth bounds (i + 1) in
                  let* d = walk (Pagepath.child path i) clo chi in
                  match acc with
                  | Some d0 when d0 <> d ->
                      complain "uneven leaf depth under %s" (Pagepath.to_string path);
                      each (i + 1) acc
                  | _ -> each (i + 1) (Some d)
              in
              let* d = each 0 None in
              Ok (1 + Option.value ~default:0 d)
        in
        let* _ = walk Pagepath.root None None in
        Ok !problems)
  in
  match result with
  | Error e -> Error (Errors.to_string e)
  | Ok [] -> Ok ()
  | Ok problems -> Error (String.concat "; " problems)
