exception Killed

(* [ctx] caches the [Some (engine, handle)] value installed in [current]
   while this process runs: allocated once at spawn rather than once per
   resumption (a million-transaction run resumes processes millions of
   times). *)
type handle = {
  mutable dead : bool;
  mutable finished : bool;
  name : string;
  mutable ctx : ctx;
}

and ctx = (Engine.t * handle) option

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t

(* The engine and handle of the currently running process, used when an
   effect is performed. Single-threaded, so a pair of globals is safe; they
   are saved/restored around resumption because resuming one process can
   transitively schedule (not run) others. *)
let current : (Engine.t * handle) option ref = ref None

let with_current handle f =
  let saved = !current in
  current := handle.ctx;
  match f () with
  | x ->
      current := saved;
      x
  | exception e ->
      current := saved;
      raise e

let rec execute : type a. Engine.t -> handle -> (a -> unit) -> (unit -> a) -> unit =
 fun engine handle return body ->
  let open Effect.Deep in
  match_with body ()
    {
      retc = return;
      exnc = (fun e -> if e = Killed then handle.finished <- true else raise e);
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Delay d ->
              Some
                (fun (k : (b, unit) continuation) ->
                  Engine.at engine d (fun () -> resume engine handle k ()))
          | Suspend register ->
              Some
                (fun (k : (b, unit) continuation) ->
                  let resumed = ref false in
                  let resume_once v =
                    if not !resumed then begin
                      resumed := true;
                      Engine.at engine 0.0 (fun () -> resume engine handle k v)
                    end
                  in
                  register resume_once)
          | _ -> None);
    }

and resume : type b. Engine.t -> handle -> (b, unit) Effect.Deep.continuation -> b -> unit
    =
 fun engine handle k v ->
  let tr = Engine.trace engine in
  if Afs_trace.Trace.enabled tr then
    Afs_trace.Trace.point tr (Afs_trace.Trace.Proc_resume { proc = handle.name });
  let saved = !current in
  current := handle.ctx;
  match if handle.dead then Effect.Deep.discontinue k Killed else Effect.Deep.continue k v with
  | () -> current := saved
  | exception e ->
      current := saved;
      raise e

let spawn ?(name = "anon") engine body =
  let handle = { dead = false; finished = false; name; ctx = None } in
  handle.ctx <- Some (engine, handle);
  let tr = Engine.trace engine in
  if Afs_trace.Trace.enabled tr then
    Afs_trace.Trace.point tr (Afs_trace.Trace.Proc_spawn { proc = name });
  Engine.at engine 0.0 (fun () ->
      with_current handle (fun () ->
          if not handle.dead then
            execute engine handle (fun () -> handle.finished <- true) body));
  handle

let in_process () =
  match !current with
  | Some _ -> ()
  | None -> invalid_arg "Proc: blocking operation outside a process"

let delay d =
  in_process ();
  Effect.perform (Delay d)

let suspend register =
  in_process ();
  Effect.perform (Suspend register)

let self_name () = match !current with Some (_, h) -> h.name | None -> "outside"

let kill handle = handle.dead <- true

let alive handle = (not handle.dead) && not handle.finished

let joinable engine =
  let outstanding = ref 0 in
  let waiters : (unit -> unit) Queue.t = Queue.create () in
  let finish () =
    decr outstanding;
    if !outstanding = 0 then Queue.iter (fun wake -> wake ()) waiters;
    if !outstanding = 0 then Queue.clear waiters
  in
  let spawn_joined body =
    incr outstanding;
    spawn engine (fun () -> Fun.protect ~finally:finish body)
  in
  let join_all () =
    if !outstanding > 0 then suspend (fun resume -> Queue.add (fun () -> resume ()) waiters)
  in
  (spawn_joined, join_all)
