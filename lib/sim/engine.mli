(** Discrete-event simulation engine.

    A single-threaded event loop over a virtual clock. All the distributed
    pieces of the reproduction (block servers, file servers, clients,
    crashes) run as coroutine processes ({!Proc}) scheduled by this engine,
    so experiments measure protocol time (network round trips, disk
    latencies) deterministically, independent of host speed.

    Events at equal times fire in schedule order (a monotone sequence number
    breaks ties), which makes every simulation run reproducible. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time, in milliseconds by convention. *)

val at : t -> float -> (unit -> unit) -> unit
(** [at t delay thunk] schedules [thunk] to run [delay] from now.
    Raises [Invalid_argument] on negative delays. *)

val run : ?until:float -> t -> unit
(** Run events until the queue empties or the clock passes [until].
    The clock is left at the time of the last executed event (or [until]). *)

val step : t -> bool
(** Execute the single next event; false when the queue is empty. *)

val trace : t -> Afs_trace.Trace.t
(** The engine's trace handle; {!Afs_trace.Trace.null} by default.
    Components built over the engine emit their events here, so
    installing one sink instruments the whole simulation. *)

val set_trace : t -> Afs_trace.Trace.t -> unit
(** Install a trace handle (typically a ring or stream whose [now] is
    [now t], keeping every timestamp on the virtual clock). *)

val events_executed : t -> int
(** Total events executed so far; a cheap work metric for experiments. *)

val pending : t -> int
(** Events currently queued. *)
