(* Binary min-heap on (time, seq). An array-backed heap keeps the hot path
   allocation-free apart from the closures themselves. *)

type event = { time : float; seq : int; thunk : unit -> unit }

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable executed : int;
  mutable trace : Afs_trace.Trace.t;
}

let dummy = { time = 0.0; seq = -1; thunk = ignore }

let create () =
  {
    heap = Array.make 64 dummy;
    size = 0;
    clock = 0.0;
    next_seq = 0;
    executed = 0;
    trace = Afs_trace.Trace.null;
  }

let now t = t.clock
let trace t = t.trace
let set_trace t tr = t.trace <- tr

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let bigger = Array.make (2 * Array.length t.heap) dummy in
  Array.blit t.heap 0 bigger 0 t.size;
  t.heap <- bigger

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(p) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(p);
      t.heap.(p) <- tmp;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let at t delay thunk =
  if delay < 0.0 then invalid_arg "Engine.at: negative delay";
  if t.size = Array.length t.heap then grow t;
  let ev = { time = t.clock +. delay; seq = t.next_seq; thunk } in
  t.next_seq <- t.next_seq + 1;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(* The internal step: pop the top event and run it, no option boxing.
   Only called when [t.size > 0]. The drain loop below runs this once per
   event, so it must allocate nothing itself — the [Some top] the public
   {!pop} wraps its result in costs a minor allocation per event, which
   is pure overhead at millions of events per run. *)
let step_exn t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  sift_down t 0;
  t.clock <- top.time;
  t.executed <- t.executed + 1;
  top.thunk ()

let step t =
  if t.size = 0 then false
  else begin
    step_exn t;
    true
  end

let run ?until t =
  match until with
  | None -> while t.size > 0 do step_exn t done
  | Some limit ->
      while t.size > 0 && t.heap.(0).time <= limit do
        step_exn t
      done;
      if t.clock < limit then t.clock <- limit

let events_executed t = t.executed
let pending t = t.size
