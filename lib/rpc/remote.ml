module Capability = Afs_util.Capability
module Pagepath = Afs_util.Pagepath
module Server = Afs_core.Server
module Cache = Afs_core.Cache
module Errors = Afs_core.Errors

type request =
  | Create_file of bytes
  | Current_version of Capability.t
  | Create_version of { file : Capability.t; respect_hints : bool; updater_port : int }
  | Read_page of Capability.t * Pagepath.t
  | Write_page of Capability.t * Pagepath.t * bytes
  | Insert_page of { version : Capability.t; parent : Pagepath.t; index : int; data : bytes }
  | Remove_page of { version : Capability.t; parent : Pagepath.t; index : int }
  | Page_info of Capability.t * Pagepath.t
  | Commit of Capability.t
  | Abort_version of Capability.t
  | Destroy_file of Capability.t
  | Validate_cache of { file : Capability.t; basis_block : int }
  (* Cross-shard transaction messages (lib/txn). The first two exist so a
     resolver can see past the cluster wrapper's in-doubt trap: Txn_mark
     reads the file's current root data (marker and all), Txn_open is
     Create_version minus the trap. Prepare/Decide drive the server's
     two-phase-commit baseline. *)
  | Txn_mark of Capability.t
  | Txn_open of { file : Capability.t; reads : Pagepath.t list }
  | Txn_seal of { version : Capability.t; root : bytes; writes : (Pagepath.t * bytes) list }
  | Txn_cas of {
      file : Capability.t;
      expected : bytes;
      root : bytes;
      writes : (Pagepath.t * bytes) list;
    }
  | Prepare of Capability.t
  | Decide of { version : Capability.t; commit : bool }
  (* Replication-plane messages, answered only by a replica host
     (lib/replica); a plain file server rejects them. *)
  | Ship of { epoch : int; seq : int; ops : Afs_core.Store.op list }
  | Promote of { expected_epoch : int }
  | Replica_watermark

type value =
  | Cap of Capability.t
  | Data of bytes
  | Opened of { version : Capability.t; root : bytes; pages : bytes list }
  | Unit
  | Path of Pagepath.t
  | Info of { nrefs : int; dsize : int }
  | Validation of Cache.validation
  | Watermark of { epoch : int; shipped : int; applied : int }

type response = (value, Errors.t) result

let handle server : request -> response = function
  | Create_file data -> Result.map (fun c -> Cap c) (Server.create_file server ~data ())
  | Current_version file -> Result.map (fun c -> Cap c) (Server.current_version server file)
  | Create_version { file; respect_hints; updater_port } ->
      Result.map (fun c -> Cap c) (Server.create_version ~respect_hints ~updater_port server file)
  | Read_page (version, path) ->
      Result.map (fun d -> Data d) (Server.read_page server version path)
  | Write_page (version, path, data) ->
      Result.map (fun () -> Unit) (Server.write_page server version path data)
  | Insert_page { version; parent; index; data } ->
      Result.map (fun p -> Path p) (Server.insert_page server version ~parent ~index ~data ())
  | Remove_page { version; parent; index } ->
      Result.map (fun () -> Unit) (Server.remove_page server version ~parent ~index)
  | Page_info (version, path) ->
      Result.map
        (fun (i : Server.page_info) -> Info { nrefs = i.Server.nrefs; dsize = i.Server.dsize })
        (Server.page_info server version path)
  | Commit version -> Result.map (fun () -> Unit) (Server.commit server version)
  | Abort_version version -> Result.map (fun () -> Unit) (Server.abort_version server version)
  | Destroy_file file -> Result.map (fun () -> Unit) (Server.destroy_file server file)
  | Validate_cache { file; basis_block } ->
      Result.map (fun v -> Validation v) (Cache.server_validate server ~file ~basis_block)
  | Txn_mark file ->
      Result.bind (Server.current_version server file) (fun version ->
          Result.map (fun d -> Data d) (Server.read_page server version Pagepath.root))
  | Txn_open { file; reads } ->
      (* One message opens the version, reads its root AND the listed
         pages: every read runs inside the fresh version, so all of them
         land in its read set and any conflicting committed update
         collides with the caller's seal — same fences as separate
         calls, a fraction of the round trips. *)
      Result.bind (Server.create_version server file) (fun version ->
          let abandon e =
            ignore (Server.abort_version server version : unit Errors.r);
            Error e
          in
          match Server.read_page server version Pagepath.root with
          | Error e -> abandon e
          | Ok root ->
              let rec fetch acc = function
                | [] -> Ok (Opened { version; root; pages = List.rev acc })
                | path :: rest -> (
                    match Server.read_page server version path with
                    | Ok data -> fetch (data :: acc) rest
                    | Error e -> abandon e)
              in
              fetch [] reads)
  | Txn_seal { version; root; writes } ->
      (* The counterpart: root write, staged page writes and the ordinary
         optimistic commit in a single message. Pure batching — the
         validation semantics are exactly those of the individual calls. *)
      Result.bind (Server.write_page server version Pagepath.root root) (fun () ->
          Result.bind
            (List.fold_left
               (fun acc (path, data) ->
                 Result.bind acc (fun () -> Server.write_page server version path data))
               (Ok ()) writes)
            (fun () -> Result.map (fun () -> Unit) (Server.commit server version)))
  | Txn_cas { file; expected; root; writes } ->
      (* Open-read-compare-seal as one message: a whole root test-and-set
         in a single round trip. Still an ordinary optimistic commit with
         its ordinary flag map — only the comparison is new, and on
         mismatch the caller gets the current root back in the same
         breath, so losing the race costs no extra message. *)
      Result.bind (Server.create_version server file) (fun version ->
          let abandon e =
            ignore (Server.abort_version server version : unit Errors.r);
            Error e
          in
          match Server.read_page server version Pagepath.root with
          | Error e -> abandon e
          | Ok current ->
              if not (Bytes.equal current expected) then begin
                ignore (Server.abort_version server version : unit Errors.r);
                Ok (Data current)
              end
              else
                Result.bind (Server.write_page server version Pagepath.root root)
                  (fun () ->
                    Result.bind
                      (List.fold_left
                         (fun acc (path, data) ->
                           Result.bind acc (fun () ->
                               Server.write_page server version path data))
                         (Ok ()) writes)
                      (fun () -> Result.map (fun () -> Unit) (Server.commit server version))))
  | Prepare version -> Result.map (fun () -> Unit) (Server.prepare server version)
  | Decide { version; commit = decision } ->
      Result.map (fun () -> Unit) (Server.decide server version ~commit:decision)
  | Ship _ | Promote _ | Replica_watermark ->
      Error (Errors.Store_failure "rpc: not a replica")

let request_kind : request -> string = function
  | Create_file _ -> "create_file"
  | Current_version _ -> "current_version"
  | Create_version _ -> "create_version"
  | Read_page _ -> "read_page"
  | Write_page _ -> "write_page"
  | Insert_page _ -> "insert_page"
  | Remove_page _ -> "remove_page"
  | Page_info _ -> "page_info"
  | Commit _ -> "commit"
  | Abort_version _ -> "abort_version"
  | Destroy_file _ -> "destroy_file"
  | Validate_cache _ -> "validate_cache"
  | Txn_mark _ -> "txn_mark"
  | Txn_open _ -> "txn_open"
  | Txn_seal _ -> "txn_seal"
  | Txn_cas _ -> "txn_cas"
  | Prepare _ -> "prepare"
  | Decide _ -> "decide"
  | Ship _ -> "ship"
  | Promote _ -> "promote"
  | Replica_watermark -> "replica_watermark"

type host = { rpc : (request, response) Rpc.t; server : Server.t }

let host ?latency_ms ?proc_ms ?disks ?wrap engine ~name server =
  let handler =
    match wrap with None -> handle server | Some w -> w (handle server)
  in
  (* The server's group-commit window turns into an RPC batcher: queued
     Commit requests drain together and run through one
     [Server.commit_batch] pipeline, paying the request overheads and the
     stable-storage publish leg once per batch. Commit carries its own
     capability, so it needs none of [wrap]'s routing checks (shard
     wrappers pass it through untouched). *)
  let batching =
    let window = Server.group_commit server in
    if window <= 1 then None
    else
      Some
        {
          Rpc.window;
          batchable = (function Commit _ -> true | _ -> false);
          handle_batch =
            (fun reqs ->
              let caps =
                List.filter_map (function Commit cap -> Some cap | _ -> None) reqs
              in
              List.map
                (fun r -> Result.map (fun () -> Unit) r)
                (Server.commit_batch server caps));
        }
  in
  {
    rpc =
      Rpc.serve ?latency_ms ?proc_ms ?disks ?batching ~describe:request_kind engine ~name
        ~handler;
    server;
  }

let crash_host h =
  Rpc.crash h.rpc;
  Server.crash h.server

let restart_host h = Rpc.restart h.rpc
let host_server h = h.server
let host_up h = Rpc.is_up h.rpc

type conn = { hosts : host array; balance : bool; mutable preferred : int }

let connect ?(balance = false) hosts =
  if hosts = [] then invalid_arg "Remote.connect: no hosts";
  { hosts = Array.of_list hosts; balance; preferred = 0 }

(* Without [balance], requests start from the last host that answered
   (sticky failover: a client that timed out on its primary does not pay
   that timeout again on every subsequent request). With it, transactions
   rotate across live hosts — "several servers can serve the same store",
   any of which may carry out any commit (§5.2) — but only at version
   boundaries: a version's operations stay with its managing server, whose
   write-back cache holds the uncommitted pages until the commit-time
   flush. *)
let rotates_boundary = function
  | Create_file _ | Create_version _ | Current_version _ | Txn_mark _ | Txn_open _
  | Txn_cas _ ->
      true
  | Read_page _ | Write_page _ | Insert_page _ | Remove_page _ | Page_info _ | Commit _
  | Abort_version _ | Destroy_file _ | Validate_cache _ | Txn_seal _ | Prepare _
  | Decide _ | Ship _ | Promote _ | Replica_watermark ->
      false

let call conn req =
  let n = Array.length conn.hosts in
  let start =
    if conn.balance && rotates_boundary req then begin
      conn.preferred <- (conn.preferred + 1) mod n;
      conn.preferred
    end
    else conn.preferred
  in
  let rec try_hosts attempt =
    if attempt >= n then Error (Errors.Store_failure "rpc: no server responded")
    else begin
      let idx = (start + attempt) mod n in
      match Rpc.call conn.hosts.(idx).rpc req with
      | Ok response ->
          conn.preferred <- idx;
          response
      | Error (Rpc.Timeout | Rpc.Server_crashed) -> try_hosts (attempt + 1)
    end
  in
  try_hosts 0

let type_error = Error (Errors.Store_failure "rpc: response type mismatch")

let as_cap = function Ok (Cap c) -> Ok c | Ok _ -> type_error | Error e -> Error e
let as_data = function Ok (Data d) -> Ok d | Ok _ -> type_error | Error e -> Error e
let as_unit = function Ok Unit -> Ok () | Ok _ -> type_error | Error e -> Error e
let as_path = function Ok (Path p) -> Ok p | Ok _ -> type_error | Error e -> Error e

let as_validation = function
  | Ok (Validation v) -> Ok v
  | Ok _ -> type_error
  | Error e -> Error e

let create_file conn data = as_cap (call conn (Create_file data))
let current_version conn file = as_cap (call conn (Current_version file))

let create_version ?(respect_hints = false) ?(updater_port = 0) conn file =
  as_cap (call conn (Create_version { file; respect_hints; updater_port }))

let read_page conn version path = as_data (call conn (Read_page (version, path)))
let write_page conn version path data = as_unit (call conn (Write_page (version, path, data)))

let insert_page conn version ~parent ~index ~data =
  as_path (call conn (Insert_page { version; parent; index; data }))

let remove_page conn version ~parent ~index =
  as_unit (call conn (Remove_page { version; parent; index }))

let page_info conn version path =
  match call conn (Page_info (version, path)) with
  | Ok (Info { nrefs; dsize }) -> Ok (nrefs, dsize)
  | Ok _ -> type_error
  | Error e -> Error e

let commit conn version = as_unit (call conn (Commit version))
let abort_version conn version = as_unit (call conn (Abort_version version))
let destroy_file conn file = as_unit (call conn (Destroy_file file))

let validate_cache conn ~file ~basis_block =
  as_validation (call conn (Validate_cache { file; basis_block }))

let txn_mark conn file = as_data (call conn (Txn_mark file))

let txn_open ?(reads = []) conn file =
  match call conn (Txn_open { file; reads }) with
  | Ok (Opened { version; root; pages }) -> Ok (version, root, pages)
  | Ok _ -> type_error
  | Error e -> Error e

let txn_seal conn version ~root writes = as_unit (call conn (Txn_seal { version; root; writes }))

let txn_cas conn file ~expected ~root writes =
  match call conn (Txn_cas { file; expected; root; writes }) with
  | Ok Unit -> Ok `Swapped
  | Ok (Data current) -> Ok (`Mismatch current)
  | Ok _ -> type_error
  | Error e -> Error e
let prepare conn version = as_unit (call conn (Prepare version))
let decide conn version ~commit = as_unit (call conn (Decide { version; commit }))
