module Engine = Afs_sim.Engine
module Ivar = Afs_sim.Ivar
module Disk = Afs_disk.Disk
module Trace = Afs_trace.Trace

type call_error = Timeout | Server_crashed

let pp_call_error ppf = function
  | Timeout -> Fmt.string ppf "timeout"
  | Server_crashed -> Fmt.string ppf "server crashed"

let timeout_ms = 500.0

type ('req, 'resp) pending = {
  req : 'req;
  op : string;
  reply : ('resp, call_error) result Ivar.t;
}

(* Group-commit front end: while the server is busy (one batch in its
   processing/publish window) batchable requests queue; when it frees up,
   up to [window] of them are drained and handed to [handle_batch] as one
   unit, paying the per-request overheads once. *)
type ('req, 'resp) batcher = {
  window : int;  (** Max requests served as one batch; must be >= 1. *)
  batchable : 'req -> bool;
  handle_batch : 'req list -> 'resp list;  (** Same length, same order. *)
}

type ('req, 'resp) t = {
  engine : Engine.t;
  name : string;
  handler : 'req -> 'resp;
  batching : ('req, 'resp) batcher option;
  describe : 'req -> string;
  latency_ms : float;
  proc_ms : float;
  disks : Disk.t list;
  queue : ('req, 'resp) pending Queue.t;
  mutable up : bool;
  mutable busy : bool;
  mutable served : int;
}

let trace t = Engine.trace t.engine

let disks_busy t = List.fold_left (fun acc d -> acc +. (Disk.stats d).Disk.busy_ms) 0.0 t.disks

(* Collect up to [window] batchable requests from the whole queue in FIFO
   order; every other request keeps its position. The commits that queued
   while the previous batch was in flight are exactly the next batch. *)
let drain_batch t (b : _ batcher) first =
  let members = ref [ first ] and n = ref 1 in
  let keep = Queue.create () in
  Queue.iter
    (fun p ->
      if !n < b.window && b.batchable p.req then begin
        members := p :: !members;
        incr n
      end
      else Queue.add p keep)
    t.queue;
  Queue.clear t.queue;
  Queue.transfer keep t.queue;
  List.rev !members

(* Serve queued requests one at a time — or, with a batcher installed, up
   to [window] batchable requests at once — charging processing and
   storage time between accepting the work and delivering the replies. *)
let rec pump t =
  if t.up && not t.busy then
    match Queue.take_opt t.queue with
    | None -> ()
    | Some ({ req; op; reply } as first) -> (
        match t.batching with
        | Some b when b.window > 1 && b.batchable req ->
            let members = drain_batch t b first in
            t.busy <- true;
            let before = disks_busy t in
            let resps = b.handle_batch (List.map (fun p -> p.req) members) in
            let storage = disks_busy t -. before in
            t.served <- t.served + List.length members;
            Engine.at t.engine
              (t.proc_ms +. storage +. t.latency_ms)
              (fun () ->
                let tr = trace t in
                List.iter2
                  (fun p resp ->
                    if Trace.enabled tr then
                      Trace.point tr (Trace.Rpc_recv { server = t.name; op = p.op });
                    ignore (Ivar.try_fill p.reply (Ok resp)))
                  members resps;
                t.busy <- false;
                pump t)
        | _ ->
            t.busy <- true;
            let before = disks_busy t in
            let resp = t.handler req in
            let storage = disks_busy t -. before in
            t.served <- t.served + 1;
            Engine.at t.engine
              (t.proc_ms +. storage +. t.latency_ms)
              (fun () ->
                let tr = trace t in
                if Trace.enabled tr then
                  Trace.point tr (Trace.Rpc_recv { server = t.name; op });
                ignore (Ivar.try_fill reply (Ok resp));
                t.busy <- false;
                pump t))

let serve ?(latency_ms = 2.0) ?(proc_ms = 0.2) ?(disks = []) ?batching
    ?(describe = fun _ -> "request") engine ~name ~handler =
  {
    engine;
    name;
    handler;
    batching;
    describe;
    latency_ms;
    proc_ms;
    disks;
    queue = Queue.create ();
    up = true;
    busy = false;
    served = 0;
  }

let call t req =
  let reply = Ivar.create () in
  let tr = trace t in
  let op = if Trace.enabled tr then t.describe req else "" in
  if Trace.enabled tr then Trace.point tr (Trace.Rpc_send { server = t.name; op });
  let fail_after delay err =
    Engine.at t.engine delay (fun () ->
        if Ivar.try_fill reply (Error err) && Trace.enabled tr then
          Trace.point tr (Trace.Rpc_timeout { server = t.name; op }))
  in
  if not t.up then begin
    (* Nothing is listening: the transaction times out. *)
    fail_after timeout_ms Timeout;
    Ivar.read reply
  end
  else begin
    Engine.at t.engine t.latency_ms (fun () ->
        if t.up then begin
          Queue.add { req; op; reply } t.queue;
          pump t
        end
        else fail_after timeout_ms Server_crashed);
    Ivar.read reply
  end

let crash t =
  t.up <- false;
  t.busy <- false;
  let tr = trace t in
  if Trace.enabled tr then
    Trace.point tr (Trace.Crash { component = t.name; what = "crash" });
  let doomed = Queue.to_seq t.queue |> List.of_seq in
  Queue.clear t.queue;
  List.iter
    (fun { op; reply; _ } ->
      Engine.at t.engine timeout_ms (fun () ->
          if Ivar.try_fill reply (Error Server_crashed) && Trace.enabled tr then
            Trace.point tr (Trace.Rpc_timeout { server = t.name; op })))
    doomed

let restart t =
  t.up <- true;
  let tr = trace t in
  if Trace.enabled tr then
    Trace.point tr (Trace.Crash { component = t.name; what = "restart" })

let name t = t.name

let is_up t = t.up
let requests_served t = t.served
