module Engine = Afs_sim.Engine
module Ivar = Afs_sim.Ivar
module Disk = Afs_disk.Disk
module Trace = Afs_trace.Trace

type call_error = Timeout | Server_crashed

let pp_call_error ppf = function
  | Timeout -> Fmt.string ppf "timeout"
  | Server_crashed -> Fmt.string ppf "server crashed"

let timeout_ms = 500.0

type ('req, 'resp) pending = {
  req : 'req;
  op : string;
  reply : ('resp, call_error) result Ivar.t;
}

type ('req, 'resp) t = {
  engine : Engine.t;
  name : string;
  handler : 'req -> 'resp;
  describe : 'req -> string;
  latency_ms : float;
  proc_ms : float;
  disks : Disk.t list;
  queue : ('req, 'resp) pending Queue.t;
  mutable up : bool;
  mutable busy : bool;
  mutable served : int;
}

let trace t = Engine.trace t.engine

let disks_busy t = List.fold_left (fun acc d -> acc +. (Disk.stats d).Disk.busy_ms) 0.0 t.disks

(* Serve queued requests one at a time, charging processing and storage
   time between accepting a request and delivering its reply. *)
let rec pump t =
  if t.up && not t.busy then
    match Queue.take_opt t.queue with
    | None -> ()
    | Some { req; op; reply } ->
        t.busy <- true;
        let before = disks_busy t in
        let resp = t.handler req in
        let storage = disks_busy t -. before in
        t.served <- t.served + 1;
        Engine.at t.engine
          (t.proc_ms +. storage +. t.latency_ms)
          (fun () ->
            let tr = trace t in
            if Trace.enabled tr then
              Trace.point tr (Trace.Rpc_recv { server = t.name; op });
            ignore (Ivar.try_fill reply (Ok resp));
            t.busy <- false;
            pump t)

let serve ?(latency_ms = 2.0) ?(proc_ms = 0.2) ?(disks = []) ?(describe = fun _ -> "request")
    engine ~name ~handler =
  {
    engine;
    name;
    handler;
    describe;
    latency_ms;
    proc_ms;
    disks;
    queue = Queue.create ();
    up = true;
    busy = false;
    served = 0;
  }

let call t req =
  let reply = Ivar.create () in
  let tr = trace t in
  let op = if Trace.enabled tr then t.describe req else "" in
  if Trace.enabled tr then Trace.point tr (Trace.Rpc_send { server = t.name; op });
  let fail_after delay err =
    Engine.at t.engine delay (fun () ->
        if Ivar.try_fill reply (Error err) && Trace.enabled tr then
          Trace.point tr (Trace.Rpc_timeout { server = t.name; op }))
  in
  if not t.up then begin
    (* Nothing is listening: the transaction times out. *)
    fail_after timeout_ms Timeout;
    Ivar.read reply
  end
  else begin
    Engine.at t.engine t.latency_ms (fun () ->
        if t.up then begin
          Queue.add { req; op; reply } t.queue;
          pump t
        end
        else fail_after timeout_ms Server_crashed);
    Ivar.read reply
  end

let crash t =
  t.up <- false;
  t.busy <- false;
  let tr = trace t in
  if Trace.enabled tr then
    Trace.point tr (Trace.Crash { component = t.name; what = "crash" });
  let doomed = Queue.to_seq t.queue |> List.of_seq in
  Queue.clear t.queue;
  List.iter
    (fun { op; reply; _ } ->
      Engine.at t.engine timeout_ms (fun () ->
          if Ivar.try_fill reply (Error Server_crashed) && Trace.enabled tr then
            Trace.point tr (Trace.Rpc_timeout { server = t.name; op })))
    doomed

let restart t =
  t.up <- true;
  let tr = trace t in
  if Trace.enabled tr then
    Trace.point tr (Trace.Crash { component = t.name; what = "restart" })

let name t = t.name

let is_up t = t.up
let requests_served t = t.served
