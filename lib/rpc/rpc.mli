(** Transaction-style request/reply RPC over the simulation engine.

    Amoeba's primitive is the transaction: a client sends a request of at
    most 32K bytes to a service port and blocks for the reply. This module
    gives that shape to any [('req, 'resp)] handler and adds the two
    failure modes the paper's protocols must tolerate: a server crash
    (pending and future requests fail after a timeout) and plain latency.

    Handlers run atomically within one simulated event — a server process
    serves one request at a time, so concurrent clients interleave at
    request granularity, which is exactly the serialisation the real
    Amoeba server loop provides. *)

type ('req, 'resp) t

type call_error = Timeout | Server_crashed

val pp_call_error : call_error Fmt.t

type ('req, 'resp) batcher = {
  window : int;  (** Max requests served as one batch; must be >= 1. *)
  batchable : 'req -> bool;
  handle_batch : 'req list -> 'resp list;
      (** Must return one response per request, in order. *)
}
(** Group-commit front end. While the server is busy, batchable requests
    queue like any other; when it frees up, up to [window] of them are
    drained from the queue (FIFO among themselves, non-batchable requests
    keep their positions) and handed to [handle_batch] as one unit,
    charging [proc_ms], storage growth and the reply latency once for
    the whole batch. With [window = 1] or no batcher, behaviour is
    exactly the one-request-at-a-time loop. *)

val serve :
  ?latency_ms:float ->
  ?proc_ms:float ->
  ?disks:Afs_disk.Disk.t list ->
  ?batching:('req, 'resp) batcher ->
  ?describe:('req -> string) ->
  Afs_sim.Engine.t ->
  name:string ->
  handler:('req -> 'resp) ->
  ('req, 'resp) t
(** [latency_ms] is charged each way per message; [proc_ms] per request of
    server CPU; if [disks] are given, the growth of their busy time during
    the handler is charged as well, so storage latency shows up in client
    round trips. [describe] labels requests in trace events (only called
    when the engine's trace is enabled). *)

val call : ('req, 'resp) t -> 'req -> ('resp, call_error) result
(** Must run inside a {!Afs_sim.Proc} process. Blocks for the reply. *)

val crash : ('req, 'resp) t -> unit
(** The server process dies: queued and in-flight requests fail with
    [Server_crashed] (after the client-side timeout), later calls fail
    with [Timeout]. *)

val restart : ('req, 'resp) t -> unit
(** Bring the server back (its handler state is whatever the underlying
    service says it is — volatile loss is the service's business). *)

val name : ('req, 'resp) t -> string
(** The label given at {!serve} time; for logs and reports. *)

val is_up : ('req, 'resp) t -> bool

val requests_served : ('req, 'resp) t -> int

val timeout_ms : float
(** Client-side request timeout against a dead server. *)
