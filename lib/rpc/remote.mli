(** The file service as a remote service: a request ADT over {!Rpc}, a
    host wrapper around a {!Afs_core.Server}, and a client stub with
    failover.

    A client connection holds an ordered list of hosts; when one fails to
    respond it retries the request at the next ("Clients do not have to
    wait until the server is restored, because they can use another
    server", §3.1 — several servers can serve the same store). *)

type request =
  | Create_file of bytes
  | Current_version of Afs_util.Capability.t
  | Create_version of {
      file : Afs_util.Capability.t;
      respect_hints : bool;
      updater_port : int;
    }
  | Read_page of Afs_util.Capability.t * Afs_util.Pagepath.t
  | Write_page of Afs_util.Capability.t * Afs_util.Pagepath.t * bytes
  | Insert_page of {
      version : Afs_util.Capability.t;
      parent : Afs_util.Pagepath.t;
      index : int;
      data : bytes;
    }
  | Remove_page of { version : Afs_util.Capability.t; parent : Afs_util.Pagepath.t; index : int }
  | Page_info of Afs_util.Capability.t * Afs_util.Pagepath.t
  | Commit of Afs_util.Capability.t
  | Abort_version of Afs_util.Capability.t
  | Destroy_file of Afs_util.Capability.t
  | Validate_cache of { file : Afs_util.Capability.t; basis_block : int }
  | Txn_mark of Afs_util.Capability.t
      (** The file's current root data, marker and all: how a transaction
          resolver sees past the cluster wrapper's in-doubt trap (the
          wrapper still answers [Moved] for migrated-away files). *)
  | Txn_open of { file : Afs_util.Capability.t; reads : Afs_util.Pagepath.t list }
      (** [Create_version] minus the in-doubt trap, fused with the root
          read and the listed page reads: answers [Opened]. All reads run
          inside the fresh version (so they are in its read set), and the
          cluster wrapper still applies the [Moved] check. *)
  | Txn_seal of {
      version : Afs_util.Capability.t;
      root : bytes;
      writes : (Afs_util.Pagepath.t * bytes) list;
    }
      (** Root write, page writes and the ordinary optimistic commit in
          one message — pure batching of the individual calls, with their
          exact validation semantics. *)
  | Txn_cas of {
      file : Afs_util.Capability.t;
      expected : bytes;
      root : bytes;
      writes : (Afs_util.Pagepath.t * bytes) list;
    }
      (** A whole root test-and-set in one round trip: open a version,
          read the root, and — iff it equals [expected] — write [root]
          plus [writes] and commit. On mismatch the current root data
          comes back instead. Still an ordinary optimistic commit;
          bypasses the cluster wrapper's in-doubt trap like [Txn_open]. *)
  | Prepare of Afs_util.Capability.t  (** {!Afs_core.Server.prepare}. *)
  | Decide of { version : Afs_util.Capability.t; commit : bool }
      (** {!Afs_core.Server.decide}. *)
  | Ship of { epoch : int; seq : int; ops : Afs_core.Store.op list }
      (** One commit-stream batch for a replica to apply; rejected by a
          plain file server. Local replica sets feed directly through the
          publish gate — this message is the wire form for a replica
          hosted behind its own RPC endpoint. *)
  | Promote of { expected_epoch : int }
      (** Test-and-set on the replica's epoch register: wins (and the
          replica becomes promotable) iff its current epoch is exactly
          [expected_epoch]. *)
  | Replica_watermark  (** Read back epoch and shipped/applied seqs. *)

val request_kind : request -> string
(** Short operation name, used as the [op] label in RPC trace events. *)

type value =
  | Cap of Afs_util.Capability.t
  | Data of bytes
  | Opened of {
      version : Afs_util.Capability.t;
      root : bytes;
      pages : bytes list;  (** Aligned with the request's [reads]. *)
    }
  | Unit
  | Path of Afs_util.Pagepath.t
  | Info of { nrefs : int; dsize : int }
  | Validation of Afs_core.Cache.validation
  | Watermark of { epoch : int; shipped : int; applied : int }

type response = (value, Afs_core.Errors.t) result

val handle : Afs_core.Server.t -> request -> response
(** The host-side dispatch, exposed so layers above (the cluster) can wrap
    it with their own checks while reusing the request vocabulary. *)

type host

val host :
  ?latency_ms:float ->
  ?proc_ms:float ->
  ?disks:Afs_disk.Disk.t list ->
  ?wrap:((request -> response) -> request -> response) ->
  Afs_sim.Engine.t ->
  name:string ->
  Afs_core.Server.t ->
  host
(** [wrap] interposes on the host's handler (it receives the base
    {!handle} applied to the server). The whole wrapped handler still runs
    atomically within one simulated event, so a wrapper's pre/post work is
    indivisible from the request it decorates — the property the cluster's
    location check depends on. *)

val crash_host : host -> unit
(** RPC endpoint dies and the server loses its volatile state (page cache,
    uncommitted-version table). *)

val restart_host : host -> unit
val host_server : host -> Afs_core.Server.t
val host_up : host -> bool

type conn

val connect : ?balance:bool -> host list -> conn
(** At least one host. Requests go to the first responsive host, sticky
    after a failover; with [balance] they rotate round-robin across hosts
    instead — several servers serving the same store, any of which may
    carry out any commit (§5.2). *)

(** {2 Stub operations — must run inside a simulation process} *)

val create_file : conn -> bytes -> Afs_util.Capability.t Afs_core.Errors.r
val current_version : conn -> Afs_util.Capability.t -> Afs_util.Capability.t Afs_core.Errors.r

val create_version :
  ?respect_hints:bool -> ?updater_port:int -> conn -> Afs_util.Capability.t ->
  Afs_util.Capability.t Afs_core.Errors.r

val read_page :
  conn -> Afs_util.Capability.t -> Afs_util.Pagepath.t -> bytes Afs_core.Errors.r

val write_page :
  conn -> Afs_util.Capability.t -> Afs_util.Pagepath.t -> bytes -> unit Afs_core.Errors.r

val insert_page :
  conn -> Afs_util.Capability.t -> parent:Afs_util.Pagepath.t -> index:int -> data:bytes ->
  Afs_util.Pagepath.t Afs_core.Errors.r

val remove_page :
  conn -> Afs_util.Capability.t -> parent:Afs_util.Pagepath.t -> index:int ->
  unit Afs_core.Errors.r

val page_info :
  conn -> Afs_util.Capability.t -> Afs_util.Pagepath.t -> (int * int) Afs_core.Errors.r
(** [(nrefs, dsize)] of the page — structure discovery without recording
    any access flags (the migration copy walk uses it). *)

val commit : conn -> Afs_util.Capability.t -> unit Afs_core.Errors.r
val abort_version : conn -> Afs_util.Capability.t -> unit Afs_core.Errors.r
val destroy_file : conn -> Afs_util.Capability.t -> unit Afs_core.Errors.r

val validate_cache :
  conn -> file:Afs_util.Capability.t -> basis_block:int ->
  Afs_core.Cache.validation Afs_core.Errors.r

val txn_mark : conn -> Afs_util.Capability.t -> bytes Afs_core.Errors.r
(** May answer [Moved] behind a cluster wrapper — callers chase it. *)

val txn_open :
  ?reads:Afs_util.Pagepath.t list ->
  conn -> Afs_util.Capability.t ->
  (Afs_util.Capability.t * bytes * bytes list) Afs_core.Errors.r
(** A fresh version, its root data and the [reads] pages (in order) in one
    message; every read runs inside the version, so a conflicting
    committed update collides with this caller's seal. May answer [Moved]
    behind a cluster wrapper — callers chase it. *)

val txn_seal :
  conn -> Afs_util.Capability.t -> root:bytes ->
  (Afs_util.Pagepath.t * bytes) list -> unit Afs_core.Errors.r
(** Root write, page writes and the ordinary optimistic commit in one
    message — pure batching of the individual calls. *)

val txn_cas :
  conn -> Afs_util.Capability.t -> expected:bytes -> root:bytes ->
  (Afs_util.Pagepath.t * bytes) list ->
  [ `Swapped | `Mismatch of bytes ] Afs_core.Errors.r
(** Root test-and-set in one round trip (see {!type:request}); [`Mismatch]
    carries the current root data. May answer [Moved] behind a cluster
    wrapper — callers chase it. *)

val prepare : conn -> Afs_util.Capability.t -> unit Afs_core.Errors.r
val decide : conn -> Afs_util.Capability.t -> commit:bool -> unit Afs_core.Errors.r
