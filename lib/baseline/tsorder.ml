module Stats = Afs_util.Stats
module Trace = Afs_trace.Trace

type version = { wts : int; mutable rts : int; data : bytes }

(* Newest first. An implicit initial version (wts = 0, empty) exists for
   every object. *)
type history = { mutable versions : version list }

type txn = {
  ts : int;
  mutable active : bool;
  mutable buffered : (int * bytes) list;  (** Reverse write order. *)
}

type t = {
  objects : (int, history) Hashtbl.t;
  counters : Stats.Counter.t;
  mutable next_ts : int;
  trace : Trace.t;
}

let create ?(trace = Trace.null) () =
  {
    objects = Hashtbl.create 1024;
    counters = Stats.Counter.create ();
    next_ts = 1;
    trace;
  }

let bump t name = Stats.Counter.incr t.counters name

(* Late operations are MVTO's analogue of lock denials: the moment a
   transaction discovers it has lost the timestamp race. *)
let note_late t ~kind ~obj ~ts ~blocker =
  if Trace.enabled t.trace then
    Trace.point t.trace
      (Trace.Generic
         {
           kind;
           fields = [ ("obj", Trace.Int obj); ("ts", Trace.Int ts); ("blocker", Trace.Int blocker) ];
         })

let begin_ t =
  let txn = { ts = t.next_ts; active = true; buffered = [] } in
  t.next_ts <- t.next_ts + 1;
  bump t "txn.begun";
  txn

let timestamp_of txn = txn.ts
let is_active txn = txn.active

let history_of t obj =
  match Hashtbl.find_opt t.objects obj with
  | Some h -> h
  | None ->
      let h = { versions = [ { wts = 0; rts = 0; data = Bytes.empty } ] } in
      Hashtbl.replace t.objects obj h;
      h

(* The committed version current at [ts]: the one with the largest write
   timestamp not exceeding it. *)
let version_at h ts = List.find_opt (fun v -> v.wts <= ts) h.versions

let read t txn ~obj =
  assert txn.active;
  (* Read-your-own-writes from the buffer first. *)
  match List.assoc_opt obj txn.buffered with
  | Some data ->
      bump t "op.read";
      Ok (Bytes.copy data)
  | None -> (
      let h = history_of t obj in
      match version_at h txn.ts with
      | None ->
          note_late t ~kind:"ts.late_read" ~obj ~ts:txn.ts ~blocker:0;
          Error `Late_read
      | Some v ->
          if txn.ts > v.rts then v.rts <- txn.ts;
          bump t "op.read";
          Ok (Bytes.copy v.data))

(* A write at [ts] is too late when some transaction with a timestamp
   greater than [ts] has already read the version this write would have
   superseded. *)
let write_allowed h ts =
  match version_at h ts with
  | None -> Error (`Late_write 0)
  | Some v -> if v.rts > ts then Error (`Late_write v.rts) else Ok ()

let write t txn ~obj data =
  assert txn.active;
  let h = history_of t obj in
  match write_allowed h txn.ts with
  | Error (`Late_write blocker) ->
      note_late t ~kind:"ts.late_write" ~obj ~ts:txn.ts ~blocker;
      bump t "op.write_late";
      Error (`Late_write blocker)
  | Ok () ->
      txn.buffered <- (obj, Bytes.copy data) :: txn.buffered;
      bump t "op.write";
      Ok ()

let abort t txn =
  if txn.active then begin
    txn.active <- false;
    bump t "txn.aborted"
  end

let install h ts data =
  let newer, older = List.partition (fun v -> v.wts > ts) h.versions in
  h.versions <- newer @ ({ wts = ts; rts = ts; data = Bytes.copy data } :: older)

let commit t txn =
  assert txn.active;
  (* Revalidate every buffered write: read stamps may have advanced. *)
  let writes = List.rev txn.buffered in
  let rec check = function
    | [] -> Ok ()
    | (obj, _) :: rest -> (
        match write_allowed (history_of t obj) txn.ts with
        | Error e -> Error e
        | Ok () -> check rest)
  in
  match check writes with
  | Error (`Late_write blocker as e) ->
      note_late t ~kind:"ts.late_write" ~obj:0 ~ts:txn.ts ~blocker;
      abort t txn;
      bump t "txn.late_at_commit";
      Error e
  | Ok () ->
      List.iter (fun (obj, data) -> install (history_of t obj) txn.ts data) writes;
      txn.active <- false;
      bump t "txn.committed";
      Ok ()

let value t ~obj =
  let h = history_of t obj in
  match h.versions with v :: _ -> Bytes.copy v.data | [] -> Bytes.empty

let versions_retained t ~obj = List.length (history_of t obj).versions

let truncate_history t ~keep =
  Hashtbl.iter
    (fun _ h -> h.versions <- List.filteri (fun i _ -> i < keep) h.versions)
    t.objects

let stats t = Stats.Counter.to_list t.counters
