(** A SWALLOW-style multiversion timestamp-ordering store (paper §3:
    Reed 1978/1981) — the second comparison baseline.

    Every transaction is stamped with a pseudo-time at [begin_]; every
    object keeps a history of committed versions, each with its write
    timestamp and the largest read timestamp that observed it. Reads at
    time [ts] return the version current at [ts] and advance its read
    stamp; a write at [ts] aborts if a transaction with a later timestamp
    already read the state the write would supersede (a "late write").
    Writes are buffered and installed at commit, which revalidates.

    Unlike locking there is no waiting — conflicts abort immediately — and
    unlike the optimistic scheme the abort can strike on first touch even
    when a redo would have been cheap. *)

type t

type txn

val create : ?trace:Afs_trace.Trace.t -> unit -> t
(** With a [trace], late reads and writes emit [ts.late_read]/[ts.late_write]
    events naming the object, the losing timestamp and the blocker. *)

val begin_ : t -> txn
val timestamp_of : txn -> int
val is_active : txn -> bool

val read : t -> txn -> obj:int -> (bytes, [ `Late_read ]) result
(** Never fails in basic MVTO (a read always finds a version — empty bytes
    before the first write); the error case is reserved for bounded
    history: reading earlier than the oldest retained version. *)

val write : t -> txn -> obj:int -> bytes -> (unit, [ `Late_write of int ]) result
(** [`Late_write rts] reports the read timestamp that killed it. *)

val commit : t -> txn -> (unit, [ `Late_write of int ]) result
val abort : t -> txn -> unit

val value : t -> obj:int -> bytes
(** Latest committed state. *)

val versions_retained : t -> obj:int -> int

val truncate_history : t -> keep:int -> unit
(** Drop all but the newest [keep] versions of every object. *)

val stats : t -> (string * int) list
