module Stats = Afs_util.Stats
module Trace = Afs_trace.Trace

type denial = { holder : int; vulnerable : bool }

type outcome = [ `Ok | `Denied of denial | `Aborted ]

type lock_state = {
  mutable readers : (int * float) list;  (** (txn id, acquired-at). *)
  mutable iwriter : (int * float) option;
  mutable commit_holder : int option;
  (* A committer waiting for existing readers to drain; blocks new
     readers so the commit cannot starve. *)
  mutable commit_pending : int option;
}

type txn_state = {
  id : int;
  mutable active : bool;
  mutable read_set : int list;
  mutable intentions : (int * bytes) list;  (** Reverse order of writes. *)
  mutable last_op_at : float;
}

type t = {
  clock : unit -> float;
  vulnerable_after_ms : float;
  data : (int, bytes) Hashtbl.t;
  locks : (int, lock_state) Hashtbl.t;
  txns : (int, txn_state) Hashtbl.t;
  counters : Stats.Counter.t;
  mutable next_txn : int;
  mutable up : bool;
  (* A durably-logged intentions list whose application was interrupted by
     a crash; recovery replays it. *)
  mutable interrupted : (int * bytes) list;
  trace : Trace.t;
}

type txn = txn_state

let create ?(vulnerable_after_ms = 50.0) ?(trace = Trace.null) ~clock () =
  {
    clock;
    vulnerable_after_ms;
    data = Hashtbl.create 1024;
    locks = Hashtbl.create 1024;
    txns = Hashtbl.create 64;
    counters = Stats.Counter.create ();
    next_txn = 1;
    up = true;
    interrupted = [];
    trace;
  }

let bump ?by t name = Stats.Counter.incr ?by t.counters name

let tpoint t payload = if Trace.enabled t.trace then Trace.point t.trace payload

let note_wait t ~obj ~txn ~holder = tpoint t (Trace.Lock_wait { obj; txn; holder })

let note_acquire t ~obj ~txn ~mode = tpoint t (Trace.Lock_acquire { obj; txn; mode })

let begin_ t =
  let txn =
    { id = t.next_txn; active = true; read_set = []; intentions = []; last_op_at = t.clock () }
  in
  t.next_txn <- t.next_txn + 1;
  Hashtbl.replace t.txns txn.id txn;
  bump t "txn.begun";
  txn

let txn_id txn = txn.id
let is_active _t txn = txn.active

let lock_of t obj =
  match Hashtbl.find_opt t.locks obj with
  | Some l -> l
  | None ->
      let l = { readers = []; iwriter = None; commit_holder = None; commit_pending = None } in
      Hashtbl.replace t.locks obj l;
      l

let vulnerable t acquired_at = t.clock () -. acquired_at >= t.vulnerable_after_ms

let denial t ~holder ~acquired_at = { holder; vulnerable = vulnerable t acquired_at }

let self_aborted = { holder = 0; vulnerable = false }

let read t txn ~obj =
  assert t.up;
  if not txn.active then Error self_aborted
  else begin
  txn.last_op_at <- t.clock ();
  let l = lock_of t obj in
  match (l.commit_holder, l.commit_pending) with
  | Some holder, _ when holder <> txn.id ->
      note_wait t ~obj ~txn:txn.id ~holder;
      Error { holder; vulnerable = false }
  | _, Some holder when holder <> txn.id ->
      note_wait t ~obj ~txn:txn.id ~holder;
      Error { holder; vulnerable = false }
  | _, _ ->
      if not (List.mem_assoc txn.id l.readers) then begin
        l.readers <- (txn.id, t.clock ()) :: l.readers;
        txn.read_set <- obj :: txn.read_set;
        note_acquire t ~obj ~txn:txn.id ~mode:"read"
      end;
      bump t "op.read";
      Ok (match Hashtbl.find_opt t.data obj with Some v -> Bytes.copy v | None -> Bytes.empty)
  end

(* Take the intention-write lock without buffering data yet: the update
   lock of a read-modify-write, which avoids the classic read-then-upgrade
   deadlock. *)
let reserve t txn ~obj =
  assert t.up;
  if not txn.active then Error self_aborted
  else begin
    txn.last_op_at <- t.clock ();
    let l = lock_of t obj in
    match (l.commit_holder, l.iwriter) with
    | Some holder, _ when holder <> txn.id ->
        note_wait t ~obj ~txn:txn.id ~holder;
        Error { holder; vulnerable = false }
    | _, Some (holder, at) when holder <> txn.id ->
        note_wait t ~obj ~txn:txn.id ~holder;
        Error (denial t ~holder ~acquired_at:at)
    | _, _ ->
        if l.iwriter = None then begin
          l.iwriter <- Some (txn.id, t.clock ());
          note_acquire t ~obj ~txn:txn.id ~mode:"iwrite"
        end;
        bump t "op.reserve";
        Ok ()
  end

let write t txn ~obj data =
  assert t.up;
  if not txn.active then Error self_aborted
  else begin
  txn.last_op_at <- t.clock ();
  let l = lock_of t obj in
  match (l.commit_holder, l.iwriter) with
  | Some holder, _ when holder <> txn.id ->
      note_wait t ~obj ~txn:txn.id ~holder;
      Error { holder; vulnerable = false }
  | _, Some (holder, at) when holder <> txn.id ->
      note_wait t ~obj ~txn:txn.id ~holder;
      Error (denial t ~holder ~acquired_at:at)
  | _, _ ->
      if l.iwriter = None then begin
        l.iwriter <- Some (txn.id, t.clock ());
        note_acquire t ~obj ~txn:txn.id ~mode:"iwrite"
      end;
      txn.intentions <- (obj, Bytes.copy data) :: txn.intentions;
      bump t "op.write";
      Ok ()
  end

let release_txn_locks t txn =
  let release _obj l =
    l.readers <- List.filter (fun (id, _) -> id <> txn.id) l.readers;
    (match l.iwriter with Some (id, _) when id = txn.id -> l.iwriter <- None | _ -> ());
    (match l.commit_pending with Some id when id = txn.id -> l.commit_pending <- None | _ -> ());
    match l.commit_holder with Some id when id = txn.id -> l.commit_holder <- None | _ -> ()
  in
  Hashtbl.iter release t.locks

let abort t txn =
  if txn.active then begin
    txn.active <- false;
    release_txn_locks t txn;
    Hashtbl.remove t.txns txn.id;
    bump t "txn.aborted"
  end

(* Upgrade all intention-write locks to commit locks; denied if any other
   reader or writer remains on a written object. *)
let upgrade_locks t txn =
  let written = List.sort_uniq compare (List.map fst txn.intentions) in
  (* Claim commit-pending on every written object (kept across denials:
     it blocks new readers while existing ones drain). *)
  let rec claim = function
    | [] -> Ok ()
    | obj :: rest -> (
        let l = lock_of t obj in
        match (l.commit_holder, l.commit_pending) with
        | Some holder, _ when holder <> txn.id -> Error { holder; vulnerable = false }
        | _, Some holder when holder <> txn.id -> Error { holder; vulnerable = false }
        | _, _ ->
            l.commit_pending <- Some txn.id;
            claim rest)
  in
  let rec drained = function
    | [] -> Ok ()
    | obj :: rest -> (
        let l = lock_of t obj in
        match List.find_opt (fun (id, _) -> id <> txn.id) l.readers with
        | Some (holder, at) -> Error (denial t ~holder ~acquired_at:at)
        | None -> drained rest)
  in
  match claim written with
  | Error _ as e -> e
  | Ok () -> (
      match drained written with
      | Error _ as e -> e
      | Ok () ->
          List.iter
            (fun obj ->
              let l = lock_of t obj in
              l.commit_pending <- None;
              l.commit_holder <- Some txn.id)
            written;
          Ok ())

let apply_intentions t intentions =
  List.iter (fun (obj, data) -> Hashtbl.replace t.data obj (Bytes.copy data)) intentions

let commit t txn =
  assert t.up;
  if not txn.active then Error self_aborted
  else
  match upgrade_locks t txn with
  | Error _ as e -> e
  | Ok () ->
      apply_intentions t (List.rev txn.intentions);
      txn.active <- false;
      release_txn_locks t txn;
      Hashtbl.remove t.txns txn.id;
      bump t "txn.committed";
      Ok ()

let prod ?(by = 0) ?(obj = 0) t ~victim =
  match Hashtbl.find_opt t.txns victim with
  | None -> true (* Already gone; the lock will clear. *)
  | Some txn ->
      if t.clock () -. txn.last_op_at >= t.vulnerable_after_ms then begin
        abort t txn;
        tpoint t (Trace.Lock_steal { obj; txn = by; victim });
        bump t "txn.prodded_out";
        true
      end
      else false

let value t ~obj =
  match Hashtbl.find_opt t.data obj with Some v -> Bytes.copy v | None -> Bytes.empty

(* {2 Crash and recovery} *)

type recovery_stats = {
  locks_cleared : int;
  txns_rolled_back : int;
  intentions_replayed : int;
}

let crash t =
  t.up <- false;
  tpoint t (Trace.Crash { component = "twopl"; what = "crash" })

let crash_mid_commit t txn =
  match upgrade_locks t txn with
  | Error _ as e -> e
  | Ok () ->
      let intentions = List.rev txn.intentions in
      let n = List.length intentions in
      let applied = List.filteri (fun i _ -> i < n / 2) intentions in
      apply_intentions t applied;
      (* The full list was durably logged before application began. *)
      t.interrupted <- intentions;
      t.up <- false;
      tpoint t (Trace.Crash { component = "twopl"; what = "crash" });
      bump t "txn.crashed_mid_commit";
      Ok ()

let recover t =
  let locks_cleared = ref 0 in
  Hashtbl.iter
    (fun _ l ->
      locks_cleared := !locks_cleared + List.length l.readers;
      (match l.iwriter with Some _ -> incr locks_cleared | None -> ());
      (match l.commit_pending with Some _ -> incr locks_cleared | None -> ());
      (match l.commit_holder with Some _ -> incr locks_cleared | None -> ());
      l.readers <- [];
      l.iwriter <- None;
      l.commit_pending <- None;
      l.commit_holder <- None)
    t.locks;
  let txns_rolled_back = Hashtbl.length t.txns in
  Hashtbl.reset t.txns;
  let intentions_replayed = List.length t.interrupted in
  apply_intentions t t.interrupted;
  t.interrupted <- [];
  t.up <- true;
  (* Rollback/replay events appear only when recovery had real work to
     undo or redo — the C2 contrast with AFS, whose recovery never does. *)
  if txns_rolled_back > 0 then tpoint t (Trace.Rollback { txns = txns_rolled_back });
  if intentions_replayed > 0 then
    tpoint t (Trace.Intentions_replay { count = intentions_replayed });
  tpoint t (Trace.Crash { component = "twopl"; what = "recover" });
  bump t "server.recovered";
  { locks_cleared = !locks_cleared; txns_rolled_back; intentions_replayed }

let is_up t = t.up

let stats t = Stats.Counter.to_list t.counters
