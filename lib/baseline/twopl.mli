(** An XDFS-style locking file server (paper §3: Sturgis et al. 1980) —
    the comparison baseline for the C1/C2/C9 experiments.

    Transactions bracket reads and writes; serialisability comes from
    page-grain two-phase locking with XDFS's three lock kinds: shared
    {e read} locks, {e intention-write} locks (compatible with readers;
    writes are buffered on an intentions list), and exclusive {e commit}
    locks taken at commit time while the intentions list is applied.
    Locks held longer than a threshold become {e vulnerable}: a waiter may
    prod the holder, which releases (aborts) if it is quiescent.

    Crash behaviour is the foil to the optimistic design: on a crash the
    server leaves held locks and a possibly half-applied intentions list;
    {!recover} must clear every lock, discard in-flight transactions and
    replay interrupted intention lists before service resumes — work the
    Amoeba design simply does not have. Objects are numbered pages; the
    driver maps (file, page) onto them. *)

type t

type txn

type denial = {
  holder : int;
      (** Transaction id currently in the way; 0 means the requesting
          transaction itself is no longer active (it was prodded out by a
          waiter) and must be redone from scratch. *)
  vulnerable : bool;  (** The holder's lock has passed the threshold. *)
}

type outcome = [ `Ok | `Denied of denial | `Aborted ]

val create :
  ?vulnerable_after_ms:float ->
  ?trace:Afs_trace.Trace.t ->
  clock:(unit -> float) ->
  unit ->
  t
(** [clock] supplies the (simulated) time used for lock vulnerability.
    With a [trace], lock acquisitions, denials and prod-steals emit
    [lock.acquire]/[lock.wait]/[lock.steal] events, and {!recover} emits
    [recovery.rollback]/[recovery.replay] events whenever it had real
    work to undo or redo — the observable contrast with AFS recovery. *)

val begin_ : t -> txn
val txn_id : txn -> int
val is_active : t -> txn -> bool

val read : t -> txn -> obj:int -> (bytes, denial) result
(** Acquire/confirm a read lock and return the committed value (empty
    bytes for never-written objects). *)

val reserve : t -> txn -> obj:int -> (unit, denial) result
(** Acquire the intention-write lock without writing yet: the update lock
    a read-modify-write takes {e before} reading, avoiding the classic
    read-then-upgrade deadlock. *)

val write : t -> txn -> obj:int -> bytes -> (unit, denial) result
(** Acquire an intention-write lock and append to the intentions list. *)

val commit : t -> txn -> (unit, denial) result
(** Upgrade every intention-write lock to a commit lock (denied while
    other readers remain), apply the intentions list, release all locks. *)

val abort : t -> txn -> unit

val prod : ?by:int -> ?obj:int -> t -> victim:int -> bool
(** A waiter prods the holder of a vulnerable lock: if that transaction
    has been idle since the vulnerability threshold it is aborted and the
    prod returns true ("if it is in a state to do so, it releases its
    lock, otherwise it ignores the prod"). [by] and [obj] label the
    resulting [lock.steal] trace event with the prodding transaction and
    the contended object. *)

val value : t -> obj:int -> bytes
(** Committed state, for checking. *)

(** {2 Crash and recovery} *)

type recovery_stats = {
  locks_cleared : int;
  txns_rolled_back : int;
  intentions_replayed : int;
}

val crash : t -> unit
(** Stop service. If a commit was mid-apply, its intentions list stays
    durable and partially applied. *)

val crash_mid_commit : t -> txn -> (unit, denial) result
(** Run the commit's lock upgrades, apply {e half} of the intentions list,
    then crash — the worst case §5.3 contrasts with. *)

val recover : t -> recovery_stats
(** Clear locks, roll back in-flight transactions, finish interrupted
    intention lists, resume service. The returned counts are the units of
    recovery work; the experiment harness prices them in milliseconds. *)

val is_up : t -> bool

val stats : t -> (string * int) list
