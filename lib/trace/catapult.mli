(** Chrome trace-event ("catapult") JSON export and import.

    Exported files open directly in [about://tracing] or Perfetto.
    Rendering uses a fixed field order and fixed float formats, so
    same-seed runs produce byte-identical files. Timestamps are virtual
    milliseconds scaled to the format's microsecond [ts] field. *)

val render_event : Trace.event -> string
(** One event as a single-line JSON object (no trailing separator). *)

type writer
(** Incremental writer for streaming sinks: brackets the event array. *)

val writer : (string -> unit) -> writer
(** [writer write] emits the opening bracket immediately; pass the
    result's {!emit} as the trace's stream callback. *)

val emit : writer -> Trace.event -> unit

val finish : writer -> unit
(** Emit the closing bracket. The underlying channel is the caller's to
    close. *)

val to_string : Trace.event list -> string
(** Render a complete trace document in one call. *)

val parse : string -> (Trace.event list, string) result
(** Import a catapult document, sorted by sequence number. Spans
    round-trip exactly; points come back as {!Trace.Generic} payloads
    with the original kind and scalar fields. Unrecognised phase records
    are skipped. *)
