(** Minimal JSON reader for trace import (plus the string escaper the
    exporter shares). Numbers without a fraction or exponent parse as
    [Int]; everything else as [Float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete document; trailing non-whitespace is an error. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on other shapes. *)

val to_float : t -> float option
(** Numeric coercion: both [Int] and [Float] succeed. *)

val to_int : t -> int option
val to_string : t -> string option

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)
