(* A minimal self-contained JSON reader for trace import. Writing is done
   directly by {!Catapult} (fixed field order, fixed float formats) so the
   exported bytes are canonical; this module only needs to read them — and
   any other well-formed JSON document — back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

type state = { src : string; mutable pos : int }

let error st msg = Error (Printf.sprintf "json: %s at offset %d" msg st.pos)

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c ->
      advance st;
      Ok ()
  | _ -> error st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    Ok value
  end
  else error st (Printf.sprintf "expected %s" word)

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' ->
        advance st;
        Ok (Buffer.contents buf)
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                (* Trace output is ASCII; decode BMP escapes bytewise. *)
                if st.pos + 4 <= String.length st.src then begin
                  let hex = String.sub st.src st.pos 4 in
                  st.pos <- st.pos + 4;
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
                  | Some _ -> Buffer.add_char buf '?'
                  | None -> Buffer.add_char buf '?'
                end
                else Buffer.add_char buf '?'
            | other -> Buffer.add_char buf other);
            go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec run () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        run ()
    | _ -> ()
  in
  run ();
  let text = String.sub st.src start (st.pos - start) in
  let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Ok (Float f)
    | None -> error st (Printf.sprintf "bad number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Ok (Int i)
    | None -> error st (Printf.sprintf "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '"' ->
      advance st;
      Result.map (fun s -> Str s) (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some '[' ->
      advance st;
      parse_array st []
  | Some '{' ->
      advance st;
      parse_object st []
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected %C" c)

and parse_array st acc =
  skip_ws st;
  match peek st with
  | Some ']' ->
      advance st;
      Ok (Arr (List.rev acc))
  | _ -> (
      match parse_value st with
      | Error _ as e -> e
      | Ok v -> (
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              parse_array st (v :: acc)
          | Some ']' ->
              advance st;
              Ok (Arr (List.rev (v :: acc)))
          | _ -> error st "expected ',' or ']'"))

and parse_object st acc =
  skip_ws st;
  match peek st with
  | Some '}' ->
      advance st;
      Ok (Obj (List.rev acc))
  | Some '"' -> (
      advance st;
      match parse_string_body st with
      | Error _ as e -> e
      | Ok key -> (
          skip_ws st;
          match expect st ':' with
          | Error _ as e -> e
          | Ok () -> (
              match parse_value st with
              | Error _ as e -> e
              | Ok v -> (
                  skip_ws st;
                  match peek st with
                  | Some ',' ->
                      advance st;
                      parse_object st ((key, v) :: acc)
                  | Some '}' ->
                      advance st;
                      Ok (Obj (List.rev ((key, v) :: acc)))
                  | _ -> error st "expected ',' or '}'"))))
  | _ -> error st "expected '\"' or '}'"

let parse src =
  let st = { src; pos = 0 } in
  match parse_value st with
  | Error _ as e -> e
  | Ok v ->
      skip_ws st;
      if st.pos = String.length src then Ok v else error st "trailing garbage"

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_string = function Str s -> Some s | _ -> None

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf
