(* Deterministic structured tracing keyed on virtual time.

   The trace never consults a wall clock: [now] is supplied by the owner
   (invariably [Engine.now]), so two runs from the same seed produce the
   same event stream byte for byte. Emission costs no simulated time —
   tracing is pure observation and cannot perturb what it observes. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type payload =
  | Proc_spawn of { proc : string }
  | Proc_resume of { proc : string }
  | Crash of { component : string; what : string }
  | Rpc_send of { server : string; op : string }
  | Rpc_recv of { server : string; op : string }
  | Rpc_timeout of { server : string; op : string }
  | Disk_read of { media : string; block : int; bytes : int; cost_ms : float }
  | Disk_write of { media : string; block : int; bytes : int; cost_ms : float }
  | Block_lock of { block : int; won : bool }
  | Test_and_set of { block : int; won : bool }
  | Commit_phase of { vblock : int; phase : string }
  | Commit_outcome of { vblock : int; outcome : string }
  | Commit_batch of { size : int; winners : int; aborts : int }
  | Cache_validate of { file_obj : int; basis : int; current : int; invalid : int }
  | Cache_drop of { file_obj : int; path : string }
  | Stable_leg of { leg : string; server : int; block : int; cost_ms : float }
  | Lock_acquire of { obj : int; txn : int; mode : string }
  | Lock_wait of { obj : int; txn : int; holder : int }
  | Lock_steal of { obj : int; txn : int; victim : int }
  | Rollback of { txns : int }
  | Intentions_replay of { count : int }
  | Recovered_files of { count : int }
  | Gc_phase of { phase : string; count : int }
  | Ship of { seq : int; ops : int; epoch : int }
  | Ship_apply of { seq : int; ops : int; lag_ms : float }
  | Promote of { shard : int; epoch : int; watermark : int }
  | Fence of { epoch : int; stale : int }
  | Txn_stage of { txn : int; file_obj : int }
  | Txn_decide of { txn : int; committed : bool }
  | Txn_flip of { txn : int; file_obj : int; writes : int }
  | Txn_resolve of { txn : int; file_obj : int; action : string }
  | Generic of { kind : string; fields : (string * value) list }

let kind_of_payload = function
  | Proc_spawn _ -> "proc.spawn"
  | Proc_resume _ -> "proc.resume"
  | Crash _ -> "crash"
  | Rpc_send _ -> "rpc.send"
  | Rpc_recv _ -> "rpc.recv"
  | Rpc_timeout _ -> "rpc.timeout"
  | Disk_read _ -> "disk.read"
  | Disk_write _ -> "disk.write"
  | Block_lock _ -> "block.lock"
  | Test_and_set _ -> "commit.test_and_set"
  | Commit_phase _ -> "commit.phase"
  | Commit_outcome _ -> "commit.outcome"
  | Commit_batch _ -> "commit.batch"
  | Cache_validate _ -> "cache.validate"
  | Cache_drop _ -> "cache.drop"
  | Stable_leg _ -> "stable.leg"
  | Lock_acquire _ -> "lock.acquire"
  | Lock_wait _ -> "lock.wait"
  | Lock_steal _ -> "lock.steal"
  | Rollback _ -> "recovery.rollback"
  | Intentions_replay _ -> "recovery.replay"
  | Recovered_files _ -> "recovery.files"
  | Gc_phase _ -> "gc.phase"
  | Ship _ -> "replica.ship"
  | Ship_apply _ -> "replica.apply"
  | Promote _ -> "replica.promote"
  | Fence _ -> "replica.fence"
  | Txn_stage _ -> "txn.stage"
  | Txn_decide _ -> "txn.decide"
  | Txn_flip _ -> "txn.flip"
  | Txn_resolve _ -> "txn.resolve"
  | Generic { kind; _ } -> kind

let fields_of_payload = function
  | Proc_spawn { proc } | Proc_resume { proc } -> [ ("proc", Str proc) ]
  | Crash { component; what } -> [ ("component", Str component); ("what", Str what) ]
  | Rpc_send { server; op } | Rpc_recv { server; op } | Rpc_timeout { server; op } ->
      [ ("server", Str server); ("op", Str op) ]
  | Disk_read { media; block; bytes; cost_ms } | Disk_write { media; block; bytes; cost_ms } ->
      [ ("media", Str media); ("block", Int block); ("bytes", Int bytes);
        ("cost_ms", Float cost_ms) ]
  | Block_lock { block; won } | Test_and_set { block; won } ->
      [ ("block", Int block); ("won", Bool won) ]
  | Commit_phase { vblock; phase } -> [ ("vblock", Int vblock); ("phase", Str phase) ]
  | Commit_outcome { vblock; outcome } -> [ ("vblock", Int vblock); ("outcome", Str outcome) ]
  | Commit_batch { size; winners; aborts } ->
      [ ("size", Int size); ("winners", Int winners); ("aborts", Int aborts) ]
  | Cache_validate { file_obj; basis; current; invalid } ->
      [ ("file_obj", Int file_obj); ("basis", Int basis); ("current", Int current);
        ("invalid", Int invalid) ]
  | Cache_drop { file_obj; path } -> [ ("file_obj", Int file_obj); ("path", Str path) ]
  | Stable_leg { leg; server; block; cost_ms } ->
      [ ("leg", Str leg); ("server", Int server); ("block", Int block);
        ("cost_ms", Float cost_ms) ]
  | Lock_acquire { obj; txn; mode } ->
      [ ("obj", Int obj); ("txn", Int txn); ("mode", Str mode) ]
  | Lock_wait { obj; txn; holder } ->
      [ ("obj", Int obj); ("txn", Int txn); ("holder", Int holder) ]
  | Lock_steal { obj; txn; victim } ->
      [ ("obj", Int obj); ("txn", Int txn); ("victim", Int victim) ]
  | Rollback { txns } -> [ ("txns", Int txns) ]
  | Intentions_replay { count } | Recovered_files { count } -> [ ("count", Int count) ]
  | Gc_phase { phase; count } -> [ ("phase", Str phase); ("count", Int count) ]
  | Ship { seq; ops; epoch } -> [ ("seq", Int seq); ("ops", Int ops); ("epoch", Int epoch) ]
  | Ship_apply { seq; ops; lag_ms } ->
      [ ("seq", Int seq); ("ops", Int ops); ("lag_ms", Float lag_ms) ]
  | Promote { shard; epoch; watermark } ->
      [ ("shard", Int shard); ("epoch", Int epoch); ("watermark", Int watermark) ]
  | Fence { epoch; stale } -> [ ("epoch", Int epoch); ("stale", Int stale) ]
  | Txn_stage { txn; file_obj } -> [ ("txn", Int txn); ("file_obj", Int file_obj) ]
  | Txn_decide { txn; committed } -> [ ("txn", Int txn); ("committed", Bool committed) ]
  | Txn_flip { txn; file_obj; writes } ->
      [ ("txn", Int txn); ("file_obj", Int file_obj); ("writes", Int writes) ]
  | Txn_resolve { txn; file_obj; action } ->
      [ ("txn", Int txn); ("file_obj", Int file_obj); ("action", Str action) ]
  | Generic { fields; _ } -> fields

type event =
  | Point of { seq : int; at_ms : float; span : int; payload : payload }
  | Span_open of { seq : int; at_ms : float; id : int; parent : int; kind : string; label : string }
  | Span_close of { seq : int; at_ms : float; id : int }

let event_seq = function
  | Point { seq; _ } | Span_open { seq; _ } | Span_close { seq; _ } -> seq

let event_time = function
  | Point { at_ms; _ } | Span_open { at_ms; _ } | Span_close { at_ms; _ } -> at_ms

type ring = {
  cap : int;
  buf : event option array;
  mutable len : int;  (** Stored events, <= cap. *)
  mutable head : int;  (** Index of the oldest stored event. *)
  mutable ring_dropped : int;
}

type sink = Null | Ring of ring | Stream of (event -> unit)

type t = {
  now : unit -> float;
  sink : sink;
  mutable next_seq : int;
  mutable next_span : int;
  mutable stack : int list;  (** Ambient span stack for synchronous sections. *)
  mutable emitted : int;
}

let null = { now = (fun () -> 0.0); sink = Null; next_seq = 0; next_span = 1; stack = []; emitted = 0 }

let default_capacity = 65536

let ring ?(capacity = default_capacity) ~now () =
  if capacity < 1 then invalid_arg "Trace.ring: capacity must be positive";
  let r = { cap = capacity; buf = Array.make capacity None; len = 0; head = 0; ring_dropped = 0 } in
  { now; sink = Ring r; next_seq = 0; next_span = 1; stack = []; emitted = 0 }

let stream ~now emit = { now; sink = Stream emit; next_seq = 0; next_span = 1; stack = []; emitted = 0 }

let enabled t = match t.sink with Null -> false | Ring _ | Stream _ -> true

let now_ms t = t.now ()

let events_emitted t = t.emitted

let push t ev =
  t.emitted <- t.emitted + 1;
  match t.sink with
  | Null -> ()
  | Stream emit -> emit ev
  | Ring r ->
      if r.len < r.cap then begin
        r.buf.((r.head + r.len) mod r.cap) <- Some ev;
        r.len <- r.len + 1
      end
      else begin
        (* Full: overwrite the oldest (the ring keeps the newest window). *)
        r.buf.(r.head) <- Some ev;
        r.head <- (r.head + 1) mod r.cap;
        r.ring_dropped <- r.ring_dropped + 1
      end

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let current_span t = match t.stack with [] -> 0 | id :: _ -> id

let point t payload =
  match t.sink with
  | Null -> ()
  | Ring _ | Stream _ ->
      push t (Point { seq = fresh_seq t; at_ms = t.now (); span = current_span t; payload })

let open_span t ?parent ~kind ?(label = "") () =
  match t.sink with
  | Null -> 0
  | Ring _ | Stream _ ->
      let parent = match parent with Some p -> p | None -> current_span t in
      let id = t.next_span in
      t.next_span <- id + 1;
      push t (Span_open { seq = fresh_seq t; at_ms = t.now (); id; parent; kind; label });
      id

let close_span t id =
  match t.sink with
  | Null -> ()
  | Ring _ | Stream _ ->
      if id <> 0 then push t (Span_close { seq = fresh_seq t; at_ms = t.now (); id })

let span t ~kind ?label f =
  match t.sink with
  | Null -> f ()
  | Ring _ | Stream _ ->
      let id = open_span t ~kind ?label () in
      t.stack <- id :: t.stack;
      let finish () =
        (match t.stack with s :: rest when s = id -> t.stack <- rest | _ -> ());
        close_span t id
      in
      Fun.protect ~finally:finish f

let events t =
  match t.sink with
  | Null | Stream _ -> []
  | Ring r ->
      let out = ref [] in
      for i = r.len - 1 downto 0 do
        match r.buf.((r.head + i) mod r.cap) with
        | Some ev -> out := ev :: !out
        | None -> ()
      done;
      !out

let dropped t = match t.sink with Ring r -> r.ring_dropped | Null | Stream _ -> 0
