(* Structural queries over a recorded event stream. Traces are
   deterministic, so these results are test oracles: "the fast path did
   exactly one test-and-set" is [count events "commit.test_and_set" = 1].

   Everything here is pure list processing in event order — no hash
   tables, so query results can never leak iteration order. *)

type span = {
  id : int;
  parent : int;
  kind : string;
  label : string;
  start_ms : float;
  stop_ms : float option;  (** [None] for spans never closed. *)
}

let duration s = match s.stop_ms with Some stop -> stop -. s.start_ms | None -> 0.0

(* Spans in open order. Quadratic in the number of spans only when every
   span stays open; the common close-soon case is near-linear because the
   open list stays short. *)
let spans events =
  let rec go opened closed = function
    | [] -> List.rev_append closed (List.rev opened)
    | Trace.Point _ :: rest -> go opened closed rest
    | Trace.Span_open { at_ms; id; parent; kind; label; _ } :: rest ->
        go ({ id; parent; kind; label; start_ms = at_ms; stop_ms = None } :: opened) closed rest
    | Trace.Span_close { at_ms; id; _ } :: rest ->
        (match List.partition (fun s -> s.id = id) opened with
        | [ s ], opened -> go opened ({ s with stop_ms = Some at_ms } :: closed) rest
        | _ -> go opened closed rest (* Open event fell out of the ring: drop the close. *))
  in
  List.sort (fun a b -> compare a.id b.id) (go [] [] events)

let spans_of_kind events kind = List.filter (fun s -> s.kind = kind) (spans events)

let points events =
  List.filter_map (function Trace.Point { payload; _ } -> Some payload | _ -> None) events

let points_of_kind events kind =
  List.filter (fun p -> Trace.kind_of_payload p = kind) (points events)

let count events kind = List.length (points_of_kind events kind)

(* Per-kind totals over points and spans alike, sorted by kind. *)
let kind_counts events =
  let add acc kind =
    match List.assoc_opt kind acc with
    | Some n -> (kind, n + 1) :: List.remove_assoc kind acc
    | None -> (kind, 1) :: acc
  in
  let totals =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Trace.Point { payload; _ } -> add acc (Trace.kind_of_payload payload)
        | Trace.Span_open { kind; _ } -> add acc kind
        | Trace.Span_close _ -> acc)
      [] events
  in
  List.sort compare totals

let slowest events n =
  let closed = List.filter (fun s -> s.stop_ms <> None) (spans events) in
  let by_duration =
    List.sort
      (fun a b ->
        match compare (duration b) (duration a) with 0 -> compare a.id b.id | c -> c)
      closed
  in
  List.filteri (fun i _ -> i < n) by_duration

(* Time inside [s] not covered by its direct children: the span's own
   critical-path contribution. Children are clipped to the parent's
   window; direct children of a span cannot overlap each other in this
   single-threaded simulation (they are opened and closed in stack or
   queue order within one parent), so summing clipped child durations is
   exact. *)
let self_ms events s =
  match s.stop_ms with
  | None -> 0.0
  | Some stop ->
      let children = List.filter (fun c -> c.parent = s.id && c.id <> s.id) (spans events) in
      let covered =
        List.fold_left
          (fun acc c ->
            match c.stop_ms with
            | None -> acc
            | Some cstop ->
                let lo = Float.max c.start_ms s.start_ms and hi = Float.min cstop stop in
                if hi > lo then acc +. (hi -. lo) else acc)
          0.0 children
      in
      Float.max 0.0 (stop -. s.start_ms -. covered)

(* Total duration of a span tree's deepest chain: the critical path from
   the root span through its slowest descendant chain. *)
let critical_path_ms events root =
  let all = spans events in
  let rec depth s =
    let children = List.filter (fun c -> c.parent = s.id && c.id <> s.id) all in
    List.fold_left (fun acc c -> Float.max acc (depth c)) (duration s) children
  in
  depth root
