(** Structural queries over a recorded event stream.

    Because traces are deterministic, these results serve as test
    oracles: span structure and event counts assert {e causal} claims
    ("the uncontended commit issued exactly one test-and-set") that
    aggregate counters cannot express. All functions are pure over the
    event list, typically obtained from {!Trace.events} or a Catapult
    import. *)

type span = {
  id : int;
  parent : int;  (** 0 for root spans. *)
  kind : string;
  label : string;
  start_ms : float;
  stop_ms : float option;  (** [None] for spans never closed. *)
}

val duration : span -> float
(** Closed-span duration in virtual ms; 0 for unclosed spans. *)

val spans : Trace.event list -> span list
(** All spans, by id. Closes without a matching open (ring wrap-around)
    are ignored; unmatched opens surface with [stop_ms = None]. *)

val spans_of_kind : Trace.event list -> string -> span list

val points : Trace.event list -> Trace.payload list
(** Point payloads in event order. *)

val points_of_kind : Trace.event list -> string -> Trace.payload list

val count : Trace.event list -> string -> int
(** Number of point events of the given kind. *)

val kind_counts : Trace.event list -> (string * int) list
(** Per-kind totals over points and spans, sorted by kind. *)

val slowest : Trace.event list -> int -> span list
(** The [n] longest closed spans, longest first (ties by id). *)

val self_ms : Trace.event list -> span -> float
(** Span duration minus the time covered by its direct children: the
    span's own critical-path contribution. *)

val critical_path_ms : Trace.event list -> span -> float
(** Duration of the longest root-to-descendant chain under the span. *)
