(* Chrome trace-event ("catapult") JSON export and import.

   Rendering is manual Printf with a fixed field order and fixed float
   formats ("%.3f" for timestamps and float args), so two runs with the
   same seed produce byte-identical files — the property the trace
   determinism test pins down. Timestamps are virtual milliseconds
   scaled to the format's microseconds. *)

let render_value buf v =
  match v with
  | Trace.Int i -> Buffer.add_string buf (string_of_int i)
  | Trace.Float f -> Buffer.add_string buf (Printf.sprintf "%.3f" f)
  | Trace.Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (Tjson.escape s);
      Buffer.add_char buf '"'
  | Trace.Bool b -> Buffer.add_string buf (if b then "true" else "false")

let ts_of_ms at_ms = Printf.sprintf "%.3f" (at_ms *. 1000.0)

let render_event ev =
  let buf = Buffer.create 160 in
  (match ev with
  | Trace.Span_open { seq; at_ms; id; parent; kind; label } ->
      let name = if label = "" then kind else label in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"B\",\"ts\":%s,\"pid\":1,\"tid\":1,\"args\":{\"id\":%d,\"parent\":%d,\"seq\":%d}}"
           (Tjson.escape name) (Tjson.escape kind) (ts_of_ms at_ms) id parent seq)
  | Trace.Span_close { seq; at_ms; id } ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"ph\":\"E\",\"ts\":%s,\"pid\":1,\"tid\":1,\"args\":{\"id\":%d,\"seq\":%d}}"
           (ts_of_ms at_ms) id seq)
  | Trace.Point { seq; at_ms; span; payload } ->
      let kind = Trace.kind_of_payload payload in
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%s,\"pid\":1,\"tid\":1,\"s\":\"t\",\"args\":{"
           (Tjson.escape kind) (ts_of_ms at_ms));
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf (Printf.sprintf "\"%s\":" (Tjson.escape k));
          render_value buf v;
          Buffer.add_char buf ',')
        (Trace.fields_of_payload payload);
      Buffer.add_string buf (Printf.sprintf "\"span\":%d,\"seq\":%d}}" span seq));
  Buffer.contents buf

type writer = { write : string -> unit; mutable count : int }

let writer write =
  write "[\n";
  { write; count = 0 }

let emit w ev =
  if w.count > 0 then w.write ",\n";
  w.write (render_event ev);
  w.count <- w.count + 1

let finish w = w.write "\n]\n"

let to_string events =
  let buf = Buffer.create 4096 in
  let w = writer (Buffer.add_string buf) in
  List.iter (emit w) events;
  finish w;
  Buffer.contents buf

(* Import: map parsed JSON back to events. Spans round-trip exactly;
   points come back as [Generic] payloads carrying the same kind and
   fields, which is all {!Query} needs. *)

let value_of_json = function
  | Tjson.Int i -> Some (Trace.Int i)
  | Tjson.Float f -> Some (Trace.Float f)
  | Tjson.Str s -> Some (Trace.Str s)
  | Tjson.Bool b -> Some (Trace.Bool b)
  | Tjson.Null | Tjson.Arr _ | Tjson.Obj _ -> None

let int_arg args key = Option.bind (Tjson.member key args) Tjson.to_int

let event_of_json idx json =
  let args = Option.value ~default:(Tjson.Obj []) (Tjson.member "args" json) in
  let seq = Option.value ~default:idx (int_arg args "seq") in
  let at_ms =
    match Option.bind (Tjson.member "ts" json) Tjson.to_float with
    | Some us -> us /. 1000.0
    | None -> 0.0
  in
  match Option.bind (Tjson.member "ph" json) Tjson.to_string with
  | Some "B" ->
      let kind =
        Option.value ~default:"" (Option.bind (Tjson.member "cat" json) Tjson.to_string)
      in
      let name =
        Option.value ~default:kind (Option.bind (Tjson.member "name" json) Tjson.to_string)
      in
      let label = if name = kind then "" else name in
      Some
        (Trace.Span_open
           {
             seq;
             at_ms;
             id = Option.value ~default:0 (int_arg args "id");
             parent = Option.value ~default:0 (int_arg args "parent");
             kind;
             label;
           })
  | Some "E" ->
      Some (Trace.Span_close { seq; at_ms; id = Option.value ~default:0 (int_arg args "id") })
  | Some "i" ->
      let kind =
        Option.value ~default:"event" (Option.bind (Tjson.member "name" json) Tjson.to_string)
      in
      let fields =
        match args with
        | Tjson.Obj kvs ->
            List.filter_map
              (fun (k, v) ->
                if k = "seq" || k = "span" then None
                else Option.map (fun v -> (k, v)) (value_of_json v))
              kvs
        | _ -> []
      in
      Some
        (Trace.Point
           {
             seq;
             at_ms;
             span = Option.value ~default:0 (int_arg args "span");
             payload = Trace.Generic { kind; fields };
           })
  | _ -> None

let parse src =
  match Tjson.parse src with
  | Error _ as e -> e
  | Ok (Tjson.Arr items) ->
      let mapped = List.mapi event_of_json items in
      Ok
        (List.sort
           (fun a b -> compare (Trace.event_seq a) (Trace.event_seq b))
           (List.filter_map Fun.id mapped))
  | Ok _ -> Error "catapult: expected a top-level array of trace events"
