(** Deterministic structured tracing keyed on virtual time.

    A trace records typed point events and nested spans against the
    simulation clock ([now] is invariably [Engine.now]), never a wall
    clock, so same-seed runs yield byte-identical traces — the property
    that lets trace output double as a test oracle. Emission charges no
    simulated time: tracing observes a run without perturbing it.

    Three sinks: {!null} (disabled; one branch per emission site),
    {!ring} (bounded in-memory buffer keeping the newest window) and
    {!stream} (a callback per event, e.g. for incremental JSON export). *)

type value = Int of int | Float of float | Str of string | Bool of bool

(** Typed event payloads, one constructor per instrumented mechanism. *)
type payload =
  | Proc_spawn of { proc : string }
  | Proc_resume of { proc : string }
  | Crash of { component : string; what : string }
      (** [what] is ["crash"], ["restart"] or ["recover"]. *)
  | Rpc_send of { server : string; op : string }
  | Rpc_recv of { server : string; op : string }
  | Rpc_timeout of { server : string; op : string }
  | Disk_read of { media : string; block : int; bytes : int; cost_ms : float }
  | Disk_write of { media : string; block : int; bytes : int; cost_ms : float }
  | Block_lock of { block : int; won : bool }
  | Test_and_set of { block : int; won : bool }
      (** One commit-time test-and-set of a base version's commit
          reference; [won] iff the reference was clear and is now set. *)
  | Commit_phase of { vblock : int; phase : string }
      (** [phase] is ["pretest"], ["serialise"] or ["merge"]. *)
  | Commit_outcome of { vblock : int; outcome : string }
      (** [outcome] is ["fastpath"], ["merged"], ["conflict"] or
          ["shortcircuit"]. *)
  | Commit_batch of { size : int; winners : int; aborts : int }
      (** One group-commit batch through the validate → merge → publish
          pipeline: [size] members attempted, [winners] published in one
          amortised stable-storage leg, [aborts] doomed by conflict. *)
  | Cache_validate of { file_obj : int; basis : int; current : int; invalid : int }
  | Cache_drop of { file_obj : int; path : string }
  | Stable_leg of { leg : string; server : int; block : int; cost_ms : float }
      (** One leg of a stable-pair operation: ["shadow"] (A→B), ["local"]
          (back to A), ["repair"], ["companion_read"]. *)
  | Lock_acquire of { obj : int; txn : int; mode : string }
  | Lock_wait of { obj : int; txn : int; holder : int }
  | Lock_steal of { obj : int; txn : int; victim : int }
  | Rollback of { txns : int }
  | Intentions_replay of { count : int }
  | Recovered_files of { count : int }
  | Gc_phase of { phase : string; count : int }
  | Ship of { seq : int; ops : int; epoch : int }
      (** One commit-stream batch cut at the primary's publish gate:
          [seq] is its position in the shard's total order, [ops] the
          store operations it carries, [epoch] the primary epoch it was
          shipped under. *)
  | Ship_apply of { seq : int; ops : int; lag_ms : float }
      (** Asynchronous replica application of batch [seq]; [lag_ms] is
          virtual time between ship and apply — the replication lag. *)
  | Promote of { shard : int; epoch : int; watermark : int }
      (** A replica won promotion: test-and-set on the epoch register
          succeeded, [watermark] is the last applied batch seq. *)
  | Fence of { epoch : int; stale : int }
      (** A deposed primary's publish lost the test-and-set: it carried
          stale epoch [stale] against current [epoch]. *)
  | Txn_stage of { txn : int; file_obj : int }
      (** Cross-shard transaction [txn] staged its marker on participant
          file [file_obj] (an ordinary optimistic commit of the root). *)
  | Txn_decide of { txn : int; committed : bool }
      (** The coordinator record's pending state was replaced — the
          transaction-wide decision, itself one optimistic commit. *)
  | Txn_flip of { txn : int; file_obj : int; writes : int }
      (** A resolver rolled participant [file_obj] forward, applying
          [writes] staged page writes from the marker. *)
  | Txn_resolve of { txn : int; file_obj : int; action : string }
      (** A resolver acted on an in-doubt participant: [action] is
          ["forward"], ["back"] or ["force_abort"]. *)
  | Generic of { kind : string; fields : (string * value) list }
      (** Escape hatch; also the representation of imported events. *)

val kind_of_payload : payload -> string
(** Stable dotted kind, e.g. ["commit.test_and_set"]; the key used by
    {!Query} and the exporters. *)

val fields_of_payload : payload -> (string * value) list
(** The payload's arguments as ordered key/value pairs. *)

type event =
  | Point of { seq : int; at_ms : float; span : int; payload : payload }
  | Span_open of { seq : int; at_ms : float; id : int; parent : int; kind : string; label : string }
  | Span_close of { seq : int; at_ms : float; id : int }

val event_seq : event -> int
val event_time : event -> float

type t

val null : t
(** The disabled trace: every operation is a no-op, {!enabled} is false.
    Instrumented modules default to it, so an untraced run pays one
    branch per emission site and allocates nothing. *)

val ring : ?capacity:int -> now:(unit -> float) -> unit -> t
(** Bounded in-memory sink: once [capacity] (default 65536) events are
    held, each new event overwrites the oldest ({!dropped} counts them). *)

val stream : now:(unit -> float) -> (event -> unit) -> t
(** Streaming sink: the callback receives each event as it is emitted. *)

val enabled : t -> bool
(** Guard for hot paths: skip payload construction entirely when false. *)

val now_ms : t -> float

val point : t -> payload -> unit
(** Record an instantaneous event under the current ambient span. *)

val open_span : t -> ?parent:int -> kind:string -> ?label:string -> unit -> int
(** Begin a span and return its id (0 on a disabled trace). [parent]
    defaults to the ambient span. Use the explicit form for sections
    that suspend (RPC round trips, driver transactions): the ambient
    stack must not be held across a process switch. *)

val close_span : t -> int -> unit

val span : t -> kind:string -> ?label:string -> (unit -> 'a) -> 'a
(** [span t ~kind f] runs [f] inside a fresh ambient span. Only for
    synchronous sections (no [Proc.delay]/[suspend] inside), otherwise
    interleaved processes would inherit the wrong parent. *)

val events : t -> event list
(** Ring-sink contents, oldest first; [[]] for null and stream sinks. *)

val dropped : t -> int
(** Events overwritten by ring wrap-around. *)

val events_emitted : t -> int
(** Total events emitted to this trace (including ones the ring has
    since dropped); the bench overhead metric. *)
