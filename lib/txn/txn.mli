(** Cross-shard atomic transactions, composed entirely from ordinary
    optimistic commits (the Migration idiom generalised — no lock is ever
    held across a shard boundary).

    A transaction {e stages} a marker ({!Afs_cluster.Txnmark}) into each
    participant file's root by an ordinary single-shard commit (the
    computed writes ride the marker; no page is touched), {e decides} by
    one more ordinary commit flipping a coordinator record's root data
    from pending to committed — the transaction-wide atomic point — and
    then {e flips} each participant: restore the old root, apply the
    marker's writes in place, commit. Participants' roots carry the
    location check's [R] flag, so a stage conflicts with every
    concurrently opened version in both commit orders; once staged, only
    resolvers can advance the file (ordinary opens answer
    [Txn_in_doubt]). Any client can resolve an in-doubt participant from
    the marker and the record alone — crash recovery is {!sweep}, not a
    log.

    Must run inside a simulation process (everything is RPCs). *)

type op =
  | Read of Afs_util.Pagepath.t
  | Write of Afs_util.Pagepath.t * bytes
  | Rmw of Afs_util.Pagepath.t * (bytes -> bytes)
      (** Read the page, write the transform of what was read. *)

type part = { file : Afs_util.Capability.t; ops : op list }
(** One participant. A transaction's parts must name distinct files. *)

type failure =
  | Local of Afs_core.Errors.t
      (** A participant stage lost an ordinary single-shard OCC race —
          the same retry situation as a [Conflict] on one shard. *)
  | Cross of Afs_core.Errors.t
      (** The record decision lost to a contender's force-abort: the
          transaction was staged everywhere but aborted cross-shard. *)
  | Failed of Afs_core.Errors.t
      (** Transport or harness trouble; retry policy is the caller's. *)

type crash_point = Before_stage of int | Before_decide | After_decide | Mid_flip of int
(** Deterministic coordinator-kill injection points, by protocol step
    (indices count participants in staging order). *)

exception Crashed
(** Raised by {!exec} at the matching [crash_at] point: the test's model
    of a coordinator dying mid-protocol. Committed state stays put;
    {!sweep} (or any later access) resolves what was left in doubt. *)

type t

val create :
  ?trace:Afs_trace.Trace.t ->
  ?backoff_ms:float ->
  ?pending_patience:int ->
  Afs_cluster.Cluster_client.t ->
  t
(** A coordinator bound to a cluster client. [pending_patience] is how
    many [backoff_ms] waits a resolver grants a still-pending
    coordinator before force-aborting it. The default (32) comfortably
    covers a live coordinator's full stage-decide-flip protocol under
    load, so force-aborts only fire on genuinely dead coordinators;
    crash recovery uses patience 0 via {!sweep}. *)

val exec :
  ?crash_at:crash_point ->
  ?on_record:(Afs_util.Capability.t -> unit) ->
  t ->
  part list ->
  (unit, failure) result
(** Run one transaction to a definite outcome. A single part takes the
    ordinary single-shard path (no record, no marker); multiple parts
    run the stage/decide/flip protocol, staging in capability order.
    [on_record] observes the coordinator record's capability as soon as
    it exists — the hook crash tests use to audit outcomes after a
    {!Crashed} coordinator. Once staged, the outcome is driven to a
    decision even through transient transport errors (bounded patience),
    so a [failure] never hides a committed transaction. *)

val resolve_in_doubt :
  t -> patience:int -> Afs_util.Capability.t -> unit Afs_core.Errors.r
(** Resolve one in-doubt file: read its marker, read the record, roll
    forward or back; while the record is pending, wait [patience]
    back-offs then force-abort it. No-op if the file is not in doubt. *)

val sweep : t -> Afs_util.Capability.t list -> int Afs_core.Errors.r
(** Crash recovery's last mile: resolve every in-doubt file in the list
    with zero patience (a still-pending coordinator is presumed dead).
    Returns how many files needed resolving. *)

(** {2 The decision logic}

    Pure (C1 critical sections): the protocol's brain, exposed for tests
    and for the record audit a crash harness runs. *)

type decision = Pending | Committed | Aborted | Unknown_record

val decide : record_data:bytes -> decision
(** Classify a coordinator record's root data. *)

type action =
  | Forward of Afs_cluster.Txnmark.t
  | Back of Afs_cluster.Txnmark.t
  | Wait of Afs_cluster.Txnmark.t

val resolve : Afs_cluster.Txnmark.t -> decision -> action
(** What a resolver must do to a marker given the record's state. *)

val record_decision : t -> Afs_util.Capability.t -> decision Afs_core.Errors.r
(** Read a record's current state (routed, forward-chasing). *)

(** {2 Accounting} *)

val round_trips : t -> int
(** Client→shard messages this coordinator has sent, across all its
    transactions — the coordination overhead the S2 bench reports. *)

val counters : t -> Afs_util.Stats.Counter.t
(** [txn.committed], [txn.aborted.local], [txn.aborted.cross],
    [txn.coordinated], [txn.fastpath], [txn.round_trips],
    [txn.force_aborts], [txn.resolved.forward], [txn.resolved.back],
    [txn.flip_deferred], [txn.unstage_deferred]. *)
