(* Cross-shard atomic transactions from ordinary optimistic commits.

   The protocol generalises Migration's snapshot/copy/flip trick: every
   multi-step distributed operation here is a sequence of single-shard
   optimistic commits, with no lock ever held across a shard boundary.

   1. Record.  The coordinator creates a plain committed file — the
      coordinator record — whose entire root data is the pending state
      string. Nobody but coordinators and resolvers ever touches it.

   2. Stage.  On each participant shard in turn, the coordinator opens an
      ordinary version, performs the transaction's reads (recording R
      flags; Rmw computes the write values from what it read), then
      replaces the root data with an encoded {!Txnmark}: the record's
      capability, the coordinator's sequence number, the old root data,
      and the computed page writes — which ride the marker instead of
      touching any page — and commits. The commit's flag map is R on
      every page read plus R+W on the root, and every cluster-created
      version carries R on its root (the location check), so the stage
      conflicts with every concurrently opened version of the file in
      both commit orders: whoever commits second loses. Once a stage is
      committed, ordinary opens of the file answer [Txn_in_doubt] (the
      shard wrapper's trap), so from here on only resolvers can advance
      the file.

   3. Decide.  The coordinator replaces the record's root data
      pending -> committed as one more ordinary optimistic commit, having
      read the state it replaces — a single [Txn_cas] message. A
      contender who tired of waiting force-aborts the same way
      (pending -> aborted); both transitions read-then-write the same
      root, so exactly one wins the record's test-and-set and the state
      machine is monotone. This single commit IS the transaction-wide
      atomic point.

   4. Flip.  Each staged participant is resolved by one more optimistic
      commit, again one [Txn_cas]: iff the root still carries this
      transaction's exact marker bytes, restore the old root data and —
      iff the record committed — apply the marker's page writes in
      place. Applying writes (never flipping to a wholesale copy)
      preserves any concurrent non-conflicting update that merged
      underneath the stage. Flips race only other resolvers; the loser's
      CAS mismatches, which is its answer: the marker is gone.

   Recovery needs no log: a marker names its record, the record's root
   names the outcome, and [sweep] walks the files and applies step 4 —
   present-and-committed rolls forward, anything else discards. *)

module Capability = Afs_util.Capability
module Pagepath = Afs_util.Pagepath
module Stats = Afs_util.Stats
module Errors = Afs_core.Errors
module Remote = Afs_rpc.Remote
module Trace = Afs_trace.Trace
module Txnmark = Afs_cluster.Txnmark
module CC = Afs_cluster.Cluster_client
module Proc = Afs_sim.Proc
open Errors

type op =
  | Read of Pagepath.t
  | Write of Pagepath.t * bytes
  | Rmw of Pagepath.t * (bytes -> bytes)

type part = { file : Capability.t; ops : op list }

type failure =
  | Local of Errors.t  (** A participant stage lost an ordinary OCC race. *)
  | Cross of Errors.t  (** The record decision lost to a contender's force-abort. *)
  | Failed of Errors.t  (** Transport or harness trouble; retry policy is the caller's. *)

type crash_point = Before_stage of int | Before_decide | After_decide | Mid_flip of int

exception Crashed
(** Raised at the matching [crash_at] injection point: how tests model a
    coordinator dying mid-protocol (client processes are not crashable
    hosts). Everything already committed stays exactly as it is. *)

type t = {
  client : CC.t;
  trace : Trace.t;
  counters : Stats.Counter.t;
  mutable next_seq : int;
  mutable round_trips : int;
  backoff_ms : float;
  pending_patience : int;
}

let create ?(trace = Trace.null) ?(backoff_ms = 5.0) ?(pending_patience = 32) client =
  {
    client;
    trace;
    counters = Stats.Counter.create ();
    next_seq = 1;
    round_trips = 0;
    backoff_ms;
    pending_patience;
  }

let counters t = t.counters
let round_trips t = t.round_trips
let bump ?by t name = Stats.Counter.incr ?by t.counters name
let tpoint t payload = if Trace.enabled t.trace then Trace.point t.trace payload

let rt ?(n = 1) t =
  t.round_trips <- t.round_trips + n;
  bump ~by:n t "txn.round_trips"

(* {2 The decision logic (pure)}

   These two are the protocol's brain and C1 critical sections: given
   what the RPC loops read, what must happen next. Transitively yield-
   and ambient-free — every suspension lives in the loops that call
   them. *)

type decision = Pending | Committed | Aborted | Unknown_record

let decide ~record_data =
  let s = Bytes.to_string record_data in
  if String.equal s Txnmark.state_committed then Committed
  else if String.equal s Txnmark.state_aborted then Aborted
  else if String.equal s Txnmark.state_pending then Pending
  else Unknown_record

type action = Forward of Txnmark.t | Back of Txnmark.t | Wait of Txnmark.t

let resolve marker decision =
  match decision with
  | Committed -> Forward marker
  | Aborted | Unknown_record -> Back marker
  | Pending -> Wait marker

(* {2 Routed RPC helpers} *)

let max_hops = 8

(* Run [f conn file] against the file's owning shard, chasing [Moved]
   answers through the shared forward cache. *)
let with_conn t file f =
  let rec go file hops =
    if hops > max_hops then Error (Store_failure "txn: forward chain too long")
    else
      let* file, shard, conn = CC.conn_for t.client file in
      match f conn ~shard file with
      | Error (Moved target) ->
          CC.note_forward t.client ~old:file target;
          go target (hops + 1)
      | r -> r
  in
  go file 0

(* The file's current committed root data, marker and all. *)
let root_data t file =
  with_conn t file (fun conn ~shard:_ file ->
      rt t;
      Remote.txn_mark conn file)

let record_decision t record =
  (* The record is an ordinary file whose root IS the state: one
     [txn_mark] round trip reads it — this is the poll a waiting
     resolver repeats, so its cost is the cost of waiting. *)
  let* data = root_data t record in
  Ok (decide ~record_data:data)

(* How long a step that must reach a crashed shard keeps retrying before
   giving up: recovery is expected within this budget, and giving up
   earlier would leave the caller guessing about an outcome a later
   retry could duplicate. *)
let transport_patience = 256

(* Drive the record pending -> committed|aborted as an ordinary
   optimistic commit, returning the record's {e final} state — which may
   be the other one if a racing decider won the root's test-and-set.
   Both the coordinator's decide and a contender's force-abort funnel
   through here, which is the whole mutual-exclusion argument: each
   reads the state it replaces, so the second commit conflicts and
   re-reads. Transport errors back off and retry (within
   [transport_patience]) rather than surface: once a transaction is
   staged its outcome must become definite, not be retried wholesale. *)
let decide_record t ~record ~commit =
  let expected = Bytes.of_string Txnmark.state_pending in
  let target =
    Bytes.of_string (if commit then Txnmark.state_committed else Txnmark.state_aborted)
  in
  let rec attempt n =
    if n > transport_patience then Error (Store_failure "txn: record decision starved")
    else
      let step =
        with_conn t record (fun conn ~shard:_ record ->
            rt t;
            Remote.txn_cas conn record ~expected ~root:target [])
      in
      match step with
      | Ok `Swapped -> Ok (if commit then Committed else Aborted)
      | Ok (`Mismatch current) -> (
          match decide ~record_data:current with
          | (Committed | Aborted) as final -> Ok final
          | Pending ->
              (* Unreachable — a pending root matches [expected] — but a
                 retry is the safe answer to a raced re-read anyway. *)
              attempt (n + 1)
          | Unknown_record -> Error (Store_failure "txn: unrecognised record state"))
      | Error (Store_failure _) when n < transport_patience ->
          Proc.delay t.backoff_ms;
          attempt (n + 1)
      | Error e -> Error e
  in
  attempt 0

(* {2 Staging} *)

(* The pages a part must read, in op order — they ride the [Txn_open]
   message, so staging costs two round trips however many pages the
   transaction touches. *)
let read_paths ops =
  List.filter_map
    (function Read path | Rmw (path, _) -> Some path | Write _ -> None)
    ops

(* Pair the fetched pages back up with the ops that asked for them
   (pure; [pages] mirrors [read_paths ops] by construction). *)
let computed_writes ops pages =
  let rec go pages acc = function
    | [] -> List.rev acc
    | Read _ :: rest -> go (match pages with _ :: ps -> ps | [] -> []) acc rest
    | Write (path, data) :: rest -> go pages ((path, data) :: acc) rest
    | Rmw (path, f) :: rest -> (
        match pages with
        | data :: ps -> go ps ((path, f data) :: acc) rest
        | [] -> List.rev acc)
  in
  go pages [] ops

(* Stage one participant: ordinary version, the transaction's reads,
   then the marker committed into the root. Nothing but the root is
   written — the computed writes ride the marker until the flip. *)
let stage t ~record ~seq part =
  let span = Trace.open_span t.trace ~kind:"txn.stage" ~label:(string_of_int seq) () in
  let result =
    with_conn t part.file (fun conn ~shard file ->
        rt t;
        let* version, old_root, pages =
          Remote.txn_open ~reads:(read_paths part.ops) conn file
        in
        (* [txn_open] skips the shard's in-doubt trap, so a foreign
           marker arrives as data: detect it here and surface the same
           [Txn_in_doubt] the trap would have raised — minus one round
           trip in the common, unmarked case. *)
        match Txnmark.record_of old_root with
        | Some other ->
            rt t;
            ignore (Remote.abort_version conn version : unit r);
            Error (Txn_in_doubt other)
        | None -> (
            let m =
              { Txnmark.record; seq; old_root; writes = computed_writes part.ops pages }
            in
            rt t;
            match Remote.txn_seal conn version ~root:(Txnmark.encode m) [] with
            | Ok () ->
                CC.note_commit t.client ~shard file;
                tpoint t (Trace.Txn_stage { txn = seq; file_obj = file.Capability.obj });
                Ok (file, m)
            | Error e -> Error e))
  in
  Trace.close_span t.trace span;
  result

(* {2 Resolution} *)

(* Overwrite a still-staged marker with its resolution: restore the
   pre-transaction root data and, iff rolling forward, apply the staged
   writes in place. The codec is canonical, so re-encoding the marker
   reproduces the staged root bytes exactly and the whole resolution is
   one [Txn_cas] round trip. Idempotent against other resolvers: a
   mismatch means the marker is gone — somebody already resolved (or a
   later transaction re-staged) — and there is nothing left to do. *)
let apply t ~marker:m ~forward file =
  let step =
    with_conn t file (fun conn ~shard:_ file ->
        rt t;
        Remote.txn_cas conn file ~expected:(Txnmark.encode m)
          ~root:m.Txnmark.old_root
          (if forward then m.Txnmark.writes else []))
  in
  match step with
  | Ok `Swapped ->
      if forward then
        tpoint t
          (Trace.Txn_flip
             {
               txn = m.Txnmark.seq;
               file_obj = file.Capability.obj;
               writes = List.length m.Txnmark.writes;
             })
      else
        tpoint t
          (Trace.Txn_resolve
             { txn = m.Txnmark.seq; file_obj = file.Capability.obj; action = "back" });
      Ok ()
  | Ok (`Mismatch _) -> Ok ()
  | Error e -> Error e

(* Resolve one in-doubt participant, as any client can: read the marker,
   read the record, act. While the record is still pending the
   coordinator is normally about to decide — wait [patience] back-offs,
   then force the decision to abort (step 3's race: exactly one of the
   force-abort and the coordinator's decide wins). [patience = 0] is the
   crash-recovery stance: a pending coordinator is presumed dead. *)
let resolve_in_doubt t ~patience file =
  let span = Trace.open_span t.trace ~kind:"txn.resolve" () in
  let result =
    let* root = root_data t file in
    match Txnmark.decode root with
    | None -> Ok () (* Resolved under us. *)
    | Some marker ->
        (* The marker cannot change while the trap holds (another
           resolver can only remove it, which [apply] detects), so only
           the record is re-polled while the coordinator is pending —
           with capped exponential back-off: a live coordinator is a
           handful of round trips from deciding, a dead one is caught by
           the patience bound either way. *)
        let rec await waits =
          let* decision = record_decision t marker.Txnmark.record in
          match resolve marker decision with
          | Forward m ->
              bump t "txn.resolved.forward";
              apply t ~marker:m ~forward:true file
          | Back m ->
              bump t "txn.resolved.back";
              apply t ~marker:m ~forward:false file
          | Wait m ->
              if waits < patience then begin
                Proc.delay (t.backoff_ms *. float_of_int (min 8 (1 lsl min waits 3)));
                await (waits + 1)
              end
              else begin
                bump t "txn.force_aborts";
                tpoint t
                  (Trace.Txn_resolve
                     {
                       txn = m.Txnmark.seq;
                       file_obj = file.Capability.obj;
                       action = "force_abort";
                     });
                let* final = decide_record t ~record:m.Txnmark.record ~commit:false in
                apply t ~marker:m ~forward:(final = Committed) file
              end
        in
        await 0
  in
  Trace.close_span t.trace span;
  result

(* {2 The coordinator} *)

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

(* One participant needs no coordination: the single-shard commit is
   already atomic. In-doubt files are resolved inline and retried. *)
let exec_single t part =
  let rec go tries =
    if tries > max_hops then Error (Failed (Store_failure "txn: in-doubt resolution starved"))
    else begin
      rt t;
      match CC.begin_txn t.client part.file with
      | Error (Txn_in_doubt _) -> (
          match resolve_in_doubt t ~patience:t.pending_patience part.file with
          | Ok () -> go (tries + 1)
          | Error e -> Error (Failed e))
      | Error e -> Error (Failed e)
      | Ok h -> (
          let ran =
            List.fold_left
              (fun acc op ->
                let* () = acc in
                match op with
                | Read path ->
                    rt t;
                    let* (_ : bytes) = CC.Txn.read h.CC.txn path in
                    Ok ()
                | Write (path, data) ->
                    rt t;
                    CC.Txn.write h.CC.txn path data
                | Rmw (path, f) ->
                    rt ~n:2 t;
                    let* data = CC.Txn.read h.CC.txn path in
                    CC.Txn.write h.CC.txn path (f data))
              (Ok ()) part.ops
          in
          match ran with
          | Error e ->
              ignore (CC.abort h : unit r);
              if e = Conflict then Error (Local e) else Error (Failed e)
          | Ok () -> (
              rt t;
              match CC.commit t.client h with
              | Ok () ->
                  bump t "txn.committed";
                  Ok ()
              | Error Conflict ->
                  bump t "txn.aborted.local";
                  Error (Local Conflict)
              | Error e -> Error (Failed e)))
    end
  in
  bump t "txn.fastpath";
  go 0

let coordinated t ~crash_at ~on_record parts =
  let seq = fresh_seq t in
  let crash p = match crash_at with Some q when q = p -> raise Crashed | _ -> () in
  let span = Trace.open_span t.trace ~kind:"txn.coord" ~label:(string_of_int seq) () in
  let finish r =
    Trace.close_span t.trace span;
    r
  in
  bump t "txn.coordinated";
  (* Stage in capability order so two transactions over the same files
     collide head-on (and resolve) instead of staging each other's tails. *)
  let parts =
    List.sort (fun a b -> Capability.compare a.file b.file) parts
  in
  match parts with
  | [] -> finish (Ok ())
  | first :: _ -> (
      let made_record =
        (* The record lives on the first participant's shard — placement
           is explicit, so the round-robin cursor (and with it the
           workload's file layout) is unperturbed. *)
        let* _, shard, _ = CC.conn_for t.client first.file in
        rt t;
        CC.create_file_on t.client shard
          ~data:(Bytes.of_string Txnmark.state_pending)
      in
      match made_record with
      | Error e -> finish (Error (Failed e))
      | Ok record -> (
          (match on_record with Some f -> f record | None -> ());
          let unstage_all staged =
            List.iter
              (fun (file, marker) ->
                match apply t ~marker ~forward:false file with
                | Ok () -> ()
                | Error _ ->
                    (* A resolver will finish from the marker. *)
                    bump t "txn.unstage_deferred")
              staged
          in
          (* Close the record first, so no resolver can roll the staged
             prefix forward while it is being unstaged. The record only
             ever says aborted here: nobody else writes committed. *)
          let rollback staged wrap e =
            (match decide_record t ~record ~commit:false with
            | Ok _ -> unstage_all staged
            | Error _ -> bump t "txn.rollback_deferred");
            Error (wrap e)
          in
          let rec stage_all staged idx = function
            | [] -> Ok (List.rev staged)
            | part :: rest -> (
                crash (Before_stage idx);
                let rec attempt tries =
                  if tries > 4 * max_hops then
                    Error (`Failed (Store_failure "txn: staging starved"))
                  else
                    match stage t ~record ~seq part with
                    | Ok file -> Ok file
                    | Error (Txn_in_doubt _) -> (
                        (* Another transaction holds this participant:
                           resolve it (waiting out a live coordinator,
                           force-aborting a dead one) and try again. *)
                        match
                          resolve_in_doubt t ~patience:t.pending_patience part.file
                        with
                        | Ok () -> attempt (tries + 1)
                        | Error e -> Error (`Failed e))
                    | Error Conflict ->
                        (* Only this participant raced an ordinary commit:
                           earlier parts stay frozen behind their markers,
                           so re-staging just this one against the new
                           current version is sound — and far cheaper than
                           redoing the transaction. This is the structural
                           edge over a prepare/decide coordinator, which
                           can only discover the same race by aborting
                           every prepared participant. *)
                        bump t "txn.stage_retries";
                        if tries mod 4 = 3 then Proc.delay t.backoff_ms;
                        attempt (tries + 1)
                    | Error e -> Error (`Failed e)
                in
                match attempt 0 with
                | Ok entry -> stage_all (entry :: staged) (idx + 1) rest
                | Error (`Local e) ->
                    bump t "txn.aborted.local";
                    rollback staged (fun e -> Local e) e
                | Error (`Failed e) -> rollback staged (fun e -> Failed e) e)
          in
          match stage_all [] 0 parts with
          | Error _ as e -> finish e
          | Ok staged -> (
              crash Before_decide;
              let dspan =
                Trace.open_span t.trace ~kind:"txn.decide" ~label:(string_of_int seq) ()
              in
              let decision = decide_record t ~record ~commit:true in
              (match decision with
              | Ok final ->
                  tpoint t (Trace.Txn_decide { txn = seq; committed = final = Committed })
              | Error _ -> ());
              Trace.close_span t.trace dspan;
              match decision with
              | Error e -> finish (Error (Failed e))
              | Ok Aborted ->
                  (* A contender force-aborted the record between our last
                     stage and the decide. *)
                  bump t "txn.aborted.cross";
                  unstage_all staged;
                  finish (Error (Cross Conflict))
              | Ok (Pending | Unknown_record) ->
                  finish (Error (Failed (Store_failure "txn: impossible record state")))
              | Ok Committed ->
                  crash After_decide;
                  bump t "txn.committed";
                  (* The transaction is committed the moment the record
                     is; flips are completion, not decision. A flip that
                     cannot reach its shard is deferred to resolvers. *)
                  List.iteri
                    (fun i (file, marker) ->
                      crash (Mid_flip i);
                      match apply t ~marker ~forward:true file with
                      | Ok () -> ()
                      | Error _ -> bump t "txn.flip_deferred")
                    staged;
                  finish (Ok ()))))

let exec ?crash_at ?on_record t parts =
  match parts with
  | [] -> Ok ()
  | [ part ] -> exec_single t part
  | parts -> coordinated t ~crash_at ~on_record parts

(* {2 Recovery} *)

let sweep t files =
  List.fold_left
    (fun acc file ->
      let* n = acc in
      let* root = root_data t file in
      if Txnmark.is_marker root then
        let* () = resolve_in_doubt t ~patience:0 file in
        Ok (n + 1)
      else Ok n)
    (Ok 0) files
