(** The storage abstraction the file service runs on.

    A [Store.t] is a first-class bundle of block operations. The same file
    service code runs over an in-memory table (unit tests, benchmarks), a
    {!Afs_block.Block_server} on a simulated disk, or an
    {!Afs_stable.Stable_pair} (crash experiments) — that separation of file
    service from block service is itself a design point of the paper (§4).

    [lock]/[unlock] expose the block server's simple locking facility, used
    only for the commit critical section: "lock and read a block, examine
    and modify it, then write and unlock the block again". *)

type t = {
  block_size : int;
  allocate : unit -> (int, string) result;
  free : int -> (unit, string) result;
  read : int -> (bytes, string) result;
  write : int -> bytes -> (unit, string) result;
  write_batch : (int * bytes) list -> (unit, string) result;
      (** The writes in order, stopping at the first error, so the durable
          state is always a prefix of the batch. Plain backends perform
          the single writes; the stable pair amortises its companion hop
          across the whole batch (one A→B→A round trip) — the leg the
          group-commit publish stage rides. *)
  lock : int -> bool;  (** False when another holder has it; no queueing. *)
  unlock : int -> unit;
  list_blocks : unit -> (int list, string) result;
      (** All allocated blocks — the §4 per-account recovery listing. The
          garbage collector's sweep and crash recovery both rely on it. *)
}

type op = Alloc of int | Free of int | Write of int * bytes
(** One store mutation, as recorded and replayed by the replication
    commit stream: block numbers are absolute, so a replayed [Alloc]
    checks that the applying store hands back the same number. *)

val apply_op : t -> op -> (unit, string) result
(** Replay one operation. [Alloc b] allocates and fails if the store's
    frontier does not yield exactly [b]. *)

val apply_ops : t -> op list -> (unit, string) result
(** Replay a batch in order, stopping at the first error. Consecutive
    [Write]s are coalesced into one {!field:write_batch} call, so a
    stable-pair replica pays its companion hop once per run of writes. *)

val memory : ?block_size:int -> unit -> t
(** Unbounded in-memory store (default block size 32768). *)

val of_block_server :
  Afs_block.Block_server.t -> account:Afs_block.Block_server.account -> t
(** All operations performed under the given account; the block server's
    per-account protection applies. *)

val of_stable_pair : Afs_stable.Stable_pair.t -> t
(** Routes each operation to a currently-online server of the pair, so the
    file service keeps running across single-server crashes (§5.4.1). *)

val counting : t -> t * (unit -> int * int)
(** [counting s] wraps [s]; the second component returns (reads, writes)
    performed through the wrapper — used by experiments that report page
    I/O rather than time. *)

type worm_stats = {
  bulk_writes : int;  (** Blocks etched onto the write-once medium. *)
  bulk_blocks : int;
  index_writes : int;  (** Rewrites absorbed by the magnetic index. *)
  index_blocks : int;  (** Blocks that migrated to the index. *)
}

val worm_hybrid :
  ?bulk_media:Afs_disk.Media.t ->
  ?index_media:Afs_disk.Media.t ->
  blocks:int ->
  block_size:int ->
  unit ->
  t * (unit -> worm_stats)
(** The §6 optical configuration as Figure 2 implies it: a write-once bulk
    medium plus a small rewritable index. A block is etched onto the bulk
    medium on first write and silently migrates to the index the first
    time it needs rewriting — in practice only version pages do (commit
    references and flags), so "the top of the tree" ends up on magnetic
    media while data pages are written exactly once. Freeing a bulk block
    merely unlinks it: WORM space is unreclaimable by design. *)
