type t =
  | Conflict
  | Invalid_capability
  | No_such_file of int
  | No_such_version of int
  | Version_not_mutable
  | Bad_path of Afs_util.Pagepath.t
  | Bad_index of { path : Afs_util.Pagepath.t; index : int; nrefs : int }
  | Page_too_large of { bytes : int; limit : int }
  | Locked_out of { port : int }
  | Not_superfile
  | Moved of Afs_util.Capability.t
  | Txn_in_doubt of Afs_util.Capability.t
  | Store_failure of string

let pp ppf = function
  | Conflict -> Fmt.string ppf "serialisability conflict; redo the update"
  | Invalid_capability -> Fmt.string ppf "invalid capability"
  | No_such_file obj -> Fmt.pf ppf "no such file (object %d)" obj
  | No_such_version obj -> Fmt.pf ppf "no such version (object %d)" obj
  | Version_not_mutable -> Fmt.string ppf "version is committed or aborted"
  | Bad_path p -> Fmt.pf ppf "no page at path %a" Afs_util.Pagepath.pp p
  | Bad_index { path; index; nrefs } ->
      Fmt.pf ppf "index %d out of range (nrefs=%d) at %a" index nrefs Afs_util.Pagepath.pp
        path
  | Page_too_large { bytes; limit } -> Fmt.pf ppf "page of %d bytes exceeds %d" bytes limit
  | Locked_out { port } -> Fmt.pf ppf "locked by update holding port %d" port
  | Not_superfile -> Fmt.string ppf "file is not a super-file"
  | Moved cap -> Fmt.pf ppf "file migrated to %a" Afs_util.Capability.pp cap
  | Txn_in_doubt record ->
      Fmt.pf ppf "in cross-shard transaction; record %a" Afs_util.Capability.pp record
  | Store_failure msg -> Fmt.pf ppf "store failure: %s" msg

let to_string = Fmt.str "%a" pp

type 'a r = ('a, t) result

let ( let* ) = Result.bind
