(** Typed page access over a {!Store.t}, with a bounded write-back cache.

    The paper notes (§5.4) that the page cache "does not have to be a
    write-through cache": pages written in a version need not reach stable
    storage until just before commit. This module implements exactly that
    over a capacity-bounded LRU: {!write} updates the cache and marks the
    block dirty; {!flush} makes everything durable; the commit path calls
    {!flush} first, and crash simulation calls {!drop_volatile} to lose
    whatever was not flushed.

    Eviction: when an insertion pushes the cache past its capacity, the
    least-recently-used unpinned entries are dropped; a dirty evictee is
    written back to the store first, so eviction never loses a write —
    only {!drop_volatile} (a crash) can do that. Blocks held under {!lock}
    are pinned and never evicted, keeping the §5.2 commit critical
    section's block resident. Counters ([cache.hits], [cache.misses],
    [cache.evictions], [cache.writebacks]) accumulate in {!counters}. *)

type t

val default_capacity : int
(** 4096 pages. *)

val create : ?cache:bool -> ?capacity:int -> ?counters:Afs_util.Stats.Counter.t -> Store.t -> t
(** [cache:false] makes every write write-through and every read hit the
    store — the ablation baseline. [capacity] bounds the number of cached
    pages (default {!default_capacity}; raises [Invalid_argument] when
    [< 1]). [counters] lets the owner share a counter set (the server
    passes its own, so cache statistics appear with the commit ones). *)

val store : t -> Store.t

val page_size_limit : t -> int
(** The store's block size, which by §5 is at most 32K: a page must fit in
    one atomic transaction message. *)

val capacity : t -> int
val counters : t -> Afs_util.Stats.Counter.t

val allocate : t -> (int, Errors.t) result
val free : t -> int -> unit

val read : t -> int -> (Page.t, Errors.t) result

val write : t -> int -> Page.t -> (unit, Errors.t) result
(** Cached, deferred write. Fails with [Page_too_large] if the encoded
    page exceeds the block size; a store failure while writing back a
    dirty evictee also surfaces here. *)

val write_through : t -> int -> Page.t -> (unit, Errors.t) result
(** Immediately durable (used for version pages in the commit path). *)

val write_through_batch : t -> (int * Page.t) list -> (unit, Errors.t) result
(** Durably write all pages in one store [write_batch] — the group-commit
    publish leg, one amortised stable-storage round trip on a stable-pair
    backend. Every page is size-checked before the first write; the store
    stops at the first error, so a failure leaves a prefix of the batch
    durable and drops every cached copy of the batch's blocks. *)

val flush : t -> (unit, Errors.t) result
val flush_block : t -> int -> (unit, Errors.t) result

val dirty_count : t -> int

val lock : t -> int -> bool
(** Store lock plus a pin: the block's cache entry (present or created
    while locked) is exempt from eviction until {!unlock}. *)

val unlock : t -> int -> unit

val drop_volatile : t -> unit
(** Forget the cache, clean and dirty alike: simulates a server crash.
    Unflushed writes are lost, exactly as the paper intends for
    uncommitted versions. *)

val invalidate : t -> int -> unit
(** Drop one block from the cache (used after another server wrote it). *)

val refresh : t -> int -> unit
(** Like {!invalidate} but keeps a dirty (locally written, unflushed)
    entry: used before re-examining a commit reference that another
    server may have set. *)
