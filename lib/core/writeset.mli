(** Incrementally-maintained concurrency-control administration (§5.4).

    The write set of an uncommitted version — more precisely, the full
    flag map: every copied path with the C/R/W/S/M flags its parent
    reference holds. The server grows it as {!Server.record_access_at}
    records flags, so deriving the §5.4 write set costs O(pages written)
    instead of the O(tree) flag walk, and the §5.2 serialisability test
    can reject conflicting commits from the two maps alone, before any
    page reads.

    Canonical representation: an ordered map over {!Afs_util.Pagepath},
    whose lexicographic order puts a page immediately before its
    descendants — subtree operations are range scans, derived lists come
    out sorted root-first (the order [Serialise.written_paths] produces).

    Invariant maintained by the server: for a version the server created,
    the map equals exactly the flags reachable in the version's page
    tree. Structural edits (insert/remove/move/split) must be mirrored
    with {!open_gap} / {!remove_at} / {!extract} / {!graft} so recorded
    paths keep naming the pages they named. *)

type t

val empty : t

val cardinal : t -> int

val flags_at : t -> Afs_util.Pagepath.t -> Flags.t
(** [Flags.clear] for paths never accessed. *)

val record : t -> Afs_util.Pagepath.t -> Flags.access -> t
(** Accumulate the flags implied by an access, as {!Flags.record} does. *)

val paths : t -> Afs_util.Pagepath.t list
(** All recorded (copied) paths, sorted root-first. *)

val written_paths : t -> Afs_util.Pagepath.t list
(** Paths with [W] or [M] set — the §5.4 write set — sorted root-first. *)

(** {2 Structural edits} *)

val open_gap : t -> parent:Afs_util.Pagepath.t -> index:int -> t
(** A reference was inserted under [parent] at [index]: recorded siblings
    at [index] and beyond (with their subtrees) shift up by one. *)

val close_gap : t -> parent:Afs_util.Pagepath.t -> index:int -> t
(** A reference was removed: siblings beyond [index] shift down; anything
    still recorded inside the removed subtree is dropped. *)

val remove_at : t -> parent:Afs_util.Pagepath.t -> index:int -> t
(** The subtree at [parent].[index] was removed: drop its recordings and
    close the gap. *)

val extract : t -> Afs_util.Pagepath.t -> t * t
(** [(subtree, rest)]: the recordings under the given path (inclusive),
    re-rooted so the path itself maps to the root, and everything else. *)

val extract_children_from : t -> parent:Afs_util.Pagepath.t -> from:int -> t * t
(** Like {!extract} for the child range [[from..]] of [parent], re-rooted
    so child [from] becomes child [0] (the split-page truncation). *)

val graft : t -> at:Afs_util.Pagepath.t -> t -> t
(** [graft t ~at sub] re-roots [sub] at the given path and merges it in
    (the re-attachment half of move/split). *)

(** {2 Serialisability pre-test} *)

val conflict : candidate:t -> committed:t -> (Afs_util.Pagepath.t * string) option
(** The §5.2 conflict conditions evaluated over the two flag maps with no
    page reads: data written by [committed] and read by [candidate];
    references modified by [committed] and searched by [candidate]; or
    [candidate] restructured a reference table over pages [committed]
    accessed below. [None] means the tree walk will find the schedule
    serialisable (the maps are exactly the trees' flags). *)

val union : t -> t -> t
(** Pointwise {!Flags.union} of two write sets over the same file's
    coordinate space. The conflict conditions are monotone per-path
    predicates of the committed flags, so
    [conflict ~candidate ~committed:(union a b)] is [Some] iff it would
    be against [a] or against [b] — one pass over a group-commit batch's
    admitted write sets answers for every member. *)

val equal : t -> t -> bool
