module Block_server = Afs_block.Block_server
module Stable_pair = Afs_stable.Stable_pair

type t = {
  block_size : int;
  allocate : unit -> (int, string) result;
  free : int -> (unit, string) result;
  read : int -> (bytes, string) result;
  write : int -> bytes -> (unit, string) result;
  write_batch : (int * bytes) list -> (unit, string) result;
  lock : int -> bool;
  unlock : int -> unit;
  list_blocks : unit -> (int list, string) result;
}

type op = Alloc of int | Free of int | Write of int * bytes

let apply_op t = function
  | Alloc b -> (
      (* Replaying an allocation must land on the same block number: the
         shipped stream carries absolute block ids, so the applying
         store's allocation frontier has to track the origin's exactly. *)
      match t.allocate () with
      | Ok b' when b' = b -> Ok ()
      | Ok b' -> Error (Printf.sprintf "alloc replay: expected block %d, got %d" b b')
      | Error _ as e -> e)
  | Free b -> t.free b
  | Write (b, data) -> t.write b data

(* Consecutive writes ride one [write_batch] (the stable pair amortises
   its companion hop across them); alloc/free replay one at a time. *)
let apply_ops t ops =
  let flush = function
    | [] -> Ok ()
    | run -> t.write_batch (List.rev run)
  in
  let rec go run = function
    | [] -> flush run
    | Write (b, data) :: rest -> go ((b, data) :: run) rest
    | op :: rest -> (
        match flush run with
        | Error _ as e -> e
        | Ok () -> ( match apply_op t op with Ok () -> go [] rest | Error _ as e -> e))
  in
  go [] ops

(* Default batch write: the single writes in order, stopping at the first
   error so the durable state is always a prefix of the batch. Backends
   with a real amortisation opportunity (the stable pair's companion hop)
   override this. *)
let sequential_batch write entries =
  let rec go = function
    | [] -> Ok ()
    | (b, data) :: rest -> ( match write b data with Ok () -> go rest | Error _ as e -> e)
  in
  go entries

let memory ?(block_size = 32768) () =
  let blocks : (int, bytes) Hashtbl.t = Hashtbl.create 1024 in
  let allocated : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let locks : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let next = ref 0 in
  let write b data =
    if Bytes.length data > block_size then Error "block too large"
    else begin
      Hashtbl.replace allocated b ();
      Hashtbl.replace blocks b (Bytes.copy data);
      Ok ()
    end
  in
  {
    block_size;
    allocate =
      (fun () ->
        let b = !next in
        incr next;
        Hashtbl.replace allocated b ();
        Ok b);
    free =
      (fun b ->
        Hashtbl.remove blocks b;
        Hashtbl.remove allocated b;
        Ok ());
    read =
      (fun b ->
        match Hashtbl.find_opt blocks b with
        | Some data -> Ok (Bytes.copy data)
        | None -> Error (Printf.sprintf "block %d never written" b));
    write;
    write_batch = sequential_batch write;
    lock =
      (fun b ->
        if Hashtbl.mem locks b then false
        else begin
          Hashtbl.replace locks b ();
          true
        end);
    unlock = (fun b -> Hashtbl.remove locks b);
    list_blocks =
      (fun () -> Ok (List.sort compare (Hashtbl.fold (fun b () acc -> b :: acc) allocated [])));
  }

let string_of_block_error = Fmt.str "%a" Block_server.pp_error

let of_block_server server ~account =
  let lift : type a. a Block_server.outcome -> (a, string) result =
   fun outcome -> Result.map_error string_of_block_error outcome.Block_server.result
  in
  let write b data = lift (Block_server.write server account b data) in
  {
    block_size = Block_server.block_size server;
    allocate = (fun () -> lift (Block_server.allocate server account));
    free = (fun b -> lift (Block_server.deallocate server account b));
    read = (fun b -> lift (Block_server.read server account b));
    write;
    write_batch = sequential_batch write;
    lock =
      (fun b ->
        match (Block_server.lock server account b).Block_server.result with
        | Ok () -> true
        | Error _ -> false);
    unlock = (fun b -> ignore (Block_server.unlock server account b));
    list_blocks = (fun () -> Ok (Block_server.owned_blocks server account));
  }

let string_of_stable_error = Fmt.str "%a" Stable_pair.pp_error

let of_stable_pair pair =
  (* Block-server-style locks are not part of the stable pair; the file
     service's commit section still needs mutual exclusion, so we keep it
     here, colocated with the routing. A real deployment would put it in
     the block servers (§5.2: "if the disk server implements a test-and-set
     operation, any server can be allowed to carry out a commit"). *)
  let locks : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let allocated : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let via f =
    match Stable_pair.some_online pair with
    | None -> Error "no stable server online"
    | Some i -> f i
  in
  let lift : type a. a Stable_pair.outcome -> (a, string) result =
   fun outcome -> Result.map_error string_of_stable_error outcome.Stable_pair.result
  in
  {
    block_size = Stable_pair.block_size pair;
    allocate =
      (fun () ->
        (* The stable pair allocates on first write; pin the number by
           allocating with an empty payload. *)
        via (fun i ->
            match lift (Stable_pair.allocate_write pair i Bytes.empty) with
            | Ok b ->
                Hashtbl.replace allocated b ();
                Ok b
            | Error _ as e -> e));
    free =
      (fun b ->
        via (fun i ->
            Hashtbl.remove allocated b;
            lift (Stable_pair.free pair i b)));
    read = (fun b -> via (fun i -> lift (Stable_pair.read pair i b)));
    write = (fun b data -> via (fun i -> lift (Stable_pair.write pair i b data)));
    (* The whole batch rides one A→B→A round trip: the companion hop is
       charged once however many commit references the batch carries. *)
    write_batch = (fun entries -> via (fun i -> lift (Stable_pair.write_batch pair i entries)));
    lock =
      (fun b ->
        if Hashtbl.mem locks b then false
        else begin
          Hashtbl.replace locks b ();
          true
        end);
    unlock = (fun b -> Hashtbl.remove locks b);
    list_blocks =
      (fun () -> Ok (List.sort compare (Hashtbl.fold (fun b () acc -> b :: acc) allocated [])));
  }

type worm_stats = {
  bulk_writes : int;
  bulk_blocks : int;
  index_writes : int;
  index_blocks : int;
}

let worm_hybrid ?(bulk_media = Afs_disk.Media.optical)
    ?(index_media = Afs_disk.Media.magnetic) ~blocks ~block_size () =
  let module Disk = Afs_disk.Disk in
  let bulk = Disk.create ~media:bulk_media ~blocks ~block_size () in
  let index = Disk.create ~media:index_media ~blocks ~block_size () in
  let redirected : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let allocated : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let locks : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let next = ref 0 in
  let lift_disk : type a. a Disk.outcome -> (a, string) result =
   fun o -> Result.map_error (Fmt.str "%a" Disk.pp_error) o.Disk.result
  in
  let write b data =
    if Hashtbl.mem redirected b then lift_disk (Disk.write index b data)
    else if Disk.is_written bulk b then begin
      Hashtbl.replace redirected b ();
      lift_disk (Disk.write index b data)
    end
    else lift_disk (Disk.write bulk b data)
  in
  let store =
    {
      block_size;
      allocate =
        (fun () ->
          let b = !next in
          incr next;
          Hashtbl.replace allocated b ();
          Ok b);
      free =
        (fun b ->
          Hashtbl.remove allocated b;
          (* Bulk space is write-once and stays occupied; index space is
             reclaimable. *)
          if Hashtbl.mem redirected b then begin
            Hashtbl.remove redirected b;
            ignore (Disk.erase index b)
          end;
          Ok ());
      read =
        (fun b ->
          if Hashtbl.mem redirected b then lift_disk (Disk.read index b)
          else lift_disk (Disk.read bulk b));
      write;
      write_batch = sequential_batch write;
      lock =
        (fun b ->
          if Hashtbl.mem locks b then false
          else begin
            Hashtbl.replace locks b ();
            true
          end);
      unlock = (fun b -> Hashtbl.remove locks b);
      list_blocks =
        (fun () ->
          Ok (List.sort compare (Hashtbl.fold (fun b () acc -> b :: acc) allocated [])));
    }
  in
  let stats () =
    let b = Disk.stats bulk and ix = Disk.stats index in
    {
      bulk_writes = b.Disk.writes;
      bulk_blocks = b.Disk.blocks_in_use;
      index_writes = ix.Disk.writes;
      index_blocks = Hashtbl.length redirected;
    }
  in
  (store, stats)

let counting inner =
  let reads = ref 0 and writes = ref 0 in
  ( {
      inner with
      read =
        (fun b ->
          incr reads;
          inner.read b);
      write =
        (fun b data ->
          incr writes;
          inner.write b data);
      write_batch =
        (fun entries ->
          writes := !writes + List.length entries;
          inner.write_batch entries);
    },
    fun () -> (!reads, !writes) )
