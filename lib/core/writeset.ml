module Pagepath = Afs_util.Pagepath

(* The concurrency-control administration of one uncommitted version,
   kept incrementally: every copied path mapped to the C/R/W/S/M flags its
   parent reference holds. Canonical representation: Pagepath.Map, whose
   lexicographic order places a page immediately before its descendants,
   so subtree queries are range scans and derived lists come out sorted
   root-first — the same order Serialise.written_paths produces. *)

type t = Flags.t Pagepath.Map.t

let empty = Pagepath.Map.empty

let cardinal = Pagepath.Map.cardinal

let flags_at t path =
  match Pagepath.Map.find_opt path t with Some f -> f | None -> Flags.clear

let record t path access =
  Pagepath.Map.update path
    (fun f -> Some (Flags.record (Option.value ~default:Flags.clear f) access))
    t

let paths t = List.map fst (Pagepath.Map.bindings t)

let written_paths t =
  Pagepath.Map.fold
    (fun p (f : Flags.t) acc -> if f.Flags.w || f.Flags.m then p :: acc else acc)
    t []
  |> List.rev

(* {2 Structural edits}

   These mirror the server's reference-table operations so the recorded
   paths keep naming the pages they named before the edit. *)

(* [Some suffix] when [prefix] is a (possibly equal) prefix of [l]. *)
let rec strip_prefix prefix l =
  match (prefix, l) with
  | [], suffix -> Some suffix
  | _, [] -> None
  | x :: p', y :: l' -> if x = y then strip_prefix p' l' else None

let rebuild f t =
  Pagepath.Map.fold
    (fun p flags acc ->
      match f p flags with Some p' -> Pagepath.Map.add p' flags acc | None -> acc)
    t Pagepath.Map.empty

let open_gap t ~parent ~index =
  let pl = Pagepath.to_list parent in
  rebuild
    (fun p _ ->
      match strip_prefix pl (Pagepath.to_list p) with
      | Some (j :: rest) when j >= index -> Some (Pagepath.of_list (pl @ ((j + 1) :: rest)))
      | _ -> Some p)
    t

let close_gap t ~parent ~index =
  let pl = Pagepath.to_list parent in
  rebuild
    (fun p _ ->
      match strip_prefix pl (Pagepath.to_list p) with
      | Some (j :: rest) when j > index -> Some (Pagepath.of_list (pl @ ((j - 1) :: rest)))
      | Some (j :: _) when j = index -> None (* inside the removed subtree *)
      | _ -> Some p)
    t

let remove_at t ~parent ~index = close_gap t ~parent ~index

let extract t path =
  let pl = Pagepath.to_list path in
  Pagepath.Map.fold
    (fun p flags (sub, rest) ->
      match strip_prefix pl (Pagepath.to_list p) with
      | Some suffix -> (Pagepath.Map.add (Pagepath.of_list suffix) flags sub, rest)
      | None -> (sub, Pagepath.Map.add p flags rest))
    t (Pagepath.Map.empty, Pagepath.Map.empty)

let extract_children_from t ~parent ~from =
  let pl = Pagepath.to_list parent in
  Pagepath.Map.fold
    (fun p flags (sub, rest) ->
      match strip_prefix pl (Pagepath.to_list p) with
      | Some (j :: tail) when j >= from ->
          (Pagepath.Map.add (Pagepath.of_list ((j - from) :: tail)) flags sub, rest)
      | _ -> (sub, Pagepath.Map.add p flags rest))
    t (Pagepath.Map.empty, Pagepath.Map.empty)

let graft t ~at sub =
  let al = Pagepath.to_list at in
  Pagepath.Map.fold
    (fun q flags acc -> Pagepath.Map.add (Pagepath.of_list (al @ Pagepath.to_list q)) flags acc)
    sub t

(* {2 The serialisability pre-test}

   Exactly the conflict conditions of the Serialise tree walk, evaluated
   over the two flag maps with no page reads. A path can conflict only
   where both versions copied it (clear flags conflict with nothing), so
   iterating the candidate's map and probing the committed one covers
   every case; for the candidate's M pages the walk rejects any page the
   committed update copied below, which here is a single ordered-map
   neighbour probe (descendants sort immediately after their ancestor). *)

let conflict ~candidate ~committed =
  let exception Found of Pagepath.t * string in
  let check p (fb : Flags.t) =
    let fc = flags_at committed p in
    if fc.Flags.w && fb.Flags.r then
      raise (Found (p, "data written by committed, read by candidate"));
    if fc.Flags.m && fb.Flags.s then
      raise (Found (p, "references modified by committed, searched by candidate"));
    if fb.Flags.m then
      match
        Pagepath.Map.find_first_opt (fun q -> Pagepath.compare q p > 0) committed
      with
      | Some (q, _) when Pagepath.is_prefix p q ->
          raise
            (Found (q, "candidate restructured references over pages the committed update accessed"))
      | _ -> ()
  in
  match Pagepath.Map.iter check candidate with
  | () -> None
  | exception Found (p, reason) -> Some (p, reason)

let equal = Pagepath.Map.equal Flags.equal

(* Per-path least upper bound. Every conflict condition above is monotone
   in the committed flags, so [conflict ~candidate ~committed:(union a b)]
   answers [Some] exactly when it would against [a] or against [b] — which
   lets a group-commit batch pre-test a member against all already-admitted
   write sets in one pass instead of one per winner. *)
let union = Pagepath.Map.union (fun _ a b -> Some (Flags.union a b))
