type t = { c : bool; r : bool; w : bool; s : bool; m : bool }

let clear = { c = false; r = false; w = false; s = false; m = false }

let is_legal t =
  let implies a b = (not a) || b in
  implies t.r t.c && implies t.w t.c && implies t.s t.c && implies t.m t.c
  && implies t.m t.s

let make ?(r = false) ?(w = false) ?(s = false) ?(m = false) ~copied () =
  let t = { c = copied; r; w; s; m } in
  if not (is_legal t) then invalid_arg "Flags.make: illegal combination";
  t

type access = Read | Write | Search | Modify

let record t = function
  | Read -> { t with c = true; r = true }
  | Write -> { t with c = true; w = true }
  | Search -> { t with c = true; s = true }
  | Modify -> { t with c = true; s = true; m = true }

(* Encoding: 0 is the all-clear state; otherwise C is set and we number the
   remaining (R, W, (S,M)) choices with (S,M) in {00, 10, 11}. *)

let sm_code t = if t.m then 2 else if t.s then 1 else 0

let to_nibble t =
  if not t.c then 0
  else
    let r = if t.r then 1 else 0 in
    let w = if t.w then 1 else 0 in
    1 + (((r * 2) + w) * 3) + sm_code t

let of_nibble = function
  | 0 -> Some clear
  | n when n >= 1 && n <= 12 ->
      let code = n - 1 in
      let sm = code mod 3 in
      let rw = code / 3 in
      let w = rw land 1 = 1 in
      let r = rw land 2 = 2 in
      Some { c = true; r; w; s = sm >= 1; m = sm = 2 }
  | _ -> None

let all = List.filter_map of_nibble (List.init 13 Fun.id)

let union a b =
  let t =
    {
      c = a.c || b.c;
      r = a.r || b.r;
      w = a.w || b.w;
      s = a.s || b.s;
      m = a.m || b.m;
    }
  in
  assert (is_legal t);
  t

let equal = ( = )

let pp ppf t =
  let bit flag ch = if flag then ch else '-' in
  Fmt.pf ppf "%c%c%c%c%c" (bit t.c 'C') (bit t.r 'R') (bit t.w 'W') (bit t.s 'S')
    (bit t.m 'M')
