module Lru = Afs_util.Lru
module Stats = Afs_util.Stats

type entry = { mutable page : Page.t; mutable dirty : bool }

type t = {
  store : Store.t;
  cache_enabled : bool;
  capacity : int;
  cache : (int, entry) Lru.t;
  (* Blocks held under a store lock: their cache entries are pinned so the
     commit critical section never loses its block to eviction. *)
  locked : (int, unit) Hashtbl.t;
  mutable dirty_total : int;
  counters : Stats.Counter.t;
}

let default_capacity = 4096

let create ?(cache = true) ?(capacity = default_capacity) ?counters store =
  if capacity < 1 then invalid_arg "Pagestore.create: capacity must be positive";
  {
    store;
    cache_enabled = cache;
    capacity;
    cache = Lru.create ~capacity;
    locked = Hashtbl.create 4;
    dirty_total = 0;
    counters = (match counters with Some c -> c | None -> Stats.Counter.create ());
  }

let store t = t.store
let page_size_limit t = t.store.Store.block_size
let capacity t = t.capacity
let counters t = t.counters
let bump ?by t name = Stats.Counter.incr ?by t.counters name

let allocate t =
  match t.store.Store.allocate () with
  | Ok b -> Ok b
  | Error msg -> Error (Errors.Store_failure msg)

let store_write t b page =
  match t.store.Store.write b (Page.encode page) with
  | Ok () -> Ok ()
  | Error msg -> Error (Errors.Store_failure msg)

(* Bring the cache back within capacity, oldest unpinned entries first.
   A dirty evictee is written back before it is dropped (the §5.4
   write-back contract: eviction must not lose writes), so a store error
   here surfaces to the caller and the entry survives. *)
let rec evict_excess t =
  if not (Lru.needs_eviction t.cache) then Ok ()
  else
    match Lru.lru_unpinned t.cache with
    | None -> Ok () (* Everything pinned: transiently over capacity. *)
    | Some (b, e) ->
        let write_back =
          if e.dirty then
            match store_write t b e.page with
            | Ok () ->
                e.dirty <- false;
                t.dirty_total <- t.dirty_total - 1;
                bump t "cache.writebacks";
                Ok ()
            | Error _ as err -> err
          else Ok ()
        in
        (match write_back with
        | Ok () ->
            Lru.remove t.cache b;
            bump t "cache.evictions";
            evict_excess t
        | Error _ as err -> err)

(* Insert or refresh a cache entry, pinning it when its block is locked
   (the entry may be created inside the critical section, after the lock
   was taken). *)
let cache_set t b entry =
  Lru.set t.cache b entry;
  if Hashtbl.mem t.locked b then ignore (Lru.pin t.cache b);
  evict_excess t

let read t b =
  match if t.cache_enabled then Lru.find t.cache b else None with
  | Some e ->
      bump t "cache.hits";
      Ok e.page
  | None -> (
      match t.store.Store.read b with
      | Error msg -> Error (Errors.Store_failure msg)
      | Ok image -> (
          match Page.decode image with
          | Error msg -> Error (Errors.Store_failure msg)
          | Ok page ->
              if t.cache_enabled then begin
                bump t "cache.misses";
                match cache_set t b { page; dirty = false } with
                | Ok () -> Ok page
                | Error _ as e -> e
              end
              else Ok page))

let check_size t page =
  let bytes = Page.encoded_size page in
  if bytes > page_size_limit t then
    Error (Errors.Page_too_large { bytes; limit = page_size_limit t })
  else Ok bytes

let write t b page =
  match check_size t page with
  | Error _ as e -> e
  | Ok _ ->
      if not t.cache_enabled then store_write t b page
      else (
        match Lru.find t.cache b with
        | Some e ->
            if not e.dirty then t.dirty_total <- t.dirty_total + 1;
            e.page <- page;
            e.dirty <- true;
            Ok ()
        | None ->
            t.dirty_total <- t.dirty_total + 1;
            cache_set t b { page; dirty = true })

let write_through t b page =
  match check_size t page with
  | Error _ as e -> e
  | Ok _ -> (
      match store_write t b page with
      | Error _ as e -> e
      | Ok () ->
          (match Lru.peek t.cache b with
          | Some { dirty = true; _ } -> t.dirty_total <- t.dirty_total - 1
          | _ -> ());
          if t.cache_enabled then cache_set t b { page; dirty = false } else Ok ())

let flush_block t b =
  match Lru.peek t.cache b with
  | Some ({ dirty = true; _ } as e) -> (
      match store_write t b e.page with
      | Error _ as err -> err
      | Ok () ->
          e.dirty <- false;
          t.dirty_total <- t.dirty_total - 1;
          Ok ())
  | Some { dirty = false; _ } | None -> Ok ()

let flush t =
  let dirty_blocks =
    Lru.fold (fun b e acc -> if e.dirty then b :: acc else acc) t.cache []
    (* Deterministic order keeps simulated costs reproducible. *)
    |> List.sort compare
  in
  let rec go = function
    | [] -> Ok ()
    | b :: rest -> ( match flush_block t b with Ok () -> go rest | Error _ as e -> e)
  in
  go dirty_blocks

let dirty_count t = t.dirty_total

let lock t b =
  if t.store.Store.lock b then begin
    Hashtbl.replace t.locked b ();
    ignore (Lru.pin t.cache b);
    true
  end
  else false

let unlock t b =
  Hashtbl.remove t.locked b;
  Lru.unpin t.cache b;
  t.store.Store.unlock b

let drop_volatile t =
  Lru.clear t.cache;
  t.dirty_total <- 0

let drop_entry t b =
  (match Lru.peek t.cache b with
  | Some { dirty = true; _ } -> t.dirty_total <- t.dirty_total - 1
  | _ -> ());
  Lru.remove t.cache b

let refresh t b =
  match Lru.peek t.cache b with
  | Some { dirty = true; _ } -> () (* Our own pending write is authoritative. *)
  | Some { dirty = false; _ } -> Lru.remove t.cache b
  | None -> ()

let invalidate t b = drop_entry t b

(* The group-commit publish leg: every page is size-checked and encoded
   before the first store write (a too-large page cannot leave the batch
   half-written), then the whole batch goes to the store in one
   [write_batch] call — one amortised stable-storage round trip when the
   backend is a stable pair. The store writes in order and stops at the
   first error, so on failure the durable state is a prefix of [entries];
   every cached copy of a batch block is dropped then, since we no longer
   know which writes landed. *)
let write_through_batch t entries =
  let rec encode acc = function
    | [] -> Ok (List.rev acc)
    | (b, page) :: rest -> (
        match check_size t page with
        | Error _ as e -> e
        | Ok _ -> encode ((b, Page.encode page) :: acc) rest)
  in
  match encode [] entries with
  | Error _ as e -> e
  | Ok images -> (
      match t.store.Store.write_batch images with
      | Ok () ->
          let rec settle = function
            | [] -> Ok ()
            | (b, page) :: rest -> (
                (match Lru.peek t.cache b with
                | Some { dirty = true; _ } -> t.dirty_total <- t.dirty_total - 1
                | _ -> ());
                if not t.cache_enabled then settle rest
                else
                  match cache_set t b { page; dirty = false } with
                  | Ok () -> settle rest
                  | Error _ as e -> e)
          in
          settle entries
      | Error msg ->
          List.iter (fun (b, _) -> drop_entry t b) entries;
          Error (Errors.Store_failure msg))

let free t b =
  drop_entry t b;
  ignore (t.store.Store.free b)
