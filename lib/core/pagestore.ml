module Lru = Afs_util.Lru
module Stats = Afs_util.Stats
module Det = Afs_util.Det

(* [stale] marks a clean entry whose block must be re-read from the
   store before it is believed (set by {!refresh}/{!invalidate}, the
   §3.1 cache-integrity points). The re-read compares the store image
   against the page's memoized encoding: commit references are almost
   always unchanged, and an identical image means the cached decoded
   page — and its memo — can be reused without re-parsing. *)
type entry = { mutable page : Page.t; mutable dirty : bool; mutable stale : bool }

type t = {
  store : Store.t;
  cache_enabled : bool;
  capacity : int;
  cache : (int, entry) Lru.t;
  (* Blocks held under a store lock: their cache entries are pinned so the
     commit critical section never loses its block to eviction. *)
  locked : (int, unit) Hashtbl.t;
  (* The dirty set, mirrored from the entries' [dirty] bits. [flush] runs
     at the head of every commit, so it must be O(pages written), not
     O(cache capacity): folding a 4k-entry cache to find half a dozen
     dirty pages was the single largest CPU cost in million-transaction
     runs. *)
  dirty : (int, unit) Hashtbl.t;
  counters : Stats.Counter.t;
  (* Resolved-once cells for the per-read counters, forced at first bump
     so untouched counters stay out of the table exactly as with
     [Counter.incr]. The generic string-keyed bump costs a string hash
     per call, which the cache hit path pays tens of times per
     transaction. *)
  hits : int ref Lazy.t;
  misses : int ref Lazy.t;
}

let default_capacity = 4096

let create ?(cache = true) ?(capacity = default_capacity) ?counters store =
  if capacity < 1 then invalid_arg "Pagestore.create: capacity must be positive";
  let counters = match counters with Some c -> c | None -> Stats.Counter.create () in
  {
    store;
    cache_enabled = cache;
    capacity;
    cache = Lru.create ~capacity;
    locked = Hashtbl.create 4;
    dirty = Hashtbl.create 64;
    counters;
    hits = lazy (Stats.Counter.handle counters "cache.hits");
    misses = lazy (Stats.Counter.handle counters "cache.misses");
  }

let store t = t.store
let page_size_limit t = t.store.Store.block_size
let capacity t = t.capacity
let counters t = t.counters
let bump ?by t name = Stats.Counter.incr ?by t.counters name

let allocate t =
  match t.store.Store.allocate () with
  | Ok b -> Ok b
  | Error msg -> Error (Errors.Store_failure msg)

let store_write t b page =
  let image = Page.encode page in
  match t.store.Store.write b image with
  | Ok () -> Ok ()
  | Error msg -> Error (Errors.Store_failure msg)

(* Bring the cache back within capacity, oldest unpinned entries first.
   A dirty evictee is written back before it is dropped (the §5.4
   write-back contract: eviction must not lose writes), so a store error
   here surfaces to the caller and the entry survives. *)
let rec evict_excess t =
  if not (Lru.needs_eviction t.cache) then Ok ()
  else
    match Lru.lru_unpinned t.cache with
    | None -> Ok () (* Everything pinned: transiently over capacity. *)
    | Some (b, e) ->
        let write_back =
          if e.dirty then
            match store_write t b e.page with
            | Ok () ->
                e.dirty <- false;
                Hashtbl.remove t.dirty b;
                bump t "cache.writebacks";
                Ok ()
            | Error _ as err -> err
          else Ok ()
        in
        (match write_back with
        | Ok () ->
            Lru.remove t.cache b;
            bump t "cache.evictions";
            evict_excess t
        | Error _ as err -> err)

(* Insert or refresh a cache entry, pinning it when its block is locked
   (the entry may be created inside the critical section, after the lock
   was taken). *)
let cache_set t b entry =
  Lru.set t.cache b entry;
  if Hashtbl.mem t.locked b then ignore (Lru.pin t.cache b);
  evict_excess t

let drop_entry_raw t b =
  Hashtbl.remove t.dirty b;
  Lru.remove t.cache b

(* Re-read a stale entry's block. An image identical to the cached
   page's memoized encoding proves the store still holds exactly what we
   decoded (or wrote) before, so the decoded page is reused as is; this
   counts as a miss, like the drop-and-re-read it replaces, and the
   store read it pays for is the §3.1 integrity check itself. *)
let revalidate t b (e : entry) =
  match t.store.Store.read b with
  | Error msg ->
      drop_entry_raw t b;
      Error (Errors.Store_failure msg)
  | Ok image -> (
      let r = Lazy.force t.misses in
      r := !r + 1;
      match Page.memoized_image e.page with
      | Some memo when Bytes.equal memo image ->
          e.stale <- false;
          Ok e.page
      | _ -> (
          match Page.decode ~memo:true image with
          | Error msg -> Error (Errors.Store_failure msg)
          | Ok page ->
              e.page <- page;
              e.stale <- false;
              Ok page))

let read t b =
  match if t.cache_enabled then Lru.find t.cache b else None with
  | Some e ->
      if e.stale then revalidate t b e
      else begin
        let r = Lazy.force t.hits in
        r := !r + 1;
        Ok e.page
      end
  | None -> (
      match t.store.Store.read b with
      | Error msg -> Error (Errors.Store_failure msg)
      | Ok image -> (
          (* The store hands back a fresh copy of an image this system
             wrote with [Page.encode], so it can seed the page's encode
             memo: a page faulted in and flushed back out costs zero
             serialisations. *)
          match Page.decode ~memo:true image with
          | Error msg -> Error (Errors.Store_failure msg)
          | Ok page ->
              if t.cache_enabled then begin
                let r = Lazy.force t.misses in
                r := !r + 1;
                match cache_set t b { page; dirty = false; stale = false } with
                | Ok () -> Ok page
                | Error _ as e -> e
              end
              else Ok page))

let check_size t page =
  let bytes = Page.encoded_size page in
  if bytes > page_size_limit t then
    Error (Errors.Page_too_large { bytes; limit = page_size_limit t })
  else Ok bytes

let write t b page =
  match check_size t page with
  | Error _ as e -> e
  | Ok _ ->
      if not t.cache_enabled then store_write t b page
      else (
        match Lru.find t.cache b with
        | Some e ->
            if not e.dirty then Hashtbl.replace t.dirty b ();
            e.page <- page;
            e.dirty <- true;
            e.stale <- false;
            Ok ()
        | None ->
            Hashtbl.replace t.dirty b ();
            cache_set t b { page; dirty = true; stale = false })

let write_through t b page =
  match check_size t page with
  | Error _ as e -> e
  | Ok _ -> (
      match store_write t b page with
      | Error _ as e -> e
      | Ok () ->
          Hashtbl.remove t.dirty b;
          if t.cache_enabled then cache_set t b { page; dirty = false; stale = false } else Ok ())

let flush_block t b =
  match Lru.peek t.cache b with
  | Some ({ dirty = true; _ } as e) -> (
      match store_write t b e.page with
      | Error _ as err -> err
      | Ok () ->
          e.dirty <- false;
          Hashtbl.remove t.dirty b;
          Ok ())
  | Some { dirty = false; _ } | None -> Ok ()

let flush t =
  (* The dirty set, in the same deterministic ascending order the old
     whole-cache fold produced, without touching clean entries. *)
  let rec go = function
    | [] -> Ok ()
    | b :: rest -> ( match flush_block t b with Ok () -> go rest | Error _ as e -> e)
  in
  if Hashtbl.length t.dirty = 0 then Ok () else go (Det.sorted_keys t.dirty)

let dirty_count t = Hashtbl.length t.dirty

let lock t b =
  if t.store.Store.lock b then begin
    Hashtbl.replace t.locked b ();
    ignore (Lru.pin t.cache b);
    true
  end
  else false

let unlock t b =
  Hashtbl.remove t.locked b;
  Lru.unpin t.cache b;
  t.store.Store.unlock b

let drop_volatile t =
  Lru.clear t.cache;
  Hashtbl.reset t.dirty

let drop_entry t b = drop_entry_raw t b

let refresh t b =
  match Lru.peek t.cache b with
  | Some { dirty = true; _ } -> () (* Our own pending write is authoritative. *)
  | Some e -> e.stale <- true
  | None -> ()

(* Unlike {!refresh}, a pending dirty write is dropped too: the caller
   (the commit test-and-set) trusts nothing it has not re-read. *)
let invalidate t b =
  match Lru.peek t.cache b with
  | Some { dirty = true; _ } -> drop_entry t b
  | Some e -> e.stale <- true
  | None -> ()

(* The group-commit publish leg: every page is size-checked and encoded
   before the first store write (a too-large page cannot leave the batch
   half-written), then the whole batch goes to the store in one
   [write_batch] call — one amortised stable-storage round trip when the
   backend is a stable pair. The store writes in order and stops at the
   first error, so on failure the durable state is a prefix of [entries];
   every cached copy of a batch block is dropped then, since we no longer
   know which writes landed. *)
let write_through_batch t entries =
  let rec encode acc = function
    | [] -> Ok (List.rev acc)
    | (b, page) :: rest -> (
        match check_size t page with
        | Error _ as e -> e
        | Ok _ -> encode ((b, Page.encode page) :: acc) rest)
  in
  match encode [] entries with
  | Error _ as e -> e
  | Ok images -> (
      match t.store.Store.write_batch images with
      | Ok () ->
          let rec settle = function
            | [] -> Ok ()
            | (b, page) :: rest -> (
                Hashtbl.remove t.dirty b;
                if not t.cache_enabled then settle rest
                else
                  match cache_set t b { page; dirty = false; stale = false } with
                  | Ok () -> settle rest
                  | Error _ as e -> e)
          in
          settle entries
      | Error msg ->
          List.iter (fun (b, _) -> drop_entry t b) entries;
          Error (Errors.Store_failure msg))

let free t b =
  drop_entry t b;
  ignore (t.store.Store.free b)
