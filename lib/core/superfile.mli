(** Super-files and the crash-recoverable locking mechanism (§5.3).

    A super-file is a file whose page tree contains the version pages of
    sub-files: the nested "tree of trees" of Figure 2. Updates that span
    several files use locking — it warns in advance that a large update is
    in progress — while updates to individual small files keep using the
    optimistic mechanism untouched.

    Locks are two fields in a version page: the {e top lock}, set on the
    version block of the file being updated, and {e inner locks}, set on
    the current version pages of the sub-files the update visits. Both
    hold the updating transaction's port. Because a port dies with its
    process, no lock ever needs a timeout: a waiter finding a dead port
    either discards the abandoned update (commit reference still unset) or
    finishes it (commit reference set: the new super version is durable
    and names the new sub-versions, so the waiter just sets their commit
    references) — crash recovery with no rollback, no log. *)

type update
(** An in-progress super-file update: the super version, its lock port and
    the sub-files locked so far. *)

val make :
  Server.t -> subfiles:Afs_util.Capability.t list -> ?data:bytes -> unit ->
  Afs_util.Capability.t Errors.r
(** Build a super-file whose version page references the current version
    of each sub-file (and set those sub-files' parent references). *)

val subfiles : Server.t -> Afs_util.Capability.t -> Afs_util.Capability.t list Errors.r
(** The file capabilities of the sub-files, in reference order. *)

val is_superfile : Server.t -> Afs_util.Capability.t -> bool

val begin_update : Server.t -> Afs_util.Capability.t -> update Errors.r
(** The §5.3 version-creation algorithm: check that the current version's
    top and inner locks are both clear (a live holder means
    [Locked_out]; a dead one is recovered first), then set the top lock
    and create the super version. *)

val port_of : update -> int
val super_file : update -> Afs_util.Capability.t
val super_version : update -> Afs_util.Capability.t

val touch_subfile : update -> index:int -> Afs_util.Capability.t Errors.r
(** Enter the sub-file at the given reference index: set the inner lock on
    its current version page, create a version of it, and repoint the
    super version's reference at that new sub-version. Returns the
    sub-version capability for page operations. Touching the same index
    twice returns the same capability. *)

val commit : update -> unit Errors.r
(** Commit the super version (the top lock guarantees the fast path), then
    descend: commit every touched sub-version — these always succeed,
    because the inner locks kept competitors out — and clear all locks. *)

val abort : update -> unit Errors.r
(** Abort every sub-version and the super version; clear all locks. *)

val crash_holder : update -> unit
(** Simulate the updating process dying mid-update: kills its port and
    abandons all its state (locks remain set on durable pages). *)

type recovery = No_lock | Holder_alive of int | Cleared | Finished of int

val recover_abandoned : Server.t -> Afs_util.Capability.t -> recovery Errors.r
(** What a waiter does when it finds the super-file's top lock set: if the
    port is alive, keep waiting ([Holder_alive]); if dead and the locked
    version's commit reference is unset, clear the locks ([Cleared]); if
    dead and set, finish the crashed commit — set the sub-files' commit
    references ([Finished n] reports how many) — per §5.3. *)

val recover_inner_waiter : Server.t -> Afs_util.Capability.t -> recovery Errors.r
(** A waiter blocked on a sub-file's inner lock ascends parent references
    to the super-file and applies {!recover_abandoned} there. *)
