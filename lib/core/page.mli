(** Pages: the unit the file service stores and the shape of Figure 3.

    A page has a header area (maintained by servers, invisible to clients)
    and the page proper: a reference table of child pages — each entry a
    28-bit block number plus the four-bit C/R/W/S/M encoding — and a
    variable-size client data area. Version pages (the roots of version
    trees) additionally carry the file and version capabilities, the
    commit reference, the top and inner lock fields and the parent
    reference. All pages carry a base reference, the block they were
    copied from.

    One engineering addition to Figure 3: the version page records the
    root page's own access flags ([root_flags]). The paper keeps them "in
    the managing server" but also notes (§5.4) that the flags must be
    present in the files themselves for crash recovery; persisting them in
    the version page satisfies both.

    Pages are immutable values; updates return new pages. The server layer
    decides which block a page image is written to. *)

type ref_entry = { block : int; flags : Flags.t }

type header = {
  file_cap : Afs_util.Capability.t option;  (** Version pages only. *)
  version_cap : Afs_util.Capability.t option;  (** Version pages only. *)
  commit_ref : int option;
      (** Version pages: block of the successor committed version; [None]
          means this is the current version. *)
  top_lock : int;  (** 0 when clear, else the holding update's port. *)
  inner_lock : int;
  parent_ref : int option;
      (** Version pages: block of the enclosing super-file's version page. *)
  base_ref : int option;  (** Block this page was copied from. *)
  root_flags : Flags.t;  (** Access flags of the root page itself. *)
}

type t = private {
  header : header;
  refs : ref_entry array;
  data : bytes;
  mutable enc : bytes option;
      (** Memoized wire image ("encode-once"): filled lazily by {!encode},
          seeded by {!decode ~memo:true}, reset to [None] by every
          functional update. A cache, never part of the page's value —
          compare pages with {!equal}, which ignores it. *)
}

val max_block_number : int
(** 2^28 - 2; the all-ones 28-bit pattern encodes "nil". *)

val empty : t
(** A non-version page with no refs and no data. *)

val make_version_page :
  file_cap:Afs_util.Capability.t ->
  version_cap:Afs_util.Capability.t ->
  base_ref:int option ->
  parent_ref:int option ->
  refs:ref_entry array ->
  data:bytes ->
  t

val is_version_page : t -> bool
val nrefs : t -> int
val dsize : t -> int

val equal : t -> t -> bool
(** Structural equality of header, reference table and data; the image
    memo is ignored (it is a cache, not part of the value). *)

val get_ref : t -> int -> (ref_entry, string) result

(** {2 Functional updates} *)

val with_data : t -> bytes -> t
val with_header : t -> header -> t

val with_contents : t -> refs:ref_entry array -> data:bytes -> t
(** Replace both the reference table and the data (the merge pass uses
    this to build combined pages). *)

val with_ref : t -> int -> ref_entry -> (t, string) result
(** Replace the entry at an existing index. *)

val insert_ref : t -> int -> ref_entry -> (t, string) result
(** Insert at index [0..nrefs]; later entries shift right. *)

val remove_ref : t -> int -> (t, string) result

val record_access : t -> int -> Flags.access -> (t, string) result
(** Fold an access into the flags of the entry at the index. *)

val clear_child_flags : t -> t
(** Reset every entry's flags to {!Flags.clear}: done when a page is first
    copied into a new version. *)

(** {2 Wire format} *)

val encoded_size : t -> int
(** Exact length of {!encode}'s output, computed arithmetically — no
    serialisation, no allocation. *)

val encode : t -> bytes
(** The page's wire image, serialised at most once per page lifetime and
    memoized. The returned bytes are shared with the memo (and with every
    other caller): treat them as immutable. *)

val fresh_encodes : unit -> int
(** Fresh serialisations performed since program start (memo hits do not
    count). Monotone; tests and benches difference it around a region to
    assert the encode-once discipline. *)

val memoized_image : t -> bytes option
(** The memoized wire image, if this page has been serialised (or was
    decoded with [~memo:true]). Never serialises. Shared with the memo:
    treat as immutable. Cache revalidation compares it against a freshly
    read store image to skip re-decoding an unchanged page. *)

val decode : ?memo:bool -> bytes -> (t, string) result
(** Rejects bad magic, illegal flag nibbles and truncation. With [memo]
    (default off), the input image seeds the decoded page's encode memo:
    sound only for images produced by {!encode} (the decoder also accepts
    padded varints, which would break byte-identity) that the caller owns
    exclusively — true of every image read back from this system's
    stores. *)

val data_capacity : block_size:int -> nrefs:int -> is_version:int -> int
(** Bytes of client data that fit in a page with that many references
    ([is_version] is 1 for version pages, 0 otherwise). *)

val pp : t Fmt.t
