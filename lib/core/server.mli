(** The Amoeba file server (paper §5).

    A server manages files — chains of committed versions plus their
    uncommitted descendants — over a {!Store.t}. Several servers can share
    one store (and one capability [seed]); the commit critical section
    goes through the store's lock facility, so any of them may carry out
    any commit, as §5.2 requires.

    Version lifecycle: {!create_version} gives a private copy-on-write
    view of the current version; page operations record the C/R/W/S/M
    flags; {!commit} runs the optimistic validation and makes the version
    current, or fails with [Conflict], after which the client redoes the
    update on a fresh version. Uncommitted versions are volatile: a
    {!crash} loses them by design, and {!recover_from_blocks} rebuilds the
    file table from the pages alone — no rollback, no intentions lists. *)

type t

type version_status = Uncommitted | Committed | Aborted

type page_info = {
  nrefs : int;
  dsize : int;
  child_flags : Flags.t array;  (** Access flags of each child reference. *)
}

val create :
  ?page_cache:bool ->
  ?cache_capacity:int ->
  ?seed:int ->
  ?ports:Ports.t ->
  ?name:string ->
  ?group_commit:int ->
  ?lock_backoff:(int -> unit) ->
  ?publish_tap:((int * Page.t) list -> (unit, Errors.t) result) ->
  ?trace:Afs_trace.Trace.t ->
  Store.t ->
  t
(** Servers sharing a store must share [seed] (the capability secret) and
    should share [ports]. [cache_capacity] bounds the write-back page
    cache (default {!Pagestore.default_capacity}); the cache's hit, miss,
    eviction and write-back counters land in this server's {!counters}.
    With a [trace], every commit runs inside a [commit] span that records
    each test-and-set of a base's commit reference, the pretest /
    serialise / merge phases and the final outcome; [name] (e.g. the
    owning cluster shard's id) becomes the span's label, so per-shard
    commit traffic is separable in a cluster trace.

    [group_commit] (default 1, must be ≥ 1) is the commit batch window
    the RPC front end may use: how many queued commit requests may share
    one {!commit_batch} pipeline run. The server itself never batches —
    1 preserves the paper's one-at-a-time behaviour exactly.

    [lock_backoff] runs between commit-lock retries with the attempt
    number (0-based); the default does nothing, making lock acquisition
    the old bounded spin. A host sharing the store between servers can
    install a deterministic backoff that lets the holder finish; each
    retry bumps counter [commits.lock_retries].

    [publish_tap] is the replication gate: it receives the commit
    references (base block, updated page) a publish is about to write
    through — the commit stream — before the local store sees them.
    Returning an error vetoes the publish: no reference is written, the
    test-and-set is reported lost and the commit aborts cleanly, which
    is exactly how a deposed primary is fenced after failover. The
    default always succeeds. The tap must be synchronous (it runs inside
    the commit critical section). *)

val name : t -> string

val group_commit : t -> int
(** The batch window [create] was given. *)

val trace : t -> Afs_trace.Trace.t
val set_trace : t -> Afs_trace.Trace.t -> unit

val publish_tap : t -> (int * Page.t) list -> (unit, Errors.t) result
val set_publish_tap : t -> ((int * Page.t) list -> (unit, Errors.t) result) -> unit
(** Replace the replication gate (see {!create}); used when a replica is
    promoted and the surviving server re-homes its commit stream. *)

val pagestore : t -> Pagestore.t
val ports : t -> Ports.t
val port : t -> Afs_util.Capability.port
val counters : t -> Afs_util.Stats.Counter.t

(** {2 Files} *)

val create_file : t -> ?data:bytes -> unit -> Afs_util.Capability.t Errors.r
(** A new file with one committed initial version holding [data]. *)

val current_version : t -> Afs_util.Capability.t -> Afs_util.Capability.t Errors.r
(** Capability of the current committed version (read rights only). *)

val committed_chain : t -> Afs_util.Capability.t -> int list Errors.r
(** Version-page blocks of the committed versions, oldest first — the
    Figure 4 family tree's spine. *)

val uncommitted_versions : t -> Afs_util.Capability.t -> int list Errors.r

val destroy_file : t -> Afs_util.Capability.t -> unit Errors.r
(** Unregister the file (requires the destroy right) and abort its
    uncommitted versions. Its pages become garbage: the next GC sweep
    reclaims everything no other file shares. *)

(** {2 Versions} *)

val create_version :
  ?respect_hints:bool -> ?updater_port:int -> ?holding_port:int -> t ->
  Afs_util.Capability.t -> Afs_util.Capability.t Errors.r
(** Start an update: a new uncommitted version based on the current one,
    initially sharing its whole page tree. [updater_port] is written to
    the current version's top-lock field as the advisory hint of §5.3;
    [respect_hints] makes this call itself honour a live hint by failing
    with [Locked_out] (the "soft-locking scheme"). A live {e inner} lock
    always blocks version creation; a dead one is recovered per §5.3. *)

val abort_version : t -> Afs_util.Capability.t -> unit Errors.r
(** Remove an uncommitted version and free its private pages. *)

val version_status : t -> Afs_util.Capability.t -> version_status Errors.r
val version_block : t -> Afs_util.Capability.t -> int Errors.r
val version_of_block : t -> int -> Afs_util.Capability.t Errors.r

(** {2 Pages}

    Operations take a version capability. On uncommitted versions they
    copy-on-write and record flags; reads of committed versions are plain
    traversals with no side effects. *)

val read_page : t -> Afs_util.Capability.t -> Afs_util.Pagepath.t -> bytes Errors.r
val write_page : t -> Afs_util.Capability.t -> Afs_util.Pagepath.t -> bytes -> unit Errors.r

val page_info : t -> Afs_util.Capability.t -> Afs_util.Pagepath.t -> page_info Errors.r
(** Read-only on any version; records no flags. *)

val insert_page :
  t -> Afs_util.Capability.t -> parent:Afs_util.Pagepath.t -> index:int ->
  ?data:bytes -> unit -> Afs_util.Pagepath.t Errors.r
(** Add a fresh page under [parent] at [index] (an explicit reference-
    table modification: sets the parent's [M]); returns its path. *)

val remove_page :
  t -> Afs_util.Capability.t -> parent:Afs_util.Pagepath.t -> index:int -> unit Errors.r

val move_page :
  t -> Afs_util.Capability.t -> src_parent:Afs_util.Pagepath.t -> src_index:int ->
  dst_parent:Afs_util.Pagepath.t -> dst_index:int -> unit Errors.r
(** Detach a subtree and re-attach it elsewhere in the same version.
    Fails if the destination lies inside the moved subtree. *)

val split_page :
  t -> Afs_util.Capability.t -> path:Afs_util.Pagepath.t -> at:int ->
  Afs_util.Pagepath.t Errors.r
(** The §5 "split pages into two" command: children [at..] of the page at
    [path] move (with their subtrees and flags) to a fresh sibling
    inserted immediately after it; returns the sibling's path. The root
    cannot be split (it has no sibling); [at] must be within [0..nrefs]. *)

(** {2 Commit} *)

val commit : t -> Afs_util.Capability.t -> unit Errors.r
(** Flush, then run the §5.2 protocol: test-and-set the base's commit
    reference; on interception, serialisability-test and merge against
    each intervening committed version, retrying until the set succeeds
    or the test fails with [Conflict] (the version is then removed).

    When both the candidate and the intervening version carry the
    incrementally maintained flag map ({!Writeset}), the conflict
    conditions are first decided from the two maps alone — a conflicting
    commit is rejected without reading any page of either tree (counter
    [commits.shortcircuit]); only the no-conflict case still walks the
    trees, to build the merge.

    Internally a commit is the validate → merge → publish pipeline: the
    test-and-set of the base's commit reference under the store lock (the
    only fencing point), the pre-test plus serialisability walk on
    interception, and the durable write of the winning reference. A
    single commit publishes inside the validate lock, exactly the
    behaviour above. *)

val commit_batch : t -> Afs_util.Capability.t list -> unit Errors.r list
(** Group commit: run every capability through validate and merge in
    submission order with publication deferred — winning references
    collect in a batch overlay that later members' test-and-sets consult,
    and a member conflicting with the union of the admitted winners'
    write sets ({!Writeset.union}) is doomed by one pre-test pass without
    dooming the batch — then publish all winners' references in one
    amortised stable-storage leg ({!Pagestore.write_through_batch}).
    Outcomes, counters of record ([commits.ok] / [commits.conflict]) and
    the final store image are identical to committing the members one by
    one; one result per capability, in order. If the publish leg fails,
    the durable prefix of winners is committed on disk but every would-be
    winner gets the store error — recovery reads the truth back. Emits
    one [Trace.Commit_batch] point per batch. *)

val flush_version : t -> Afs_util.Capability.t -> unit Errors.r

val prepare : t -> Afs_util.Capability.t -> unit Errors.r
(** Two-phase-commit baseline, phase one: run the version through
    validate and merge exactly as a deferred group-commit member — the
    winning test-and-set is recorded in a private overlay, nothing
    reaches stable storage, and the base's store lock is {e retained} —
    then park the pipeline state awaiting {!decide}. Until then any other
    commit of the same file exhausts its bounded lock spin and fails with
    [Store_failure "commit lock contention"]: the lock-holding window the
    optimistic coordinator (lib/txn) exists to avoid. Errors (e.g.
    [Conflict]) leave nothing parked and no locks held. *)

val decide : t -> Afs_util.Capability.t -> commit:bool -> unit Errors.r
(** Phase two, for a version previously {!prepare}d here: [commit:true]
    publishes the parked winning reference (the version becomes the
    file's current committed version); [commit:false] discards the
    overlay, frees the locks and aborts the version. Prepared state is
    volatile and keyed by version: after a crash (or a duplicate decide)
    an abort decision succeeds trivially — presumed abort — while a
    commit decision fails with [Store_failure]. *)

(** {2 Crash simulation and recovery} *)

val crash : t -> unit
(** Lose all volatile state: the page cache (unflushed writes vanish) and
    knowledge of uncommitted versions. Committed state is untouched — the
    defining property being reproduced. *)

val recover_from_blocks : t -> int list -> int Errors.r
(** Rebuild the file table by decoding the given blocks (obtained from the
    block server's per-account recovery listing, §4). Returns the number
    of files recovered. Orphaned uncommitted version pages are ignored:
    their owners must redo, as the paper prescribes. *)

(** {2 Introspection for tests, GC and experiments} *)

val written_set : t -> int -> Afs_util.Pagepath.t list Errors.r
(** The write set (§5.4) of the version at the given block, root-first.
    O(pages written) via the incremental administration for versions this
    server created; falls back to the [Serialise.written_paths] flag walk
    for versions learned from the store or recovered after a crash. *)

val tracked_writeset : t -> int -> Writeset.t option
(** The incremental flag map itself, when one is maintained — exposed for
    tests asserting the map-equals-tree-flags invariant. *)

val root_flags_of : t -> int -> Flags.t Errors.r
(** Root flags of the version page at the given block. *)

val read_version_page : t -> int -> Page.t Errors.r

val set_lock_fields :
  t -> int -> top:int option -> inner:int option -> unit Errors.r
(** Update the top/inner lock fields of a version page in place (used by
    the super-file locking layer). [None] leaves a field unchanged. *)

val current_block_of_file : t -> Afs_util.Capability.t -> int Errors.r

val note_pruned_chain : t -> Afs_util.Capability.t -> new_oldest:int -> unit Errors.r
(** Tell the server the GC unlinked committed versions older than
    [new_oldest]; chain walks start there from now on. *)

val file_of_version : t -> Afs_util.Capability.t -> Afs_util.Capability.t Errors.r

val list_files : t -> Afs_util.Capability.t list
