(** Client page caches, validated without unsolicited messages (§5.4).

    A version behaves like a private copy from the moment of its creation,
    so a client can keep pages of the most recent version it saw and,
    before starting a new update, ask any file server which of them are
    stale. The server walks the committed chain from the cached version to
    the current one and returns the pathnames written or restructured in
    between — time proportional to what actually changed, and a null
    operation for a file nobody else touched. No server-to-client
    callbacks exist anywhere in the design, by intent.

    {!Flag_cache} is the §5.4 refinement where the server keeps the
    concurrency-control administration (each committed version's write
    set) in memory, so validation does not re-read page trees. The write
    sets themselves come from {!Server.written_set}: O(pages written) via
    the incrementally maintained {!Writeset} for versions this server
    created, the flag walk only as a fallback — so even a cold flag cache
    validates without tree reads. *)

module Flag_cache : sig
  type t

  val create : unit -> t

  val write_set :
    t -> Server.t -> version_block:int -> Afs_util.Pagepath.t list Errors.r
  (** The version's written/restructured paths, memoised: committed
      versions are immutable, so an entry never goes stale. *)

  val entries : t -> int
end

type validation = {
  current_block : int;  (** The file's current version at validation time. *)
  invalid : Afs_util.Pagepath.t list;
      (** Cached paths to discard; a path covers its whole subtree when
          the structure beneath it changed. *)
  versions_walked : int;  (** 0 means the cache basis is still current. *)
  pages_examined : int;  (** Server-side work: the validation's cost. *)
}

val server_validate :
  ?flag_cache:Flag_cache.t ->
  Server.t ->
  file:Afs_util.Capability.t ->
  basis_block:int ->
  validation Errors.r
(** The server half. [basis_block] is the committed version the client's
    cache reflects. If that version has been pruned or is unknown, every
    path is reported invalid (the empty-basis convention: [invalid] =
    [[root]], which covers everything). *)

(** {2 The client half} *)

type t
(** One client's cache across files. *)

val create : Server.t -> t

val put : t -> file:Afs_util.Capability.t -> basis_block:int ->
  path:Afs_util.Pagepath.t -> data:bytes -> unit
(** Remember a page of the given committed version. Entries whose basis
    does not match the cache's basis for the file reset that file's
    entry first. *)

val get : t -> file:Afs_util.Capability.t -> path:Afs_util.Pagepath.t -> bytes option

val basis : t -> file:Afs_util.Capability.t -> int option

val revalidate : ?flag_cache:Flag_cache.t -> t -> file:Afs_util.Capability.t ->
  validation Errors.r
(** Run {!server_validate} for this file, drop the reported paths (and
    their subtrees), and advance the basis to the current version.
    Validation of an untouched file discards nothing. *)

val pages_cached : t -> file:Afs_util.Capability.t -> int
