(** The error vocabulary of the file service. *)

type t =
  | Conflict
      (** The commit-time serialisability test failed: the version has been
          removed and the client must redo the update (paper §5.2). *)
  | Invalid_capability
  | No_such_file of int
  | No_such_version of int
  | Version_not_mutable
      (** Write attempted on a committed or aborted version. *)
  | Bad_path of Afs_util.Pagepath.t
      (** No page at that pathname in the version's tree. *)
  | Bad_index of { path : Afs_util.Pagepath.t; index : int; nrefs : int }
  | Page_too_large of { bytes : int; limit : int }
      (** The encoded page would exceed the 32K transaction-message cap. *)
  | Locked_out of { port : int }
      (** A super-file top/inner lock held by a live updater blocks this
          operation (§5.3). *)
  | Not_superfile
  | Moved of Afs_util.Capability.t
      (** The file's chain now lives on another server; retry against the
          capability carried in the error (cluster forwarding). Only the
          cluster layer's location check raises this — a bare server never
          does. *)
  | Txn_in_doubt of Afs_util.Capability.t
      (** The file's current committed root is a cross-shard transaction
          marker: a staged update whose outcome lives in the coordinator
          record carried here. Resolve (roll forward or discard) against
          the record before reopening — the txn layer does this
          transparently. Like [Moved], only the cluster layer's location
          check raises this. *)
  | Store_failure of string
      (** The underlying block/stable layer failed. *)

val pp : t Fmt.t
val to_string : t -> string

type 'a r = ('a, t) result

val ( let* ) : 'a r -> ('a -> 'b r) -> 'b r
