open Errors

type policy = { retain_committed : int; reshare : bool }

let default_policy = { retain_committed = 4; reshare = true }

type stats = {
  versions_pruned : int;
  pages_reshared : int;
  blocks_freed : int;
  blocks_live : int;
}

let pp_stats ppf s =
  Fmt.pf ppf "pruned=%d reshared=%d freed=%d live=%d" s.versions_pruned s.pages_reshared
    s.blocks_freed s.blocks_live

(* {2 Resharing (§5.1)} *)

(* True when the version wrote or restructured anything at or below the
   page this (copied) entry refers to. Such subtrees carry information the
   file's history needs; everything else is a read shadow. *)
let rec subtree_has_writes ps (entry : Page.ref_entry) =
  let f = entry.Page.flags in
  if f.Flags.w || f.Flags.m then Ok true
  else if not f.Flags.c then Ok false
  else
    let* page = Pagestore.read ps entry.Page.block in
    let rec scan i =
      if i >= Page.nrefs page then Ok false
      else
        let* hit =
          match Page.get_ref page i with
          | Ok e -> subtree_has_writes ps e
          | Error msg -> Error (Store_failure msg)
        in
        if hit then Ok true else scan (i + 1)
    in
    scan 0

let reshare_version server vblock =
  let ps = Server.pagestore server in
  let reshared = ref 0 in
  (* Walk the version's copy and the base original in parallel, index by
     index; an M flag breaks index correspondence below that entry, so the
     walk stops there. *)
  let rec walk_pair v_block v_page b_page =
    let n = min (Page.nrefs v_page) (Page.nrefs b_page) in
    let rec each i acc_page changed =
      if i >= n then
        if changed then Pagestore.write ps v_block acc_page else Ok ()
      else
        match (Page.get_ref acc_page i, Page.get_ref b_page i) with
        | Error msg, _ | _, Error msg -> Error (Store_failure msg)
        | Ok ev, Ok eb ->
            if not ev.Page.flags.Flags.c then each (i + 1) acc_page changed
            else
              let* dirty = subtree_has_writes ps ev in
              if not dirty then begin
                (* Pure read shadow: point back at the shared original. *)
                incr reshared;
                match
                  Page.with_ref acc_page i { Page.block = eb.Page.block; flags = Flags.clear }
                with
                | Ok acc_page -> each (i + 1) acc_page true
                | Error msg -> Error (Store_failure msg)
              end
              else if ev.Page.flags.Flags.m then
                (* Restructured below: no index correspondence. *)
                each (i + 1) acc_page changed
              else
                let* vchild = Pagestore.read ps ev.Page.block in
                let* bchild = Pagestore.read ps eb.Page.block in
                let* () = walk_pair ev.Page.block vchild bchild in
                each (i + 1) acc_page changed
    in
    each 0 v_page false
  in
  let* vpage = Pagestore.read ps vblock in
  match vpage.Page.header.Page.base_ref with
  | None -> Ok 0 (* The oldest version shares with nothing. *)
  | Some base_block ->
      if vpage.Page.header.Page.root_flags.Flags.m then Ok 0
      else
        let* bpage = Pagestore.read ps base_block in
        let* () = walk_pair vblock vpage bpage in
        let* () = Pagestore.flush ps in
        Ok !reshared

(* {2 Mark} *)

let mark_tree ps marked root =
  let rec mark block =
    if Hashtbl.mem marked block then Ok ()
    else begin
      Hashtbl.replace marked block ();
      match Pagestore.read ps block with
      | Error _ -> Ok () (* Unreadable (e.g. freshly allocated): keep it marked. *)
      | Ok page ->
          let rec each i =
            if i >= Page.nrefs page then Ok ()
            else
              match Page.get_ref page i with
              | Error msg -> Error (Store_failure msg)
              | Ok e ->
                  let* () = mark e.Page.block in
                  each (i + 1)
          in
          each 0
    end
  in
  mark root

let roots_of_server server =
  let files = Server.list_files server in
  let rec gather acc = function
    | [] -> Ok acc
    | cap :: rest ->
        let* chain = Server.committed_chain server cap in
        let* uncommitted = Server.uncommitted_versions server cap in
        gather ((cap, chain, uncommitted) :: acc) rest
  in
  gather [] files

let live_blocks server =
  let ps = Server.pagestore server in
  let marked = Hashtbl.create 1024 in
  let* roots = roots_of_server server in
  let rec mark_all = function
    | [] -> Ok marked
    | (_, chain, uncommitted) :: rest ->
        let rec each = function
          | [] -> Ok ()
          | b :: bs ->
              let* () = mark_tree ps marked b in
              each bs
        in
        let* () = each chain in
        let* () = each uncommitted in
        mark_all rest
  in
  mark_all roots

(* {2 Collect} *)

let empty_stats = { versions_pruned = 0; pages_reshared = 0; blocks_freed = 0; blocks_live = 0 }

let add_stats a b =
  {
    versions_pruned = a.versions_pruned + b.versions_pruned;
    pages_reshared = a.pages_reshared + b.pages_reshared;
    blocks_freed = a.blocks_freed + b.blocks_freed;
    blocks_live = b.blocks_live;
  }

let take_last n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let collect ?(policy = default_policy) server =
  if policy.retain_committed < 1 then invalid_arg "Gc.collect: retain_committed must be >= 1";
  let tr = Server.trace server in
  let phase name count =
    if Afs_trace.Trace.enabled tr then
      Afs_trace.Trace.point tr (Afs_trace.Trace.Gc_phase { phase = name; count })
  in
  Afs_trace.Trace.span tr ~kind:"gc" (fun () ->
  let ps = Server.pagestore server in
  let* roots = roots_of_server server in
  (* Reshare pass, newest versions first so parent copies stay valid. *)
  let* reshared =
    if not policy.reshare then Ok 0
    else
      let rec each acc = function
        | [] -> Ok acc
        | (_, chain, _) :: rest ->
            let rec per_version acc = function
              | [] -> Ok acc
              | vb :: more ->
                  let* n = reshare_version server vb in
                  per_version (acc + n) more
            in
            let* acc = per_version acc (List.rev chain) in
            each acc rest
      in
      each 0 roots
  in
  (* Prune: unlink committed versions beyond the retention window. *)
  let rec prune acc = function
    | [] -> Ok acc
    | (cap, chain, _) :: rest ->
        let retained = take_last policy.retain_committed chain in
        let dropped = List.length chain - List.length retained in
        let* () =
          if dropped = 0 then Ok ()
          else
            match retained with
            | [] -> Ok ()
            | new_oldest :: _ ->
                let* page = Pagestore.read ps new_oldest in
                let header = { page.Page.header with Page.base_ref = None } in
                let* () = Pagestore.write_through ps new_oldest (Page.with_header page header) in
                Server.note_pruned_chain server cap ~new_oldest
        in
        prune (acc + dropped) rest
  in
  phase "reshare" reshared;
  let* versions_pruned = prune 0 roots in
  phase "prune" versions_pruned;
  (* Mark from the post-prune roots, then sweep. *)
  let* marked = live_blocks server in
  phase "mark" (Hashtbl.length marked);
  let* all =
    match (Pagestore.store ps).Store.list_blocks () with
    | Ok l -> Ok l
    | Error msg -> Error (Store_failure msg)
  in
  let freed = ref 0 in
  List.iter
    (fun b ->
      if not (Hashtbl.mem marked b) then begin
        Pagestore.free ps b;
        incr freed
      end)
    all;
  phase "sweep" !freed;
  Ok
    {
      versions_pruned;
      pages_reshared = reshared;
      blocks_freed = !freed;
      blocks_live = Hashtbl.length marked;
    })

let background ?policy engine server ~period_ms ~until_ms =
  let totals = ref empty_stats in
  let body () =
    let rec cycle () =
      Afs_sim.Proc.delay period_ms;
      if Afs_sim.Engine.now engine <= until_ms then begin
        (match collect ?policy server with
        | Ok stats -> totals := add_stats !totals stats
        | Error _ -> () (* Storage trouble: skip this cycle; retry later. *));
        cycle ()
      end
    in
    cycle ()
  in
  ignore (Afs_sim.Proc.spawn ~name:"gc" engine body);
  fun () -> !totals
