module Capability = Afs_util.Capability
module Pagepath = Afs_util.Pagepath
module Stats = Afs_util.Stats
module Det = Afs_util.Det
module Trace = Afs_trace.Trace

open Errors

type version_status = Uncommitted | Committed | Aborted

type page_info = { nrefs : int; dsize : int; child_flags : Flags.t array }

type version_record = {
  vblock : int;
  file_obj : int;
  mutable status : version_status;
  (* The §5.4 concurrency-control administration, maintained incrementally
     as flags are recorded. [Some] only for versions this server created
     itself (the invariant — map = exactly the flags in the page tree —
     cannot be asserted for lazily learned or recovered versions, whose
     flags may predate this server). *)
  mutable wset : Writeset.t option;
}

type file_record = {
  file_obj : int;  (** Even-numbered object: 2 * first version block. *)
  mutable current_hint : int;
  mutable oldest_hint : int;  (** Oldest retained committed version. *)
  uncommitted : (int, unit) Hashtbl.t;  (** Version-page blocks. *)
  (* Every version block ever registered for this file, newest first:
     destroying the file walks this list instead of every version the
     server knows about. *)
  mutable vblocks : int list;
}

(* One commit-pipeline run's mutable state (full story at {2 Commit}
   below). Defined here because the server records prepared-but-undecided
   runs for the two-phase-commit baseline. *)
type commit_ctx = {
  deferred : bool;  (** False: publish inside the validate lock (single commit). *)
  held : (int, unit) Hashtbl.t;  (** Store locks this pipeline run holds. *)
  pending : (int, int) Hashtbl.t;
      (** Winning test-and-sets not yet durable: base block → successor.
          The overlay later batch members' validates read first. *)
  mutable publish_refs : (int * Page.t) list;  (** Newest first. *)
  mutable winners : version_record list;  (** Newest first. *)
  mutable unions : (int * Writeset.t) list;
      (** Per-file union of the admitted winners' write sets, for the
          one-pass batch pre-test. *)
}

let fresh_ctx ~deferred () =
  {
    deferred;
    held = Hashtbl.create 4;
    pending = Hashtbl.create 4;
    publish_refs = [];
    winners = [];
    unions = [];
  }

type t = {
  ps : Pagestore.t;
  secret : Capability.secret;
  server_port : Capability.port;
  port_registry : Ports.t;
  files : (int, file_record) Hashtbl.t;
  versions : (int, version_record) Hashtbl.t;  (** Keyed by version block. *)
  (* File objects explicitly destroyed: lazy learning must not resurrect
     them from their still-on-disk pages before the GC sweeps. *)
  destroyed : (int, unit) Hashtbl.t;
  counters : Stats.Counter.t;
  name : string;
  (* Commit batch window advertised to the RPC front end: 1 = commit each
     request by itself (the paper's behaviour), n > 1 = let up to n queued
     commits share one validate → merge → publish pipeline run. *)
  group_commit : int;
  (* Invoked between commit-lock retries with the attempt number; the
     default does nothing (a bounded spin, as before). Hosts with a
     scheduler can install a deterministic backoff here. *)
  lock_backoff : int -> unit;
  (* The replication gate: called with the commit references a publish is
     about to write through, before the local store sees them. Returning
     an error vetoes the publish — the references are never written, so
     the commit aborts cleanly. A fenced (deposed) primary's gate always
     errors; the default always succeeds. *)
  mutable publish_tap : (int * Page.t) list -> (unit, Errors.t) result;
  mutable trace : Trace.t;
  (* The two-phase-commit baseline's parked state: pipeline runs admitted
     by [prepare] (validated and merged, publication deferred, base locks
     retained) awaiting the coordinator's [decide]. Keyed by version
     block. Volatile: a crash discards every entry and frees its locks —
     presumed abort. *)
  prepared : (int, commit_ctx * version_record) Hashtbl.t;
}

let create ?(page_cache = true) ?cache_capacity ?(seed = 0xA40EBA) ?ports ?(name = "")
    ?(group_commit = 1) ?(lock_backoff = fun _ -> ()) ?(publish_tap = fun _ -> Ok ())
    ?(trace = Trace.null) store =
  if group_commit < 1 then invalid_arg "Server.create: group_commit must be >= 1";
  let port_registry = match ports with Some p -> p | None -> Ports.create () in
  let counters = Stats.Counter.create () in
  {
    (* The server shares its counter set with the page store, so cache
       hit/miss/eviction figures surface alongside the commit counters. *)
    ps = Pagestore.create ~cache:page_cache ?capacity:cache_capacity ~counters store;
    secret = Capability.secret_of_seed seed;
    server_port = Capability.port_of_int (seed land 0xFFFFFFFFFFFF);
    port_registry;
    files = Hashtbl.create 64;
    versions = Hashtbl.create 256;
    destroyed = Hashtbl.create 8;
    counters;
    name;
    group_commit;
    lock_backoff;
    publish_tap;
    trace;
    prepared = Hashtbl.create 4;
  }

let name t = t.name
let group_commit t = t.group_commit

let publish_tap t = t.publish_tap
let set_publish_tap t tap = t.publish_tap <- tap

let trace t = t.trace
let set_trace t tr = t.trace <- tr

let tpoint t payload = if Trace.enabled t.trace then Trace.point t.trace payload

let pagestore t = t.ps
let ports t = t.port_registry
let port t = t.server_port
let counters t = t.counters
let bump ?by t name = Stats.Counter.incr ?by t.counters name

(* {2 Capabilities}

   Object numbers share one space: a file is 2*(first version block), a
   version is 2*(version block)+1, so the two kinds cannot be confused. *)

let file_obj_of_block b = 2 * b
let version_obj_of_block b = (2 * b) + 1

let mint_file_cap t first_block =
  Capability.mint t.secret ~port:t.server_port ~obj:(file_obj_of_block first_block)
    ~rights:Capability.rights_all

let mint_version_cap ?(rights = Capability.rights_all) t vblock =
  Capability.mint t.secret ~port:t.server_port ~obj:(version_obj_of_block vblock) ~rights

let validate_cap t cap ~need =
  if
    Capability.validate t.secret cap
    && Capability.port_to_int cap.Capability.port = Capability.port_to_int t.server_port
    && Capability.rights_subset need cap.Capability.rights
  then Ok ()
  else Error Invalid_capability

let fresh_file_record ~file_obj ~current ~oldest ~vblocks =
  { file_obj; current_hint = current; oldest_hint = oldest; uncommitted = Hashtbl.create 4; vblocks }

(* Register a version block in its file's index (creating the file record
   when the file itself has not been seen yet). *)
let index_version t ~file_obj ~vblock =
  match Hashtbl.find_opt t.files file_obj with
  | Some f -> f.vblocks <- vblock :: f.vblocks
  | None ->
      Hashtbl.replace t.files file_obj
        (fresh_file_record ~file_obj ~current:vblock ~oldest:vblock ~vblocks:[ vblock ])

(* Like versions, files can be learned lazily from the store: the file
   capability's object number is derived from its first version block. *)
let learn_file t cap =
  let first = cap.Capability.obj / 2 in
  if Hashtbl.mem t.destroyed cap.Capability.obj then Error (No_such_file cap.Capability.obj)
  else
  match Pagestore.read t.ps first with
  | Error _ -> Error (No_such_file cap.Capability.obj)
  | Ok page ->
      (match page.Page.header.Page.file_cap with
      | Some fc when fc.Capability.obj = cap.Capability.obj ->
          (* No version of this file is registered yet: every registration
             path creates the file record first. *)
          let f =
            fresh_file_record ~file_obj:cap.Capability.obj ~current:first ~oldest:first
              ~vblocks:[]
          in
          Hashtbl.replace t.files cap.Capability.obj f;
          Ok f
      | _ -> Error (No_such_file cap.Capability.obj))

let find_file t cap ~need =
  let* () = validate_cap t cap ~need in
  let obj = cap.Capability.obj in
  if obj land 1 = 1 then Error Invalid_capability
  else
    match Hashtbl.find_opt t.files obj with
    | Some f -> Ok f
    | None -> learn_file t cap

(* A server can be handed a capability for a version another server
   created: any server may serve any object on a store it reaches. Learn
   such versions lazily from their on-disk version page. The version is
   committed iff something points at it — its base's commit reference —
   or it is a chain root; anything else is some client's in-flight
   update. *)
let learn_version t cap =
  let vblock = cap.Capability.obj / 2 in
  match Pagestore.read t.ps vblock with
  | Error _ -> Error (No_such_version cap.Capability.obj)
  | Ok page ->
      (match (page.Page.header.Page.version_cap, page.Page.header.Page.file_cap) with
      | Some vc, Some fc
        when vc.Capability.obj = cap.Capability.obj
             && not (Hashtbl.mem t.destroyed fc.Capability.obj) ->
          let committed =
            page.Page.header.Page.commit_ref <> None
            ||
            match page.Page.header.Page.base_ref with
            | None -> true
            | Some base -> (
                match Pagestore.read t.ps base with
                | Ok bpage -> bpage.Page.header.Page.commit_ref = Some vblock
                | Error _ -> false)
          in
          let v =
            {
              vblock;
              file_obj = fc.Capability.obj;
              status = (if committed then Committed else Uncommitted);
              (* Another server recorded this version's flags: no
                 incremental administration can be asserted for it. *)
              wset = None;
            }
          in
          Hashtbl.replace t.versions vblock v;
          index_version t ~file_obj:fc.Capability.obj ~vblock;
          Ok v
      | _ -> Error (No_such_version cap.Capability.obj))

let find_version t cap ~need =
  let* () = validate_cap t cap ~need in
  let obj = cap.Capability.obj in
  if obj land 1 = 0 then Error Invalid_capability
  else
    match Hashtbl.find_opt t.versions (obj / 2) with
    | Some v -> Ok v
    | None -> learn_version t cap

(* {2 Page plumbing} *)

let read_pg t b = Pagestore.read t.ps b
let write_pg t b p = Pagestore.write t.ps b p

let lift_page_err path r = Result.map_error (fun _ -> Bad_path path) r

(* Follow commit references to the newest committed version. Commit
   references are written in place, possibly by another server sharing
   the store, so a cached version page claiming to be current must be
   re-read from the store before we believe it ("the integrity of the
   cache is checked at the start of a transaction", §3.1). *)
let rec chase_current t block =
  let* page = read_pg t block in
  match page.Page.header.Page.commit_ref with
  | Some successor -> chase_current t successor
  | None -> (
      Pagestore.refresh t.ps block;
      let* page = read_pg t block in
      match page.Page.header.Page.commit_ref with
      | None -> Ok block
      | Some successor -> chase_current t successor)

(* Apply a write-set transform to a version's incremental administration,
   if it carries one. Called only after the corresponding tree write
   succeeded, so the map-equals-tree-flags invariant is preserved. *)
let update_wset (v : version_record) f = v.wset <- Option.map f v.wset

let update_wset_at t vblock f =
  match Hashtbl.find_opt t.versions vblock with
  | Some v -> update_wset v f
  | None -> ()

(* Record an access at a page's flag location: the version page's own
   root-flags field for the root, the parent's reference entry otherwise.
   [path] names the page within the version so the same recording lands in
   the incremental write set. *)
let record_access_at t ~vblock ~path location access =   let note () = update_wset_at t vblock (fun ws -> Writeset.record ws path access) in
  match location with
  | None ->
      let* page = read_pg t vblock in
      let header = page.Page.header in
      let root_flags = Flags.record header.Page.root_flags access in
      if Flags.equal root_flags header.Page.root_flags then Ok (note ())
      else
        let* () = write_pg t vblock (Page.with_header page { header with Page.root_flags }) in
        Ok (note ())
  | Some (pblock, index) ->
      let* page = read_pg t pblock in
      let* entry = lift_page_err Pagepath.root (Page.get_ref page index) in
      let flags = Flags.record entry.Page.flags access in
      if Flags.equal flags entry.Page.flags then Ok (note ())
      else
        let* page =
          lift_page_err Pagepath.root (Page.with_ref page index { entry with Page.flags })
        in
        let* () = write_pg t pblock page in
        Ok (note ())

(* Copy-on-write of the child at [index] of the page at [pblock]: allocate
   a private block, store the child there with cleared grand-child flags
   and a base reference to the shared original, and repoint the parent. *)
let copy_child t pblock index (entry : Page.ref_entry) =   let* child = read_pg t entry.Page.block in
  let* fresh = Pagestore.allocate t.ps in
  let child = Page.clear_child_flags child in
  let header = { child.Page.header with Page.base_ref = Some entry.Page.block } in
  let child = Page.with_header child header in
  let* () = write_pg t fresh child in
  let* parent = read_pg t pblock in
  let copied_entry =
    { Page.block = fresh; flags = Flags.make ~copied:true () }
  in
  let copied_entry =
    { copied_entry with Page.flags = Flags.union copied_entry.Page.flags entry.Page.flags }
  in
  let* parent = lift_page_err Pagepath.root (Page.with_ref parent index copied_entry) in
  let* () = write_pg t pblock parent in
  bump t "pages.copied";
  Ok fresh

(* Descend [path] from the version page at [vblock], copying every page on
   the way (access implies copy, §5.1), recording S on each page whose
   references are consulted and [access] on the target. Returns the
   target's private block. *)
let locate_for_access t vblock path access =   let rec descend location at block = function
    | [] ->
        let* () = record_access_at t ~vblock ~path:at location access in
        Ok block
    | index :: rest ->
        let* () = record_access_at t ~vblock ~path:at location Flags.Search in
        let* page = read_pg t block in
        (match Page.get_ref page index with
        | Error _ ->
            Error (Bad_index { path; index; nrefs = Page.nrefs page })
        | Ok entry ->
            let* child_block =
              if entry.Page.flags.Flags.c then Ok entry.Page.block
              else copy_child t block index entry
            in
            descend (Some (block, index)) (Pagepath.child at index) child_block rest)
  in
  descend None Pagepath.root vblock (Pagepath.to_list path)

(* Plain traversal with no copying and no flag recording, for committed
   versions (and introspection). *)
let locate_plain t vblock path =
  let rec descend block = function
    | [] -> read_pg t block |> Result.map (fun page -> (block, page))
    | index :: rest ->
        let* page = read_pg t block in
        (match Page.get_ref page index with
        | Error _ -> Error (Bad_index { path; index; nrefs = Page.nrefs page })
        | Ok entry -> descend entry.Page.block rest)
  in
  descend vblock (Pagepath.to_list path)

(* {2 Files} *)

let create_file t ?(data = Bytes.empty) () =
  let* vb = Pagestore.allocate t.ps in
  let file_cap = mint_file_cap t vb in
  let version_cap = mint_version_cap t vb in
  let page =
    Page.make_version_page ~file_cap ~version_cap ~base_ref:None ~parent_ref:None
      ~refs:[||] ~data
  in
  let* () = Pagestore.write_through t.ps vb page in
  Hashtbl.replace t.files (file_obj_of_block vb)
    (fresh_file_record ~file_obj:(file_obj_of_block vb) ~current:vb ~oldest:vb ~vblocks:[ vb ]);
  Hashtbl.replace t.versions vb
    { vblock = vb; file_obj = file_obj_of_block vb; status = Committed; wset = Some Writeset.empty };
  bump t "files.created";
  Ok file_cap

let current_block_of_file t cap =
  let* file = find_file t cap ~need:Capability.rights_none in
  let* current = chase_current t file.current_hint in
  file.current_hint <- current;
  Ok current

let current_version t cap =
  let* () = validate_cap t cap ~need:Capability.right_read in
  let* current = current_block_of_file t cap in
  Ok (mint_version_cap ~rights:Capability.right_read t current)

let committed_chain t cap =
  let* file = find_file t cap ~need:Capability.rights_none in
  let first = file.oldest_hint in
  let rec walk block acc =
    let* page = read_pg t block in
    match page.Page.header.Page.commit_ref with
    | None -> Ok (List.rev (block :: acc))
    | Some successor -> walk successor (block :: acc)
  in
  walk first []

let uncommitted_versions t cap =
  let* file = find_file t cap ~need:Capability.rights_none in
  Ok (Det.sorted_keys file.uncommitted)

(* {2 Versions} *)

let create_version ?(respect_hints = false) ?(updater_port = 0) ?(holding_port = 0) t cap =   let* file = find_file t cap ~need:Capability.right_write in
  let* current = current_block_of_file t cap in
  let* cpage = read_pg t current in
  let header = cpage.Page.header in
  (* A live inner lock means an enclosing super-file update owns this
     subtree: wait (here: fail; callers retry) — unless the caller is that
     very update ([holding_port]). A dead lock is cleared per §5.3. *)
  let* header =
    if header.Page.inner_lock <> 0 && header.Page.inner_lock <> holding_port then
      if Ports.alive t.port_registry header.Page.inner_lock then
        Error (Locked_out { port = header.Page.inner_lock })
      else Ok { header with Page.inner_lock = 0 }
    else Ok header
  in
  let* header =
    if respect_hints && header.Page.top_lock <> 0 then
      if Ports.alive t.port_registry header.Page.top_lock then
        Error (Locked_out { port = header.Page.top_lock })
      else Ok { header with Page.top_lock = 0 }
    else Ok header
  in
  (* Set the advisory top-lock hint. *)
  let header =
    if updater_port <> 0 then { header with Page.top_lock = updater_port } else header
  in
  let* () =
    if header = cpage.Page.header then Ok ()
    else Pagestore.write_through t.ps current (Page.with_header cpage header)
  in
  let* vb = Pagestore.allocate t.ps in
  let version_cap = mint_version_cap t vb in
  let* file_cap_stored =
    match cpage.Page.header.Page.file_cap with
    | Some fc -> Ok fc
    | None -> Error (Store_failure "current version page lacks file capability")
  in
  let vpage =
    Page.make_version_page ~file_cap:file_cap_stored ~version_cap ~base_ref:(Some current)
      ~parent_ref:cpage.Page.header.Page.parent_ref
      ~refs:(Array.map (fun e -> { e with Page.flags = Flags.clear }) cpage.Page.refs)
      ~data:cpage.Page.data
  in
  let* () = write_pg t vb vpage in
  Hashtbl.replace t.versions vb
    { vblock = vb; file_obj = file.file_obj; status = Uncommitted; wset = Some Writeset.empty };
  file.vblocks <- vb :: file.vblocks;
  Hashtbl.replace file.uncommitted vb ();
  bump t "versions.created";
  Ok version_cap

let version_status t cap =
  let* v = find_version t cap ~need:Capability.rights_none in
  Ok v.status

let version_block t cap =
  let* v = find_version t cap ~need:Capability.rights_none in
  Ok v.vblock

let version_of_block t block =
  match Hashtbl.find_opt t.versions block with
  | Some v -> Ok (mint_version_cap t v.vblock)
  | None -> Error (No_such_version (version_obj_of_block block))

let file_of_version t cap =
  let* v = find_version t cap ~need:Capability.rights_none in
  let* page = read_pg t v.vblock in
  match page.Page.header.Page.file_cap with
  | Some fc -> Ok fc
  | None -> Error (Store_failure "version page lacks file capability")

(* Free the pages private to a version: copies (C set) found by descent,
   then the version page itself. Shared pages (C clear) belong to the base
   and survive. *)
let free_private_pages t vblock =   let rec free_copies page =
    Array.iter
      (fun (e : Page.ref_entry) ->
        if e.Page.flags.Flags.c then begin
          (match read_pg t e.Page.block with Ok child -> free_copies child | Error _ -> ());
          Pagestore.free t.ps e.Page.block
        end)
      page.Page.refs
  in
  (match read_pg t vblock with Ok page -> free_copies page | Error _ -> ());
  Pagestore.free t.ps vblock

let forget_uncommitted file vblock = Hashtbl.remove file.uncommitted vblock

let destroy_file t cap =
  let* file = find_file t cap ~need:Capability.right_destroy in
  (* Abort in-flight updates and free their private pages eagerly;
     committed history is reclaimed by the next GC sweep once the file is
     no longer a root. *)
  List.iter
    (fun vb ->
      match Hashtbl.find_opt t.versions vb with
      | Some v when v.status = Uncommitted ->
          free_private_pages t vb;
          v.status <- Aborted;
          v.wset <- None
      | _ -> ())
    (Det.sorted_keys file.uncommitted);
  (* Only this file's own version index is walked — not every version the
     server knows about. A freed block may since have been reused by
     another file, hence the ownership check. *)
  List.iter
    (fun vb ->
      match Hashtbl.find_opt t.versions vb with
      | Some (v : version_record) when v.file_obj = file.file_obj ->
          Hashtbl.remove t.versions vb
      | _ -> ())
    file.vblocks;
  Hashtbl.remove t.files file.file_obj;
  Hashtbl.replace t.destroyed file.file_obj ();
  bump t "files.destroyed";
  Ok ()

let abort_version t cap =
  let* v = find_version t cap ~need:Capability.right_destroy in
  match v.status with
  | Committed | Aborted -> Error Version_not_mutable
  | Uncommitted ->
      (match Hashtbl.find_opt t.files v.file_obj with
      | Some file -> forget_uncommitted file v.vblock
      | None -> ());
      free_private_pages t v.vblock;
      v.status <- Aborted;
      v.wset <- None;
      bump t "versions.aborted";
      Ok ()

(* {2 Page operations} *)

let mutable_version t cap ~need =
  let* v = find_version t cap ~need in
  match v.status with Uncommitted -> Ok v | Committed | Aborted -> Error Version_not_mutable

let read_page t cap path =   let* v = find_version t cap ~need:Capability.right_read in
  match v.status with
  | Uncommitted ->
      let* block = locate_for_access t v.vblock path Flags.Read in
      let* page = read_pg t block in
      Ok (Bytes.copy page.Page.data)
  | Committed | Aborted ->
      let* _, page = locate_plain t v.vblock path in
      Ok (Bytes.copy page.Page.data)

let write_page t cap path data =   let* v = mutable_version t cap ~need:Capability.right_write in
  let* block = locate_for_access t v.vblock path Flags.Write in
  let* page = read_pg t block in
  write_pg t block (Page.with_data page data)

let page_info t cap path =
  let* v = find_version t cap ~need:Capability.right_read in
  let* _, page = locate_plain t v.vblock path in
  Ok
    {
      nrefs = Page.nrefs page;
      dsize = Page.dsize page;
      child_flags = Array.map (fun (e : Page.ref_entry) -> e.Page.flags) page.Page.refs;
    }

let insert_page t cap ~parent ~index ?(data = Bytes.empty) () =
  let* v = mutable_version t cap ~need:Capability.right_write in
  let* pblock = locate_for_access t v.vblock parent Flags.Modify in
  let* ppage = read_pg t pblock in
  if index < 0 || index > Page.nrefs ppage then
    Error (Bad_index { path = parent; index; nrefs = Page.nrefs ppage })
  else
    let* fresh = Pagestore.allocate t.ps in
    let child = Page.with_data Page.empty data in
    let* () = write_pg t fresh child in
    (* A page that never existed in the base is private and written. *)
    let flags = Flags.record (Flags.record Flags.clear Flags.Write) Flags.Search in
    let entry = { Page.block = fresh; flags } in
    let* ppage = lift_page_err parent (Page.insert_ref ppage index entry) in
    let* () = write_pg t pblock ppage in
    update_wset v (fun ws ->
        let ws = Writeset.open_gap ws ~parent ~index in
        let child = Pagepath.child parent index in
        Writeset.record (Writeset.record ws child Flags.Write) child Flags.Search);
    Ok (Pagepath.child parent index)

let remove_page t cap ~parent ~index =
  let* v = mutable_version t cap ~need:Capability.right_write in
  let* pblock = locate_for_access t v.vblock parent Flags.Modify in
  let* ppage = read_pg t pblock in
  if index < 0 || index >= Page.nrefs ppage then
    Error (Bad_index { path = parent; index; nrefs = Page.nrefs ppage })
  else
    let* ppage = lift_page_err parent (Page.remove_ref ppage index) in
    let* () = write_pg t pblock ppage in
    update_wset v (fun ws -> Writeset.remove_at ws ~parent ~index);
    Ok ()

let move_page t cap ~src_parent ~src_index ~dst_parent ~dst_index =
  let src_path = Pagepath.child src_parent src_index in
  if Pagepath.is_prefix src_path dst_parent then
    Error (Bad_path dst_parent)
  else
    let* v = mutable_version t cap ~need:Capability.right_write in
    let* src_block = locate_for_access t v.vblock src_parent Flags.Modify in
    let* src_page = read_pg t src_block in
    let* entry = lift_page_err src_path (Page.get_ref src_page src_index) in
    let* src_page = lift_page_err src_path (Page.remove_ref src_page src_index) in
    let* () = write_pg t src_block src_page in
    (* The moved subtree's recordings travel with it: extract them (and
       close the gap) before the destination path — whose coordinates are
       post-removal — is even walked, then graft at the landing point. *)
    let moved_recordings = ref Writeset.empty in
    update_wset v (fun ws ->
        let sub, rest = Writeset.extract ws src_path in
        moved_recordings := sub;
        Writeset.close_gap rest ~parent:src_parent ~index:src_index);
    let* dst_block = locate_for_access t v.vblock dst_parent Flags.Modify in
    let* dst_page = read_pg t dst_block in
    if dst_index < 0 || dst_index > Page.nrefs dst_page then
      Error (Bad_index { path = dst_parent; index = dst_index; nrefs = Page.nrefs dst_page })
    else
      let* dst_page = lift_page_err dst_parent (Page.insert_ref dst_page dst_index entry) in
      let* () = write_pg t dst_block dst_page in
      update_wset v (fun ws ->
          let ws = Writeset.open_gap ws ~parent:dst_parent ~index:dst_index in
          Writeset.graft ws ~at:(Pagepath.child dst_parent dst_index) !moved_recordings);
      Ok ()

let split_page t cap ~path ~at =
  match (Pagepath.parent path, Pagepath.last path) with
  | None, _ | _, None -> Error (Bad_path path)
  | Some parent, Some position ->
      let* v = mutable_version t cap ~need:Capability.right_write in
      (* Both the page (its references move out) and the parent (a sibling
         appears) are explicit structure modifications. *)
      let* target_block = locate_for_access t v.vblock path Flags.Modify in
      let* target = read_pg t target_block in
      let n = Page.nrefs target in
      if at < 0 || at > n then Error (Bad_index { path; index = at; nrefs = n })
      else begin
        let moved = Array.sub target.Page.refs at (n - at) in
        let kept = Array.sub target.Page.refs 0 at in
        let target = Page.with_contents target ~refs:kept ~data:target.Page.data in
        let* () = write_pg t target_block target in
        (* Recordings for the children that moved out follow them to the
           sibling (child [at] becomes the sibling's child [0]). *)
        let moved_recordings = ref Writeset.empty in
        update_wset v (fun ws ->
            let sub, rest = Writeset.extract_children_from ws ~parent:path ~from:at in
            moved_recordings := sub;
            rest);
        let* sibling_block = Pagestore.allocate t.ps in
        let sibling = Page.with_contents Page.empty ~refs:moved ~data:Bytes.empty in
        let* () = write_pg t sibling_block sibling in
        let* pblock = locate_for_access t v.vblock parent Flags.Modify in
        let* ppage = read_pg t pblock in
        (* The sibling never existed in the base: private and written. *)
        let flags = Flags.record (Flags.record Flags.clear Flags.Write) Flags.Modify in
        let entry = { Page.block = sibling_block; flags } in
        let* ppage = lift_page_err parent (Page.insert_ref ppage (position + 1) entry) in
        let* () = write_pg t pblock ppage in
        update_wset v (fun ws ->
            let ws = Writeset.open_gap ws ~parent ~index:(position + 1) in
            let spath = Pagepath.child parent (position + 1) in
            let ws = Writeset.record (Writeset.record ws spath Flags.Write) spath Flags.Modify in
            Writeset.graft ws ~at:spath !moved_recordings);
        bump t "pages.split";
        Ok (Pagepath.child parent (position + 1))
      end

(* {2 Commit (§5.2): the validate → merge → publish pipeline}

   A commit is three stages. [validate] is the paper's test-and-set of
   the base version's commit reference under the store lock — the only
   fencing point in the whole pipeline. [merge] handles an interception:
   the write-set pre-test, then the serialisability tree walk that
   rebases the candidate onto the committed successor. [publish] makes
   the winning commit references durable and updates the in-memory
   administration.

   A single commit runs the stages back to back, publishing its
   reference inside the validate lock exactly as before. A group-commit
   batch ([commit_batch]) instead runs each member through validate and
   merge with publication *deferred*: winning references are recorded in
   a batch context (an overlay later members' test-and-sets consult) and
   all base locks are retained, then one [publish] writes every winner's
   reference in a single amortised stable-storage leg. Because members
   run strictly in submission order against the same overlay a
   sequential run would leave on disk, a batch's outcomes — and the
   final store image — are identical to committing its members one by
   one; only the cost is different. *)

(* Bound on commit-lock retries; with the default no-op backoff this is
   the old bounded spin. *)
let lock_retry_limit = 1024

(* The pipeline state type itself ([commit_ctx] / [fresh_ctx]) is defined
   up top, before [type t], so the server can park prepared runs. *)

let acquire_commit_lock t ctx block =
  (* Re-entrant within one pipeline run: a deferred batch keeps its locks
     until publish, and a later member may chain onto a block an earlier
     member already locked. *)
  if Hashtbl.mem ctx.held block then Ok ()
  else
    (* The critical section is a handful of in-memory operations;
       contention can only come from another server physically sharing
       the store. Between retries the host's backoff hook runs (default:
       nothing, a bounded spin as in this single-threaded harness). *)
    let rec attempt n =
      if Pagestore.lock t.ps block then begin
        Hashtbl.replace ctx.held block ();
        Ok ()
      end
      else if n >= lock_retry_limit then Error (Store_failure "commit lock contention")
      else begin
        bump t "commits.lock_retries";
        t.lock_backoff n;
        attempt (n + 1)
      end
    in
    attempt 0

let release_commit_lock t ctx block =
  Hashtbl.remove ctx.held block;
  Pagestore.unlock t.ps block

let finish_commit t v =
  v.status <- Committed;
  (match Hashtbl.find_opt t.files v.file_obj with
  | Some file ->
      file.current_hint <- v.vblock;
      forget_uncommitted file v.vblock
  | None -> ());
  bump t "commits.ok"

(* Stage 1 — the test-and-set of [base_block]'s commit reference, under
   the store lock. [Ok None] = won; [Ok (Some s)] = intercepted by [s].
   Deferred mode records the win in the batch overlay instead of writing
   it through, and keeps the lock for publish. *)
let validate t ctx ~vb base_block =   let* () = acquire_commit_lock t ctx base_block in
  let outcome =
    match Hashtbl.find_opt ctx.pending base_block with
    | Some successor -> Ok (Some successor)
    | None -> (
        Pagestore.invalidate t.ps base_block;
        let* bpage = read_pg t base_block in
        match bpage.Page.header.Page.commit_ref with
        | Some successor -> Ok (Some successor)
        | None ->
            let header = { bpage.Page.header with Page.commit_ref = Some vb } in
            let page = Page.with_header bpage header in
            if ctx.deferred then begin
              Hashtbl.replace ctx.pending base_block vb;
              ctx.publish_refs <- (base_block, page) :: ctx.publish_refs;
              Ok None
            end
            else
              let* () = t.publish_tap [ (base_block, page) ] in
              let* () = Pagestore.write_through t.ps base_block page in
              Ok None)
  in
  if not ctx.deferred then release_commit_lock t ctx base_block;
  tpoint t
    (Trace.Test_and_set
       { block = base_block; won = (match outcome with Ok None -> true | _ -> false) });
  outcome

let abandon t (v : version_record) outcome_name =
  (match Hashtbl.find_opt t.files v.file_obj with
  | Some file -> forget_uncommitted file v.vblock
  | None -> ());
  free_private_pages t v.vblock;
  v.status <- Aborted;
  v.wset <- None;
  tpoint t (Trace.Commit_outcome { vblock = v.vblock; outcome = outcome_name });
  Error Conflict

type merge_verdict = Rebased | Doomed of string

(* Stage 2 — an interception by [successor]: the §5.2 write-set pre-test,
   then the serialisability tree walk that rebases the candidate.
   [Rebased] means retry the test-and-set at the successor. *)
let merge t v ~successor =   let vb = v.vblock in
  bump t "commits.intercepted";
  (* When both sides carry the incremental administration, the §5.2
     conflict conditions can be decided from the two flag maps alone —
     disjoint (or merely read-shared) updates are told apart without
     reading a single page of either tree. Only the no-conflict answer
     still needs the tree walk, for the merge. *)
  tpoint t (Trace.Commit_phase { vblock = vb; phase = "pretest" });
  let precheck =
    match v.wset with
    | None -> None
    | Some candidate -> (
        match Hashtbl.find_opt t.versions successor with
        | Some { wset = Some committed; _ } -> Writeset.conflict ~candidate ~committed
        | _ -> None)
  in
  match precheck with
  | Some _ ->
      bump t "commits.shortcircuit";
      bump t "commits.conflict";
      Ok (Doomed "shortcircuit")
  | None -> (
      tpoint t (Trace.Commit_phase { vblock = vb; phase = "serialise" });
      match Serialise.test_and_merge t.ps ~candidate:vb ~committed:successor with
      | Error e -> Error e
      | Ok (Serialise.Conflict { stats; _ }) ->
          bump t ~by:stats.Serialise.pages_visited "serialise.pages_visited";
          bump t "commits.conflict";
          Ok (Doomed "conflict")
      | Ok (Serialise.Serialisable stats) ->
          bump t ~by:stats.Serialise.pages_visited "serialise.pages_visited";
          tpoint t (Trace.Commit_phase { vblock = vb; phase = "merge" });
          let* () = Pagestore.flush t.ps in
          Ok Rebased)

(* Stage 3 — durability and administration. All deferred commit
   references go to the store in one [write_through_batch] (one
   amortised stable-storage leg on a stable-pair backend), then the
   winners are finished oldest first and every held lock is released.
   The store writes the references in submission order and stops at the
   first error, so a mid-batch failure leaves a durable prefix: each
   member is either completely committed (its pages were flushed before
   its reference was written) or not committed at all. *)
let publish t ctx =
  let result =
    match List.rev ctx.publish_refs with
    | [] -> Ok ()
    | refs -> (
        match t.publish_tap refs with
        | Error _ as e -> e
        | Ok () -> Pagestore.write_through_batch t.ps refs)
  in
  (match result with
  | Ok () -> List.iter (finish_commit t) (List.rev ctx.winners)
  | Error _ -> ());
  List.iter (fun b -> release_commit_lock t ctx b) (Det.sorted_keys ctx.held);
  ctx.publish_refs <- [];
  Hashtbl.reset ctx.pending;
  result

(* Record an admitted batch winner: publication is deferred, and its
   write set joins the per-file union later members pre-test against. *)
let note_batch_winner ctx v =
  ctx.winners <- v :: ctx.winners;
  match v.wset with
  | None -> ()
  | Some ws ->
      let u =
        match List.assoc_opt v.file_obj ctx.unions with
        | Some u -> Writeset.union u ws
        | None -> ws
      in
      ctx.unions <- (v.file_obj, u) :: List.remove_assoc v.file_obj ctx.unions

(* Drive one version through the pipeline. In a deferred batch, a member
   whose write set conflicts with the union of the already-admitted
   winners' write sets is doomed by one [Writeset.conflict] pass —
   conflict against the union is conflict against some member (the
   conditions are monotone in the committed flags), so this is exactly
   the abort the chain walk would reach, attributed per transaction
   without dooming the rest of the batch. *)
let commit_version t ctx v =
  Trace.span t.trace ~kind:"commit" ~label:t.name (fun () ->
      (* "First it ascertains that all of V.b's pages are safely on disk." *)
      let* () = Pagestore.flush t.ps in
      let vb = v.vblock in
      let* vpage = read_pg t vb in
      let* base0 =
        match vpage.Page.header.Page.base_ref with
        | Some b -> Ok b
        | None -> Error (Store_failure "uncommitted version has no base reference")
      in
      let batch_conflict =
        if not ctx.deferred then None
        else
          match (v.wset, List.assoc_opt v.file_obj ctx.unions) with
          | Some candidate, Some committed -> Writeset.conflict ~candidate ~committed
          | _ -> None
      in
      match batch_conflict with
      | Some _ ->
          bump t "commits.intercepted";
          tpoint t (Trace.Commit_phase { vblock = vb; phase = "pretest" });
          bump t "commits.shortcircuit";
          bump t "commits.conflict";
          abandon t v "shortcircuit"
      | None ->
          let rec attempt base_block =
            match validate t ctx ~vb base_block with
            | Error e -> Error e
            | Ok None ->
                let outcome_name = if base_block = base0 then "fastpath" else "merged" in
                bump t (if base_block = base0 then "commits.fastpath" else "commits.merged");
                tpoint t (Trace.Commit_outcome { vblock = vb; outcome = outcome_name });
                if ctx.deferred then begin
                  note_batch_winner ctx v;
                  Ok ()
                end
                else begin
                  ctx.winners <- [ v ];
                  publish t ctx
                end
            | Ok (Some successor) -> (
                match merge t v ~successor with
                | Error e -> Error e
                | Ok (Doomed reason) -> abandon t v reason
                | Ok Rebased -> attempt successor)
          in
          attempt base0)

let commit t cap =   let* v = mutable_version t cap ~need:Capability.right_commit in
  commit_version t (fresh_ctx ~deferred:false ()) v

let commit_batch t caps =
  match caps with
  | [] -> []
  | [ cap ] ->
      bump t "commits.batches";
      bump t "commits.batch_members";
      [ commit t cap ]
  | caps ->
      let size = List.length caps in
      bump t "commits.batches";
      bump t ~by:size "commits.batch_members";
      let ctx = fresh_ctx ~deferred:true () in
      Trace.span t.trace ~kind:"commit_batch" ~label:t.name (fun () ->
          let results =
            List.map
              (fun cap ->
                match mutable_version t cap ~need:Capability.right_commit with
                | Error e -> Error e
                | Ok v -> commit_version t ctx v)
              caps
          in
          let winners = List.length ctx.winners in
          let aborts =
            List.fold_left (fun n -> function Error Conflict -> n + 1 | _ -> n) 0 results
          in
          match publish t ctx with
          | Ok () ->
              tpoint t (Trace.Commit_batch { size; winners; aborts });
              results
          | Error e ->
              (* The amortised publish leg failed mid-batch. The prefix of
                 winners whose references reached the store is durably
                 committed on disk, but this server can no longer vouch
                 for any member — surface the store failure to every
                 would-be winner; recovery reads the truth back. *)
              tpoint t (Trace.Commit_batch { size; winners = 0; aborts });
              List.map (function Ok () -> Error e | r -> r) results)

let flush_version t cap =
  let* _ = find_version t cap ~need:Capability.rights_none in
  Pagestore.flush t.ps

(* {2 Two-phase commit baseline (prepare / decide)}

   The occ4txn shape, assembled from the existing pipeline's
   validate/publish split: [prepare] drives the version through validate
   and merge exactly as a deferred batch member would — the winning
   test-and-set lands in the context overlay, nothing reaches stable
   storage, and the base's store lock is retained — then parks the
   context until the coordinator's [decide]. Between the two calls the
   file is effectively locked: any other commit of it exhausts the
   bounded lock spin and fails with [Store_failure], which is exactly the
   blocking behaviour the lock-free coordinator (lib/txn) is measured
   against. Prepared state is volatile — [crash] discards it and frees
   the locks, and a later abort decision for an unknown version succeeds
   trivially (presumed abort). *)

(* Abandon a deferred pipeline run without publishing: forget the overlay
   (its test-and-sets were never written through) and free every held
   lock. *)
let drop_ctx t ctx =
  ctx.publish_refs <- [];
  ctx.winners <- [];
  ctx.unions <- [];
  Hashtbl.reset ctx.pending;
  List.iter (fun b -> release_commit_lock t ctx b) (Det.sorted_keys ctx.held)

let prepare t cap =
  let* v = mutable_version t cap ~need:Capability.right_commit in
  let ctx = fresh_ctx ~deferred:true () in
  match commit_version t ctx v with
  | Ok () ->
      Hashtbl.replace t.prepared v.vblock (ctx, v);
      bump t "commits.prepared";
      Ok ()
  | Error e ->
      (* Doomed members are already abandoned; only the locks and overlay
         remain to clean up. *)
      drop_ctx t ctx;
      Error e

let decide t cap ~commit =
  let* () = validate_cap t cap ~need:Capability.right_commit in
  let vblock = cap.Capability.obj / 2 in
  match Hashtbl.find_opt t.prepared vblock with
  | None ->
      (* Presumed abort: an abort decision for state this server no
         longer holds (crash, duplicate decide) is trivially satisfied; a
         commit decision cannot be honoured. *)
      if commit then Error (Store_failure "2pc: version not prepared") else Ok ()
  | Some (ctx, v) ->
      Hashtbl.remove t.prepared vblock;
      if commit then publish t ctx
      else begin
        drop_ctx t ctx;
        bump t "commits.decided_abort";
        (* [abandon] returns [Error Conflict] for the commit path's
           benefit; here the abort is the requested outcome. *)
        ignore (abandon t v "decided_abort" : unit r);
        Ok ()
      end

(* {2 Crash and recovery} *)

let crash t =
  (* Prepared-but-undecided 2PC state is volatile: presumed abort. Free
     the held locks before the store drops its volatile layers. *)
  Det.iter_sorted (fun _ (ctx, _) -> drop_ctx t ctx) t.prepared;
  Hashtbl.reset t.prepared;
  Pagestore.drop_volatile t.ps;
  (* Uncommitted versions are volatile by design. *)
  Det.iter_sorted
    (fun _ v ->
      if v.status = Uncommitted then begin
        v.status <- Aborted;
        v.wset <- None
      end)
    t.versions;
  Det.iter_sorted (fun _ f -> Hashtbl.reset f.uncommitted) t.files;
  tpoint t (Trace.Crash { component = "server"; what = "crash" });
  bump t "server.crashes"

let recover_from_blocks t blocks =
  let version_pages =
    List.filter_map
      (fun b ->
        match read_pg t b with
        | Ok page when Page.is_version_page page -> Some (b, page)
        | Ok _ | Error _ -> None)
      blocks
  in
  let by_file = Hashtbl.create 32 in
  List.iter
    (fun (b, page) ->
      match page.Page.header.Page.file_cap with
      | Some fc ->
          let existing = Option.value ~default:[] (Hashtbl.find_opt by_file fc.Capability.obj) in
          Hashtbl.replace by_file fc.Capability.obj ((b, page) :: existing)
      | None -> ())
    version_pages;
  let recovered = ref 0 in
  Det.iter_sorted
    (fun file_obj pages ->
      match List.find_opt (fun (_, p) -> p.Page.header.Page.base_ref = None) pages with
      | None -> () (* No chain root among these blocks: cannot recover. *)
      | Some (first, _) ->
          let chain = ref [] in
          let rec register block =
            Hashtbl.replace t.versions block
              { vblock = block; file_obj; status = Committed; wset = None };
            chain := block :: !chain;
            match read_pg t block with
            | Ok page -> (
                match page.Page.header.Page.commit_ref with
                | Some successor -> register successor
                | None -> block)
            | Error _ -> block
          in
          let current = register first in
          Hashtbl.replace t.files file_obj
            (fresh_file_record ~file_obj ~current ~oldest:first ~vblocks:!chain);
          incr recovered)
    by_file;
  bump t ~by:!recovered "files.recovered";
  tpoint t (Trace.Recovered_files { count = !recovered });
  Ok !recovered

(* {2 Introspection} *)

(* The version's write set, from the incremental administration when the
   server maintained one (O(pages written)), by the flag walk otherwise
   (O(tree) fallback for learned/recovered versions). *)
let written_set t block =
  match Hashtbl.find_opt t.versions block with
  | Some { wset = Some ws; _ } -> Ok (Writeset.written_paths ws)
  | Some { wset = None; _ } | None -> Serialise.written_paths t.ps ~version:block

let tracked_writeset t block =
  match Hashtbl.find_opt t.versions block with
  | Some v -> v.wset
  | None -> None

let root_flags_of t block =
  let* page = read_pg t block in
  Ok page.Page.header.Page.root_flags

let read_version_page t block = read_pg t block

let set_lock_fields t block ~top ~inner =
  let* page = read_pg t block in
  let header = page.Page.header in
  let header =
    { header with
      Page.top_lock = Option.value ~default:header.Page.top_lock top;
      Page.inner_lock = Option.value ~default:header.Page.inner_lock inner;
    }
  in
  Pagestore.write_through t.ps block (Page.with_header page header)

let note_pruned_chain t cap ~new_oldest =
  let* file = find_file t cap ~need:Capability.right_admin in
  file.oldest_hint <- new_oldest;
  Ok ()

let list_files t =
  List.rev (Det.fold_sorted (fun _ f acc -> mint_file_cap t (f.file_obj / 2) :: acc) t.files [])
