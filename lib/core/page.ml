module Capability = Afs_util.Capability
module Wire = Afs_util.Wire

type ref_entry = { block : int; flags : Flags.t }

type header = {
  file_cap : Capability.t option;
  version_cap : Capability.t option;
  commit_ref : int option;
  top_lock : int;
  inner_lock : int;
  parent_ref : int option;
  base_ref : int option;
  root_flags : Flags.t;
}

(* [enc] memoizes the wire image: pages are immutable values, so a page's
   serialisation is computed at most once per lifetime ("encode-once").
   Every functional update constructs a fresh record with [enc = None];
   the field is filled lazily by {!encode} (or seeded by {!decode} when
   the caller vouches for the image's provenance) and never read for
   anything except serialisation, so it is invisible to the protocol. *)
type t = {
  header : header;
  refs : ref_entry array;
  data : bytes;
  mutable enc : bytes option;
}

let nil_block = 0xFFFFFFF
let max_block_number = nil_block - 1

let plain_header =
  {
    file_cap = None;
    version_cap = None;
    commit_ref = None;
    top_lock = 0;
    inner_lock = 0;
    parent_ref = None;
    base_ref = None;
    root_flags = Flags.clear;
  }

let empty = { header = plain_header; refs = [||]; data = Bytes.empty; enc = None }

let make_version_page ~file_cap ~version_cap ~base_ref ~parent_ref ~refs ~data =
  {
    header =
      {
        plain_header with
        file_cap = Some file_cap;
        version_cap = Some version_cap;
        base_ref;
        parent_ref;
      };
    refs;
    data;
    enc = None;
  }

let is_version_page t = t.header.file_cap <> None
let nrefs t = Array.length t.refs
let dsize t = Bytes.length t.data

let get_ref t i =
  if i < 0 || i >= Array.length t.refs then
    Error (Printf.sprintf "reference index %d out of range (nrefs=%d)" i (Array.length t.refs))
  else Ok t.refs.(i)

(* Every update invalidates the memo: [{ t with ... }] would carry the
   stale image across, so each updater resets [enc] explicitly. *)
let with_data t data = { t with data; enc = None }
let with_header t header = { t with header; enc = None }
let with_contents t ~refs ~data = { t with refs; data; enc = None }

let with_ref t i entry =
  if i < 0 || i >= Array.length t.refs then Error "with_ref: index out of range"
  else begin
    let refs = Array.copy t.refs in
    refs.(i) <- entry;
    Ok { t with refs; enc = None }
  end

let insert_ref t i entry =
  let n = Array.length t.refs in
  if i < 0 || i > n then Error "insert_ref: index out of range"
  else begin
    let refs =
      Array.init (n + 1) (fun j ->
          if j < i then t.refs.(j) else if j = i then entry else t.refs.(j - 1))
    in
    Ok { t with refs; enc = None }
  end

let remove_ref t i =
  let n = Array.length t.refs in
  if i < 0 || i >= n then Error "remove_ref: index out of range"
  else begin
    let refs = Array.init (n - 1) (fun j -> if j < i then t.refs.(j) else t.refs.(j + 1)) in
    Ok { t with refs; enc = None }
  end

let record_access t i access =
  match get_ref t i with
  | Error _ as e -> e
  | Ok entry ->
      let flags = Flags.record entry.flags access in
      (* Re-recording an already-recorded access is the common case (every
         access after a page's first in a given version): the page value is
         unchanged, so return [t] itself — keeping the refs array shared
         and, crucially, the encode memo alive. *)
      if Flags.equal flags entry.flags then Ok t
      else with_ref t i { entry with flags }

let clear_child_flags t =
  { t with refs = Array.map (fun e -> { e with flags = Flags.clear }) t.refs; enc = None }

let ref_entry_equal a b = a.block = b.block && Flags.equal a.flags b.flags

(* Structural equality of the value a page denotes; the memo is a cache,
   not part of the value, so it is ignored. *)
let equal a b =
  a.header = b.header
  && Array.length a.refs = Array.length b.refs
  && (let n = Array.length a.refs in
      let rec go i = i >= n || (ref_entry_equal a.refs.(i) b.refs.(i) && go (i + 1)) in
      go 0)
  && Bytes.equal a.data b.data

(* {2 Wire format} *)

let magic = 0xAF5
let format_version = 1

(* Fresh (non-memoized) serialisations since program start: the hook the
   encode-once regression tests and the m2 bench watch. Counting is the
   only effect; the value never feeds back into any run. *)
let encode_count = ref 0
let fresh_encodes () = !encode_count

let check_block_number b =
  if b < 0 || b > max_block_number then
    invalid_arg (Printf.sprintf "Page: block number %d out of 28-bit range" b)

let encode_opt_block = function
  | None -> nil_block
  | Some b ->
      check_block_number b;
      b

let decode_opt_block v = if v = nil_block then None else Some v

let decode_cap r =
  let port = Capability.port_of_int (Int64.to_int (Wire.Reader.u64 r)) in
  let obj = Wire.Reader.varint r in
  let rights = Capability.rights_of_int (Wire.Reader.u8 r) in
  let check = Wire.Reader.u32 r in
  { Capability.port; obj; rights; check }

(* The encoded size is pure arithmetic over the page's fields — no
   serialisation. Only the varint fields (capability object numbers, the
   reference count, the data length) have value-dependent widths. *)
let varint_len v =
  if v < 0 then invalid_arg "Page.varint_len: negative"
  else begin
    let rec go v n = if v < 0x80 then n else go (v lsr 7) (n + 1) in
    go v 1
  end

let cap_bytes cap = 8 + varint_len cap.Capability.obj + 1 + 4

let encoded_size t =
  let h = t.header in
  let kind_and_header =
    match (h.file_cap, h.version_cap) with
    | Some fc, Some vc -> 1 + cap_bytes fc + cap_bytes vc + 4 + 8 + 8 + 4 + 1
    | None, None -> 1
    | _ -> invalid_arg "Page.encoded_size: version page must carry both capabilities"
  in
  2 + 1 + kind_and_header + 4
  + varint_len (Array.length t.refs)
  + varint_len (Bytes.length t.data)
  + (4 * Array.length t.refs)
  + Bytes.length t.data

(* Serialise into an exactly-sized buffer (the arithmetic size makes the
   single allocation possible; the byte order is identical to what the
   historical [Wire.Writer]-based encoder produced). The image is
   memoized on the page and aliased to every caller, so callers must
   treat it as immutable — every store boundary in this repo copies. *)
let encode_into t buf =
  let pos = ref 0 in
  let u8 v =
    Bytes.unsafe_set buf !pos (Char.unsafe_chr (v land 0xFF));
    incr pos
  in
  let u16 v =
    u8 v;
    u8 (v lsr 8)
  in
  (* Word-width fields store in one unaligned write ([set_int32_le] is a
     compiler primitive) — the reference table, four bytes per entry, is
     most of a page's non-data bytes. *)
  let u32 v =
    Bytes.set_int32_le buf !pos (Int32.of_int v);
    pos := !pos + 4
  in
  let u64 v =
    Bytes.set_int64_le buf !pos v;
    pos := !pos + 8
  in
  let rec varint v =
    if v < 0x80 then u8 v
    else begin
      u8 (0x80 lor (v land 0x7F));
      varint (v lsr 7)
    end
  in
  let cap c =
    u64 (Int64.of_int (Capability.port_to_int c.Capability.port));
    varint c.Capability.obj;
    u8 (Capability.rights_to_int c.Capability.rights);
    u32 c.Capability.check
  in
  u16 magic;
  u8 format_version;
  let h = t.header in
  (match (h.file_cap, h.version_cap) with
  | Some fc, Some vc ->
      u8 1;
      cap fc;
      cap vc;
      u32 (encode_opt_block h.commit_ref);
      u64 (Int64.of_int h.top_lock);
      u64 (Int64.of_int h.inner_lock);
      u32 (encode_opt_block h.parent_ref);
      u8 (Flags.to_nibble h.root_flags)
  | None, None -> u8 0
  | _ -> invalid_arg "Page.encode: version page must carry both capabilities");
  u32 (encode_opt_block h.base_ref);
  varint (Array.length t.refs);
  varint (Bytes.length t.data);
  Array.iter
    (fun e ->
      check_block_number e.block;
      u32 ((e.block lsl 4) lor Flags.to_nibble e.flags))
    t.refs;
  Bytes.blit t.data 0 buf !pos (Bytes.length t.data)

let encode t =
  match t.enc with
  | Some image -> image
  | None ->
      incr encode_count;
      let image = Bytes.create (encoded_size t) in
      encode_into t image;
      t.enc <- Some image;
      image

let memoized_image t = t.enc

(* [memo] seeds the decoded page's image memo with [image] itself, so the
   page will never be re-serialised. Only sound when the image is known
   to be canonical encoder output (every image in this system's stores
   is: stores are only ever written with {!encode} results) and when the
   caller owns [image] exclusively — both stores hand out fresh copies on
   read. Default off for arbitrary input, whose varints may be padded. *)
let decode ?(memo = false) image =
  match
    let r = Wire.Reader.of_bytes image in
    if Wire.Reader.u16 r <> magic then Error "bad page magic"
    else if Wire.Reader.u8 r <> format_version then Error "bad page format version"
    else begin
      let kind = Wire.Reader.u8 r in
      let header =
        if kind = 1 then begin
          let file_cap = decode_cap r in
          let version_cap = decode_cap r in
          let commit_ref = decode_opt_block (Wire.Reader.u32 r) in
          let top_lock = Int64.to_int (Wire.Reader.u64 r) in
          let inner_lock = Int64.to_int (Wire.Reader.u64 r) in
          let parent_ref = decode_opt_block (Wire.Reader.u32 r) in
          match Flags.of_nibble (Wire.Reader.u8 r) with
          | None -> Error "illegal root flag nibble"
          | Some root_flags ->
              Ok
                {
                  plain_header with
                  file_cap = Some file_cap;
                  version_cap = Some version_cap;
                  commit_ref;
                  top_lock;
                  inner_lock;
                  parent_ref;
                  root_flags;
                }
        end
        else if kind = 0 then Ok plain_header
        else Error "bad page kind"
      in
      match header with
      | Error _ as e -> e
      | Ok header -> (
          let base_ref = decode_opt_block (Wire.Reader.u32 r) in
          let header = { header with base_ref } in
          let nrefs = Wire.Reader.varint r in
          let dsize = Wire.Reader.varint r in
          let bad_nibble = ref false in
          let refs =
            Array.init nrefs (fun _ ->
                let packed = Wire.Reader.u32 r in
                match Flags.of_nibble (packed land 0xF) with
                | Some flags -> { block = packed lsr 4; flags }
                | None ->
                    bad_nibble := true;
                    { block = packed lsr 4; flags = Flags.clear })
          in
          if !bad_nibble then Error "illegal flag nibble in reference table"
          else
            let data = Wire.Reader.bytes r dsize in
            let () = Wire.Reader.expect_end r in
            Ok { header; refs; data; enc = (if memo then Some image else None) })
    end
  with
  | result -> result
  | exception Wire.Decode_error msg -> Error ("page decode: " ^ msg)

let version_header_bytes = (2 * (8 + 3 + 1 + 4)) + 4 + 8 + 8 + 4 + 1
let fixed_bytes = 2 + 1 + 1 + 4 + 3 + 3

let data_capacity ~block_size ~nrefs ~is_version =
  block_size - fixed_bytes - (is_version * version_header_bytes) - (4 * nrefs)

let pp ppf t =
  let h = t.header in
  Fmt.pf ppf "@[<v>page%s nrefs=%d dsize=%d base=%a commit=%a root=%a@,refs: %a@]"
    (if is_version_page t then "(version)" else "")
    (nrefs t) (dsize t)
    Fmt.(option ~none:(any "nil") int)
    h.base_ref
    Fmt.(option ~none:(any "nil") int)
    h.commit_ref Flags.pp h.root_flags
    Fmt.(array ~sep:sp (fun ppf e -> Fmt.pf ppf "%d:%a" e.block Flags.pp e.flags))
    t.refs
