module Pagepath = Afs_util.Pagepath
module Capability = Afs_util.Capability

open Errors

module Flag_cache = struct
  type t = (int, Pagepath.t list) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let write_set t server ~version_block =
    match Hashtbl.find_opt t version_block with
    | Some paths -> Ok paths
    | None ->
        (* [Server.written_set] reads the incremental administration when
           the server kept one — O(pages written), no page reads — and
           falls back to the flag walk otherwise. Memoised either way:
           committed versions are immutable. *)
        let* paths = Server.written_set server version_block in
        Hashtbl.replace t version_block paths;
        Ok paths

  let entries t = Hashtbl.length t
end

type validation = {
  current_block : int;
  invalid : Pagepath.t list;
  versions_walked : int;
  pages_examined : int;
}

let note_validation server ~file ~basis_block (v : validation) =
  let tr = Server.trace server in
  if Afs_trace.Trace.enabled tr then
    Afs_trace.Trace.point tr
      (Afs_trace.Trace.Cache_validate
         {
           file_obj = file.Capability.obj;
           basis = basis_block;
           current = v.current_block;
           invalid = List.length v.invalid;
         });
  v

let server_validate ?flag_cache server ~file ~basis_block =
  let ps = Server.pagestore server in
  let* current_block = Server.current_block_of_file server file in
  if current_block = basis_block then
    (* The common unshared-file case: a null operation. *)
    Ok
      (note_validation server ~file ~basis_block
         { current_block; invalid = []; versions_walked = 0; pages_examined = 0 })
  else begin
    let write_set_of vb =
      match flag_cache with
      | Some fc -> Flag_cache.write_set fc server ~version_block:vb
      | None -> Server.written_set server vb
    in
    (* Walk forward from the basis to the current version, accumulating the
       write sets of every intervening commit. *)
    let rec walk block acc walked examined =
      if block = current_block then Ok (acc, walked, examined)
      else
        let* page = Pagestore.read ps block in
        match page.Page.header.Page.commit_ref with
        | None ->
            (* Chain ended before reaching current: basis not on the chain. *)
            Ok ([ Pagepath.root ], walked, examined)
        | Some next ->
            let* paths = write_set_of next in
            walk next (List.rev_append paths acc) (walked + 1) (examined + List.length paths)
    in
    match Pagestore.read ps basis_block with
    | Error _ ->
        (* Basis pruned by the GC: discard everything. *)
        Ok
          (note_validation server ~file ~basis_block
             {
               current_block;
               invalid = [ Pagepath.root ];
               versions_walked = 0;
               pages_examined = 0;
             })
    | Ok _ ->
        let* invalid, versions_walked, pages_examined = walk basis_block [] 0 0 in
        let invalid = List.sort_uniq Pagepath.compare invalid in
        Ok
          (note_validation server ~file ~basis_block
             { current_block; invalid; versions_walked; pages_examined })
  end

(* {2 Client side}

   Cached pages live in an ordered map over pathnames. The path order
   places a page immediately before its descendants, so invalidating a
   subtree is a range scan from the doomed root: O(log n) to find it plus
   O(pages actually dropped), instead of a sweep over every cached page. *)

type file_entry = { mutable basis_block : int; mutable pages : bytes Pagepath.Map.t }

type t = { server : Server.t; files : (int, file_entry) Hashtbl.t }

let create server = { server; files = Hashtbl.create 16 }

let entry_for t file_obj basis =
  match Hashtbl.find_opt t.files file_obj with
  | Some e when e.basis_block = basis -> e
  | Some e ->
      e.basis_block <- basis;
      e.pages <- Pagepath.Map.empty;
      e
  | None ->
      let e = { basis_block = basis; pages = Pagepath.Map.empty } in
      Hashtbl.replace t.files file_obj e;
      e

let put t ~file ~basis_block ~path ~data =
  let e = entry_for t file.Capability.obj basis_block in
  e.pages <- Pagepath.Map.add path (Bytes.copy data) e.pages

let get t ~file ~path =
  match Hashtbl.find_opt t.files file.Capability.obj with
  | None -> None
  | Some e -> Option.map Bytes.copy (Pagepath.Map.find_opt path e.pages)

let basis t ~file =
  Option.map (fun e -> e.basis_block) (Hashtbl.find_opt t.files file.Capability.obj)

let pages_cached t ~file =
  match Hashtbl.find_opt t.files file.Capability.obj with
  | None -> 0
  | Some e -> Pagepath.Map.cardinal e.pages

(* Drop [bad] and everything beneath it: the doomed paths are contiguous
   in path order starting at [bad] itself. *)
let drop_subtree pages bad =
  let rec collect seq acc =
    match seq () with
    | Seq.Cons ((p, _), rest) when Pagepath.is_prefix bad p -> collect rest (p :: acc)
    | Seq.Cons _ | Seq.Nil -> acc
  in
  let doomed = collect (Pagepath.Map.to_seq_from bad pages) [] in
  List.fold_left (fun m p -> Pagepath.Map.remove p m) pages doomed

let revalidate ?flag_cache t ~file =
  match Hashtbl.find_opt t.files file.Capability.obj with
  | None ->
      let* current_block = Server.current_block_of_file t.server file in
      ignore (entry_for t file.Capability.obj current_block);
      Ok { current_block; invalid = []; versions_walked = 0; pages_examined = 0 }
  | Some e ->
      let* v = server_validate ?flag_cache t.server ~file ~basis_block:e.basis_block in
      (* Drop each invalid path together with the subtree beneath it: a
         restructured page invalidates every cached descendant. *)
      let tr = Server.trace t.server in
      if Afs_trace.Trace.enabled tr then
        List.iter
          (fun p ->
            Afs_trace.Trace.point tr
              (Afs_trace.Trace.Cache_drop
                 { file_obj = file.Capability.obj; path = Pagepath.to_string p }))
          v.invalid;
      e.pages <- List.fold_left drop_subtree e.pages v.invalid;
      e.basis_block <- v.current_block;
      Ok v
