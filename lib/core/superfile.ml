module Capability = Afs_util.Capability
open Errors

type touched = { index : int; sub_version : Capability.t; locked_block : int }

type update = {
  server : Server.t;
  super_file : Capability.t;
  super_version : Capability.t;
  port : int;
  base_block : int;  (** The super current version the top lock sits on. *)
  mutable touched : touched list;
  mutable finished : bool;
}

let ps u = Server.pagestore u.server

let super_file u = u.super_file

(* Links to sub-file version pages are marked written: they are new
   content relative to nothing (or to the previous link). *)
let link_flags = Flags.record Flags.clear Flags.Write

let make server ~subfiles ?(data = Bytes.empty) () =
  let* file_cap = Server.create_file server ~data:Bytes.empty () in
  let* vcap = Server.create_version server file_cap in
  let* vblock = Server.version_block server vcap in
  let store = Server.pagestore server in
  let rec link i acc = function
    | [] -> Ok (List.rev acc)
    | sub :: rest ->
        let* sub_current = Server.current_block_of_file server sub in
        (* Record the super-file as the sub-file's parent so inner-lock
           waiters can ascend the system tree (§5.3). *)
        let* sub_page = Pagestore.read store sub_current in
        let header = { sub_page.Page.header with Page.parent_ref = Some vblock } in
        let* () = Pagestore.write_through store sub_current (Page.with_header sub_page header) in
        link (i + 1) ({ Page.block = sub_current; flags = link_flags } :: acc) rest
  in
  let* entries = link 0 [] subfiles in
  let* vpage = Pagestore.read store vblock in
  let vpage = Page.with_contents vpage ~refs:(Array.of_list entries) ~data in
  let header =
    { vpage.Page.header with Page.root_flags = Flags.record Flags.clear Flags.Modify }
  in
  let* () = Pagestore.write store vblock (Page.with_header vpage header) in
  let* () = Server.commit server vcap in
  Ok file_cap

(* Chase a reference that names some (possibly superseded) version page of
   a sub-file to that sub-file's current version page. *)
let rec chase store block =
  let* page = Pagestore.read store block in
  match page.Page.header.Page.commit_ref with
  | None -> Ok (block, page)
  | Some successor -> chase store successor

let sub_entries server cap =
  let* current = Server.current_block_of_file server cap in
  let* page = Pagestore.read (Server.pagestore server) current in
  Ok (current, page)

let subfiles server cap =
  let* _, page = sub_entries server cap in
  let store = Server.pagestore server in
  let rec collect i acc =
    if i >= Page.nrefs page then Ok (List.rev acc)
    else
      match Page.get_ref page i with
      | Error msg -> Error (Store_failure msg)
      | Ok e ->
          let* _, sub_page = chase store e.Page.block in
          (match sub_page.Page.header.Page.file_cap with
          | Some fc -> collect (i + 1) (fc :: acc)
          | None -> Error Not_superfile)
  in
  collect 0 []

let is_superfile server cap =
  match subfiles server cap with Ok (_ :: _) -> true | Ok [] | Error _ -> false

let begin_update server cap =
  let* current, page = sub_entries server cap in
  let h = page.Page.header in
  let ports = Server.ports server in
  let* () =
    if h.Page.top_lock <> 0 && Ports.alive ports h.Page.top_lock then
      Error (Locked_out { port = h.Page.top_lock })
    else if h.Page.inner_lock <> 0 && Ports.alive ports h.Page.inner_lock then
      Error (Locked_out { port = h.Page.inner_lock })
    else Ok ()
  in
  let port = Ports.fresh ports in
  (* Test-both-and-set-top is atomic here (single-threaded host); under the
     RPC layer it runs inside one server request, preserving atomicity. *)
  let* () = Server.set_lock_fields server current ~top:(Some port) ~inner:(Some 0) in
  let* super_version = Server.create_version ~updater_port:port server cap in
  Ok
    {
      server;
      super_file = cap;
      super_version;
      port;
      base_block = current;
      touched = [];
      finished = false;
    }

let port_of u = u.port
let super_version u = u.super_version

let touch_subfile u ~index =
  match List.find_opt (fun t -> t.index = index) u.touched with
  | Some t -> Ok t.sub_version
  | None ->
      let* vblock = Server.version_block u.server u.super_version in
      let* vpage = Pagestore.read (ps u) vblock in
      (match Page.get_ref vpage index with
      | Error msg -> Error (Store_failure msg)
      | Ok entry ->
          let* sub_current, sub_page = chase (ps u) entry.Page.block in
          let* sub_file =
            match sub_page.Page.header.Page.file_cap with
            | Some fc -> Ok fc
            | None -> Error Not_superfile
          in
          (* Lock the sub-file, then create its version as the lock holder. *)
          let* () =
            Server.set_lock_fields u.server sub_current ~top:None ~inner:(Some u.port)
          in
          let* sub_version =
            Server.create_version ~holding_port:u.port ~updater_port:u.port u.server sub_file
          in
          let* sub_vblock = Server.version_block u.server sub_version in
          (* The new sub-version hangs off this super version. *)
          let* sub_vpage = Pagestore.read (ps u) sub_vblock in
          let header = { sub_vpage.Page.header with Page.parent_ref = Some vblock } in
          let* () = Pagestore.write (ps u) sub_vblock (Page.with_header sub_vpage header) in
          (* Repoint the super version's reference at the new sub-version:
             an explicit structural modification of the super tree. *)
          let* vpage = Pagestore.read (ps u) vblock in
          let* vpage =
            match
              Page.with_ref vpage index { Page.block = sub_vblock; flags = link_flags }
            with
            | Ok p -> Ok p
            | Error msg -> Error (Store_failure msg)
          in
          let rf = Flags.record vpage.Page.header.Page.root_flags Flags.Modify in
          let vpage = Page.with_header vpage { vpage.Page.header with Page.root_flags = rf } in
          let* () = Pagestore.write (ps u) vblock vpage in
          u.touched <- { index; sub_version; locked_block = sub_current } :: u.touched;
          Ok sub_version)

let clear_locks u =
  let clear_one t =
    ignore (Server.set_lock_fields u.server t.locked_block ~top:None ~inner:(Some 0))
  in
  List.iter clear_one u.touched;
  ignore (Server.set_lock_fields u.server u.base_block ~top:(Some 0) ~inner:None)

let commit u =
  if u.finished then Error Version_not_mutable
  else begin
    u.finished <- true;
    (* Commit the super version first; the top lock excludes competing
       super updates, so this takes the fast path. *)
    let* () = Server.commit u.server u.super_version in
    (* Descend: commit the sub-files. The inner locks kept other updates
       out, so each of these finds its base still current. *)
    let rec commit_subs = function
      | [] -> Ok ()
      | t :: rest ->
          let* () = Server.commit u.server t.sub_version in
          commit_subs rest
    in
    let* () = commit_subs (List.rev u.touched) in
    clear_locks u;
    Ports.kill (Server.ports u.server) u.port;
    Ok ()
  end

let abort u =
  if u.finished then Error Version_not_mutable
  else begin
    u.finished <- true;
    List.iter (fun t -> ignore (Server.abort_version u.server t.sub_version)) u.touched;
    ignore (Server.abort_version u.server u.super_version);
    clear_locks u;
    Ports.kill (Server.ports u.server) u.port;
    Ok ()
  end

let crash_holder u =
  u.finished <- true;
  Ports.kill (Server.ports u.server) u.port

type recovery = No_lock | Holder_alive of int | Cleared | Finished of int

(* Find the version page carrying a top lock along the file's committed
   chain (the locked version may no longer be current if the crashed
   update committed the super version before dying). *)
let find_locked_version server cap =
  let* chain = Server.committed_chain server cap in
  let store = Server.pagestore server in
  let rec scan = function
    | [] -> Ok None
    | b :: rest ->
        let* page = Pagestore.read store b in
        if page.Page.header.Page.top_lock <> 0 then Ok (Some (b, page)) else scan rest
  in
  scan (List.rev chain)

let recover_abandoned server cap =
  let store = Server.pagestore server in
  let* locked = find_locked_version server cap in
  match locked with
  | None -> Ok No_lock
  | Some (locked_block, locked_page) ->
      let port = locked_page.Page.header.Page.top_lock in
      if Ports.alive (Server.ports server) port then Ok (Holder_alive port)
      else begin
        match locked_page.Page.header.Page.commit_ref with
        | None ->
            (* The crashed update never committed: clear the locks; its
               uncommitted versions are garbage. *)
            let rec clear_inner i =
              if i >= Page.nrefs locked_page then Ok ()
              else
                match Page.get_ref locked_page i with
                | Error msg -> Error (Store_failure msg)
                | Ok e ->
                    let* sub_current, sub_page = chase store e.Page.block in
                    let* () =
                      if sub_page.Page.header.Page.inner_lock = port then
                        Server.set_lock_fields server sub_current ~top:None ~inner:(Some 0)
                      else Ok ()
                    in
                    clear_inner (i + 1)
            in
            let* () = clear_inner 0 in
            let* () = Server.set_lock_fields server locked_block ~top:(Some 0) ~inner:None in
            Ok Cleared
        | Some new_super ->
            (* The super version committed; finish the sub-file commits by
               traversing the old and new versions simultaneously. *)
            let* new_page = Pagestore.read store new_super in
            let finished = ref 0 in
            let rec finish i =
              if i >= Page.nrefs new_page then Ok ()
              else
                match Page.get_ref new_page i with
                | Error msg -> Error (Store_failure msg)
                | Ok e ->
                    let* sub_vpage = Pagestore.read store e.Page.block in
                    let* () =
                      match sub_vpage.Page.header.Page.base_ref with
                      | None -> Ok ()
                      | Some old_sub -> (
                          let* old_page = Pagestore.read store old_sub in
                          match old_page.Page.header.Page.commit_ref with
                          | Some _ -> Ok () (* Already finished. *)
                          | None ->
                              let header =
                                {
                                  old_page.Page.header with
                                  Page.commit_ref = Some e.Page.block;
                                  Page.inner_lock = 0;
                                }
                              in
                              let* () =
                                Pagestore.write_through store old_sub
                                  (Page.with_header old_page header)
                              in
                              incr finished;
                              Ok ())
                    in
                    finish (i + 1)
            in
            let* () = finish 0 in
            let* () = Server.set_lock_fields server locked_block ~top:(Some 0) ~inner:None in
            Ok (Finished !finished)
      end

let recover_inner_waiter server sub_file_cap =
  let store = Server.pagestore server in
  let* sub_current = Server.current_block_of_file server sub_file_cap in
  let* sub_page = Pagestore.read store sub_current in
  if sub_page.Page.header.Page.inner_lock = 0 then Ok No_lock
  else
    (* Ascend the system tree to the enclosing super-file. *)
    let rec ascend block =
      let* page = Pagestore.read store block in
      match page.Page.header.Page.parent_ref with
      | None -> (
          match page.Page.header.Page.file_cap with
          | Some fc -> Ok fc
          | None -> Error Not_superfile)
      | Some parent -> ascend parent
    in
    let* super_cap = ascend sub_current in
    recover_abandoned server super_cap
