type kind = Electronic | Magnetic | Optical

type t = {
  kind : kind;
  seek_ms : float;
  transfer_ms_per_kb : float;
  write_once : bool;
}

let electronic = { kind = Electronic; seek_ms = 0.02; transfer_ms_per_kb = 0.001; write_once = false }
let magnetic = { kind = Magnetic; seek_ms = 28.0; transfer_ms_per_kb = 0.8; write_once = false }
let optical = { kind = Optical; seek_ms = 150.0; transfer_ms_per_kb = 2.0; write_once = true }

let of_kind = function
  | Electronic -> electronic
  | Magnetic -> magnetic
  | Optical -> optical

let read_cost t ~bytes = t.seek_ms +. (t.transfer_ms_per_kb *. (float_of_int bytes /. 1024.0))

(* Optical writes verify after writing, roughly doubling transfer time. *)
let write_cost t ~bytes =
  let base = t.seek_ms +. (t.transfer_ms_per_kb *. (float_of_int bytes /. 1024.0)) in
  if t.write_once then base *. 2.0 else base

let kind_name = function
  | Electronic -> "electronic"
  | Magnetic -> "magnetic"
  | Optical -> "optical"

let pp_kind ppf k = Fmt.string ppf (kind_name k)

let pp ppf t =
  Fmt.pf ppf "%a(seek=%.2fms xfer=%.3fms/KB%s)" pp_kind t.kind t.seek_ms t.transfer_ms_per_kb
    (if t.write_once then " write-once" else "")
