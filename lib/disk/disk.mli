(** A simulated raw disk: a numbered array of fixed-size blocks.

    Provides exactly what §4 requires of the medium under a block server:
    atomic whole-block writes acknowledged after they are durable, plus the
    failure modes the paper's recovery machinery must survive — the device
    going offline (a crash) and occasional silent corruption, which the
    stable-storage layer detects by checksum and repairs from the companion
    disk.

    Operations are synchronous; simulated latency is returned with each
    result (and accumulated in {!stats}) so callers running under the
    event engine can charge it with [Proc.delay]. *)

type t

type error =
  | Offline  (** Device crashed / unreachable. *)
  | Out_of_range of int
  | Never_written of int  (** Read of a block with no data. *)
  | Write_once_violation of int  (** Overwrite attempt on optical media. *)
  | Too_large of { requested : int; block_size : int }

val pp_error : error Fmt.t

type 'a outcome = { result : ('a, error) result; cost_ms : float }

val create :
  ?trace:Afs_trace.Trace.t -> media:Media.t -> blocks:int -> block_size:int -> unit -> t
(** Raises [Invalid_argument] on non-positive sizes. Successful reads and
    writes emit [disk.read]/[disk.write] trace events carrying the media
    kind, block number and simulated cost. *)

val set_trace : t -> Afs_trace.Trace.t -> unit
(** Swap the trace handle, for disks created before the sink exists. *)

val media : t -> Media.t
val block_count : t -> int
val block_size : t -> int

val read : t -> int -> bytes outcome
(** Returns a copy of the stored image (its exact written length). *)

val write : t -> int -> bytes -> unit outcome
(** Whole-block atomic write. Fails with [Write_once_violation] when
    overwriting on write-once media. *)

val erase : t -> int -> unit outcome
(** Return a block to the never-written state. Fails on write-once media
    with [Write_once_violation]. *)

val is_written : t -> int -> bool
(** False for out-of-range blocks. Ignores the offline flag: used by
    recovery scans. *)

(** {2 Fault injection} *)

val set_offline : t -> bool -> unit
val is_offline : t -> bool

val corrupt : t -> int -> xor_byte:char -> bool
(** XOR one byte into a written block's image, silently; returns false if
    the block holds no data. Models media decay; checksums upstream must
    catch it. *)

val wipe : t -> unit
(** Lose all contents (head crash). The device stays online. *)

(** {2 Accounting} *)

type stats = {
  reads : int;
  writes : int;
  bytes_read : int;
  bytes_written : int;
  busy_ms : float;
  blocks_in_use : int;
}

val stats : t -> stats
val reset_stats : t -> unit
