type error =
  | Offline
  | Out_of_range of int
  | Never_written of int
  | Write_once_violation of int
  | Too_large of { requested : int; block_size : int }

let pp_error ppf = function
  | Offline -> Fmt.string ppf "device offline"
  | Out_of_range b -> Fmt.pf ppf "block %d out of range" b
  | Never_written b -> Fmt.pf ppf "block %d never written" b
  | Write_once_violation b -> Fmt.pf ppf "write-once violation on block %d" b
  | Too_large { requested; block_size } ->
      Fmt.pf ppf "%d bytes exceeds block size %d" requested block_size

type 'a outcome = { result : ('a, error) result; cost_ms : float }

module Trace = Afs_trace.Trace

type t = {
  media : Media.t;
  block_size : int;
  blocks : bytes option array;
  mutable offline : bool;
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable busy_ms : float;
  mutable in_use : int;
  mutable trace : Trace.t;
}

let create ?(trace = Trace.null) ~media ~blocks ~block_size () =
  if blocks <= 0 then invalid_arg "Disk.create: blocks must be positive";
  if block_size <= 0 then invalid_arg "Disk.create: block_size must be positive";
  {
    media;
    block_size;
    blocks = Array.make blocks None;
    offline = false;
    reads = 0;
    writes = 0;
    bytes_read = 0;
    bytes_written = 0;
    busy_ms = 0.0;
    in_use = 0;
    trace;
  }

let set_trace t tr = t.trace <- tr

let media t = t.media
let block_count t = Array.length t.blocks
let block_size t = t.block_size

let charge t cost = t.busy_ms <- t.busy_ms +. cost

let read t b =
  if t.offline then { result = Error Offline; cost_ms = 0.0 }
  else if b < 0 || b >= Array.length t.blocks then
    { result = Error (Out_of_range b); cost_ms = 0.0 }
  else
    match t.blocks.(b) with
    | None ->
        let cost = Media.read_cost t.media ~bytes:0 in
        charge t cost;
        { result = Error (Never_written b); cost_ms = cost }
    | Some data ->
        let cost = Media.read_cost t.media ~bytes:(Bytes.length data) in
        t.reads <- t.reads + 1;
        t.bytes_read <- t.bytes_read + Bytes.length data;
        charge t cost;
        if Trace.enabled t.trace then
          Trace.point t.trace
            (Trace.Disk_read
               {
                 media = Media.kind_name t.media.Media.kind;
                 block = b;
                 bytes = Bytes.length data;
                 cost_ms = cost;
               });
        { result = Ok (Bytes.copy data); cost_ms = cost }

let write t b data =
  if t.offline then { result = Error Offline; cost_ms = 0.0 }
  else if b < 0 || b >= Array.length t.blocks then
    { result = Error (Out_of_range b); cost_ms = 0.0 }
  else if Bytes.length data > t.block_size then
    {
      result = Error (Too_large { requested = Bytes.length data; block_size = t.block_size });
      cost_ms = 0.0;
    }
  else if t.media.Media.write_once && t.blocks.(b) <> None then
    { result = Error (Write_once_violation b); cost_ms = 0.0 }
  else begin
    let cost = Media.write_cost t.media ~bytes:(Bytes.length data) in
    if t.blocks.(b) = None then t.in_use <- t.in_use + 1;
    t.blocks.(b) <- Some (Bytes.copy data);
    t.writes <- t.writes + 1;
    t.bytes_written <- t.bytes_written + Bytes.length data;
    charge t cost;
    if Trace.enabled t.trace then
      Trace.point t.trace
        (Trace.Disk_write
           {
             media = Media.kind_name t.media.Media.kind;
             block = b;
             bytes = Bytes.length data;
             cost_ms = cost;
           });
    { result = Ok (); cost_ms = cost }
  end

let erase t b =
  if t.offline then { result = Error Offline; cost_ms = 0.0 }
  else if b < 0 || b >= Array.length t.blocks then
    { result = Error (Out_of_range b); cost_ms = 0.0 }
  else if t.media.Media.write_once then
    { result = Error (Write_once_violation b); cost_ms = 0.0 }
  else begin
    if t.blocks.(b) <> None then t.in_use <- t.in_use - 1;
    t.blocks.(b) <- None;
    { result = Ok (); cost_ms = 0.0 }
  end

let is_written t b = b >= 0 && b < Array.length t.blocks && t.blocks.(b) <> None

let set_offline t flag = t.offline <- flag
let is_offline t = t.offline

let corrupt t b ~xor_byte =
  if b < 0 || b >= Array.length t.blocks then false
  else
    match t.blocks.(b) with
    | None -> false
    | Some data when Bytes.length data = 0 -> false
    | Some data ->
        let i = Bytes.length data / 2 in
        Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor Char.code xor_byte));
        true

let wipe t =
  Array.fill t.blocks 0 (Array.length t.blocks) None;
  t.in_use <- 0

type stats = {
  reads : int;
  writes : int;
  bytes_read : int;
  bytes_written : int;
  busy_ms : float;
  blocks_in_use : int;
}

let stats (t : t) =
  {
    reads = t.reads;
    writes = t.writes;
    bytes_read = t.bytes_read;
    bytes_written = t.bytes_written;
    busy_ms = t.busy_ms;
    blocks_in_use = t.in_use;
  }

let reset_stats (t : t) =
  t.reads <- 0;
  t.writes <- 0;
  t.bytes_read <- 0;
  t.bytes_written <- 0;
  t.busy_ms <- 0.0
