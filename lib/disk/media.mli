(** Storage media models (paper §4, §5, Figure 2).

    The paper stores the top of the system tree on fast magnetic or
    "electronic" (RAM) disks and the lower, colder parts on large optical
    write-once media. The concurrency-control logic never depends on the
    medium; only cost and the write-once restriction differ. Latency
    figures are mid-1980s hardware, in milliseconds — absolute values are
    unimportant, the ordering electronic < magnetic < optical is what the
    experiments exercise. *)

type kind = Electronic | Magnetic | Optical

type t = {
  kind : kind;
  seek_ms : float;  (** Fixed per-operation positioning cost. *)
  transfer_ms_per_kb : float;  (** Linear transfer cost. *)
  write_once : bool;  (** True for optical: a written block is immutable. *)
}

val electronic : t
val magnetic : t
val optical : t

val of_kind : kind -> t

val read_cost : t -> bytes:int -> float
(** Simulated milliseconds to read [bytes] from this medium. *)

val write_cost : t -> bytes:int -> float

val kind_name : kind -> string
(** Lowercase media name, the [media] label in disk trace events. *)

val pp_kind : kind Fmt.t
val pp : t Fmt.t
